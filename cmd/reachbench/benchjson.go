package main

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	reach "repro"
	"repro/internal/gen"
)

// benchReport is the machine-readable benchmark schema consumed by CI and
// the cross-PR tracking files (BENCH_<n>.json at the repo root). One entry
// per plain index kind over a shared workload; kinds whose published
// scaling limits make them infeasible at the workload size carry a skip
// reason instead of numbers.
type benchReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	Workers    int         `json:"workers"`
	N          int         `json:"n"`
	M          int         `json:"m"`
	Seed       int64       `json:"seed"`
	Queries    int         `json:"queries"`
	Kinds      []benchKind `json:"kinds"`
}

type benchKind struct {
	Kind        string  `json:"kind"`
	Name        string  `json:"name,omitempty"`
	BuildNs     int64   `json:"build_ns,omitempty"`
	QueryNsOp   float64 `json:"query_ns_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Entries     int     `json:"entries,omitempty"`
	Bytes       int     `json:"bytes,omitempty"`
	Skipped     string  `json:"skipped,omitempty"`
}

// benchSkips maps kinds excluded from the JSON benchmark to the reason.
var benchSkips = map[reach.Kind]string{
	reach.KindTwoHop: "quadratic densest-subgraph build; infeasible at this workload size (see E5)",
}

// writeBenchJSON builds every plain index kind over one shared workload
// and records build wall time, mean query latency, and per-query heap
// allocations (MemStats deltas over the whole query sweep).
func writeBenchJSON(path string, scale int, seed int64, workers int) error {
	n := 2000 * scale
	g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})
	qs := gen.Queries(g, 2000, seed+1)

	rep := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		N:          g.N(),
		M:          g.M(),
		Seed:       seed,
		Queries:    len(qs),
	}
	for _, k := range reach.Kinds() {
		if reason, ok := benchSkips[k]; ok {
			rep.Kinds = append(rep.Kinds, benchKind{Kind: string(k), Skipped: reason})
			continue
		}
		opt := reach.Options{K: 3, Bits: 256, Seed: seed, Workers: workers}
		start := time.Now()
		ix, err := reach.Build(k, g, opt)
		buildNs := time.Since(start).Nanoseconds()
		if err != nil {
			rep.Kinds = append(rep.Kinds, benchKind{Kind: string(k), Skipped: err.Error()})
			continue
		}
		// Warm the scratch pool so allocs/op reflects steady state.
		for _, q := range qs[:10] {
			ix.Reach(q.S, q.T)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		qstart := time.Now()
		wrong := 0
		for _, q := range qs {
			if ix.Reach(q.S, q.T) != q.Want {
				wrong++
			}
		}
		qdur := time.Since(qstart)
		runtime.ReadMemStats(&after)
		if wrong > 0 {
			rep.Kinds = append(rep.Kinds, benchKind{
				Kind: string(k), Name: ix.Name(),
				Skipped: "wrong answers on the validation workload",
			})
			continue
		}
		st := ix.Stats()
		rep.Kinds = append(rep.Kinds, benchKind{
			Kind:        string(k),
			Name:        ix.Name(),
			BuildNs:     buildNs,
			QueryNsOp:   float64(qdur.Nanoseconds()) / float64(len(qs)),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(len(qs)),
			Entries:     st.Entries,
			Bytes:       st.Bytes,
		})
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
