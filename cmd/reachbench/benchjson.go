package main

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/traversal"
)

// benchReport is the machine-readable benchmark schema consumed by CI and
// the cross-PR tracking files (BENCH_<n>.json at the repo root). One entry
// per plain index kind over a shared workload; kinds whose published
// scaling limits make them infeasible at the workload size carry a skip
// reason instead of numbers.
type benchReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	N          int            `json:"n"`
	M          int            `json:"m"`
	Seed       int64          `json:"seed"`
	LabelEnc   string         `json:"label_enc,omitempty"`
	Queries    int            `json:"queries"`
	Kinds      []benchKind    `json:"kinds"`
	Labels     []labelBench   `json:"labels,omitempty"`
	Accel      *accelReport   `json:"accel,omitempty"`
	Shards     *shardReport   `json:"shards,omitempty"`
	Advisor    []advisorBench `json:"advisor,omitempty"`
}

// advisorBench records one advisor chosen-vs-best scenario the CI regret
// gate consumes: the advisor runs its rule-table shortlist over a
// synthetic trace, then a broad sweep measures (on the same trace) what
// the best achievable p99 was among all reasonable kinds. Regret is
// chosen p99 / broad-best p99 — 1.0 means the shortlist found the
// optimum, and the gate holds it at ≤ 2× on both graph shapes.
type advisorBench struct {
	Shape         string  `json:"shape"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	TraceRecords  int     `json:"trace_records"`
	Chosen        string  `json:"chosen"`
	ChosenP99NS   int64   `json:"chosen_p99_ns"`
	BaselineP99NS int64   `json:"baseline_p99_ns"`
	BestKind      string  `json:"best_kind"`
	BestP99NS     int64   `json:"best_p99_ns"`
	Regret        float64 `json:"regret"`
}

// shardReport records the shard-count sweep the CI shard gate consumes:
// k ∈ {1,2,4,8} sharded engines over one banded DAG (the topological-
// locality regime the contiguous-range partitioner targets), each with
// build wall time, per-shard index bytes, boundary/cut census, and batch
// scatter-gather throughput. Every engine's answers are validated against
// the BFS ground truth before its numbers are recorded, so a row in this
// table is also a correctness witness. The gate keeps k=4's build at or
// under k=1's: per-shard builds see sub-DAGs, and the 2-hop build is
// superlinear enough in practice that four quarter-size builds beat one
// full-size build even on a single core.
type shardReport struct {
	N          int          `json:"n"`
	M          int          `json:"m"`
	Band       int          `json:"band"`
	Kind       string       `json:"kind"`
	BatchPairs int          `json:"batch_pairs"`
	Sweep      []shardBench `json:"sweep"`
}

type shardBench struct {
	K            int     `json:"k"`
	BuildNs      int64   `json:"build_ns"`
	BuildSpeedup float64 `json:"build_speedup"` // k=1 build time / this build time
	IndexBytes   int     `json:"index_bytes"`   // sum of per-shard index footprints
	ShardBytes   []int   `json:"shard_bytes"`
	Boundary     int     `json:"boundary"`
	CutEdges     int     `json:"cut_edges"`
	SummaryBytes int     `json:"summary_bytes"`
	BatchNs      int64   `json:"batch_ns"`
	BatchQPS     float64 `json:"batch_qps"` // batch pairs answered per second
}

// labelBench records the flat-label-storage measurements the CI label
// gates consume: for the CSR-backed kinds at two graph sizes and each
// encoding, the steady-state query cost, per-query heap allocations, and
// the footprint split into offset tables vs label payload. The varint
// rows exist to verify the compression claim (label_bytes down, query
// cost bounded) against the raw rows.
type labelBench struct {
	Kind        string  `json:"kind"`
	N           int     `json:"n"`
	Enc         string  `json:"enc"`
	BuildNs     int64   `json:"build_ns"`
	QueryNsOp   float64 `json:"query_ns_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	OffsetBytes int     `json:"offset_bytes"`
	LabelBytes  int     `json:"label_bytes"`
	AuxBytes    int     `json:"aux_bytes"`
}

// accelReport records the query-path acceleration measurements: the
// index-free batch kernel against a sequential per-pair BFS loop over the
// same pairs (CI gates on batch_speedup >= 1), and the DB result cache
// against an uncached DB on a hot-pair workload. The batch workload is a
// denser DAG than the per-kind one above — the kernel's win is the overlap
// of the sources' reachable sets, which a 4-edges/vertex DAG barely has.
type accelReport struct {
	BatchN            int     `json:"batch_n"`
	BatchM            int     `json:"batch_m"`
	BatchPairs        int     `json:"batch_pairs"`
	BatchKernelNs     int64   `json:"batch_kernel_ns"`
	BatchSequentialNs int64   `json:"batch_sequential_ns"`
	BatchSpeedup      float64 `json:"batch_speedup"`
	DBCachedNsOp      float64 `json:"db_cached_ns_op"`
	DBUncachedNsOp    float64 `json:"db_uncached_ns_op"`
	DBCacheSpeedup    float64 `json:"db_cache_speedup"`
	DBCacheHitRate    float64 `json:"db_cache_hit_rate"`
	CondenseMemoHits  int64   `json:"condense_memo_hits"`
}

type benchKind struct {
	Kind        string  `json:"kind"`
	Name        string  `json:"name,omitempty"`
	BuildNs     int64   `json:"build_ns,omitempty"`
	QueryNsOp   float64 `json:"query_ns_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Entries     int     `json:"entries,omitempty"`
	Bytes       int     `json:"bytes,omitempty"`
	LabelBytes  int     `json:"label_bytes,omitempty"`
	Skipped     string  `json:"skipped,omitempty"`
}

// benchSkips maps kinds excluded from the JSON benchmark to the reason.
var benchSkips = map[reach.Kind]string{
	reach.KindTwoHop: "quadratic densest-subgraph build; infeasible at this workload size (see E5)",
}

// writeBenchJSON builds every plain index kind over one shared workload
// and records build wall time, mean query latency, and per-query heap
// allocations (MemStats deltas over the whole query sweep).
func writeBenchJSON(path string, scale int, seed int64, workers int, enc reach.LabelEncoding) error {
	n := 2000 * scale
	g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})
	qs := gen.Queries(g, 2000, seed+1)

	encName := "raw"
	if enc == reach.EncVarint {
		encName = "varint"
	}
	rep := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		N:          g.N(),
		M:          g.M(),
		Seed:       seed,
		LabelEnc:   encName,
		Queries:    len(qs),
	}
	for _, k := range reach.Kinds() {
		if reason, ok := benchSkips[k]; ok {
			rep.Kinds = append(rep.Kinds, benchKind{Kind: string(k), Skipped: reason})
			continue
		}
		opt := reach.Options{K: 3, Bits: 256, Seed: seed, Workers: workers, LabelEnc: enc}
		start := time.Now()
		ix, err := reach.Build(k, g, opt)
		buildNs := time.Since(start).Nanoseconds()
		if err != nil {
			rep.Kinds = append(rep.Kinds, benchKind{Kind: string(k), Skipped: err.Error()})
			continue
		}
		// Warm the scratch pool so allocs/op reflects steady state.
		for _, q := range qs[:10] {
			ix.Reach(q.S, q.T)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		qstart := time.Now()
		wrong := 0
		for _, q := range qs {
			if ix.Reach(q.S, q.T) != q.Want {
				wrong++
			}
		}
		qdur := time.Since(qstart)
		runtime.ReadMemStats(&after)
		if wrong > 0 {
			rep.Kinds = append(rep.Kinds, benchKind{
				Kind: string(k), Name: ix.Name(),
				Skipped: "wrong answers on the validation workload",
			})
			continue
		}
		st := ix.Stats()
		bk := benchKind{
			Kind:        string(k),
			Name:        ix.Name(),
			BuildNs:     buildNs,
			QueryNsOp:   float64(qdur.Nanoseconds()) / float64(len(qs)),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(len(qs)),
			Entries:     st.Entries,
			Bytes:       st.Bytes,
		}
		if _, labels, _, ok := reach.IndexSizes(ix); ok {
			bk.LabelBytes = labels
		}
		rep.Kinds = append(rep.Kinds, bk)
	}

	rep.Labels = measureLabels(scale, seed, workers)
	rep.Accel = measureAccel(scale, seed)
	rep.Shards = measureShards(scale, seed, workers)
	rep.Advisor = measureAdvisor(scale, seed, workers)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	je := json.NewEncoder(f)
	je.SetIndent("", "  ")
	if err := je.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// measureLabels runs the flat-label-storage sweep: the CSR-backed kinds
// (pll, tol, bfl) at n=2000 and n=20000, raw and — for the 2-hop label
// kinds — varint encodings. BFL's fixed-stride filter matrix has no
// varint form, so it reports one raw row per size.
func measureLabels(scale int, seed int64, workers int) []labelBench {
	var out []labelBench
	for _, n := range []int{2000 * scale, 20000 * scale} {
		g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})
		qs := gen.Queries(g, 2000, seed+1)
		for _, k := range []reach.Kind{reach.KindPLL, reach.KindTOL, reach.KindBFL} {
			encs := []reach.LabelEncoding{reach.EncRaw, reach.EncVarint}
			if k == reach.KindBFL {
				encs = encs[:1]
			}
			for _, enc := range encs {
				opt := reach.Options{Bits: 256, Seed: seed, Workers: workers, LabelEnc: enc}
				start := time.Now()
				ix, err := reach.Build(k, g, opt)
				buildNs := time.Since(start).Nanoseconds()
				if err != nil {
					panic(err)
				}
				for _, q := range qs[:10] {
					ix.Reach(q.S, q.T)
				}
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				qstart := time.Now()
				for _, q := range qs {
					if ix.Reach(q.S, q.T) != q.Want {
						panic("wrong answer in label sweep")
					}
				}
				qdur := time.Since(qstart)
				runtime.ReadMemStats(&after)
				off, lab, aux, ok := reach.IndexSizes(ix)
				if !ok {
					panic("label-sweep kind without size breakdown")
				}
				encName := "raw"
				if enc == reach.EncVarint {
					encName = "varint"
				}
				out = append(out, labelBench{
					Kind:        string(k),
					N:           n,
					Enc:         encName,
					BuildNs:     buildNs,
					QueryNsOp:   float64(qdur.Nanoseconds()) / float64(len(qs)),
					AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(len(qs)),
					OffsetBytes: off,
					LabelBytes:  lab,
					AuxBytes:    aux,
				})
			}
		}
	}
	return out
}

// measureShards runs the shard-count sweep for the shards section of the
// report. The workload graph is a banded DAG — a backbone path plus
// extra edges spanning at most `band` topological positions — so the
// contiguous-range cut stays small no matter where the partitioner lands
// (a uniform random DAG would put most edges across shards and the
// summary would grow to the size of the graph). The per-shard kind is
// TOL, whose build cost grows superlinearly on this family: four
// quarter-size builds undercut one full-size build even on a single
// core, which is what the CI shard gate (k=4 ≤ k=1) checks. Build times
// are the best of three runs so the gate compares costs, not scheduler
// noise.
func measureShards(scale int, seed int64, workers int) *shardReport {
	n := 12000 * scale
	const band = 100
	g := gen.BandedDAG(gen.Config{N: n, M: 4 * n, Seed: seed + 11}, band)
	qs := gen.Queries(g, 2048, seed+12)
	pairs := make([]reach.Pair, 4096)
	for i := range pairs {
		q := qs[i%len(qs)]
		pairs[i] = reach.Pair{S: q.S, T: q.T}
	}
	rep := &shardReport{
		N: g.N(), M: g.M(), Band: band,
		Kind:       string(reach.KindTOL),
		BatchPairs: len(pairs),
	}
	var base int64
	for _, k := range []int{1, 2, 4, 8} {
		var sdb *reach.ShardedDB
		var buildNs int64
		for r := 0; r < 3; r++ {
			start := time.Now()
			db, err := reach.NewShardedDB(g, reach.ShardedConfig{
				Shards:  k,
				Plain:   reach.KindTOL,
				Options: reach.Options{Seed: seed, Workers: workers},
			})
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				panic(err)
			}
			if sdb == nil || ns < buildNs {
				sdb, buildNs = db, ns
			}
		}
		for _, q := range qs {
			res, err := sdb.Reach(q.S, q.T)
			if err != nil {
				panic(err)
			}
			if res != q.Want {
				panic("sharded answer diverged from BFS oracle")
			}
		}
		if _, err := sdb.BatchReachCtx(context.Background(), pairs[:64]); err != nil {
			panic(err)
		}
		bstart := time.Now()
		out, err := sdb.BatchReachCtx(context.Background(), pairs)
		batchNs := time.Since(bstart).Nanoseconds()
		if err != nil {
			panic(err)
		}
		for i, r := range out {
			if r != qs[i%len(qs)].Want {
				panic("sharded batch diverged from BFS oracle")
			}
		}
		shards, summary, ok := sdb.ShardInfo()
		if !ok {
			panic("sharded DB lost its shard engine")
		}
		sb := shardBench{
			K:            k,
			BuildNs:      buildNs,
			Boundary:     summary.Boundary,
			CutEdges:     summary.CutEdges,
			SummaryBytes: summary.IndexBytes,
			BatchNs:      batchNs,
			BatchQPS:     float64(len(pairs)) / (float64(batchNs) / 1e9),
		}
		for _, si := range shards {
			sb.ShardBytes = append(sb.ShardBytes, si.IndexBytes)
			sb.IndexBytes += si.IndexBytes
		}
		if k == 1 {
			base = buildNs
		}
		sb.BuildSpeedup = float64(base) / float64(buildNs)
		rep.Sweep = append(rep.Sweep, sb)
	}
	return rep
}

// measureAdvisor runs the advisor chosen-vs-best scenarios on two graph
// shapes with opposite winning regimes: a scale-free DAG (heavy degree
// tail — label kinds win) and a banded DAG (deep backbone — interval and
// order kinds win). The advisor's pick comes from its default rule-table
// shortlist; the "best" bar comes from a second run over a broad
// explicit candidate list measured on the same replayed trace, so the
// regret ratio compares like with like.
func measureAdvisor(scale int, seed int64, workers int) []advisorBench {
	broad := []reach.Kind{
		reach.KindBFL, reach.KindPLL, reach.KindDL, reach.KindTOL,
		reach.KindGRAIL, reach.KindFerrari, reach.KindIP, reach.KindPReaCH,
		reach.KindFeline, reach.KindOReach, reach.KindDBL,
	}
	shapes := []struct {
		name string
		g    *graph.Digraph
	}{
		{"scalefree", gen.ScaleFree(4000*scale, 4, seed+21)},
		{"banded", gen.BandedDAG(gen.Config{N: 4000 * scale, M: 16000 * scale, Seed: seed + 22}, 64)},
	}
	var out []advisorBench
	for _, sh := range shapes {
		qs := gen.Queries(sh.g, 600, seed+23)
		recs := make([]reach.WorkloadRecord, len(qs))
		for i, q := range qs {
			recs[i] = reach.WorkloadRecord{S: uint32(q.S), T: uint32(q.T), Route: "plain", Outcome: q.Want}
		}
		opt := reach.Options{Seed: seed, Workers: workers, Prepared: reach.Prepare(sh.g)}
		chosen, err := reach.Advise(context.Background(), sh.g, recs, reach.AdviseConfig{Options: opt})
		if err != nil {
			panic(err)
		}
		best, err := reach.Advise(context.Background(), sh.g, recs, reach.AdviseConfig{
			Candidates: broad, Options: opt,
		})
		if err != nil {
			panic(err)
		}
		bestP99 := best.BestP99NS
		bestKind := best.Best
		// The broad sweep's argmin is the bar; if the shortlist run itself
		// measured something faster, the bar moves (regret never < 1 by
		// construction of the max below).
		if chosen.BestP99NS > 0 && chosen.BestP99NS < bestP99 {
			bestP99 = chosen.BestP99NS
			bestKind = chosen.Best
		}
		// Same kind twice is definitionally zero regret — the two numbers
		// are independent measurements of one index and differ only by
		// timer noise.
		regret := 1.0
		if chosen.Chosen != bestKind && bestP99 > 0 && chosen.ChosenP99NS > bestP99 {
			regret = float64(chosen.ChosenP99NS) / float64(bestP99)
		}
		out = append(out, advisorBench{
			Shape:         sh.name,
			N:             sh.g.N(),
			M:             sh.g.M(),
			TraceRecords:  len(recs),
			Chosen:        chosen.Chosen,
			ChosenP99NS:   chosen.ChosenP99NS,
			BaselineP99NS: chosen.Baseline.P99NS,
			BestKind:      bestKind,
			BestP99NS:     bestP99,
			Regret:        regret,
		})
	}
	return out
}

// measureAccel runs the query-path acceleration measurements for the
// accel section of the report.
func measureAccel(scale int, seed int64) *accelReport {
	n := 10000 * scale
	g := gen.RandomDAG(gen.Config{N: n, M: 10 * n, Seed: seed + 7})
	qs := gen.Queries(g, 2048, seed+8)
	pairs := make([]reach.Pair, len(qs))
	for i, q := range qs {
		pairs[i] = reach.Pair{S: q.S, T: q.T}
	}
	a := &accelReport{BatchN: g.N(), BatchM: g.M(), BatchPairs: len(pairs)}

	// Warm the scratch pool so neither side pays first-use allocations.
	reach.BatchReach(nil, g, pairs[:64], 1)
	start := time.Now()
	kernelOut, err := reach.BatchReach(nil, g, pairs, 1)
	a.BatchKernelNs = time.Since(start).Nanoseconds()
	if err != nil {
		panic(err)
	}
	start = time.Now()
	for i, p := range pairs {
		if traversal.BFS(g, p.S, p.T) != kernelOut[i] {
			panic("batch kernel diverged from per-pair BFS")
		}
	}
	a.BatchSequentialNs = time.Since(start).Nanoseconds()
	a.BatchSpeedup = float64(a.BatchSequentialNs) / float64(a.BatchKernelNs)

	hot := qs[:64]
	const rounds = 200
	sweep := func(db *reach.DB) time.Duration {
		start := time.Now()
		for i := 0; i < rounds; i++ {
			for _, q := range hot {
				if _, err := db.Reach(q.S, q.T); err != nil {
					panic(err)
				}
			}
		}
		return time.Since(start)
	}
	queries := float64(rounds * len(hot))
	udb, err := reach.NewDB(g, reach.DBConfig{})
	if err != nil {
		panic(err)
	}
	a.DBUncachedNsOp = float64(sweep(udb).Nanoseconds()) / queries
	cdb, err := reach.NewDB(g, reach.DBConfig{CacheSize: 4096})
	if err != nil {
		panic(err)
	}
	a.DBCachedNsOp = float64(sweep(cdb).Nanoseconds()) / queries
	a.DBCacheSpeedup = a.DBUncachedNsOp / a.DBCachedNsOp
	if snap, ok := cdb.CacheStats(); ok && snap.Hits+snap.Misses > 0 {
		a.DBCacheHitRate = float64(snap.Hits) / float64(snap.Hits+snap.Misses)
	}

	mdb, err := reach.NewDB(g, reach.DBConfig{
		Plain:      reach.KindBFL,
		ExtraPlain: []reach.Kind{reach.KindFeline, reach.KindPReaCH},
		Options:    reach.Options{Bits: 256, Seed: seed},
	})
	if err != nil {
		panic(err)
	}
	a.CondenseMemoHits = mdb.Prepared().Hits()
	return a
}
