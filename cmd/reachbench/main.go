// Command reachbench regenerates the paper's evaluation artifacts: the
// Table 1 / Table 2 taxonomies, the Figure 1 worked examples, and the
// E1–E10 claim experiments catalogued in EXPERIMENTS.md.
//
// Usage:
//
//	reachbench                     # run everything at the default scale
//	reachbench -only table1,e3    # run a subset
//	reachbench -scale 5           # multiply graph sizes by 5
//	reachbench -seed 42           # change the workload seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "size multiplier for experiment graphs")
	seed := flag.Int64("seed", 1, "workload seed")
	only := flag.String("only", "", "comma-separated subset: table1,table2,fig1,e1..e11")
	flag.Parse()

	sc := experiments.Scale{Factor: *scale}
	w := os.Stdout

	runners := map[string]func(io.Writer){
		"table1": func(w io.Writer) { experiments.Table1(w, sc.N(2000), *seed) },
		"table2": func(w io.Writer) { experiments.Table2(w, sc.N(150), 8, *seed) },
		"fig1":   func(w io.Writer) { experiments.Fig1(w) },
		"e1":     func(w io.Writer) { experiments.E1(w, sc, *seed) },
		"e2":     func(w io.Writer) { experiments.E2(w, sc, *seed) },
		"e3":     func(w io.Writer) { experiments.E3(w, sc, *seed) },
		"e4":     func(w io.Writer) { experiments.E4(w, sc, *seed) },
		"e5":     func(w io.Writer) { experiments.E5(w, sc, *seed) },
		"e6":     func(w io.Writer) { experiments.E6(w, sc, *seed) },
		"e7":     func(w io.Writer) { experiments.E7(w, sc, *seed) },
		"e8":     func(w io.Writer) { experiments.E8(w, sc, *seed) },
		"e9":     func(w io.Writer) { experiments.E9(w, sc, *seed) },
		"e10":    func(w io.Writer) { experiments.E10(w, sc, *seed) },
		"e11":    func(w io.Writer) { experiments.E11(w, sc, *seed) },
	}
	order := []string{"table1", "table2", "fig1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11"}

	selected := order
	if *only != "" {
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "reachbench: unknown experiment %q (want one of %s)\n",
					name, strings.Join(order, ","))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		runners[name](w)
	}
}
