// Command reachbench regenerates the paper's evaluation artifacts: the
// Table 1 / Table 2 taxonomies, the Figure 1 worked examples, and the
// E1–E12 claim experiments catalogued in EXPERIMENTS.md.
//
// Usage:
//
//	reachbench                     # run everything at the default scale
//	reachbench -only table1,e3    # run a subset
//	reachbench -scale 5           # multiply graph sizes by 5
//	reachbench -seed 42           # change the workload seed
//	reachbench -workers 4          # worker pool for parallel build phases
//	reachbench -metrics -index bfl  # instrumented workload + metrics dump
//	reachbench -benchjson BENCH.json  # machine-readable per-kind bench
//	reachbench -cpuprofile cpu.pb  # write a pprof CPU profile
//	reachbench -memprofile mem.pb  # write a pprof heap profile
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	reach "repro"
	"repro/internal/experiments"
	"repro/internal/gen"
)

func main() {
	scale := flag.Int("scale", 1, "size multiplier for experiment graphs")
	seed := flag.Int64("seed", 1, "workload seed")
	only := flag.String("only", "", "comma-separated subset: table1,table2,fig1,e1..e14")
	metrics := flag.Bool("metrics", false, "run an instrumented workload for -index and dump its metrics instead of the experiment suite")
	indexKind := flag.String("index", "bfl", "plain index kind for the -metrics run")
	workers := flag.Int("workers", 0, "worker pool for parallel build phases (0 = GOMAXPROCS, 1 = serial)")
	k := flag.Int("k", 3, "per-technique budget for the -metrics run")
	bits := flag.Int("bits", 256, "Bloom filter width for the -metrics run")
	benchjson := flag.String("benchjson", "", "write a machine-readable per-kind benchmark (build ns, query ns/op, allocs/op) to this file and exit")
	labelEnc := flag.String("labelenc", "raw", "2-hop label storage encoding for the benchmark builds: raw or varint")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	if flag.NArg() > 0 {
		usageExit("unexpected arguments %q", strings.Join(flag.Args(), " "))
	}
	if *scale < 1 {
		usageExit("-scale must be >= 1, got %d", *scale)
	}
	if *workers < 0 {
		usageExit("-workers must be >= 0, got %d", *workers)
	}
	if *k < 0 {
		usageExit("-k must be >= 0, got %d", *k)
	}
	if *bits < 0 {
		usageExit("-bits must be >= 0, got %d", *bits)
	}
	if *metrics {
		// Validate the index kind up front: fail with usage instead of
		// panicking mid-build on a bogus kind.
		if !validKind(reach.Kind(*indexKind)) {
			usageExit("unknown index kind %q (want one of %s)", *indexKind, kindList())
		}
	} else if *indexKind != "bfl" {
		usageExit("-index only applies with -metrics")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fail("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("memprofile: %v", err)
		}
	}()

	enc, ok := parseLabelEnc(*labelEnc)
	if !ok {
		usageExit("bad -labelenc %q (want raw or varint)", *labelEnc)
	}
	if *metrics {
		runMetrics(reach.Kind(*indexKind), *scale, *seed, reach.Options{K: *k, Bits: *bits, Workers: *workers, LabelEnc: enc})
		return
	}
	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, *scale, *seed, *workers, enc); err != nil {
			fail("benchjson: %v", err)
		}
		return
	}

	sc := experiments.Scale{Factor: *scale}
	w := os.Stdout

	runners := map[string]func(io.Writer){
		"table1": func(w io.Writer) { experiments.Table1(w, sc.N(2000), *seed) },
		"table2": func(w io.Writer) { experiments.Table2(w, sc.N(150), 8, *seed) },
		"fig1":   func(w io.Writer) { experiments.Fig1(w) },
		"e1":     func(w io.Writer) { experiments.E1(w, sc, *seed) },
		"e2":     func(w io.Writer) { experiments.E2(w, sc, *seed) },
		"e3":     func(w io.Writer) { experiments.E3(w, sc, *seed) },
		"e4":     func(w io.Writer) { experiments.E4(w, sc, *seed) },
		"e5":     func(w io.Writer) { experiments.E5(w, sc, *seed) },
		"e6":     func(w io.Writer) { experiments.E6(w, sc, *seed) },
		"e7":     func(w io.Writer) { experiments.E7(w, sc, *seed) },
		"e8":     func(w io.Writer) { experiments.E8(w, sc, *seed) },
		"e9":     func(w io.Writer) { experiments.E9(w, sc, *seed) },
		"e10":    func(w io.Writer) { experiments.E10(w, sc, *seed) },
		"e11":    func(w io.Writer) { experiments.E11(w, sc, *seed) },
		"e12":    func(w io.Writer) { experiments.E12(w, sc, *seed) },
		"e13":    func(w io.Writer) { experiments.E13(w, sc, *seed) },
		"e14":    func(w io.Writer) { experiments.E14(w, sc, *seed) },
	}
	order := []string{"table1", "table2", "fig1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14"}

	selected := order
	if *only != "" {
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if _, ok := runners[name]; !ok {
				usageExit("unknown experiment %q (want one of %s)", name, strings.Join(order, ","))
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		runners[name](w)
	}
}

// runMetrics builds the requested index with build-phase spans, drives a
// mixed workload through an instrumented wrapper, and dumps the snapshot.
func runMetrics(k reach.Kind, scale int, seed int64, opt reach.Options) {
	n := 20000 * scale
	g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})
	var spans reach.BuildSpans
	opt.Seed = seed
	opt.Spans = &spans
	raw, err := reach.Build(k, g, opt)
	if err != nil {
		fail("build %s: %v", k, err)
	}
	var m reach.IndexMetrics
	ix := reach.Instrument(raw, g, &m)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < 20000; i++ {
		ix.Reach(reach.V(rng.Intn(n)), reach.V(rng.Intn(n)))
	}
	fmt.Printf("index %s over %d vertices / %d edges, 20000 random queries\n",
		raw.Name(), g.N(), g.M())
	fmt.Println("build phases:")
	for _, sp := range spans.Snapshot() {
		attr := ""
		if sp.Workers > 0 {
			attr = fmt.Sprintf("  workers=%d", sp.Workers)
		}
		fmt.Printf("  %*s%-24s %v%s\n", 2*sp.Depth, "", sp.Name, sp.Dur, attr)
	}
	s := m.Snapshot()
	fmt.Printf("queries=%d (+%d/-%d) decided=%.1f%% fallback=%d visited=%d p50=%v p99=%v\n",
		s.Queries, s.Positive, s.Negative, 100*s.DecidedRate(), s.Fallback,
		s.Visited, s.Latency.P50, s.Latency.P99)
}

func parseLabelEnc(s string) (reach.LabelEncoding, bool) {
	switch s {
	case "raw":
		return reach.EncRaw, true
	case "varint":
		return reach.EncVarint, true
	}
	return 0, false
}

func validKind(k reach.Kind) bool {
	for _, kk := range reach.Kinds() {
		if kk == k {
			return true
		}
	}
	return false
}

func kindList() string {
	var names []string
	for _, k := range reach.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ",")
}

func usageExit(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "reachbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "reachbench: "+format+"\n", args...)
	os.Exit(1)
}
