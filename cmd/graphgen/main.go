// Command graphgen emits synthetic graphs in the edge-list exchange
// format — the workloads that stand in for the surveyed papers' datasets
// (see DESIGN.md, "Substitutions").
//
// Usage:
//
//	graphgen -family dag -n 100000 -m 400000 > dag.txt
//	graphgen -family scalefree -n 100000 -deg 3 > sf.txt
//	graphgen -family er -n 50000 -m 200000 -labels 8 -zipf 1.0 > lcr.txt
//	graphgen -family layered -layers 100 -width 50 -deg 3 > deep.txt
//	graphgen -family treeplus -n 100000 -m 5000 > treeish.txt
package main

import (
	"flag"
	"fmt"
	"os"

	reach "repro"
	"repro/internal/gen"
)

func main() {
	family := flag.String("family", "dag", "dag | er | scalefree | layered | treeplus")
	n := flag.Int("n", 10000, "vertices")
	m := flag.Int("m", 40000, "edges (dag, er) / extra edges (treeplus)")
	deg := flag.Int("deg", 3, "out-degree (scalefree) / fanout (layered)")
	layers := flag.Int("layers", 100, "layers (layered)")
	width := flag.Int("width", 100, "layer width (layered)")
	labels := flag.Int("labels", 0, "attach this many edge labels (0 = plain)")
	zipf := flag.Float64("zipf", 1.0, "label skew exponent (0 = uniform)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	// Validate up front: a bad size or label count would otherwise panic
	// deep inside a generator (or overflow the 64-bit label-set masks).
	switch {
	case *n <= 0:
		usage("-n must be positive, got %d", *n)
	case *m < 0:
		usage("-m must be non-negative, got %d", *m)
	case *deg <= 0:
		usage("-deg must be positive, got %d", *deg)
	case *layers <= 0 || *width <= 0:
		usage("-layers and -width must be positive, got %d/%d", *layers, *width)
	case *labels < 0 || *labels > 64:
		usage("-labels must be in 0..64 (label sets are 64-bit masks), got %d", *labels)
	case *zipf < 0:
		usage("-zipf must be non-negative, got %v", *zipf)
	}

	var g *reach.Graph
	switch *family {
	case "dag":
		g = gen.RandomDAG(gen.Config{N: *n, M: *m, Seed: *seed})
	case "er":
		g = gen.ErdosRenyi(gen.Config{N: *n, M: *m, Seed: *seed})
	case "scalefree":
		g = gen.ScaleFree(*n, *deg, *seed)
	case "layered":
		g = gen.LayeredDAG(*layers, *width, *deg, *seed)
	case "treeplus":
		g = gen.TreePlus(*n, *m, *seed)
	default:
		usage("unknown family %q", *family)
	}
	if *labels > 0 {
		g = gen.Zipf(g, *labels, *zipf, *seed+1)
	}
	if err := reach.WriteGraph(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}

func usage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
