package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	reach "repro"
)

// runAdvise implements `reachcli advise`: profile a graph and a recorded
// workload, short-list plain index kinds from the survey's taxonomy,
// shadow-build and trace-replay each candidate, and print the pick —
// chosen kind, measured p50/p99, footprint, and the regret against the
// best measured candidate. -json emits the full AdvisorReport.
func runAdvise(args []string) {
	fs := flag.NewFlagSet("reachcli advise", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (edge-list exchange format)")
	tracePath := fs.String("trace", "", "workload capture written by reachserve -record")
	budget := fs.Int64("budget", 0, "index footprint budget in bytes; 0 = unlimited")
	candidates := fs.String("candidates", "", "comma-separated kind list overriding the rule-table shortlist")
	maxCand := fs.Int("max-candidates", 0, "shortlist cap; 0 = default (5)")
	maxReplay := fs.Int("max-replay", 0, "cap on replayed plain records per candidate; 0 = all")
	timeout := fs.Duration("timeout", 0, "per-candidate build time-box; 0 = default (30s)")
	k := fs.Int("k", 0, "per-technique budget (intervals/sketches/landmarks); 0 = default")
	bits := fs.Int("bits", 0, "Bloom filter width (BFL/DBL); 0 = default")
	workers := fs.Int("workers", 0, "build worker cap; 0 = GOMAXPROCS")
	jsonOut := fs.Bool("json", false, "emit the full advisor report as JSON")
	fs.Parse(args)
	if *graphPath == "" || *tracePath == "" {
		fmt.Fprintln(os.Stderr, "reachcli advise: need -graph and -trace")
		fs.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fail("%v", err)
	}
	g, err := reach.ReadGraph(f)
	f.Close()
	if err != nil {
		fail("parse %s: %v", *graphPath, err)
	}
	tf, err := os.Open(*tracePath)
	if err != nil {
		fail("%v", err)
	}
	records, err := reach.ReadWorkload(tf)
	tf.Close()
	if err != nil {
		fail("read trace %s: %v", *tracePath, err)
	}

	cfg := reach.AdviseConfig{
		Budget:        *budget,
		BuildTimeout:  *timeout,
		MaxCandidates: *maxCand,
		MaxReplay:     *maxReplay,
		Options:       reach.Options{K: *k, Bits: *bits, Workers: *workers},
	}
	if *candidates != "" {
		for _, kind := range strings.Split(*candidates, ",") {
			cfg.Candidates = append(cfg.Candidates, reach.Kind(strings.TrimSpace(kind)))
		}
	}

	rep, err := reach.Advise(context.Background(), g, records, cfg)
	if err != nil {
		if rep != nil {
			for _, c := range rep.Candidates {
				if !c.Feasible {
					fmt.Fprintf(os.Stderr, "  %s: %s\n", c.Kind, c.Error)
				}
			}
		}
		fail("%v", firstLine(err))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail("encode: %v", err)
		}
		return
	}

	gp, wp := rep.Graph, rep.Workload
	fmt.Printf("graph %s: %d vertices, %d edges", *graphPath, gp.N, gp.M)
	if gp.CyclicMass > 0 {
		fmt.Printf(", %d SCCs (%.0f%% cyclic mass)", gp.SCCs, 100*gp.CyclicMass)
	} else {
		fmt.Printf(", acyclic")
	}
	fmt.Printf(", depth %d, width %d\n", gp.Depth, gp.Width)
	fmt.Printf("trace %s: %d records, %d plain (%.0f%% positive, %.0f%% cached)\n",
		*tracePath, wp.Records, wp.Plain, 100*wp.PositiveShare, 100*wp.CachedShare)
	fmt.Printf("baseline (index-free BFS): p50 %v  p99 %v\n",
		time.Duration(rep.Baseline.P50NS), time.Duration(rep.Baseline.P99NS))

	fmt.Printf("%-10s %10s %12s %10s %10s %8s  %s\n",
		"kind", "build", "bytes", "p50", "p99", "miss", "note")
	for _, c := range rep.Candidates {
		if !c.Feasible {
			fmt.Printf("%-10s %10s %12s %10s %10s %8s  %s\n",
				c.Kind, "-", "-", "-", "-", "-", c.Error)
			continue
		}
		note := c.Reason
		if c.OverBudget {
			note = "OVER BUDGET; " + note
		}
		fmt.Printf("%-10s %10v %12d %10v %10v %8d  %s\n",
			c.Kind, time.Duration(c.BuildNS).Round(time.Microsecond), c.Bytes,
			time.Duration(c.P50NS), time.Duration(c.P99NS), c.Mismatches, note)
	}
	fmt.Printf("chosen %s (p99 %v)", rep.Chosen, time.Duration(rep.ChosenP99NS))
	if rep.Best != "" && rep.Best != rep.Chosen {
		fmt.Printf("; best measured %s (p99 %v)", rep.Best, time.Duration(rep.BestP99NS))
	}
	fmt.Printf("; regret %.2fx\n", rep.Regret)
}
