package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	reach "repro"
)

// runReplay implements `reachcli replay`: re-run a workload captured by
// `reachserve -record` against a freshly built index (any kind) and
// report, per capture route, how replay latency compares to capture
// latency, plus the replay index's decided rate — the experiment behind
// "would index X have served this traffic better?".
func runReplay(args []string) {
	fs := flag.NewFlagSet("reachcli replay", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file the workload was captured against")
	workloadPath := fs.String("workload", "", "capture file written by reachserve -record")
	indexKind := fs.String("index", "bfl", "plain index kind to replay against")
	lcrKind := fs.String("lcr", "p2h", "LCR index kind for labeled graphs")
	k := fs.Int("k", 0, "per-technique budget; 0 = default")
	bits := fs.Int("bits", 0, "Bloom filter width (BFL/DBL); 0 = default")
	maxseq := fs.Int("maxseq", 0, "RLC max concatenation length κ; 0 = default")
	workers := fs.Int("workers", 0, "build worker cap; 0 = GOMAXPROCS")
	verbose := fs.Bool("v", false, "also print the replay DB's full metrics snapshot")
	fs.Parse(args)
	if *graphPath == "" || *workloadPath == "" {
		fmt.Fprintln(os.Stderr, "reachcli replay: need -graph and -workload")
		fs.Usage()
		os.Exit(2)
	}

	wf, err := os.Open(*workloadPath)
	if err != nil {
		fail("%v", err)
	}
	records, err := reach.ReadWorkload(wf)
	wf.Close()
	if err != nil {
		fail("read workload %s: %v", *workloadPath, err)
	}
	if len(records) == 0 {
		fail("workload %s holds no records", *workloadPath)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fail("%v", err)
	}
	g, err := reach.ReadGraph(f)
	f.Close()
	if err != nil {
		fail("parse %s: %v", *graphPath, err)
	}

	buildStart := time.Now()
	db, err := reach.NewDB(g, reach.DBConfig{
		Plain:   reach.Kind(*indexKind),
		LCR:     reach.LCRKind(*lcrKind),
		Options: reach.Options{K: *k, Bits: *bits, Workers: *workers, MaxSeq: *maxseq},
		Metrics: true,
	})
	if err != nil {
		fail("build: %v", firstLine(err))
	}
	fmt.Printf("replaying %d records from %s against index %s (built in %v)\n",
		len(records), *workloadPath, *indexKind, time.Since(buildStart).Round(time.Millisecond))

	// Per capture route: how the same queries fared on the replay index.
	type routeAgg struct {
		n          int
		captureNS  int64
		replayNS   int64
		mismatches int
		errors     int
	}
	byRoute := map[string]*routeAgg{}
	n := g.N()
	for _, rec := range records {
		agg := byRoute[rec.Route]
		if agg == nil {
			agg = &routeAgg{}
			byRoute[rec.Route] = agg
		}
		agg.n++
		agg.captureNS += rec.Latency.Nanoseconds()
		if int(rec.S) >= n || int(rec.T) >= n {
			// The capture came from a different (or since-edited) graph;
			// count it rather than aborting a long replay midway.
			agg.errors++
			continue
		}
		s, t := reach.V(rec.S), reach.V(rec.T)
		var (
			got  bool
			qerr error
		)
		t0 := time.Now()
		switch {
		case len(rec.Labels) > 0:
			labels := make([]reach.Label, len(rec.Labels))
			for i, l := range rec.Labels {
				labels[i] = reach.Label(l)
			}
			got, qerr = db.QueryAllowed(s, t, labels...)
		case rec.Alpha != "":
			got, qerr = db.Query(s, t, rec.Alpha)
		default:
			got, qerr = db.Reach(s, t)
		}
		agg.replayNS += time.Since(t0).Nanoseconds()
		switch {
		case qerr != nil:
			agg.errors++
		case got != rec.Outcome:
			agg.mismatches++
		}
	}

	routes := make([]string, 0, len(byRoute))
	for r := range byRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	fmt.Printf("%-16s %8s %12s %12s %9s %10s %7s\n",
		"route", "queries", "capture", "replay", "delta", "mismatch", "errors")
	for _, r := range routes {
		a := byRoute[r]
		cap0 := time.Duration(a.captureNS / int64(a.n))
		rep := time.Duration(a.replayNS / int64(a.n))
		delta := "n/a"
		if a.captureNS > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*float64(a.replayNS-a.captureNS)/float64(a.captureNS))
		}
		fmt.Printf("%-16s %8d %12v %12v %9s %10d %7d\n",
			r, a.n, cap0, rep, delta, a.mismatches, a.errors)
	}

	// Decided rate of the replay index: the fraction of plain queries it
	// settled without guided traversal (capture-side decided rates live in
	// the capture server's /metrics, not the workload file).
	if snap, ok := db.MetricsSnapshot(); ok {
		for name, ix := range snap.Indexes {
			if ix.Queries > 0 {
				fmt.Printf("replay index %s: decided %.1f%% of %d queries (%d fallbacks)\n",
					name, 100*ix.DecidedRate(), ix.Queries, ix.Fallback)
			}
		}
		if *verbose {
			snap.WriteText(os.Stdout)
		}
	}
}
