package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	reach "repro"
)

// runReplay implements `reachcli replay`: re-run a workload captured by
// `reachserve -record` against a freshly built index (any kind) and
// report, per capture route, how replay latency compares to capture
// latency, plus the replay index's decided rate — the experiment behind
// "would index X have served this traffic better?". The aggregation is
// reach.ReplayWorkload, the same evaluator the index advisor scores
// candidates with; -json emits its ReplaySummary struct directly.
func runReplay(args []string) {
	fs := flag.NewFlagSet("reachcli replay", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file the workload was captured against")
	workloadPath := fs.String("workload", "", "capture file written by reachserve -record")
	indexKind := fs.String("index", "bfl", "plain index kind to replay against")
	lcrKind := fs.String("lcr", "p2h", "LCR index kind for labeled graphs")
	k := fs.Int("k", 0, "per-technique budget; 0 = default")
	bits := fs.Int("bits", 0, "Bloom filter width (BFL/DBL); 0 = default")
	maxseq := fs.Int("maxseq", 0, "RLC max concatenation length κ; 0 = default")
	workers := fs.Int("workers", 0, "build worker cap; 0 = GOMAXPROCS")
	jsonOut := fs.Bool("json", false, "emit the machine-readable per-route summary as JSON")
	verbose := fs.Bool("v", false, "also print the replay DB's full metrics snapshot")
	fs.Parse(args)
	if *graphPath == "" || *workloadPath == "" {
		fmt.Fprintln(os.Stderr, "reachcli replay: need -graph and -workload")
		fs.Usage()
		os.Exit(2)
	}

	wf, err := os.Open(*workloadPath)
	if err != nil {
		fail("%v", err)
	}
	records, err := reach.ReadWorkload(wf)
	wf.Close()
	if err != nil {
		fail("read workload %s: %v", *workloadPath, err)
	}
	if len(records) == 0 {
		fail("workload %s holds no records", *workloadPath)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fail("%v", err)
	}
	g, err := reach.ReadGraph(f)
	f.Close()
	if err != nil {
		fail("parse %s: %v", *graphPath, err)
	}

	buildStart := time.Now()
	db, err := reach.NewDB(g, reach.DBConfig{
		Plain:   reach.Kind(*indexKind),
		LCR:     reach.LCRKind(*lcrKind),
		Options: reach.Options{K: *k, Bits: *bits, Workers: *workers, MaxSeq: *maxseq},
		Metrics: true,
	})
	if err != nil {
		fail("build: %v", firstLine(err))
	}
	buildNS := time.Since(buildStart)
	if !*jsonOut {
		fmt.Printf("replaying %d records from %s against index %s (built in %v)\n",
			len(records), *workloadPath, *indexKind, buildNS.Round(time.Millisecond))
	}

	sum := reach.ReplayWorkload(db, records)

	if *jsonOut {
		out := replayJSON{
			Graph:    *graphPath,
			Workload: *workloadPath,
			Index:    *indexKind,
			BuildNS:  buildNS.Nanoseconds(),
			Summary:  sum,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail("encode: %v", err)
		}
		return
	}

	fmt.Printf("%-16s %8s %12s %12s %9s %10s %7s\n",
		"route", "queries", "capture", "replay", "delta", "mismatch", "errors")
	for _, r := range sum.Routes {
		cap0 := time.Duration(r.CaptureNS / int64(r.Queries))
		rep := time.Duration(r.ReplayNS / int64(r.Queries))
		delta := "n/a"
		if r.CaptureNS > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*float64(r.ReplayNS-r.CaptureNS)/float64(r.CaptureNS))
		}
		fmt.Printf("%-16s %8d %12v %12v %9s %10d %7d\n",
			r.Route, r.Queries, cap0, rep, delta, r.Mismatches, r.Errors)
	}

	// Decided rate of the replay index: the fraction of plain queries it
	// settled without guided traversal (capture-side decided rates live in
	// the capture server's /metrics, not the workload file).
	if snap, ok := db.MetricsSnapshot(); ok {
		for name, ix := range snap.Indexes {
			if ix.Queries > 0 {
				fmt.Printf("replay index %s: decided %.1f%% of %d queries (%d fallbacks)\n",
					name, 100*ix.DecidedRate(), ix.Queries, ix.Fallback)
			}
		}
		if *verbose {
			snap.WriteText(os.Stdout)
		}
	}
}

// replayJSON wraps the shared ReplaySummary with the run's provenance
// for `reachcli replay -json`.
type replayJSON struct {
	Graph    string               `json:"graph"`
	Workload string               `json:"workload"`
	Index    string               `json:"index"`
	BuildNS  int64                `json:"build_ns"`
	Summary  *reach.ReplaySummary `json:"summary"`
}
