// Command reachcli loads a graph in the edge-list exchange format, builds
// the requested indexes, and answers reachability queries from the command
// line or stdin.
//
// Usage:
//
//	reachcli -graph g.txt -index bfl -q "0 15"           # plain query
//	reachcli -graph g.txt -q "alice bob (knows|likes)*"  # constrained
//	echo "0 1\n0 2" | reachcli -graph g.txt              # batch on stdin
//	reachcli -graph g.txt -json -q "0 15"                # JSON result lines
//	reachcli stats -graph g.txt -index bfl -queries 5000 # observability
//	reachcli replay -graph g.txt -workload w.rec -index pll
//	reachcli advise -graph g.txt -trace w.rec -budget 1000000 -json
//
// Query lines hold "s t" for plain reachability or "s t α" for a
// path-constrained query; vertices may be ids or names from the file.
//
// The stats subcommand builds the index with the observability layer
// enabled, drives a sampled query workload through it, and prints the
// metrics snapshot: per-index positive/negative counts, TryReach
// decided-rate, guided-traversal fallback volume, latency percentiles,
// and named build-phase durations (see OBSERVABILITY.md).
//
// The replay subcommand re-runs a workload captured with `reachserve
// -record` against any index kind and reports per-route latency deltas
// versus the capture plus the replay index's decided rate — the tool for
// asking "would a different index have served this traffic better?".
// With -json it emits the machine-readable per-route summary the index
// advisor's evaluator shares.
//
// The advise subcommand answers that question automatically: it profiles
// the graph and the capture, short-lists index kinds from the survey's
// taxonomy, shadow-builds and replays each within a time-box and an
// optional byte budget, and reports the measured pick (see DESIGN.md,
// "Advisor").
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	reach "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		runStats(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		runReplay(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "advise" {
		runAdvise(os.Args[2:])
		return
	}
	graphPath := flag.String("graph", "", "graph file (edge-list exchange format)")
	indexKind := flag.String("index", "bfl", "plain index kind (see -list)")
	lcrKind := flag.String("lcr", "p2h", "LCR index kind for labeled graphs")
	query := flag.String("q", "", "single query: 's t' or 's t α'; default reads stdin")
	list := flag.Bool("list", false, "list available index kinds and exit")
	stats := flag.Bool("stats", false, "print index statistics")
	k := flag.Int("k", 0, "per-technique budget (intervals/sketches/landmarks); 0 = default")
	bits := flag.Int("bits", 0, "Bloom filter width (BFL/DBL); 0 = default")
	workers := flag.Int("workers", 0, "build worker cap; 0 = GOMAXPROCS")
	maxseq := flag.Int("maxseq", 0, "RLC max concatenation length κ; 0 = default")
	timeout := flag.Duration("timeout", 0, "abort index construction after this long; 0 = no limit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per query result instead of plain text")
	flag.Parse()

	if *list {
		fmt.Println("plain kinds:")
		for _, k := range reach.Kinds() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("lcr kinds:")
		for _, k := range reach.LCRKinds() {
			fmt.Printf("  %s\n", k)
		}
		return
	}
	if *graphPath == "" {
		fail("missing -graph")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fail("%v", err)
	}
	g, err := reach.ReadGraph(f)
	f.Close()
	if err != nil {
		fail("parse %s: %v", *graphPath, err)
	}
	fmt.Fprintf(os.Stderr, "loaded %s: %d vertices, %d edges, %d labels\n",
		*graphPath, g.N(), g.M(), g.Labels())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	db, err := reach.NewDBCtx(ctx, g, reach.DBConfig{
		Plain:   reach.Kind(*indexKind),
		LCR:     reach.LCRKind(*lcrKind),
		Options: reach.Options{K: *k, Bits: *bits, Workers: *workers, MaxSeq: *maxseq},
	})
	if err != nil {
		fail("build: %v", firstLine(err))
	}
	if *stats {
		for name, st := range db.Stats() {
			fmt.Fprintf(os.Stderr, "index %-12s entries=%-10d bytes=%-12d build=%v\n",
				name, st.Entries, st.Bytes, st.BuildTime)
		}
	}

	// emit prints one result. Plain mode writes the historical true/false
	// lines; -json writes one object per query, machine-splittable with
	// line-oriented tools (jq, scripts piping stdin batches).
	emit := func(res queryResult) {
		if *jsonOut {
			b, _ := json.Marshal(res)
			fmt.Println(string(b))
			return
		}
		if res.Error != "" {
			fmt.Printf("error: %s\n", res.Error)
			return
		}
		fmt.Println(*res.Reachable)
	}
	answer := func(line string) {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			emit(queryResult{Query: line, Error: fmt.Sprintf("want 's t' or 's t α', got %q", line)})
			return
		}
		res := queryResult{Query: line, S: fields[0], T: fields[1]}
		s, ok1 := vertex(g, fields[0])
		t, ok2 := vertex(g, fields[1])
		if !ok1 || !ok2 {
			res.Error = fmt.Sprintf("unknown vertex in %q", line)
			emit(res)
			return
		}
		var got bool
		var err error
		if len(fields) == 2 {
			got, err = db.Reach(s, t)
		} else {
			res.Alpha = strings.Join(fields[2:], " ")
			got, err = db.Query(s, t, res.Alpha)
		}
		if err != nil {
			res.Error = firstLine(err)
			emit(res)
			return
		}
		res.Reachable = &got
		emit(res)
	}

	if *query != "" {
		answer(*query)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		answer(line)
	}
}

// runStats implements `reachcli stats`: build with metrics enabled, run a
// sampled workload, print decided-rate, fallback-rate, and latency
// percentiles per index plus the build-phase spans.
func runStats(args []string) {
	fs := flag.NewFlagSet("reachcli stats", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (edge-list exchange format)")
	indexKind := fs.String("index", "bfl", "plain index kind")
	lcrKind := fs.String("lcr", "p2h", "LCR index kind for labeled graphs")
	queries := fs.Int("queries", 2000, "number of sampled queries to drive")
	seed := fs.Int64("seed", 1, "workload seed")
	fs.Parse(args)
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "reachcli stats: missing -graph")
		fs.Usage()
		os.Exit(2)
	}
	if *queries <= 0 {
		fmt.Fprintln(os.Stderr, "reachcli stats: -queries must be positive")
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fail("%v", err)
	}
	g, err := reach.ReadGraph(f)
	f.Close()
	if err != nil {
		fail("parse %s: %v", *graphPath, err)
	}
	db, err := reach.NewDB(g, reach.DBConfig{
		Plain:   reach.Kind(*indexKind),
		LCR:     reach.LCRKind(*lcrKind),
		Metrics: true,
	})
	if err != nil {
		fail("build: %v", firstLine(err))
	}
	db.PublishExpvar("reach_db")

	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *queries; i++ {
		s := reach.V(rng.Intn(g.N()))
		t := reach.V(rng.Intn(g.N()))
		db.Reach(s, t)
	}
	if g.Labeled() {
		mask := uint64(1)<<uint(g.Labels()) - 1
		for i := 0; i < *queries/4; i++ {
			s := reach.V(rng.Intn(g.N()))
			t := reach.V(rng.Intn(g.N()))
			var labels []reach.Label
			pick := rng.Uint64() & mask
			for l := 0; l < g.Labels(); l++ {
				if pick&(1<<uint(l)) != 0 {
					labels = append(labels, reach.Label(l))
				}
			}
			db.QueryAllowed(s, t, labels...)
		}
	}
	fmt.Printf("graph %s: %d vertices, %d edges, %d labels; %d sampled queries\n",
		*graphPath, g.N(), g.M(), g.Labels(), *queries)
	snap, _ := db.MetricsSnapshot()
	snap.WriteText(os.Stdout)
}

// queryResult is one -json output line. Reachable is a pointer so the
// field is present exactly when the query produced an answer; on errors
// the object carries the echoed query and the error instead.
type queryResult struct {
	Query     string `json:"query"`
	S         string `json:"s,omitempty"`
	T         string `json:"t,omitempty"`
	Alpha     string `json:"alpha,omitempty"`
	Reachable *bool  `json:"reachable,omitempty"`
	Error     string `json:"error,omitempty"`
}

func vertex(g *reach.Graph, tok string) (reach.V, bool) {
	if n, err := strconv.ParseUint(tok, 10, 32); err == nil && int(n) < g.N() {
		return reach.V(n), true
	}
	return g.VertexByName(tok)
}

// firstLine trims an error to its first line: the contained-panic errors
// carry the originating stack in their message, which belongs in logs,
// not on a CLI's one-line diagnostic.
func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " ..."
	}
	return s
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "reachcli: "+format+"\n", args...)
	os.Exit(1)
}
