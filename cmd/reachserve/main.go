// Command reachserve serves reachability queries over HTTP/JSON (see
// internal/server and DESIGN.md, "Serving").
//
// Usage:
//
//	reachserve -graph g.txt                         # serve on :8080
//	reachserve -demo -addr 127.0.0.1:0 -addrfile a  # demo graph, random port
//	reachserve -graph g.txt -snapshot g.idx         # warm-start when g.idx exists
//	reachserve -graph g.txt -snapshot g.idx -mmap   # zero-copy mapped cold start
//	reachserve -graph g.txt -wal g.wal              # writable: POST /v1/mutate
//	reachserve -graph g.txt -shards 4               # sharded plain engine
//	reachserve -graph g.txt -autotune 30s           # workload-adaptive index
//
// Endpoints: /v1/reach?s=&t=, /v1/query?s=&t=&alpha=, /v1/allowed?s=&t=&labels=,
// POST /v1/batch, /v1/path?s=&t=[&alpha=], POST /v1/mutate (with -wal),
// /healthz, /readyz, /metrics (Prometheus exposition via Accept or
// ?format=prometheus), /debug/vars, /debug/traces, /debug/pprof/ (with
// -pprof), /admin/stats, /admin/shards (with -shards), /admin/advise (with
// -autotune), POST /admin/reload.
//
// -shards k partitions the condensation DAG into k contiguous
// topological ranges, builds one plain index per shard in parallel, and
// answers cross-shard queries through a 2-hop summary over the boundary
// vertices; answers are exact for every k. With -snapshot, each shard
// warm-starts from <snapshot>.shard<i>. Incompatible with -wal.
//
// With -snapshot the graph's CSR arrays are also persisted to
// <snapshot>.graph, so later boots page-map the adjacency instead of
// re-parsing the edge-list text (the snapshot is ignored when older than
// the graph file).
//
// -wal makes the DB writable: edge mutations group-commit to the named
// write-ahead log before acknowledging, queries stay exact via a delta
// overlay, and a restart on the same -wal (and -graph/-snapshot) replays
// the log so acknowledged writes survive crashes. /admin/reload is
// disabled under -wal — reloading from the graph file would silently
// drop logged mutations.
//
// -autotune runs the index advisor over a rolling sample of the live
// plain-query traffic at the given interval: candidates from the survey
// taxonomy are shadow-built in the background and trace-replayed, and
// the serving plain index is hot-swapped when the pick's measured p99
// beats it by -autotune-margin. /admin/advise reports the tuner's state
// and the last evaluation. Incompatible with -wal and -shards (each owns
// its own index-swap path).
//
// Logs are structured (log/slog); -log-format json switches the sink to
// JSON lines, -log-level sets the floor. -record captures the query
// workload to a file replayable with `reachcli replay`.
//
// SIGTERM or SIGINT drains gracefully: /readyz flips to 503, in-flight
// requests finish, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	reach "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file (for port-0 scripting)")
	graphPath := flag.String("graph", "", "graph file (edge-list exchange format)")
	demo := flag.Bool("demo", false, "serve the paper's Figure 1(b) demo graph instead of -graph")
	indexKind := flag.String("index", "bfl", "plain index kind")
	lcrKind := flag.String("lcr", "p2h", "LCR index kind for labeled graphs")
	k := flag.Int("k", 0, "per-technique budget; 0 = default")
	bits := flag.Int("bits", 0, "Bloom filter width (BFL/DBL); 0 = default")
	maxseq := flag.Int("maxseq", 0, "RLC max concatenation length κ; 0 = default")
	workers := flag.Int("workers", 0, "build worker cap; 0 = GOMAXPROCS")
	cache := flag.Int("cache", 0, "query-result cache entries; 0 disables")
	metrics := flag.Bool("metrics", true, "enable the observability layer")
	degraded := flag.Bool("degraded", false, "keep serving when an optional index build fails")
	snapshot := flag.String("snapshot", "", "plain-index snapshot file: load when present, write after a fresh build (bfl/pll/dl kinds)")
	mmapSnap := flag.Bool("mmap", false, "use the mapped snapshot layout: write aligned+checksummed snapshots and cold-start by page-mapping them (zero-copy) instead of decoding")
	shards := flag.Int("shards", 0, "partition the DAG into this many shards with per-shard indexes and a boundary summary; 0 disables (incompatible with -wal)")
	walPath := flag.String("wal", "", "write-ahead log file; enables POST /v1/mutate and replays the log on start (unlabeled graphs, disables -cache and /admin/reload)")
	walFsync := flag.String("wal-fsync", "always", "WAL durability: always (fsync before acking each group commit) or never (OS page cache)")
	mutateBatch := flag.Int("mutate-batch", 0, "max mutation ops per group commit; 0 = default")
	mutateDelay := flag.Duration("mutate-delay", 0, "max time a mutation waits to share a group commit; 0 = default")
	rebuildThreshold := flag.Int("rebuild-threshold", 0, "overlay edges that trigger a background reindex; 0 = default, negative disables")
	labelEnc := flag.String("labelenc", "raw", "2-hop label storage encoding: raw (flat uint32 arrays) or varint (delta-compressed)")
	maxInFlight := flag.Int("max-inflight", 256, "max concurrently executing query requests")
	maxQueue := flag.Int("max-queue", 0, "max queued query requests; 0 = same as -max-inflight")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "max time a request waits for an admission slot")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline; negative disables")
	buildTimeout := flag.Duration("build-timeout", 0, "abort index construction after this long; 0 = no limit")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight requests on shutdown")
	traceBuf := flag.Int("trace-buffer", 256, "recent-trace ring size for /debug/traces; 0 disables tracing")
	slowQuery := flag.Duration("slow-query", 250*time.Millisecond, "log and retain traces of requests slower than this; 0 disables the slow log")
	record := flag.String("record", "", "capture the query workload to this file (replay with `reachcli replay`)")
	autotune := flag.Duration("autotune", 0, "evaluate the index advisor over live traffic this often and hot-swap the plain index when its pick is faster; 0 disables (incompatible with -wal and -shards)")
	autotuneMargin := flag.Float64("autotune-margin", 0, "min fractional p99 improvement before a hot swap (0 = default 0.10)")
	autotuneBudget := flag.Int64("autotune-budget", 0, "index footprint budget in bytes for auto-tune candidates; 0 = unlimited")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	accessLog := flag.Bool("access-log", true, "log one structured line per request")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	logger, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reachserve:", err)
		os.Exit(1)
	}
	// Legacy bridge for call sites (and server internals) still writing
	// through *log.Logger; lines land in the same structured sink.
	lg := slog.NewLogLogger(logger.Handler(), slog.LevelInfo)
	if *demo == (*graphPath != "") {
		lg.Fatal("need exactly one of -graph or -demo")
	}
	if *shards > 0 && *walPath != "" {
		// The mutation pipeline rebuilds and hot-swaps a single index; a
		// sharded engine has no overlay path, so writable serving stays
		// unsharded.
		lg.Fatal("-shards is incompatible with -wal")
	}
	if *autotune > 0 && (*walPath != "" || *shards > 0) {
		// The auto-tuner owns the plain-index swap path; the mutation
		// reindexer and the sharded engine each own theirs.
		lg.Fatal("-autotune is incompatible with -wal and -shards")
	}

	var tracer *obs.Tracer
	if *traceBuf > 0 {
		tracer = obs.NewTracer(*traceBuf, *slowQuery)
	}

	var (
		recorder *reach.WorkloadRecorder
		recFile  *os.File
	)
	if *record != "" {
		recFile, err = os.Create(*record)
		if err != nil {
			lg.Fatalf("record: %v", err)
		}
		recorder = reach.NewWorkloadRecorder(recFile)
		logger.Info("workload capture enabled", "file", *record)
	}

	enc, err := parseLabelEnc(*labelEnc)
	if err != nil {
		lg.Fatalf("%v", err)
	}
	cfg := reach.DBConfig{
		Plain:          reach.Kind(*indexKind),
		LCR:            reach.LCRKind(*lcrKind),
		Options:        reach.Options{K: *k, Bits: *bits, Workers: *workers, MaxSeq: *maxseq, LabelEnc: enc},
		Metrics:        *metrics,
		Degraded:       *degraded,
		Tracing:        tracer != nil,
		RecordWorkload: recorder,
		CacheSize: func() int {
			if *cache < 0 || *walPath != "" {
				// The query cache has no invalidation path, so a
				// writable DB must run without it (NewDBCtx rejects
				// the combination).
				return 0
			}
			return *cache
		}(),
	}
	if *autotune > 0 {
		cfg.AutoTune = &reach.AutoTuneConfig{
			CheckInterval:  *autotune,
			MinImprovement: *autotuneMargin,
			Budget:         *autotuneBudget,
		}
		logger.Info("auto-tune enabled", "interval", *autotune, "margin", *autotuneMargin, "budget", *autotuneBudget)
	}
	if *walPath != "" {
		fsync, err := parseFsync(*walFsync)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		cfg.Mutation = &reach.MutationConfig{
			WALPath:          *walPath,
			Fsync:            fsync,
			BatchOps:         *mutateBatch,
			BatchDelay:       *mutateDelay,
			RebuildThreshold: *rebuildThreshold,
		}
	}

	buildDB := func(ctx context.Context) (*reach.DB, error) {
		return openDB(ctx, *graphPath, *demo, *snapshot, *mmapSnap, *shards, cfg, lg)
	}

	ctx := context.Background()
	if *buildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *buildTimeout)
		defer cancel()
	}
	start := time.Now()
	db, err := buildDB(ctx)
	if err != nil {
		lg.Fatalf("build: %v", err)
	}
	g := db.Graph()
	logger.Info("build complete",
		"vertices", g.N(), "edges", g.M(), "labels", g.Labels(),
		"index", *indexKind, "dur", time.Since(start).Round(time.Millisecond))

	scfg := server.Config{
		DB:             db,
		Rebuild:        buildDB,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		ReloadTimeout:  *buildTimeout,
		ExpvarName:     "reach_db",
		Log:            lg,
		Tracer:         tracer,
		EnablePprof:    *pprofOn,
	}
	if *walPath != "" {
		// Reload re-reads the graph file, which would discard every
		// mutation the WAL has acknowledged; a writable server swaps
		// indexes through the mutation pipeline's own rebuilds instead.
		scfg.Rebuild = nil
		logger.Info("mutation enabled; /admin/reload disabled", "wal", *walPath, "fsync", *walFsync)
	}
	if *accessLog {
		scfg.AccessLog = logger
	}
	srv, err := server.New(scfg)
	if err != nil {
		lg.Fatalf("server: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Fatalf("listen: %v", err)
	}
	logger.Info("listening", "addr", l.Addr().String())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(l.Addr().String()+"\n"), 0o644); err != nil {
			lg.Fatalf("addrfile: %v", err)
		}
	}

	// Serve until SIGTERM/SIGINT, then drain: the signal flips /readyz,
	// Shutdown closes the listener and waits for in-flight requests.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			lg.Fatalf("drain: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			lg.Fatalf("serve: %v", err)
		}
		logger.Info("drained cleanly", "completed_during_drain", srv.Metrics().Drained.Load())
		// Close the DB after the drain so no in-flight mutation loses its
		// group commit: Close flushes the batcher, syncs the WAL, and
		// stops the background reindexer. A WAL that cannot be closed
		// cleanly is a hard error — the operator must know before
		// trusting the file for the next start.
		if err := srv.DB().Close(); err != nil {
			lg.Fatalf("close: %v", err)
		}
		if recorder != nil {
			// Close after the drain so every completed request's record is
			// flushed; a capture that cannot be flushed is a hard error —
			// silently truncated workloads poison downstream replay.
			n := recorder.Count()
			if err := recorder.Close(); err != nil {
				lg.Fatalf("record: %v", err)
			}
			if err := recFile.Close(); err != nil {
				lg.Fatalf("record: %v", err)
			}
			logger.Info("workload capture written", "file", *record, "records", n)
		}
	case err := <-errc:
		lg.Fatalf("serve: %v", err)
	}
}

// parseFsync maps the -wal-fsync flag onto reach.FsyncMode.
func parseFsync(s string) (reach.FsyncMode, error) {
	switch s {
	case "always":
		return reach.FsyncAlways, nil
	case "never":
		return reach.FsyncNever, nil
	}
	return 0, fmt.Errorf("bad -wal-fsync %q (want always or never)", s)
}

// parseLabelEnc maps the -labelenc flag onto reach.LabelEncoding.
func parseLabelEnc(s string) (reach.LabelEncoding, error) {
	switch s {
	case "raw":
		return reach.EncRaw, nil
	case "varint":
		return reach.EncVarint, nil
	}
	return 0, fmt.Errorf("bad -labelenc %q (want raw or varint)", s)
}

// newLogger builds the process logger: structured lines to w, text or
// JSON, at the requested minimum level.
func newLogger(w *os.File, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// openDB loads the graph and constructs the DB, warm-starting the plain
// index from snapPath when that file exists and writing a fresh snapshot
// there when it does not. Reload paths re-enter here, so editing the
// graph file and POSTing /admin/reload picks the new graph up; a stale
// snapshot that no longer matches the graph fails the build with a typed
// error rather than serving wrong answers.
func openDB(ctx context.Context, graphPath string, demo bool, snapPath string, mmapSnap bool, shards int, cfg reach.DBConfig, lg *log.Logger) (*reach.DB, error) {
	var g *reach.Graph
	if demo {
		g = reach.Fig1Labeled()
	} else {
		var err error
		g, err = loadGraph(graphPath, snapPath, lg)
		if err != nil {
			return nil, err
		}
	}

	if shards > 0 {
		sdb, err := reach.NewShardedDBCtx(ctx, g, reach.ShardedConfig{
			Shards:         shards,
			Plain:          cfg.Plain,
			Options:        cfg.Options,
			Metrics:        cfg.Metrics,
			CacheSize:      cfg.CacheSize,
			Tracing:        cfg.Tracing,
			RecordWorkload: cfg.RecordWorkload,
			SnapshotPrefix: snapPath,
			Mapped:         mmapSnap,
		})
		if err != nil {
			return nil, err
		}
		if snapPath != "" {
			lg.Printf("sharded plain engine up: k=%d, per-shard snapshots at %s.shard<i>", shards, snapPath)
		} else {
			lg.Printf("sharded plain engine up: k=%d", shards)
		}
		return sdb.DB, nil
	}

	warm := false
	if snapPath != "" {
		if f, err := os.Open(snapPath); err == nil {
			if mmapSnap {
				// Mapped cold start: hand the path through so the DB
				// page-maps the file instead of decoding the stream.
				f.Close()
				cfg.PlainSnapshotMapped = snapPath
			} else {
				cfg.PlainSnapshot = f
				defer f.Close()
			}
			warm = true
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("snapshot %s: %w", snapPath, err)
		}
	}
	db, err := reach.NewDBCtx(ctx, g, cfg)
	if err != nil {
		if warm {
			return nil, fmt.Errorf("warm-start from %s: %w (delete the snapshot to rebuild)", snapPath, err)
		}
		return nil, err
	}
	if warm {
		if mmapSnap {
			lg.Printf("warm-started plain index from %s (page-mapped)", snapPath)
		} else {
			lg.Printf("warm-started plain index from %s", snapPath)
		}
	} else if snapPath != "" {
		if err := writeSnapshot(snapPath, cfg.Plain, mmapSnap, db); err != nil {
			lg.Printf("snapshot save failed (serving anyway): %v", err)
		} else {
			lg.Printf("saved plain-index snapshot to %s", snapPath)
		}
	}
	return db, nil
}

// loadGraph reads the graph, preferring the page-mapped CSR snapshot at
// <snapPath>.graph over re-parsing the edge-list text. The snapshot is
// skipped when it is older than the graph file (an edited graph plus
// /admin/reload must win) and rewritten after any successful edge-list
// read, so the first boot pays the parse and later boots map it.
func loadGraph(graphPath, snapPath string, lg *log.Logger) (*reach.Graph, error) {
	gsnap := ""
	if snapPath != "" {
		gsnap = snapPath + ".graph"
		if fresh, err := snapshotFresh(gsnap, graphPath); err == nil && fresh {
			if g, err := reach.LoadGraphSnapshot(gsnap); err == nil {
				lg.Printf("warm-started graph from %s (page-mapped CSR)", gsnap)
				return g, nil
			} else {
				lg.Printf("graph snapshot %s unusable, re-reading edge list: %v", gsnap, err)
			}
		}
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return nil, err
	}
	g, perr := reach.ReadGraph(f)
	f.Close()
	if perr != nil {
		return nil, fmt.Errorf("parse %s: %w", graphPath, perr)
	}
	if gsnap != "" {
		if err := writeGraphSnapshot(gsnap, g); err != nil {
			lg.Printf("graph snapshot save failed (serving anyway): %v", err)
		} else {
			lg.Printf("saved graph CSR snapshot to %s", gsnap)
		}
	}
	return g, nil
}

// snapshotFresh reports whether the snapshot exists and is at least as
// new as the source it was derived from.
func snapshotFresh(snap, source string) (bool, error) {
	si, err := os.Stat(snap)
	if err != nil {
		return false, err
	}
	gi, err := os.Stat(source)
	if err != nil {
		return false, err
	}
	return !si.ModTime().Before(gi.ModTime()), nil
}

// writeGraphSnapshot persists g's CSR arrays atomically (temp + rename).
func writeGraphSnapshot(path string, g *reach.Graph) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".graphsnap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := g.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeSnapshot persists the DB's plain index atomically: write to a
// temp file in the same directory, fsync-free rename over the target, so
// a crash mid-write never leaves a torn snapshot for the next start.
func writeSnapshot(path string, kind reach.Kind, mapped bool, db *reach.DB) error {
	if kind == "" {
		kind = reach.KindBFL
	}
	ix, ok := db.PlainIndex(kind)
	if !ok {
		return fmt.Errorf("no %s index built", kind)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	save := reach.SaveIndex
	if mapped {
		save = reach.SaveIndexMapped
	}
	if err := save(tmp, ix); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
