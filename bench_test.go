// Benchmarks regenerating the paper's evaluation artifacts as Go
// benchmarks — one family per table/figure/experiment (see EXPERIMENTS.md
// for the mapping and cmd/reachbench for the formatted-table variant).
//
//	go test -bench=. -benchmem
package reach_test

import (
	"context"
	"io"
	"sync"
	"testing"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/labelset"
	"repro/internal/obs"
	"repro/internal/tc"
	"repro/internal/traversal"
)

// Shared workloads, built once.
var (
	onceDAG   sync.Once
	benchDAG  *reach.Graph
	benchQs   []gen.Query
	benchNegQ []gen.Query

	onceLCR    sync.Once
	benchLCRG  *reach.Graph
	benchLCRQs []gen.LCRQuery
)

func dagWorkload() (*reach.Graph, []gen.Query, []gen.Query) {
	onceDAG.Do(func() {
		benchDAG = gen.RandomDAG(gen.Config{N: 50000, M: 200000, Seed: 1})
		benchQs = gen.Queries(benchDAG, 2000, 2)
		benchNegQ = gen.QueriesWithRatio(benchDAG, 2000, 0.1, 3)
	})
	return benchDAG, benchQs, benchNegQ
}

func lcrWorkload() (*reach.Graph, []gen.LCRQuery) {
	onceLCR.Do(func() {
		benchLCRG = gen.Zipf(gen.ErdosRenyi(gen.Config{N: 3000, M: 12000, Seed: 4}), 8, 0.8, 5)
		benchLCRQs = gen.LCRQueries(benchLCRG, 500, 6)
	})
	return benchLCRG, benchLCRQs
}

// --- Table 1: plain indexes — build and query ------------------------

func benchBuild(b *testing.B, k reach.Kind, opt reach.Options) {
	g, _, _ := dagWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reach.Build(k, g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// ixCache memoizes built indexes across the benchmark runner's b.N
// escalations (each escalation re-enters the Benchmark function; heavy
// builds like Path-Tree's quadratic matrix must not repeat).
var ixCache sync.Map

func cachedIndex(b *testing.B, k reach.Kind, opt reach.Options) reach.Index {
	key := string(k)
	if v, ok := ixCache.Load(key); ok {
		return v.(reach.Index)
	}
	g, _, _ := dagWorkload()
	ix, err := reach.Build(k, g, opt)
	if err != nil {
		b.Fatal(err)
	}
	ixCache.Store(key, ix)
	return ix
}

func benchQuery(b *testing.B, k reach.Kind, opt reach.Options) {
	_, qs, _ := dagWorkload()
	ix := cachedIndex(b, k, opt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if ix.Reach(q.S, q.T) != q.Want {
			b.Fatalf("%s: wrong answer", ix.Name())
		}
	}
}

func BenchmarkTable1_GRAIL_Build(b *testing.B) { benchBuild(b, reach.KindGRAIL, reach.Options{K: 3}) }
func BenchmarkTable1_GRAIL_Query(b *testing.B) { benchQuery(b, reach.KindGRAIL, reach.Options{K: 3}) }
func BenchmarkTable1_Ferrari_Build(b *testing.B) {
	benchBuild(b, reach.KindFerrari, reach.Options{K: 3})
}
func BenchmarkTable1_Ferrari_Query(b *testing.B) {
	benchQuery(b, reach.KindFerrari, reach.Options{K: 3})
}
func BenchmarkTable1_BFL_Build(b *testing.B)    { benchBuild(b, reach.KindBFL, reach.Options{Bits: 256}) }
func BenchmarkTable1_BFL_Query(b *testing.B)    { benchQuery(b, reach.KindBFL, reach.Options{Bits: 256}) }
func BenchmarkTable1_IP_Build(b *testing.B)     { benchBuild(b, reach.KindIP, reach.Options{K: 8}) }
func BenchmarkTable1_IP_Query(b *testing.B)     { benchQuery(b, reach.KindIP, reach.Options{K: 8}) }
func BenchmarkTable1_PLL_Build(b *testing.B)    { benchBuild(b, reach.KindPLL, reach.Options{}) }
func BenchmarkTable1_PLL_Query(b *testing.B)    { benchQuery(b, reach.KindPLL, reach.Options{}) }
func BenchmarkTable1_TFL_Query(b *testing.B)    { benchQuery(b, reach.KindTFL, reach.Options{}) }
func BenchmarkTable1_TOL_Query(b *testing.B)    { benchQuery(b, reach.KindTOL, reach.Options{}) }
func BenchmarkTable1_PReaCH_Query(b *testing.B) { benchQuery(b, reach.KindPReaCH, reach.Options{}) }
func BenchmarkTable1_Feline_Query(b *testing.B) { benchQuery(b, reach.KindFeline, reach.Options{}) }
func BenchmarkTable1_OReach_Query(b *testing.B) {
	benchQuery(b, reach.KindOReach, reach.Options{K: 16})
}
func BenchmarkTable1_PathTree_Query(b *testing.B) {
	benchQuery(b, reach.KindPathTree, reach.Options{})
}
func BenchmarkTable1_DBL_Query(b *testing.B) {
	benchQuery(b, reach.KindDBL, reach.Options{K: 32, Bits: 256})
}

// Baseline row of Table 1's discussion: online traversal.
func BenchmarkTable1_BFS_Query(b *testing.B) {
	g, qs, _ := dagWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if traversal.BFS(g, q.S, q.T) != q.Want {
			b.Fatal("BFS wrong")
		}
	}
}

func BenchmarkTable1_BiBFS_Query(b *testing.B) {
	g, qs, _ := dagWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if traversal.BiBFS(g, q.S, q.T) != q.Want {
			b.Fatal("BiBFS wrong")
		}
	}
}

// --- Table 2: LCR/RLC indexes ----------------------------------------

func benchLCRBuild(b *testing.B, k reach.LCRKind, opt reach.Options) {
	g, _ := lcrWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reach.BuildLCR(k, g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func cachedLCRIndex(b *testing.B, key string, build func() (reach.LCRIndex, error)) reach.LCRIndex {
	if v, ok := ixCache.Load("lcr/" + key); ok {
		return v.(reach.LCRIndex)
	}
	ix, err := build()
	if err != nil {
		b.Fatal(err)
	}
	ixCache.Store("lcr/"+key, ix)
	return ix
}

func benchLCRQuery(b *testing.B, k reach.LCRKind, opt reach.Options) {
	g, qs := lcrWorkload()
	ix := cachedLCRIndex(b, string(k), func() (reach.LCRIndex, error) {
		return reach.BuildLCR(k, g, opt)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		got := q.S == q.T || ix.ReachLC(q.S, q.T, labelset.Set(q.Allowed))
		if got != (q.Want || q.S == q.T) {
			b.Fatalf("%s: wrong answer", ix.Name())
		}
	}
}

func BenchmarkTable2_P2H_Build(b *testing.B) { benchLCRBuild(b, reach.LCRP2H, reach.Options{}) }
func BenchmarkTable2_P2H_Query(b *testing.B) { benchLCRQuery(b, reach.LCRP2H, reach.Options{}) }
func BenchmarkTable2_Landmark_Build(b *testing.B) {
	benchLCRBuild(b, reach.LCRLandmark, reach.Options{K: 32})
}
func BenchmarkTable2_Landmark_Query(b *testing.B) {
	benchLCRQuery(b, reach.LCRLandmark, reach.Options{K: 32})
}
func BenchmarkTable2_DLCR_Query(b *testing.B) { benchLCRQuery(b, reach.LCRDLCR, reach.Options{}) }

// The GTC/tree-based Table 2 rows run on a smaller workload: the full GTC
// is quadratic in n and the Jin-Tree link closure quadratic in the
// non-tree edge count — their published scaling limits (see E5/DESIGN.md).
func benchLCRQuerySmall(b *testing.B, k reach.LCRKind) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 300, M: 900, Seed: 14}), 6, 0.8, 15)
	qs := gen.LCRQueries(g, 300, 16)
	ix := cachedLCRIndex(b, "small/"+string(k), func() (reach.LCRIndex, error) {
		return reach.BuildLCR(k, g, reach.Options{})
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		got := q.S == q.T || ix.ReachLC(q.S, q.T, labelset.Set(q.Allowed))
		if got != (q.Want || q.S == q.T) {
			b.Fatalf("%s: wrong answer", ix.Name())
		}
	}
}

func BenchmarkTable2_ZouGTC_Query(b *testing.B)  { benchLCRQuerySmall(b, reach.LCRZouGTC) }
func BenchmarkTable2_JinTree_Query(b *testing.B) { benchLCRQuerySmall(b, reach.LCRJinTree) }
func BenchmarkTable2_Decomp_Query(b *testing.B)  { benchLCRQuerySmall(b, reach.LCRDecomp) }

func BenchmarkTable2_LCRBFS_Query(b *testing.B) {
	g, qs := lcrWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if traversal.LabelConstrainedBFS(g, q.S, q.T, q.Allowed) != q.Want {
			b.Fatal("LCR-BFS wrong")
		}
	}
}

func BenchmarkTable2_RLC_Query(b *testing.B) {
	g, _ := lcrWorkload()
	ix, err := reach.BuildRLC(g, reach.Options{MaxSeq: 1})
	if err != nil {
		b.Fatal(err)
	}
	seq := []reach.Label{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.ReachRLC(reach.V(i%g.N()), reach.V((i*7)%g.N()), seq)
	}
}

// --- Observability overhead: instrumented vs raw ----------------------
//
// The instrumentation contract (OBSERVABILITY.md) is <=10% overhead on
// Reach with metrics enabled and ~0 when disabled; compare these against
// the matching BenchmarkTable1_*_Query rows.

func benchQueryInstrumented(b *testing.B, k reach.Kind, opt reach.Options, m *reach.IndexMetrics) {
	g, qs, _ := dagWorkload()
	ix := reach.Instrument(cachedIndex(b, k, opt), g, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if ix.Reach(q.S, q.T) != q.Want {
			b.Fatalf("%s: wrong answer", ix.Name())
		}
	}
}

func BenchmarkObs_BFL_QueryInstrumented(b *testing.B) {
	benchQueryInstrumented(b, reach.KindBFL, reach.Options{Bits: 256}, &reach.IndexMetrics{})
}

func BenchmarkObs_GRAIL_QueryInstrumented(b *testing.B) {
	benchQueryInstrumented(b, reach.KindGRAIL, reach.Options{K: 3}, &reach.IndexMetrics{})
}

// Nil metrics exercise the disabled fast path: one pointer comparison.
func BenchmarkObs_BFL_QueryInstrumentDisabled(b *testing.B) {
	benchQueryInstrumented(b, reach.KindBFL, reach.Options{Bits: 256}, nil)
}

// --- E4: negative-heavy mixes (§5) ------------------------------------

func benchNegHeavy(b *testing.B, k reach.Kind, opt reach.Options) {
	_, _, neg := dagWorkload()
	ix := cachedIndex(b, k, opt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := neg[i%len(neg)]
		if ix.Reach(q.S, q.T) != q.Want {
			b.Fatal("wrong")
		}
	}
}

func BenchmarkE4_NegHeavy_GRAIL(b *testing.B) { benchNegHeavy(b, reach.KindGRAIL, reach.Options{K: 3}) }
func BenchmarkE4_NegHeavy_BFL(b *testing.B) {
	benchNegHeavy(b, reach.KindBFL, reach.Options{Bits: 256})
}
func BenchmarkE4_NegHeavy_IP(b *testing.B) { benchNegHeavy(b, reach.KindIP, reach.Options{K: 8}) }
func BenchmarkE4_NegHeavy_BFS(b *testing.B) {
	g, _, neg := dagWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := neg[i%len(neg)]
		traversal.BFS(g, q.S, q.T)
	}
}

// --- E8: dynamic updates ----------------------------------------------

func benchInsert(b *testing.B, k reach.Kind) {
	g := gen.RandomDAG(gen.Config{N: 5000, M: 15000, Seed: 7})
	script := gen.UpdateScript(g, 10000, true, 8)
	var inserts []gen.UpdateOp
	for _, op := range script {
		if op.Insert {
			inserts = append(inserts, op)
		}
	}
	ix, err := reach.BuildDynamic(k, g, reach.Options{K: 2, Bits: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := inserts[i%len(inserts)]
		if err := ix.InsertEdge(op.Edge.From, op.Edge.To); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_Insert_TOL(b *testing.B)    { benchInsert(b, reach.KindTOL) }
func BenchmarkE8_Insert_DAGGER(b *testing.B) { benchInsert(b, reach.KindDAGGER) }
func BenchmarkE8_Insert_DBL(b *testing.B)    { benchInsert(b, reach.KindDBL) }

// --- E2: label size vs TC (reported via metrics) -----------------------

func BenchmarkE2_TCClosure_Build(b *testing.B) {
	g := gen.RandomDAG(gen.Config{N: 5000, M: 20000, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tc.NewClosure(g)
		b.ReportMetric(float64(c.Pairs()), "pairs")
	}
}

func BenchmarkE2_PLL_Entries(b *testing.B) {
	g := gen.RandomDAG(gen.Config{N: 5000, M: 20000, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, _ := reach.Build(reach.KindPLL, g, reach.Options{})
		b.ReportMetric(float64(ix.Stats().Entries), "entries")
	}
}

// --- E7: RLC vs product search ----------------------------------------

func BenchmarkE7_RLC_Indexed(b *testing.B) {
	g, _ := lcrWorkload()
	ix, _ := reach.BuildRLC(g, reach.Options{MaxSeq: 2})
	seq := []reach.Label{0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.ReachRLC(reach.V(i%g.N()), reach.V((i*13)%g.N()), seq)
	}
}

func BenchmarkE7_RLC_ProductBFS(b *testing.B) {
	g, _ := lcrWorkload()
	seq := []reach.Label{0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.RLCReach(g, reach.V(i%g.N()), reach.V((i*13)%g.N()), seq, false)
	}
}

// --- E11: the §5 open-challenge prototypes ------------------------------

func BenchmarkE11_RPQIndex_Query(b *testing.B) {
	g, _ := lcrWorkload()
	ix, err := reach.BuildConstraint(g, "(l0.l1|l2)*")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Reach(reach.V(i%g.N()), reach.V((i*19)%g.N()))
	}
}

func BenchmarkE11_LCRBloom_NegativeLookups(b *testing.B) {
	g, qs := lcrWorkload()
	ix, err := reach.BuildLCR(reach.LCRBloom, g, reach.Options{Bits: 256})
	if err != nil {
		b.Fatal(err)
	}
	type prober interface {
		TryReachLC(s, t reach.V, allowed labelset.Set) (bool, bool)
	}
	p := ix.(prober)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		p.TryReachLC(q.S, q.T, labelset.Set(q.Allowed))
	}
}

func BenchmarkE11_BatchReach(b *testing.B) {
	g, qs, _ := dagWorkload()
	ix, _ := reach.Build(reach.KindBFL, g, reach.Options{Bits: 256})
	pairs := make([]reach.Pair, len(qs))
	for i, q := range qs {
		pairs[i] = reach.Pair{S: q.S, T: q.T}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reach.BatchReach(ix, g, pairs, 0)
	}
}

// --- E13: parallel construction and pooled query scratch ----------------
//
// The workers=1 vs workers=4 pairs measure the internal/par fan-out (on a
// multi-core host 4 workers should approach 4x on the embarrassingly
// parallel builds; with GOMAXPROCS=1 the pair instead bounds the pool's
// overhead). The Pooled* benchmarks certify the scratch arena: steady-state
// traversals report 0 allocs/op.

func benchBuildWorkers(b *testing.B, k reach.Kind, opt reach.Options, workers int) {
	g, _, _ := dagWorkload()
	opt.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reach.Build(k, g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13_GRAIL_Build_W1(b *testing.B) {
	benchBuildWorkers(b, reach.KindGRAIL, reach.Options{K: 3}, 1)
}
func BenchmarkE13_GRAIL_Build_W4(b *testing.B) {
	benchBuildWorkers(b, reach.KindGRAIL, reach.Options{K: 3}, 4)
}
func BenchmarkE13_IP_Build_W1(b *testing.B) {
	benchBuildWorkers(b, reach.KindIP, reach.Options{K: 8}, 1)
}
func BenchmarkE13_IP_Build_W4(b *testing.B) {
	benchBuildWorkers(b, reach.KindIP, reach.Options{K: 8}, 4)
}
func BenchmarkE13_OReach_Build_W1(b *testing.B) {
	benchBuildWorkers(b, reach.KindOReach, reach.Options{K: 16}, 1)
}
func BenchmarkE13_OReach_Build_W4(b *testing.B) {
	benchBuildWorkers(b, reach.KindOReach, reach.Options{K: 16}, 4)
}
func BenchmarkE13_BFL_Build_W1(b *testing.B) {
	benchBuildWorkers(b, reach.KindBFL, reach.Options{Bits: 256}, 1)
}
func BenchmarkE13_BFL_Build_W4(b *testing.B) {
	benchBuildWorkers(b, reach.KindBFL, reach.Options{Bits: 256}, 4)
}

func benchClosureWorkers(b *testing.B, workers int) {
	g := gen.RandomDAG(gen.Config{N: 20000, M: 80000, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.NewClosureN(g, workers)
	}
}

func BenchmarkE13_TCClosure_Build_W1(b *testing.B) { benchClosureWorkers(b, 1) }
func BenchmarkE13_TCClosure_Build_W4(b *testing.B) { benchClosureWorkers(b, 4) }

// BenchmarkE13_PooledBFS certifies the zero-allocation contract of the
// scratch arena on the online BFS baseline: after warmup every query
// reuses a pooled visited bitset and queue (expect 0 allocs/op).
func BenchmarkE13_PooledBFS(b *testing.B) {
	g, qs, _ := dagWorkload()
	traversal.BFS(g, qs[0].S, qs[0].T) // warm the pool before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if traversal.BFS(g, q.S, q.T) != q.Want {
			b.Fatal("BFS wrong")
		}
	}
}

// BenchmarkE13_PooledGuidedFallback measures a partial index whose
// negative queries exhaust the guided-DFS fallback — the allocation-heavy
// path before the pool (one bitset.New(n) per undecided query).
func BenchmarkE13_PooledGuidedFallback(b *testing.B) {
	_, _, neg := dagWorkload()
	ix := cachedIndex(b, reach.KindGRAIL, reach.Options{K: 3})
	ix.Reach(neg[0].S, neg[0].T)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := neg[i%len(neg)]
		if ix.Reach(q.S, q.T) != q.Want {
			b.Fatal("wrong")
		}
	}
}

// --- Figure 1 sanity as a benchmark (router overhead) -------------------

func BenchmarkFig1_RouterQuery(b *testing.B) {
	db, err := reach.NewDB(reach.Fig1Labeled(), reach.DBConfig{})
	if err != nil {
		b.Fatal(err)
	}
	a, _ := db.Graph().VertexByName("A")
	g, _ := db.Graph().VertexByName("G")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := db.Query(a, g, "(friendOf|follows)*"); ok {
			b.Fatal("wrong")
		}
	}
}

// --- E14: query-path acceleration ----------------------------------------
//
// The BatchReach pair compares the index-free batch path's bit-parallel
// kernel (64 sources per sweep) against answering the same pairs with one
// early-exit BFS each. The kernel's win scales with how much the sources'
// reachable sets overlap, so the workload is a dense DAG (10 edges/vertex,
// sharing ratio ~17); see BenchmarkMultiSourceReach in internal/traversal
// for the sharing-ratio sweep. The DB pair measures the sharded result
// cache on a hot-pair workload (every query repeats a small working set).

var (
	onceE14  sync.Once
	e14DAG   *reach.Graph
	e14Pairs []reach.Pair
)

func e14Workload() (*reach.Graph, []reach.Pair) {
	onceE14.Do(func() {
		e14DAG = gen.RandomDAG(gen.Config{N: 50000, M: 500000, Seed: 8})
		qs := gen.Queries(e14DAG, 2048, 14)
		e14Pairs = make([]reach.Pair, len(qs))
		for i, q := range qs {
			e14Pairs[i] = reach.Pair{S: q.S, T: q.T}
		}
	})
	return e14DAG, e14Pairs
}

func BenchmarkE14_BatchReach_BitParallel(b *testing.B) {
	g, pairs := e14Workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reach.BatchReach(nil, g, pairs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14_BatchReach_PerPairBFS(b *testing.B) {
	g, pairs := e14Workload()
	out := make([]bool, len(pairs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range pairs {
			out[j] = traversal.BFS(g, p.S, p.T)
		}
	}
	_ = out
}

func benchDBHotPairs(b *testing.B, cacheSize int) {
	g, qs, _ := dagWorkload()
	db, err := reach.NewDB(g, reach.DBConfig{CacheSize: cacheSize})
	if err != nil {
		b.Fatal(err)
	}
	hot := qs[:64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := hot[i%len(hot)]
		if _, err := db.Reach(q.S, q.T); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14_DBHotPairs_Uncached(b *testing.B) { benchDBHotPairs(b, 0) }
func BenchmarkE14_DBHotPairs_Cached(b *testing.B)   { benchDBHotPairs(b, 4096) }

// --- Tracing overhead (OBSERVABILITY.md, "Tracing") ---------------------

// benchTraceDB builds a DB over the shared DAG workload with the given
// tracing setting; queries run through ReachCtx like server traffic.
func benchTraceDB(b *testing.B, tracing bool) (*reach.DB, []gen.Query) {
	g, qs, _ := dagWorkload()
	db, err := reach.NewDB(g, reach.DBConfig{Tracing: tracing})
	if err != nil {
		b.Fatal(err)
	}
	return db, qs
}

// Tracing disabled: the per-query cost over an untraced DB is one bool
// comparison — the PR 1 "disabled observability is ~free" bar.
func BenchmarkTrace_ReachCtx_Disabled(b *testing.B) {
	db, qs := benchTraceDB(b, false)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if got, _ := db.ReachCtx(ctx, q.S, q.T); got != q.Want {
			b.Fatal("wrong answer")
		}
	}
}

// Tracing enabled but the context carries no trace (e.g. a non-HTTP
// caller): pays the context lookup, records nothing.
func BenchmarkTrace_ReachCtx_EnabledNoTrace(b *testing.B) {
	db, qs := benchTraceDB(b, true)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if got, _ := db.ReachCtx(ctx, q.S, q.T); got != q.Want {
			b.Fatal("wrong answer")
		}
	}
}

// Fully traced: pooled Trace per query, phase Begin/End around the index
// probe, ring insertion at Finish — the whole per-request pipeline.
func BenchmarkTrace_ReachCtx_Traced(b *testing.B) {
	db, qs := benchTraceDB(b, true)
	tracer := obs.NewTracer(128, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		tr := tracer.Start("")
		ctx := obs.WithTrace(context.Background(), tr)
		got, _ := db.ReachCtx(ctx, q.S, q.T)
		tracer.Finish(tr)
		if got != q.Want {
			b.Fatal("wrong answer")
		}
	}
}

// Workload capture on the same path: one record append per query.
func BenchmarkTrace_ReachCtx_Recorded(b *testing.B) {
	g, qs, _ := dagWorkload()
	rec := reach.NewWorkloadRecorder(io.Discard)
	db, err := reach.NewDB(g, reach.DBConfig{RecordWorkload: rec})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if got, _ := db.ReachCtx(ctx, q.S, q.T); got != q.Want {
			b.Fatal("wrong answer")
		}
	}
	b.StopTimer()
	if err := rec.Close(); err != nil {
		b.Fatal(err)
	}
}
