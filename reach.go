// Package reach is a library of reachability indexes on graphs,
// reproducing the systems surveyed in "An Overview of Reachability Indexes
// on Graphs" (Zhang, Bonifati, Özsu; SIGMOD 2023).
//
// It answers three query classes over directed graphs:
//
//   - plain reachability Qr(s, t) — §2.1 — via 20+ indexes spanning the
//     tree-cover, 2-hop, and approximate-transitive-closure frameworks
//     (Table 1 of the paper);
//   - alternation-constrained (LCR) reachability Qr(s, t, (l1∪l2∪...)*) —
//     §4.1 — via the GTC, landmark, tree-based and 2-hop LCR indexes
//     (Table 2);
//   - concatenation-constrained (RLC) reachability Qr(s, t, (l1·l2·...)*)
//     — §4.2 — via the RLC index.
//
// The DB type routes an arbitrary path-constraint expression to the right
// index (or to product-automaton search when the constraint falls outside
// both indexable fragments, per the paper's §5 observation that no index
// covers full regular path queries).
//
// Quick start:
//
//	g := reach.Fig1Plain()
//	ix, _ := reach.Build(reach.KindBFL, g, reach.Options{})
//	ok := ix.Reach(s, t)
//
// All indexes validate against exact oracles in this repository's test
// suite; see DESIGN.md for the paper-to-package mapping.
package reach

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bfl"
	"repro/internal/core"
	"repro/internal/dagger"
	"repro/internal/dbl"
	"repro/internal/duallabel"
	"repro/internal/feline"
	"repro/internal/ferrari"
	"repro/internal/grail"
	"repro/internal/graph"
	"repro/internal/gripp"
	"repro/internal/ip"
	"repro/internal/labelstore"
	"repro/internal/lcrbloom"
	"repro/internal/lcrdecomp"
	"repro/internal/lcrgtc"
	"repro/internal/lcrlandmark"
	"repro/internal/lcrtree"
	"repro/internal/obs"
	"repro/internal/oreach"
	"repro/internal/p2h"
	"repro/internal/par"
	"repro/internal/pathhop"
	"repro/internal/pathtree"
	"repro/internal/pll"
	"repro/internal/preach"
	"repro/internal/rlc"
	"repro/internal/rpqindex"
	"repro/internal/sspi"
	"repro/internal/threehop"
	"repro/internal/tol"
	"repro/internal/treecover"
	"repro/internal/twohop"
)

// Re-exported fundamental types.
type (
	// Graph is an immutable directed graph (optionally edge-labeled).
	Graph = graph.Digraph
	// GraphBuilder accumulates vertices and edges.
	GraphBuilder = graph.Builder
	// V is a vertex id.
	V = graph.V
	// Label is an edge-label id.
	Label = graph.Label
	// GraphEdge is a directed, optionally labeled edge.
	GraphEdge = graph.Edge
	// GraphLimits bounds what ReadGraphLimited accepts from untrusted input.
	GraphLimits = graph.Limits
	// Index answers plain reachability queries.
	Index = core.Index
	// PartialIndex exposes lookup-only answers (TryReach).
	PartialIndex = core.Partial
	// DynamicIndex supports edge insertions/deletions.
	DynamicIndex = core.Dynamic
	// LCRIndex answers alternation-constrained queries.
	LCRIndex = core.LCRIndex
	// RLCIndex answers concatenation-constrained queries.
	RLCIndex = core.RLCIndex
	// Stats describes an index footprint.
	Stats = core.Stats
	// PreparedGraph memoizes per-graph preprocessing (SCC condensation)
	// shared across index builds over the same graph; see Prepare.
	PreparedGraph = core.Prepared

	// BuildSpans records named build-phase durations (see OBSERVABILITY.md).
	BuildSpans = obs.Spans
	// IndexMetrics accumulates per-index query metrics.
	IndexMetrics = obs.IndexMetrics
	// DBMetrics is the DB-level metrics root.
	DBMetrics = obs.DBMetrics
	// PhaseSpan is one named, timed build phase.
	PhaseSpan = obs.PhaseSpan
	// MetricsSnapshot is a point-in-time view of a DB's metrics.
	MetricsSnapshot = obs.Snapshot
	// IndexMetricsSnapshot is the per-index slice of a MetricsSnapshot.
	IndexMetricsSnapshot = obs.IndexSnapshot
)

// Graph constructors re-exported from the internal graph package.
var (
	// NewBuilder returns a builder for a plain digraph with n vertices.
	NewBuilder = graph.NewBuilder
	// NewLabeledBuilder returns a builder for an edge-labeled digraph.
	NewLabeledBuilder = graph.NewLabeledBuilder
	// ReadGraph parses the edge-list exchange format under DefaultLimits.
	ReadGraph = graph.Read
	// ReadGraphLimited parses the edge-list format under explicit size
	// limits (malformed or oversized input yields an error, never a panic).
	ReadGraphLimited = graph.ReadLimited
	// WriteGraph serializes a graph in the edge-list exchange format.
	WriteGraph = graph.Write
	// LoadGraphSnapshot page-maps a graph CSR snapshot (written with
	// Graph.WriteSnapshot) as a zero-copy Graph, so a warm start skips
	// edge-list parsing and the Freeze sort entirely.
	LoadGraphSnapshot = graph.LoadSnapshot
	// ReadGraphSnapshot decodes a graph CSR snapshot from a stream (the
	// non-mmap fallback to LoadGraphSnapshot).
	ReadGraphSnapshot = graph.ReadSnapshot
	// Fig1Plain builds the paper's Figure 1(a) plain graph.
	Fig1Plain = graph.Fig1Plain
	// Fig1Labeled builds the paper's Figure 1(b) edge-labeled graph.
	Fig1Labeled = graph.Fig1Labeled
)

// LabelEncoding selects how the 2-hop label families (PLL/TFL/DL/HL,
// TOL) store their frozen label sets; see Options.LabelEnc.
type LabelEncoding uint8

// Label storage encodings.
const (
	// EncRaw keeps labels as flat uint32 arrays — fastest queries
	// (contiguous slice merges). The default.
	EncRaw LabelEncoding = iota
	// EncVarint delta-compresses each label row into a varint byte
	// stream — smaller footprint, queries decode through cursors.
	EncVarint
)

// Prepare returns a preprocessing memo for g: pass it as Options.Prepared
// to every Build over the same graph and the SCC condensation every
// DAG-only technique needs (§3.1) is computed exactly once and shared.
// The memo is lazy (a graph whose indexes all accept general input never
// condenses) and safe for concurrent builds.
func Prepare(g *Graph) *PreparedGraph { return core.NewPrepared(g) }

// Kind names a plain reachability indexing technique (a Table 1 row).
type Kind string

// Plain index kinds, grouped by framework as in Table 1.
const (
	// Tree-cover framework (§3.1).
	KindTreeCover Kind = "treecover" // Agrawal et al. [2], complete
	KindTreeSSPI  Kind = "sspi"      // Tree+SSPI [9], partial
	KindDualLabel Kind = "duallabel" // dual labeling [17], complete
	KindGRIPP     Kind = "gripp"     // GRIPP [43], partial, general input
	KindPathTree  Kind = "pathtree"  // path-tree family [24,27], complete
	KindGRAIL     Kind = "grail"     // GRAIL [50], partial
	KindFerrari   Kind = "ferrari"   // FERRARI [40], partial
	KindDAGGER    Kind = "dagger"    // DAGGER [51], partial, dynamic

	// 2-hop framework (§3.2).
	KindTwoHop   Kind = "2hop"    // Cohen et al. [14], complete, general
	KindThreeHop Kind = "3hop"    // 3-hop [26], complete
	KindPathHop  Kind = "pathhop" // path-hop [8], complete
	KindTFL      Kind = "tfl"     // TF-label-style topo order [13]
	KindDL       Kind = "dl"      // distribution labeling [25]
	KindPLL      Kind = "pll"     // pruned landmark labeling [49]
	KindTOL      Kind = "tol"     // total-order labeling [55], dynamic
	KindDBL      Kind = "dbl"     // DBL [29], partial, insert-only
	KindOReach   Kind = "oreach"  // O'Reach [18], partial
	KindHL       Kind = "hl"      // hierarchical labeling [25]

	// Approximate transitive closure (§3.3).
	KindIP  Kind = "ip"  // IP label [46,47], partial
	KindBFL Kind = "bfl" // BFL [41], partial

	// Other techniques (§3.4).
	KindFeline Kind = "feline" // FELINE [45], partial
	KindPReaCH Kind = "preach" // PReaCH [31], partial
)

// Kinds returns every plain index kind in a stable order.
func Kinds() []Kind {
	ks := []Kind{
		KindTreeCover, KindTreeSSPI, KindDualLabel, KindGRIPP, KindPathTree,
		KindGRAIL, KindFerrari, KindDAGGER, KindTwoHop, KindThreeHop,
		KindPathHop, KindTFL, KindDL, KindPLL, KindTOL, KindDBL, KindOReach,
		KindHL, KindIP, KindBFL, KindFeline, KindPReaCH,
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Options bundles the tunables shared across index families. Zero values
// select each technique's defaults.
type Options struct {
	// K: interval budget (GRAIL/FERRARI/DAGGER), sketch size (IP),
	// supportive vertices (O'Reach), landmarks (DBL, LCR landmark index).
	K int
	// Bits: Bloom filter width (BFL, DBL).
	Bits int
	// Seed drives every randomized structure.
	Seed int64
	// MaxSeq is the RLC index's maximum indexed concatenation length κ.
	MaxSeq int
	// Workers caps the goroutines used by the parallel build phases — the
	// §5 "parallel computation of indexes" direction, reaching GRAIL's K
	// random labelings, FERRARI's interval passes, IP's sketch passes,
	// O'Reach's supportive-vertex BFSs, BFL's Bloom-filter passes, DBL's
	// landmark BFSs, and the LCR landmark index's per-landmark GTCs.
	// 0 selects GOMAXPROCS, 1 forces the serial path, n > 1 caps the pool
	// at n. Guarantee: for a fixed Seed the built index answers
	// identically at any worker count (see TestParallelBuildDeterminism).
	Workers int
	// Parallel enables concurrent construction.
	//
	// Deprecated: use Workers. The bool keeps working — Parallel == true
	// with Workers == 0 selects GOMAXPROCS, which is also what
	// Workers == 0 alone selects, so the field is now redundant.
	Parallel bool
	// LabelEnc selects the label storage encoding of the 2-hop label
	// families (PLL, TFL, DL, HL, TOL): EncRaw (default) keeps flat
	// uint32 arrays, EncVarint delta-compresses them (~25-40% smaller
	// labels on typical graphs, a cursor-decode on the query path).
	// Other kinds ignore it.
	LabelEnc LabelEncoding
	// Prepared, when non-nil, supplies the shared preprocessing memo of
	// Prepare(g): every DAG-only build drawing from it reuses one SCC
	// condensation instead of recomputing it per kind, and the build's
	// "scc/condense" span records the memo hit as its `cached` attribute.
	// The memo must be bound to the graph being built over (ErrBadOptions
	// otherwise). NewDB threads one through all of its builds
	// automatically; set this only when calling Build* directly for
	// several kinds over one graph. Nil keeps the per-build condensation.
	Prepared *PreparedGraph
	// Spans, when non-nil, receives named build-phase durations from
	// Build/BuildLCR/BuildRLC (SCC condensation, order computation, filter
	// passes, ...); see OBSERVABILITY.md for the span-name schema. Nil
	// disables phase recording at zero cost.
	Spans *BuildSpans
}

// labelEnc maps the public encoding selector onto the internal one.
func (o Options) labelEnc() labelstore.Encoding {
	return labelstore.Encoding(o.LabelEnc)
}

// timed runs a direct (non-SCC-lifted) builder under an "index/build"
// span; a nil recorder makes it a plain call.
func timed(spans *obs.Spans, build func() Index) Index {
	end := spans.Start("index/build")
	ix := build()
	end()
	return ix
}

// timedN is timed for builders with a parallel construction phase: the
// span records the resolved worker count as its `workers` attribute.
func timedN(spans *obs.Spans, workers int, build func() Index) Index {
	end := spans.StartN("index/build", workers)
	ix := build()
	end()
	return ix
}

// Build constructs the requested plain index over g. DAG-only techniques
// are lifted to general graphs through SCC condensation automatically
// (§3.1); techniques accepting general graphs run on g directly. With
// Options.Spans set, construction phases are recorded as named spans.
//
// Invalid options yield ErrBadOptions; a panic inside an index
// implementation is contained and reported as ErrIndexPanic.
func Build(k Kind, g *Graph, opt Options) (Index, error) {
	return BuildCtx(context.Background(), k, g, opt)
}

// BuildCtx is Build under a context: the expensive builders poll ctx at
// cooperative checkpoints and a canceled context abandons the
// construction with ErrBuildCanceled after a bounded amount of extra
// work. A nil or never-canceled context costs nothing on the build path.
func BuildCtx(ctx context.Context, k Kind, g *Graph, opt Options) (ix Index, err error) {
	if err := checkBuild(ctx, g, opt); err != nil {
		return nil, err
	}
	defer core.Recover(&err)
	chk := core.NewCheck(ctx, "build/"+string(k))
	sp := opt.Spans
	switch k {
	case KindTreeCover:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index { return treecover.New(d) }), nil
	case KindTreeSSPI:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index { return sspi.New(d) }), nil
	case KindDualLabel:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index { return duallabel.New(d) }), nil
	case KindGRIPP:
		return timed(sp, func() Index { return gripp.New(g) }), nil
	case KindPathTree:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index { return pathtree.New(d) }), nil
	case KindGRAIL:
		return core.ForGeneralPrepared(g, sp, par.Resolve(opt.Workers), opt.Prepared, func(d *Graph) Index {
			return grail.New(d, grail.Options{K: opt.K, Seed: opt.Seed, Workers: opt.Workers})
		}), nil
	case KindFerrari:
		return core.ForGeneralPrepared(g, sp, par.Resolve(opt.Workers), opt.Prepared, func(d *Graph) Index {
			return ferrari.New(d, ferrari.Options{K: opt.K, Workers: opt.Workers})
		}), nil
	case KindDAGGER:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index {
			return dagger.New(d, dagger.Options{K: opt.K, Seed: opt.Seed})
		}), nil
	case KindTwoHop:
		return timed(sp, func() Index { return twohop.NewChecked(g, chk) }), nil
	case KindThreeHop:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index { return threehop.NewChecked(d, chk) }), nil
	case KindPathHop:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index { return pathhop.New(d) }), nil
	case KindTFL:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index {
			return pll.New(d, pll.Options{Order: pll.OrderTopological, Enc: opt.labelEnc(), Check: chk})
		}), nil
	case KindDL:
		return timed(sp, func() Index {
			return pll.New(g, pll.Options{Order: pll.OrderDegree, Name: "DL", Enc: opt.labelEnc(), Check: chk})
		}), nil
	case KindPLL:
		return timed(sp, func() Index {
			return pll.New(g, pll.Options{Order: pll.OrderDegree, Enc: opt.labelEnc(), Check: chk})
		}), nil
	case KindHL:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index {
			return pll.New(d, pll.Options{Order: pll.OrderDegreeProduct, Name: "HL", Enc: opt.labelEnc(), Check: chk})
		}), nil
	case KindTOL:
		return timed(sp, func() Index {
			return tol.NewOptions(g, tol.Options{Enc: opt.labelEnc(), Check: chk})
		}), nil
	case KindDBL:
		return timedN(sp, par.Resolve(opt.Workers), func() Index {
			return dbl.New(g, dbl.Options{K: opt.K, Bits: opt.Bits, Seed: opt.Seed, Workers: opt.Workers})
		}), nil
	case KindOReach:
		return core.ForGeneralPrepared(g, sp, par.Resolve(opt.Workers), opt.Prepared, func(d *Graph) Index {
			return oreach.New(d, oreach.Options{K: opt.K, Workers: opt.Workers})
		}), nil
	case KindIP:
		return core.ForGeneralPrepared(g, sp, par.Resolve(opt.Workers), opt.Prepared, func(d *Graph) Index {
			return ip.New(d, ip.Options{K: opt.K, Seed: opt.Seed, Workers: opt.Workers})
		}), nil
	case KindBFL:
		return core.ForGeneralPrepared(g, sp, par.Resolve(opt.Workers), opt.Prepared, func(d *Graph) Index {
			return bfl.New(d, bfl.Options{Bits: opt.Bits, Seed: opt.Seed, Spans: sp, Workers: opt.Workers})
		}), nil
	case KindFeline:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index { return feline.New(d) }), nil
	case KindPReaCH:
		return core.ForGeneralPrepared(g, sp, 0, opt.Prepared, func(d *Graph) Index { return preach.New(d) }), nil
	}
	return nil, fmt.Errorf("reach: unknown index kind %q", k)
}

// Instrument wraps ix so every Reach records latency, outcome, and — for
// partial indexes — probe-level decided/fallback/visited detail into m.
// g must be the graph ix was built over (it is the adjacency the guided
// fallback traverses); m must not be nil for recording to occur.
func Instrument(ix Index, g *Graph, m *IndexMetrics) Index {
	return core.Instrument(ix, g, m)
}

// BuildDynamic constructs a dynamic plain index (TOL, DAGGER, DBL). Note
// the dynamic indexes operate on the graph as given (no SCC adapter): the
// DAG-only DAGGER requires a DAG start, and updates that respect it.
func BuildDynamic(k Kind, g *Graph, opt Options) (ix DynamicIndex, err error) {
	if err := checkBuild(nil, g, opt); err != nil {
		return nil, err
	}
	defer core.Recover(&err)
	switch k {
	case KindTOL:
		return tol.NewOptions(g, tol.Options{Enc: opt.labelEnc()}), nil
	case KindDAGGER:
		return dagger.New(g, dagger.Options{K: opt.K, Seed: opt.Seed}), nil
	case KindDBL:
		return dbl.New(g, dbl.Options{K: opt.K, Bits: opt.Bits, Seed: opt.Seed, Workers: opt.Workers}), nil
	}
	return nil, fmt.Errorf("reach: %q is not a dynamic index kind", k)
}

// LCRKind names an alternation-constrained indexing technique (Table 2).
type LCRKind string

// LCR index kinds.
const (
	LCRZouGTC   LCRKind = "zougtc"   // Zou et al. [48,56], complete GTC
	LCRLandmark LCRKind = "landmark" // Valstar et al. [44], partial
	LCRP2H      LCRKind = "p2h"      // P2H+ [33], complete 2-hop
	LCRDLCR     LCRKind = "dlcr"     // DLCR [10], complete, dynamic
	LCRJinTree  LCRKind = "jintree"  // Jin et al. [21], tree + partial GTC
	LCRDecomp   LCRKind = "decomp"   // Chen et al. [12], decomposition
	// LCRBloom is this repository's prototype of the paper's §5 open
	// challenge: a partial LCR index without false negatives (labeled
	// Bloom-filter families + filter-guided constrained BFS).
	LCRBloom LCRKind = "lcrbloom"
)

// LCRKinds returns every LCR index kind in a stable order.
func LCRKinds() []LCRKind {
	return []LCRKind{LCRZouGTC, LCRLandmark, LCRP2H, LCRDLCR, LCRJinTree, LCRDecomp, LCRBloom}
}

// BuildLCR constructs the requested alternation-constraint index. With
// Options.Spans set, construction is recorded as an "lcr/build" span.
func BuildLCR(k LCRKind, g *Graph, opt Options) (LCRIndex, error) {
	return BuildLCRCtx(context.Background(), k, g, opt)
}

// BuildLCRCtx is BuildLCR under a context; the GTC and 2-hop LCR builds
// (the quadratic ones the survey warns about) poll ctx at cooperative
// checkpoints and abandon with ErrBuildCanceled.
func BuildLCRCtx(ctx context.Context, k LCRKind, g *Graph, opt Options) (ix LCRIndex, err error) {
	if err := checkBuild(ctx, g, opt); err != nil {
		return nil, err
	}
	if !g.Labeled() {
		return nil, fmt.Errorf("%w: LCR index %q needs an edge-labeled graph", ErrBadOptions, k)
	}
	defer core.Recover(&err)
	chk := core.NewCheck(ctx, "build/lcr/"+string(k))
	end := opt.Spans.Start("lcr/build")
	defer end()
	switch k {
	case LCRZouGTC:
		return lcrgtc.NewChecked(g, chk), nil
	case LCRLandmark:
		return lcrlandmark.New(g, lcrlandmark.Options{K: opt.K, Workers: opt.Workers}), nil
	case LCRP2H:
		return p2h.NewChecked(g, chk), nil
	case LCRDLCR:
		return p2h.NewDynamicChecked(g, chk), nil
	case LCRJinTree:
		return lcrtree.New(g), nil
	case LCRDecomp:
		return lcrdecomp.New(g), nil
	case LCRBloom:
		return lcrbloom.New(g, lcrbloom.Options{Bits: opt.Bits, Seed: opt.Seed}), nil
	}
	return nil, fmt.Errorf("reach: unknown LCR index kind %q", k)
}

// BuildRLC constructs the concatenation-constraint (RLC) index. With
// Options.Spans set, construction is recorded as an "rlc/build" span.
func BuildRLC(g *Graph, opt Options) (RLCIndex, error) {
	return BuildRLCCtx(context.Background(), g, opt)
}

// BuildRLCCtx is BuildRLC under a context: the per-sequence phase-product
// labelings poll ctx and abandon with ErrBuildCanceled.
func BuildRLCCtx(ctx context.Context, g *Graph, opt Options) (ix RLCIndex, err error) {
	if err := checkBuild(ctx, g, opt); err != nil {
		return nil, err
	}
	if !g.Labeled() {
		return nil, fmt.Errorf("%w: the RLC index needs an edge-labeled graph", ErrBadOptions)
	}
	defer core.Recover(&err)
	chk := core.NewCheck(ctx, "build/rlc")
	end := opt.Spans.Start("rlc/build")
	defer end()
	return rlc.New(g, rlc.Options{MaxSeq: opt.MaxSeq, Check: chk}), nil
}

// ConstraintIndex answers Qr(s, t, α) for one fixed α by pure lookups —
// the §5 "general path constraints" direction (see internal/rpqindex).
type ConstraintIndex = rpqindex.Index

// BuildConstraint builds a dedicated product-labeling index for the fixed
// path-constraint expression alpha. Any expression of the §2.2 grammar is
// accepted; queries then cost 2-hop lookups instead of product traversal.
func BuildConstraint(g *Graph, alpha string) (ix *ConstraintIndex, err error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadOptions)
	}
	if !g.Labeled() {
		return nil, fmt.Errorf("%w: constraint indexes need an edge-labeled graph", ErrBadOptions)
	}
	defer core.Recover(&err)
	return rpqindex.New(g, alpha)
}
