package reach

// This file is the fourth layer of the live-mutation subsystem (the
// batcher, WAL, and overlay live in internal/mutate): the engine that
// binds them to a DB and the background reindexer that folds the delta
// back into a frozen index. The serving invariant it maintains:
//
//	answer(s, t) == reach in (base graph ± overlay), always
//
// Readers load one immutable mutState (graph, index, overlay) through an
// atomic pointer and never lock. Writers — the group-commit apply and
// the rebuild publish — serialize on wmu and publish fresh states. A
// rebuild failure (panic, cancellation, anything) leaves the old state
// serving: availability degrades to "overlay keeps growing", never to
// wrong or missing answers.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/obs"
)

// FsyncMode re-exports the WAL durability policy.
type FsyncMode = mutate.FsyncMode

// WAL fsync policies (see MutationConfig.Fsync).
const (
	// FsyncAlways fsyncs once per group commit before acknowledging it:
	// acknowledged writes survive power loss. The default.
	FsyncAlways = mutate.FsyncAlways
	// FsyncNever leaves flushing to the OS: acknowledged writes survive
	// a process crash but not power loss. DB.Flush still forces a sync.
	FsyncNever = mutate.FsyncNever
)

// MutationConfig enables live mutation on a DB (DBConfig.Mutation).
// Mutation is supported on unlabeled graphs with a fixed vertex universe:
// edges come and go, vertices do not. It is mutually exclusive with
// CacheSize (cached answers would go stale) and ExtraPlain (only the
// primary index is rebuilt).
type MutationConfig struct {
	// WALPath is the write-ahead log file. Required. An existing WAL is
	// replayed on start (acknowledged mutations survive restarts); a torn
	// tail from a crash mid-commit is truncated, a file that is not a WAL
	// fails NewDB rather than being overwritten.
	WALPath string
	// Fsync selects the durability policy. Default FsyncAlways.
	Fsync FsyncMode
	// BatchOps caps ops per group commit. Default 128.
	BatchOps int
	// BatchDelay is the group-commit window: a submitted op waits at most
	// this long for companions before its batch flushes. Default 2ms.
	BatchDelay time.Duration
	// RebuildThreshold is the overlay size (added+removed edges) that
	// triggers a background reindex folding the delta into a fresh frozen
	// index. 0 selects 4096; negative disables background rebuilds (the
	// overlay grows without bound — tests use this to pin the overlay).
	RebuildThreshold int
	// RebuildRetries is how many times a failed rebuild is retried (with
	// exponential backoff) before the engine gives up until the next
	// commit re-triggers it. 0 selects 3; negative means no retries.
	RebuildRetries int
	// RebuildBackoff is the base retry backoff, doubling per attempt.
	// Default 50ms.
	RebuildBackoff time.Duration
}

// EdgeOp is one edge mutation submitted through DB.Mutate.
type EdgeOp struct {
	Remove   bool
	From, To V
}

// MutationStats is the point-in-time mutation view in DB.MutationStats
// and /admin/stats.
type MutationStats struct {
	OverlayAdded   int    `json:"overlay_added"`
	OverlayRemoved int    `json:"overlay_removed"`
	WALSeq         uint64 `json:"wal_seq"`
	WALBytes       int64  `json:"wal_bytes"`
	Replayed       int    `json:"replayed,omitempty"`
	RecoveredTail  string `json:"recovered_tail,omitempty"`
	Rebuilding     bool   `json:"rebuilding,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`
}

// mutState is one immutable serving state: a frozen graph, the index
// built over it, and the overlay of mutations the index does not know.
// Queries load exactly one state, so every answer is internally
// consistent even while commits and rebuilds publish new states.
type mutState struct {
	g    *Graph
	prep *PreparedGraph
	ix   Index
	ov   *mutate.Overlay
}

// mutDB is the mutation engine hanging off a DB.
type mutDB struct {
	kind Kind
	opts Options // rebuild options: Spans stripped, Prepared replaced per rebuild

	m   *obs.MutationMetrics // always allocated; exported only when DB metrics are on
	dbm *obs.DBMetrics       // nil when DBConfig.Metrics is off

	state atomic.Pointer[mutState]
	wmu   sync.Mutex // serializes state writers (commit apply, rebuild publish)

	wal   *mutate.Log
	fsync FsyncMode
	bat   *mutate.Batcher

	threshold int // overlay size triggering a rebuild; 0 = disabled
	retries   int
	backoff   time.Duration

	rebuilding atomic.Bool
	closed     atomic.Bool
	ctx        context.Context // rebuild lifetime; canceled by Close
	cancel     context.CancelFunc
	wg         sync.WaitGroup

	replayed      int
	recoveredTail string

	// testHookPreSwap runs between a rebuild's index construction and its
	// publish, so tests can race mutations into exactly that window.
	testHookPreSwap func()
}

// checkMutationConfig validates DBConfig.Mutation against the rest of
// the configuration before any index is built.
func checkMutationConfig(g *Graph, cfg DBConfig) error {
	mc := cfg.Mutation
	if mc == nil {
		return nil
	}
	switch {
	case mc.WALPath == "":
		return fmt.Errorf("%w: Mutation.WALPath is required", ErrBadOptions)
	case g.Labeled():
		return fmt.Errorf("%w: Mutation supports unlabeled graphs only", ErrBadOptions)
	case cfg.CacheSize > 0:
		return fmt.Errorf("%w: Mutation and CacheSize are mutually exclusive (cached answers would go stale under mutation)", ErrBadOptions)
	case len(cfg.ExtraPlain) > 0:
		return fmt.Errorf("%w: Mutation and ExtraPlain are mutually exclusive (only the primary index is rebuilt)", ErrBadOptions)
	case mc.Fsync != FsyncAlways && mc.Fsync != FsyncNever:
		return fmt.Errorf("%w: unknown Fsync mode %v", ErrBadOptions, mc.Fsync)
	}
	return nil
}

// initMutation opens and replays the WAL and starts the mutation engine.
// Called at the end of NewDBCtx, after the plain index is built (and
// instrumented). Replayed mutations go into the overlay — the index on
// disk or freshly built reflects the base graph, the WAL carries what
// happened since.
func (db *DB) initMutation(cfg DBConfig) error {
	mc := cfg.Mutation
	wal, rec, err := mutate.Open(mc.WALPath, mc.Fsync)
	if err != nil {
		return err
	}
	n := uint32(db.g.N())
	for _, b := range rec.Batches {
		for _, op := range b.Ops {
			if op.From >= n || op.To >= n {
				wal.Close()
				return fmt.Errorf("%w: WAL %s references vertex %d but the graph has %d vertices (WAL/graph mismatch)",
					ErrBadOptions, mc.WALPath, max(op.From, op.To), n)
			}
		}
	}
	ov := mutate.NewOverlay()
	replayed := 0
	for _, b := range rec.Batches {
		for _, op := range b.Ops {
			ov.Apply(op, db.g.HasEdge)
			replayed++
		}
	}
	threshold := mc.RebuildThreshold
	switch {
	case threshold == 0:
		threshold = 4096
	case threshold < 0:
		threshold = 0 // disabled
	}
	retries := mc.RebuildRetries
	switch {
	case retries == 0:
		retries = 3
	case retries < 0:
		retries = 0
	}
	backoff := mc.RebuildBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	opts := cfg.Options
	opts.Spans = nil    // rebuild phases must not append to the DB's build timeline
	opts.Prepared = nil // each rebuild prepares its own graph
	ctx, cancel := context.WithCancel(context.Background())
	mdb := &mutDB{
		kind:      cfg.Plain,
		opts:      opts,
		m:         &obs.MutationMetrics{},
		dbm:       db.metrics,
		wal:       wal,
		fsync:     mc.Fsync,
		threshold: threshold,
		retries:   retries,
		backoff:   backoff,
		ctx:       ctx,
		cancel:    cancel,
		replayed:  replayed,
	}
	if rec.TailErr != nil {
		mdb.recoveredTail = rec.TailErr.Error()
	}
	mdb.m.WALReplayed.Add(int64(replayed))
	mdb.setOverlayGauges(ov)
	if db.metrics != nil {
		db.metrics.SetMutation(mdb.m)
	}
	mdb.state.Store(&mutState{g: db.g, prep: db.prep, ix: db.plain, ov: ov})
	mdb.bat = mutate.NewBatcher(mc.BatchOps, mc.BatchDelay, mdb.commit)
	db.mut = mdb
	mdb.maybeRebuild()
	return nil
}

func (mdb *mutDB) setOverlayGauges(ov *mutate.Overlay) {
	mdb.m.OverlayAdded.Set(int64(ov.AddedCount()))
	mdb.m.OverlayRemoved.Set(int64(ov.RemovedCount()))
}

// countFault mirrors the fault accounting of the query boundary for
// engine-side failures when DB metrics are on.
func (mdb *mutDB) countFault(err error) {
	if mdb.dbm == nil {
		return
	}
	mdb.dbm.Errors.Inc()
	if errors.Is(err, ErrIndexPanic) {
		mdb.dbm.Panics.Inc()
	}
	if errors.Is(err, ErrBuildCanceled) {
		mdb.dbm.Canceled.Inc()
	}
}

// commit is the batcher's commit function: WAL first, overlay second,
// acknowledge third. Runs on the single flusher goroutine. sync forces
// durability (a Flush barrier was in the window).
func (mdb *mutDB) commit(ops []mutate.Op, sync bool) error {
	start := time.Now()
	if len(ops) > 0 {
		n, err := mdb.wal.Append(ops)
		if err == nil && sync && mdb.fsync == FsyncNever {
			err = mdb.wal.Sync()
			mdb.m.WALFsyncs.Inc()
		}
		if err != nil {
			// The append rolled the file back (or marked the log broken):
			// nothing was acknowledged, nothing is applied — the overlay
			// and the WAL stay in lockstep.
			mdb.m.WALErrors.Inc()
			mdb.m.Rejected.Add(int64(len(ops)))
			mdb.countFault(err)
			return err
		}
		mdb.m.WALAppends.Inc()
		mdb.m.WALBytes.Add(n)
		if mdb.fsync == FsyncAlways {
			mdb.m.WALFsyncs.Inc()
		}
		mdb.wmu.Lock()
		st := mdb.state.Load()
		ov := st.ov.Clone()
		for _, op := range ops {
			ov.Apply(op, st.g.HasEdge)
		}
		mdb.state.Store(&mutState{g: st.g, prep: st.prep, ix: st.ix, ov: ov})
		mdb.wmu.Unlock()
		mdb.m.Applied.Add(int64(len(ops)))
		mdb.setOverlayGauges(ov)
	} else if sync {
		if err := mdb.wal.Sync(); err != nil {
			mdb.m.WALErrors.Inc()
			mdb.countFault(err)
			return err
		}
		mdb.m.WALFsyncs.Inc()
	}
	mdb.m.FlushLatency.Record(time.Since(start))
	mdb.maybeRebuild()
	return nil
}

// maybeRebuild starts the background reindexer when the overlay has
// outgrown the threshold and no rebuild is already running. Called after
// every commit, so a degraded engine (retries exhausted) re-arms on the
// next successful write.
func (mdb *mutDB) maybeRebuild() {
	if mdb.threshold <= 0 || mdb.closed.Load() {
		return
	}
	if mdb.state.Load().ov.Size() < mdb.threshold {
		return
	}
	if !mdb.rebuilding.CompareAndSwap(false, true) {
		return
	}
	mdb.wg.Add(1)
	go mdb.runRebuild()
}

// runRebuild drives one rebuild to success or retry exhaustion.
func (mdb *mutDB) runRebuild() {
	defer mdb.wg.Done()
	defer mdb.rebuilding.Store(false)
	for attempt := 0; ; attempt++ {
		err := mdb.rebuildOnce()
		if err == nil {
			mdb.m.RebuildDegraded.Set(0)
			return
		}
		mdb.m.RebuildFailures.Inc()
		if errors.Is(err, ErrIndexPanic) {
			mdb.m.RebuildPanics.Inc()
		}
		mdb.countFault(err)
		if attempt >= mdb.retries || mdb.ctx.Err() != nil {
			// Give up for now: the old index + overlay keep serving
			// exactly; the next commit's maybeRebuild tries again.
			mdb.m.RebuildDegraded.Set(1)
			return
		}
		select {
		case <-time.After(mdb.backoff << uint(attempt)):
		case <-mdb.ctx.Done():
			mdb.m.RebuildDegraded.Set(1)
			return
		}
	}
}

// rebuildOnce folds the current overlay into a fresh frozen graph,
// builds a new index over it off the hot path, and publishes the result
// through the atomic pointer. Ops that commit during the build land in
// the live overlay as usual; at publish time the live overlay is rebased
// onto the new graph so no mutation — including one that reverts a
// folded change — is lost or double-applied. Panics anywhere inside
// (index builders included) are contained as ErrIndexPanic.
func (mdb *mutDB) rebuildOnce() (err error) {
	defer core.Recover(&err)
	faultinject.Hit(mutate.SiteRebuild)
	snapSt := mdb.state.Load()
	snap := snapSt.ov
	if snap.Empty() {
		return nil
	}
	b := graph.Mutate(snapSt.g)
	snap.RemovedEdges(func(u, v uint32) {
		b.RemoveEdge(graph.Edge{From: u, To: v})
	})
	snap.AddedEdges(func(u, v uint32) {
		b.AddEdge(u, v)
	})
	g1, err := b.Freeze()
	if err != nil {
		return err
	}
	prep1 := Prepare(g1)
	opts := mdb.opts
	opts.Prepared = prep1
	ix1, err := BuildCtx(mdb.ctx, mdb.kind, g1, opts)
	if err != nil {
		return err
	}
	if mdb.dbm != nil {
		ix1 = core.Instrument(ix1, g1, mdb.dbm.Index(ix1.Name()))
	}
	if hook := mdb.testHookPreSwap; hook != nil {
		hook()
	}
	mdb.wmu.Lock()
	cur := mdb.state.Load()
	ov1 := mutate.Rebase(cur.ov, snap, snapSt.g.HasEdge, g1.HasEdge)
	mdb.state.Store(&mutState{g: g1, prep: prep1, ix: ix1, ov: ov1})
	mdb.wmu.Unlock()
	mdb.m.Rebuilds.Inc()
	mdb.setOverlayGauges(ov1)
	return nil
}

// submit validates nothing (the DB entry points did) and rides the
// group-commit batcher.
func (mdb *mutDB) submit(ctx context.Context, ops []mutate.Op) error {
	if mdb.closed.Load() {
		return mutate.ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return mdb.bat.Submit(ctx, ops)
}

// close drains the batcher (queued submissions are committed and
// acknowledged), stops any rebuild, and closes the WAL.
func (mdb *mutDB) close() error {
	if !mdb.closed.CompareAndSwap(false, true) {
		return nil
	}
	mdb.bat.Close()
	mdb.cancel()
	mdb.wg.Wait()
	return mdb.wal.Close()
}

// Mutate submits a slice of edge mutations as one atomic unit: all of
// them ride the same group commit, so after a crash either every op of
// the slice is replayed or none is. It blocks until the batch is durable
// per the WAL's fsync policy (or ctx is done — the batch itself still
// commits; a caller that gave up may find its ops applied, like any
// write that times out in flight). Requires DBConfig.Mutation, else
// ErrNotMutable. Vertices must be in the graph's fixed universe
// (ErrVertexRange); the vertex set never changes, only edges.
func (db *DB) Mutate(ctx context.Context, ops []EdgeOp) error {
	if db.mut == nil {
		return ErrNotMutable
	}
	if len(ops) == 0 {
		return nil
	}
	mops := make([]mutate.Op, len(ops))
	for i, op := range ops {
		if err := core.CheckPair(db.g.N(), op.From, op.To); err != nil {
			db.mut.m.Rejected.Add(int64(len(ops)))
			return err
		}
		mops[i] = mutate.Op{Remove: op.Remove, From: op.From, To: op.To}
	}
	return db.mut.submit(ctx, mops)
}

// AddEdge adds the edge (s, t) to the live graph. See Mutate for the
// durability and blocking contract.
func (db *DB) AddEdge(ctx context.Context, s, t V) error {
	return db.Mutate(ctx, []EdgeOp{{From: s, To: t}})
}

// RemoveEdge removes the edge (s, t) from the live graph (a no-op if
// absent). See Mutate for the durability and blocking contract.
func (db *DB) RemoveEdge(ctx context.Context, s, t V) error {
	return db.Mutate(ctx, []EdgeOp{{Remove: true, From: s, To: t}})
}

// Flush is the durability barrier: it forces any buffered group-commit
// window to commit and fsyncs the WAL regardless of the fsync policy.
// When Flush returns nil, every mutation acknowledged before the call
// survives power loss. On a non-mutable DB it is a no-op.
func (db *DB) Flush(ctx context.Context) error {
	if db.mut == nil {
		return nil
	}
	return db.mut.submit(ctx, nil)
}

// Close shuts the background engines down. On a mutable DB, queued
// submissions are committed and acknowledged, the background reindexer
// is stopped, and the WAL is synced and closed; further mutations fail.
// On an auto-tuned DB the advisor loop stops (the currently published
// index serves forever). Queries keep working either way. On a plain DB
// it is a no-op.
func (db *DB) Close() error {
	if db.aut != nil {
		db.aut.close()
	}
	if db.mut == nil {
		return nil
	}
	return db.mut.close()
}

// MutationStats reports the mutation engine's current state; ok is false
// on a non-mutable DB.
func (db *DB) MutationStats() (stats MutationStats, ok bool) {
	if db.mut == nil {
		return MutationStats{}, false
	}
	mdb := db.mut
	st := mdb.state.Load()
	return MutationStats{
		OverlayAdded:   st.ov.AddedCount(),
		OverlayRemoved: st.ov.RemovedCount(),
		WALSeq:         mdb.wal.Seq(),
		WALBytes:       mdb.wal.Size(),
		Replayed:       mdb.replayed,
		RecoveredTail:  mdb.recoveredTail,
		Rebuilding:     mdb.rebuilding.Load(),
		Degraded:       mdb.m.RebuildDegraded.Load() != 0,
	}, true
}

// reachCurrent answers plain reachability against the live graph: the
// serving plain index when the DB is not mutable (or the overlay is
// empty), exact overlay-aware evaluation otherwise. On an auto-tuned DB
// the serving index is whatever the advisor last published.
func (db *DB) reachCurrent(s, t V) bool {
	if db.mut == nil {
		return db.plainCurrent().Reach(s, t)
	}
	return db.mut.state.Load().reach(s, t)
}

// reach is the delta-overlay query path. Exactness argument, by overlay
// shape:
//
//   - Empty overlay: the frozen index is the live graph. Probe it.
//   - Adds only: the live graph is a supergraph of the frozen one, so
//     the index's positives stay valid (probe first) and its negatives
//     can only be flipped by paths through added edges — found by the
//     anchor search over the added-edge set (reachWithAdds).
//   - Removals present: the index's positives are no longer trustworthy
//     (the certifying path may use a removed edge), so positives are
//     recomputed by BFS over the overlaid adjacency. Negatives stay
//     trustworthy when there are no adds — removing edges only shrinks
//     reachability — which gives the negative shortcut.
func (st *mutState) reach(s, t V) bool {
	if s == t {
		return true
	}
	ov := st.ov
	switch {
	case ov.Empty():
		return st.ix.Reach(s, t)
	case ov.RemovedCount() == 0:
		if st.ix.Reach(s, t) {
			return true
		}
		return st.reachWithAdds(s, t)
	case ov.AddedCount() == 0 && !st.ix.Reach(s, t):
		return false
	default:
		return st.bfsOverlaid(s, t)
	}
}

// reachWithAdds decides s→t on base+adds given the frozen index already
// said no on the base graph alone. Any witnessing path must cross added
// edges; between crossings it runs on the base graph, where the index is
// exact. So search over "anchors": s plus the heads of activated added
// edges. An added edge (u, v) activates when some anchor base-reaches u;
// an anchor that base-reaches t wins. Each of the A added edges
// activates at most once, giving O(A²) index probes worst case — A is
// bounded by the rebuild threshold, and probes are microseconds.
func (st *mutState) reachWithAdds(s, t V) bool {
	type edge struct{ u, v V }
	edges := make([]edge, 0, st.ov.AddedCount())
	st.ov.AddedEdges(func(u, v uint32) {
		edges = append(edges, edge{u, v})
	})
	anchors := []V{s}
	seen := map[V]bool{s: true}
	used := make([]bool, len(edges))
	for i := 0; i < len(anchors); i++ {
		a := anchors[i]
		if i > 0 && (a == t || st.ix.Reach(a, t)) {
			// i == 0 is s itself, whose base probe the caller already made.
			return true
		}
		for j, e := range edges {
			if used[j] || seen[e.v] {
				continue
			}
			if a == e.u || st.ix.Reach(a, e.u) {
				used[j] = true
				seen[e.v] = true
				anchors = append(anchors, e.v)
			}
		}
	}
	return false
}

// bfsOverlaid runs a plain BFS over the overlaid adjacency — base
// successors minus removed edges plus added ones. The exact fallback
// when removals invalidate the frozen index's positives.
func (st *mutState) bfsOverlaid(s, t V) bool {
	n := st.g.N()
	visited := make([]bool, n)
	visited[s] = true
	queue := make([]V, 1, 64)
	queue[0] = s
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		found := st.eachSucc(u, func(v V) bool {
			if v == t {
				return true
			}
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
			return false
		})
		if found {
			return true
		}
	}
	return false
}

// eachSucc iterates u's successors in the live graph (base minus removed
// plus added); fn returning true stops the iteration and is propagated.
func (st *mutState) eachSucc(u V, fn func(v V) bool) bool {
	ov := st.ov
	for _, v := range st.g.Succ(u) {
		if ov.RemovedCount() > 0 && ov.HasRemoved(u, v) {
			continue
		}
		if fn(v) {
			return true
		}
	}
	for _, v := range ov.AddedSucc(u) {
		if fn(v) {
			return true
		}
	}
	return false
}

// witnessPath reconstructs a shortest s→t path on the overlaid graph by
// parent-tracking BFS. Caller has established reachability.
func (st *mutState) witnessPath(s, t V) []V {
	if s == t {
		return []V{s}
	}
	n := st.g.N()
	parent := make([]int64, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[s] = int64(s)
	queue := make([]V, 1, 64)
	queue[0] = s
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		done := st.eachSucc(u, func(v V) bool {
			if parent[v] >= 0 {
				return false
			}
			parent[v] = int64(u)
			if v == t {
				return true
			}
			queue = append(queue, v)
			return false
		})
		if done {
			path := []V{t}
			for v := t; v != s; {
				v = V(parent[v])
				path = append(path, v)
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
	}
	return nil
}

// BatchReachCtx evaluates many plain reachability queries against the
// live graph. On a sharded DB the batch scatter-gathers across the
// per-shard indexes; on a DB with an empty (or no) overlay it runs the
// 64-way bit-parallel batch kernel over the current frozen graph; with a
// non-empty overlay each pair is answered by the exact delta-overlay
// path, polling ctx periodically.
func (db *DB) BatchReachCtx(ctx context.Context, pairs []Pair) (out []bool, err error) {
	if db.mut == nil {
		if sx, ok := shardEngine(db.plain); ok {
			return db.shardBatch(ctx, sx, pairs)
		}
		return BatchReachCtx(ctx, nil, db.g, pairs, 0)
	}
	st := db.mut.state.Load()
	if st.ov.Empty() {
		return BatchReachCtx(ctx, nil, st.g, pairs, 0)
	}
	n := st.g.N()
	for _, p := range pairs {
		if err := core.CheckPair(n, p.S, p.T); err != nil {
			return nil, err
		}
	}
	defer db.boundary(&err)
	out = make([]bool, len(pairs))
	for i, p := range pairs {
		if ctx != nil && i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out[i] = st.reach(p.S, p.T)
	}
	return out, nil
}
