package reach

// Tests for the query-path acceleration layer: the shared condensation
// memo (condense once per DB, however many DAG-only indexes it builds),
// the bit-parallel index-free batch path, and the sharded query-result
// cache (consistency against the exact oracles, including on degraded
// routes, plus eviction accounting).

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/tc"
)

// TestBatchReachNilIndexMatchesOracle proves the nil-index bit-parallel
// path answers exactly like the closure oracle on both DAGs and cyclic
// graphs, at every worker count (block scatter must be deterministic and
// race-free — run under -race).
func TestBatchReachNilIndexMatchesOracle(t *testing.T) {
	graphs := map[string]*Graph{
		"dag":    gen.RandomDAG(gen.Config{N: 400, M: 1600, Seed: 21}),
		"cyclic": gen.ErdosRenyi(gen.Config{N: 300, M: 1500, Seed: 22}),
	}
	for name, g := range graphs {
		oracle := tc.NewClosure(g)
		rng := rand.New(rand.NewSource(23))
		pairs := make([]Pair, 1000) // > 15 blocks of 64, plus a ragged tail
		for i := range pairs {
			pairs[i] = Pair{V(rng.Intn(g.N())), V(rng.Intn(g.N()))}
		}
		pairs[17] = Pair{pairs[17].S, pairs[17].S} // self pair inside a block
		for _, workers := range []int{0, 1, 2, 7, 64} {
			got, err := BatchReach(nil, g, pairs, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			for i, p := range pairs {
				if got[i] != oracle.Reach(p.S, p.T) {
					t.Fatalf("%s workers=%d: pair %d (%d→%d) = %v, oracle disagrees",
						name, workers, i, p.S, p.T, got[i])
				}
			}
		}
	}
}

// TestBatchReachCtx pins the context contract on both the indexed and the
// bit-parallel path: a live context changes nothing, a canceled one
// returns its error and no results.
func TestBatchReachCtx(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 200, M: 600, Seed: 24})
	ix, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]Pair, 300)
	rng := rand.New(rand.NewSource(25))
	for i := range pairs {
		pairs[i] = Pair{V(rng.Intn(g.N())), V(rng.Intn(g.N()))}
	}
	want, err := BatchReach(ix, g, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, index := range []Index{ix, nil} {
		got, err := BatchReachCtx(context.Background(), index, g, pairs, 2)
		if err != nil {
			t.Fatalf("live ctx: %v", err)
		}
		for i := range pairs {
			if got[i] != want[i] {
				t.Fatalf("ctx path disagrees with plain path at %d", i)
			}
		}
		canceled, cancel := context.WithCancel(context.Background())
		cancel()
		if out, err := BatchReachCtx(canceled, index, g, pairs, 2); err == nil || out != nil {
			t.Fatalf("canceled ctx: out=%v err=%v, want nil results and error", out, err)
		}
	}
}

// TestNewDBCondensesOnce is the tentpole's acceptance check: a DB building
// four DAG-only plain indexes (Plain + 3 ExtraPlain) over one graph runs
// the SCC condensation exactly once — one cached=false "scc/condense"
// span, all later ones cached=true — and the memo reports the hits.
func TestNewDBCondensesOnce(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 300, M: 1200, Seed: 26})
	db, err := NewDB(g, DBConfig{
		Plain:      KindBFL,
		ExtraPlain: []Kind{KindFeline, KindPReaCH, KindGRAIL},
		Metrics:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var computed, cached int
	for _, span := range db.Metrics().Build.Snapshot() {
		if span.Name != "scc/condense" {
			continue
		}
		if span.Cached {
			cached++
		} else {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("condensation computed %d times, want exactly 1", computed)
	}
	if cached != 3 {
		t.Fatalf("condensation cache hits in spans = %d, want 3", cached)
	}
	if hits := db.Prepared().Hits(); hits != 3 {
		t.Fatalf("Prepared.Hits() = %d, want 3", hits)
	}
	// The extra indexes must be real, queryable indexes.
	oracle := tc.NewClosure(g)
	for _, kind := range []Kind{KindBFL, KindFeline, KindPReaCH, KindGRAIL} {
		ix, ok := db.PlainIndex(kind)
		if !ok {
			t.Fatalf("PlainIndex(%s) missing", kind)
		}
		for s := V(0); s < 50; s += 7 {
			for tt := V(0); tt < 50; tt += 5 {
				if ix.Reach(s, tt) != oracle.Reach(s, tt) {
					t.Fatalf("%s disagrees with oracle on (%d,%d)", kind, s, tt)
				}
			}
		}
	}
	if len(db.Stats()) < 4 {
		t.Fatalf("Stats() has %d entries, want >= 4", len(db.Stats()))
	}
}

// TestPreparedWrongGraph pins the fail-fast on a memo bound to a different
// graph: silently reusing a foreign condensation would answer against the
// wrong component structure.
func TestPreparedWrongGraph(t *testing.T) {
	g1 := gen.RandomDAG(gen.Config{N: 50, M: 120, Seed: 27})
	g2 := gen.RandomDAG(gen.Config{N: 50, M: 120, Seed: 28})
	if _, err := Build(KindBFL, g1, Options{Prepared: Prepare(g2)}); err == nil {
		t.Fatal("Build accepted a Prepared bound to a different graph")
	}
}

// dbOracleQueries runs a mixed hot-pair workload against a DB and the
// exact oracles, failing on the first disagreement. Keys repeat heavily so
// a caching DB serves most answers from the cache.
func dbOracleQueries(t *testing.T, db *DB, g *Graph, oracle *tc.Oracle, rounds int) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	type q struct{ s, t V }
	hot := make([]q, 24)
	for i := range hot {
		hot[i] = q{V(rng.Intn(g.N())), V(rng.Intn(g.N()))}
	}
	for r := 0; r < rounds; r++ {
		p := hot[rng.Intn(len(hot))]
		switch rng.Intn(4) {
		case 0:
			got, err := db.Reach(p.s, p.t)
			if err != nil {
				t.Fatal(err)
			}
			if want := oracle.Reach(p.s, p.t); got != want {
				t.Fatalf("round %d: Reach(%d,%d) = %v, oracle %v", r, p.s, p.t, got, want)
			}
		case 1:
			got, err := db.Query(p.s, p.t, "(l0|l1)*")
			if err != nil {
				t.Fatal(err)
			}
			mask := labelSetOf(0b11)
			if want := oracle.ReachLC(p.s, p.t, mask); got != want {
				t.Fatalf("round %d: Query(%d,%d,(a|b)*) = %v, oracle %v", r, p.s, p.t, got, want)
			}
		case 2:
			got, err := db.Query(p.s, p.t, "(l0|l2)+")
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.ReachLC(p.s, p.t, labelSetOf(0b101))
			if p.s == p.t {
				// plus semantics: the empty path does not witness (…)+.
				want = db.g.Labeled() && plusSelf(db, p.s, 0b101)
			}
			if got != want {
				t.Fatalf("round %d: Query(%d,%d,(a|c)+) = %v, want %v", r, p.s, p.t, got, want)
			}
		case 3:
			got, err := db.Query(p.s, p.t, "(l0.l1)*")
			if err != nil {
				t.Fatal(err)
			}
			if want := oracle.ReachRLC(p.s, p.t, []Label{0, 1}, true); got != want {
				t.Fatalf("round %d: Query(%d,%d,(a.b)*) = %v, oracle %v", r, p.s, p.t, got, want)
			}
		}
	}
}

// plusSelf recomputes (mask)+ for s == t by the definition: some allowed
// out-edge leads to a vertex that star-reaches s.
func plusSelf(db *DB, s V, mask uint64) bool {
	succ := db.g.Succ(s)
	labs := db.g.SuccLabels(s)
	for i, w := range succ {
		if mask&(1<<uint(labs[i])) == 0 {
			continue
		}
		if w == s {
			return true
		}
		if ok, _ := db.Query(w, s, "(l0|l2)*"); ok {
			return true
		}
	}
	return false
}

// TestDBCacheConsistency interleaves cached DB queries with the exact
// oracles over a hot pair set: every answer must match, the cache must
// actually serve hits, and a cache-disabled DB must agree query-for-query.
func TestDBCacheConsistency(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 70, M: 300, Seed: 30}), 3, 0.7, 30)
	oracle := tc.NewOracle(g)
	db, err := NewDB(g, DBConfig{CacheSize: 4096, Metrics: true, Options: Options{MaxSeq: 2}})
	if err != nil {
		t.Fatal(err)
	}
	dbOracleQueries(t, db, g, oracle, 800)
	snap, ok := db.CacheStats()
	if !ok {
		t.Fatal("CacheStats reports cache disabled")
	}
	if snap.Hits == 0 || snap.Misses == 0 {
		t.Fatalf("hot workload should produce hits and misses, got %+v", snap)
	}
	if snap.Entries == 0 || snap.Entries > snap.Capacity {
		t.Fatalf("entries %d outside (0, capacity %d]", snap.Entries, snap.Capacity)
	}
	// The metrics snapshot must carry the same counters.
	ms, ok := db.MetricsSnapshot()
	if !ok || ms.Cache == nil {
		t.Fatal("metrics snapshot missing cache section")
	}
	if ms.Cache.Hits < snap.Hits {
		t.Fatalf("metrics cache hits %d < CacheStats hits %d", ms.Cache.Hits, snap.Hits)
	}
	// An uncached DB must be query-for-query identical (the cache is
	// invisible except in latency).
	plain, err := NewDB(g, DBConfig{Options: Options{MaxSeq: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.CacheStats(); ok {
		t.Fatal("CacheStats should report disabled with CacheSize 0")
	}
	dbOracleQueries(t, plain, g, oracle, 400)
}

// TestDBCacheDegradedRoute proves cache and degraded serving compose: with
// the LCR build killed by fault injection, alternation queries run online,
// get cached, and still match the oracle on every repeat.
func TestDBCacheDegradedRoute(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 60, M: 240, Seed: 33}), 3, 0.7, 33)
	oracle := tc.NewOracle(g)
	faultinject.Activate(&faultinject.Plan{Site: "build/lcr/p2h", Kind: faultinject.Panic, After: 3})
	db, err := NewDB(g, DBConfig{CacheSize: 1024, Degraded: true, Options: Options{MaxSeq: 2}})
	faultinject.Deactivate()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.DegradedRoutes()["lcr"]; !ok {
		t.Fatal("LCR route should be degraded")
	}
	dbOracleQueries(t, db, g, oracle, 600)
	snap, _ := db.CacheStats()
	if snap.Hits == 0 {
		t.Fatal("degraded route should still serve cache hits")
	}
}

// TestDBCacheEviction drives more distinct keys than the cache holds and
// checks the CLOCK accounting: evictions happen, entries stay bounded, and
// answers stay correct throughout.
func TestDBCacheEviction(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 200, M: 700, Seed: 34})
	oracle := tc.NewClosure(g)
	db, err := NewDB(g, DBConfig{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	for i := 0; i < 4000; i++ {
		s, tt := V(rng.Intn(g.N())), V(rng.Intn(g.N()))
		got, err := db.Reach(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if got != oracle.Reach(s, tt) {
			t.Fatalf("Reach(%d,%d) wrong under eviction pressure", s, tt)
		}
	}
	snap, _ := db.CacheStats()
	if snap.Evictions == 0 {
		t.Fatal("4000 distinct-heavy queries through 64 entries must evict")
	}
	if snap.Entries > snap.Capacity {
		t.Fatalf("entries %d exceeds capacity %d", snap.Entries, snap.Capacity)
	}
}
