package reach

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/tc"
)

func TestBuildAllKinds(t *testing.T) {
	// Every registered kind must build on both a DAG and a cyclic graph
	// and agree with the exact closure.
	graphs := map[string]*Graph{
		"dag":    gen.RandomDAG(gen.Config{N: 60, M: 150, Seed: 1}),
		"cyclic": gen.ErdosRenyi(gen.Config{N: 50, M: 160, Seed: 2}),
		"fig1":   Fig1Plain(),
	}
	for name, g := range graphs {
		oracle := tc.NewClosure(g)
		for _, k := range Kinds() {
			ix, err := Build(k, g, Options{Seed: 3})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, k, err)
			}
			for s := V(0); int(s) < g.N(); s += 2 {
				for tt := V(0); int(tt) < g.N(); tt += 3 {
					if got, want := ix.Reach(s, tt), oracle.Reach(s, tt); got != want {
						t.Fatalf("%s/%s: Reach(%d,%d) = %v, want %v", name, k, s, tt, got, want)
					}
				}
			}
			if ix.Name() == "" {
				t.Errorf("%s: empty name", k)
			}
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := Build("nope", Fig1Plain(), Options{}); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestBuildDynamicKinds(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 40, M: 100, Seed: 4})
	for _, k := range []Kind{KindTOL, KindDAGGER, KindDBL} {
		ix, err := BuildDynamic(k, g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if err := ix.InsertEdge(0, 1); err != nil {
			t.Fatalf("%s insert: %v", k, err)
		}
		if !ix.Reach(0, 1) {
			t.Fatalf("%s: inserted edge not reachable", k)
		}
	}
	if _, err := BuildDynamic(KindBFL, g, Options{}); err == nil {
		t.Fatal("BFL is not dynamic; BuildDynamic should fail")
	}
}

func TestBuildLCRKinds(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 40, M: 140, Seed: 5}), 4, 0.7, 6)
	oracle := tc.NewGTC(g)
	for _, k := range LCRKinds() {
		ix, err := BuildLCR(k, g, Options{K: 8})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		for s := V(0); int(s) < g.N(); s += 3 {
			for tt := V(0); int(tt) < g.N(); tt += 3 {
				for mask := uint64(1); mask < 16; mask *= 3 {
					want := s == tt || oracle.ReachLC(s, tt, labelSet(mask))
					if got := ix.ReachLC(s, tt, labelSet(mask)); got != want {
						t.Fatalf("%s: ReachLC(%d,%d,%b) = %v, want %v", k, s, tt, mask, got, want)
					}
				}
			}
		}
	}
	// Unlabeled graph must be rejected.
	if _, err := BuildLCR(LCRP2H, Fig1Plain(), Options{}); err == nil {
		t.Fatal("LCR on unlabeled graph should fail")
	}
	if _, err := BuildLCR("nope", g, Options{}); err == nil {
		t.Fatal("unknown LCR kind should fail")
	}
}

func TestBuildRLC(t *testing.T) {
	g := Fig1Labeled()
	ix, err := BuildRLC(g, Options{MaxSeq: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := g.VertexByName("L")
	b, _ := g.VertexByName("B")
	if !ix.ReachRLC(l, b, []Label{2, 0}) {
		t.Error("Fig1 RLC example failed")
	}
	if _, err := BuildRLC(Fig1Plain(), Options{}); err == nil {
		t.Fatal("RLC on unlabeled graph should fail")
	}
}
