package reach

// Tests for the hardened serving layer: typed errors at every public entry
// point, cooperative build cancellation, panic containment, degraded-mode
// serving, and the deterministic fault-injection harness. Run under -race
// in CI — the containment paths cross goroutine pools.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/tc"
)

// TestVertexRangePlainKinds drives every plain index kind through the DB
// entry points with out-of-range vertices: each must return
// ErrVertexRange, never panic.
func TestVertexRangePlainKinds(t *testing.T) {
	pg := Fig1Plain()
	bad := V(pg.N() + 7)
	for _, k := range Kinds() {
		db, err := NewDB(pg, DBConfig{Plain: k})
		if err != nil {
			t.Fatalf("%s: NewDB: %v", k, err)
		}
		if _, err := db.Reach(0, bad); !errors.Is(err, ErrVertexRange) {
			t.Errorf("%s: Reach(0, %d) err = %v, want ErrVertexRange", k, bad, err)
		}
		if _, err := db.Reach(bad, 0); !errors.Is(err, ErrVertexRange) {
			t.Errorf("%s: Reach(%d, 0) err = %v, want ErrVertexRange", k, bad, err)
		}
		if _, err := db.ReachPath(0, bad); !errors.Is(err, ErrVertexRange) {
			t.Errorf("%s: ReachPath(0, %d) err = %v, want ErrVertexRange", k, bad, err)
		}
		if _, err := db.Query(bad, 0, "x*"); !errors.Is(err, ErrVertexRange) {
			t.Errorf("%s: Query(%d, 0) err = %v, want ErrVertexRange", k, bad, err)
		}
	}
}

// TestVertexRangeLCRKinds does the same over every LCR kind (with the RLC
// index riding along) on the labeled Figure 1 graph.
func TestVertexRangeLCRKinds(t *testing.T) {
	lg := Fig1Labeled()
	bad := V(lg.N() + 3)
	for _, k := range LCRKinds() {
		db, err := NewDB(lg, DBConfig{LCR: k})
		if err != nil {
			t.Fatalf("%s: NewDB: %v", k, err)
		}
		if _, err := db.QueryAllowed(0, bad, 0); !errors.Is(err, ErrVertexRange) {
			t.Errorf("%s: QueryAllowed err = %v, want ErrVertexRange", k, err)
		}
		if _, err := db.Query(bad, 0, "(friendOf)*"); !errors.Is(err, ErrVertexRange) {
			t.Errorf("%s: Query LCR err = %v, want ErrVertexRange", k, err)
		}
		if _, err := db.Query(0, bad, "(worksFor.friendOf)*"); !errors.Is(err, ErrVertexRange) {
			t.Errorf("%s: Query RLC err = %v, want ErrVertexRange", k, err)
		}
		if _, err := db.QueryPath(0, bad, "(friendOf)*"); !errors.Is(err, ErrVertexRange) {
			t.Errorf("%s: QueryPath err = %v, want ErrVertexRange", k, err)
		}
	}
}

// TestVertexRangeBatch verifies batch submissions validate every pair
// before running any query.
func TestVertexRangeBatch(t *testing.T) {
	pg := Fig1Plain()
	ix, err := Build(KindPLL, pg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BatchReach(ix, pg, []Pair{{0, 1}, {0, V(pg.N())}}, 2); !errors.Is(err, ErrVertexRange) {
		t.Errorf("BatchReach err = %v, want ErrVertexRange", err)
	}
	lg := Fig1Labeled()
	lix, err := BuildLCR(LCRP2H, lg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BatchReachLC(lix, lg, []LCRPair{{S: V(lg.N() + 1)}}, 2); !errors.Is(err, ErrVertexRange) {
		t.Errorf("BatchReachLC err = %v, want ErrVertexRange", err)
	}
}

// TestBadOptionsAllKinds sweeps each negative option through every build
// entry point: all must reject with ErrBadOptions before any work runs.
func TestBadOptionsAllKinds(t *testing.T) {
	badOpts := []Options{{K: -1}, {Bits: -2}, {MaxSeq: -3}, {Workers: -4}}
	pg := Fig1Plain()
	for _, k := range Kinds() {
		for _, opt := range badOpts {
			if _, err := Build(k, pg, opt); !errors.Is(err, ErrBadOptions) {
				t.Errorf("Build(%s, %+v) err = %v, want ErrBadOptions", k, opt, err)
			}
		}
	}
	lg := Fig1Labeled()
	for _, k := range LCRKinds() {
		for _, opt := range badOpts {
			if _, err := BuildLCR(k, lg, opt); !errors.Is(err, ErrBadOptions) {
				t.Errorf("BuildLCR(%s, %+v) err = %v, want ErrBadOptions", k, opt, err)
			}
		}
	}
	for _, opt := range badOpts {
		if _, err := BuildRLC(lg, opt); !errors.Is(err, ErrBadOptions) {
			t.Errorf("BuildRLC(%+v) err = %v, want ErrBadOptions", opt, err)
		}
	}
	if _, err := Build(KindBFL, nil, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Build(nil graph) err = %v, want ErrBadOptions", err)
	}
	if _, err := BuildLCR(LCRP2H, pg, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("BuildLCR(unlabeled) err = %v, want ErrBadOptions", err)
	}
	if _, err := BuildRLC(pg, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("BuildRLC(unlabeled) err = %v, want ErrBadOptions", err)
	}
	if _, err := NewDB(nil, DBConfig{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("NewDB(nil graph) err = %v, want ErrBadOptions", err)
	}
	if _, err := BuildDynamic(KindTOL, pg, Options{K: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("BuildDynamic bad options err = %v, want ErrBadOptions", err)
	}
}

// TestBuildCtxPreCanceled: a context canceled before the build starts
// must return ErrBuildCanceled from every kind without building anything.
func TestBuildCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pg := Fig1Plain()
	for _, k := range Kinds() {
		if _, err := BuildCtx(ctx, k, pg, Options{}); !errors.Is(err, ErrBuildCanceled) {
			t.Errorf("BuildCtx(%s) err = %v, want ErrBuildCanceled", k, err)
		}
	}
	lg := Fig1Labeled()
	for _, k := range LCRKinds() {
		if _, err := BuildLCRCtx(ctx, k, lg, Options{}); !errors.Is(err, ErrBuildCanceled) {
			t.Errorf("BuildLCRCtx(%s) err = %v, want ErrBuildCanceled", k, err)
		}
	}
	if _, err := BuildRLCCtx(ctx, lg, Options{}); !errors.Is(err, ErrBuildCanceled) {
		t.Errorf("BuildRLCCtx err = %v, want ErrBuildCanceled", err)
	}
	if _, err := NewDBCtx(ctx, pg, DBConfig{}); !errors.Is(err, ErrBuildCanceled) {
		t.Errorf("NewDBCtx err = %v, want ErrBuildCanceled", err)
	}
}

// TestCancelMidBuildTwoHop cancels a 2-hop construction over a 50k-vertex
// graph shortly after it starts: the build must abandon with
// ErrBuildCanceled far sooner than the full construction would take
// (greedy 2-hop cover at this scale runs for minutes).
func TestCancelMidBuildTwoHop(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-vertex build in -short mode")
	}
	g := gen.RandomDAG(gen.Config{N: 50000, M: 150000, Seed: 11})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err := BuildCtx(ctx, KindTwoHop, g, Options{})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBuildCanceled) {
		t.Fatalf("err = %v, want ErrBuildCanceled", err)
	}
	if !strings.Contains(err.Error(), "build/2hop") {
		t.Errorf("error does not name the checkpoint: %v", err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v — checkpoints are not firing", elapsed)
	}
}

// TestCancelMidBuildZouGTC does the same for the quadratic GTC
// materialization the survey warns about (§4.1.2).
func TestCancelMidBuildZouGTC(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-vertex build in -short mode")
	}
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 50000, M: 150000, Seed: 12}), 4, 0.6, 12)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err := BuildLCRCtx(ctx, LCRZouGTC, g, Options{})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBuildCanceled) {
		t.Fatalf("err = %v, want ErrBuildCanceled", err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v — checkpoints are not firing", elapsed)
	}
}

// TestDegradedLCRServing fails the LCR build with an injected panic and
// checks the DB still answers alternation queries correctly — validated
// against the exact GTC oracle — through the degraded traversal route.
func TestDegradedLCRServing(t *testing.T) {
	lg := Fig1Labeled()
	faultinject.Activate(&faultinject.Plan{Site: "build/lcr/p2h", Kind: faultinject.Panic, After: 3})
	defer faultinject.Deactivate()
	db, err := NewDB(lg, DBConfig{Degraded: true, Metrics: true})
	faultinject.Deactivate()
	if err != nil {
		t.Fatalf("degraded NewDB: %v", err)
	}
	dr := db.DegradedRoutes()
	if derr := dr["lcr"]; derr == nil || !errors.Is(derr, ErrIndexPanic) {
		t.Fatalf("DegradedRoutes = %v, want lcr → ErrIndexPanic", dr)
	}
	oracle := tc.NewGTC(lg)
	n := lg.N()
	for _, mask := range []uint64{1, 2, 3, 5, 7} {
		var labels []Label
		for l := 0; l < lg.Labels(); l++ {
			if mask&(1<<uint(l)) != 0 {
				labels = append(labels, Label(l))
			}
		}
		for s := 0; s < n; s++ {
			for tt := 0; tt < n; tt++ {
				got, err := db.QueryAllowed(V(s), V(tt), labels...)
				if err != nil {
					t.Fatalf("degraded QueryAllowed(%d,%d): %v", s, tt, err)
				}
				want := s == tt || oracle.ReachLC(V(s), V(tt), labelSet(mask))
				if got != want {
					t.Fatalf("degraded QueryAllowed(%d,%d,mask=%b) = %v, oracle %v", s, tt, mask, got, want)
				}
			}
		}
	}
	// Query routes the §2.2 worked example through the degraded path too.
	a, g := vertex(t, db, "A"), vertex(t, db, "G")
	if ok, err := db.Query(a, g, "(friendOf|follows)*"); err != nil || ok {
		t.Errorf("degraded Query(A,G,(friendOf|follows)*) = %v, %v; want false", ok, err)
	}
	snap, ok := db.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics enabled but no snapshot")
	}
	if len(snap.Degraded) != 1 || snap.Degraded[0] != "lcr" {
		t.Errorf("snapshot degraded = %v, want [lcr]", snap.Degraded)
	}
	if snap.Panics != 1 {
		t.Errorf("snapshot panics = %d, want 1", snap.Panics)
	}
	if _, ok := db.Stats()["degraded:lcr"]; !ok {
		t.Errorf("Stats() missing degraded:lcr entry: %v", db.Stats())
	}
	if _, ok := snap.Routes["degraded-lcr"]; !ok {
		t.Errorf("snapshot routes missing degraded-lcr: %v", snap.Routes)
	}
}

// TestDegradedRLCServing fails the RLC build and checks concatenation
// queries fall back to the online phase-tracking search.
func TestDegradedRLCServing(t *testing.T) {
	lg := Fig1Labeled()
	faultinject.Activate(&faultinject.Plan{Site: "build/rlc", Kind: faultinject.Panic, After: 2})
	defer faultinject.Deactivate()
	db, err := NewDB(lg, DBConfig{Degraded: true})
	faultinject.Deactivate()
	if err != nil {
		t.Fatalf("degraded NewDB: %v", err)
	}
	if derr := db.DegradedRoutes()["rlc"]; derr == nil || !errors.Is(derr, ErrIndexPanic) {
		t.Fatalf("DegradedRoutes = %v, want rlc → ErrIndexPanic", db.DegradedRoutes())
	}
	// §4.2 worked example: Qr(L, B, (worksFor·friendOf)*) = true.
	l, b := vertex(t, db, "L"), vertex(t, db, "B")
	if ok, err := db.Query(l, b, "(worksFor.friendOf)*"); err != nil || !ok {
		t.Errorf("degraded Query(L,B,(worksFor.friendOf)*) = %v, %v; want true", ok, err)
	}
	a, g := vertex(t, db, "A"), vertex(t, db, "G")
	if ok, err := db.Query(a, g, "(worksFor.friendOf)*"); err != nil || ok {
		t.Errorf("degraded Query(A,G,(worksFor.friendOf)*) = %v, %v; want false", ok, err)
	}
	if _, ok := db.Stats()["degraded:rlc"]; !ok {
		t.Errorf("Stats() missing degraded:rlc entry: %v", db.Stats())
	}
}

// TestDegradedViaCancel degrades through the cancellation path: the
// injected fault cancels the build's own context at an exact checkpoint.
// The canceled LCR build — and the RLC build behind it, whose context is
// by then dead — both degrade, and the DB still serves. The graph must be
// large enough that the build crosses another stride-64 context poll
// after the cancel fires; Figure 1 would finish before noticing.
func TestDegradedViaCancel(t *testing.T) {
	lg := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 2000, M: 8000, Seed: 13}), 4, 0.6, 13)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Activate(&faultinject.Plan{
		Site: "build/lcr/zougtc", Kind: faultinject.Cancel, After: 5, Cancel: cancel,
	})
	defer faultinject.Deactivate()
	db, err := NewDBCtx(ctx, lg, DBConfig{LCR: LCRZouGTC, Degraded: true})
	faultinject.Deactivate()
	if err != nil {
		t.Fatalf("degraded NewDBCtx: %v", err)
	}
	dr := db.DegradedRoutes()
	if derr := dr["lcr"]; derr == nil || !errors.Is(derr, ErrBuildCanceled) {
		t.Fatalf("DegradedRoutes[lcr] = %v, want ErrBuildCanceled", derr)
	}
	if derr := dr["rlc"]; derr == nil || !errors.Is(derr, ErrBuildCanceled) {
		t.Fatalf("DegradedRoutes[rlc] = %v, want ErrBuildCanceled", derr)
	}
	// Degraded answers still agree with the exact GTC oracle.
	oracle := tc.NewGTC(lg)
	all := labelSet(1<<uint(lg.Labels()) - 1)
	labels := []Label{0, 1, 2, 3}
	for s := 0; s < 40; s++ {
		for tt := 40; tt < 80; tt++ {
			got, err := db.QueryAllowed(V(s), V(tt), labels...)
			if err != nil {
				t.Fatalf("degraded QueryAllowed(%d,%d): %v", s, tt, err)
			}
			want := s == tt || oracle.ReachLC(V(s), V(tt), all)
			if got != want {
				t.Fatalf("degraded QueryAllowed(%d,%d) = %v, oracle %v", s, tt, got, want)
			}
		}
	}
}

// TestDegradedNotConfigured: without cfg.Degraded the same injected fault
// must fail NewDB with the typed error, not come up silently degraded.
func TestDegradedNotConfigured(t *testing.T) {
	lg := Fig1Labeled()
	faultinject.Activate(&faultinject.Plan{Site: "build/lcr/p2h", Kind: faultinject.Panic, After: 3})
	defer faultinject.Deactivate()
	_, err := NewDB(lg, DBConfig{})
	faultinject.Deactivate()
	if !errors.Is(err, ErrIndexPanic) {
		t.Fatalf("NewDB err = %v, want ErrIndexPanic", err)
	}
}

// panicIndex stands in for an index with a query-time bug.
type panicIndex struct{}

func (panicIndex) Name() string      { return "panicky" }
func (panicIndex) Stats() Stats      { return Stats{} }
func (panicIndex) Reach(s, t V) bool { panic("query-time bug") }

// TestQueryPanicContainment: a panic inside an index during a query is
// contained at the DB boundary as ErrIndexPanic and counted.
func TestQueryPanicContainment(t *testing.T) {
	pg := Fig1Plain()
	db := &DB{g: pg, plain: panicIndex{}, metrics: obs.NewDBMetrics()}
	if _, err := db.Reach(0, 1); !errors.Is(err, ErrIndexPanic) {
		t.Fatalf("Reach err = %v, want ErrIndexPanic", err)
	}
	if _, err := db.ReachPath(0, 1); !errors.Is(err, ErrIndexPanic) {
		t.Fatalf("ReachPath err = %v, want ErrIndexPanic", err)
	}
	snap := db.metrics.Snapshot()
	if snap.Panics != 2 || snap.Errors != 2 {
		t.Errorf("panics/errors = %d/%d, want 2/2", snap.Panics, snap.Errors)
	}
	// The error message carries the panic value and a stack for the logs.
	_, err := db.Reach(0, 1)
	if !strings.Contains(err.Error(), "query-time bug") {
		t.Errorf("error does not carry the panic value: %v", err)
	}
}

// TestBatchPanicContainment: a query-time panic on a pool worker stops
// the batch and surfaces as ErrIndexPanic on the caller.
func TestBatchPanicContainment(t *testing.T) {
	pg := Fig1Plain()
	pairs := make([]Pair, 64)
	if _, err := BatchReach(panicIndex{}, pg, pairs, 4); !errors.Is(err, ErrIndexPanic) {
		t.Fatalf("BatchReach err = %v, want ErrIndexPanic", err)
	}
}

// TestFaultInjectionBuildStress sweeps a deterministic family of injected
// panics across builder sites and every plain kind: whatever fires must
// surface as ErrIndexPanic — never a raw panic, never a corrupted nil/nil
// return. Run under -race in CI, so containment across the worker pool is
// also exercised.
func TestFaultInjectionBuildStress(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 400, M: 1200, Seed: 5})
	sites := []string{
		"par/claim", "core/scc-condense", "core/index-build",
		"build/2hop", "build/3hop", "build/pll", "build/dl", "build/hl",
		"build/tfl", "build/tol",
	}
	kinds := Kinds()
	for seed := int64(0); seed < 24; seed++ {
		plan := faultinject.DerivePlan(seed, sites, []faultinject.Kind{faultinject.Panic}, 40)
		faultinject.Activate(plan)
		for _, k := range kinds {
			ix, err := Build(k, g, Options{K: 2, Bits: 64, Workers: 2, Seed: seed})
			switch {
			case err == nil && ix == nil:
				t.Fatalf("seed %d kind %s: nil index with nil error", seed, k)
			case err != nil && !errors.Is(err, ErrIndexPanic):
				t.Fatalf("seed %d kind %s: err = %v, want ErrIndexPanic", seed, k, err)
			}
		}
		faultinject.Deactivate()
	}
}

// TestFaultInjectionLCRStress is the same sweep over the labeled builders.
func TestFaultInjectionLCRStress(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 100, M: 400, Seed: 6}), 4, 0.5, 6)
	sites := []string{"build/lcr/zougtc", "build/lcr/p2h", "build/lcr/dlcr", "build/rlc", "par/claim"}
	for seed := int64(0); seed < 16; seed++ {
		plan := faultinject.DerivePlan(seed, sites, []faultinject.Kind{faultinject.Panic}, 60)
		faultinject.Activate(plan)
		for _, k := range LCRKinds() {
			ix, err := BuildLCR(k, g, Options{Workers: 2})
			if err == nil && ix == nil {
				t.Fatalf("seed %d kind %s: nil index with nil error", seed, k)
			}
			if err != nil && !errors.Is(err, ErrIndexPanic) {
				t.Fatalf("seed %d kind %s: err = %v, want ErrIndexPanic", seed, k, err)
			}
		}
		if ix, err := BuildRLC(g, Options{MaxSeq: 2}); err == nil && ix == nil {
			t.Fatalf("seed %d rlc: nil index with nil error", seed)
		} else if err != nil && !errors.Is(err, ErrIndexPanic) {
			t.Fatalf("seed %d rlc: err = %v, want ErrIndexPanic", seed, err)
		}
		faultinject.Deactivate()
	}
}

// TestFaultInjectionCancelStress sweeps cancel-at-checkpoint-N plans: a
// fired cancellation must always surface as ErrBuildCanceled.
func TestFaultInjectionCancelStress(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 400, M: 1200, Seed: 7})
	sites := []string{"build/2hop", "build/pll", "build/tol"}
	builds := map[string]Kind{"build/2hop": KindTwoHop, "build/pll": KindPLL, "build/tol": KindTOL}
	for seed := int64(0); seed < 24; seed++ {
		plan := faultinject.DerivePlan(seed, sites, []faultinject.Kind{faultinject.Cancel}, 200)
		ctx, cancel := context.WithCancel(context.Background())
		plan.Cancel = cancel
		faultinject.Activate(plan)
		ix, err := BuildCtx(ctx, builds[plan.Site], g, Options{})
		faultinject.Deactivate()
		cancel()
		if err == nil && ix == nil {
			t.Fatalf("seed %d: nil index with nil error", seed)
		}
		if err != nil && !errors.Is(err, ErrBuildCanceled) {
			t.Fatalf("seed %d: err = %v, want ErrBuildCanceled", seed, err)
		}
		if plan.Fired() && err == nil {
			t.Fatalf("seed %d site %s: cancel fired but the build completed", seed, plan.Site)
		}
	}
}

// TestFaultInjectionReadError: an injected I/O-layer error surfaces as an
// *faultinject.Injected error from ReadGraph, proving the error path is
// plumbed end to end.
func TestFaultInjectionReadError(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{Site: "graph/read", Kind: faultinject.Error})
	defer faultinject.Deactivate()
	_, err := ReadGraph(strings.NewReader("0 1\n"))
	var inj *faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != "graph/read" {
		t.Fatalf("ReadGraph err = %v, want injected graph/read error", err)
	}
	faultinject.Deactivate()
	if _, err := ReadGraph(strings.NewReader("0 1\n")); err != nil {
		t.Fatalf("disarmed ReadGraph err = %v", err)
	}
}

// TestReadGraphLimits: oversized inputs fail with errors, not allocation
// blow-ups or panics.
func TestReadGraphLimits(t *testing.T) {
	lim := GraphLimits{MaxVertices: 100, MaxEdges: 4}
	if _, err := ReadGraphLimited(strings.NewReader("0 4294967295\n"), lim); err == nil {
		t.Error("oversized vertex id accepted")
	}
	if _, err := ReadGraphLimited(strings.NewReader("0 1\n1 2\n2 3\n3 4\n4 5\n"), lim); err == nil {
		t.Error("oversized edge count accepted")
	}
	if _, err := ReadGraphLimited(strings.NewReader("0 1 a b c\n"), lim); err == nil {
		t.Error("malformed line accepted")
	}
	g, err := ReadGraphLimited(strings.NewReader("0 1\n1 2\n"), lim)
	if err != nil || g.N() != 3 {
		t.Errorf("well-formed graph rejected: %v, %v", g, err)
	}
}

// TestQueryCtxCancel: an already-canceled context returns its error from
// the query entry points and counts toward the canceled metric.
func TestQueryCtxCancel(t *testing.T) {
	db, err := NewDB(Fig1Labeled(), DBConfig{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ReachCtx(ctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("ReachCtx err = %v, want context.Canceled", err)
	}
	if _, err := db.QueryCtx(ctx, 0, 1, "(friendOf)*"); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryCtx err = %v, want context.Canceled", err)
	}
	snap, _ := db.MetricsSnapshot()
	if snap.Canceled < 2 {
		t.Errorf("canceled = %d, want >= 2", snap.Canceled)
	}
	// A live context behaves exactly like the context-free calls.
	if ok, err := db.ReachCtx(context.Background(), 0, 0); err != nil || !ok {
		t.Errorf("live ReachCtx = %v, %v", ok, err)
	}
}
