package reach

// Sharded serving: partition the condensation DAG into k edge-balanced
// shards (internal/shard), build one plain index per shard in parallel,
// and answer global queries through a 2-hop summary over the boundary
// vertices. The sharded engine implements Index, so it slots into DB as
// the plain engine — every DB entry point (Reach, Query, caching,
// metrics, HTTP serving) works unchanged, and BatchReach additionally
// scatter-gathers buckets across shards. See DESIGN.md ("Sharding").

import (
	"context"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/shard"
)

// KindSharded is the Kind reported by a DB whose plain engine is the
// sharded scatter-gather index. It is not buildable through Build — use
// NewShardedDB — but appears as the DB's plain kind.
const KindSharded Kind = "sharded"

// Sharded-engine census re-exports (see DB.ShardInfo, /admin/shards).
type (
	// ShardStats is one shard's census: sub-DAG size, boundary counts,
	// local index footprint, and accumulated probe count.
	ShardStats = shard.ShardInfo
	// ShardSummaryStats describes the boundary summary graph and its
	// 2-hop index.
	ShardSummaryStats = shard.SummaryInfo
)

// ShardedConfig configures NewShardedDB.
type ShardedConfig struct {
	// Shards is the partition width k. Values below 2 build a single
	// shard (still through the shard engine, so the query surface and
	// observability are identical — useful as a baseline).
	Shards int
	// Plain selects the per-shard index kind. Default KindBFL.
	Plain Kind
	// Options passes the per-technique tunables to every shard build;
	// Options.Workers also caps the parallel shard fan-out.
	Options Options
	// Metrics enables the DB observability layer plus per-shard
	// footprint gauges (index "shard/<i>" and "shard/summary").
	Metrics bool
	// CacheSize enables the DB's sharded query-result cache.
	CacheSize int
	// Tracing enables request-scoped trace recording (see DBConfig).
	Tracing bool
	// RecordWorkload captures completed queries (see DBConfig).
	RecordWorkload *WorkloadRecorder
	// SnapshotPrefix, when non-empty, warm-starts each shard's index
	// from "<prefix>.shard<i>" when such a file exists and is loadable,
	// and writes the missing (or unreadable) ones after a fresh build —
	// so the first boot populates the per-shard snapshots the next boot
	// maps. Requires a snapshottable Plain kind (BFL, PLL, DL).
	SnapshotPrefix string
	// Mapped selects the mapped snapshot layout (mmap zero-copy warm
	// start) for per-shard snapshots instead of the streaming codec.
	Mapped bool
}

// ShardedDB is a DB whose plain engine shards the graph: same query
// surface, per-shard scatter-gather underneath. The embedded DB is fully
// functional (the HTTP layer serves it directly).
type ShardedDB struct {
	*DB
	engine *shard.Index
}

// Engine returns the underlying sharded index.
func (s *ShardedDB) Engine() *shard.Index { return s.engine }

// NewShardedDB builds a sharded DB over g.
func NewShardedDB(g *Graph, cfg ShardedConfig) (*ShardedDB, error) {
	return NewShardedDBCtx(context.Background(), g, cfg)
}

// NewShardedDBCtx is NewShardedDB under a context: per-shard builds poll
// ctx at cooperative checkpoints. Failure is all-or-nothing — an error or
// panic in any shard's build fails construction (panics surface as
// ErrIndexPanic); there is no partially-sharded serving state.
func NewShardedDBCtx(ctx context.Context, g *Graph, cfg ShardedConfig) (sdb *ShardedDB, err error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadOptions)
	}
	if cfg.Plain == "" {
		cfg.Plain = KindBFL
	}
	if cfg.SnapshotPrefix != "" && !snapshottableKind(cfg.Plain) {
		return nil, fmt.Errorf("%w: per-shard snapshots need Plain in {%q, %q, %q}, not %q",
			ErrBadOptions, KindBFL, KindPLL, KindDL, cfg.Plain)
	}
	if err := checkBuild(ctx, g, cfg.Options); err != nil {
		return nil, err
	}
	defer core.Recover(&err)
	if cfg.Options.Prepared == nil {
		cfg.Options.Prepared = Prepare(g)
	}
	engine, err := buildShardEngine(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	db, err := NewDBCtx(ctx, g, DBConfig{
		Plain:          KindSharded,
		PlainIndex:     engine,
		Options:        cfg.Options,
		Metrics:        cfg.Metrics,
		CacheSize:      cfg.CacheSize,
		Tracing:        cfg.Tracing,
		RecordWorkload: cfg.RecordWorkload,
	})
	if err != nil {
		return nil, err
	}
	if db.metrics != nil {
		for i := 0; i < engine.K(); i++ {
			if b, ok := core.SizesOf(engine.Shard(i)); ok {
				db.metrics.Index(fmt.Sprintf("shard/%d", i)).
					SetFootprint(int64(b.Offsets), int64(b.Labels), int64(b.Aux))
			}
		}
		sum := engine.Summary()
		db.metrics.Index("shard/summary").SetFootprint(0, 0, int64(sum.IndexBytes))
	}
	return &ShardedDB{DB: db, engine: engine}, nil
}

// buildShardEngine partitions g and builds (or warm-starts) the per-shard
// indexes in parallel.
func buildShardEngine(ctx context.Context, g *Graph, cfg ShardedConfig) (*shard.Index, error) {
	build := func(i int, sub *graph.Digraph) (core.Index, error) {
		opt := cfg.Options
		// The memo and span recorder are bound to the full graph (and the
		// recorder is not safe under the concurrent shard fan-out); each
		// shard build runs self-contained over its sub-DAG.
		opt.Prepared = nil
		opt.Spans = nil
		path := shardSnapshotPath(cfg.SnapshotPrefix, i)
		if path != "" {
			if ix, err := loadShardSnapshot(path, sub, opt, cfg.Mapped); err == nil {
				return ix, nil
			}
			// Missing or unreadable snapshot: fall through to a fresh
			// build and rewrite it below.
		}
		ix, err := BuildCtx(ctx, cfg.Plain, sub, opt)
		if err != nil {
			return nil, err
		}
		if path != "" {
			if err := saveShardSnapshot(path, ix, cfg.Mapped); err != nil {
				return nil, err
			}
		}
		return ix, nil
	}
	return shard.Build(cfg.Options.Prepared, cfg.Shards, cfg.Options.Workers, build)
}

// shardSnapshotPath names shard i's snapshot file, or "" when snapshots
// are disabled.
func shardSnapshotPath(prefix string, i int) string {
	if prefix == "" {
		return ""
	}
	return fmt.Sprintf("%s.shard%d", prefix, i)
}

func loadShardSnapshot(path string, sub *graph.Digraph, opt Options, mapped bool) (Index, error) {
	if mapped {
		return LoadIndexMapped(path, sub, opt)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadIndex(f, sub, opt)
}

// saveShardSnapshot writes atomically (temp file + rename), so a crash
// mid-write never leaves a torn snapshot a later boot would reject.
func saveShardSnapshot(path string, ix Index, mapped bool) error {
	f, err := os.CreateTemp(".", "shard-snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if mapped {
		err = SaveIndexMapped(f, ix)
	} else {
		err = SaveIndex(f, ix)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// shardEngine unwraps an index (through instrumentation wrappers) to the
// sharded engine, when that is what serves the plain route.
func shardEngine(ix Index) (*shard.Index, bool) {
	for ix != nil {
		if sx, ok := ix.(*shard.Index); ok {
			return sx, true
		}
		iw, ok := ix.(interface{ Inner() Index })
		if !ok {
			return nil, false
		}
		ix = iw.Inner()
	}
	return nil, false
}

// ShardInfo reports the per-shard census and boundary summary when the
// DB's plain engine is sharded; ok is false otherwise. The server's
// /admin/shards endpoint serves this.
func (db *DB) ShardInfo() (shards []ShardStats, summary ShardSummaryStats, ok bool) {
	sx, ok := shardEngine(db.plain)
	if !ok {
		return nil, ShardSummaryStats{}, false
	}
	return sx.Shards(), sx.Summary(), true
}

// shardBatch routes a DB batch through the sharded engine's
// scatter-gather path (instead of the index-free bit-parallel kernel the
// unsharded DB uses).
func (db *DB) shardBatch(ctx context.Context, sx *shard.Index, pairs []Pair) (out []bool, err error) {
	defer db.boundary(&err)
	if ob, ok := db.plain.(batchObserver); ok {
		ob.ObserveBatch(len(pairs))
	}
	ps := make([][2]V, len(pairs))
	for i, p := range pairs {
		ps[i] = [2]V{p.S, p.T}
	}
	out = make([]bool, len(pairs))
	if err := sx.BatchReach(ctx, ps, out, 0); err != nil {
		return nil, err
	}
	return out, nil
}
