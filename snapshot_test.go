package reach

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
)

// snapshotOf saves ix into a fresh buffer.
func snapshotOf(t *testing.T, ix Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotEquivalenceFig1 checks a loaded BFL answers exactly like the
// index it was saved from, on every one of Figure 1's 81 vertex pairs.
func TestSnapshotEquivalenceFig1(t *testing.T) {
	g := Fig1Plain()
	fresh, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, fresh)
	loaded, err := LoadIndex(bytes.NewReader(raw), g, Options{})
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	for s := 0; s < g.N(); s++ {
		for tv := 0; tv < g.N(); tv++ {
			want := fresh.Reach(V(s), V(tv))
			if got := loaded.Reach(V(s), V(tv)); got != want {
				t.Errorf("loaded.Reach(%d,%d) = %v, fresh says %v", s, tv, got, want)
			}
		}
	}
}

// TestSnapshotEquivalenceGenerated does the same over a generated cyclic
// graph big enough (12k vertices) that the SCC condensation and the
// multi-word Bloom filters are all exercised, on a sampled pair workload.
func TestSnapshotEquivalenceGenerated(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 12_000, M: 36_000, Seed: 7})
	fresh, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, fresh)
	loaded, err := LoadIndex(bytes.NewReader(raw), g, Options{})
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5_000; i++ {
		s := V(rng.Intn(g.N()))
		tv := V(rng.Intn(g.N()))
		want := fresh.Reach(s, tv)
		if got := loaded.Reach(s, tv); got != want {
			t.Fatalf("loaded.Reach(%d,%d) = %v, fresh says %v", s, tv, got, want)
		}
	}
}

// TestSnapshotWarmStartSpans verifies the acceptance criterion that a
// warm-started DB's build timeline shows "index/load" and no
// "index/build" — the observable proof that the build phase was skipped.
func TestSnapshotWarmStartSpans(t *testing.T) {
	g := Fig1Plain()
	cold, err := NewDB(g, DBConfig{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	ix, _ := cold.PlainIndex(KindBFL)
	raw := snapshotOf(t, ix) // through Instrumented+condensed wrappers

	warm, err := NewDB(g, DBConfig{Metrics: true, PlainSnapshot: bytes.NewReader(raw)})
	if err != nil {
		t.Fatalf("warm NewDB: %v", err)
	}
	snap, ok := warm.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics disabled")
	}
	var sawLoad, sawBuild bool
	for _, span := range snap.Build {
		switch span.Name {
		case "index/load":
			sawLoad = true
		case "index/build":
			sawBuild = true
		}
	}
	if !sawLoad || sawBuild {
		t.Fatalf("warm-start spans = %+v, want index/load present and index/build absent", snap.Build)
	}

	// And the warm DB answers like the cold one.
	for s := 0; s < g.N(); s++ {
		for tv := 0; tv < g.N(); tv++ {
			want, _ := cold.Reach(V(s), V(tv))
			if got, err := warm.Reach(V(s), V(tv)); err != nil || got != want {
				t.Fatalf("warm.Reach(%d,%d) = %v, %v; want %v", s, tv, got, err, want)
			}
		}
	}
}

func TestSnapshotWarmStartWrongKind(t *testing.T) {
	g := Fig1Plain()
	ix, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, ix)
	_, err = NewDB(g, DBConfig{Plain: KindPLL, PlainSnapshot: bytes.NewReader(raw)})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("warm-start with Plain=pll: err = %v, want ErrBadOptions", err)
	}
}

func TestSaveIndexUnsupportedKind(t *testing.T) {
	ix, err := Build(KindPLL, Fig1Plain(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = SaveIndex(&buf, ix)
	if !errors.Is(err, ErrBadOptions) || !strings.Contains(err.Error(), "no snapshot format") {
		t.Fatalf("SaveIndex(PLL) = %v, want ErrBadOptions", err)
	}
}

// TestLoadIndexGraphMismatch pairs a Figure 1 snapshot with a graph of a
// different size; the vertex-count check must reject it.
func TestLoadIndexGraphMismatch(t *testing.T) {
	ix, err := Build(KindBFL, Fig1Plain(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, ix)
	other := gen.RandomDAG(gen.Config{N: 50, M: 100, Seed: 1})
	if _, err := LoadIndex(bytes.NewReader(raw), other, Options{}); err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Fatalf("graph mismatch: err = %v, want different-graph error", err)
	}
}

// TestLoadIndexTruncationNeverPanics loads every strict prefix of a valid
// snapshot; all must fail with an error, none may panic.
func TestLoadIndexTruncationNeverPanics(t *testing.T) {
	g := Fig1Plain()
	ix, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, ix)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := LoadIndex(bytes.NewReader(raw[:cut]), g, Options{}); err == nil {
			t.Fatalf("prefix of %d bytes (full is %d) loaded without error", cut, len(raw))
		}
	}
	// The full snapshot with trailing garbage appended still loads: the
	// reader consumes exactly the sections it wrote (extra bytes belong to
	// whatever container the caller embedded the snapshot in).
	if _, err := LoadIndex(bytes.NewReader(append(raw[:len(raw):len(raw)], 0xAA)), g, Options{}); err != nil {
		t.Fatalf("trailing byte after snapshot: %v", err)
	}
}
