package reach

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

// snapshotOf saves ix into a fresh buffer.
func snapshotOf(t *testing.T, ix Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotEquivalenceFig1 checks a loaded BFL answers exactly like the
// index it was saved from, on every one of Figure 1's 81 vertex pairs.
func TestSnapshotEquivalenceFig1(t *testing.T) {
	g := Fig1Plain()
	fresh, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, fresh)
	loaded, err := LoadIndex(bytes.NewReader(raw), g, Options{})
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	for s := 0; s < g.N(); s++ {
		for tv := 0; tv < g.N(); tv++ {
			want := fresh.Reach(V(s), V(tv))
			if got := loaded.Reach(V(s), V(tv)); got != want {
				t.Errorf("loaded.Reach(%d,%d) = %v, fresh says %v", s, tv, got, want)
			}
		}
	}
}

// TestSnapshotEquivalenceGenerated does the same over a generated cyclic
// graph big enough (12k vertices) that the SCC condensation and the
// multi-word Bloom filters are all exercised, on a sampled pair workload.
func TestSnapshotEquivalenceGenerated(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 12_000, M: 36_000, Seed: 7})
	fresh, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, fresh)
	loaded, err := LoadIndex(bytes.NewReader(raw), g, Options{})
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5_000; i++ {
		s := V(rng.Intn(g.N()))
		tv := V(rng.Intn(g.N()))
		want := fresh.Reach(s, tv)
		if got := loaded.Reach(s, tv); got != want {
			t.Fatalf("loaded.Reach(%d,%d) = %v, fresh says %v", s, tv, got, want)
		}
	}
}

// TestSnapshotWarmStartSpans verifies the acceptance criterion that a
// warm-started DB's build timeline shows "index/load" and no
// "index/build" — the observable proof that the build phase was skipped.
func TestSnapshotWarmStartSpans(t *testing.T) {
	g := Fig1Plain()
	cold, err := NewDB(g, DBConfig{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	ix, _ := cold.PlainIndex(KindBFL)
	raw := snapshotOf(t, ix) // through Instrumented+condensed wrappers

	warm, err := NewDB(g, DBConfig{Metrics: true, PlainSnapshot: bytes.NewReader(raw)})
	if err != nil {
		t.Fatalf("warm NewDB: %v", err)
	}
	snap, ok := warm.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics disabled")
	}
	var sawLoad, sawBuild bool
	for _, span := range snap.Build {
		switch span.Name {
		case "index/load":
			sawLoad = true
		case "index/build":
			sawBuild = true
		}
	}
	if !sawLoad || sawBuild {
		t.Fatalf("warm-start spans = %+v, want index/load present and index/build absent", snap.Build)
	}

	// And the warm DB answers like the cold one.
	for s := 0; s < g.N(); s++ {
		for tv := 0; tv < g.N(); tv++ {
			want, _ := cold.Reach(V(s), V(tv))
			if got, err := warm.Reach(V(s), V(tv)); err != nil || got != want {
				t.Fatalf("warm.Reach(%d,%d) = %v, %v; want %v", s, tv, got, err, want)
			}
		}
	}
}

func TestSnapshotWarmStartWrongKind(t *testing.T) {
	g := Fig1Plain()
	ix, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, ix)
	_, err = NewDB(g, DBConfig{Plain: KindPLL, PlainSnapshot: bytes.NewReader(raw)})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("warm-start with Plain=pll: err = %v, want ErrBadOptions", err)
	}
}

func TestSaveIndexUnsupportedKind(t *testing.T) {
	ix, err := Build(KindTOL, Fig1Plain(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = SaveIndex(&buf, ix)
	if !errors.Is(err, ErrBadOptions) || !strings.Contains(err.Error(), "no snapshot format") {
		t.Fatalf("SaveIndex(TOL) = %v, want ErrBadOptions", err)
	}
}

// TestSaveIndexRefusesCondensedPLL: a PLL-family index lifted through SCC
// condensation (TFL over a cyclic graph) labels component ids, so the
// snapshot codec — which re-binds labels to original vertex ids — must
// refuse it rather than persist silently-corrupt labels.
func TestSaveIndexRefusesCondensedPLL(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 200, M: 800, Seed: 11}) // cyclic
	ix, err := Build(KindTFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = SaveIndex(&buf, ix)
	if !errors.Is(err, ErrBadOptions) || !strings.Contains(err.Error(), "condensation") {
		t.Fatalf("SaveIndex(condensed TFL) = %v, want condensation refusal", err)
	}
}

// TestSnapshotMappedEquivalence is the acceptance matrix for the two
// snapshot layouts: for each snapshottable kind and label encoding,
// build → SaveIndex → LoadIndex, build → SaveIndexMapped →
// LoadIndexMapped, and build → SaveIndexMapped → LoadIndex (the mapped
// layout is streaming-decodable too) must all answer identically to the
// fresh index, on Figure 1 and on a 12k-vertex DAG.
func TestSnapshotMappedEquivalence(t *testing.T) {
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"fig1", Fig1Plain()},
		{"dag12k", gen.RandomDAG(gen.Config{N: 12_000, M: 36_000, Seed: 13})},
	}
	cases := []struct {
		name string
		kind Kind
		opt  Options
	}{
		{"bfl", KindBFL, Options{}},
		{"pll-raw", KindPLL, Options{}},
		{"pll-varint", KindPLL, Options{LabelEnc: EncVarint}},
		{"dl-varint", KindDL, Options{LabelEnc: EncVarint}},
	}
	for _, gc := range graphs {
		for _, tc := range cases {
			t.Run(gc.name+"/"+tc.name, func(t *testing.T) {
				g := gc.g
				fresh, err := Build(tc.kind, g, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				var v1, mapped bytes.Buffer
				if err := SaveIndex(&v1, fresh); err != nil {
					t.Fatalf("SaveIndex: %v", err)
				}
				if err := SaveIndexMapped(&mapped, fresh); err != nil {
					t.Fatalf("SaveIndexMapped: %v", err)
				}
				path := filepath.Join(t.TempDir(), "ix.snap")
				if err := os.WriteFile(path, mapped.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				loadedV1, err := LoadIndex(bytes.NewReader(v1.Bytes()), g, Options{})
				if err != nil {
					t.Fatalf("LoadIndex(v1): %v", err)
				}
				loadedV2, err := LoadIndex(bytes.NewReader(mapped.Bytes()), g, Options{})
				if err != nil {
					t.Fatalf("LoadIndex(mapped layout): %v", err)
				}
				loadedMap, err := LoadIndexMapped(path, g, Options{})
				if err != nil {
					t.Fatalf("LoadIndexMapped: %v", err)
				}
				rng := rand.New(rand.NewSource(13))
				pairs := g.N() * g.N()
				if pairs > 4_000 {
					pairs = 4_000
				}
				for i := 0; i < pairs; i++ {
					s := V(rng.Intn(g.N()))
					tv := V(rng.Intn(g.N()))
					want := fresh.Reach(s, tv)
					for j, ld := range []Index{loadedV1, loadedV2, loadedMap} {
						if got := ld.Reach(s, tv); got != want {
							t.Fatalf("loaded[%d].Reach(%d,%d) = %v, fresh says %v", j, s, tv, got, want)
						}
					}
				}
			})
		}
	}
}

// TestLoadIndexMappedCorruption flips bytes across a mapped snapshot
// file; every corrupted load must fail the checksum (or section parse)
// cleanly — an error, never a panic, never a silently-wrong index.
func TestLoadIndexMappedCorruption(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 500, M: 1_500, Seed: 17})
	ix, err := Build(KindPLL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveIndexMapped(&buf, ix); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	dir := t.TempDir()
	for pos := 0; pos < len(raw); pos += 211 {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x5A
		path := filepath.Join(dir, "bad.snap")
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadIndexMapped(path, g, Options{}); err == nil {
			t.Fatalf("flip at byte %d loaded without error", pos)
		}
	}
	// Truncations too.
	for cut := 0; cut < len(raw); cut += 97 {
		path := filepath.Join(dir, "trunc.snap")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadIndexMapped(path, g, Options{}); err == nil {
			t.Fatalf("truncation at %d loaded without error", cut)
		}
	}
}

// TestWarmStartMappedDB cold-starts a DB from a mapped snapshot and
// checks the timeline shows index/load, answers match, and the footprint
// gauges are populated.
func TestWarmStartMappedDB(t *testing.T) {
	g := Fig1Plain()
	cold, err := NewDB(g, DBConfig{Plain: KindPLL})
	if err != nil {
		t.Fatal(err)
	}
	ix, _ := cold.PlainIndex(KindPLL)
	var buf bytes.Buffer
	if err := SaveIndexMapped(&buf, ix); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pll.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	warm, err := NewDB(g, DBConfig{Plain: KindPLL, Metrics: true, PlainSnapshotMapped: path})
	if err != nil {
		t.Fatalf("warm NewDB: %v", err)
	}
	snap, _ := warm.MetricsSnapshot()
	var sawLoad, sawBuild bool
	for _, span := range snap.Build {
		switch span.Name {
		case "index/load":
			sawLoad = true
		case "index/build":
			sawBuild = true
		}
	}
	if !sawLoad || sawBuild {
		t.Fatalf("warm-start spans = %+v, want index/load present and index/build absent", snap.Build)
	}
	is, ok := snap.Indexes["PLL"]
	if !ok || is.Bytes == 0 || is.BytesLabels == 0 {
		t.Fatalf("footprint gauges not populated: %+v", is)
	}
	for s := 0; s < g.N(); s++ {
		for tv := 0; tv < g.N(); tv++ {
			want, _ := cold.Reach(V(s), V(tv))
			if got, err := warm.Reach(V(s), V(tv)); err != nil || got != want {
				t.Fatalf("warm.Reach(%d,%d) = %v, %v; want %v", s, tv, got, err, want)
			}
		}
	}
}

// TestLoadIndexGraphMismatch pairs a Figure 1 snapshot with a graph of a
// different size; the vertex-count check must reject it.
func TestLoadIndexGraphMismatch(t *testing.T) {
	ix, err := Build(KindBFL, Fig1Plain(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, ix)
	other := gen.RandomDAG(gen.Config{N: 50, M: 100, Seed: 1})
	if _, err := LoadIndex(bytes.NewReader(raw), other, Options{}); err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Fatalf("graph mismatch: err = %v, want different-graph error", err)
	}
}

// TestLoadIndexTruncationNeverPanics loads every strict prefix of a valid
// snapshot; all must fail with an error, none may panic.
func TestLoadIndexTruncationNeverPanics(t *testing.T) {
	g := Fig1Plain()
	ix, err := Build(KindBFL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotOf(t, ix)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := LoadIndex(bytes.NewReader(raw[:cut]), g, Options{}); err == nil {
			t.Fatalf("prefix of %d bytes (full is %d) loaded without error", cut, len(raw))
		}
	}
	// The full snapshot with trailing garbage appended still loads: the
	// reader consumes exactly the sections it wrote (extra bytes belong to
	// whatever container the caller embedded the snapshot in).
	if _, err := LoadIndex(bytes.NewReader(append(raw[:len(raw):len(raw)], 0xAA)), g, Options{}); err != nil {
		t.Fatalf("trailing byte after snapshot: %v", err)
	}
}

// TestColdStartMappedSmoke measures the cold-start advantage of the
// mapped layout: page-mapping a 12k-vertex PLL snapshot must be at least
// 10x faster than decoding the same labels through the streaming codec.
// Timing assertions are inherently machine-sensitive, so the test only
// runs when REACH_COLDSTART_SMOKE=1 (CI sets it in the cold-start smoke
// step); otherwise it records the ratio and skips.
func TestColdStartMappedSmoke(t *testing.T) {
	gate := os.Getenv("REACH_COLDSTART_SMOKE") == "1"
	g := gen.RandomDAG(gen.Config{N: 12_000, M: 36_000, Seed: 13})
	ix, err := Build(KindPLL, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	stream := filepath.Join(dir, "pll.idx")
	mapped := filepath.Join(dir, "pll.midx")
	for _, w := range []struct {
		path string
		save func(f *os.File) error
	}{
		{stream, func(f *os.File) error { return SaveIndex(f, ix) }},
		{mapped, func(f *os.File) error { return SaveIndexMapped(f, ix) }},
	} {
		f, err := os.Create(w.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 5
	var decode, mapped2 time.Duration
	for i := 0; i < rounds; i++ {
		f, err := os.Open(stream)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := LoadIndex(f, g, Options{}); err != nil {
			t.Fatal(err)
		}
		decode += time.Since(start)
		f.Close()

		start = time.Now()
		mx, err := LoadIndexMapped(mapped, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mapped2 += time.Since(start)
		_ = mx
	}
	ratio := float64(decode) / float64(mapped2)
	t.Logf("cold start over %d rounds: decode %.2fms, mapped %.2fms, ratio %.1fx",
		rounds, decode.Seconds()*1e3/rounds, mapped2.Seconds()*1e3/rounds, ratio)
	if !gate {
		t.Skipf("timing gate disabled (set REACH_COLDSTART_SMOKE=1); observed ratio %.1fx", ratio)
	}
	if ratio < 10 {
		t.Fatalf("mapped cold start only %.1fx faster than streaming decode (want >= 10x)", ratio)
	}
}
