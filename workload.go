package reach

import (
	"io"

	"repro/internal/workload"
)

// WorkloadRecord is one captured query: inputs, route, outcome, and
// capture-time latency. See DBConfig.RecordWorkload and
// OBSERVABILITY.md ("Workload capture and replay").
type WorkloadRecord = workload.Record

// WorkloadRecorder appends query records to a capture stream; install
// one via DBConfig.RecordWorkload. Safe for concurrent use.
type WorkloadRecorder = workload.Recorder

// NewWorkloadRecorder starts a workload capture on w. The caller owns w
// and must Close the recorder (not just w) to flush buffered records.
func NewWorkloadRecorder(w io.Writer) *WorkloadRecorder {
	return workload.NewRecorder(w)
}

// ReadWorkload decodes an entire capture written by a WorkloadRecorder.
func ReadWorkload(r io.Reader) ([]WorkloadRecord, error) {
	return workload.Read(r)
}
