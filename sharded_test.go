package reach

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/tc"
)

// TestShardedPartitionInvariance is the partition-invariance property:
// for every graph and every k, the sharded DB answers exactly what the
// unsharded DB and the exact transitive closure answer, for every
// (src, dst) pair.
func TestShardedPartitionInvariance(t *testing.T) {
	graphs := map[string]*Graph{
		"fig1":   Fig1Plain(),
		"dag":    gen.RandomDAG(gen.Config{N: 200, M: 600, Seed: 1}),
		"banded": gen.BandedDAG(gen.Config{N: 300, M: 1200, Seed: 2}, 40),
		"cyclic": gen.ErdosRenyi(gen.Config{N: 150, M: 500, Seed: 3}),
	}
	for name, g := range graphs {
		oracle := tc.NewClosure(g)
		db, err := NewDB(g, DBConfig{})
		if err != nil {
			t.Fatalf("%s: unsharded: %v", name, err)
		}
		for _, k := range []int{1, 2, 3, 8} {
			sdb, err := NewShardedDB(g, ShardedConfig{Shards: k, Options: Options{Seed: 3}})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if got := sdb.Engine().K(); got > k {
				t.Fatalf("%s k=%d: effective shard count %d", name, k, got)
			}
			for s := 0; s < g.N(); s++ {
				for d := 0; d < g.N(); d++ {
					want := oracle.Reach(V(s), V(d))
					if plain, err := db.Reach(V(s), V(d)); err != nil || plain != want {
						t.Fatalf("%s: unsharded Reach(%d,%d) = %v, %v, want %v", name, s, d, plain, err, want)
					}
					got, err := sdb.Reach(V(s), V(d))
					if err != nil {
						t.Fatalf("%s k=%d: Reach(%d,%d): %v", name, k, s, d, err)
					}
					if got != want {
						t.Fatalf("%s k=%d: Reach(%d,%d) = %v, want %v", name, k, s, d, got, want)
					}
				}
			}
			sdb.Close()
		}
		db.Close()
	}
}

// TestShardedBatchMatchesPointQueries drives BatchReachCtx concurrently
// from several goroutines (exercising the scatter-gather path under
// -race) and checks every answer against the BFS ground truth.
func TestShardedBatchMatchesPointQueries(t *testing.T) {
	g := gen.BandedDAG(gen.Config{N: 2000, M: 8000, Seed: 7}, 50)
	sdb, err := NewShardedDB(g, ShardedConfig{Shards: 4, Options: Options{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	qs := gen.Queries(g, 512, 8)
	pairs := make([]Pair, len(qs))
	for i, q := range qs {
		pairs[i] = Pair{S: q.S, T: q.T}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each goroutine rotates the workload so the per-shard
			// buckets differ across concurrent batches.
			rot := append(append([]Pair(nil), pairs[w:]...), pairs[:w]...)
			out, err := sdb.BatchReachCtx(context.Background(), rot)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			for i, got := range out {
				if want := qs[(i+w)%len(qs)].Want; got != want {
					t.Errorf("worker %d: pair %d = %v, want %v", w, i, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardedSnapshotWarmStart round-trips the per-shard snapshots: a
// cold build writes one file per shard, a warm start loads them, and a
// corrupted file falls back to a fresh build — answers stay exact in
// every case.
func TestShardedSnapshotWarmStart(t *testing.T) {
	g := gen.BandedDAG(gen.Config{N: 400, M: 1600, Seed: 9}, 30)
	oracle := tc.NewClosure(g)
	check := func(sdb *ShardedDB, stage string) {
		t.Helper()
		for s := 0; s < g.N(); s += 3 {
			for d := 0; d < g.N(); d += 5 {
				got, err := sdb.Reach(V(s), V(d))
				if err != nil {
					t.Fatalf("%s: Reach(%d,%d): %v", stage, s, d, err)
				}
				if want := oracle.Reach(V(s), V(d)); got != want {
					t.Fatalf("%s: Reach(%d,%d) = %v, want %v", stage, s, d, got, want)
				}
			}
		}
	}
	for _, mapped := range []bool{false, true} {
		prefix := filepath.Join(t.TempDir(), "snap")
		cfg := ShardedConfig{
			Shards: 3, Plain: KindPLL,
			Options:        Options{Seed: 9},
			SnapshotPrefix: prefix,
			Mapped:         mapped,
		}
		cold, err := NewShardedDB(g, cfg)
		if err != nil {
			t.Fatalf("mapped=%v cold: %v", mapped, err)
		}
		check(cold, "cold")
		cold.Close()
		for i := 0; i < 3; i++ {
			if _, err := os.Stat(fmt.Sprintf("%s.shard%d", prefix, i)); err != nil {
				t.Fatalf("mapped=%v: shard %d snapshot missing: %v", mapped, i, err)
			}
		}
		warm, err := NewShardedDB(g, cfg)
		if err != nil {
			t.Fatalf("mapped=%v warm: %v", mapped, err)
		}
		check(warm, "warm")
		warm.Close()
		// Corrupt one shard's snapshot: that shard rebuilds, the rest
		// load, and answers stay exact.
		if err := os.WriteFile(prefix+".shard1", []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		repaired, err := NewShardedDB(g, cfg)
		if err != nil {
			t.Fatalf("mapped=%v repaired: %v", mapped, err)
		}
		check(repaired, "repaired")
		repaired.Close()
	}
}

// TestShardedConfigErrors covers construction-time rejections.
func TestShardedConfigErrors(t *testing.T) {
	if _, err := NewShardedDB(nil, ShardedConfig{Shards: 2}); err == nil {
		t.Error("nil graph accepted")
	}
	g := Fig1Plain()
	if _, err := NewShardedDB(g, ShardedConfig{
		Shards: 2, Plain: KindTOL, SnapshotPrefix: filepath.Join(t.TempDir(), "s"),
	}); err == nil {
		t.Error("per-shard snapshots accepted for a non-snapshottable kind")
	}
	if _, err := NewDB(g, DBConfig{PlainSnapshot: &failingReader{}, PlainIndex: failIndex{}}); err == nil {
		t.Error("PlainIndex combined with PlainSnapshot accepted")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, fmt.Errorf("nope") }

type failIndex struct{}

func (failIndex) Name() string      { return "fail" }
func (failIndex) Reach(s, t V) bool { return false }
func (failIndex) Stats() Stats      { return Stats{} }
