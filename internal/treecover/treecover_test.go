package treecover

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestConformanceFatSubtree(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return NewWithHeuristic(dag, HeuristicFatSubtree)
	})
}

func TestHeuristicChangesShape(t *testing.T) {
	// The two heuristics must both be exact (checked above); on a graph
	// with heavy shared substructure they should produce different index
	// sizes — the §3.1 point that tree shape drives the interval count.
	g := gen.ScaleFree(800, 3, 7)
	dfs := New(g)
	fat := NewWithHeuristic(g, HeuristicFatSubtree)
	if dfs.Stats().Entries == 0 || fat.Stats().Entries == 0 {
		t.Fatal("no entries")
	}
	if dfs.Stats().Entries == fat.Stats().Entries {
		t.Log("heuristics produced identical sizes (possible but unusual)")
	}
}

func TestFig1AG(t *testing.T) {
	g := graph.Fig1Plain()
	ix := New(g)
	var a, gg graph.V
	for v := 0; v < g.N(); v++ {
		switch g.VertexName(graph.V(v)) {
		case "A":
			a = graph.V(v)
		case "G":
			gg = graph.V(v)
		}
	}
	// §2.1: Qr(A, G) = true via (A, D, H, G).
	if !ix.Reach(a, gg) {
		t.Error("Qr(A,G) should be true")
	}
	if ix.Reach(gg, a) {
		t.Error("Qr(G,A) should be false (DAG reconstruction)")
	}
}

func TestIntervalMerging(t *testing.T) {
	// A vertex whose two children have adjacent post intervals should hold
	// a single merged interval (the paper's merging example).
	//     0
	//    / \
	//   1   2
	g := graph.FromEdges(3, [][2]graph.V{{0, 1}, {0, 2}})
	ix := New(g)
	if got := ix.Intervals(0); got != 1 {
		t.Errorf("root intervals = %d, want 1 (children merge into the root range)", got)
	}
}

func TestNonTreeEdgeInheritance(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2, 2 -> 3 : one of the edges into 3 is non-tree;
	// its source must inherit 3's interval.
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 3}, {0, 2}, {2, 3}})
	ix := New(g)
	if !ix.Reach(2, 3) || !ix.Reach(1, 3) || !ix.Reach(0, 3) {
		t.Error("all of 0,1,2 must reach 3")
	}
	if ix.Reach(1, 2) || ix.Reach(2, 1) {
		t.Error("1 and 2 are incomparable")
	}
}

func TestStatsGrowWithDensity(t *testing.T) {
	sparse := New(gen.RandomDAG(gen.Config{N: 200, M: 250, Seed: 1}))
	dense := New(gen.RandomDAG(gen.Config{N: 200, M: 2000, Seed: 1}))
	if sparse.Stats().Entries <= 0 || dense.Stats().Entries <= 0 {
		t.Fatal("entries must be positive")
	}
	if sparse.Stats().BuildTime < 0 {
		t.Fatal("negative build time")
	}
	if dense.Name() != "TreeCover" {
		t.Fatal("name")
	}
}
