// Package treecover implements the original tree-cover reachability index
// of Agrawal, Borgida and Jagadish [2] (§3.1): interval labeling over a
// spanning forest of the DAG plus interval inheritance along non-tree
// edges, yielding a complete index.
//
// Construction: a DFS spanning forest assigns every vertex its subtree
// post-order interval; vertices are then examined in reverse topological
// order, each inheriting the full interval lists of its successors
// (adjacent intervals merge). Qr(s, t) holds iff post(t) falls in one of
// s's intervals.
//
// The paper notes the optimal tree cover (minimum total interval count) is
// as hard as computing TC itself; this implementation uses the standard
// DFS forest, which is the practical choice the follow-up literature
// compares against.
package treecover

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/order"
)

// Heuristic selects the spanning-tree shape. The paper notes the optimal
// tree cover minimizes the interval count but costs as much as TC itself;
// these are the practical stand-ins.
type Heuristic int

// Spanning-tree heuristics.
const (
	// HeuristicDFS: plain DFS spanning forest (the default used by the
	// follow-up literature's comparisons).
	HeuristicDFS Heuristic = iota
	// HeuristicFatSubtree approximates Agrawal et al.'s optimal cover by
	// attaching every vertex to the incoming tree parent with the largest
	// descendant count, so big subtrees fall under single intervals.
	HeuristicFatSubtree
)

// Index is the complete tree-cover index over a DAG.
type Index struct {
	post  []uint32
	lists []*interval.List
	stats core.Stats
}

// New builds the tree-cover index with the DFS heuristic. The input must
// be a DAG (use core.ForGeneral for general graphs).
func New(dag *graph.Digraph) *Index { return NewWithHeuristic(dag, HeuristicDFS) }

// NewWithHeuristic builds the tree-cover index with a chosen spanning-
// tree heuristic.
func NewWithHeuristic(dag *graph.Digraph, h Heuristic) *Index {
	start := time.Now()
	n := dag.N()
	var po *order.PostOrder
	if h == HeuristicFatSubtree {
		po = fatSubtreeForest(dag)
	} else {
		po = order.DFSForest(dag, order.Sources(dag), nil)
	}
	lists := make([]*interval.List, n)
	for v := 0; v < n; v++ {
		lists[v] = &interval.List{}
		lists[v].Add(po.Min[v], po.Post[v])
	}
	topo, _ := order.Topological(dag)
	// Reverse topological order: successors' lists are final when
	// inherited (transitivity of reachability).
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, w := range dag.Succ(v) {
			lists[v].AddList(lists[w])
		}
	}
	idx := &Index{post: po.Post, lists: lists}
	entries := 0
	for _, l := range lists {
		entries += l.Len()
	}
	idx.stats = core.Stats{
		Entries:   entries,
		Bytes:     entries*8 + n*4,
		BuildTime: time.Since(start),
	}
	return idx
}

// fatSubtreeForest picks, for every vertex, the parent whose subtree of
// already-descendant mass is largest: process vertices in reverse
// topological order computing descendant counts, then choose each
// vertex's tree parent as the predecessor with the largest count tie-
// broken to the smallest id, and finally post-order the resulting forest.
func fatSubtreeForest(dag *graph.Digraph) *order.PostOrder {
	n := dag.N()
	topo, _ := order.Topological(dag)
	// Approximate descendant counts (double-counts shared descendants —
	// it is a heuristic weight, not an exact measure).
	weight := make([]float64, n)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		weight[v] = 1
		for _, w := range dag.Succ(v) {
			weight[v] += weight[w]
		}
	}
	// Parent choice: the heaviest vertex among predecessors.
	parent := make([]graph.V, n)
	children := make([][]graph.V, n)
	for v := 0; v < n; v++ {
		parent[v] = graph.V(v)
		best := -1.0
		for _, p := range dag.Pred(graph.V(v)) {
			if weight[p] > best {
				best = weight[p]
				parent[v] = p
			}
		}
	}
	for v := 0; v < n; v++ {
		if parent[v] != graph.V(v) {
			children[parent[v]] = append(children[parent[v]], graph.V(v))
		}
	}
	// Iterative post-order over the chosen forest.
	po := &order.PostOrder{
		Post:   make([]uint32, n),
		Min:    make([]uint32, n),
		Parent: parent,
	}
	var counter uint32
	type frame struct {
		v   graph.V
		ci  int
		min uint32
	}
	var stack []frame
	for r := 0; r < n; r++ {
		if parent[r] != graph.V(r) {
			continue
		}
		stack = append(stack[:0], frame{v: graph.V(r), min: ^uint32(0)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ci < len(children[f.v]) {
				c := children[f.v][f.ci]
				f.ci++
				stack = append(stack, frame{v: c, min: ^uint32(0)})
				continue
			}
			post := counter
			counter++
			min := f.min
			if min == ^uint32(0) {
				min = post
			}
			po.Post[f.v] = post
			po.Min[f.v] = min
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				pf := &stack[len(stack)-1]
				if min < pf.min {
					pf.min = min
				}
			}
		}
	}
	return po
}

// Name implements core.Index.
func (ix *Index) Name() string { return "TreeCover" }

// Reach reports whether t is reachable from s.
func (ix *Index) Reach(s, t graph.V) bool {
	return ix.lists[s].Contains(ix.post[t])
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// Intervals exposes the per-vertex interval count; the E9 ablation reports
// its distribution.
func (ix *Index) Intervals(v graph.V) int { return ix.lists[v].Len() }
