package bfl

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/persist"
)

// agreeEverywhere checks got answers every pair identically to want.
func agreeEverywhere(t *testing.T, g *graph.Digraph, want, got *Index) {
	t.Helper()
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if want.Reach(s, tt) != got.Reach(s, tt) {
				t.Fatalf("loaded index disagrees at (%d, %d)", s, tt)
			}
		}
	}
}

func TestPersistRoundTrip(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 180, M: 540, Seed: 21})
	ix := New(g, Options{Bits: 192, Seed: 5})

	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	agreeEverywhere(t, g, ix, got)
}

func TestPersistMappedRoundTrip(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 180, M: 540, Seed: 22})
	ix := New(g, Options{Bits: 192, Seed: 6})

	var buf bytes.Buffer
	if _, err := ix.WriteMapped(&buf); err != nil {
		t.Fatal(err)
	}

	// The v2 layout must also decode through the streaming reader.
	streamed, err := Read(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	agreeEverywhere(t, g, ix, streamed)

	// And load zero-copy through the mapped path.
	path := filepath.Join(t.TempDir(), "bfl.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := persist.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := FromMapped(m, g)
	if err != nil {
		t.Fatal(err)
	}
	agreeEverywhere(t, g, ix, mapped)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncations must error cleanly, never panic.
	for cut := 0; cut < buf.Len(); cut += 97 {
		trunc := filepath.Join(t.TempDir(), "trunc.snap")
		if err := os.WriteFile(trunc, buf.Bytes()[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if tm, err := persist.OpenMapped(trunc); err == nil {
			if _, err := FromMapped(tm, g); err == nil {
				t.Fatalf("truncation at %d loaded without error", cut)
			}
			tm.Close()
		}
	}
}

func TestPersistWrongGraph(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 120, M: 360, Seed: 23})
	other := gen.RandomDAG(gen.Config{N: 121, M: 360, Seed: 24})
	ix := New(g, Options{Bits: 128, Seed: 7})
	var buf bytes.Buffer
	if _, err := ix.WriteMapped(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("vertex-count mismatch not detected")
	}
}
