package bfl

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/persist"
)

// Snapshots use the shared internal/persist container (format "bfl",
// version 1) with three sections:
//
//	meta      — vertex count n, filter width in 64-bit words
//	intervals — DFS post[n] and min[n] (the definite-positive test)
//	filters   — out filters then in filters, n*words words each
//
// BFL is a partial index: the guided-DFS fallback needs the graph the
// labels were computed over, so Read re-binds the snapshot to a caller
// supplied DAG. Pairing a snapshot with the right graph is the caller's
// responsibility (a vertex-count mismatch is detected, other mismatches
// are not — as with any external index file in a DBMS).
const (
	persistFormat  = "bfl"
	persistVersion = 1
)

// WriteTo serializes the index. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w, persistFormat, persistVersion)
	pw.Section("meta", func(e *persist.Encoder) {
		e.U32(uint32(len(ix.post)))
		e.U32(uint32(ix.words))
	})
	pw.Section("intervals", func(e *persist.Encoder) {
		e.U32s(ix.post)
		e.U32s(ix.min)
	})
	pw.Section("filters", func(e *persist.Encoder) {
		e.U64s(ix.out)
		e.U64s(ix.in)
	})
	return pw.Close()
}

// Read deserializes an index previously written with WriteTo and binds it
// to dag — the same DAG the snapshot was built over (for a general graph,
// the SCC condensation the builder ran on). The filter-guided fallback
// traverses dag, so answers are only correct over the original graph.
func Read(r io.Reader, dag *graph.Digraph) (*Index, error) {
	pr, err := persist.NewReader(r, persistFormat, persistVersion)
	if err != nil {
		return nil, err
	}
	meta, err := pr.Section("meta")
	if err != nil {
		return nil, err
	}
	n := meta.U32()
	words := meta.U32()
	if err := meta.Close(); err != nil {
		return nil, err
	}
	if int(n) != dag.N() {
		return nil, fmt.Errorf("bfl: snapshot has %d vertices, graph has %d (snapshot built over a different graph?)", n, dag.N())
	}
	if words == 0 || words > 1<<20 {
		return nil, fmt.Errorf("bfl: implausible filter width %d words", words)
	}
	ix := &Index{g: dag, words: int(words)}
	iv, err := pr.Section("intervals")
	if err != nil {
		return nil, err
	}
	ix.post = iv.U32s()
	ix.min = iv.U32s()
	if err := iv.Close(); err != nil {
		return nil, err
	}
	if len(ix.post) != int(n) || len(ix.min) != int(n) {
		return nil, fmt.Errorf("bfl: interval sections have %d/%d entries, want %d", len(ix.post), len(ix.min), n)
	}
	fl, err := pr.Section("filters")
	if err != nil {
		return nil, err
	}
	ix.out = fl.U64s()
	ix.in = fl.U64s()
	if err := fl.Close(); err != nil {
		return nil, err
	}
	if len(ix.out) != int(n)*int(words) || len(ix.in) != int(n)*int(words) {
		return nil, fmt.Errorf("bfl: filter sections have %d/%d words, want %d", len(ix.out), len(ix.in), int(n)*int(words))
	}
	ix.stats = core.Stats{
		Entries: 2 * int(n),
		Bytes:   2*int(n)*int(words)*8 + 2*int(n)*4,
	}
	return ix, nil
}
