package bfl

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelstore"
	"repro/internal/persist"
)

// Snapshots use the shared internal/persist container (format "bfl") in
// two layouts:
//
// Version 1 — the streaming codec (WriteTo):
//
//	meta      — vertex count n, filter width in 64-bit words
//	intervals — DFS post[n] and min[n] (the definite-positive test)
//	filters   — out filters then in filters, n*words words each
//
// Version 2 — the mapped layout (WriteMapped): aligned raw-array
// sections plus a trailing checksum, loadable zero-copy through
// persist.OpenMapped + FromMapped:
//
//	meta — n, words
//	post/min — DFS intervals, 4-byte aligned
//	fout/fin — filter matrices, 8-byte aligned
//	crc32 — CRC-32C of everything above
//
// BFL is a partial index: the guided-DFS fallback needs the graph the
// labels were computed over, so Read re-binds the snapshot to a caller
// supplied DAG. Pairing a snapshot with the right graph is the caller's
// responsibility (a vertex-count mismatch is detected, other mismatches
// are not — as with any external index file in a DBMS).
const (
	persistFormat     = "bfl"
	persistVersion    = 1
	persistVersionMap = 2
)

// WriteTo serializes the index in the version-1 streaming codec. It
// returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w, persistFormat, persistVersion)
	pw.Section("meta", func(e *persist.Encoder) {
		e.U32(uint32(len(ix.post)))
		e.U32(uint32(ix.out.Stride))
	})
	pw.Section("intervals", func(e *persist.Encoder) {
		e.U32s(ix.post)
		e.U32s(ix.min)
	})
	pw.Section("filters", func(e *persist.Encoder) {
		e.U64s(ix.out.W)
		e.U64s(ix.in.W)
	})
	return pw.Close()
}

// WriteMapped serializes the index in the version-2 mapped layout. The
// writer must be positioned at the start of the file.
func (ix *Index) WriteMapped(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w, persistFormat, persistVersionMap)
	pw.Section("meta", func(e *persist.Encoder) {
		e.U32(uint32(len(ix.post)))
		e.U32(uint32(ix.out.Stride))
	})
	pw.AlignedU32s("post", ix.post)
	pw.AlignedU32s("min", ix.min)
	pw.AlignedU64s("fout", ix.out.W)
	pw.AlignedU64s("fin", ix.in.W)
	pw.Checksum()
	return pw.Close()
}

type bflMeta struct {
	n, words uint32
}

func readMeta(meta *persist.Decoder, dag *graph.Digraph) (bflMeta, error) {
	var m bflMeta
	m.n = meta.U32()
	m.words = meta.U32()
	if err := meta.Close(); err != nil {
		return m, err
	}
	if int(m.n) != dag.N() {
		return m, fmt.Errorf("bfl: snapshot has %d vertices, graph has %d (snapshot built over a different graph?)", m.n, dag.N())
	}
	if m.words == 0 || m.words > 1<<20 {
		return m, fmt.Errorf("bfl: implausible filter width %d words", m.words)
	}
	return m, nil
}

// bind validates array lengths and finishes an index skeleton.
func (ix *Index) bind(m bflMeta) error {
	n, words := int(m.n), int(m.words)
	if len(ix.post) != n || len(ix.min) != n {
		return fmt.Errorf("bfl: interval sections have %d/%d entries, want %d", len(ix.post), len(ix.min), n)
	}
	if len(ix.out.W) != n*words || len(ix.in.W) != n*words {
		return fmt.Errorf("bfl: filter sections have %d/%d words, want %d", len(ix.out.W), len(ix.in.W), n*words)
	}
	ix.stats = core.Stats{
		Entries: 2 * n,
		Bytes:   2*n*words*8 + 2*n*4,
	}
	return nil
}

// Read deserializes an index previously written with WriteTo (v1) or
// WriteMapped (v2) and binds it to dag — the same DAG the snapshot was
// built over (for a general graph, the SCC condensation the builder ran
// on). The filter-guided fallback traverses dag, so answers are only
// correct over the original graph.
func Read(r io.Reader, dag *graph.Digraph) (*Index, error) {
	pr, err := persist.NewReader(r, persistFormat, persistVersionMap)
	if err != nil {
		return nil, err
	}
	return readSections(pr, dag)
}

// ReadSections deserializes from an already-opened container whose
// format was sniffed by the caller (persist.NewReaderAny).
func ReadSections(pr *persist.Reader, dag *graph.Digraph) (*Index, error) {
	if pr.Version() > persistVersionMap {
		return nil, fmt.Errorf("bfl: snapshot version %d not supported (max %d)", pr.Version(), persistVersionMap)
	}
	return readSections(pr, dag)
}

func readSections(pr *persist.Reader, dag *graph.Digraph) (*Index, error) {
	meta, err := pr.Section("meta")
	if err != nil {
		return nil, err
	}
	m, err := readMeta(meta, dag)
	if err != nil {
		return nil, err
	}
	ix := &Index{g: dag}
	if pr.Version() >= persistVersionMap {
		readU32s := func(name string) ([]uint32, error) {
			d, err := pr.Section(name)
			if err != nil {
				return nil, err
			}
			vs := d.AlignedU32s()
			return vs, d.Close()
		}
		readU64s := func(name string) ([]uint64, error) {
			d, err := pr.Section(name)
			if err != nil {
				return nil, err
			}
			vs := d.AlignedU64s()
			return vs, d.Close()
		}
		if ix.post, err = readU32s("post"); err != nil {
			return nil, err
		}
		if ix.min, err = readU32s("min"); err != nil {
			return nil, err
		}
		var fout, fin []uint64
		if fout, err = readU64s("fout"); err != nil {
			return nil, err
		}
		if fin, err = readU64s("fin"); err != nil {
			return nil, err
		}
		ix.out = labelstore.Words{Stride: int(m.words), W: fout}
		ix.in = labelstore.Words{Stride: int(m.words), W: fin}
	} else {
		iv, err := pr.Section("intervals")
		if err != nil {
			return nil, err
		}
		ix.post = iv.U32s()
		ix.min = iv.U32s()
		if err := iv.Close(); err != nil {
			return nil, err
		}
		fl, err := pr.Section("filters")
		if err != nil {
			return nil, err
		}
		ix.out = labelstore.Words{Stride: int(m.words), W: fl.U64s()}
		ix.in = labelstore.Words{Stride: int(m.words), W: fl.U64s()}
		if err := fl.Close(); err != nil {
			return nil, err
		}
	}
	if err := ix.bind(m); err != nil {
		return nil, err
	}
	return ix, nil
}

// FromMapped binds a version-2 snapshot opened with persist.OpenMapped
// as a zero-copy index over dag: intervals and filter matrices are views
// into the mapping. The index pins the mapping for its lifetime.
func FromMapped(m *persist.Mapped, dag *graph.Digraph) (*Index, error) {
	if m.Format() != persistFormat {
		return nil, fmt.Errorf("bfl: mapped snapshot has format %q, want %q", m.Format(), persistFormat)
	}
	if m.Version() != persistVersionMap {
		return nil, fmt.Errorf("bfl: mapped snapshot version %d not supported (want %d)", m.Version(), persistVersionMap)
	}
	meta, err := m.Section("meta")
	if err != nil {
		return nil, err
	}
	mm, err := readMeta(meta, dag)
	if err != nil {
		return nil, err
	}
	ix := &Index{g: dag, backing: m}
	if ix.post, err = m.U32s("post"); err != nil {
		return nil, err
	}
	if ix.min, err = m.U32s("min"); err != nil {
		return nil, err
	}
	fout, err := m.U64s("fout")
	if err != nil {
		return nil, err
	}
	fin, err := m.U64s("fin")
	if err != nil {
		return nil, err
	}
	ix.out = labelstore.Words{Stride: int(mm.words), W: fout}
	ix.in = labelstore.Words{Stride: int(mm.words), W: fin}
	if err := ix.bind(mm); err != nil {
		return nil, err
	}
	return ix, nil
}
