// Package bfl implements BFL [41] (§3.3): approximate transitive closure
// via Bloom-filter labels, "one of the state-of-the-art techniques for
// plain reachability indexing".
//
// Every vertex v hashes to a position in an s-bit space. Lout(v) is a
// Bloom filter over {hash(w) : w reachable from v}, computed in one
// reverse-topological pass (Lout(v) = own bit ∪ children's filters); Lin
// is the dual. The AP() contra-positive of §3.3 gives the definite
// negative: if Lout(t) ⊄ Lout(s) then Out(t) ⊄ Out(s), so t is not
// reachable from s — no false negatives by construction. A DFS interval
// gives a definite positive for tree descendants. Undecided queries fall
// back to the index-guided DFS, recursively pruned by the same filters.
package bfl

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelstore"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/par"
)

// Options configures BFL.
type Options struct {
	// Bits is the Bloom filter width in bits (rounded up to a multiple of
	// 64). The BFL paper uses a few hundred bits. Default 256.
	Bits int
	// Seed scrambles the vertex→bit hash.
	Seed int64
	// Workers caps the pool running the per-partition Bloom-filter merge
	// passes (0 = GOMAXPROCS, 1 = serial). Each pass is a
	// level-synchronized sweep — a vertex's filter is the union of its
	// own bit and its neighbours' finished filters — so the index is
	// identical at any worker count.
	Workers int
	// Spans, when non-nil, receives named build-phase durations.
	Spans *obs.Spans
}

func (o *Options) defaults() {
	if o.Bits <= 0 {
		o.Bits = 256
	}
	o.Bits = (o.Bits + 63) &^ 63
}

// Index is the BFL partial index over a DAG. Filters are fixed-stride
// flat labelstore.Words matrices — already a CSR-style layout (the
// offset of row v is v*Stride, so no offset table is needed).
type Index struct {
	g       *graph.Digraph
	out, in labelstore.Words // forward / backward filters
	post    []uint32
	min     []uint32
	stats   core.Stats
	// backing pins the snapshot mapping a zero-copy loaded index's
	// arrays alias (see FromMapped); nil for built indexes.
	backing interface{ Close() error }
}

// New builds BFL over a DAG.
func New(dag *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	n := dag.N()
	words := opts.Bits / 64
	ix := &Index{
		g:   dag,
		out: labelstore.Words{Stride: words, W: make([]uint64, n*words)},
		in:  labelstore.Words{Stride: words, W: make([]uint64, n*words)},
	}
	end := opts.Spans.Start("bfl/dfs-intervals")
	po := order.DFSForest(dag, order.Sources(dag), nil)
	ix.post, ix.min = po.Post, po.Min
	end()

	end = opts.Spans.Start("bfl/levels")
	buckets := order.LevelBuckets(dag)
	end()
	seed := uint64(opts.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	bitOf := func(v graph.V) (int, uint64) {
		x := (uint64(v) + 1) * seed
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 29
		pos := x % uint64(words*64)
		return int(pos / 64), 1 << (pos % 64)
	}
	nw := par.Resolve(opts.Workers)
	// Forward filters, deepest level first: successors' filters are
	// complete before a vertex unions them in.
	end = opts.Spans.StartN("bfl/filters-out", nw)
	par.Sweep(opts.Workers, order.Reversed(buckets), func(_ int, v graph.V) {
		row := ix.out.Row(int(v))
		w, b := bitOf(v)
		row[w] |= b
		for _, u := range dag.Succ(v) {
			src := ix.out.Row(int(u))
			for k := range row {
				row[k] |= src[k]
			}
		}
	})
	end()
	// Backward filters, shallowest level first.
	end = opts.Spans.StartN("bfl/filters-in", nw)
	par.Sweep(opts.Workers, buckets, func(_ int, v graph.V) {
		row := ix.in.Row(int(v))
		w, b := bitOf(v)
		row[w] |= b
		for _, u := range dag.Pred(v) {
			src := ix.in.Row(int(u))
			for k := range row {
				row[k] |= src[k]
			}
		}
	})
	end()
	ix.stats = core.Stats{
		Entries:   2 * n, // one filter pair per vertex
		Bytes:     2*n*words*8 + 2*n*4,
		BuildTime: time.Since(start),
	}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "BFL" }

// TryReach implements core.Partial.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	// Definite positive: t inside s's DFS subtree interval.
	if ix.min[s] <= ix.post[t] && ix.post[t] <= ix.post[s] {
		return true, true
	}
	// Contra-positive filters: Lout(t) ⊆ Lout(s) and Lin(s) ⊆ Lin(t) are
	// necessary for reachability.
	so := ix.out.Row(int(s))
	to := ix.out.Row(int(t))
	for k := range so {
		if to[k]&^so[k] != 0 {
			return false, true
		}
	}
	si := ix.in.Row(int(s))
	ti := ix.in.Row(int(t))
	for k := range si {
		if si[k]&^ti[k] != 0 {
			return false, true
		}
	}
	return false, false
}

// Reach answers Qr(s, t) exactly via filter-guided DFS.
func (ix *Index) Reach(s, t graph.V) bool {
	return core.GuidedDFS(ix.g, s, t, ix.TryReach)
}

// ReachCounted implements core.ReachCounter: the same guided DFS as
// Reach, additionally reporting how many vertices it expanded and whether
// the index labels decided the query without any expansion.
func (ix *Index) ReachCounted(s, t graph.V) (bool, int, bool) {
	r, n := core.CountingGuidedDFS(ix.g, s, t, ix.TryReach)
	return r, n, n == 0
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// Sizes implements core.Sized: BFL's fixed-stride filter matrices need
// no offset table, so Offsets is 0; the DFS intervals are Aux.
func (ix *Index) Sizes() core.SizeBreakdown {
	return core.SizeBreakdown{
		Labels: ix.out.Bytes() + ix.in.Bytes(),
		Aux:    len(ix.post)*4 + len(ix.min)*4,
	}
}
