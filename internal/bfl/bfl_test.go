package bfl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{Bits: 128, Seed: 1})
	})
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{Bits: 64, Seed: 2})
	})
}

func TestTinyFilterStillExact(t *testing.T) {
	// A 64-bit filter on a 150-vertex graph is saturated with collisions;
	// guided DFS must still give exact answers.
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{Bits: 64, Seed: 3})
	})
}

func TestNoFalseNegatives(t *testing.T) {
	// The §3.3 AP() contract: lookup-only answers never deny a real path.
	g := gen.RandomDAG(gen.Config{N: 300, M: 900, Seed: 4})
	ix := New(g, Options{Bits: 128, Seed: 5})
	oracle := tc.NewClosure(g)
	for s := graph.V(0); int(s) < g.N(); s += 2 {
		for tt := graph.V(0); int(tt) < g.N(); tt += 3 {
			if oracle.Reach(s, tt) {
				if r, dec := ix.TryReach(s, tt); dec && !r {
					t.Fatalf("false negative at (%d,%d)", s, tt)
				}
			}
		}
	}
}

func TestFilterSubsetInvariant(t *testing.T) {
	// The §3.3 AP() contract at the filter level: u → v implies
	// Lout(v) ⊆ Lout(u) and Lin(u) ⊆ Lin(v), for every edge (hence,
	// transitively, every reachable pair).
	g := gen.RandomDAG(gen.Config{N: 250, M: 750, Seed: 9})
	ix := New(g, Options{Bits: 192, Seed: 10})
	g.Edges(func(e graph.Edge) bool {
		outFrom, outTo := ix.out.Row(int(e.From)), ix.out.Row(int(e.To))
		inFrom, inTo := ix.in.Row(int(e.From)), ix.in.Row(int(e.To))
		for j := range outFrom {
			if outTo[j]&^outFrom[j] != 0 {
				t.Fatalf("Lout(%d) ⊄ Lout(%d) across edge", e.To, e.From)
			}
			if inFrom[j]&^inTo[j] != 0 {
				t.Fatalf("Lin(%d) ⊄ Lin(%d) across edge", e.From, e.To)
			}
		}
		return true
	})
}

func TestWiderFiltersPruneMore(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 400, M: 1200, Seed: 6})
	count := func(bits int) int {
		ix := New(g, Options{Bits: bits, Seed: 7})
		decided := 0
		for s := graph.V(0); int(s) < g.N(); s += 4 {
			for tt := graph.V(0); int(tt) < g.N(); tt += 4 {
				if _, dec := ix.TryReach(s, tt); dec {
					decided++
				}
			}
		}
		return decided
	}
	if small, big := count(64), count(1024); big < small {
		t.Errorf("1024-bit filters decided %d < 64-bit %d", big, small)
	}
}

func TestBitsRounding(t *testing.T) {
	o := Options{Bits: 100}
	o.defaults()
	if o.Bits != 128 {
		t.Errorf("Bits rounded to %d, want 128", o.Bits)
	}
	g := gen.RandomDAG(gen.Config{N: 20, M: 40, Seed: 1})
	if New(g, Options{}).Name() != "BFL" {
		t.Error("name")
	}
}
