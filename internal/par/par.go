// Package par is the shared parallel-construction substrate of the §5
// "parallel computation of indexes" direction: a bounded worker pool with
// an atomic-counter work-stealing loop, deterministic ordered fan-out/
// fan-in (results land in caller-indexed slots, so the output is
// independent of scheduling), and level-synchronized DAG sweeps for the
// propagation passes whose only dependencies follow topological levels
// (Bloom-filter unions, interval merges, sketch merges, closure rows).
//
// Every entry point takes a worker count with the library-wide
// convention of reach.Options.Workers: 0 selects GOMAXPROCS, 1 is the
// serial path (no goroutines at all), n > 1 caps the pool at n. Callers
// guarantee determinism by making each work item independent of its
// scheduling — randomized builders derive one sub-seed per item with
// SubSeed instead of sharing a sequential RNG stream.
package par

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// WorkerPanic transports a panic that occurred on a pool goroutine back to
// the calling goroutine: workers recover, the first panic (and its stack)
// is recorded, the pool drains, and the panic is re-raised at the call
// site wrapped in this type. Without the re-raise a panicking work item
// would crash the whole process — no recover boundary on the caller's
// stack can see a bare goroutine's panic. core.PanicError unwraps it
// (recursively, for nested pools) when classifying contained failures.
type WorkerPanic struct {
	Value any    // the original panic value
	Stack []byte // the panicking worker's stack
}

func (p WorkerPanic) String() string {
	return "panic on pool worker: " + stringify(p.Value)
}

func stringify(v any) string {
	switch s := v.(type) {
	case string:
		return s
	case error:
		return s.Error()
	case interface{ String() string }:
		return s.String()
	default:
		return "(non-string panic value)"
	}
}

// claimSite is the pool's fault-injection point: every chunk/item claim
// passes through it, so the stress harness can panic an arbitrary work
// item on a real pool goroutine and prove the containment path.
const claimSite = "par/claim"

// panicCell records the first panic seen by any worker of one pool run.
// Later panics are dropped (the first is what a serial run would have
// raised soonest); its flag doubles as a stop signal so workers quit
// claiming work once the run is doomed.
type panicCell struct {
	failed atomic.Bool
	mu     sync.Mutex
	val    any
	stack  []byte
	has    bool
}

func (pc *panicCell) record(v any, stack []byte) {
	pc.mu.Lock()
	if !pc.has {
		pc.has, pc.val, pc.stack = true, v, stack
	}
	pc.mu.Unlock()
	pc.failed.Store(true)
}

// repanic re-raises the recorded panic on the caller goroutine, after the
// pool has fully drained (so no worker still touches shared state).
func (pc *panicCell) repanic() {
	if pc.has {
		panic(WorkerPanic{Value: pc.val, Stack: pc.stack})
	}
}

// protect runs f and routes a panic into pc instead of letting it escape
// the goroutine.
func protect(pc *panicCell, f func()) {
	defer func() {
		if r := recover(); r != nil {
			pc.record(r, debug.Stack())
		}
	}()
	f()
}

// Resolve maps a reach.Options.Workers value to an effective pool size:
// 0 means GOMAXPROCS, anything below 1 clamps to serial.
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Do runs f(i) for every i in [0, n) on at most `workers` goroutines
// (resolved per Resolve). Items are claimed one at a time from an atomic
// counter — work stealing, so a few expensive items cannot serialize the
// pool the way static chunking does. With workers <= 1 (or n <= 1) f runs
// inline on the calling goroutine. Do returns after every item finished:
// the fan-in is a full barrier, which also publishes all writes made by
// the workers to the caller (happens-before via WaitGroup).
func Do(workers, n int, f func(i int)) {
	DoW(workers, n, func(_, i int) { f(i) })
}

// DoW is Do with the worker slot id (0..workers-1) passed alongside the
// item index, so callers can maintain per-worker scratch without locking.
//
// A panic in f on the serial path propagates as usual. On the pooled path
// it is contained: the pool stops claiming new items, drains, and the
// first panic is re-raised on the calling goroutine as a WorkerPanic —
// so a recover boundary at the public API still sees it.
func DoW(workers, n int, f func(worker, i int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			faultinject.Hit(claimSite)
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var pc panicCell
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for !pc.failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				protect(&pc, func() {
					faultinject.Hit(claimSite)
					f(w, i)
				})
			}
		}(w)
	}
	wg.Wait()
	pc.repanic()
}

// DoGrain is DoW stealing `grain` consecutive items per claim, for loops
// whose per-item work is too small to amortize one atomic op each.
func DoGrain(workers, n, grain int, f func(worker, lo, hi int)) {
	workers = Resolve(workers)
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		if n > 0 {
			faultinject.Hit(claimSite)
			f(0, 0, n)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var pc panicCell
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for !pc.failed.Load() {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				protect(&pc, func() {
					faultinject.Hit(claimSite)
					f(w, lo, hi)
				})
			}
		}(w)
	}
	wg.Wait()
	pc.repanic()
}

// sweepFanout is the level width below which a Sweep level runs inline:
// spawning a pool for a handful of vertices costs more than it saves.
const sweepFanout = 64

// sweepGrain batches level items per steal; propagation work per vertex
// (a few cache lines of OR/merge) needs batching to amortize the counter.
const sweepGrain = 32

// Sweep runs a level-synchronized DAG sweep: levels are processed in the
// order given with a full barrier between consecutive levels, and the
// items of one level are processed concurrently (they must be mutually
// independent — in a topological-level bucketing no edge connects two
// vertices of the same level). Passing the level list in reverse order
// turns a predecessor-propagation sweep into a successor-propagation one.
// The barrier publishes each level's writes to the next level's workers,
// so sweeps are race-free by construction.
func Sweep[T any](workers int, levels [][]T, f func(worker int, item T)) {
	workers = Resolve(workers)
	for _, level := range levels {
		if workers <= 1 || len(level) < sweepFanout {
			for _, it := range level {
				f(0, it)
			}
			continue
		}
		DoGrain(workers, len(level), sweepGrain, func(w, lo, hi int) {
			for _, it := range level[lo:hi] {
				f(w, it)
			}
		})
	}
}

// SubSeed derives the i-th independent sub-seed of seed by splitmix64.
// Parallel randomized builders (GRAIL's k labelings) give every work item
// its own RNG seeded with SubSeed(seed, i) so the result is a pure
// function of (seed, i) — identical at any worker count — instead of a
// function of the shared stream's interleaving.
func SubSeed(seed int64, i int) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(i)+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
