package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d", got)
	}
	if got := Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d", got)
	}
}

func TestDoCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 1000
		hits := make([]int32, n)
		Do(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestDoWWorkerIdsInRange(t *testing.T) {
	const n = 500
	var bad atomic.Int32
	DoW(8, n, func(w, i int) {
		if w < 0 || w >= 8 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d items saw an out-of-range worker id", bad.Load())
	}
}

func TestDoGrainCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, grain := range []int{1, 7, 64, 1000} {
			const n = 777
			hits := make([]int32, n)
			DoGrain(workers, n, grain, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d grain=%d: item %d hit %d times", workers, grain, i, h)
				}
			}
		}
	}
}

func TestDoZeroItems(t *testing.T) {
	ran := false
	Do(4, 0, func(int) { ran = true })
	DoGrain(4, 0, 16, func(_, _, _ int) { ran = true })
	if ran {
		t.Fatal("f ran with n = 0")
	}
}

// TestSweepLevelBarrier: a sweep where each level sums the previous
// level's results must observe fully-published predecessor values — the
// inter-level barrier is the correctness contract of every propagation
// pass built on Sweep.
func TestSweepLevelBarrier(t *testing.T) {
	const width, depth = 200, 20
	levels := make([][]int, depth)
	for l := range levels {
		levels[l] = make([]int, width)
		for i := range levels[l] {
			levels[l][i] = l*width + i
		}
	}
	vals := make([]int64, width*depth)
	for _, workers := range []int{1, 2, 8} {
		for i := range vals {
			vals[i] = 0
		}
		Sweep(workers, levels, func(_, item int) {
			l := item / width
			if l == 0 {
				vals[item] = 1
				return
			}
			var sum int64
			for i := 0; i < width; i++ {
				sum += vals[(l-1)*width+i]
			}
			vals[item] = sum / width // = product of widths seen so far
		})
		for i, v := range vals[(depth-1)*width:] {
			if v != 1 {
				t.Fatalf("workers=%d: sink %d saw %d, want 1 (missed barrier)", workers, i, v)
			}
		}
	}
}

func TestSubSeedDistinctAndStable(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := SubSeed(42, i)
		if seen[s] {
			t.Fatalf("SubSeed(42, %d) collides", i)
		}
		seen[s] = true
		if s != SubSeed(42, i) {
			t.Fatalf("SubSeed(42, %d) unstable", i)
		}
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Error("different seeds map to the same sub-seed stream head")
	}
}

func TestDoWPanicContainment(t *testing.T) {
	// A panic on a pool goroutine must re-surface on the caller goroutine
	// (wrapped in WorkerPanic), not crash the process.
	for _, workers := range []int{2, 8} {
		var ran atomic.Int64
		func() {
			defer func() {
				r := recover()
				wp, ok := r.(WorkerPanic)
				if !ok {
					t.Fatalf("workers=%d: recover() = %v, want WorkerPanic", workers, r)
				}
				if wp.Value != "boom" {
					t.Fatalf("workers=%d: panic value %v, want boom", workers, wp.Value)
				}
				if len(wp.Stack) == 0 {
					t.Fatalf("workers=%d: empty worker stack", workers)
				}
			}()
			DoW(workers, 1000, func(_, i int) {
				ran.Add(1)
				if i == 137 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: DoW returned without repanic", workers)
		}()
		if ran.Load() == 0 {
			t.Fatalf("workers=%d: no items ran", workers)
		}
	}
}

func TestDoWSerialPanicPropagatesRaw(t *testing.T) {
	defer func() {
		if r := recover(); r != "raw" {
			t.Fatalf("recover() = %v, want raw panic value on serial path", r)
		}
	}()
	DoW(1, 10, func(_, i int) {
		if i == 3 {
			panic("raw")
		}
	})
	t.Fatal("unreachable")
}

func TestDoGrainPanicContainment(t *testing.T) {
	defer func() {
		if wp, ok := recover().(WorkerPanic); !ok || wp.Value != "grain" {
			t.Fatalf("want WorkerPanic{grain}, got %v", wp)
		}
	}()
	DoGrain(4, 640, 16, func(_, lo, hi int) {
		if lo == 320 {
			panic("grain")
		}
	})
	t.Fatal("unreachable")
}
