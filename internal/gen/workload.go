package gen

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/traversal"
)

// Query is a plain reachability query with its ground-truth answer.
type Query struct {
	S, T graph.V
	Want bool
}

// Queries generates cnt uniform random (s, t) pairs with ground truth
// computed by BFS. The returned mix is whatever the graph's density
// implies; use QueriesWithRatio to control the positive fraction.
func Queries(g *graph.Digraph, cnt int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]Query, cnt)
	for i := range qs {
		s := graph.V(rng.Intn(g.N()))
		t := graph.V(rng.Intn(g.N()))
		qs[i] = Query{S: s, T: t, Want: traversal.BFS(g, s, t)}
	}
	return qs
}

// QueriesWithRatio generates cnt queries of which a fraction posRatio are
// positive (reachable) and the rest negative, by sampling reachable targets
// from forward BFS sets and unreachable targets by rejection. This models
// the §5 observation that real workloads are negative-heavy.
func QueriesWithRatio(g *graph.Digraph, cnt int, posRatio float64, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]Query, 0, cnt)
	wantPos := int(float64(cnt) * posRatio)

	for len(qs) < cnt {
		s := graph.V(rng.Intn(g.N()))
		reach := traversal.ReachableFrom(g, s)
		var pos, neg []graph.V
		reach.ForEach(func(i int) bool {
			if graph.V(i) != s {
				pos = append(pos, graph.V(i))
			}
			return true
		})
		// Sample a few negatives for this source.
		for tries := 0; tries < 32 && len(neg) < 8; tries++ {
			t := graph.V(rng.Intn(g.N()))
			if !reach.Test(int(t)) {
				neg = append(neg, t)
			}
		}
		take := func(from []graph.V, want bool, upTo int) {
			for i := 0; i < upTo && len(from) > 0 && len(qs) < cnt; i++ {
				t := from[rng.Intn(len(from))]
				qs = append(qs, Query{S: s, T: t, Want: want})
			}
		}
		needPos := wantPos - countPos(qs)
		if needPos > 0 && len(pos) > 0 {
			take(pos, true, 4)
		} else {
			take(neg, false, 4)
		}
	}
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	return qs
}

func countPos(qs []Query) int {
	c := 0
	for _, q := range qs {
		if q.Want {
			c++
		}
	}
	return c
}

// LCRQuery is an alternation-constrained query with ground truth: is there
// an s-t path using only labels in Allowed (a bitmask)?
type LCRQuery struct {
	S, T    graph.V
	Allowed uint64
	Want    bool
}

// LCRQueries generates cnt label-constrained queries over a labeled graph,
// drawing the allowed-set size uniformly in [1, labels]. Ground truth by
// label-constrained BFS.
func LCRQueries(g *graph.Digraph, cnt int, seed int64) []LCRQuery {
	rng := rand.New(rand.NewSource(seed))
	L := g.Labels()
	qs := make([]LCRQuery, cnt)
	for i := range qs {
		s := graph.V(rng.Intn(g.N()))
		t := graph.V(rng.Intn(g.N()))
		k := 1 + rng.Intn(L)
		var mask uint64
		for bits := 0; bits < k; {
			l := rng.Intn(L)
			if mask&(1<<uint(l)) == 0 {
				mask |= 1 << uint(l)
				bits++
			}
		}
		qs[i] = LCRQuery{S: s, T: t, Allowed: mask,
			Want: traversal.LabelConstrainedBFS(g, s, t, mask)}
	}
	return qs
}

// UpdateOp is a scripted edge insertion or deletion for dynamic-index
// experiments.
type UpdateOp struct {
	Insert bool
	Edge   graph.Edge
}

// UpdateScript produces a randomized script of cnt updates against g:
// deletions pick existing edges, insertions pick fresh non-edges. When
// dagSafe is true, insertions are constrained to respect a fixed topological
// order of g so the graph stays acyclic throughout (required by DAG-only
// dynamic indexes).
func UpdateScript(g *graph.Digraph, cnt int, dagSafe bool, seed int64) []UpdateOp {
	rng := rand.New(rand.NewSource(seed))
	edges := g.EdgeList()
	present := make(map[[2]graph.V]bool, len(edges))
	for _, e := range edges {
		present[[2]graph.V{e.From, e.To}] = true
	}
	var rank []uint32
	if dagSafe {
		rank = topoRank(g)
	}
	ops := make([]UpdateOp, 0, cnt)
	for len(ops) < cnt {
		if rng.Intn(2) == 0 && len(edges) > 0 {
			i := rng.Intn(len(edges))
			e := edges[i]
			edges[i] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			delete(present, [2]graph.V{e.From, e.To})
			ops = append(ops, UpdateOp{Insert: false, Edge: e})
		} else {
			u := graph.V(rng.Intn(g.N()))
			v := graph.V(rng.Intn(g.N()))
			if u == v || present[[2]graph.V{u, v}] {
				continue
			}
			if dagSafe && rank[u] > rank[v] {
				u, v = v, u
			}
			e := graph.Edge{From: u, To: v}
			present[[2]graph.V{u, v}] = true
			edges = append(edges, e)
			ops = append(ops, UpdateOp{Insert: true, Edge: e})
		}
	}
	return ops
}

func topoRank(g *graph.Digraph) []uint32 {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Succ(graph.V(v)) {
			indeg[w]++
		}
	}
	var queue []graph.V
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, graph.V(v))
		}
	}
	rank := make([]uint32, n)
	next := uint32(0)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		rank[v] = next
		next++
		for _, w := range g.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return rank
}
