// Graph analyzers: the structural statistics the index advisor
// (internal/advise) feeds its rule table. They live here, next to the
// generators, so the property tests can pin each feature against graphs
// whose shape is known by construction (Fig1, BandedDAG, ErdosRenyi, ...).
//
// All analyzers are deterministic, single-pass or sort-bounded, and take
// the immutable CSR graph as-is — no RNG, no allocation beyond the stats
// scratch.

package gen

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// DegreeStats summarizes one degree distribution (out- or in-). Percentiles
// use the nearest-rank-on-floor convention: P(q) = sorted[(len-1)*q/100],
// so P100 is the maximum and P0 the minimum; on a single-vertex graph all
// percentiles collapse to that vertex's degree.
type DegreeStats struct {
	Avg  float64 `json:"avg"` // M / N
	P50  int     `json:"p50"`
	P90  int     `json:"p90"`
	P99  int     `json:"p99"`
	Max  int     `json:"max"`
	Skew float64 `json:"skew"` // P99 / max(Avg, 1): ≈1 for regular graphs, large for heavy tails
}

// OutDegrees analyzes the out-degree distribution of g.
func OutDegrees(g *graph.Digraph) DegreeStats {
	return degreeStats(g, g.OutDegree)
}

// InDegrees analyzes the in-degree distribution of g.
func InDegrees(g *graph.Digraph) DegreeStats {
	return degreeStats(g, g.InDegree)
}

func degreeStats(g *graph.Digraph, deg func(graph.V) int) DegreeStats {
	n := g.N()
	if n == 0 {
		return DegreeStats{}
	}
	ds := make([]int, n)
	for v := 0; v < n; v++ {
		ds[v] = deg(graph.V(v))
	}
	sort.Ints(ds)
	pick := func(q int) int { return ds[(n-1)*q/100] }
	st := DegreeStats{
		Avg: float64(g.M()) / float64(n),
		P50: pick(50),
		P90: pick(90),
		P99: pick(99),
		Max: ds[n-1],
	}
	st.Skew = float64(st.P99) / math.Max(st.Avg, 1)
	return st
}

// LabelStats summarizes the edge-label distribution of a labeled graph.
// Entropy is normalized to [0, 1]: 1 means the labels are uniformly used,
// values near 0 mean almost all edges carry one label. For a plain graph
// (or one with fewer than two distinct labels in use) Entropy is 1 and
// TopShare is 1 iff any edges exist.
type LabelStats struct {
	Declared int     `json:"declared"`  // g.Labels(): the declared label universe
	Used     int     `json:"used"`      // labels appearing on at least one edge
	TopShare float64 `json:"top_share"` // share of edges carrying the most frequent label
	Entropy  float64 `json:"entropy"`   // H(label) / log2(Used), normalized; 1 if Used < 2
}

// AnalyzeLabels analyzes the edge-label distribution of g. On a plain
// graph it returns the degenerate single-label statistics.
func AnalyzeLabels(g *graph.Digraph) LabelStats {
	st := LabelStats{Declared: g.Labels(), Entropy: 1}
	if g.M() == 0 {
		return st
	}
	if !g.Labeled() {
		st.Used = 1
		st.TopShare = 1
		return st
	}
	counts := make([]int, g.Labels())
	g.Edges(func(e graph.Edge) bool {
		counts[e.Label]++
		return true
	})
	top, used := 0, 0
	for _, c := range counts {
		if c > 0 {
			used++
		}
		if c > top {
			top = c
		}
	}
	m := float64(g.M())
	st.Used = used
	st.TopShare = float64(top) / m
	if used >= 2 {
		h := 0.0
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := float64(c) / m
			h -= p * math.Log2(p)
		}
		st.Entropy = h / math.Log2(float64(used))
	}
	return st
}
