// Package gen generates the synthetic graphs and query workloads that stand
// in for the real-world datasets used across the surveyed papers (see
// DESIGN.md, "Substitutions"). All generators are deterministic given a
// seed. Graph families:
//
//   - RandomDAG: uniform random DAG with a given edge density (edges only go
//     from lower to higher id under a hidden permutation) — the standard
//     input of the plain-index literature.
//   - ErdosRenyi: uniform random digraph (cyclic in general), exercising the
//     SCC-condensation path.
//   - ScaleFree: preferential-attachment digraph with heavy-tailed degrees,
//     the regime where degree-ordered 2-hop labelings (DL/PLL/TOL) shine.
//   - LayeredDAG: DAG organized in layers with edges between adjacent
//     layers, the deep-and-narrow regime where interval indexes shine.
//   - TreePlus: a random tree plus k extra non-tree edges, the regime the
//     early tree-cover extensions (dual labeling, GRIPP, path-tree) target.
//
// Labeled counterparts assign labels from a Zipfian distribution, matching
// the skewed label frequencies of real edge-labeled graphs.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Config bundles the common generator parameters.
type Config struct {
	N    int   // number of vertices
	M    int   // number of edges (generators treat as a target)
	Seed int64 // RNG seed
}

// RandomDAG generates a uniform random DAG: each edge goes from a lower to
// a higher position in a hidden random permutation, so vertex ids carry no
// topological information (indexes must not cheat on id order).
func RandomDAG(cfg Config) *graph.Digraph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(cfg.N)
	b := graph.NewBuilder(cfg.N)
	for i := 0; i < cfg.M; i++ {
		u := rng.Intn(cfg.N)
		v := rng.Intn(cfg.N)
		for u == v {
			v = rng.Intn(cfg.N)
		}
		if perm[u] > perm[v] {
			u, v = v, u
		}
		b.AddEdge(graph.V(u), graph.V(v))
	}
	return b.MustFreeze()
}

// BandedDAG generates a random DAG with topological locality: a backbone
// path through a hidden random permutation plus cfg.M-(cfg.N-1) extra
// edges each spanning at most `band` positions of that permutation. Long
// paths exist but no single edge jumps far — the structure of workflow,
// call-graph, and road-network DAGs. The backbone makes reachability a
// total order, so every topological order of the graph coincides with
// the hidden permutation; partitioning by topological range
// (internal/shard) is then guaranteed a cut of at most ~band boundary
// vertices per split regardless of where the partitioner lands. Vertex
// ids carry no topological information.
func BandedDAG(cfg Config, band int) *graph.Digraph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if band < 1 {
		band = 1
	}
	// vertAt[p] = vertex at topological position p.
	vertAt := rng.Perm(cfg.N)
	b := graph.NewBuilder(cfg.N)
	for p := 0; p < cfg.N-1; p++ {
		b.AddEdge(graph.V(vertAt[p]), graph.V(vertAt[p+1]))
	}
	for i := cfg.N - 1; i < cfg.M; i++ {
		p := rng.Intn(cfg.N - 1)
		span := band
		if left := cfg.N - 1 - p; span > left {
			span = left
		}
		d := 1 + rng.Intn(span)
		b.AddEdge(graph.V(vertAt[p]), graph.V(vertAt[p+d]))
	}
	return b.MustFreeze()
}

// ErdosRenyi generates a uniform random digraph with cfg.M edges (self
// loops excluded, duplicates deduplicated by Freeze). Generally cyclic.
func ErdosRenyi(cfg Config) *graph.Digraph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(cfg.N)
	for i := 0; i < cfg.M; i++ {
		u := rng.Intn(cfg.N)
		v := rng.Intn(cfg.N)
		for u == v {
			v = rng.Intn(cfg.N)
		}
		b.AddEdge(graph.V(u), graph.V(v))
	}
	return b.MustFreeze()
}

// ScaleFree generates a preferential-attachment digraph: vertices arrive in
// random order; each new vertex draws outDeg targets among earlier vertices
// with probability proportional to their current degree + 1. Direction goes
// from the newer to the older vertex under a hidden permutation, so the
// result is a DAG with a heavy-tailed in-degree distribution.
func ScaleFree(n, outDeg int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n) // perm[i] = actual vertex id of the i-th arrival
	b := graph.NewBuilder(n)
	// endpoints holds one entry per edge endpoint for degree-proportional
	// sampling, plus every vertex once (the +1 smoothing).
	endpoints := make([]int, 0, n*(outDeg+1))
	endpoints = append(endpoints, 0)
	for i := 1; i < n; i++ {
		for d := 0; d < outDeg && d < i; d++ {
			t := endpoints[rng.Intn(len(endpoints))]
			if t == i {
				continue
			}
			b.AddEdge(graph.V(perm[i]), graph.V(perm[t]))
			endpoints = append(endpoints, t)
		}
		endpoints = append(endpoints, i)
	}
	return b.MustFreeze()
}

// LayeredDAG generates a DAG with the given number of layers of equal
// width; each vertex gets fanout edges to uniformly chosen vertices in the
// next layer.
func LayeredDAG(layers, width, fanout int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	n := layers * width
	b := graph.NewBuilder(n)
	id := func(layer, i int) graph.V { return graph.V(layer*width + i) }
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for f := 0; f < fanout; f++ {
				b.AddEdge(id(l, i), id(l+1, rng.Intn(width)))
			}
		}
	}
	return b.MustFreeze()
}

// TreePlus generates a random rooted tree over n vertices plus extra
// additional forward edges (from a vertex to a non-ancestor handled by
// random pair; cycles avoided by ordering on depth-first ids). This is the
// sparse-non-tree-edge regime targeted by dual labeling and path-tree.
func TreePlus(n, extra int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		parent := rng.Intn(v)
		b.AddEdge(graph.V(parent), graph.V(v))
	}
	// Extra edges from lower to higher id keep the graph acyclic (vertex v
	// only has ancestors among 0..v-1 by construction).
	for i := 0; i < extra; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		b.AddEdge(graph.V(u), graph.V(v))
	}
	return b.MustFreeze()
}

// Zipf assigns each edge of g a label in [0, labels) drawn from a Zipfian
// distribution with exponent s (s=1 is the classic skew; s=0 degenerates to
// uniform), returning a labeled copy.
func Zipf(g *graph.Digraph, labels int, s float64, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	// Precompute the cumulative distribution.
	weights := make([]float64, labels)
	total := 0.0
	for i := range weights {
		w := 1.0
		if s > 0 {
			w = 1.0 / math.Pow(float64(i+1), s)
		}
		weights[i] = w
		total += w
	}
	cum := make([]float64, labels)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	draw := func() graph.Label {
		x := rng.Float64()
		for i, c := range cum {
			if x <= c {
				return graph.Label(i)
			}
		}
		return graph.Label(labels - 1)
	}
	b := graph.NewLabeledBuilder(g.N())
	b.ReserveLabels(labels)
	g.Edges(func(e graph.Edge) bool {
		b.AddLabeledEdge(e.From, e.To, draw())
		return true
	})
	return b.MustFreeze()
}

// UniformLabels assigns uniform random labels; convenience for tests.
func UniformLabels(g *graph.Digraph, labels int, seed int64) *graph.Digraph {
	return Zipf(g, labels, 0, seed)
}
