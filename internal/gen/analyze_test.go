package gen

import (
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
)

// refDegreeStats recomputes DegreeStats from first principles (an
// independent code path) so the analyzer can be checked on arbitrary
// generated graphs, not just hand-counted ones.
func refDegreeStats(g *graph.Digraph, out bool) DegreeStats {
	ds := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		if out {
			ds[v] = len(g.Succ(graph.V(v)))
		} else {
			ds[v] = len(g.Pred(graph.V(v)))
		}
	}
	sort.Ints(ds)
	n := len(ds)
	st := DegreeStats{
		Avg: float64(g.M()) / float64(n),
		P50: ds[(n-1)*50/100],
		P90: ds[(n-1)*90/100],
		P99: ds[(n-1)*99/100],
		Max: ds[n-1],
	}
	st.Skew = float64(st.P99) / math.Max(st.Avg, 1)
	return st
}

func checkDegreeInvariants(t *testing.T, name string, g *graph.Digraph, st DegreeStats) {
	t.Helper()
	if st.P50 > st.P90 || st.P90 > st.P99 || st.P99 > st.Max {
		t.Fatalf("%s: percentiles not monotone: %+v", name, st)
	}
	if want := float64(g.M()) / float64(g.N()); st.Avg != want {
		t.Fatalf("%s: Avg = %v, want %v", name, st.Avg, want)
	}
	if st.Skew < 0 {
		t.Fatalf("%s: negative skew: %+v", name, st)
	}
}

func TestOutDegreesFig1(t *testing.T) {
	g := graph.Fig1Plain()
	st := OutDegrees(g)
	checkDegreeInvariants(t, "fig1", g, st)
	// Figure 1 has 9 vertices and 11 edges; the largest fan-out is A
	// (A→B, A→C, A→G: 3 edges) and the sinks have none.
	if st.Max != 3 {
		t.Fatalf("fig1 max out-degree = %d, want 3", st.Max)
	}
	if got := refDegreeStats(g, true); got != st {
		t.Fatalf("fig1 OutDegrees = %+v, reference = %+v", st, got)
	}
	if in := InDegrees(g); in != refDegreeStats(g, false) {
		t.Fatalf("fig1 InDegrees = %+v, reference = %+v", in, refDegreeStats(g, false))
	}
}

func TestDegreeStatsGenerated(t *testing.T) {
	cases := map[string]*graph.Digraph{
		"banded": BandedDAG(Config{N: 800, M: 3200, Seed: 5}, 32),
		"cyclic": ErdosRenyi(Config{N: 500, M: 2500, Seed: 9}),
		"scale":  ScaleFree(800, 4, 11),
	}
	for name, g := range cases {
		st := OutDegrees(g)
		checkDegreeInvariants(t, name, g, st)
		if got := refDegreeStats(g, true); got != st {
			t.Fatalf("%s: OutDegrees = %+v, reference = %+v", name, st, got)
		}
	}
	// The preferential-attachment graph must look heavier-tailed on the
	// in-side than the banded DAG, whose extra edges are uniform.
	if bs, ss := InDegrees(cases["banded"]), InDegrees(cases["scale"]); ss.Max <= bs.Max {
		t.Fatalf("scale-free in-degree tail (%d) not heavier than banded (%d)", ss.Max, bs.Max)
	}
}

func TestAnalyzeLabels(t *testing.T) {
	base := RandomDAG(Config{N: 600, M: 3000, Seed: 3})

	plain := AnalyzeLabels(base)
	if plain.Used != 1 || plain.TopShare != 1 || plain.Entropy != 1 {
		t.Fatalf("plain graph labels = %+v, want degenerate single-label stats", plain)
	}

	uni := AnalyzeLabels(UniformLabels(base, 8, 17))
	skew := AnalyzeLabels(Zipf(base, 8, 1.5, 17))
	if uni.Declared != 8 || skew.Declared != 8 {
		t.Fatalf("declared labels: uniform=%d zipf=%d, want 8", uni.Declared, skew.Declared)
	}
	if uni.Used != 8 {
		t.Fatalf("uniform labels used = %d, want 8", uni.Used)
	}
	// Zipf s=1.5 concentrates mass on label 0: its top share must beat
	// uniform by a wide margin and its entropy must be visibly lower.
	if skew.TopShare <= uni.TopShare+0.2 {
		t.Fatalf("zipf top share %v not clearly above uniform %v", skew.TopShare, uni.TopShare)
	}
	if skew.Entropy >= uni.Entropy {
		t.Fatalf("zipf entropy %v not below uniform %v", skew.Entropy, uni.Entropy)
	}
	if uni.Entropy < 0.95 || uni.Entropy > 1 {
		t.Fatalf("uniform entropy = %v, want ≈1", uni.Entropy)
	}

	// Entropy and TopShare are distribution properties: re-labeling the
	// same graph with a different seed must not move them much.
	again := AnalyzeLabels(Zipf(base, 8, 1.5, 99))
	if math.Abs(again.TopShare-skew.TopShare) > 0.1 {
		t.Fatalf("zipf top share unstable across seeds: %v vs %v", again.TopShare, skew.TopShare)
	}

	lab := AnalyzeLabels(graph.Fig1Labeled())
	if lab.Used < 2 || lab.Entropy <= 0 || lab.Entropy > 1 {
		t.Fatalf("fig1 labeled stats out of range: %+v", lab)
	}
}
