package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/traversal"
)

func TestRandomDAGAcyclic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := RandomDAG(Config{N: 500, M: 2500, Seed: seed})
		if !order.IsDAG(g) {
			t.Fatalf("seed %d: RandomDAG is cyclic", seed)
		}
		if g.N() != 500 {
			t.Fatalf("N = %d", g.N())
		}
	}
}

func TestRandomDAGDeterministic(t *testing.T) {
	a := RandomDAG(Config{N: 100, M: 300, Seed: 42})
	b := RandomDAG(Config{N: 100, M: 300, Seed: 42})
	if a.M() != b.M() {
		t.Fatal("same seed, different graphs")
	}
	ea, eb := a.EdgeList(), b.EdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed, different edges")
		}
	}
}

func TestScaleFreeDAGAndSkew(t *testing.T) {
	g := ScaleFree(2000, 3, 7)
	if !order.IsDAG(g) {
		t.Fatal("ScaleFree is cyclic")
	}
	// Heavy tail: the max in-degree should far exceed the mean.
	maxIn, sumIn := 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.InDegree(graph.V(v))
		sumIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(sumIn) / float64(g.N())
	if float64(maxIn) < 8*mean {
		t.Errorf("max in-degree %d not heavy-tailed vs mean %.2f", maxIn, mean)
	}
}

func TestLayeredDAGStructure(t *testing.T) {
	g := LayeredDAG(10, 20, 3, 1)
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	if !order.IsDAG(g) {
		t.Fatal("layered graph cyclic")
	}
	g.Edges(func(e graph.Edge) bool {
		if int(e.To)/20 != int(e.From)/20+1 {
			t.Fatalf("edge %d->%d crosses non-adjacent layers", e.From, e.To)
		}
		return true
	})
}

func TestTreePlusAcyclic(t *testing.T) {
	g := TreePlus(1000, 50, 3)
	if !order.IsDAG(g) {
		t.Fatal("TreePlus is cyclic")
	}
	// A tree over n vertices has n-1 edges; extras may dedup, so M is in
	// (n-1, n-1+extra].
	if g.M() < 999 || g.M() > 1049 {
		t.Fatalf("M = %d out of range", g.M())
	}
	// Connectivity from root: every vertex reachable from 0.
	if traversal.ReachableFrom(g, 0).Count() != g.N() {
		t.Fatal("tree not rooted at 0")
	}
}

func TestBandedDAGBackboneTotalOrder(t *testing.T) {
	const n = 300
	g := BandedDAG(Config{N: n, M: 4 * n, Seed: 4}, 25)
	if !order.IsDAG(g) {
		t.Fatal("BandedDAG is cyclic")
	}
	if g.N() != n || g.M() > 4*n {
		t.Fatalf("size %d/%d out of range", g.N(), g.M())
	}
	// The backbone makes reachability a total order: every ordered pair
	// is comparable in exactly one direction, so the closure sizes sum
	// to n(n+1)/2 (each vertex reaches itself plus everything later).
	sum := 0
	for v := 0; v < n; v++ {
		sum += traversal.ReachableFrom(g, graph.V(v)).Count()
	}
	if want := n * (n + 1) / 2; sum != want {
		t.Fatalf("closure mass %d, want %d (reachability is not a total order)", sum, want)
	}
	// Determinism: same seed, same graph.
	h := BandedDAG(Config{N: n, M: 4 * n, Seed: 4}, 25)
	ea, eb := g.EdgeList(), h.EdgeList()
	if len(ea) != len(eb) {
		t.Fatal("same seed, different edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed, different edges")
		}
	}
}

func TestZipfLabels(t *testing.T) {
	g := Zipf(RandomDAG(Config{N: 500, M: 3000, Seed: 1}), 8, 1.0, 2)
	if !g.Labeled() || g.Labels() != 8 {
		t.Fatalf("labels = %d", g.Labels())
	}
	counts := make([]int, 8)
	g.Edges(func(e graph.Edge) bool { counts[e.Label]++; return true })
	// Zipf skew: label 0 must dominate label 7.
	if counts[0] < 3*counts[7] {
		t.Errorf("no Zipf skew: counts %v", counts)
	}
}

func TestUniformLabels(t *testing.T) {
	g := UniformLabels(RandomDAG(Config{N: 400, M: 4000, Seed: 1}), 4, 9)
	counts := make([]int, 4)
	g.Edges(func(e graph.Edge) bool { counts[e.Label]++; return true })
	for l, c := range counts {
		if c < g.M()/8 {
			t.Errorf("label %d count %d too small for uniform", l, c)
		}
	}
}

func TestQueriesGroundTruth(t *testing.T) {
	g := RandomDAG(Config{N: 100, M: 300, Seed: 5})
	qs := Queries(g, 200, 6)
	for _, q := range qs {
		if got := traversal.BFS(g, q.S, q.T); got != q.Want {
			t.Fatalf("query (%d,%d) ground truth %v, BFS %v", q.S, q.T, q.Want, got)
		}
	}
}

func TestQueriesWithRatio(t *testing.T) {
	g := RandomDAG(Config{N: 200, M: 800, Seed: 5})
	qs := QueriesWithRatio(g, 300, 0.5, 7)
	if len(qs) != 300 {
		t.Fatalf("got %d queries", len(qs))
	}
	pos := 0
	for _, q := range qs {
		if got := traversal.BFS(g, q.S, q.T); got != q.Want {
			t.Fatalf("wrong ground truth for (%d,%d)", q.S, q.T)
		}
		if q.Want {
			pos++
		}
	}
	if pos < 60 || pos > 240 {
		t.Errorf("positive count %d far from requested ratio", pos)
	}
}

func TestLCRQueriesGroundTruth(t *testing.T) {
	g := Zipf(ErdosRenyi(Config{N: 80, M: 320, Seed: 2}), 6, 0.5, 3)
	qs := LCRQueries(g, 100, 4)
	for _, q := range qs {
		if got := traversal.LabelConstrainedBFS(g, q.S, q.T, q.Allowed); got != q.Want {
			t.Fatalf("LCR ground truth mismatch for (%d,%d,%b)", q.S, q.T, q.Allowed)
		}
		if q.Allowed == 0 {
			t.Fatal("empty allowed mask generated")
		}
	}
}

func TestUpdateScriptDAGSafe(t *testing.T) {
	g := RandomDAG(Config{N: 100, M: 400, Seed: 8})
	ops := UpdateScript(g, 200, true, 9)
	if len(ops) != 200 {
		t.Fatalf("got %d ops", len(ops))
	}
	// Replay the script; graph must stay a DAG after every insert and all
	// deletes must hit existing edges.
	b := graph.Mutate(g)
	for i, op := range ops {
		if op.Insert {
			b.AddEdge(op.Edge.From, op.Edge.To)
		} else {
			if !b.RemoveEdge(op.Edge) {
				t.Fatalf("op %d deletes missing edge %v", i, op.Edge)
			}
		}
	}
	if !order.IsDAG(b.MustFreeze()) {
		t.Fatal("script broke acyclicity")
	}
}
