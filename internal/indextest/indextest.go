// Package indextest provides the shared conformance harness used by every
// index package's tests: a standard suite of graphs (Figure 1 plus all
// generator families) and exhaustive/randomized cross-validation against
// the exact oracles in internal/tc.
package indextest

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labelset"
	"repro/internal/tc"
)

// DAGSuite returns the standard acyclic test graphs, small enough for
// all-pairs validation.
func DAGSuite() map[string]*graph.Digraph {
	return map[string]*graph.Digraph{
		"fig1":       graph.Fig1Plain(),
		"empty":      graph.FromEdges(1, nil),
		"isolated":   graph.FromEdges(8, nil),
		"line":       line(40),
		"diamonds":   diamonds(10),
		"dag-sparse": gen.RandomDAG(gen.Config{N: 120, M: 180, Seed: 1}),
		"dag-dense":  gen.RandomDAG(gen.Config{N: 80, M: 600, Seed: 2}),
		"scalefree":  gen.ScaleFree(150, 2, 3),
		"layered":    gen.LayeredDAG(6, 15, 2, 4),
		"treeplus":   gen.TreePlus(120, 25, 5),
		"forest":     forest(),
	}
}

// CyclicSuite returns general (cyclic) test graphs.
func CyclicSuite() map[string]*graph.Digraph {
	return map[string]*graph.Digraph{
		"er-1":     gen.ErdosRenyi(gen.Config{N: 90, M: 270, Seed: 1}),
		"er-2":     gen.ErdosRenyi(gen.Config{N: 60, M: 400, Seed: 2}),
		"cycle":    cycle(30),
		"two-sccs": twoSCCs(),
	}
}

func line(n int) *graph.Digraph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	return b.MustFreeze()
}

func cycle(n int) *graph.Digraph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.V(i), graph.V((i+1)%n))
	}
	return b.MustFreeze()
}

// diamonds chains k diamond gadgets: i -> {2 mids} -> i+3.
func diamonds(k int) *graph.Digraph {
	b := graph.NewBuilder(0)
	prev := b.AddVertex()
	for i := 0; i < k; i++ {
		m1, m2, bot := b.AddVertex(), b.AddVertex(), b.AddVertex()
		b.AddEdge(prev, m1)
		b.AddEdge(prev, m2)
		b.AddEdge(m1, bot)
		b.AddEdge(m2, bot)
		prev = bot
	}
	return b.MustFreeze()
}

func forest() *graph.Digraph {
	// Two disjoint trees plus cross edges within one of them.
	b := graph.NewBuilder(0)
	for _, e := range [][2]graph.V{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {5, 6}, {6, 7}, {5, 7}} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustFreeze()
}

func twoSCCs() *graph.Digraph {
	b := graph.NewBuilder(6)
	// SCC {0,1,2} -> SCC {3,4} -> 5
	for _, e := range [][2]graph.V{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 3}, {4, 5}} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustFreeze()
}

// CheckDAGIndex validates a DAG-only index builder: exhaustive all-pairs
// agreement with the transitive closure on every DAG in the suite, and —
// lifted through core.ForGeneral — on every cyclic graph too.
func CheckDAGIndex(t *testing.T, build core.DAGBuilder) {
	t.Helper()
	for name, g := range DAGSuite() {
		checkAllPairs(t, name, build(g), g)
	}
	for name, g := range CyclicSuite() {
		checkAllPairs(t, name, core.ForGeneral(g, build), g)
	}
}

// CheckGeneralIndex validates an index builder that accepts general graphs
// directly.
func CheckGeneralIndex(t *testing.T, build func(*graph.Digraph) core.Index) {
	t.Helper()
	for name, g := range DAGSuite() {
		checkAllPairs(t, name, build(g), g)
	}
	for name, g := range CyclicSuite() {
		checkAllPairs(t, name, build(g), g)
	}
}

func checkAllPairs(t *testing.T, name string, ix core.Index, g *graph.Digraph) {
	t.Helper()
	oracle := tc.NewClosure(g)
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			want := oracle.Reach(s, tt)
			if got := ix.Reach(s, tt); got != want {
				t.Fatalf("%s[%s]: Reach(%d,%d) = %v, want %v",
					ix.Name(), name, s, tt, got, want)
			}
		}
	}
	if st := ix.Stats(); st.Bytes < 0 || st.Entries < 0 {
		t.Errorf("%s[%s]: negative stats %+v", ix.Name(), name, st)
	}
}

// CheckPartialSoundness verifies the §5 contract of a partial index's
// lookup-only answers: every decided TryReach answer matches ground truth
// (no false negatives AND no false positives among *decided* answers).
func CheckPartialSoundness(t *testing.T, build func(*graph.Digraph) core.Index) {
	t.Helper()
	for name, g := range DAGSuite() {
		ix, ok := build(g).(core.Partial)
		if !ok {
			t.Fatalf("%s: index is not core.Partial", name)
		}
		oracle := tc.NewClosure(g)
		decided, total := 0, 0
		for s := graph.V(0); int(s) < g.N(); s++ {
			for tt := graph.V(0); int(tt) < g.N(); tt++ {
				total++
				r, dec := ix.TryReach(s, tt)
				if !dec {
					continue
				}
				decided++
				if want := oracle.Reach(s, tt); r != want {
					t.Fatalf("%s[%s]: TryReach(%d,%d) decided %v, truth %v",
						ix.Name(), name, s, tt, r, want)
				}
			}
		}
		if decided == 0 && total > 1 && g.M() > 0 {
			t.Errorf("%s[%s]: partial index decided nothing", ix.Name(), name)
		}
	}
}

// CheckDynamic replays a randomized insert/delete script against a dynamic
// index, validating full agreement with a rebuilt oracle after every
// operation (on a sampled query set).
func CheckDynamic(t *testing.T, build func(*graph.Digraph) core.Dynamic, dagSafe bool, ops, queriesPerOp int) {
	t.Helper()
	var g *graph.Digraph
	if dagSafe {
		g = gen.RandomDAG(gen.Config{N: 60, M: 150, Seed: 10})
	} else {
		g = gen.ErdosRenyi(gen.Config{N: 60, M: 150, Seed: 10})
	}
	ix := build(g)
	script := gen.UpdateScript(g, ops, dagSafe, 11)
	rng := rand.New(rand.NewSource(12))
	cur := graph.Mutate(g)
	for i, op := range script {
		var err error
		if op.Insert {
			cur.AddEdge(op.Edge.From, op.Edge.To)
			err = ix.InsertEdge(op.Edge.From, op.Edge.To)
		} else {
			cur.RemoveEdge(op.Edge)
			err = ix.DeleteEdge(op.Edge.From, op.Edge.To)
		}
		if err != nil {
			t.Fatalf("op %d (%+v): %v", i, op, err)
		}
		snapshot := cur.MustFreeze()
		oracle := tc.NewClosure(snapshot)
		for q := 0; q < queriesPerOp; q++ {
			s := graph.V(rng.Intn(snapshot.N()))
			tt := graph.V(rng.Intn(snapshot.N()))
			if got, want := ix.Reach(s, tt), oracle.Reach(s, tt); got != want {
				t.Fatalf("%s: after op %d (%+v): Reach(%d,%d) = %v, want %v",
					ix.Name(), i, op, s, tt, got, want)
			}
		}
		cur = graph.Mutate(snapshot)
	}
}

// LabeledSuite returns labeled test graphs for the LCR/RLC indexes.
func LabeledSuite() map[string]*graph.Digraph {
	return map[string]*graph.Digraph{
		"fig1":      graph.Fig1Labeled(),
		"er-L4":     gen.Zipf(gen.ErdosRenyi(gen.Config{N: 50, M: 200, Seed: 1}), 4, 0.8, 2),
		"er-L8":     gen.Zipf(gen.ErdosRenyi(gen.Config{N: 40, M: 160, Seed: 3}), 8, 1.0, 4),
		"dag-L4":    gen.Zipf(gen.RandomDAG(gen.Config{N: 60, M: 180, Seed: 5}), 4, 0, 6),
		"sparse-L2": gen.Zipf(gen.RandomDAG(gen.Config{N: 70, M: 100, Seed: 7}), 2, 0, 8),
	}
}

// CheckLCRIndex validates an LCR index against the exact GTC on every
// labeled suite graph, over exhaustive pairs with randomized label masks.
func CheckLCRIndex(t *testing.T, build func(*graph.Digraph) core.LCRIndex) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for name, g := range LabeledSuite() {
		ix := build(g)
		oracle := tc.NewGTC(g)
		L := g.Labels()
		for s := graph.V(0); int(s) < g.N(); s++ {
			for tt := graph.V(0); int(tt) < g.N(); tt++ {
				for k := 0; k < 3; k++ {
					mask := labelset.Set(rng.Int63n(1 << uint(L)))
					want := s == tt || oracle.ReachLC(s, tt, mask)
					if got := ix.ReachLC(s, tt, mask); got != want {
						t.Fatalf("%s[%s]: ReachLC(%d,%d,%b) = %v, want %v",
							ix.Name(), name, s, tt, mask, got, want)
					}
				}
			}
		}
	}
}

// CheckRLCIndex validates an RLC index against product-BFS ground truth
// with randomized short label sequences.
func CheckRLCIndex(t *testing.T, build func(*graph.Digraph, int) core.RLCIndex, maxSeq int) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	for name, g := range LabeledSuite() {
		ix := build(g, maxSeq)
		L := g.Labels()
		for q := 0; q < 1500; q++ {
			s := graph.V(rng.Intn(g.N()))
			tt := graph.V(rng.Intn(g.N()))
			seqLen := 1 + rng.Intn(maxSeq)
			seq := make([]graph.Label, seqLen)
			for i := range seq {
				seq[i] = graph.Label(rng.Intn(L))
			}
			want := tc.RLCReach(g, s, tt, seq, false)
			if got := ix.ReachRLC(s, tt, seq); got != want {
				t.Fatalf("%s[%s]: ReachRLC(%d,%d,%v) = %v, want %v",
					ix.Name(), name, s, tt, seq, got, want)
			}
		}
	}
}
