// Package workload captures and replays query traces: the per-request
// record stream behind DBConfig.RecordWorkload, `reachserve -record`,
// and `reachcli replay`. A capture is what the survey's cost taxonomy
// needs to be actionable — which index wins depends on the workload's
// query-class mix, decided-rate, and fallback cost, so the workload has
// to be a recordable, replayable artifact, not a guess. The same format
// is the input the workload-adaptive index advisor (ROADMAP item 5)
// consumes.
//
// On disk a capture is an internal/persist container (format
// "reach-workload") holding a run of "batch" sections, each a
// length-prefixed pack of records. Batching amortizes the container's
// per-section framing; the Recorder flushes every flushEvery records and
// on Flush/Close, and buffers each section fully before writing, so a
// torn tail from a crash surfaces as a decode error instead of silently
// dropping queries mid-record.
package workload

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/persist"
)

// Format and Version identify the capture container. Version 2 packs a
// cached bit alongside the outcome (bit 1 of the same word); version-1
// captures decode through the same path since they only ever wrote 0/1.
const (
	Format  = "reach-workload"
	Version = 2
)

// Record is one completed query: the inputs needed to re-run it
// exactly, plus the route, outcome, and latency observed at capture
// time. Exactly one of the query shapes applies: Labels non-empty means
// a QueryAllowed label-mask query, else Alpha non-empty means a
// path-constrained Query, else a plain Reach. Cached marks a query that
// was answered from the result cache at capture time — its latency is a
// cache-hit latency, not an index-probe latency, so replay scoring
// (the advisor's evaluator) must skip it.
type Record struct {
	S, T    uint32
	Alpha   string
	Labels  []uint16
	Route   string
	Outcome bool
	Cached  bool
	Latency time.Duration
}

// flushEvery is the records buffered per on-disk batch section.
const flushEvery = 256

// Recorder appends records to one capture stream. Safe for concurrent
// use — the query paths of a serving DB all funnel here — with one
// short critical section per record (encoding happens at flush).
type Recorder struct {
	mu  sync.Mutex
	pw  *persist.Writer
	buf []Record
	n   int64
}

// NewRecorder starts a capture on w (the container header is written
// immediately). The caller owns w and must call Close to flush.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{pw: persist.NewWriter(w, Format, Version)}
}

// Record appends one record, flushing a batch section when the buffer
// fills. Write errors are sticky in the underlying persist.Writer and
// surface on Flush/Close.
func (r *Recorder) Record(rec Record) {
	r.mu.Lock()
	r.buf = append(r.buf, rec)
	r.n++
	if len(r.buf) >= flushEvery {
		r.flushLocked()
	}
	r.mu.Unlock()
}

// Count reports the records appended so far.
func (r *Recorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func (r *Recorder) flushLocked() {
	if len(r.buf) == 0 {
		return
	}
	recs := r.buf
	r.pw.Section("batch", func(e *persist.Encoder) {
		e.U32(uint32(len(recs)))
		for i := range recs {
			rec := &recs[i]
			e.U32(rec.S)
			e.U32(rec.T)
			e.String(rec.Alpha)
			labels := make([]uint32, len(rec.Labels))
			for j, l := range rec.Labels {
				labels[j] = uint32(l)
			}
			e.U32s(labels)
			e.String(rec.Route)
			out := uint32(0)
			if rec.Outcome {
				out |= 1
			}
			if rec.Cached {
				out |= 2
			}
			e.U32(out)
			e.U64(uint64(rec.Latency))
		}
	})
	r.buf = r.buf[:0]
}

// Flush writes any buffered records out as a batch section and reports
// the first underlying write error.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	_, err := r.pw.Flush()
	return err
}

// Close flushes and finalizes the capture, returning the first error
// seen anywhere in the stream. The Recorder must not be used after.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	_, err := r.pw.Close()
	return err
}

// Read decodes an entire capture. Malformed or truncated input is an
// error, never a panic (the persist decoder bounds every allocation).
func Read(rd io.Reader) ([]Record, error) {
	pr, err := persist.NewReader(rd, Format, Version)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		name, dec, err := pr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if name != "batch" {
			return nil, fmt.Errorf("workload: unexpected section %q", name)
		}
		n := dec.U32()
		for i := uint32(0); i < n; i++ {
			rec := Record{
				S:     dec.U32(),
				T:     dec.U32(),
				Alpha: dec.String(),
			}
			raw := dec.U32s()
			if len(raw) > 0 {
				rec.Labels = make([]uint16, len(raw))
				for j, l := range raw {
					rec.Labels[j] = uint16(l)
				}
			}
			rec.Route = dec.String()
			flags := dec.U32()
			rec.Outcome = flags&1 != 0
			rec.Cached = flags&2 != 0
			rec.Latency = time.Duration(dec.U64())
			if err := dec.Err(); err != nil {
				return nil, err
			}
			out = append(out, rec)
		}
		if err := dec.Close(); err != nil {
			return nil, err
		}
	}
}
