package workload

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/persist"
)

func sampleRecord(i int) Record {
	rec := Record{
		S:       uint32(i),
		T:       uint32(i * 7),
		Route:   fmt.Sprintf("route-%d", i%3),
		Outcome: i%2 == 0,
		Cached:  i%5 == 0,
		Latency: time.Duration(i) * time.Microsecond,
	}
	switch i % 3 {
	case 1:
		rec.Alpha = "(knows|likes)*"
	case 2:
		rec.Labels = []uint16{uint16(i % 5), uint16(i % 11)}
	}
	return rec
}

func TestRoundTrip(t *testing.T) {
	// More than two flush batches plus a partial tail, so the read path
	// crosses section boundaries and handles the Close-time flush.
	const n = flushEvery*2 + 37
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	want := make([]Record, n)
	for i := range want {
		want[i] = sampleRecord(i)
		rec.Record(want[i])
	}
	if got := rec.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty capture decoded %d records", len(got))
	}
}

func TestTruncatedCapture(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for i := 0; i < flushEvery+5; i++ {
		rec.Record(sampleRecord(i))
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full := buf.Bytes()
	const n = flushEvery + 5
	// A strict prefix must never panic and never decode the full record
	// count: a cut at a batch boundary legitimately reads as a shorter
	// capture, and every mid-section cut must surface an error.
	for cut := len(full) - 1; cut > 0; cut -= 7 {
		got, err := Read(bytes.NewReader(full[:cut]))
		if err == nil && len(got) >= n {
			t.Fatalf("truncation at %d/%d bytes decoded all %d records cleanly", cut, len(full), n)
		}
	}
}

func TestReadVersion1(t *testing.T) {
	// A version-1 capture (no cached bit; the outcome word is strictly
	// 0/1) must keep decoding: bit 1 was never set, so Cached reads as
	// false on every record.
	var buf bytes.Buffer
	pw := persist.NewWriter(&buf, Format, 1)
	pw.Section("batch", func(e *persist.Encoder) {
		e.U32(2)
		for _, out := range []uint32{1, 0} {
			e.U32(3)
			e.U32(4)
			e.String("")
			e.U32s(nil)
			e.String("plain")
			e.U32(out)
			e.U64(uint64(5 * time.Microsecond))
		}
	})
	if _, err := pw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read v1: %v", err)
	}
	if len(got) != 2 || !got[0].Outcome || got[0].Cached || got[1].Outcome || got[1].Cached {
		t.Fatalf("v1 decode = %+v", got)
	}
}

func TestGarbageInput(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a capture at all"))); err == nil {
		t.Fatal("garbage input decoded cleanly")
	}
}

func TestConcurrentRecord(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.Record(sampleRecord(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != workers*per {
		t.Fatalf("read %d records, want %d", len(got), workers*per)
	}
}
