package order

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestTopologicalDAG(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 500, M: 2000, Seed: 1})
	topo, ok := Topological(g)
	if !ok {
		t.Fatal("RandomDAG reported cyclic")
	}
	rank := Rank(topo)
	g.Edges(func(e graph.Edge) bool {
		if rank[e.From] >= rank[e.To] {
			t.Fatalf("edge %d->%d violates topo order", e.From, e.To)
		}
		return true
	})
}

func TestTopologicalCycle(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}, {2, 0}})
	if _, ok := Topological(g); ok {
		t.Fatal("cycle not detected")
	}
	if IsDAG(g) {
		t.Fatal("IsDAG true on cycle")
	}
}

func TestLevels(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3: levels 0,1,1,2.
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	lev, count := Levels(g)
	want := []uint32{0, 1, 1, 2}
	for v, w := range want {
		if lev[v] != w {
			t.Errorf("level(%d) = %d, want %d", v, lev[v], w)
		}
	}
	if count != 3 {
		t.Errorf("levels = %d, want 3", count)
	}
}

func TestLevelsMonotoneOnEdges(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 300, M: 900, Seed: 5})
	lev, _ := Levels(g)
	g.Edges(func(e graph.Edge) bool {
		if lev[e.From] >= lev[e.To] {
			t.Fatalf("edge %d->%d: levels %d >= %d", e.From, e.To, lev[e.From], lev[e.To])
		}
		return true
	})
}

func TestByDegreeDesc(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	vs := ByDegreeDesc(g)
	if vs[0] != 0 {
		t.Fatalf("highest degree vertex should be 0, got %d", vs[0])
	}
	// Verify it is a permutation.
	seen := make(map[graph.V]bool)
	for _, v := range vs {
		if seen[v] {
			t.Fatal("duplicate in order")
		}
		seen[v] = true
	}
	if len(seen) != g.N() {
		t.Fatal("order is not a permutation")
	}
}

func TestByDegreeProductDesc(t *testing.T) {
	// Vertex 1 has in=1 out=2 -> product (1+1)*(2+1)=6, tops.
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {1, 3}})
	vs := ByDegreeProductDesc(g)
	if vs[0] != 1 {
		t.Fatalf("top product vertex = %d, want 1", vs[0])
	}
}

func TestRandomOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vs := Random(100, rng)
	seen := make(map[graph.V]bool)
	for _, v := range vs {
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatal("not a permutation")
	}
}

func TestDFSForestIntervals(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 400, M: 1000, Seed: 2})
	p := DFSForest(g, Sources(g), nil)
	// Interval invariants: Min <= Post, all post numbers distinct, and the
	// parent's interval contains the child's.
	seen := make(map[uint32]bool)
	for v := 0; v < g.N(); v++ {
		if p.Min[v] > p.Post[v] {
			t.Fatalf("vertex %d: Min %d > Post %d", v, p.Min[v], p.Post[v])
		}
		if seen[p.Post[v]] {
			t.Fatalf("duplicate post number %d", p.Post[v])
		}
		seen[p.Post[v]] = true
	}
	for v := 0; v < g.N(); v++ {
		par := p.Parent[graph.V(v)]
		if par == graph.V(v) {
			continue
		}
		if !(p.Min[par] <= p.Min[v] && p.Post[v] <= p.Post[par]) {
			t.Fatalf("child %d interval [%d,%d] not inside parent %d interval [%d,%d]",
				v, p.Min[v], p.Post[v], par, p.Min[par], p.Post[par])
		}
	}
}

func TestDFSForestContainsMatchesTreePaths(t *testing.T) {
	// On a pure tree, Contains(s, t) must equal "t in subtree of s".
	b := graph.NewBuilder(7)
	//        0
	//      /   \
	//     1     2
	//    / \     \
	//   3   4     5
	//              \
	//               6
	for _, e := range [][2]graph.V{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {5, 6}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustFreeze()
	p := DFSForest(g, []graph.V{0}, nil)
	inSubtree := map[[2]graph.V]bool{
		{0, 0}: true, {0, 1}: true, {0, 2}: true, {0, 3}: true, {0, 4}: true, {0, 5}: true, {0, 6}: true,
		{1, 1}: true, {1, 3}: true, {1, 4}: true,
		{2, 2}: true, {2, 5}: true, {2, 6}: true,
		{5, 5}: true, {5, 6}: true,
	}
	for s := graph.V(0); s < 7; s++ {
		for tt := graph.V(0); tt < 7; tt++ {
			want := inSubtree[[2]graph.V{s, tt}] || s == tt
			if got := p.Contains(s, tt); got != want {
				t.Errorf("Contains(%d,%d) = %v, want %v", s, tt, got, want)
			}
		}
	}
}

func TestDFSForestCoversAllVertices(t *testing.T) {
	// Even with roots that reach nothing, every vertex must get numbered.
	g := graph.FromEdges(5, [][2]graph.V{{3, 4}})
	p := DFSForest(g, []graph.V{0}, nil)
	seen := make(map[uint32]bool)
	for v := 0; v < 5; v++ {
		seen[p.Post[v]] = true
	}
	if len(seen) != 5 {
		t.Fatal("post numbers not distinct over all vertices")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {3, 2}})
	src := Sources(g)
	if len(src) != 2 || src[0] != 0 || src[1] != 3 {
		t.Errorf("Sources = %v", src)
	}
	snk := Sinks(g)
	if len(snk) != 1 || snk[0] != 2 {
		t.Errorf("Sinks = %v", snk)
	}
}
