// Package order provides vertex orderings and numberings used by the index
// families: Kahn topological sort and topological levels (TFL, Feline,
// PReaCH, O'Reach), degree orders (DL, PLL, P2H+, landmark selection),
// random orders (GRAIL's random spanning trees), and DFS pre/post interval
// numberings (the tree-cover family, BFL, PReaCH).
package order

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Topological returns a topological order of the DAG g (vertices before
// their successors) and reports false if g has a cycle.
func Topological(g *graph.Digraph) ([]graph.V, bool) {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Succ(graph.V(v)) {
			indeg[w]++
		}
	}
	queue := make([]graph.V, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, graph.V(v))
		}
	}
	out := make([]graph.V, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, w := range g.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return out, len(out) == n
}

// IsDAG reports whether g is acyclic.
func IsDAG(g *graph.Digraph) bool {
	_, ok := Topological(g)
	return ok
}

// Rank inverts an order: Rank(o)[v] = position of v in o.
func Rank(o []graph.V) []uint32 {
	r := make([]uint32, len(o))
	for i, v := range o {
		r[v] = uint32(i)
	}
	return r
}

// Levels returns the topological level of each vertex of a DAG: sources are
// level 0 and level(v) = 1 + max level over predecessors. The second return
// is the number of levels. Used as a cheap negative filter: if
// level(s) >= level(t) and s != t then t is unreachable from s... only when
// levels are computed forward; callers use it in that direction.
func Levels(g *graph.Digraph) ([]uint32, int) {
	topo, _ := Topological(g)
	lev := make([]uint32, g.N())
	max := uint32(0)
	for _, v := range topo {
		for _, w := range g.Succ(v) {
			if lev[v]+1 > lev[w] {
				lev[w] = lev[v] + 1
			}
		}
		if lev[v] > max {
			max = lev[v]
		}
	}
	return lev, int(max) + 1
}

// LevelBuckets groups the vertices of a DAG by topological level (see
// Levels), vertices in ascending id order within each bucket. No edge
// connects two vertices of the same bucket and every edge goes from a
// lower bucket to a strictly higher one, so the buckets are the schedule
// of a level-synchronized parallel sweep (par.Sweep): ascending for
// predecessor-propagation passes, Reversed for successor-propagation
// ones. All buckets share one backing array.
func LevelBuckets(g *graph.Digraph) [][]graph.V {
	lev, nl := Levels(g)
	counts := make([]int, nl)
	for _, l := range lev {
		counts[l]++
	}
	backing := make([]graph.V, g.N())
	buckets := make([][]graph.V, nl)
	off := 0
	for l, c := range counts {
		buckets[l] = backing[off : off : off+c]
		off += c
	}
	for v := 0; v < g.N(); v++ {
		l := lev[v]
		buckets[l] = append(buckets[l], graph.V(v))
	}
	return buckets
}

// Reversed returns a view of the buckets in reverse order (the backing
// per-bucket slices are shared, not copied).
func Reversed(buckets [][]graph.V) [][]graph.V {
	out := make([][]graph.V, len(buckets))
	for i := range buckets {
		out[i] = buckets[len(buckets)-1-i]
	}
	return out
}

// ByDegreeDesc returns the vertices sorted by total degree, highest first,
// ties broken by vertex id. This is the total order used by DL/PLL/P2H+.
func ByDegreeDesc(g *graph.Digraph) []graph.V {
	vs := make([]graph.V, g.N())
	for i := range vs {
		vs[i] = graph.V(i)
	}
	sort.Slice(vs, func(i, j int) bool {
		di, dj := g.Degree(vs[i]), g.Degree(vs[j])
		if di != dj {
			return di > dj
		}
		return vs[i] < vs[j]
	})
	return vs
}

// ByDegreeProductDesc orders by in-degree x out-degree (descending), the
// classic TOL/landmark ranking that prefers vertices lying on many paths.
func ByDegreeProductDesc(g *graph.Digraph) []graph.V {
	vs := make([]graph.V, g.N())
	for i := range vs {
		vs[i] = graph.V(i)
	}
	key := func(v graph.V) int { return (g.InDegree(v) + 1) * (g.OutDegree(v) + 1) }
	sort.Slice(vs, func(i, j int) bool {
		ki, kj := key(vs[i]), key(vs[j])
		if ki != kj {
			return ki > kj
		}
		return vs[i] < vs[j]
	})
	return vs
}

// Random returns a uniformly random permutation of the vertices.
func Random(n int, rng *rand.Rand) []graph.V {
	vs := make([]graph.V, n)
	for i := range vs {
		vs[i] = graph.V(i)
	}
	rng.Shuffle(n, func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
	return vs
}

// PostOrder holds DFS interval numbering of a spanning forest: for each
// vertex, Post[v] is its post-order number and Min[v] is the smallest
// post-order number in its subtree, so the subtree of v is exactly the
// vertices with post number in [Min[v], Post[v]]. Parent[v] is the spanning
// forest parent (self for roots). This is the §3.1 interval labeling for
// trees.
type PostOrder struct {
	Post   []uint32
	Min    []uint32
	Parent []graph.V
}

// Contains reports whether t lies in the subtree of s.
func (p *PostOrder) Contains(s, t graph.V) bool {
	return p.Min[s] <= p.Post[t] && p.Post[t] <= p.Post[s]
}

// DFSForest computes a spanning forest of the DAG g by depth-first search
// and its post-order interval numbering. Roots are tried in the given
// order; children are visited in the order their edges appear, optionally
// shuffled by rng (GRAIL's randomized spanning trees). The traversal is
// iterative.
func DFSForest(g *graph.Digraph, roots []graph.V, rng *rand.Rand) *PostOrder {
	n := g.N()
	p := &PostOrder{
		Post:   make([]uint32, n),
		Min:    make([]uint32, n),
		Parent: make([]graph.V, n),
	}
	visited := make([]bool, n)
	var counter uint32

	type frame struct {
		v    graph.V
		kids []graph.V
		ki   int
		min  uint32
	}
	var stack []frame

	push := func(v graph.V, parent graph.V) {
		visited[v] = true
		p.Parent[v] = parent
		kids := g.Succ(v)
		if rng != nil && len(kids) > 1 {
			shuffled := make([]graph.V, len(kids))
			copy(shuffled, kids)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			kids = shuffled
		}
		stack = append(stack, frame{v: v, kids: kids, min: ^uint32(0)})
	}

	for _, root := range roots {
		if visited[root] {
			continue
		}
		push(root, root)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ki < len(f.kids) {
				w := f.kids[f.ki]
				f.ki++
				if !visited[w] {
					push(w, f.v)
				}
				continue
			}
			// finish f.v
			post := counter
			counter++
			min := f.min
			if min == ^uint32(0) {
				min = post
			}
			p.Post[f.v] = post
			p.Min[f.v] = min
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				pf := &stack[len(stack)-1]
				if min < pf.min {
					pf.min = min
				}
			}
		}
	}
	// Any vertex not reached from the given roots becomes its own root.
	for v := 0; v < n; v++ {
		if !visited[v] {
			push(graph.V(v), graph.V(v))
			for len(stack) > 0 {
				f := &stack[len(stack)-1]
				if f.ki < len(f.kids) {
					w := f.kids[f.ki]
					f.ki++
					if !visited[w] {
						push(w, f.v)
					}
					continue
				}
				post := counter
				counter++
				min := f.min
				if min == ^uint32(0) {
					min = post
				}
				p.Post[f.v] = post
				p.Min[f.v] = min
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					pf := &stack[len(stack)-1]
					if min < pf.min {
						pf.min = min
					}
				}
			}
		}
	}
	return p
}

// Sources returns the vertices of g with in-degree zero, in id order.
// For a DAG these are the natural spanning-forest roots.
func Sources(g *graph.Digraph) []graph.V {
	var out []graph.V
	for v := 0; v < g.N(); v++ {
		if g.InDegree(graph.V(v)) == 0 {
			out = append(out, graph.V(v))
		}
	}
	return out
}

// Sinks returns the vertices of g with out-degree zero, in id order.
func Sinks(g *graph.Digraph) []graph.V {
	var out []graph.V
	for v := 0; v < g.N(); v++ {
		if g.OutDegree(graph.V(v)) == 0 {
			out = append(out, graph.V(v))
		}
	}
	return out
}
