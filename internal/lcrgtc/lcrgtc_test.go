package lcrgtc

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/labelset"
	"repro/internal/tc"
	"repro/internal/traversal"
)

func TestConformance(t *testing.T) {
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex { return New(g) })
}

func TestFig1DijkstraExample(t *testing.T) {
	// §4.1.2: from L, path p3 (worksFor only) dominates p4 (worksFor +
	// friendOf); the single-source GTC of L must store {worksFor} for H.
	g := graph.Fig1Labeled()
	ix := New(g)
	id := func(name string) graph.V {
		for v := 0; v < g.N(); v++ {
			if g.VertexName(graph.V(v)) == name {
				return graph.V(v)
			}
		}
		t.Fatalf("no vertex %q", name)
		return 0
	}
	worksFor := graph.Label(2)
	lh := ix.SPLS(id("L"), id("H"))
	if lh == nil || !lh.Has(labelset.Of(worksFor)) {
		t.Fatalf("SPLS(L,H) = %+v, want to contain {worksFor}", lh)
	}
	// p4's label set must not appear (dominated).
	if lh.Has(labelset.Of(worksFor, graph.Label(0))) {
		t.Error("dominated set {worksFor,friendOf} was materialized")
	}
}

func TestSPLSAntichains(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 40, M: 160, Seed: 1}), 5, 0.5, 2)
	ix := New(g)
	for s := 0; s < g.N(); s++ {
		for tt := 0; tt < g.N(); tt++ {
			if c := ix.SPLS(graph.V(s), graph.V(tt)); c != nil && !c.IsAntichain() {
				t.Fatalf("SPLS(%d,%d) not an antichain", s, tt)
			}
		}
	}
}

func TestDynamicUpdates(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 30, M: 90, Seed: 3}), 4, 0, 4)
	ix := New(g)
	rng := rand.New(rand.NewSource(5))
	cur := graph.Mutate(g)
	for op := 0; op < 10; op++ {
		u := graph.V(rng.Intn(g.N()))
		v := graph.V(rng.Intn(g.N()))
		l := graph.Label(rng.Intn(g.Labels()))
		if u == v {
			continue
		}
		if op%2 == 0 {
			cur.AddLabeledEdge(u, v, l)
			if err := ix.InsertEdge(u, v, l); err != nil {
				t.Fatal(err)
			}
		} else {
			e := graph.Edge{From: u, To: v, Label: l}
			removed := cur.RemoveEdge(e)
			if err := ix.DeleteEdge(u, v, l); err != nil {
				t.Fatal(err)
			}
			_ = removed
		}
		snapshot := cur.MustFreeze()
		for q := 0; q < 60; q++ {
			s := graph.V(rng.Intn(g.N()))
			tt := graph.V(rng.Intn(g.N()))
			mask := uint64(rng.Int63n(1 << uint(g.Labels())))
			want := traversal.LabelConstrainedBFS(snapshot, s, tt, mask)
			if got := ix.ReachLC(s, tt, labelset.Set(mask)); got != want {
				t.Fatalf("op %d: ReachLC(%d,%d,%b) = %v, want %v", op, s, tt, mask, got, want)
			}
		}
		cur = graph.Mutate(snapshot)
	}
}

func TestEntriesMatchOracle(t *testing.T) {
	g := gen.Zipf(gen.RandomDAG(gen.Config{N: 30, M: 90, Seed: 6}), 3, 0, 7)
	ix := New(g)
	oracle := tc.NewGTC(g)
	for s := 0; s < g.N(); s++ {
		for tt := 0; tt < g.N(); tt++ {
			if s == tt {
				continue
			}
			a, b := ix.SPLS(graph.V(s), graph.V(tt)), oracle.SPLS(graph.V(s), graph.V(tt))
			if (a == nil) != (b == nil) {
				t.Fatalf("(%d,%d): presence mismatch", s, tt)
			}
			if a != nil && !a.Equal(b) {
				t.Fatalf("(%d,%d): %v vs %v", s, tt, a.Sets(), b.Sets())
			}
		}
	}
	if ix.Name() != "Zou-GTC" {
		t.Error("name")
	}
}
