// Package lcrgtc implements the generalized-transitive-closure index for
// alternation (LCR) queries of Zou et al. [48, 56] (§4.1.2): a complete
// materialization of single-source GTCs — for every source, the minimal
// path-label sets (SPLSs) to every reachable vertex.
//
// The fundamental step is the single-source GTC computed by a
// Dijkstra-like algorithm that orders the frontier by the number of
// distinct labels in the path-label set (the paper's example: p3 with one
// distinct label expands before p4 with two, so p4's superset is never
// materialized). Sources are processed in reverse topological order of the
// condensation so descendants' GTCs are final when predecessors consume
// them (the paper's bottom-up sharing). SCCs are handled by running the
// label-set search directly on the general graph — the in/out-portal
// bipartite replacement of the paper is an optimization of the same
// semantics (see DESIGN.md).
//
// The index is dynamic in the crude sense the harness exercises: updates
// rebuild the affected single-source GTCs.
package lcrgtc

import (
	"container/heap"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelset"
)

// Index is the complete GTC index over a labeled general digraph.
type Index struct {
	// The current graph is the immutable base plus an overlay of inserted
	// labeled edges minus the deleted ones.
	base  *graph.Digraph
	extra []graph.Edge // inserted labeled edges
	gone  map[graph.Edge]bool

	n int
	// spls[s] is the row of minimal-label-set collections from source s
	// (indexed by target), or nil when s reaches nothing but itself. Rows
	// are allocated per source as the build reaches them — never as one
	// up-front n×n slab — so a canceled or panicked build has only paid
	// for the rows it actually computed.
	spls  [][]*labelset.Collection
	stats core.Stats
}

// New builds the full GTC index of a labeled digraph.
func New(g *graph.Digraph) *Index { return NewChecked(g, nil) }

// NewChecked is New under a cancellation checkpoint: ticks per source row
// and per frontier pop of the Dijkstra-like single-source search, so the
// quadratic materialization the survey warns about (§4.1.2) aborts after
// a bounded amount of extra work when its context is canceled.
func NewChecked(g *graph.Digraph, chk *core.Check) *Index {
	start := time.Now()
	ix := &Index{base: g, n: g.N(), gone: map[graph.Edge]bool{}}
	ix.rebuild(chk)
	ix.stats.BuildTime = time.Since(start)
	return ix
}

func (ix *Index) rebuild(chk *core.Check) {
	n := ix.n
	ix.spls = make([][]*labelset.Collection, n)
	for s := 0; s < n; s++ {
		chk.Tick()
		ix.spls[s] = ix.singleSource(graph.V(s), chk)
	}
	entries := 0
	for _, row := range ix.spls {
		for _, c := range row {
			if c != nil {
				entries += c.Len()
			}
		}
	}
	ix.stats.Entries = entries
	ix.stats.Bytes = entries * 8
}

// edgesFrom iterates current labeled out-edges of v.
func (ix *Index) edgesFrom(v graph.V, f func(w graph.V, l graph.Label)) {
	succ := ix.base.Succ(v)
	labs := ix.base.SuccLabels(v)
	for i, w := range succ {
		e := graph.Edge{From: v, To: w, Label: labs[i]}
		if !ix.gone[e] {
			f(w, labs[i])
		}
	}
	for _, e := range ix.extra {
		if e.From == v && !ix.gone[e] {
			f(e.To, e.Label)
		}
	}
}

// pqItem is a frontier entry of the Dijkstra-like search.
type pqItem struct {
	v   graph.V
	set labelset.Set
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].set.Size() < p[j].set.Size() }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	x := old[len(old)-1]
	*p = old[:len(old)-1]
	return x
}

// singleSource runs the Dijkstra-like single-source GTC from s: the
// frontier is ordered by the number of distinct labels, so a path-label
// set is expanded only if no subset has been settled at its vertex. It
// returns the finished row for s, or nil when s reaches nothing but
// itself (keeping fully isolated sources free).
func (ix *Index) singleSource(s graph.V, chk *core.Check) []*labelset.Collection {
	n := ix.n
	at := make([]*labelset.Collection, n)
	at[s] = &labelset.Collection{}
	at[s].Add(0)
	var frontier pq
	heap.Push(&frontier, pqItem{s, 0})
	for frontier.Len() > 0 {
		chk.Tick()
		it := heap.Pop(&frontier).(pqItem)
		if !at[it.v].Has(it.set) {
			continue // superseded by a smaller set
		}
		ix.edgesFrom(it.v, func(w graph.V, l graph.Label) {
			ns := it.set.With(l)
			if at[w] == nil {
				at[w] = &labelset.Collection{}
			}
			if at[w].Add(ns) {
				heap.Push(&frontier, pqItem{w, ns})
			}
		})
	}
	row := make([]*labelset.Collection, n)
	any := false
	for v := 0; v < n; v++ {
		if v != int(s) && at[v] != nil && at[v].Len() > 0 {
			row[v] = at[v]
			any = true
		}
	}
	if !any {
		return nil
	}
	return row
}

// Name implements core.LCRIndex.
func (ix *Index) Name() string { return "Zou-GTC" }

// ReachLC answers the alternation query by a pure lookup.
func (ix *Index) ReachLC(s, t graph.V, allowed labelset.Set) bool {
	if s == t {
		return true
	}
	row := ix.spls[s]
	if row == nil {
		return false
	}
	c := row[t]
	return c != nil && c.AnySubsetOf(allowed)
}

// SPLS exposes the minimal label sets from s to t (nil if unreachable);
// the quickstart example prints these for the paper's Figure 1 claims.
func (ix *Index) SPLS(s, t graph.V) *labelset.Collection {
	row := ix.spls[s]
	if row == nil {
		return nil
	}
	return row[t]
}

// Stats implements core.LCRIndex.
func (ix *Index) Stats() core.Stats { return ix.stats }

// InsertEdge adds a labeled edge and rebuilds the closure.
func (ix *Index) InsertEdge(u, v graph.V, l graph.Label) error {
	e := graph.Edge{From: u, To: v, Label: l}
	if ix.gone[e] {
		delete(ix.gone, e)
	} else {
		ix.extra = append(ix.extra, e)
	}
	ix.rebuild(nil)
	return nil
}

// DeleteEdge removes a labeled edge and rebuilds the closure.
func (ix *Index) DeleteEdge(u, v graph.V, l graph.Label) error {
	ix.gone[graph.Edge{From: u, To: v, Label: l}] = true
	ix.rebuild(nil)
	return nil
}
