package shard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/pll"
)

func buildPLL(_ int, sub *graph.Digraph) (core.Index, error) {
	return pll.New(sub, pll.Options{Order: pll.OrderDegree}), nil
}

// TestPlanInvariants checks the two partition invariants every query
// relies on: contiguous topological ranges (cross-shard condensation
// edges only run from lower to higher shard ids) and an acyclic summary.
func TestPlanInvariants(t *testing.T) {
	graphs := map[string]*graph.Digraph{
		"banded": gen.BandedDAG(gen.Config{N: 500, M: 2000, Seed: 1}, 60),
		"dag":    gen.RandomDAG(gen.Config{N: 300, M: 900, Seed: 2}),
		"cyclic": gen.ErdosRenyi(gen.Config{N: 200, M: 700, Seed: 3}),
	}
	for name, g := range graphs {
		prep := core.NewPrepared(g)
		for _, k := range []int{1, 2, 3, 8} {
			p := NewPlan(prep, k, 0)
			cond, _ := prep.Condensation()
			cond.DAG.Edges(func(e graph.Edge) bool {
				su, sv := p.shardOf[e.From], p.shardOf[e.To]
				if su > sv {
					t.Fatalf("%s k=%d: cross edge from shard %d to earlier shard %d", name, k, su, sv)
				}
				return true
			})
			if !order.IsDAG(p.Summary()) {
				t.Fatalf("%s k=%d: summary graph is cyclic", name, k)
			}
			nSub := 0
			for i := 0; i < p.K(); i++ {
				nSub += p.Sub(i).N()
			}
			if nSub != cond.DAG.N() {
				t.Fatalf("%s k=%d: shards hold %d components of %d", name, k, nSub, cond.DAG.N())
			}
		}
	}
}

// TestPlanDeterministicAcrossWorkers requires the plan — including the
// parallel closure sweep's summary edges — to be identical at any worker
// count.
func TestPlanDeterministicAcrossWorkers(t *testing.T) {
	g := gen.BandedDAG(gen.Config{N: 800, M: 3200, Seed: 5}, 50)
	prep := core.NewPrepared(g)
	base := NewPlan(prep, 4, 1)
	for _, workers := range []int{2, 8} {
		p := NewPlan(prep, 4, workers)
		be, pe := base.Summary().EdgeList(), p.Summary().EdgeList()
		if len(be) != len(pe) {
			t.Fatalf("workers=%d: %d summary edges, want %d", workers, len(pe), len(be))
		}
		for i := range be {
			if be[i] != pe[i] {
				t.Fatalf("workers=%d: summary edge %d = %v, want %v", workers, i, pe[i], be[i])
			}
		}
	}
}

// TestBuildFailureAllOrNothing: an error from any shard's BuildFunc
// fails the whole build, and a panic on a build goroutine is re-raised
// after the pool drains.
func TestBuildFailureAllOrNothing(t *testing.T) {
	g := gen.BandedDAG(gen.Config{N: 200, M: 800, Seed: 6}, 40)
	prep := core.NewPrepared(g)
	boom := errors.New("boom")
	_, err := Build(prep, 4, 0, func(i int, sub *graph.Digraph) (core.Index, error) {
		if i == 2 {
			return nil, boom
		}
		return buildPLL(i, sub)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("shard error not surfaced: %v", err)
	}
	_, err = Build(prep, 4, 0, func(i int, sub *graph.Digraph) (core.Index, error) {
		if i == 1 {
			return nil, nil // no index, no error
		}
		return buildPLL(i, sub)
	})
	if err == nil {
		t.Fatal("nil index accepted")
	}
	func() {
		// workers=4 forces the pooled path, where the panic crosses
		// goroutines and must come back wrapped; on the serial path
		// (workers<=1) it propagates raw, which the same recover
		// boundary upstream also converts to ErrIndexPanic.
		defer func() {
			r := recover()
			if _, ok := r.(par.WorkerPanic); !ok {
				t.Fatalf("recovered %v (%T), want par.WorkerPanic", r, r)
			}
		}()
		_, _ = Build(prep, 4, 4, func(i int, sub *graph.Digraph) (core.Index, error) {
			if i == 3 {
				panic(fmt.Sprintf("shard %d exploded", i))
			}
			return buildPLL(i, sub)
		})
		t.Fatal("panicking build returned")
	}()
}

// TestEmptyAndTinyGraphs: the clamps and the empty-graph special case.
func TestEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).MustFreeze()
	x, err := Build(core.NewPrepared(empty), 4, 0, buildPLL)
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if x.K() != 1 {
		t.Fatalf("empty graph: k = %d, want 1", x.K())
	}
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	tiny := b.MustFreeze()
	x, err = Build(core.NewPrepared(tiny), 8, 0, buildPLL)
	if err != nil {
		t.Fatalf("tiny graph: %v", err)
	}
	if x.K() != 3 {
		t.Fatalf("tiny graph: k = %d, want 3 (clamped to component count)", x.K())
	}
	for s := uint32(0); s < 3; s++ {
		for d := uint32(0); d < 3; d++ {
			if got, want := x.Reach(s, d), s <= d; got != want {
				t.Fatalf("tiny: Reach(%d,%d) = %v, want %v", s, d, got, want)
			}
		}
	}
}
