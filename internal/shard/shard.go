// Package shard partitions the SCC condensation DAG of a graph into k
// edge-balanced topological ranges, builds one reachability index per
// shard, and answers global queries through a 2-hop summary index over
// the boundary (cut) vertices — the partitioned-index design that keeps
// every per-partition index small while cross-partition queries resolve
// as local-src → boundary → local-dst.
//
// The partitioner assigns condensation components to shards in
// topological order (component ids from Tarjan are in reverse topological
// order, so walking ids downward walks the DAG forward), cutting when the
// accumulated edge weight passes the next balance target. Contiguous
// topological ranges give the two invariants every query relies on:
//
//   - any DAG path between two components of the same shard stays inside
//     that shard (every intermediate component's topological position
//     lies between the endpoints'), so same-shard queries are answered
//     entirely by that shard's local index; and
//   - every cross-shard edge goes from a lower shard id to a higher one,
//     so s can only reach t across shards when shard(s) < shard(t).
//
// Cross-shard queries decompose at the cut: s reaches t iff some exit of
// shard(s) (a boundary component with an outgoing cut edge) is locally
// reachable from s, some entry of shard(t) locally reaches t, and the
// exit reaches the entry in the boundary summary graph — the cut edges
// plus, per shard, one closure edge for every entry that locally reaches
// an exit. The summary is indexed with a pruned 2-hop labeling, so the
// global decision costs local probes at the two endpoint shards plus
// summary lookups.
//
// Determinism matters more than cut quality here: the partition, the
// summary, and (given a deterministic BuildFunc) every per-shard index
// are pure functions of the graph and k, at any worker count.
package shard

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pll"
)

// boundRef locates one boundary component from a shard's point of view.
type boundRef struct {
	local uint32 // vertex id in the shard's sub-DAG
	sid   uint32 // vertex id in the summary graph
}

// Plan is the deterministic k-way partition of one graph's condensation:
// the component→shard assignment, the per-shard sub-DAGs (intra-shard
// edges over shard-local ids), and the boundary summary graph.
type Plan struct {
	k       int
	g       *graph.Digraph
	comp    []uint32 // original vertex -> condensation component
	shardOf []uint32 // component -> shard
	local   []uint32 // component -> local id within its shard's sub-DAG
	subs    []*graph.Digraph

	exits    [][]boundRef // per shard: boundary comps with outgoing cut edges
	entries  [][]boundRef // per shard: boundary comps with incoming cut edges
	boundary []int        // per shard: distinct boundary components
	verts    []int        // per shard: original vertices
	summary  *graph.Digraph
	cut      int // cross-shard condensation edges
}

// NewPlan partitions prep's condensation into (at most) k edge-balanced
// contiguous topological ranges and assembles the sub-DAGs and boundary
// summary. k is clamped to [1, number of components]; workers bounds the
// parallelism of the closure sweep (0 = GOMAXPROCS).
func NewPlan(prep *core.Prepared, k, workers int) *Plan {
	cond, _ := prep.Condensation()
	dag := cond.DAG
	count := dag.N()
	if k < 1 {
		k = 1
	}
	if k > count {
		k = count
	}
	if count == 0 {
		// Empty graph: one empty shard keeps every invariant trivially.
		return &Plan{
			k: 1, g: prep.Graph(), comp: cond.Comp,
			shardOf: nil, local: nil,
			subs:     []*graph.Digraph{graph.NewBuilder(0).MustFreeze()},
			exits:    make([][]boundRef, 1),
			entries:  make([][]boundRef, 1),
			boundary: make([]int, 1), verts: make([]int, 1),
			summary: graph.NewBuilder(0).MustFreeze(),
		}
	}

	p := &Plan{k: k, g: prep.Graph(), comp: cond.Comp}
	p.shardOf = make([]uint32, count)
	p.local = make([]uint32, count)

	// Edge-balanced contiguous cut, walking components in topological
	// order (= component id descending). Weight outdeg+1 balances edges
	// while guaranteeing progress on edge-free stretches; the forced
	// advance keeps at least one component in every remaining shard.
	total := dag.M() + count
	cum, s := 0, 0
	nLocal := make([]int, k)
	for pos := 0; pos < count; pos++ {
		c := count - 1 - pos
		p.shardOf[c] = uint32(s)
		p.local[c] = uint32(nLocal[s])
		nLocal[s]++
		cum += dag.OutDegree(graph.V(c)) + 1
		if s+1 < k {
			rem := count - 1 - pos // components after this one
			need := k - 1 - s      // shards after this one
			if rem == need || (rem > need && cum*k >= (s+1)*total) {
				s++
			}
		}
	}

	// Original-vertex census per shard.
	p.verts = make([]int, k)
	for c, sz := range cond.Size {
		p.verts[p.shardOf[c]] += sz
	}

	// Sub-DAGs (intra-shard edges, local ids) and the cut-edge census.
	builders := make([]*graph.Builder, k)
	for i := range builders {
		builders[i] = graph.NewBuilder(nLocal[i])
	}
	hasOut := make([]bool, count)
	hasIn := make([]bool, count)
	dag.Edges(func(e graph.Edge) bool {
		su, sv := p.shardOf[e.From], p.shardOf[e.To]
		if su == sv {
			builders[su].AddEdge(p.local[e.From], p.local[e.To])
		} else {
			p.cut++
			hasOut[e.From] = true
			hasIn[e.To] = true
		}
		return true
	})
	p.subs = make([]*graph.Digraph, k)
	for i, b := range builders {
		p.subs[i] = b.MustFreeze()
	}

	// Summary ids for boundary components, assigned in topological order
	// so the summary graph is deterministic and acyclic by construction.
	sid := make([]uint32, count)
	numBound := 0
	p.exits = make([][]boundRef, k)
	p.entries = make([][]boundRef, k)
	p.boundary = make([]int, k)
	for pos := 0; pos < count; pos++ {
		c := count - 1 - pos
		if !hasOut[c] && !hasIn[c] {
			continue
		}
		sid[c] = uint32(numBound)
		numBound++
		sh := p.shardOf[c]
		p.boundary[sh]++
		ref := boundRef{local: p.local[c], sid: sid[c]}
		if hasOut[c] {
			p.exits[sh] = append(p.exits[sh], ref)
		}
		if hasIn[c] {
			p.entries[sh] = append(p.entries[sh], ref)
		}
	}

	// Closure sweep: for every entry, the exits of its own shard it
	// locally reaches become summary edges (a path crossing an
	// intermediate shard enters at an entry and leaves at an exit).
	// Shard-local ids ascend in topological order (they are assigned
	// walking components forward), so one descending pass per shard
	// propagates exit-reachability bitsets from successors — O((n+m) *
	// words) per shard rather than one traversal per entry. Shards sweep
	// independently; results land in shard-indexed slots so the summary
	// is identical at any worker count.
	closed := make([][][2]uint32, k)
	par.Do(workers, k, func(i int) {
		exits, entries := p.exits[i], p.entries[i]
		if len(exits) == 0 || len(entries) == 0 {
			return
		}
		sub := p.subs[i]
		n := sub.N()
		words := (len(exits) + 63) / 64
		bits := make([]uint64, n*words)
		exitOrd := make([]int32, n)
		for v := range exitOrd {
			exitOrd[v] = -1
		}
		for j, e := range exits {
			exitOrd[e.local] = int32(j)
		}
		for v := n - 1; v >= 0; v-- {
			row := bits[v*words : (v+1)*words]
			if j := exitOrd[v]; j >= 0 {
				row[j/64] |= 1 << (j % 64)
			}
			for _, w := range sub.Succ(uint32(v)) {
				wrow := bits[int(w)*words : (int(w)+1)*words]
				for b := range row {
					row[b] |= wrow[b]
				}
			}
		}
		var pairs [][2]uint32
		for _, h := range entries {
			row := bits[int(h.local)*words : (int(h.local)+1)*words]
			for j, e := range exits {
				if e.local == h.local {
					continue
				}
				if row[j/64]&(1<<(j%64)) != 0 {
					pairs = append(pairs, [2]uint32{h.sid, e.sid})
				}
			}
		}
		closed[i] = pairs
	})

	sb := graph.NewBuilder(numBound)
	dag.Edges(func(e graph.Edge) bool {
		if p.shardOf[e.From] != p.shardOf[e.To] {
			sb.AddEdge(sid[e.From], sid[e.To])
		}
		return true
	})
	for i := 0; i < k; i++ {
		for _, pr := range closed[i] {
			sb.AddEdge(pr[0], pr[1])
		}
	}
	p.summary = sb.MustFreeze()
	return p
}

// K returns the effective shard count (after clamping).
func (p *Plan) K() int { return p.k }

// Sub returns shard i's sub-DAG (intra-shard condensation edges over
// shard-local vertex ids).
func (p *Plan) Sub(i int) *graph.Digraph { return p.subs[i] }

// Summary returns the boundary summary graph.
func (p *Plan) Summary() *graph.Digraph { return p.summary }

// CutEdges returns the number of cross-shard condensation edges.
func (p *Plan) CutEdges() int { return p.cut }

// BuildFunc constructs the local index of one shard over its sub-DAG.
// It must be deterministic in (shard, sub) for the whole sharded index to
// be deterministic, and is called concurrently for distinct shards.
type BuildFunc func(shard int, sub *graph.Digraph) (core.Index, error)

// Index is a sharded reachability index over the original graph's vertex
// ids: per-shard local indexes plus the 2-hop boundary summary. It
// implements core.Index (and core.Sized) so it slots into the existing
// DB/query machinery unchanged.
type Index struct {
	plan  *Plan
	ixs   []core.Index
	sum   *pll.Index // nil when the partition has no boundary
	stats core.Stats

	probes    []atomic.Int64 // per-shard local probe counters
	sumProbes atomic.Int64
}

// Build partitions prep into k shards via NewPlan, constructs the k local
// indexes in parallel (workers caps the pool; 0 = GOMAXPROCS), and
// indexes the boundary summary with a pruned 2-hop labeling.
//
// Failure semantics are all-or-nothing: an error from any shard's
// BuildFunc fails the whole build, and a panic on a shard's build
// goroutine is re-raised here (as par.WorkerPanic) after the pool drains
// — callers holding a core.Recover boundary see ErrIndexPanic, and no
// partially-sharded index ever serves.
func Build(prep *core.Prepared, k, workers int, build BuildFunc) (*Index, error) {
	start := time.Now()
	p := NewPlan(prep, k, workers)
	ixs := make([]core.Index, p.k)
	errs := make([]error, p.k)
	par.Do(workers, p.k, func(i int) {
		ixs[i], errs[i] = build(i, p.subs[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", i, p.k, err)
		}
		if ixs[i] == nil {
			return nil, fmt.Errorf("shard %d/%d: build returned no index", i, p.k)
		}
	}
	x := &Index{plan: p, ixs: ixs, probes: make([]atomic.Int64, p.k)}
	if p.summary.N() > 0 {
		x.sum = pll.New(p.summary, pll.Options{Order: pll.OrderDegree})
	}
	x.refreshStats(time.Since(start))
	return x, nil
}

func (x *Index) refreshStats(build time.Duration) {
	var st core.Stats
	for _, ix := range x.ixs {
		s := ix.Stats()
		st.Entries += s.Entries
		st.Bytes += s.Bytes
	}
	if x.sum != nil {
		s := x.sum.Stats()
		st.Entries += s.Entries
		st.Bytes += s.Bytes
	}
	// Translation maps: comp (per original vertex) + shard/local (per
	// component), 4 bytes each.
	st.Bytes += len(x.plan.comp)*4 + len(x.plan.shardOf)*8
	st.BuildTime = build
	x.stats = st
}

// Name identifies the sharded engine.
func (x *Index) Name() string { return "sharded" }

// Stats aggregates the per-shard and summary footprints.
func (x *Index) Stats() core.Stats { return x.stats }

// Sizes splits the aggregate footprint: per-shard breakdowns are summed
// where available (indexes without one are charged whole to Aux), and the
// translation maps land in Aux.
func (x *Index) Sizes() core.SizeBreakdown {
	var b core.SizeBreakdown
	add := func(ix core.Index) {
		if s, ok := core.SizesOf(ix); ok {
			b.Offsets += s.Offsets
			b.Labels += s.Labels
			b.Aux += s.Aux
		} else {
			b.Aux += ix.Stats().Bytes
		}
	}
	for _, ix := range x.ixs {
		add(ix)
	}
	if x.sum != nil {
		add(x.sum)
	}
	b.Aux += len(x.plan.comp)*4 + len(x.plan.shardOf)*8
	return b
}

// K returns the shard count.
func (x *Index) K() int { return x.plan.k }

// Plan returns the partition the index was built over.
func (x *Index) Plan() *Plan { return x.plan }

// Shard returns shard i's local index (tests introspect it; the serving
// layer snapshots through the build callback instead).
func (x *Index) Shard(i int) core.Index { return x.ixs[i] }

// Reach answers Qr(s, t) over original vertex ids. Same-component pairs
// are true by SCC membership; same-shard pairs probe that shard's local
// index; cross-shard pairs resolve through the boundary summary. A pair
// whose source lives in a later shard than its target is false without
// any probe (cut edges only run forward through the shard order).
func (x *Index) Reach(s, t graph.V) bool {
	cs, ct := x.plan.comp[s], x.plan.comp[t]
	if cs == ct {
		return true
	}
	ss, st := x.plan.shardOf[cs], x.plan.shardOf[ct]
	switch {
	case ss == st:
		x.probes[ss].Add(1)
		return x.ixs[ss].Reach(x.plan.local[cs], x.plan.local[ct])
	case ss > st:
		return false
	}
	return x.cross(cs, ct, ss, st)
}

// cross decides a shard(s) < shard(t) query: exits of shard(s) locally
// reachable from s, entries of shard(t) locally reaching t, connected in
// the summary.
func (x *Index) cross(cs, ct, ss, st uint32) bool {
	exits, entries := x.plan.exits[ss], x.plan.entries[st]
	if len(exits) == 0 || len(entries) == 0 || x.sum == nil {
		return false
	}
	ls, lt := x.plan.local[cs], x.plan.local[ct]
	var re []uint32
	x.probes[ss].Add(1)
	for _, e := range exits {
		if x.ixs[ss].Reach(ls, e.local) {
			re = append(re, e.sid)
		}
	}
	if len(re) == 0 {
		return false
	}
	x.probes[st].Add(1)
	for _, h := range entries {
		if !x.ixs[st].Reach(h.local, lt) {
			continue
		}
		x.sumProbes.Add(1)
		for _, es := range re {
			if x.sum.Reach(es, h.sid) {
				return true
			}
		}
	}
	return false
}

// batchCtxStride is how many batch items a worker answers between
// context polls.
const batchCtxStride = 64

// BatchReach evaluates many queries with per-shard scatter-gather:
// same-shard pairs are bucketed by shard and each bucket runs on its own
// worker against that shard's local index (answers land in caller-indexed
// slots of out, so the result is deterministic at any worker count);
// cross-shard pairs form one extra bucket probing through the summary.
// out must have len(pairs) slots. Every pair is validated before any
// query runs.
func (x *Index) BatchReach(ctx context.Context, pairs [][2]graph.V, out []bool, workers int) error {
	if len(out) != len(pairs) {
		return fmt.Errorf("shard: batch out has %d slots for %d pairs", len(out), len(pairs))
	}
	n := x.plan.g.N()
	for _, p := range pairs {
		if err := core.CheckPair(n, p[0], p[1]); err != nil {
			return err
		}
	}
	// Bucket by answering shard; trivial pairs resolve during the scan.
	buckets := make([][]int32, x.plan.k+1)
	crossBucket := x.plan.k
	for i, p := range pairs {
		cs, ct := x.plan.comp[p[0]], x.plan.comp[p[1]]
		if cs == ct {
			out[i] = true
			continue
		}
		ss, st := x.plan.shardOf[cs], x.plan.shardOf[ct]
		switch {
		case ss == st:
			buckets[ss] = append(buckets[ss], int32(i))
		case ss > st:
			out[i] = false
		default:
			buckets[crossBucket] = append(buckets[crossBucket], int32(i))
		}
	}
	var canceled atomic.Bool
	par.Do(workers, len(buckets), func(b int) {
		for j, i := range buckets[b] {
			if j%batchCtxStride == 0 {
				if canceled.Load() {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					canceled.Store(true)
					return
				}
			}
			p := pairs[i]
			cs, ct := x.plan.comp[p[0]], x.plan.comp[p[1]]
			if b == crossBucket {
				out[i] = x.cross(cs, ct, x.plan.shardOf[cs], x.plan.shardOf[ct])
			} else {
				x.probes[b].Add(1)
				out[i] = x.ixs[b].Reach(x.plan.local[cs], x.plan.local[ct])
			}
		}
	})
	if canceled.Load() {
		return ctx.Err()
	}
	return nil
}

// ShardInfo is one shard's census for observability and benchmarks.
type ShardInfo struct {
	Shard        int    `json:"shard"`
	Comps        int    `json:"comps"`
	Vertices     int    `json:"vertices"`
	Edges        int    `json:"edges"`
	Boundary     int    `json:"boundary"`
	Exits        int    `json:"exits"`
	Entries      int    `json:"entries"`
	IndexName    string `json:"index"`
	IndexEntries int    `json:"index_entries"`
	IndexBytes   int    `json:"index_bytes"`
	Probes       int64  `json:"probes"`
}

// SummaryInfo describes the boundary summary structure.
type SummaryInfo struct {
	Boundary     int   `json:"boundary"`
	Edges        int   `json:"edges"`
	CutEdges     int   `json:"cut_edges"`
	IndexEntries int   `json:"index_entries"`
	IndexBytes   int   `json:"index_bytes"`
	Probes       int64 `json:"probes"`
}

// Shards snapshots the per-shard census, including the local-probe
// counters accumulated so far.
func (x *Index) Shards() []ShardInfo {
	infos := make([]ShardInfo, x.plan.k)
	for i := range infos {
		st := x.ixs[i].Stats()
		infos[i] = ShardInfo{
			Shard:        i,
			Comps:        x.plan.subs[i].N(),
			Vertices:     x.plan.verts[i],
			Edges:        x.plan.subs[i].M(),
			Boundary:     x.plan.boundary[i],
			Exits:        len(x.plan.exits[i]),
			Entries:      len(x.plan.entries[i]),
			IndexName:    x.ixs[i].Name(),
			IndexEntries: st.Entries,
			IndexBytes:   st.Bytes,
			Probes:       x.probes[i].Load(),
		}
	}
	return infos
}

// Summary snapshots the boundary summary census.
func (x *Index) Summary() SummaryInfo {
	info := SummaryInfo{
		Boundary: x.plan.summary.N(),
		Edges:    x.plan.summary.M(),
		CutEdges: x.plan.cut,
		Probes:   x.sumProbes.Load(),
	}
	if x.sum != nil {
		st := x.sum.Stats()
		info.IndexEntries = st.Entries
		info.IndexBytes = st.Bytes
	}
	return info
}
