// Package lcrtree implements the tree-based LCR index of Jin et al. [21]
// (§4.1.1): a spanning-forest interval labeling enriched with SPLSs plus a
// partial generalized transitive closure over the non-tree edges.
//
// Both published optimizations are used:
//
//  1. interval labeling finds tree successors/predecessors in O(1), and
//  2. the SPLS of any downward tree path s → t is computed by
//     *subtracting* per-label occurrence counts of the root→s path from
//     the root→t path (each vertex stores the label histogram of its
//     root path, so the tree-path label set needs no traversal).
//
// Any s-t path decomposes into downward tree runs joined by non-tree
// edges, so the partial GTC is a closure over the non-tree edges ("links"):
// D[i][j] holds the minimal label sets of paths that start with link i and
// end with link j. Qr(s, t, A) then checks the pure tree case and, for
// every link pair (i, j) with tail(i) in s's subtree and t in head(j)'s
// subtree, whether treeSPLS(s→tail(i)) ∪ D[i][j] ∪ treeSPLS(head(j)→t) ⊆ A.
package lcrtree

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelset"
	"repro/internal/order"
)

// Index is the tree-based complete LCR index.
type Index struct {
	po *order.PostOrder
	// rootSet[v] = label set of the tree path root→v (the occurrence
	// histogram collapsed to a set plus counts for the subtraction trick).
	counts [][]uint16 // counts[v][l]
	labels int
	// Links: non-tree labeled edges.
	tails, heads []graph.V
	linkLab      []graph.Label
	// d[i*t+j] = minimal label sets of link-i..link-j paths (inclusive).
	d     []*labelset.Collection
	stats core.Stats
}

// New builds the index over a labeled digraph (the spanning forest ignores
// labels; cycles simply yield more non-tree links).
func New(g *graph.Digraph) *Index {
	start := time.Now()
	n := g.N()
	L := g.Labels()
	po := order.DFSForest(g, order.Sources(g), nil)
	ix := &Index{po: po, labels: L, counts: make([][]uint16, n)}

	// Tree edges: (Parent[v], v). Root-path histograms top-down. The edge
	// label of the tree edge into v must be recovered: pick any edge
	// (Parent[v], l, v); if several labels parallel the tree edge, the
	// one with the smallest id is "the" tree edge and the rest are links.
	treeLab := make([]graph.Label, n)
	hasTree := make([]bool, n)
	g.Edges(func(e graph.Edge) bool {
		if po.Parent[e.To] == e.From && e.From != e.To && !hasTree[e.To] {
			hasTree[e.To] = true
			treeLab[e.To] = e.Label
			return true
		}
		return true
	})
	g.Edges(func(e graph.Edge) bool {
		if po.Parent[e.To] == e.From && hasTree[e.To] && treeLab[e.To] == e.Label {
			// The designated tree edge (first with this label wins; a
			// duplicate (from,to,label) cannot exist after dedup).
			return true
		}
		ix.tails = append(ix.tails, e.From)
		ix.heads = append(ix.heads, e.To)
		ix.linkLab = append(ix.linkLab, e.Label)
		return true
	})

	// Root-path label counts, top-down in order of increasing depth: use
	// the post-order structure — children finish before parents, so walk
	// vertices by repeatedly resolving parents memoized.
	var fill func(v graph.V)
	fill = func(v graph.V) {
		if ix.counts[v] != nil {
			return
		}
		p := po.Parent[v]
		if p == v {
			ix.counts[v] = make([]uint16, L)
			return
		}
		fill(p)
		row := make([]uint16, L)
		copy(row, ix.counts[p])
		if hasTree[v] {
			row[treeLab[v]]++
		}
		ix.counts[v] = row
	}
	for v := 0; v < n; v++ {
		fill(graph.V(v))
	}

	// Link closure D by worklist: base D[i][j] for the direct chains and
	// D[i][i] = {label(i)}.
	t := len(ix.tails)
	ix.d = make([]*labelset.Collection, t*t)
	type cell struct{ i, j int }
	var work []cell
	add := func(i, j int, s labelset.Set) {
		c := ix.d[i*t+j]
		if c == nil {
			c = &labelset.Collection{}
			ix.d[i*t+j] = c
		}
		if c.Add(s) {
			work = append(work, cell{i, j})
		}
	}
	for i := 0; i < t; i++ {
		add(i, i, labelset.Of(ix.linkLab[i]))
	}
	// chain[i][j]: head(i) tree-reaches tail(j); its tree SPLS bridges.
	bridge := make([]labelset.Set, t*t)
	canChain := make([]bool, t*t)
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			if ix.po.Contains(ix.heads[i], ix.tails[j]) {
				canChain[i*t+j] = true
				bridge[i*t+j] = ix.treeSPLS(ix.heads[i], ix.tails[j])
			}
		}
	}
	for wi := 0; wi < len(work); wi++ {
		c := work[wi]
		// Extend on the right: ... end with link c.j, bridge to link k.
		for _, s := range ix.d[c.i*t+c.j].Sets() {
			for k := 0; k < t; k++ {
				if canChain[c.j*t+k] {
					add(c.i, k, s.Union(bridge[c.j*t+k]).With(ix.linkLab[k]))
				}
			}
		}
	}
	entries := n
	for _, c := range ix.d {
		if c != nil {
			entries += c.Len()
		}
	}
	ix.stats = core.Stats{Entries: entries, Bytes: entries*8 + n*L*2, BuildTime: time.Since(start)}
	return ix
}

// treeSPLS returns the label set of the downward tree path s → t
// (requires t in subtree(s)) via the histogram subtraction.
func (ix *Index) treeSPLS(s, t graph.V) labelset.Set {
	var set labelset.Set
	cs, ct := ix.counts[s], ix.counts[t]
	for l := 0; l < ix.labels; l++ {
		if ct[l] > cs[l] {
			set = set.With(graph.Label(l))
		}
	}
	return set
}

// Name implements core.LCRIndex.
func (ix *Index) Name() string { return "Jin-Tree" }

// ReachLC answers the alternation query.
func (ix *Index) ReachLC(s, t graph.V, allowed labelset.Set) bool {
	if s == t {
		return true
	}
	if ix.po.Contains(s, t) && ix.treeSPLS(s, t).SubsetOf(allowed) {
		return true
	}
	tn := len(ix.tails)
	for i := 0; i < tn; i++ {
		if !ix.po.Contains(s, ix.tails[i]) {
			continue
		}
		pre := ix.treeSPLS(s, ix.tails[i])
		if !pre.SubsetOf(allowed) {
			continue
		}
		for j := 0; j < tn; j++ {
			c := ix.d[i*tn+j]
			if c == nil || !ix.po.Contains(ix.heads[j], t) {
				continue
			}
			post := ix.treeSPLS(ix.heads[j], t)
			if !post.SubsetOf(allowed) {
				continue
			}
			for _, mid := range c.Sets() {
				if pre.Union(mid).Union(post).SubsetOf(allowed) {
					return true
				}
			}
		}
	}
	return false
}

// Stats implements core.LCRIndex.
func (ix *Index) Stats() core.Stats { return ix.stats }

// Links reports the number of non-tree edges — the quadratic closure
// parameter.
func (ix *Index) Links() int { return len(ix.tails) }
