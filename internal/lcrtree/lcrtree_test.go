package lcrtree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/labelset"
)

func TestConformance(t *testing.T) {
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex { return New(g) })
}

func TestTreeSPLSDifferenceTrick(t *testing.T) {
	// Chain root -> a -> b with labels l0, l1: SPLS(a,b) must be {l1}
	// (subtracting the root->a histogram from root->b's).
	b := graph.NewLabeledBuilder(3)
	b.AddLabeledEdge(0, 1, 0)
	b.AddLabeledEdge(1, 2, 1)
	g := b.MustFreeze()
	ix := New(g)
	if got := ix.treeSPLS(1, 2); got != labelset.Of(1) {
		t.Errorf("treeSPLS(1,2) = %b, want {1}", got)
	}
	if got := ix.treeSPLS(0, 2); got != labelset.Of(0, 1) {
		t.Errorf("treeSPLS(0,2) = %b", got)
	}
	if got := ix.treeSPLS(0, 0); got != 0 {
		t.Errorf("treeSPLS(0,0) = %b, want empty", got)
	}
}

func TestPureTreeNoLinks(t *testing.T) {
	g := gen.UniformLabels(gen.TreePlus(100, 0, 1), 4, 2)
	ix := New(g)
	if ix.Links() != 0 {
		t.Errorf("pure tree has %d links", ix.Links())
	}
	if ix.Name() != "Jin-Tree" {
		t.Error("name")
	}
}

func TestParallelLabeledEdges(t *testing.T) {
	// Two labels on the same (u, v): one becomes the tree edge, the other
	// must become a link so both label sets remain available.
	b := graph.NewLabeledBuilder(2)
	b.AddLabeledEdge(0, 1, 0)
	b.AddLabeledEdge(0, 1, 1)
	g := b.MustFreeze()
	ix := New(g)
	if ix.Links() != 1 {
		t.Fatalf("links = %d, want 1", ix.Links())
	}
	if !ix.ReachLC(0, 1, labelset.Of(0)) || !ix.ReachLC(0, 1, labelset.Of(1)) {
		t.Error("both single-label paths must be found")
	}
	if ix.ReachLC(1, 0, labelset.Of(0, 1)) {
		t.Error("false positive on reverse")
	}
}
