//go:build unix

package persist

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so concurrent
// processes serving the same snapshot share physical pages.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
