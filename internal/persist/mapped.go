package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Mapped is a whole snapshot opened for zero-copy access: the file is
// mmap'd (or, where mmap is unavailable, read into memory — same API,
// no page sharing) and its section table parsed up front. Aligned array
// sections come back as typed views straight into the mapping, so a
// cold start touches only the pages the header and offset tables live
// on; label pages fault in lazily as queries reach them.
//
// Because the mapped path skips the streaming decoder's per-field
// validation, Open requires the trailing "crc32" section and verifies it
// over the whole file before returning — a corrupt or truncated snapshot
// fails here with an error, never a panic or a silently wrong index.
//
// Views alias the mapping. Whoever holds them must keep the Mapped
// reachable (indexes built from a Mapped pin it); Close unmaps and is
// also registered as a finalizer backstop.
type Mapped struct {
	data    []byte
	mapped  bool // true when data is an actual mmap, not a heap copy
	closed  atomic.Bool
	format  string
	version uint16
	names   []string
	secs    map[string]mappedSection
}

type mappedSection struct{ off, len int }

// disableMmap forces the read-into-memory fallback; tests use it to
// exercise the no-mmap path on platforms that do have mmap.
var disableMmap atomic.Bool

// OpenMapped maps the snapshot at path and parses its section table.
// The format and version are available via Format/Version; dispatch on
// them before handing the Mapped to an index codec.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: open mapped: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("persist: open mapped: %w", err)
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("persist: open mapped: implausible size %d", size)
	}
	m := &Mapped{secs: make(map[string]mappedSection)}
	if !disableMmap.Load() {
		if data, err := mmapFile(f, int(size)); err == nil {
			m.data, m.mapped = data, true
		}
	}
	if !m.mapped {
		// No mmap on this platform (or it failed): fall back to reading
		// the bytes. Same layout and API, just no shared page cache.
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("persist: open mapped: %w", err)
		}
		if len(data) != int(size) {
			return nil, fmt.Errorf("persist: open mapped: file changed size during read")
		}
		m.data = data
	}
	if err := m.parse(); err != nil {
		m.Close()
		return nil, err
	}
	if m.mapped {
		runtime.SetFinalizer(m, (*Mapped).Close)
	}
	return m, nil
}

// parse validates the header, walks the section table, and verifies the
// trailing checksum. Every access is bounds-checked; corrupt headers
// surface as errors.
func (m *Mapped) parse() error {
	d := m.data
	pos := 0
	take := func(n int) ([]byte, bool) {
		if n < 0 || len(d)-pos < n {
			return nil, false
		}
		b := d[pos : pos+n]
		pos += n
		return b, true
	}
	magic, ok := take(4)
	if !ok || [4]byte(magic) != Magic {
		return fmt.Errorf("persist: mapped: bad magic (not a snapshot)")
	}
	name := func() (string, bool) {
		lb, ok := take(2)
		if !ok {
			return "", false
		}
		l := int(binary.LittleEndian.Uint16(lb))
		if l > maxNameLen {
			return "", false
		}
		nb, ok := take(l)
		if !ok {
			return "", false
		}
		return string(nb), true
	}
	format, ok := name()
	if !ok {
		return fmt.Errorf("persist: mapped: truncated format name")
	}
	m.format = format
	vb, ok := take(2)
	if !ok {
		return fmt.Errorf("persist: mapped: truncated version")
	}
	m.version = binary.LittleEndian.Uint16(vb)
	if m.version == 0 {
		return fmt.Errorf("persist: mapped: %s snapshot version 0 invalid", format)
	}
	checksummed := false
	for pos < len(d) {
		hdrOff := pos
		sname, ok := name()
		if !ok {
			return fmt.Errorf("persist: mapped: truncated section name at %d", hdrOff)
		}
		lb, ok := take(8)
		if !ok {
			return fmt.Errorf("persist: mapped: truncated section %q length", sname)
		}
		l := binary.LittleEndian.Uint64(lb)
		if l > uint64(len(d)-pos) {
			return fmt.Errorf("persist: mapped: section %q claims %d bytes, %d left", sname, l, len(d)-pos)
		}
		payload, _ := take(int(l))
		if sname == ChecksumSection {
			if l != 4 {
				return fmt.Errorf("persist: mapped: checksum section has %d bytes, want 4", l)
			}
			want := binary.LittleEndian.Uint32(payload)
			got := crc32.Checksum(d[:hdrOff], castagnoli)
			if got != want {
				return fmt.Errorf("persist: mapped: checksum mismatch (file %08x, computed %08x)", want, got)
			}
			if pos != len(d) {
				return fmt.Errorf("persist: mapped: %d bytes after checksum section", len(d)-pos)
			}
			checksummed = true
			break
		}
		if _, dup := m.secs[sname]; dup {
			return fmt.Errorf("persist: mapped: duplicate section %q", sname)
		}
		m.secs[sname] = mappedSection{off: pos - int(l), len: int(l)}
		m.names = append(m.names, sname)
	}
	if !checksummed {
		return fmt.Errorf("persist: mapped: snapshot has no checksum section (not a mapped-layout snapshot)")
	}
	return nil
}

// Format reports the snapshot's format name.
func (m *Mapped) Format() string { return m.format }

// Version reports the snapshot's header version.
func (m *Mapped) Version() uint16 { return m.version }

// Mmapped reports whether the bytes are a real memory mapping (false on
// the read-into-memory fallback).
func (m *Mapped) Mmapped() bool { return m.mapped }

// Sections lists section names in file order (checksum excluded).
func (m *Mapped) Sections() []string { return m.names }

// Close releases the mapping. Idempotent; a finalizer calls it as a
// backstop. After Close every view handed out is invalid — callers pin
// the Mapped for as long as they hold views.
func (m *Mapped) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	if m.mapped && m.data != nil {
		data := m.data
		m.data = nil
		return munmapFile(data)
	}
	m.data = nil
	return nil
}

func (m *Mapped) section(name string) (mappedSection, error) {
	s, ok := m.secs[name]
	if !ok {
		return mappedSection{}, fmt.Errorf("persist: mapped: no section %q", name)
	}
	return s, nil
}

// Section returns a streaming Decoder over the named section's payload,
// for small metadata sections written with Writer.Section.
func (m *Mapped) Section(name string) (*Decoder, error) {
	s, err := m.section(name)
	if err != nil {
		return nil, err
	}
	return &Decoder{
		r:    bytes.NewReader(m.data[s.off : s.off+s.len]),
		name: name,
		rem:  uint64(s.len),
	}, nil
}

// aligned returns the raw array bytes of an aligned section along with
// its declared alignment.
func (m *Mapped) aligned(name string) ([]byte, uint32, error) {
	s, err := m.section(name)
	if err != nil {
		return nil, 0, err
	}
	if s.len < 8 {
		return nil, 0, fmt.Errorf("persist: mapped: section %q too short for aligned header", name)
	}
	p := m.data[s.off : s.off+s.len]
	align := binary.LittleEndian.Uint32(p)
	pad := binary.LittleEndian.Uint32(p[4:])
	if align == 0 || align > maxAlign || uint64(pad) >= uint64(align) || int(8+pad) > s.len {
		return nil, 0, fmt.Errorf("persist: mapped: section %q bad alignment %d/pad %d", name, align, pad)
	}
	return p[8+pad:], align, nil
}

// U16s returns the named aligned section as a []uint16 view (zero-copy
// when alignment permits, as with U32s).
func (m *Mapped) U16s(name string) ([]uint16, error) {
	b, _, err := m.aligned(name)
	if err != nil {
		return nil, err
	}
	if len(b)%2 != 0 {
		return nil, fmt.Errorf("persist: mapped: section %q length %d not a multiple of 2", name, len(b))
	}
	if len(b) == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%2 == 0 {
		return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2), nil
	}
	vs := make([]uint16, len(b)/2)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return vs, nil
}

// U32s returns the named aligned section as a []uint32 view. Zero-copy
// when the bytes are suitably aligned in memory (always true for a real
// mapping, since the writer aligned the file offset and mmap bases are
// page-aligned); otherwise it converts into a fresh slice.
func (m *Mapped) U32s(name string) ([]uint32, error) {
	b, _, err := m.aligned(name)
	if err != nil {
		return nil, err
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("persist: mapped: section %q length %d not a multiple of 4", name, len(b))
	}
	if len(b) == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4), nil
	}
	vs := make([]uint32, len(b)/4)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return vs, nil
}

// U64s returns the named aligned section as a []uint64 view (zero-copy
// when alignment permits, as with U32s).
func (m *Mapped) U64s(name string) ([]uint64, error) {
	b, _, err := m.aligned(name)
	if err != nil {
		return nil, err
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("persist: mapped: section %q length %d not a multiple of 8", name, len(b))
	}
	if len(b) == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8), nil
	}
	vs := make([]uint64, len(b)/8)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return vs, nil
}

// Bytes returns the named aligned section's raw array as a view into the
// mapping.
func (m *Mapped) Bytes(name string) ([]byte, error) {
	b, _, err := m.aligned(name)
	return b, err
}

// Sections store arrays little-endian; zero-copy reinterpretation is
// only valid when the host agrees. Big-endian hosts (s390x, some mips)
// take the convert-copy path instead.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()
