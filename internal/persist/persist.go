// Package persist is the shared on-disk codec for index snapshots: a
// versioned header followed by named, length-prefixed sections. Index
// packages (pll, bfl) define what goes inside each section; this package
// owns the container so every snapshot format gets the same hardening —
// magic/format validation, version-skew rejection, byte-exact section
// bounds, and allocation caps derived from the declared section length —
// for free. Malformed or truncated input always surfaces as an error,
// never a panic.
//
// Layout (all integers little-endian):
//
//	magic "RIX1" | format len16+bytes | version u16 |
//	per section: name len16+bytes | payload len u64 | payload
//
// Snapshots are positional facts about a specific graph; pairing a
// snapshot file with the graph it was built from is the caller's
// responsibility, as with any external index file in a DBMS.
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies the shared snapshot container ("Reach IndeX v1").
var Magic = [4]byte{'R', 'I', 'X', '1'}

// maxNameLen bounds format and section names; anything longer is
// corruption, not a plausible snapshot.
const maxNameLen = 1 << 10

// Writer emits one snapshot: header first, then sections in call order.
// Errors are sticky — the first failure is remembered and returned by
// Close, so call sites can write straight-line code without checking
// every put.
type Writer struct {
	w   *bufio.Writer
	buf bytes.Buffer // current section payload, emitted on section end
	n   int64
	crc uint32 // running CRC-32C of every byte written, for Checksum
	err error
}

// NewWriter starts a snapshot in the named format at the given version.
func NewWriter(w io.Writer, format string, version uint16) *Writer {
	pw := &Writer{w: bufio.NewWriter(w)}
	pw.raw(Magic[:])
	pw.rawName(format)
	pw.rawU16(version)
	return pw
}

// NewAppendWriter returns a Writer that emits no container header, for
// appending further sections to a log-structured file whose header is
// already on disk (the write-ahead log reopens its file this way after
// replay). The caller is responsible for having positioned w at the end
// of the intact prefix.
func NewAppendWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Section buffers the payload fill writes into enc, then emits it as one
// named, length-prefixed section. Sections must be read back in the same
// order they were written.
func (pw *Writer) Section(name string, fill func(e *Encoder)) {
	if pw.err != nil {
		return
	}
	pw.buf.Reset()
	fill(&Encoder{buf: &pw.buf})
	pw.rawName(name)
	pw.rawU64(uint64(pw.buf.Len()))
	pw.raw(pw.buf.Bytes())
}

// Flush writes buffered bytes through to the underlying writer without
// finalizing the stream — long-running appenders (workload capture)
// checkpoint with it. Returns the byte count so far and the first error.
func (pw *Writer) Flush() (int64, error) {
	if pw.err == nil {
		pw.err = pw.w.Flush()
	}
	return pw.n, pw.err
}

// Close flushes and returns the total byte count and the first error.
func (pw *Writer) Close() (int64, error) {
	return pw.Flush()
}

func (pw *Writer) raw(b []byte) {
	if pw.err != nil {
		return
	}
	pw.crc = crc32.Update(pw.crc, castagnoli, b)
	m, err := pw.w.Write(b)
	pw.n += int64(m)
	pw.err = err
}

func (pw *Writer) rawU32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	pw.raw(b[:])
}

func (pw *Writer) rawU16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	pw.raw(b[:])
}

func (pw *Writer) rawU64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	pw.raw(b[:])
}

func (pw *Writer) rawName(s string) {
	if len(s) > maxNameLen {
		if pw.err == nil {
			pw.err = fmt.Errorf("persist: name %q too long", s[:32]+"...")
		}
		return
	}
	pw.rawU16(uint16(len(s)))
	pw.raw([]byte(s))
}

// Encoder writes primitive values into the current section.
type Encoder struct {
	buf *bytes.Buffer
}

// U32 writes one uint32.
func (e *Encoder) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}

// U64 writes one uint64.
func (e *Encoder) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf.WriteString(s)
}

// U32s writes a length-prefixed []uint32.
func (e *Encoder) U32s(vs []uint32) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U32(v)
	}
}

// U64s writes a length-prefixed []uint64.
func (e *Encoder) U64s(vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// Reader consumes a snapshot written by Writer. NewReader validates the
// container header; Section then yields one bounded Decoder per section,
// in order.
type Reader struct {
	r       *bufio.Reader
	version uint16
}

// NewReader checks the magic, the format name, and the version: a stream
// that is not a snapshot at all, a snapshot of a different format, or a
// snapshot from a newer codec revision (version 0 or > maxVersion) all
// fail here with a descriptive error.
func NewReader(r io.Reader, format string, maxVersion uint16) (*Reader, error) {
	pr, got, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if got != format {
		return nil, fmt.Errorf("persist: snapshot format is %q, want %q", got, format)
	}
	if pr.version == 0 || pr.version > maxVersion {
		return nil, fmt.Errorf("persist: %s snapshot version %d not supported (max %d)", format, pr.version, maxVersion)
	}
	return pr, nil
}

// readHeader parses the container header — magic, format name, version —
// without judging the format or version ceiling.
func readHeader(r io.Reader) (*Reader, string, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, "", fmt.Errorf("persist: read magic: %w", noEOF(err))
	}
	if magic != Magic {
		return nil, "", fmt.Errorf("persist: bad magic %q (not a snapshot)", magic[:])
	}
	format, err := readName(br)
	if err != nil {
		return nil, "", fmt.Errorf("persist: read format: %w", err)
	}
	var vb [2]byte
	if _, err := io.ReadFull(br, vb[:]); err != nil {
		return nil, "", fmt.Errorf("persist: read version: %w", noEOF(err))
	}
	return &Reader{r: br, version: binary.LittleEndian.Uint16(vb[:])}, format, nil
}

// Version reports the snapshot's header version.
func (pr *Reader) Version() uint16 { return pr.version }

// Section reads the next section header and returns a Decoder bounded to
// exactly that section's payload. The section must carry the expected
// name — snapshots are read in the order they were written.
func (pr *Reader) Section(name string) (*Decoder, error) {
	got, dec, err := pr.Next()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("persist: read section header: %w", err)
	}
	if got != name {
		return nil, fmt.Errorf("persist: section %q, want %q", got, name)
	}
	return dec, nil
}

// Next reads the next section header, whatever its name — the iteration
// primitive for formats holding a variable number of uniform sections
// (e.g. workload capture batches). A clean end of stream returns io.EOF;
// anything cut off mid-header is a truncation error.
func (pr *Reader) Next() (string, *Decoder, error) {
	if _, err := pr.r.Peek(1); err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("persist: read section header: %w", err)
	}
	name, err := readName(pr.r)
	if err != nil {
		return "", nil, fmt.Errorf("persist: read section header: %w", err)
	}
	var lb [8]byte
	if _, err := io.ReadFull(pr.r, lb[:]); err != nil {
		return "", nil, fmt.Errorf("persist: section %q length: %w", name, noEOF(err))
	}
	return name, &Decoder{
		r:    pr.r,
		name: name,
		rem:  binary.LittleEndian.Uint64(lb[:]),
	}, nil
}

func readName(br *bufio.Reader) (string, error) {
	var lb [2]byte
	if _, err := io.ReadFull(br, lb[:]); err != nil {
		return "", noEOF(err)
	}
	l := binary.LittleEndian.Uint16(lb[:])
	if l > maxNameLen {
		return "", fmt.Errorf("implausible name length %d", l)
	}
	b := make([]byte, l)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", noEOF(err)
	}
	return string(b), nil
}

// Decoder reads primitive values out of one section. Errors are sticky:
// after the first failure every read returns the zero value, and Err
// reports what went wrong — call sites decode straight-line and check
// once. Every read is bounded by the section's declared length, and
// every slice allocation is capped by the bytes actually remaining, so a
// corrupt length field cannot trigger a huge allocation or read into the
// next section.
type Decoder struct {
	r    io.Reader
	name string
	rem  uint64
	err  error
}

// Err reports the first decode failure, nil if all reads succeeded.
func (d *Decoder) Err() error { return d.err }

// Close verifies the section was fully consumed (trailing bytes indicate
// a reader/writer schema mismatch) and returns the first error.
func (d *Decoder) Close() error {
	if d.err == nil && d.rem != 0 {
		d.err = fmt.Errorf("persist: section %q has %d unread bytes", d.name, d.rem)
	}
	return d.err
}

func (d *Decoder) read(b []byte) bool {
	if d.err != nil {
		return false
	}
	if uint64(len(b)) > d.rem {
		d.err = fmt.Errorf("persist: section %q truncated (want %d bytes, %d left)", d.name, len(b), d.rem)
		return false
	}
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = fmt.Errorf("persist: section %q: %w", d.name, noEOF(err))
		return false
	}
	d.rem -= uint64(len(b))
	return true
}

// U32 reads one uint32.
func (d *Decoder) U32() uint32 {
	var b [4]byte
	if !d.read(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

// U64 reads one uint64.
func (d *Decoder) U64() uint64 {
	var b [8]byte
	if !d.read(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	l := uint64(d.U32())
	if d.err != nil {
		return ""
	}
	if l > d.rem {
		d.err = fmt.Errorf("persist: section %q string length %d exceeds %d remaining bytes", d.name, l, d.rem)
		return ""
	}
	b := make([]byte, l)
	if !d.read(b) {
		return ""
	}
	return string(b)
}

// U32s reads a length-prefixed []uint32.
func (d *Decoder) U32s() []uint32 {
	b := d.slice(4)
	if b == nil {
		return nil
	}
	vs := make([]uint32, len(b)/4)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return vs
}

// U64s reads a length-prefixed []uint64.
func (d *Decoder) U64s() []uint64 {
	b := d.slice(8)
	if b == nil {
		return nil
	}
	vs := make([]uint64, len(b)/8)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return vs
}

// slice reads a length-prefixed run of elemSize-byte elements as raw
// bytes, in one bulk read bounded by the section's remaining length.
func (d *Decoder) slice(elemSize uint64) []byte {
	l := uint64(d.U32())
	if d.err != nil {
		return nil
	}
	if l*elemSize > d.rem {
		d.err = fmt.Errorf("persist: section %q slice length %d exceeds %d remaining bytes", d.name, l, d.rem)
		return nil
	}
	b := make([]byte, l*elemSize)
	if !d.read(b) {
		return nil
	}
	return b
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// snapshot every EOF is a truncation, and the unexpected variant reads
// that way in error text.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
