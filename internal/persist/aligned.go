package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Aligned sections extend the RIX1 container with a layout that a mapped
// reader can hand back as zero-copy typed views: the payload is a small
// header (u32 alignment | u32 pad) followed by pad zero bytes and then
// the raw little-endian array, with the pad chosen so the array starts at
// a file offset that is a multiple of the declared alignment. Because an
// mmap base address is page-aligned, file-offset alignment is memory
// alignment, and the mapped reader can reinterpret the bytes in place.
// The streaming Decoder reads the same sections by skipping the pad, so
// one format serves both load paths.
//
// A snapshot intended for mapping ends with a "crc32" section holding a
// CRC-32C (Castagnoli — hardware-assisted on amd64/arm64) of every byte
// before that section's header. The mapped reader verifies it before
// trusting any bytes, since it skips the per-field validation the
// streaming decode performs.

// ChecksumSection names the trailing integrity section written by
// Writer.Checksum.
const ChecksumSection = "crc32"

// maxAlign bounds declared section alignment at one page; larger values
// in a file are corruption, not a plausible layout.
const maxAlign = 1 << 12

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum emits the trailing "crc32" section: a CRC-32C of every byte
// written so far (header and all prior sections). Call it last; the
// mapped reader requires it, the streaming reader ignores it.
func (pw *Writer) Checksum() {
	if pw.err != nil {
		return
	}
	sum := pw.crc
	pw.rawName(ChecksumSection)
	pw.rawU64(4)
	pw.rawU32(sum)
}

// alignedHeader writes the section header and alignment preamble for a
// raw array of size bytes, returning false if the writer already failed.
// It relies on pw.n being the absolute file offset, which holds whenever
// the Writer started at the beginning of the file.
func (pw *Writer) alignedHeader(name string, align uint32, size int) bool {
	if pw.err != nil {
		return false
	}
	pw.rawName(name)
	dataOff := pw.n + 8 + 8 // past the u64 length prefix and align header
	var pad uint32
	if align > 1 {
		pad = uint32((int64(align) - dataOff%int64(align)) % int64(align))
	}
	pw.rawU64(uint64(8+int(pad)) + uint64(size))
	pw.rawU32(align)
	pw.rawU32(pad)
	if pad > 0 {
		var zeros [maxAlign]byte
		pw.raw(zeros[:pad])
	}
	return pw.err == nil
}

// AlignedU16s writes vs as one 2-byte-aligned raw little-endian array
// section (edge-label arrays are uint16).
func (pw *Writer) AlignedU16s(name string, vs []uint16) {
	if !pw.alignedHeader(name, 2, len(vs)*2) {
		return
	}
	var buf [4096]byte
	for len(vs) > 0 {
		k := min(len(vs), len(buf)/2)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint16(buf[2*i:], vs[i])
		}
		pw.raw(buf[:2*k])
		vs = vs[k:]
	}
}

// AlignedU32s writes vs as one 4-byte-aligned raw little-endian array
// section.
func (pw *Writer) AlignedU32s(name string, vs []uint32) {
	if !pw.alignedHeader(name, 4, len(vs)*4) {
		return
	}
	var buf [4096]byte
	for len(vs) > 0 {
		k := min(len(vs), len(buf)/4)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], vs[i])
		}
		pw.raw(buf[:4*k])
		vs = vs[k:]
	}
}

// AlignedU64s writes vs as one 8-byte-aligned raw little-endian array
// section.
func (pw *Writer) AlignedU64s(name string, vs []uint64) {
	if !pw.alignedHeader(name, 8, len(vs)*8) {
		return
	}
	var buf [4096]byte
	for len(vs) > 0 {
		k := min(len(vs), len(buf)/8)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], vs[i])
		}
		pw.raw(buf[:8*k])
		vs = vs[k:]
	}
}

// AlignedBytes writes b as one byte-array section in the aligned framing
// (alignment 1, so no pad); varint label streams use it so every array
// section decodes uniformly.
func (pw *Writer) AlignedBytes(name string, b []byte) {
	if !pw.alignedHeader(name, 1, len(b)) {
		return
	}
	pw.raw(b)
}

// alignedHeader consumes the align/pad preamble of an aligned section,
// leaving the decoder positioned at the raw array.
func (d *Decoder) alignedHeader() bool {
	align := d.U32()
	pad := d.U32()
	if d.err != nil {
		return false
	}
	if align == 0 || align > maxAlign || uint64(pad) >= uint64(align) {
		d.err = fmt.Errorf("persist: section %q bad alignment %d/pad %d", d.name, align, pad)
		return false
	}
	if pad > 0 {
		var zeros [maxAlign]byte
		if !d.read(zeros[:pad]) {
			return false
		}
	}
	return true
}

// AlignedU16s reads an aligned u16-array section.
func (d *Decoder) AlignedU16s() []uint16 {
	b := d.alignedRest(2)
	if b == nil {
		return nil
	}
	vs := make([]uint16, len(b)/2)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return vs
}

// AlignedU32s reads an aligned u32-array section: the alignment preamble
// followed by every remaining payload byte as little-endian uint32s.
func (d *Decoder) AlignedU32s() []uint32 {
	b := d.alignedRest(4)
	if b == nil {
		return nil
	}
	vs := make([]uint32, len(b)/4)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return vs
}

// AlignedU64s reads an aligned u64-array section.
func (d *Decoder) AlignedU64s() []uint64 {
	b := d.alignedRest(8)
	if b == nil {
		return nil
	}
	vs := make([]uint64, len(b)/8)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return vs
}

// AlignedBytes reads an aligned byte-array section.
func (d *Decoder) AlignedBytes() []byte {
	return d.alignedRest(1)
}

func (d *Decoder) alignedRest(elem uint64) []byte {
	if !d.alignedHeader() {
		return nil
	}
	if d.rem%elem != 0 {
		d.err = fmt.Errorf("persist: section %q payload %d bytes not a multiple of %d", d.name, d.rem, elem)
		return nil
	}
	b := make([]byte, d.rem)
	if !d.read(b) {
		return nil
	}
	return b
}

// NewReaderAny opens a snapshot without committing to a format: it
// validates the magic and returns the reader plus the format name found
// in the header, so dispatch code can sniff which index codec to hand the
// stream to. Version is validated only for nonzero-ness; the per-format
// reader checks the ceiling via Version.
func NewReaderAny(r io.Reader) (*Reader, string, error) {
	pr, format, err := readHeader(r)
	if err != nil {
		return nil, "", err
	}
	if pr.version == 0 {
		return nil, "", fmt.Errorf("persist: %s snapshot version 0 invalid", format)
	}
	return pr, format, nil
}
