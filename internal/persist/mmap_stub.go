//go:build !unix

package persist

import (
	"errors"
	"os"
)

// mmapFile reports mmap as unavailable on this platform; OpenMapped
// falls back to reading the file into memory.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(b []byte) error { return nil }
