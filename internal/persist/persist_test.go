package persist

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// writeSample emits a two-section snapshot exercising every encoder
// primitive; the decode helpers below read it back.
func writeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, "sample", 3)
	w.Section("meta", func(e *Encoder) {
		e.String("hello")
		e.U32(42)
		e.U64(1 << 40)
	})
	w.Section("data", func(e *Encoder) {
		e.U32s([]uint32{1, 2, 3})
		e.U64s([]uint64{10, 20})
		e.U32s(nil)
	})
	n, err := w.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Close reported %d bytes, buffer has %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	raw := writeSample(t)
	r, err := NewReader(bytes.NewReader(raw), "sample", 3)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Version() != 3 {
		t.Fatalf("Version = %d, want 3", r.Version())
	}
	meta, err := r.Section("meta")
	if err != nil {
		t.Fatalf("Section(meta): %v", err)
	}
	if s := meta.String(); s != "hello" {
		t.Errorf("String = %q", s)
	}
	if v := meta.U32(); v != 42 {
		t.Errorf("U32 = %d", v)
	}
	if v := meta.U64(); v != 1<<40 {
		t.Errorf("U64 = %d", v)
	}
	if err := meta.Close(); err != nil {
		t.Fatalf("meta Close: %v", err)
	}
	data, err := r.Section("data")
	if err != nil {
		t.Fatalf("Section(data): %v", err)
	}
	if got := data.U32s(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("U32s = %v", got)
	}
	if got := data.U64s(); len(got) != 2 || got[1] != 20 {
		t.Errorf("U64s = %v", got)
	}
	if got := data.U32s(); len(got) != 0 {
		t.Errorf("empty U32s = %v", got)
	}
	if err := data.Close(); err != nil {
		t.Fatalf("data Close: %v", err)
	}
}

// TestTruncationNeverPanics decodes every strict prefix of a valid
// snapshot; each must fail with an error, and none may panic or succeed.
func TestTruncationNeverPanics(t *testing.T) {
	raw := writeSample(t)
	for cut := 0; cut < len(raw); cut++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("prefix of %d bytes panicked: %v", cut, p)
				}
			}()
			r, err := NewReader(bytes.NewReader(raw[:cut]), "sample", 3)
			if err != nil {
				return // header truncation: reported at open
			}
			for _, name := range []string{"meta", "data"} {
				d, err := r.Section(name)
				if err != nil {
					return
				}
				if name == "meta" {
					_ = d.String()
					d.U32()
					d.U64()
				} else {
					d.U32s()
					d.U64s()
					d.U32s()
				}
				if err := d.Close(); err != nil {
					return
				}
			}
			t.Fatalf("prefix of %d bytes (full is %d) decoded without error", cut, len(raw))
		}()
	}
}

func TestHeaderValidation(t *testing.T) {
	raw := writeSample(t)

	if _, err := NewReader(strings.NewReader("not a snapshot at all"), "sample", 3); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("garbage input: err = %v, want bad magic", err)
	}
	if _, err := NewReader(bytes.NewReader(raw), "other", 3); err == nil || !strings.Contains(err.Error(), `format is "sample"`) {
		t.Errorf("format mismatch: err = %v", err)
	}
	// Version skew: a version-3 snapshot read by a codec capped at 2.
	if _, err := NewReader(bytes.NewReader(raw), "sample", 2); err == nil || !strings.Contains(err.Error(), "version 3 not supported") {
		t.Errorf("version skew: err = %v", err)
	}
	// Version 0 is reserved as invalid regardless of cap.
	var buf bytes.Buffer
	w := NewWriter(&buf, "sample", 0)
	w.Close()
	if _, err := NewReader(bytes.NewReader(buf.Bytes()), "sample", 3); err == nil || !strings.Contains(err.Error(), "version 0") {
		t.Errorf("version 0: err = %v", err)
	}
}

func TestSectionMismatch(t *testing.T) {
	raw := writeSample(t)
	r, err := NewReader(bytes.NewReader(raw), "sample", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("data"); err == nil || !strings.Contains(err.Error(), `section "meta", want "data"`) {
		t.Errorf("out-of-order section: err = %v", err)
	}
}

// TestTrailingBytes verifies Close flags a section the decoder did not
// fully consume — the schema-drift tripwire.
func TestTrailingBytes(t *testing.T) {
	raw := writeSample(t)
	r, err := NewReader(bytes.NewReader(raw), "sample", 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Section("meta")
	if err != nil {
		t.Fatal(err)
	}
	_ = d.String() // leave the u32 and u64 unread
	if err := d.Close(); err == nil || !strings.Contains(err.Error(), "unread bytes") {
		t.Errorf("partial consume: Close = %v, want unread-bytes error", err)
	}
}

// TestCorruptLengthBounded flips a slice length field to a huge value and
// checks the decoder rejects it against the section bound instead of
// allocating gigabytes or reading into the next section.
func TestCorruptLengthBounded(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "sample", 1)
	w.Section("data", func(e *Encoder) { e.U32s([]uint32{7, 8, 9}) })
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The section payload starts right after name ("data": 2+4 bytes) and
	// the u64 length; its first 4 bytes are the slice length. Corrupt them.
	payloadOff := len(raw) - (4 + 3*4)
	raw[payloadOff] = 0xff
	raw[payloadOff+1] = 0xff
	raw[payloadOff+2] = 0xff
	raw[payloadOff+3] = 0xff

	r, err := NewReader(bytes.NewReader(raw), "sample", 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Section("data")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.U32s(); got != nil {
		t.Errorf("corrupt length returned %v", got)
	}
	if err := d.Err(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("corrupt length: err = %v, want exceeds-remaining error", err)
	}
}

// TestStickyDecodeErrors checks that after the first failure every
// subsequent read is a cheap no-op returning zero values.
func TestStickyDecodeErrors(t *testing.T) {
	raw := writeSample(t)
	r, err := NewReader(bytes.NewReader(raw), "sample", 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Section("meta")
	if err != nil {
		t.Fatal(err)
	}
	_ = d.String()
	d.U32()
	d.U64()
	d.U64() // past the end: fails
	first := d.Err()
	if first == nil {
		t.Fatal("read past section end succeeded")
	}
	if v := d.U32(); v != 0 {
		t.Errorf("post-error U32 = %d, want 0", v)
	}
	if got := d.U32s(); got != nil {
		t.Errorf("post-error U32s = %v, want nil", got)
	}
	if d.Err() != first {
		t.Errorf("Err changed after further reads: %v then %v", first, d.Err())
	}
}

// TestNextIteration drives the name-agnostic Next loop: every section in
// order, then a clean io.EOF — the primitive workload captures iterate
// with (a variable number of uniform sections, no fixed schema).
func TestNextIteration(t *testing.T) {
	raw := writeSample(t)
	r, err := NewReader(bytes.NewReader(raw), "sample", 3)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var names []string
	for {
		name, dec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		names = append(names, name)
		// Drain the section so the stream is positioned at the next header.
		switch name {
		case "meta":
			_ = dec.String()
			dec.U32()
			dec.U64()
		case "data":
			dec.U32s()
			dec.U64s()
			dec.U32s()
		default:
			t.Fatalf("unexpected section %q", name)
		}
		if err := dec.Close(); err != nil {
			t.Fatalf("section %q: %v", name, err)
		}
	}
	if len(names) != 2 || names[0] != "meta" || names[1] != "data" {
		t.Fatalf("sections = %v, want [meta data]", names)
	}

	// A stream cut inside a section header is a truncation error from
	// Next, not a clean EOF.
	r2, err := NewReader(bytes.NewReader(raw[:len(raw)-1]), "sample", 3)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	for {
		_, dec, err := r2.Next()
		if err == io.EOF {
			t.Fatal("truncated stream ended with clean EOF")
		}
		if err != nil {
			break // the expected truncation error
		}
		_ = dec.String()
		dec.U32()
		dec.U64()
		if dec.Close() != nil {
			break
		}
	}
}
