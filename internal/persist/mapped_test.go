package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// writeMappedFixture writes a snapshot in the aligned layout: one meta
// section, one u32 array, one u64 array, one byte stream, checksum.
func writeMappedFixture(t *testing.T, path string, u32s []uint32, u64s []uint64, blob []byte) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	pw := NewWriter(f, "fixture", 2)
	pw.Section("meta", func(e *Encoder) {
		e.U32(uint32(len(u32s)))
		e.String("hello")
	})
	pw.AlignedU32s("offs", u32s)
	pw.AlignedU64s("words", u64s)
	pw.AlignedBytes("stream", blob)
	pw.Checksum()
	if _, err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func checkFixture(t *testing.T, m *Mapped, u32s []uint32, u64s []uint64, blob []byte) {
	t.Helper()
	if m.Format() != "fixture" || m.Version() != 2 {
		t.Fatalf("format %q v%d", m.Format(), m.Version())
	}
	d, err := m.Section("meta")
	if err != nil {
		t.Fatal(err)
	}
	if n := d.U32(); int(n) != len(u32s) {
		t.Fatalf("meta n = %d", n)
	}
	if s := d.String(); s != "hello" {
		t.Fatalf("meta s = %q", s)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	got32, err := m.U32s("offs")
	if err != nil {
		t.Fatal(err)
	}
	for i := range u32s {
		if got32[i] != u32s[i] {
			t.Fatalf("u32[%d] = %d want %d", i, got32[i], u32s[i])
		}
	}
	got64, err := m.U64s("words")
	if err != nil {
		t.Fatal(err)
	}
	for i := range u64s {
		if got64[i] != u64s[i] {
			t.Fatalf("u64[%d] = %d want %d", i, got64[i], u64s[i])
		}
	}
	gotB, err := m.Bytes("stream")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotB, blob) {
		t.Fatalf("stream = %x want %x", gotB, blob)
	}
}

func fixtureData() ([]uint32, []uint64, []byte) {
	u32s := make([]uint32, 1001)
	for i := range u32s {
		u32s[i] = uint32(i * 7)
	}
	u64s := []uint64{0, ^uint64(0), 0xdeadbeefcafef00d}
	blob := []byte{1, 2, 3, 4, 5, 6, 7} // odd length: exercises padding after it
	return u32s, u64s, blob
}

func TestMappedRoundTrip(t *testing.T) {
	u32s, u64s, blob := fixtureData()
	path := filepath.Join(t.TempDir(), "fx.rix")
	writeMappedFixture(t, path, u32s, u64s, blob)

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	checkFixture(t, m, u32s, u64s, blob)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestMappedFallbackNoMmap(t *testing.T) {
	u32s, u64s, blob := fixtureData()
	path := filepath.Join(t.TempDir(), "fx.rix")
	writeMappedFixture(t, path, u32s, u64s, blob)

	disableMmap.Store(true)
	defer disableMmap.Store(false)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mmapped() {
		t.Fatal("expected fallback, got real mapping")
	}
	checkFixture(t, m, u32s, u64s, blob)
}

func TestMappedStreamingDecoderReadsAlignedSections(t *testing.T) {
	// The same file must decode through the ordinary streaming Reader.
	u32s, u64s, blob := fixtureData()
	path := filepath.Join(t.TempDir(), "fx.rix")
	writeMappedFixture(t, path, u32s, u64s, blob)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pr, format, err := NewReaderAny(f)
	if err != nil {
		t.Fatal(err)
	}
	if format != "fixture" || pr.Version() != 2 {
		t.Fatalf("format %q v%d", format, pr.Version())
	}
	d, err := pr.Section("meta")
	if err != nil {
		t.Fatal(err)
	}
	d.U32()
	_ = d.String()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d, err = pr.Section("offs"); err != nil {
		t.Fatal(err)
	}
	got32 := d.AlignedU32s()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got32) != len(u32s) || got32[1000] != u32s[1000] {
		t.Fatalf("streaming u32s: len %d", len(got32))
	}
	if d, err = pr.Section("words"); err != nil {
		t.Fatal(err)
	}
	got64 := d.AlignedU64s()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got64) != 3 || got64[2] != u64s[2] {
		t.Fatalf("streaming u64s: %v", got64)
	}
	if d, err = pr.Section("stream"); err != nil {
		t.Fatal(err)
	}
	gotB := d.AlignedBytes()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotB, blob) {
		t.Fatalf("streaming bytes: %x", gotB)
	}
}

func TestMappedChecksumMismatch(t *testing.T) {
	u32s, u64s, blob := fixtureData()
	dir := t.TempDir()
	path := filepath.Join(dir, "fx.rix")
	writeMappedFixture(t, path, u32s, u64s, blob)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle (a label page) — must be rejected.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	badPath := filepath.Join(dir, "bad.rix")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(badPath); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}

	// Every strict prefix must error, never panic.
	for cut := 0; cut < len(data); cut += 97 {
		p := filepath.Join(dir, "trunc.rix")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenMapped(p); err == nil {
			t.Fatalf("prefix of %d bytes accepted", cut)
		}
	}

	// A snapshot without a checksum section is not mappable.
	var buf bytes.Buffer
	pw := NewWriter(&buf, "fixture", 2)
	pw.AlignedU32s("offs", u32s)
	pw.Close()
	p := filepath.Join(dir, "nockz.rix")
	if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(p); err == nil {
		t.Fatal("checksum-less snapshot accepted by mapped path")
	}
}

func TestMappedAlignment(t *testing.T) {
	// Arrays must land on file offsets matching their declared alignment
	// regardless of preceding section sizes; vary meta length to shift
	// offsets around.
	for pad := 0; pad < 9; pad++ {
		var buf bytes.Buffer
		pw := NewWriter(&buf, "fx", 1)
		s := make([]byte, pad)
		pw.Section("meta", func(e *Encoder) { e.String(string(s)) })
		pw.AlignedU32s("a", []uint32{1, 2, 3})
		pw.AlignedU64s("b", []uint64{4, 5})
		pw.Checksum()
		if _, err := pw.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "fx.rix")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		a, err := m.U32s("a")
		if err != nil || len(a) != 3 || a[2] != 3 {
			t.Fatalf("pad %d: a=%v err=%v", pad, a, err)
		}
		b, err := m.U64s("b")
		if err != nil || len(b) != 2 || b[1] != 5 {
			t.Fatalf("pad %d: b=%v err=%v", pad, b, err)
		}
		m.Close()
	}
}
