// Package dagger implements DAGGER [51] (§3.1): the dynamic extension of
// GRAIL. Every vertex keeps an interval [low, high] per labeling that
// over-approximates the union of its reachable set's intervals, so that a
// containment miss remains a definite negative at all times:
//
//   - InsertEdge(u, v) merges v's interval into u's and propagates the
//     widening to u's ancestors until no interval changes. Intervals only
//     grow, so the no-false-negative invariant is preserved exactly.
//   - DeleteEdge removes the edge from the adjacency; intervals are left
//     intact. They may now over-approximate (more false positives, fewer
//     prunes), which the guided DFS absorbs — the quality-vs-rebuild
//     trade-off the DAGGER paper manages with periodic refreshes.
//
// Queries run the same interval-guided DFS as GRAIL, over the mutable
// adjacency.
package dagger

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

// Options configures DAGGER.
type Options struct {
	// K is the number of interval labelings. Default 2.
	K int
	// Seed drives the random spanning forests.
	Seed int64
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 2
	}
}

// Index is the DAGGER dynamic partial index. The initial graph must be a
// DAG; updates may be arbitrary (cycles introduced by inserts are handled
// by the traversal, though they loosen the intervals).
type Index struct {
	g     *core.DynGraph
	k     int
	low   []uint32 // k*n
	high  []uint32 // k*n
	stats core.Stats
}

// New builds DAGGER over an initial DAG.
func New(dag *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	n := dag.N()
	rng := rand.New(rand.NewSource(opts.Seed))
	ix := &Index{
		g: core.NewDynGraph(dag), k: opts.K,
		low:  make([]uint32, opts.K*n),
		high: make([]uint32, opts.K*n),
	}
	topo, _ := order.Topological(dag)
	for i := 0; i < opts.K; i++ {
		roots := order.Random(n, rng)
		po := order.DFSForest(dag, roots, rng)
		low := ix.low[i*n : (i+1)*n]
		high := ix.high[i*n : (i+1)*n]
		copy(low, po.Post)
		copy(high, po.Post)
		for j := len(topo) - 1; j >= 0; j-- {
			v := topo[j]
			for _, w := range dag.Succ(v) {
				if low[w] < low[v] {
					low[v] = low[w]
				}
				if high[w] > high[v] {
					high[v] = high[w]
				}
			}
		}
	}
	ix.stats = core.Stats{
		Entries:   opts.K * n,
		Bytes:     2 * opts.K * n * 4,
		BuildTime: time.Since(start),
	}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "DAGGER" }

// TryReach implements core.Partial.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	n := ix.g.N()
	for i := 0; i < ix.k; i++ {
		off := i * n
		if ix.low[off+int(s)] > ix.low[off+int(t)] || ix.high[off+int(t)] > ix.high[off+int(s)] {
			return false, true
		}
	}
	return false, false
}

// Reach answers Qr(s, t) exactly via interval-guided DFS on the current
// adjacency.
func (ix *Index) Reach(s, t graph.V) bool {
	return core.GuidedDFS(ix.g, s, t, ix.TryReach)
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// InsertEdge adds (u, v) and widens intervals along u's ancestors.
func (ix *Index) InsertEdge(u, v graph.V) error {
	if !ix.g.Insert(u, v) {
		return nil
	}
	n := ix.g.N()
	// Propagate widened intervals backward to a fixpoint (handles cycles).
	queue := []graph.V{u}
	inQueue := map[graph.V]bool{u: true}
	widen := func(x, from graph.V) bool {
		changed := false
		for i := 0; i < ix.k; i++ {
			off := i * n
			if ix.low[off+int(from)] < ix.low[off+int(x)] {
				ix.low[off+int(x)] = ix.low[off+int(from)]
				changed = true
			}
			if ix.high[off+int(from)] > ix.high[off+int(x)] {
				ix.high[off+int(x)] = ix.high[off+int(from)]
				changed = true
			}
		}
		return changed
	}
	if !widen(u, v) {
		return nil
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		delete(inQueue, x)
		for _, p := range ix.g.Pred(x) {
			if widen(p, x) && !inQueue[p] {
				inQueue[p] = true
				queue = append(queue, p)
			}
		}
	}
	return nil
}

// DeleteEdge removes (u, v); intervals stay (see package doc).
func (ix *Index) DeleteEdge(u, v graph.V) error {
	ix.g.Delete(u, v)
	return nil
}
