package dagger

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 2, Seed: 1})
	})
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 2, Seed: 2})
	})
}

func TestDynamicScript(t *testing.T) {
	indextest.CheckDynamic(t, func(g *graph.Digraph) core.Dynamic {
		return New(g, Options{K: 2, Seed: 3})
	}, true /* DAG-safe updates */, 60, 40)
}

func TestInsertPreservesNoFalseNegatives(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 80, M: 160, Seed: 4})
	ix := New(g, Options{K: 2, Seed: 5})
	script := gen.UpdateScript(g, 40, true, 6)
	cur := graph.Mutate(g)
	for _, op := range script {
		if op.Insert {
			cur.AddEdge(op.Edge.From, op.Edge.To)
			if err := ix.InsertEdge(op.Edge.From, op.Edge.To); err != nil {
				t.Fatal(err)
			}
		} else {
			cur.RemoveEdge(op.Edge)
			if err := ix.DeleteEdge(op.Edge.From, op.Edge.To); err != nil {
				t.Fatal(err)
			}
		}
		oracle := tc.NewClosure(cur.MustFreeze())
		for s := graph.V(0); int(s) < g.N(); s += 3 {
			for tt := graph.V(0); int(tt) < g.N(); tt += 3 {
				if oracle.Reach(s, tt) {
					if r, dec := ix.TryReach(s, tt); dec && !r {
						t.Fatalf("false negative (%d,%d) after %+v", s, tt, op)
					}
				}
			}
		}
		cur = graph.Mutate(cur.MustFreeze())
	}
}

func TestIntervalsOnlyGrow(t *testing.T) {
	// The DAGGER safety argument: inserts may only widen [low, high].
	g := gen.RandomDAG(gen.Config{N: 60, M: 120, Seed: 8})
	ix := New(g, Options{K: 2, Seed: 9})
	script := gen.UpdateScript(g, 60, true, 10)
	snapLow := append([]uint32(nil), ix.low...)
	snapHigh := append([]uint32(nil), ix.high...)
	for _, op := range script {
		if op.Insert {
			if err := ix.InsertEdge(op.Edge.From, op.Edge.To); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := ix.DeleteEdge(op.Edge.From, op.Edge.To); err != nil {
				t.Fatal(err)
			}
		}
		for i := range snapLow {
			if ix.low[i] > snapLow[i] || ix.high[i] < snapHigh[i] {
				t.Fatalf("interval shrank at offset %d after %+v", i, op)
			}
		}
		copy(snapLow, ix.low)
		copy(snapHigh, ix.high)
	}
}

func TestCycleInsertion(t *testing.T) {
	// Inserting an edge that closes a cycle must keep queries exact.
	g := graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}})
	ix := New(g, Options{K: 2, Seed: 7})
	if err := ix.InsertEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	for s := graph.V(0); s < 3; s++ {
		for tt := graph.V(0); tt < 3; tt++ {
			if !ix.Reach(s, tt) {
				t.Fatalf("cycle member (%d,%d) unreachable", s, tt)
			}
		}
	}
	if ix.Name() != "DAGGER" {
		t.Error("name")
	}
}
