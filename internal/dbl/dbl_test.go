package dbl

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckGeneralIndex(t, func(g *graph.Digraph) core.Index {
		return New(g, Options{K: 16, Bits: 128, Seed: 1})
	})
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 8, Bits: 64, Seed: 2})
	})
}

func TestInsertOnlyScript(t *testing.T) {
	// Start from a subset of edges, insert the rest one at a time,
	// validating against a rebuilt oracle.
	full := gen.ErdosRenyi(gen.Config{N: 50, M: 200, Seed: 3})
	edges := full.EdgeList()
	half := len(edges) / 2
	b := graph.NewBuilder(full.N())
	for _, e := range edges[:half] {
		b.AddEdge(e.From, e.To)
	}
	start := b.MustFreeze()
	ix := New(start, Options{K: 16, Bits: 128, Seed: 4})
	cur := graph.Mutate(start)
	for i, e := range edges[half:] {
		cur.AddEdge(e.From, e.To)
		if err := ix.InsertEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
		if i%10 != 0 {
			continue
		}
		oracle := tc.NewClosure(cur.MustFreeze())
		for s := graph.V(0); int(s) < full.N(); s += 2 {
			for tt := graph.V(0); int(tt) < full.N(); tt += 2 {
				if got, want := ix.Reach(s, tt), oracle.Reach(s, tt); got != want {
					t.Fatalf("after insert %d: Reach(%d,%d) = %v, want %v", i, s, tt, got, want)
				}
			}
		}
		cur = graph.Mutate(cur.MustFreeze())
	}
}

func TestDeleteUnsupported(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 10, M: 20, Seed: 5})
	ix := New(g, Options{})
	err := ix.DeleteEdge(0, 1)
	var unsup *core.Unsupported
	if !errors.As(err, &unsup) {
		t.Fatalf("DeleteEdge error = %v, want core.Unsupported", err)
	}
	if unsup.Index != "DBL" {
		t.Errorf("unsupported index name %q", unsup.Index)
	}
}

func TestLandmarkPositive(t *testing.T) {
	// A star through a high-degree hub: every leaf pair through the hub
	// must be a definite positive via the DL label.
	b := graph.NewBuilder(21)
	for i := 1; i <= 10; i++ {
		b.AddEdge(graph.V(i), 0)
		b.AddEdge(0, graph.V(10+i))
	}
	g := b.MustFreeze()
	ix := New(g, Options{K: 4, Bits: 64, Seed: 6})
	r, dec := ix.TryReach(1, 11)
	if !dec || !r {
		t.Error("hub-mediated pair should be a definite positive")
	}
	if ix.Name() != "DBL" {
		t.Error("name")
	}
}
