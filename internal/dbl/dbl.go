// Package dbl implements DBL [29] (§3.2): a partial dynamic index for
// insertion-only graphs that combines two complementary label families,
// exactly as in the published design:
//
//   - DL (dynamic landmark label): k landmark vertices; every vertex keeps
//     two k-bit sets — the landmarks it reaches and the landmarks that
//     reach it. A non-empty intersection of s's forward bits with t's
//     backward bits proves s → landmark → t (definite positive).
//   - BL (bidirectional Bloom label): hash-based filters over the full
//     reachable/reaching sets (as in BFL). A subset violation is a
//     definite negative.
//
// Both label families are monotone under edge insertion, so InsertEdge
// just propagates unions to a fixpoint; deletions are not supported (the
// defining restriction of DBL — DeleteEdge returns core.Unsupported).
// Undecided queries run the label-guided DFS.
package dbl

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/scc"
)

// Options configures DBL.
type Options struct {
	// K is the number of landmarks (bits in the DL label). Default 64.
	K int
	// Bits is the Bloom label width. Default 128.
	Bits int
	// Seed scrambles the Bloom hash.
	Seed int64
	// Workers caps the pool for the per-landmark BFS pairs and the
	// Bloom-label sweeps (0 = GOMAXPROCS, 1 = serial). Landmark
	// traversals are independent and their bit merges happen serially in
	// landmark order, so the index is identical at any worker count.
	Workers int
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 64
	}
	if o.K > 64 {
		o.K = 64
	}
	if o.Bits <= 0 {
		o.Bits = 128
	}
	o.Bits = (o.Bits + 63) &^ 63
}

// Index is the DBL partial index over a general digraph.
type Index struct {
	g           *core.DynGraph
	k           int
	words       int
	dlOut, dlIn []uint64 // landmark bit sets
	blOut, blIn []uint64 // n*words Bloom filters
	seed        uint64
	stats       core.Stats
}

// New builds DBL over g (general digraph; the build uses the condensation
// internally, labels live on original vertices).
func New(g *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	n := g.N()
	width := opts.Bits / 64
	ix := &Index{
		g: core.NewDynGraph(g), k: opts.K, words: width,
		dlOut: make([]uint64, n), dlIn: make([]uint64, n),
		blOut: make([]uint64, n*width), blIn: make([]uint64, n*width),
		seed: uint64(opts.Seed)*0x9e3779b97f4a7c15 + 0x94d049bb133111eb,
	}

	// Landmarks: top-k by degree.
	lms := order.ByDegreeDesc(g)
	if len(lms) > ix.k {
		lms = lms[:ix.k]
	}
	// DL labels by one BFS pair per landmark. The traversals fan out in
	// parallel; the bit merges stay serial (per-landmark results land in
	// indexed slots first) because landmarks share label words.
	fwd := make([][]graph.V, len(lms))
	bwd := make([][]graph.V, len(lms))
	par.Do(opts.Workers, len(lms), func(i int) {
		fwd[i] = bfs(g, lms[i], true)
		bwd[i] = bfs(g, lms[i], false)
	})
	for bit := range lms {
		for _, v := range fwd[bit] {
			ix.dlIn[v] |= 1 << uint(bit) // landmark reaches v
		}
		for _, v := range bwd[bit] {
			ix.dlOut[v] |= 1 << uint(bit) // v reaches landmark
		}
	}

	// BL labels on the condensation (all vertices of an SCC share filters).
	cond := scc.Condense(g)
	dag := cond.DAG
	nc := dag.N()
	w := ix.words
	cOut := make([]uint64, nc*w)
	cIn := make([]uint64, nc*w)
	// Seed component filters with the hashes of their member vertices.
	for v := 0; v < n; v++ {
		c := int(cond.Comp[v])
		word, bit := ix.hash(graph.V(v))
		cOut[c*w+word] |= bit
		cIn[c*w+word] |= bit
	}
	buckets := order.LevelBuckets(dag)
	par.Sweep(opts.Workers, order.Reversed(buckets), func(_ int, cv graph.V) {
		v := int(cv)
		for _, u := range dag.Succ(cv) {
			for j := 0; j < w; j++ {
				cOut[v*w+j] |= cOut[int(u)*w+j]
			}
		}
	})
	par.Sweep(opts.Workers, buckets, func(_ int, cv graph.V) {
		v := int(cv)
		for _, u := range dag.Pred(cv) {
			for j := 0; j < w; j++ {
				cIn[v*w+j] |= cIn[int(u)*w+j]
			}
		}
	})
	for v := 0; v < n; v++ {
		c := int(cond.Comp[v])
		copy(ix.blOut[v*w:(v+1)*w], cOut[c*w:(c+1)*w])
		copy(ix.blIn[v*w:(v+1)*w], cIn[c*w:(c+1)*w])
	}
	ix.stats = core.Stats{
		Entries:   4 * n,
		Bytes:     2*n*8 + 2*n*w*8,
		BuildTime: time.Since(start),
	}
	return ix
}

func bfs(g *graph.Digraph, s graph.V, forward bool) []graph.V {
	visited := make([]bool, g.N())
	visited[s] = true
	out := []graph.V{s}
	for qi := 0; qi < len(out); qi++ {
		v := out[qi]
		var next []graph.V
		if forward {
			next = g.Succ(v)
		} else {
			next = g.Pred(v)
		}
		for _, w := range next {
			if !visited[w] {
				visited[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

func (ix *Index) hash(v graph.V) (int, uint64) {
	x := (uint64(v) + 1) * ix.seed
	x ^= x >> 31
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	pos := x % uint64(ix.words*64)
	return int(pos / 64), 1 << (pos % 64)
}

// Name implements core.Index.
func (ix *Index) Name() string { return "DBL" }

// TryReach implements core.Partial.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	// DL positive: a common landmark.
	if ix.dlOut[s]&ix.dlIn[t] != 0 {
		return true, true
	}
	// BL negatives: subset violations.
	w := ix.words
	for j := 0; j < w; j++ {
		if ix.blOut[int(t)*w+j]&^ix.blOut[int(s)*w+j] != 0 {
			return false, true
		}
	}
	for j := 0; j < w; j++ {
		if ix.blIn[int(s)*w+j]&^ix.blIn[int(t)*w+j] != 0 {
			return false, true
		}
	}
	return false, false
}

// Reach answers Qr(s, t) exactly via label-guided DFS.
func (ix *Index) Reach(s, t graph.V) bool {
	return core.GuidedDFS(ix.g, s, t, ix.TryReach)
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// InsertEdge adds (u, v) and propagates the monotone label unions.
func (ix *Index) InsertEdge(u, v graph.V) error {
	if !ix.g.Insert(u, v) {
		return nil
	}
	// Backward propagation of forward labels (dlOut, blOut).
	queue := []graph.V{u}
	if ix.mergeOut(u, v) {
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, p := range ix.g.Pred(x) {
				if ix.mergeOut(p, x) {
					queue = append(queue, p)
				}
			}
		}
	}
	// Forward propagation of backward labels (dlIn, blIn).
	queue = append(queue[:0], v)
	if ix.mergeIn(v, u) {
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, s := range ix.g.Succ(x) {
				if ix.mergeIn(s, x) {
					queue = append(queue, s)
				}
			}
		}
	}
	return nil
}

func (ix *Index) mergeOut(dst, src graph.V) bool {
	changed := false
	if nv := ix.dlOut[dst] | ix.dlOut[src]; nv != ix.dlOut[dst] {
		ix.dlOut[dst] = nv
		changed = true
	}
	w := ix.words
	for j := 0; j < w; j++ {
		if nv := ix.blOut[int(dst)*w+j] | ix.blOut[int(src)*w+j]; nv != ix.blOut[int(dst)*w+j] {
			ix.blOut[int(dst)*w+j] = nv
			changed = true
		}
	}
	return changed
}

func (ix *Index) mergeIn(dst, src graph.V) bool {
	changed := false
	if nv := ix.dlIn[dst] | ix.dlIn[src]; nv != ix.dlIn[dst] {
		ix.dlIn[dst] = nv
		changed = true
	}
	w := ix.words
	for j := 0; j < w; j++ {
		if nv := ix.blIn[int(dst)*w+j] | ix.blIn[int(src)*w+j]; nv != ix.blIn[int(dst)*w+j] {
			ix.blIn[int(dst)*w+j] = nv
			changed = true
		}
	}
	return changed
}

// DeleteEdge is not supported: DBL is insertion-only by design.
func (ix *Index) DeleteEdge(u, v graph.V) error {
	return &core.Unsupported{Op: "DeleteEdge", Index: "DBL"}
}
