// Package grail implements GRAIL [50] (§3.1): a partial tree-cover index
// recording exactly k intervals per vertex, one from each of k random DFS
// spanning forests. Interval containment in every labeling is a necessary
// condition for reachability, so a failed containment is a definite
// negative (no false negatives in the pruning direction), while
// containment in all k labelings may be a false positive — resolved by
// index-guided DFS. Building time and index size are O(k·(n+m)), which is
// what made GRAIL "one of the first methods feasible for large graphs".
package grail

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/par"
)

// Options configures GRAIL.
type Options struct {
	// K is the number of random interval labelings (the paper's k); the
	// GRAIL paper uses 2–5. Default 3.
	K int
	// Seed drives the random spanning forests.
	Seed int64
	// Workers caps the pool building the K independent labelings
	// (0 = GOMAXPROCS, 1 = serial). Labeling i derives its own RNG from
	// par.SubSeed(Seed, i), so for a fixed Seed the index is identical
	// at any worker count.
	Workers int
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 3
	}
}

// Index is the GRAIL partial index over a DAG.
type Index struct {
	g *graph.Digraph
	k int
	// mins[i*n+v], posts[i*n+v]: labeling i's interval of v.
	mins  []uint32
	posts []uint32
	stats core.Stats
}

// New builds GRAIL over a DAG.
func New(dag *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	n := dag.N()
	ix := &Index{g: dag, k: opts.K,
		mins:  make([]uint32, opts.K*n),
		posts: make([]uint32, opts.K*n),
	}
	topo, _ := order.Topological(dag)
	// The K labelings are independent — the embarrassingly parallel phase.
	// Each writes only its own slice of mins/posts and owns an RNG seeded
	// by (Seed, i), so the fan-out is deterministic at any worker count.
	par.Do(opts.Workers, opts.K, func(i int) {
		// Random root order and random child order give labelings with
		// independent false-positive sets.
		rng := rand.New(rand.NewSource(par.SubSeed(opts.Seed, i)))
		roots := order.Random(n, rng)
		po := order.DFSForest(dag, roots, rng)
		post := ix.posts[i*n : (i+1)*n]
		low := ix.mins[i*n : (i+1)*n]
		copy(post, po.Post)
		// GRAIL's label of v is [low(v), post(v)] with low(v) the minimum
		// post number over everything reachable from v — computed along
		// ALL edges (non-tree included) in reverse topological order, so
		// the interval of v contains the interval of every vertex v
		// reaches (no false negatives).
		copy(low, po.Post)
		for j := len(topo) - 1; j >= 0; j-- {
			v := topo[j]
			for _, w := range dag.Succ(v) {
				if low[w] < low[v] {
					low[v] = low[w]
				}
			}
		}
	})
	ix.stats = core.Stats{
		Entries:   opts.K * n,
		Bytes:     opts.K * n * 8,
		BuildTime: time.Since(start),
	}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "GRAIL" }

// contains reports whether labeling i's interval of s contains t's post.
func (ix *Index) contains(i int, s, t graph.V) bool {
	n := ix.g.N()
	off := i * n
	return ix.mins[off+int(s)] <= ix.posts[off+int(t)] &&
		ix.posts[off+int(t)] <= ix.posts[off+int(s)]
}

// TryReach implements core.Partial: a definite negative when any labeling
// excludes t from s's subtree interval; otherwise undecided.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	for i := 0; i < ix.k; i++ {
		if !ix.contains(i, s, t) {
			return false, true
		}
	}
	return false, false
}

// Reach answers Qr(s, t) exactly: index pruning plus guided DFS.
func (ix *Index) Reach(s, t graph.V) bool {
	return core.GuidedDFS(ix.g, s, t, ix.TryReach)
}

// ReachCounted implements core.ReachCounter: the same guided DFS as
// Reach, additionally reporting how many vertices it expanded and whether
// the index labels decided the query without any expansion.
func (ix *Index) ReachCounted(s, t graph.V) (bool, int, bool) {
	r, n := core.CountingGuidedDFS(ix.g, s, t, ix.TryReach)
	return r, n, n == 0
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }
