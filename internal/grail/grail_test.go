package grail

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 3, Seed: 1})
	})
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 2, Seed: 7})
	})
}

func TestKOne(t *testing.T) {
	// Even a single labeling must stay exact through guided DFS.
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 1, Seed: 3})
	})
}

func TestNoFalseNegativesOnLookup(t *testing.T) {
	// If the oracle says reachable, TryReach must never answer "definitely
	// not" — the defining property of GRAIL's labels.
	g := gen.RandomDAG(gen.Config{N: 150, M: 450, Seed: 4})
	ix := New(g, Options{K: 4, Seed: 5})
	oracle := tc.NewClosure(g)
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if !oracle.Reach(s, tt) {
				continue
			}
			if r, dec := ix.TryReach(s, tt); dec && !r {
				t.Fatalf("false negative at (%d,%d)", s, tt)
			}
		}
	}
}

func TestMoreLabelingsPruneMore(t *testing.T) {
	// More random trees should decide at least as many negative queries
	// (statistically; use one seed and assert non-strict improvement with
	// slack).
	g := gen.RandomDAG(gen.Config{N: 200, M: 500, Seed: 6})
	count := func(k int) int {
		ix := New(g, Options{K: k, Seed: 9})
		decided := 0
		for s := graph.V(0); int(s) < g.N(); s += 3 {
			for tt := graph.V(0); int(tt) < g.N(); tt += 3 {
				if _, dec := ix.TryReach(s, tt); dec {
					decided++
				}
			}
		}
		return decided
	}
	if c1, c5 := count(1), count(5); c5 < c1 {
		t.Errorf("k=5 decided %d < k=1 decided %d", c5, c1)
	}
}

func TestStats(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 100, M: 200, Seed: 1})
	ix := New(g, Options{K: 3, Seed: 1})
	st := ix.Stats()
	if st.Entries != 300 {
		t.Errorf("Entries = %d, want 3n = 300", st.Entries)
	}
	if ix.Name() != "GRAIL" {
		t.Error("name")
	}
}

func TestDefaultOptions(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 30, M: 60, Seed: 2})
	ix := New(g, Options{})
	if ix.k != 3 {
		t.Errorf("default K = %d, want 3", ix.k)
	}
}
