//go:build race

package scratch

// Under the race detector sync.Pool deliberately drops a fraction of Puts
// (to flush out retain-after-Put bugs), so the steady-state zero-alloc
// guarantee does not hold there by construction.
const raceEnabled = true
