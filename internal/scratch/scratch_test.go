package scratch

import (
	"runtime/debug"
	"testing"

	"repro/internal/graph"
)

// TestReuseIsClean: an arena returned dirty must come back from Get with
// a cleared visited set and empty queues — the reset-between-queries
// contract every pooled traversal relies on.
func TestReuseIsClean(t *testing.T) {
	// Pin the pool entry: with GC off, Put → Get returns the same arena.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	s := Get(1000)
	for i := 0; i < 1000; i += 7 {
		s.Visited().Set(i)
	}
	s.Visited2(500).Set(13)
	s.Queue = append(s.Queue, 1, 2, 3)
	s.Queue2 = append(s.Queue2, 4)
	s.Aux = append(s.Aux, 5, 6)
	Put(s)

	r := Get(1000)
	for i := 0; i < 1000; i++ {
		if r.Visited().Test(i) {
			t.Fatalf("reused arena has stale visited bit %d", i)
		}
	}
	if v2 := r.Visited2(500); v2.Test(13) {
		t.Fatal("reused arena has stale secondary visited bit")
	}
	if len(r.Queue) != 0 || len(r.Queue2) != 0 || len(r.Aux) != 0 {
		t.Fatalf("reused arena has stale queues: %d/%d/%d",
			len(r.Queue), len(r.Queue2), len(r.Aux))
	}
	Put(r)
}

// TestGrowAcrossSizes: an arena warmed on a small graph must be safe on a
// larger one (regrown and cleared), and shrinking requests must not
// expose stale high bits later.
func TestGrowAcrossSizes(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	s := Get(64)
	s.Visited().Set(63)
	Put(s)

	big := Get(10_000)
	if big.Visited().Test(63) {
		t.Fatal("stale bit survived a grow")
	}
	big.Visited().Set(9_999)
	Put(big)

	small := Get(64)
	if small.Visited().Test(63) {
		t.Fatal("stale bit visible after shrink")
	}
	small.Visited().Set(70) // force a grow through the Set path
	Put(small)

	again := Get(10_000)
	if again.Visited().Test(9_999) {
		t.Fatal("stale high bit re-exposed after shrink/grow cycle")
	}
	Put(again)
}

// TestSteadyStateZeroAlloc: after warm-up at a fixed size, Get/Put must
// not allocate.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under -race; zero-alloc cannot hold")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	warm := Get(5000)
	warm.Queue = append(warm.Queue, make([]graph.V, 256)...)
	Put(warm)

	allocs := testing.AllocsPerRun(100, func() {
		s := Get(5000)
		s.Queue = append(s.Queue, 1)
		Put(s)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f objects/op, want 0", allocs)
	}
}
