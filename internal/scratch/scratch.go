// Package scratch provides the pooled per-query traversal arena: a
// visited bitset (two for bidirectional searches) plus reusable vertex
// queues. Before this pool every online traversal and every partial
// index's guided-DFS fallback allocated a fresh bitset.New(g.N()) and
// queue per query — on large graphs that allocation dominated
// negative-query latency and generated garbage proportional to query
// volume. With the pool, steady-state queries allocate nothing: Get
// reuses a warmed arena whose bitset clear is a memclr and whose queues
// keep their grown capacity.
//
// Usage:
//
//	sc := scratch.Get(g.N())
//	defer scratch.Put(sc)
//	visited := sc.Visited()         // cleared, holds bits [0, n)
//	sc.Queue = append(sc.Queue, s)  // operate on the fields directly so
//	                                // growth survives into the pool
//
// Arenas are handed out by a sync.Pool, so concurrent queries (BatchReach
// workers) each get their own; nested use inside one query (e.g. a guided
// DFS asking for a second arena) is safe but not needed by any caller —
// every traversal in this repository acquires exactly one.
package scratch

import (
	"sync"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// T is one query's traversal arena.
type T struct {
	visited  *bitset.Set
	visited2 *bitset.Set
	words    []uint64

	// Queue doubles as BFS queue and DFS stack. Queue2 and Aux serve
	// bidirectional searches (second frontier, next-frontier build
	// buffer). Callers append/truncate the fields in place.
	Queue  []graph.V
	Queue2 []graph.V
	Aux    []graph.V
}

var pool = sync.Pool{New: func() any {
	return &T{visited: &bitset.Set{}, visited2: &bitset.Set{}}
}}

// Get returns an arena whose primary visited set is cleared with
// capacity for bits [0, n) and whose queues are empty (capacity kept).
func Get(n int) *T {
	s := pool.Get().(*T)
	s.visited.EnsureClear(n)
	s.Queue = s.Queue[:0]
	s.Queue2 = s.Queue2[:0]
	s.Aux = s.Aux[:0]
	return s
}

// Put returns the arena to the pool. The caller must not retain any
// reference into the arena (the visited sets or queue backing arrays)
// after Put.
func Put(s *T) { pool.Put(s) }

// Visited returns the primary visited set, already cleared by Get.
func (s *T) Visited() *bitset.Set { return s.visited }

// Visited2 returns the secondary visited set cleared with capacity for
// bits [0, n) — the backward frontier of bidirectional searches. It is
// cleared lazily here rather than in Get so unidirectional queries never
// pay for it.
func (s *T) Visited2(n int) *bitset.Set {
	s.visited2.EnsureClear(n)
	return s.visited2
}

// Words returns the arena's per-vertex word array (one uint64 per
// vertex), zeroed, of length n — the reach-mask storage of the
// bit-parallel multi-source kernel (traversal.MultiSourceReach). Like
// the visited sets it is cleared lazily, reuses its grown backing, and
// must not be retained past Put.
func (s *T) Words(n int) []uint64 {
	if cap(s.words) < n {
		s.words = make([]uint64, n)
	} else {
		s.words = s.words[:n]
		clear(s.words)
	}
	return s.words
}
