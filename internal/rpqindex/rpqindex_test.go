package rpqindex

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/regexpath"
	"repro/internal/traversal"
)

// checkAgainstProductBFS cross-validates the index over all pairs.
func checkAgainstProductBFS(t *testing.T, g *graph.Digraph, alpha string) {
	t.Helper()
	ix, err := New(g, alpha)
	if err != nil {
		t.Fatalf("%q: %v", alpha, err)
	}
	dfa, err := regexpath.Compile(alpha, g)
	if err != nil {
		t.Fatal(err)
	}
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			want := traversal.ProductBFS(g, s, tt, dfa)
			if got := ix.Reach(s, tt); got != want {
				t.Fatalf("%q: Reach(%d,%d) = %v, want %v", alpha, s, tt, got, want)
			}
		}
	}
}

func TestFig1Constraints(t *testing.T) {
	g := graph.Fig1Labeled()
	for _, alpha := range []string{
		"(friendOf|follows)*",
		"(worksFor.friendOf)*",
		"follows.worksFor.worksFor",
		"(friendOf|follows)+",
		"friendOf.(worksFor|friendOf)*",
		"worksFor+",
	} {
		checkAgainstProductBFS(t, g, alpha)
	}
}

func TestRandomGraphsMixedConstraints(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 40, M: 160, Seed: seed}), 3, 0.5, seed+1)
		for _, alpha := range []string{
			"(l0|l1)*", "(l0.l1)*", "l0.(l1|l2)*", "(l0.l1|l2)+", "l2*", "l0",
		} {
			checkAgainstProductBFS(t, g, alpha)
		}
	}
}

func TestCyclicSelfQueries(t *testing.T) {
	// 2-cycle with labels a,b: (a.b)+ from 0 to 0 must be true; the
	// product self-node subtlety.
	b := graph.NewLabeledBuilder(2)
	b.AddLabeledEdge(0, 1, 0)
	b.AddLabeledEdge(1, 0, 1)
	g := b.MustFreeze()
	checkAgainstProductBFS(t, g, "(l0.l1)+")
	checkAgainstProductBFS(t, g, "(l0.l1)*")
	ix, _ := New(g, "(l0.l1)+")
	if !ix.Reach(0, 0) {
		t.Fatal("cycle self query must be true")
	}
	if ix.Reach(1, 1) {
		t.Fatal("misaligned cycle self query must be false")
	}
}

func TestMetadata(t *testing.T) {
	g := graph.Fig1Labeled()
	ix, err := New(g, "worksFor*")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Alpha() != "worksFor*" || ix.Name() != "RPQ[worksFor*]" {
		t.Error("metadata")
	}
	if ix.Stats().BuildTime <= 0 {
		t.Error("build time")
	}
	if _, err := New(g, "nosuch*"); err == nil {
		t.Error("unknown label must fail")
	}
}

func TestQueryThroughput(t *testing.T) {
	// The point of the index: answers are lookups, so a scan over all
	// pairs must be fast and exact on a bigger graph.
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 300, M: 1200, Seed: 9}), 4, 0.7, 10)
	alpha := "(l0|l3)*.l1"
	ix, err := New(g, alpha)
	if err != nil {
		t.Fatal(err)
	}
	dfa, _ := regexpath.Compile(alpha, g)
	rng := rand.New(rand.NewSource(11))
	for q := 0; q < 2000; q++ {
		s := graph.V(rng.Intn(g.N()))
		tt := graph.V(rng.Intn(g.N()))
		if got, want := ix.Reach(s, tt), traversal.ProductBFS(g, s, tt, dfa); got != want {
			t.Fatalf("Reach(%d,%d) = %v, want %v", s, tt, got, want)
		}
	}
}
