// Package rpqindex addresses the paper's §5 challenge that "the existing
// solutions can only deal with a specific type of path constraint" and
// that an index for "the entire fragment of regular path queries" would
// be of great interest: it builds a reachability index for ANY fixed
// path-constraint expression α of the §2.2 grammar.
//
// The construction generalizes the phase-product idea of the RLC index:
// compile α to a DFA, form the product graph over (vertex, state) pairs
// (an edge (u, l, v) induces (u,q) → (v, δ(q,l)) for every live state q),
// and label the product with pruned 2-hop. Qr(s, t, α) then asks whether
// (s, q0) reaches (t, qf) for some accepting qf — pure index lookups.
//
// The index answers one constraint (and, by construction, any query whose
// DFA is the same automaton); a GDBMS would build one per hot constraint
// in its query log, exactly the §5 "practical path constraints" scenario
// motivated by the Wikidata query-log study [6].
package rpqindex

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pll"
	"repro/internal/regexpath"
)

// Index answers Qr(s, t, α) for one fixed α by product 2-hop lookups.
type Index struct {
	g         *graph.Digraph
	alpha     string
	dfa       *regexpath.DFA
	states    int
	accepting []graph.V // accepting DFA states
	ix        *pll.Index
	stats     core.Stats
}

// New compiles alpha against g's labels and builds the product labeling.
func New(g *graph.Digraph, alpha string) (*Index, error) {
	ast, err := regexpath.Parse(alpha, regexpath.GraphResolver(g))
	if err != nil {
		return nil, err
	}
	return NewFromAST(g, alpha, ast), nil
}

// NewFromAST is New for callers that already parsed alpha (DB.
// RegisterConstraint validates the expression up front and hands the AST
// through rather than parsing twice).
func NewFromAST(g *graph.Digraph, alpha string, ast *regexpath.Node) *Index {
	start := time.Now()
	dfa := regexpath.CompileDFA(regexpath.CompileNFA(ast), g.Labels())
	ns := dfa.NumStates()
	b := graph.NewBuilder(g.N() * ns)
	g.Edges(func(e graph.Edge) bool {
		for q := 0; q < ns; q++ {
			if nq := dfa.Step(q, e.Label); nq >= 0 {
				b.AddEdge(e.From*graph.V(ns)+graph.V(q), e.To*graph.V(ns)+graph.V(nq))
			}
		}
		return true
	})
	product := b.MustFreeze()
	idx := &Index{
		g:      g,
		alpha:  alpha,
		dfa:    dfa,
		states: ns,
		ix:     pll.New(product, pll.Options{Name: "RPQ-product"}),
	}
	for q := 0; q < ns; q++ {
		if dfa.Accepting(q) {
			idx.accepting = append(idx.accepting, graph.V(q))
		}
	}
	st := idx.ix.Stats()
	idx.stats = core.Stats{Entries: st.Entries, Bytes: st.Bytes, BuildTime: time.Since(start)}
	return idx
}

// Alpha returns the indexed constraint expression.
func (ix *Index) Alpha() string { return ix.alpha }

// Name implements the common naming convention.
func (ix *Index) Name() string { return "RPQ[" + ix.alpha + "]" }

// Reach reports whether some s-t path satisfies α. The s == t case is
// true iff α accepts the empty word or some nontrivial cycle spells a
// word of L(α).
func (ix *Index) Reach(s, t graph.V) bool {
	ns := graph.V(ix.states)
	q0 := graph.V(ix.dfa.Start())
	if s == t && ix.dfa.MatchesEmpty() {
		return true
	}
	startNode := s*ns + q0
	for _, qf := range ix.accepting {
		target := t*ns + qf
		if startNode == target {
			// Same product node: 2-hop treats self pairs as trivially
			// reachable, but the query needs a genuine cycle — take one
			// concrete first step and ask the labels for the way back.
			if ix.firstStepReach(s, target) {
				return true
			}
			continue
		}
		if ix.ix.Reach(startNode, target) {
			return true
		}
	}
	return false
}

// firstStepReach peels one edge off the start product node and checks
// product reachability from the step target back to `target`.
func (ix *Index) firstStepReach(s graph.V, target graph.V) bool {
	ns := graph.V(ix.states)
	q0 := ix.dfa.Start()
	succ := ix.g.Succ(s)
	labs := ix.g.SuccLabels(s)
	for i, w := range succ {
		nq := ix.dfa.Step(q0, labs[i])
		if nq < 0 {
			continue
		}
		node := w*ns + graph.V(nq)
		if node == target || ix.ix.Reach(node, target) {
			return true
		}
	}
	return false
}

// Stats implements the common statistics convention.
func (ix *Index) Stats() core.Stats { return ix.stats }
