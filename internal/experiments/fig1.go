package experiments

import (
	"fmt"
	"io"

	reach "repro"
	"repro/internal/labelset"
	"repro/internal/lcrgtc"
	"repro/internal/tc"
)

// Fig1 replays every worked example the paper states on its Figure 1
// running example and reports the expected-vs-computed answer for each.
// A mismatch panics: these are the reproduction's ground-truth anchors.
func Fig1(w io.Writer) {
	plain := reach.Fig1Plain()
	labeled := reach.Fig1Labeled()
	id := func(name string) reach.V {
		v, ok := labeled.VertexByName(name)
		if !ok {
			panic("fig1: missing vertex " + name)
		}
		return v
	}
	db, err := reach.NewDB(labeled, reach.DBConfig{})
	if err != nil {
		panic(err)
	}
	plainDB, err := reach.NewDB(plain, reach.DBConfig{Plain: reach.KindTreeCover})
	if err != nil {
		panic(err)
	}
	gtc := lcrgtc.New(labeled)

	t := NewTable("Figure 1 — the paper's worked examples", "claim", "paper", "computed")
	check := func(claim string, want, got interface{}) {
		t.Row(claim, want, got)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			panic(fmt.Sprintf("fig1: %q: want %v, got %v", claim, want, got))
		}
	}

	// §2.1: Qr(A, G) = true via (A, D, H, G).
	reachAG, _ := plainDB.Reach(id("A"), id("G"))
	check("Qr(A,G) [§2.1]", true, reachAG)
	// §2.2: Qr(A, G, (friendOf ∪ follows)*) = false.
	got, _ := db.Query(id("A"), id("G"), "(friendOf|follows)*")
	check("Qr(A,G,(friendOf∪follows)*) [§2.2]", false, got)
	// §4.1: SPLS(L→M) = {worksFor}.
	check("SPLS(L,M) [§4.1]", "{worksFor}", splsString(gtc, labeled, id("L"), id("M")))
	// §4.1: SPLS(A→L) = {follows}.
	check("SPLS(A,L) [§4.1]", "{follows}", splsString(gtc, labeled, id("A"), id("L")))
	// §4.1: SPLS(A→M) = {follows, worksFor}.
	check("SPLS(A,M) [§4.1]", "{follows,worksFor}", splsString(gtc, labeled, id("A"), id("M")))
	// §4.1.2: the Dijkstra-like search settles p3 = {worksFor} for L→H.
	lh := gtc.SPLS(id("L"), id("H"))
	check("SPLS(L,H) contains {worksFor} (p3 beats p4) [§4.1.2]",
		true, lh != nil && lh.Has(labelset.Of(2)))
	// §4.2: MR of the L→B path is (worksFor, friendOf) and the query holds.
	check("Qr(L,B,(worksFor·friendOf)*) [§4.2]", true,
		tc.RLCReach(labeled, id("L"), id("B"), []reach.Label{2, 0}, true))
	rlcGot, _ := db.Query(id("L"), id("B"), "(worksFor.friendOf)*")
	check("RLC index agrees [§4.2]", true, rlcGot)
	t.Write(w)
}

func splsString(gtc *lcrgtc.Index, g *reach.Graph, s, t reach.V) string {
	c := gtc.SPLS(s, t)
	if c == nil {
		return "(unreachable)"
	}
	if c.Len() != 1 {
		return fmt.Sprintf("(%d minimal sets)", c.Len())
	}
	return c.Sets()[0].String(g)
}
