package experiments

import (
	"bytes"
	"strings"
	"testing"

	reach "repro"
)

func TestTable1RunsAndCoversAllKinds(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, 300, 1)
	out := buf.String()
	for _, k := range reach.Kinds() {
		ix, err := reach.Build(k, reach.Fig1Plain(), reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, ix.Name()) {
			t.Errorf("Table 1 output missing %s", ix.Name())
		}
	}
}

func TestTable2Runs(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf, 100, 4, 1)
	out := buf.String()
	for _, want := range []string{"P2H+", "Landmark", "Zou-GTC", "DLCR", "Jin-Tree", "Chen-Decomp", "RLC"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %s", want)
		}
	}
}

func TestFig1ClaimsHold(t *testing.T) {
	var buf bytes.Buffer
	// Fig1 panics on any claim mismatch.
	Fig1(&buf)
	if !strings.Contains(buf.String(), "worked examples") {
		t.Error("missing header")
	}
}

func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke is not short")
	}
	sc := Scale{Factor: 1}
	var buf bytes.Buffer
	// Run each experiment at the smallest scale; they panic on any wrong
	// query answer, so this doubles as an integration test.
	E1(&buf, Scale{Factor: 0}, 1) // Factor<=0 clamps to 1
	E2(&buf, sc, 1)
	E3(&buf, sc, 1)
	E4(&buf, sc, 1)
	E5(&buf, sc, 1)
	E6(&buf, sc, 1)
	E7(&buf, sc, 1)
	E8(&buf, sc, 1)
	E9(&buf, sc, 1)
	E10(&buf, sc, 1)
	E12(&buf, sc, 1)
	E13(&buf, sc, 1)
	E14(&buf, sc, 1)
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E12", "E13"} {
		if !strings.Contains(out, id+" —") {
			t.Errorf("missing %s header", id)
		}
	}
	// E12's probe-level table and build-phase spans must materialize.
	for _, want := range []string{"decided", "bfl/filters-out", "scc/condense"} {
		if !strings.Contains(out, want) {
			t.Errorf("E12 output missing %q", want)
		}
	}
	// E13's scaling table and pooled-vs-unpooled allocation rows.
	for _, want := range []string{"GOMAXPROCS", "speedup@4", "BFS (pooled)", "BFS (unpooled)"} {
		if !strings.Contains(out, want) {
			t.Errorf("E13 output missing %q", want)
		}
	}
	// E14's three acceleration layers: batch kernel, result cache,
	// shared condensation.
	for _, want := range []string{"bit-parallel kernel", "hit rate", "memo hits = 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("E14 output missing %q", want)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := NewTable("demo", "a", "bb")
	tab.Row(1, "x")
	tab.Row("longer", 3.14159)
	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3.14") {
		t.Errorf("bad table output:\n%s", out)
	}
}
