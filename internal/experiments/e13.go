package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	reach "repro"
	"repro/internal/bitset"
	"repro/internal/gen"
	"repro/internal/tc"
	"repro/internal/traversal"
)

// E13 — the §5 "parallel computation of indexes" direction, as implemented
// by the internal/par substrate and the pooled query scratch:
//
//  1. Build-time scaling: each parallelized builder is constructed at
//     worker counts 1, 2, 4 and 8 over the same graph and seed. The
//     speedup column is W1/Wk wall time. On a multi-core host the
//     embarrassingly parallel builds (GRAIL, O'Reach, exact TC) approach
//     the core count; with GOMAXPROCS=1 every pool collapses onto one
//     thread and the column instead bounds the substrate's overhead — the
//     header records GOMAXPROCS so the two readings are not confused.
//     Answers are identical at every worker count (the determinism
//     guarantee of reach.Options.Workers, tested under -race).
//  2. Query-scratch pooling: heap allocations per BFS query, measured by
//     runtime.MemStats deltas, for the pooled traversal versus an
//     unpooled replica that allocates its visited bitset and queue per
//     query the way every traversal here did before the scratch arena.
func E13(w io.Writer, sc Scale, seed int64) {
	n := sc.n(20000)
	g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})

	t := NewTable(fmt.Sprintf("E13 — parallel index construction (§5), GOMAXPROCS=%d",
		runtime.GOMAXPROCS(0)),
		"index", "W1 build", "W2", "W4", "W8", "speedup@4")
	builders := []struct {
		name  string
		build func(workers int)
	}{
		{"GRAIL", func(ws int) {
			mustBuild(reach.KindGRAIL, g, reach.Options{K: 3, Seed: seed, Workers: ws})
		}},
		{"FERRARI", func(ws int) {
			mustBuild(reach.KindFerrari, g, reach.Options{K: 3, Workers: ws})
		}},
		{"IP", func(ws int) {
			mustBuild(reach.KindIP, g, reach.Options{K: 8, Seed: seed, Workers: ws})
		}},
		{"O'Reach", func(ws int) {
			mustBuild(reach.KindOReach, g, reach.Options{K: 16, Workers: ws})
		}},
		{"BFL", func(ws int) {
			mustBuild(reach.KindBFL, g, reach.Options{Bits: 256, Seed: seed, Workers: ws})
		}},
		{"DBL", func(ws int) {
			mustBuild(reach.KindDBL, g, reach.Options{K: 16, Bits: 256, Seed: seed, Workers: ws})
		}},
		{"exact TC", func(ws int) { tc.NewClosureN(g, ws) }},
	}
	if n > 50000 {
		// The closure matrix is n^2 bits; past ~300 MB it stops being an
		// experiment about parallelism and becomes one about swap.
		builders = builders[:len(builders)-1]
		fmt.Fprintf(w, "E13: skipping exact TC at n=%d (quadratic closure matrix)\n", n)
	}
	for _, b := range builders {
		var dur [4]time.Duration
		for i, ws := range []int{1, 2, 4, 8} {
			start := time.Now()
			b.build(ws)
			dur[i] = time.Since(start)
		}
		t.Row(b.name, dur[0].Round(time.Microsecond), dur[1].Round(time.Microsecond),
			dur[2].Round(time.Microsecond), dur[3].Round(time.Microsecond),
			ratio(dur[0], dur[2]))
	}
	t.Write(w)

	qs := gen.Queries(g, 2000, seed+1)
	at := NewTable("E13 — per-query heap allocations: pooled scratch vs per-query bitsets",
		"traversal", "queries", "allocs/query", "bytes/query")
	pa, pb := measureAllocs(func() {
		for _, q := range qs {
			traversal.BFS(g, q.S, q.T)
		}
	})
	at.Row("BFS (pooled)", len(qs), perQuery(pa, len(qs)), perQuery(pb, len(qs)))
	ua, ub := measureAllocs(func() {
		for _, q := range qs {
			unpooledBFS(g, q.S, q.T)
		}
	})
	at.Row("BFS (unpooled)", len(qs), perQuery(ua, len(qs)), perQuery(ub, len(qs)))
	at.Write(w)
}

func mustBuild(k reach.Kind, g *reach.Graph, opt reach.Options) {
	if _, err := reach.Build(k, g, opt); err != nil {
		panic(err)
	}
}

// measureAllocs returns the (mallocs, bytes) f performed, by MemStats
// deltas. A warmup call populates the scratch pool so the pooled side is
// measured at steady state, matching a long-running query workload.
func measureAllocs(f func()) (mallocs, bytes uint64) {
	f()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

func perQuery(total uint64, queries int) string {
	return fmt.Sprintf("%.1f", float64(total)/float64(queries))
}

// unpooledBFS is the pre-pool traversal: one visited bitset and one queue
// allocation per query. Kept as the experiment's baseline.
func unpooledBFS(g *reach.Graph, s, t reach.V) bool {
	if s == t {
		return true
	}
	visited := bitset.New(g.N())
	visited.Set(int(s))
	queue := []reach.V{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Succ(v) {
			if w == t {
				return true
			}
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				queue = append(queue, w)
			}
		}
	}
	return false
}
