package experiments

import (
	"fmt"
	"io"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/labelset"
	"repro/internal/tc"
)

// Meta is the paper's static taxonomy for one technique (the Framework /
// Input / Dynamic columns of Tables 1–2); the measured columns come from
// running the implementation.
type Meta struct {
	Framework string
	Input     string // "DAG" or "General"
	Dynamic   string
}

// Table1Meta mirrors the paper's Table 1 rows for the implemented kinds.
var Table1Meta = map[reach.Kind]Meta{
	reach.KindTreeCover: {"Tree cover", "DAG", "No"},
	reach.KindTreeSSPI:  {"Tree cover", "DAG", "No"},
	reach.KindDualLabel: {"Tree cover", "DAG", "No"},
	reach.KindGRIPP:     {"Tree cover", "General", "No"},
	reach.KindPathTree:  {"Tree cover", "DAG", "No"},
	reach.KindGRAIL:     {"Tree cover", "DAG", "No"},
	reach.KindFerrari:   {"Tree cover", "DAG", "No"},
	reach.KindDAGGER:    {"Tree cover", "DAG", "Yes"},
	reach.KindTwoHop:    {"2-Hop", "General", "No"},
	reach.KindThreeHop:  {"2-Hop", "DAG", "No"},
	reach.KindPathHop:   {"2-Hop", "DAG", "No"},
	reach.KindTFL:       {"2-Hop", "DAG", "No"},
	reach.KindDL:        {"2-Hop", "General", "No"},
	reach.KindPLL:       {"2-Hop", "General", "No"},
	reach.KindTOL:       {"2-Hop", "DAG", "Yes"},
	reach.KindDBL:       {"2-Hop", "General", "Insert-only"},
	reach.KindOReach:    {"2-Hop", "DAG", "No"},
	reach.KindHL:        {"Hierarchy", "DAG", "No"},
	reach.KindIP:        {"Approximate TC", "DAG", "Partial"},
	reach.KindBFL:       {"Approximate TC", "DAG", "No"},
	reach.KindFeline:    {"Coordinates", "DAG", "No"},
	reach.KindPReaCH:    {"Pruned search", "DAG", "No"},
}

// Table2Meta mirrors the paper's Table 2 rows.
var Table2Meta = map[reach.LCRKind]Meta{
	reach.LCRJinTree:  {"Tree cover", "General", "No"},
	reach.LCRDecomp:   {"Tree cover", "General", "No"},
	reach.LCRZouGTC:   {"GTC", "General", "Yes (rebuild)"},
	reach.LCRLandmark: {"GTC", "General", "No"},
	reach.LCRP2H:      {"2-Hop", "General", "No"},
	reach.LCRDLCR:     {"2-Hop", "General", "Yes"},
	reach.LCRBloom:    {"Approximate GTC (§5 prototype)", "General", "No"},
}

// Table1 builds every plain index on a random DAG and a cyclic digraph of
// the given size and reports, per technique: the paper's taxonomy columns
// plus measured completeness (fraction of sampled queries the index
// decides without traversal), build time, entries, size and mean query
// latency.
func Table1(w io.Writer, n int, seed int64) {
	dag := gen.RandomDAG(gen.Config{N: n, M: 3 * n, Seed: seed})
	queries := gen.Queries(dag, 2000, seed+1)
	t := NewTable(
		fmt.Sprintf("Table 1 — plain reachability indexes (random DAG n=%d m=%d, 2000 queries)", dag.N(), dag.M()),
		"Index", "Framework", "Type(meas.)", "Input", "Dynamic", "Build", "Entries", "Size", "Query")
	for _, k := range reach.Kinds() {
		meta := Table1Meta[k]
		ix, err := reach.Build(k, dag, reach.Options{Seed: seed})
		if err != nil {
			t.Row(k, meta.Framework, "error", meta.Input, meta.Dynamic, err, "-", "-", "-")
			continue
		}
		decided, total := measureCompleteness(ix, queries)
		typ := "Complete"
		if decided < total {
			typ = fmt.Sprintf("Partial (%.0f%%)", 100*float64(decided)/float64(total))
		}
		qt := measureQueryTime(ix, queries)
		st := ix.Stats()
		t.Row(ix.Name(), meta.Framework, typ, meta.Input, meta.Dynamic,
			st.BuildTime, st.Entries, formatBytes(st.Bytes), qt)
	}
	t.Write(w)
}

// measureCompleteness counts how many queries the index answers by pure
// lookup (TryReach decided). Non-partial indexes decide everything.
func measureCompleteness(ix reach.Index, qs []gen.Query) (decided, total int) {
	total = len(qs)
	p, ok := ix.(reach.PartialIndex)
	if !ok {
		return total, total
	}
	for _, q := range qs {
		if _, dec := p.TryReach(q.S, q.T); dec {
			decided++
		}
	}
	return decided, total
}

func measureQueryTime(ix reach.Index, qs []gen.Query) time.Duration {
	start := time.Now()
	for _, q := range qs {
		if got := ix.Reach(q.S, q.T); got != q.Want {
			panic(fmt.Sprintf("%s: wrong answer for (%d,%d)", ix.Name(), q.S, q.T))
		}
	}
	return time.Since(start) / time.Duration(len(qs))
}

// Table2 is the LCR/RLC analogue of Table1, on a labeled digraph.
func Table2(w io.Writer, n, labels int, seed int64) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: n, M: 3 * n, Seed: seed}), labels, 0.8, seed+1)
	queries := gen.LCRQueries(g, 500, seed+2)
	t := NewTable(
		fmt.Sprintf("Table 2 — path-constrained reachability indexes (labeled ER n=%d m=%d |L|=%d, 500 queries)", g.N(), g.M(), g.Labels()),
		"Index", "Framework", "Constraint", "Input", "Dynamic", "Build", "Entries", "Size", "Query")
	for _, k := range reach.LCRKinds() {
		meta := Table2Meta[k]
		ix, err := reach.BuildLCR(k, g, reach.Options{K: 16})
		if err != nil {
			t.Row(k, meta.Framework, "Alternation", meta.Input, meta.Dynamic, err, "-", "-", "-")
			continue
		}
		start := time.Now()
		for _, q := range queries {
			got := q.S == q.T || ix.ReachLC(q.S, q.T, labelset.Set(q.Allowed))
			if got != (q.Want || q.S == q.T) {
				panic(fmt.Sprintf("%s: wrong LCR answer", ix.Name()))
			}
		}
		qt := time.Since(start) / time.Duration(len(queries))
		st := ix.Stats()
		t.Row(ix.Name(), meta.Framework, "Alternation", meta.Input, meta.Dynamic,
			st.BuildTime, st.Entries, formatBytes(st.Bytes), qt)
	}
	// The RLC row (concatenation).
	rlcIx, err := reach.BuildRLC(g, reach.Options{MaxSeq: 2})
	if err == nil {
		rq := rlcQueries(g, 200, seed+3)
		start := time.Now()
		for _, q := range rq {
			if got := rlcIx.ReachRLC(q.s, q.t, q.seq); got != q.want {
				panic("RLC: wrong answer")
			}
		}
		qt := time.Since(start) / time.Duration(len(rq))
		st := rlcIx.Stats()
		t.Row(rlcIx.Name(), "2-Hop", "Concatenation", "General", "No",
			st.BuildTime, st.Entries, formatBytes(st.Bytes), qt)
	}
	t.Write(w)
}

type rlcQuery struct {
	s, t graphV
	seq  []reach.Label
	want bool
}

type graphV = reach.V

func rlcQueries(g *reach.Graph, cnt int, seed int64) []rlcQuery {
	rng := newRng(seed)
	out := make([]rlcQuery, cnt)
	for i := range out {
		s := reach.V(rng.Intn(g.N()))
		t := reach.V(rng.Intn(g.N()))
		seq := []reach.Label{reach.Label(rng.Intn(g.Labels())), reach.Label(rng.Intn(g.Labels()))}
		out[i] = rlcQuery{s, t, seq, tc.RLCReach(g, s, t, seq, false)}
	}
	return out
}
