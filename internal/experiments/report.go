// Package experiments regenerates the paper's evaluation artifacts: the
// Table 1 and Table 2 taxonomies (measured empirically rather than
// asserted), the Figure 1 worked examples, and the E1–E10 claim checks
// catalogued in DESIGN.md / EXPERIMENTS.md. It is driven by cmd/reachbench
// and by the root-level Go benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a titled table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case time.Duration:
			row[i] = formatDuration(x)
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	var head strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&head, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(head.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(head.String(), " "))))
	for _, r := range t.rows {
		var line strings.Builder
		for i, cell := range r {
			fmt.Fprintf(&line, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(line.String(), " "))
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func formatBytes(b int) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	}
}
