package experiments

import (
	"fmt"
	"io"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/traversal"
)

// E14 — query-path acceleration: the three caches/kernels this repository
// layers between a query and a traversal.
//
//  1. Batch kernel: the index-free BatchReach path answers 64 pairs per
//     bit-parallel sweep instead of one BFS per pair. The win is the
//     sharing ratio — how much the sources' reachable sets overlap — so
//     the workload is a dense DAG (10 edges/vertex, ratio ~17).
//  2. DB result cache: the sharded CLOCK cache on a hot-pair workload
//     (every query repeats a small working set), cached vs uncached,
//     plus the hit rate the cached run observed.
//  3. Condensation sharing: NewDB with several DAG-only plain kinds
//     condenses the input exactly once; the extra builds hit the
//     PreparedGraph memo.
func E14(w io.Writer, sc Scale, seed int64) {
	n := sc.n(20000)
	g := gen.RandomDAG(gen.Config{N: n, M: 10 * n, Seed: seed})
	qs := gen.Queries(g, 2048, seed+1)
	pairs := make([]reach.Pair, len(qs))
	for i, q := range qs {
		pairs[i] = reach.Pair{S: q.S, T: q.T}
	}

	t := NewTable(fmt.Sprintf("E14a — index-free batch: bit-parallel kernel vs per-pair BFS, n=%d m=%d", n, 10*n),
		"method", "pairs", "total", "per pair", "speedup")
	start := time.Now()
	if _, err := reach.BatchReach(nil, g, pairs, 1); err != nil {
		panic(err)
	}
	kernel := time.Since(start)
	start = time.Now()
	for _, p := range pairs {
		traversal.BFS(g, p.S, p.T)
	}
	seq := time.Since(start)
	t.Row("bit-parallel kernel", len(pairs), kernel.Round(time.Millisecond),
		(kernel / time.Duration(len(pairs))).Round(time.Microsecond), ratio(seq, kernel))
	t.Row("per-pair BFS", len(pairs), seq.Round(time.Millisecond),
		(seq / time.Duration(len(pairs))).Round(time.Microsecond), "1.0x")
	t.Write(w)

	hot := qs[:64]
	measure := func(cacheSize, rounds int) (time.Duration, *reach.DB) {
		db, err := reach.NewDB(g, reach.DBConfig{CacheSize: cacheSize})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			for _, q := range hot {
				if _, err := db.Reach(q.S, q.T); err != nil {
					panic(err)
				}
			}
		}
		return time.Since(start), db
	}
	const rounds = 200
	uncached, _ := measure(0, rounds)
	cached, cdb := measure(4096, rounds)
	t2 := NewTable(fmt.Sprintf("E14b — DB result cache, hot-pair workload (%d pairs x %d rounds)", len(hot), rounds),
		"config", "per query", "speedup", "hit rate")
	queries := rounds * len(hot)
	snap, _ := cdb.CacheStats()
	t2.Row("cached (4096 entries)", (cached / time.Duration(queries)).Round(time.Nanosecond),
		ratio(uncached, cached), pct(int(snap.Hits), int(snap.Hits+snap.Misses)))
	t2.Row("uncached", (uncached / time.Duration(queries)).Round(time.Nanosecond), "1.0x", "-")
	t2.Write(w)

	db, err := reach.NewDB(g, reach.DBConfig{
		Plain:      reach.KindBFL,
		ExtraPlain: []reach.Kind{reach.KindFeline, reach.KindPReaCH, reach.KindGRAIL},
		Options:    reach.Options{Bits: 256, K: 3, Seed: seed},
	})
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "E14c — condensation sharing: NewDB built 4 DAG-only kinds, "+
		"condensed once, memo hits = %d\n\n", db.Prepared().Hits())
}
