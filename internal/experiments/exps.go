package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/labelset"
	"repro/internal/reduction"
	"repro/internal/scc"
	"repro/internal/tc"
	"repro/internal/traversal"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Scale controls experiment sizes so the suite runs both as a quick smoke
// (unit tests, CI) and at full size (cmd/reachbench).
type Scale struct {
	// Factor multiplies the baseline sizes. 1 = quick, 10+ = full runs.
	Factor int
}

func (s Scale) n(base int) int {
	if s.Factor <= 0 {
		s.Factor = 1
	}
	return base * s.Factor
}

// N exposes the scaled size to external drivers (cmd/reachbench).
func (s Scale) N(base int) int { return s.n(base) }

// E1 — §3.1 claim: partial tree-cover indexes (GRAIL, FERRARI) build in
// time linear in the graph and answer queries an order of magnitude
// faster than raw traversal.
func E1(w io.Writer, sc Scale, seed int64) {
	t := NewTable("E1 — partial tree-cover indexes vs online traversal (§3.1)",
		"n", "m", "index", "build", "query", "BFS query", "speedup")
	for _, n := range []int{sc.n(1000), sc.n(5000), sc.n(20000)} {
		g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})
		qs := gen.Queries(g, 500, seed+1)
		bfsTime := measureBFS(g, qs)
		for _, k := range []reach.Kind{reach.KindGRAIL, reach.KindFerrari} {
			ix, _ := reach.Build(k, g, reach.Options{K: 3, Seed: seed})
			qt := measureQueryTime(ix, qs)
			t.Row(n, g.M(), ix.Name(), ix.Stats().BuildTime, qt, bfsTime,
				ratio(bfsTime, qt))
		}
	}
	t.Write(w)
}

func measureBFS(g *reach.Graph, qs []gen.Query) time.Duration {
	start := time.Now()
	for _, q := range qs {
		traversal.BFS(g, q.S, q.T)
	}
	return time.Since(start) / time.Duration(len(qs))
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// E2 — §3.2 claim: pruned 2-hop labelings stay far below the materialized
// TC, and the vertex order matters (degree vs topological).
func E2(w io.Writer, sc Scale, seed int64) {
	t := NewTable("E2 — 2-hop label sizes vs transitive closure (§3.2)",
		"graph", "n", "index", "entries", "TC pairs", "ratio", "build")
	graphs := map[string]*reach.Graph{
		"random-dag": gen.RandomDAG(gen.Config{N: sc.n(2000), M: sc.n(6000), Seed: seed}),
		"scale-free": gen.ScaleFree(sc.n(2000), 3, seed),
	}
	for name, g := range graphs {
		pairs := tc.NewClosure(g).Pairs()
		for _, k := range []reach.Kind{reach.KindPLL, reach.KindTFL, reach.KindTOL, reach.KindHL} {
			ix, _ := reach.Build(k, g, reach.Options{Seed: seed})
			st := ix.Stats()
			t.Row(name, g.N(), ix.Name(), st.Entries, pairs,
				fmt.Sprintf("%.3f", float64(st.Entries)/float64(pairs)), st.BuildTime)
		}
	}
	t.Write(w)
}

// E3 — §3.3 claim: approximate TCs (IP, BFL) never produce false
// negatives, keep the false-positive rate low, and build fast.
func E3(w io.Writer, sc Scale, seed int64) {
	t := NewTable("E3 — approximate TC filters (§3.3)",
		"n", "index", "build", "falseNeg", "lookupFP%", "undecided%")
	for _, n := range []int{sc.n(2000), sc.n(10000), sc.n(50000)} {
		g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})
		qs := gen.Queries(g, 2000, seed+2)
		for _, k := range []reach.Kind{reach.KindIP, reach.KindBFL} {
			ix, _ := reach.Build(k, g, reach.Options{K: 8, Bits: 256, Seed: seed})
			p := ix.(reach.PartialIndex)
			falseNeg, fp, undecided := 0, 0, 0
			for _, q := range qs {
				r, dec := p.TryReach(q.S, q.T)
				if !dec {
					undecided++
					continue
				}
				if q.Want && !r {
					falseNeg++
				}
				if !q.Want && r {
					fp++
				}
			}
			t.Row(n, ix.Name(), ix.Stats().BuildTime, falseNeg,
				pct(fp, len(qs)), pct(undecided, len(qs)))
		}
	}
	t.Write(w)
}

func pct(a, b int) string { return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b)) }

// E4 — §5 claim: real workloads are negative-heavy, and partial indexes
// without false negatives exploit that (negative queries terminate on
// lookups alone).
func E4(w io.Writer, sc Scale, seed int64) {
	n := sc.n(20000)
	g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})
	t := NewTable(fmt.Sprintf("E4 — query-mix sensitivity, n=%d (§5)", n),
		"posRatio", "index", "query", "decidedByLookup")
	for _, pos := range []float64{0.1, 0.5, 0.9} {
		qs := gen.QueriesWithRatio(g, 600, pos, seed+3)
		for _, k := range []reach.Kind{reach.KindGRAIL, reach.KindFerrari, reach.KindIP,
			reach.KindBFL, reach.KindFeline, reach.KindPReaCH, reach.KindOReach} {
			ix, _ := reach.Build(k, g, reach.Options{K: 3, Bits: 256, Seed: seed})
			qt := measureQueryTime(ix, qs)
			dec, tot := measureCompleteness(ix, qs)
			t.Row(fmt.Sprintf("%.0f%%", pos*100), ix.Name(), qt, pct(dec, tot))
		}
	}
	t.Write(w)
}

// E5 — §4/§5 claim: LCR index construction is orders of magnitude more
// expensive than plain indexing on the same graph, and complete LCR
// lookups beat constrained BFS by orders of magnitude.
func E5(w io.Writer, sc Scale, seed int64) {
	t := NewTable("E5 — LCR indexing cost vs plain indexing and online search (§4.1/§5)",
		"n", "|L|", "index", "build", "entries", "query", "LCR-BFS", "speedup")
	for _, n := range []int{sc.n(500), sc.n(2000)} {
		for _, L := range []int{4, 8} {
			g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: n, M: 3 * n, Seed: seed}), L, 0.8, seed+1)
			qs := gen.LCRQueries(g, 300, seed+2)
			bfs := measureLCRBFS(g, qs)
			// Plain baseline for the build-cost comparison.
			plain, _ := reach.Build(reach.KindPLL, g, reach.Options{})
			t.Row(n, L, plain.Name()+" (plain)", plain.Stats().BuildTime,
				plain.Stats().Entries, "-", "-", "-")
			for _, k := range []reach.LCRKind{reach.LCRP2H, reach.LCRLandmark, reach.LCRZouGTC} {
				ix, _ := reach.BuildLCR(k, g, reach.Options{K: 16})
				qt := measureLCRTime(ix, qs)
				t.Row(n, L, ix.Name(), ix.Stats().BuildTime, ix.Stats().Entries,
					qt, bfs, ratio(bfs, qt))
			}
		}
	}
	t.Write(w)
}

func measureLCRBFS(g *reach.Graph, qs []gen.LCRQuery) time.Duration {
	start := time.Now()
	for _, q := range qs {
		traversal.LabelConstrainedBFS(g, q.S, q.T, q.Allowed)
	}
	return time.Since(start) / time.Duration(len(qs))
}

func measureLCRTime(ix reach.LCRIndex, qs []gen.LCRQuery) time.Duration {
	start := time.Now()
	for _, q := range qs {
		got := q.S == q.T || ix.ReachLC(q.S, q.T, labelset.Set(q.Allowed))
		if got != (q.Want || q.S == q.T) {
			panic(fmt.Sprintf("%s: wrong LCR answer (%d,%d,%b)", ix.Name(), q.S, q.T, q.Allowed))
		}
	}
	return time.Since(start) / time.Duration(len(qs))
}

// E6 — §4.1.2: the landmark count trades index size for query speed.
func E6(w io.Writer, sc Scale, seed int64) {
	n := sc.n(3000)
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: n, M: 3 * n, Seed: seed}), 6, 0.8, seed+1)
	qs := gen.LCRQueries(g, 300, seed+2)
	t := NewTable(fmt.Sprintf("E6 — landmark-count ablation, n=%d |L|=6 (§4.1.2)", n),
		"k", "build", "entries", "size", "query")
	for _, k := range []int{8, 32, 128, 512} {
		ix, _ := reach.BuildLCR(reach.LCRLandmark, g, reach.Options{K: k})
		qt := measureLCRTime(ix, qs)
		st := ix.Stats()
		t.Row(k, st.BuildTime, st.Entries, formatBytes(st.Bytes), qt)
	}
	t.Write(w)
}

// E7 — §4.2: RLC index lookups vs online product search for
// concatenation constraints.
func E7(w io.Writer, sc Scale, seed int64) {
	n := sc.n(1000)
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: n, M: 4 * n, Seed: seed}), 3, 0.5, seed+1)
	rng := newRng(seed + 2)
	type q struct {
		s, t reach.V
		seq  []reach.Label
	}
	qs := make([]q, 300)
	for i := range qs {
		qs[i] = q{reach.V(rng.Intn(g.N())), reach.V(rng.Intn(g.N())),
			[]reach.Label{reach.Label(rng.Intn(3)), reach.Label(rng.Intn(3))}}
	}
	ix, _ := reach.BuildRLC(g, reach.Options{MaxSeq: 2})
	start := time.Now()
	for _, x := range qs {
		ix.ReachRLC(x.s, x.t, x.seq)
	}
	indexed := time.Since(start) / time.Duration(len(qs))
	start = time.Now()
	for _, x := range qs {
		tc.RLCReach(g, x.s, x.t, x.seq, false)
	}
	online := time.Since(start) / time.Duration(len(qs))
	t := NewTable(fmt.Sprintf("E7 — RLC index vs product-automaton search, n=%d (§4.2)", n),
		"method", "build", "size", "query", "speedup")
	t.Row("RLC index", ix.Stats().BuildTime, formatBytes(ix.Stats().Bytes), indexed, ratio(online, indexed))
	t.Row("product BFS", "-", "-", online, "1.0x")
	t.Write(w)
}

// E8 — dynamic indexes: per-update cost and query latency under a mixed
// insert/delete script (§3.1, §3.2, §5).
func E8(w io.Writer, sc Scale, seed int64) {
	n := sc.n(2000)
	g := gen.RandomDAG(gen.Config{N: n, M: 3 * n, Seed: seed})
	t := NewTable(fmt.Sprintf("E8 — dynamic maintenance, n=%d, 200 updates (§3/§5)", n),
		"index", "build", "insert(avg)", "delete(avg)", "query(after)")
	for _, k := range []reach.Kind{reach.KindTOL, reach.KindDAGGER, reach.KindDBL} {
		ix, _ := reach.BuildDynamic(k, g, reach.Options{K: 2, Bits: 256, Seed: seed})
		script := gen.UpdateScript(g, 200, true, seed+1)
		var insTime, delTime time.Duration
		ins, dels := 0, 0
		for _, op := range script {
			if op.Insert {
				start := time.Now()
				if err := ix.InsertEdge(op.Edge.From, op.Edge.To); err == nil {
					insTime += time.Since(start)
					ins++
				}
			} else {
				start := time.Now()
				if err := ix.DeleteEdge(op.Edge.From, op.Edge.To); err == nil {
					delTime += time.Since(start)
					dels++
				} else {
					dels = -1 << 30 // unsupported marker
				}
			}
		}
		qs := gen.Queries(g, 200, seed+2)
		start := time.Now()
		for _, q := range qs {
			ix.Reach(q.S, q.T)
		}
		qt := time.Since(start) / time.Duration(len(qs))
		del := "unsupported"
		if dels > 0 {
			del = formatDuration(delTime / time.Duration(dels))
		}
		t.Row(ix.Name(), ix.Stats().BuildTime, insTime/time.Duration(max(ins, 1)), del, qt)
	}
	t.Write(w)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E9 — §3.1's "exactly k vs at most k intervals" design axis: GRAIL and
// FERRARI swept over k.
func E9(w io.Writer, sc Scale, seed int64) {
	n := sc.n(20000)
	g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})
	qs := gen.QueriesWithRatio(g, 500, 0.3, seed+1)
	t := NewTable(fmt.Sprintf("E9 — interval-budget ablation, n=%d (§3.1)", n),
		"k", "index", "build", "size", "query", "decided")
	for _, k := range []int{1, 2, 3, 5} {
		for _, kind := range []reach.Kind{reach.KindGRAIL, reach.KindFerrari} {
			ix, _ := reach.Build(kind, g, reach.Options{K: k, Seed: seed})
			qt := measureQueryTime(ix, qs)
			dec, tot := measureCompleteness(ix, qs)
			t.Row(k, ix.Name(), ix.Stats().BuildTime, formatBytes(ix.Stats().Bytes),
				qt, pct(dec, tot))
		}
	}
	t.Write(w)
}

// E10 — §3.4: graph reductions shrink the input for any index.
func E10(w io.Writer, sc Scale, seed int64) {
	t := NewTable("E10 — graph reductions before indexing (§3.4)",
		"graph", "n", "m", "reduction", "n'", "m'", "PLL entries", "PLL entries (reduced)")
	graphs := map[string]*reach.Graph{
		"chain-heavy": gen.LayeredDAG(sc.n(200), 4, 1, seed),
		"er-cyclic":   gen.ErdosRenyi(gen.Config{N: sc.n(2000), M: sc.n(5000), Seed: seed}),
	}
	for name, g0 := range graphs {
		cond := scc.Condense(g0)
		g := cond.DAG
		raw, _ := reach.Build(reach.KindPLL, g, reach.Options{})
		for rname, r := range map[string]*reduction.Reduced{
			"equivalence": reduction.Equivalence(g),
			"chains":      reduction.Chains(g),
		} {
			red, _ := reach.Build(reach.KindPLL, r.G, reach.Options{})
			t.Row(name, g.N(), g.M(), rname, r.G.N(), r.G.M(),
				raw.Stats().Entries, red.Stats().Entries)
		}
		tr := reduction.TransitiveReduce(g)
		red, _ := reach.Build(reach.KindPLL, tr, reach.Options{})
		t.Row(name, g.N(), g.M(), "transitive-reduce", tr.N(), tr.M(),
			raw.Stats().Entries, red.Stats().Entries)
	}
	t.Write(w)
}

// E11 — the §5 open-challenge prototypes built in this repository:
// (a) LCR-Bloom, a partial LCR index WITHOUT false negatives (the gap the
// paper highlights — the landmark index only avoids false positives), and
// (b) fixed-constraint RPQ indexes covering the general α fragment.
func E11(w io.Writer, sc Scale, seed int64) {
	n := sc.n(2000)
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: n, M: 4 * n, Seed: seed}), 6, 0.9, seed+1)

	// (a) negative-heavy LCR mix: LCR-Bloom vs landmark vs BFS.
	qs := gen.LCRQueries(g, 400, seed+2)
	t := NewTable(fmt.Sprintf("E11a — §5 prototype: partial LCR index without false negatives, n=%d |L|=6", n),
		"method", "build", "size", "query", "negDecidedByLookup")
	bloom, _ := reach.BuildLCR(reach.LCRBloom, g, reach.Options{Bits: 256, Seed: seed})
	lm, _ := reach.BuildLCR(reach.LCRLandmark, g, reach.Options{K: 32})
	bfs := measureLCRBFS(g, qs)
	type probe interface {
		TryReachLC(s, t reach.V, allowed labelset.Set) (bool, bool)
	}
	decided, negs := 0, 0
	if p, ok := bloom.(probe); ok {
		for _, q := range qs {
			if q.Want || q.S == q.T {
				continue
			}
			negs++
			if _, dec := p.TryReachLC(q.S, q.T, labelset.Set(q.Allowed)); dec {
				decided++
			}
		}
	}
	t.Row("LCR-Bloom", bloom.Stats().BuildTime, formatBytes(bloom.Stats().Bytes),
		measureLCRTime(bloom, qs), pct(decided, max(negs, 1)))
	t.Row("Landmark (no-false-positive)", lm.Stats().BuildTime,
		formatBytes(lm.Stats().Bytes), measureLCRTime(lm, qs), "0.0% (wrong direction)")
	t.Row("LCR-BFS", "-", "-", bfs, "0.0%")
	t.Write(w)

	// (b) a general (non-indexable) constraint served by a dedicated
	// product-labeling index vs product search.
	alpha := "(l0.l1|l2)*"
	ci, err := reach.BuildConstraint(g, alpha)
	t2 := NewTable(fmt.Sprintf("E11b — §5 prototype: fixed-constraint RPQ index, α=%s, n=%d", alpha, n),
		"method", "build", "size", "query")
	if err == nil {
		rng := newRng(seed + 3)
		pairs := make([][2]reach.V, 400)
		for i := range pairs {
			pairs[i] = [2]reach.V{reach.V(rng.Intn(n)), reach.V(rng.Intn(n))}
		}
		db, _ := reach.NewDB(g, reach.DBConfig{Options: reach.Options{MaxSeq: 1}})
		start := time.Now()
		var searchAnswers []bool
		for _, p := range pairs {
			got, _ := db.Query(p[0], p[1], alpha)
			searchAnswers = append(searchAnswers, got)
		}
		searchTime := time.Since(start) / time.Duration(len(pairs))
		start = time.Now()
		for i, p := range pairs {
			if got := ci.Reach(p[0], p[1]); got != searchAnswers[i] {
				panic("RPQ index diverged from product search")
			}
		}
		indexTime := time.Since(start) / time.Duration(len(pairs))
		t2.Row("RPQ index", ci.Stats().BuildTime, formatBytes(ci.Stats().Bytes), indexTime)
		t2.Row("product search", "-", "-", searchTime)
	}
	t2.Write(w)
}

// All runs every experiment in order.
func All(w io.Writer, sc Scale, seed int64) {
	Table1(w, sc.n(2000), seed)
	Table2(w, sc.n(150), 8, seed)
	Fig1(w)
	E1(w, sc, seed)
	E2(w, sc, seed)
	E3(w, sc, seed)
	E4(w, sc, seed)
	E5(w, sc, seed)
	E6(w, sc, seed)
	E7(w, sc, seed)
	E8(w, sc, seed)
	E9(w, sc, seed)
	E10(w, sc, seed)
	E11(w, sc, seed)
	E12(w, sc, seed)
	E13(w, sc, seed)
	E14(w, sc, seed)
}
