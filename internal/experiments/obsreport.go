package experiments

import (
	"fmt"
	"io"

	reach "repro"
	"repro/internal/gen"
)

// E12 — the observability layer applied to the paper's §3.3/§5 claims:
// for each partial index, a mixed positive/negative workload is driven
// through an instrumented wrapper and the recorded probe-level signals
// are reported — TryReach decided-rate (the index's pruning power),
// guided-traversal fallback counts with visited-vertex totals (the work
// the index failed to avoid), and latency percentiles. A second table
// breaks one build into its named phases, turning the "LCR construction
// is far costlier" style of claim into per-phase numbers.
func E12(w io.Writer, sc Scale, seed int64) {
	n := sc.n(5000)
	g := gen.RandomDAG(gen.Config{N: n, M: 4 * n, Seed: seed})
	qs := gen.QueriesWithRatio(g, 2000, 0.5, seed+1)

	t := NewTable("E12 — probe-level instrumentation of partial indexes (§3.3/§5)",
		"index", "queries", "pos", "neg", "decided", "fallback", "visited/fb", "p50", "p99")
	kinds := []struct {
		k   reach.Kind
		opt reach.Options
	}{
		{reach.KindGRAIL, reach.Options{K: 3, Seed: seed}},
		{reach.KindFerrari, reach.Options{K: 3}},
		{reach.KindIP, reach.Options{K: 8, Seed: seed}},
		{reach.KindBFL, reach.Options{Bits: 256, Seed: seed}},
	}
	for _, kc := range kinds {
		raw, err := reach.Build(kc.k, g, kc.opt)
		if err != nil {
			continue
		}
		var m reach.IndexMetrics
		ix := reach.Instrument(raw, g, &m)
		for _, q := range qs {
			ix.Reach(q.S, q.T)
		}
		s := m.Snapshot()
		perFB := "-"
		if s.Fallback > 0 {
			perFB = fmt.Sprintf("%.0f", float64(s.Visited)/float64(s.Fallback))
		}
		t.Row(raw.Name(), s.Queries, s.Positive, s.Negative,
			fmt.Sprintf("%.1f%%", 100*s.DecidedRate()), s.Fallback, perFB,
			s.Latency.P50, s.Latency.P99)
	}
	t.Write(w)

	var spans reach.BuildSpans
	if _, err := reach.Build(reach.KindBFL, g, reach.Options{Bits: 256, Seed: seed, Spans: &spans}); err == nil {
		bt := NewTable("E12 — BFL build-phase spans", "phase", "depth", "duration")
		for _, sp := range spans.Snapshot() {
			bt.Row(sp.Name, sp.Depth, sp.Dur)
		}
		bt.Write(w)
	}
}
