// Package reduction implements the graph-reduction techniques of §3.4
// (SCARAB / ER / RCN family): transformations that shrink the input before
// any reachability index is built, orthogonal to the indexing technique.
//
//   - Equivalence reduction (ER [54]): DAG vertices with identical in- and
//     out-neighbourhoods have identical reachability rows/columns (and can
//     never reach each other on a DAG), so they merge into one
//     representative.
//   - Chain compression: maximal interior runs (in-degree 1, out-degree 1)
//     collapse onto their entry head; interior queries resolve by chain
//     position plus the reduced graph.
//   - Transitive edge removal: edges (u, v) with an alternative u→v path
//     are redundant for reachability; exact, O(n·m), for small inputs and
//     the E10 experiment.
//
// A Reduced value maps original-vertex queries onto the reduced graph, so
// any core.Index built on Reduced.G answers queries on the original. All
// reductions here assume DAG input (condense first — scc.Condense — which
// is itself the most fundamental reduction of §3.1).
package reduction

import (
	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/order"
)

// Mode distinguishes how vertices sharing a representative relate.
type Mode int

// Reduction modes.
const (
	// ModeEquivalence: same representative = reachability-equivalent but
	// mutually unreachable (distinct DAG vertices).
	ModeEquivalence Mode = iota
	// ModeChain: same representative = same collapsed chain; position
	// decides.
	ModeChain
)

// Reduced is a reduced graph plus the vertex mapping onto it.
type Reduced struct {
	// G is the reduced graph.
	G *graph.Digraph
	// Map[v] = reduced vertex standing for v (for chains: the entry head).
	Map []graph.V
	// End[v] = reduced vertex whose reachable set covers what v reaches
	// beyond its own class (for chains: the exit head; otherwise Map[v]).
	End []graph.V
	// Pos[v] = position within a collapsed chain (0 for representatives).
	Pos []uint32
	// Run[v] identifies v's collapsed run (chains mode); a head and each
	// of its interior runs get distinct ids, so position comparison only
	// applies within one run.
	Run  []uint32
	Mode Mode
}

// Reach answers an original-graph query given an exact reachability
// predicate on the reduced graph.
func (r *Reduced) Reach(s, t graph.V, reduced func(a, b graph.V) bool) bool {
	if s == t {
		return true
	}
	if r.Mode == ModeChain {
		if r.Run[s] == r.Run[t] {
			return r.Pos[s] <= r.Pos[t]
		}
		return reduced(r.End[s], r.Map[t])
	}
	if r.Map[s] == r.Map[t] {
		return false // equivalent DAG vertices never reach each other
	}
	return reduced(r.End[s], r.Map[t])
}

// Equivalence merges DAG vertices with identical in- and out-
// neighbourhoods (the ER reduction).
func Equivalence(g *graph.Digraph) *Reduced {
	n := g.N()
	type sig struct{ s, p string }
	groups := make(map[sig]graph.V, n)
	mapTo := make([]graph.V, n)
	b := graph.NewBuilder(0)
	for v := 0; v < n; v++ {
		k := sig{key(g.Succ(graph.V(v))), key(g.Pred(graph.V(v)))}
		if r, ok := groups[k]; ok {
			mapTo[v] = r
			continue
		}
		r := b.AddVertex()
		groups[k] = r
		mapTo[v] = r
	}
	g.Edges(func(e graph.Edge) bool {
		if mapTo[e.From] != mapTo[e.To] {
			b.AddEdge(mapTo[e.From], mapTo[e.To])
		}
		return true
	})
	return &Reduced{
		G: b.MustFreeze(), Map: mapTo, End: mapTo,
		Pos: make([]uint32, n), Mode: ModeEquivalence,
	}
}

func key(vs []graph.V) string {
	buf := make([]byte, 4*len(vs))
	for i, v := range vs {
		buf[4*i] = byte(v)
		buf[4*i+1] = byte(v >> 8)
		buf[4*i+2] = byte(v >> 16)
		buf[4*i+3] = byte(v >> 24)
	}
	return string(buf)
}

// Chains collapses maximal interior runs (in-degree 1 and out-degree 1)
// of a DAG onto their entry heads. An interior vertex is reached only
// through its chain's entry, and reaches only its chain suffix plus
// whatever the exit head reaches.
func Chains(g *graph.Digraph) *Reduced {
	n := g.N()
	mapTo := make([]graph.V, n)
	end := make([]graph.V, n)
	pos := make([]uint32, n)
	run := make([]uint32, n)
	interior := make([]bool, n)
	for v := 0; v < n; v++ {
		interior[v] = g.InDegree(graph.V(v)) == 1 && g.OutDegree(graph.V(v)) == 1
	}
	b := graph.NewBuilder(0)
	newID := make([]graph.V, n)
	var nextRun uint32
	for v := 0; v < n; v++ {
		if !interior[v] {
			newID[v] = b.AddVertex()
			mapTo[v] = newID[v]
			end[v] = newID[v]
			run[v] = nextRun
			nextRun++
		}
	}
	// Walk each head's outgoing interior runs.
	for v := 0; v < n; v++ {
		if interior[v] {
			continue
		}
		for _, w := range g.Succ(graph.V(v)) {
			if !interior[w] {
				b.AddEdge(newID[v], newID[w])
				continue
			}
			// Interior run starting at w, entered from head v.
			runID := nextRun
			nextRun++
			p := uint32(1)
			cur := w
			for interior[cur] {
				mapTo[cur] = newID[v]
				pos[cur] = p
				run[cur] = runID
				p++
				cur = g.Succ(cur)[0]
			}
			// cur is the exit head; interiors of this run reach beyond
			// their suffix exactly through it.
			prev := w
			for interior[prev] {
				end[prev] = newID[cur]
				prev = g.Succ(prev)[0]
			}
			b.AddEdge(newID[v], newID[cur])
		}
	}
	return &Reduced{G: b.MustFreeze(), Map: mapTo, End: end, Pos: pos, Run: run, Mode: ModeChain}
}

// TransitiveReduce removes every edge (u, v) of a DAG for which v stays
// reachable from u without it. Non-DAG inputs are returned unchanged.
func TransitiveReduce(g *graph.Digraph) *graph.Digraph {
	if !order.IsDAG(g) {
		return g
	}
	keep := graph.NewBuilder(g.N())
	visited := bitset.New(g.N())
	g.Edges(func(e graph.Edge) bool {
		if !reachableAvoiding(g, e.From, e.To, e, visited) {
			keep.AddEdge(e.From, e.To)
		}
		return true
	})
	return keep.MustFreeze()
}

func reachableAvoiding(g *graph.Digraph, s, t graph.V, skip graph.Edge, visited *bitset.Set) bool {
	visited.Reset()
	visited.Set(int(s))
	stack := []graph.V{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succ(v) {
			if v == skip.From && w == skip.To {
				continue
			}
			if w == t {
				return true
			}
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				stack = append(stack, w)
			}
		}
	}
	return false
}
