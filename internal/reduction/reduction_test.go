package reduction

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tc"
)

// checkReduced validates a Reduced against the original's closure over all
// pairs, using the reduced graph's own closure as the predicate.
func checkReduced(t *testing.T, name string, g *graph.Digraph, r *Reduced) {
	t.Helper()
	orig := tc.NewClosure(g)
	red := tc.NewClosure(r.G)
	pred := func(a, b graph.V) bool { return red.Reach(a, b) }
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if got, want := r.Reach(s, tt, pred), orig.Reach(s, tt); got != want {
				t.Fatalf("%s: Reach(%d,%d) = %v, want %v (maps %d->%d)",
					name, s, tt, got, want, r.Map[s], r.Map[tt])
			}
		}
	}
}

func dagSuite() map[string]*graph.Digraph {
	return map[string]*graph.Digraph{
		"dag":      gen.RandomDAG(gen.Config{N: 100, M: 250, Seed: 1}),
		"chainy":   gen.LayeredDAG(30, 2, 1, 2),
		"treeplus": gen.TreePlus(120, 20, 3),
		"fig1":     graph.Fig1Plain(),
		"line":     line(30),
		"edgeless": graph.FromEdges(10, nil),
	}
}

func line(n int) *graph.Digraph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	return b.MustFreeze()
}

func TestEquivalencePreservesReachability(t *testing.T) {
	for name, g := range dagSuite() {
		checkReduced(t, name, g, Equivalence(g))
	}
}

func TestEquivalenceMerges(t *testing.T) {
	// Two parallel "diamond" mids with identical neighbourhoods collapse.
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	r := Equivalence(g)
	if r.G.N() != 3 {
		t.Fatalf("reduced N = %d, want 3", r.G.N())
	}
	if r.Map[1] != r.Map[2] {
		t.Error("equivalent mids not merged")
	}
}

func TestChainsPreserveReachability(t *testing.T) {
	for name, g := range dagSuite() {
		checkReduced(t, name, g, Chains(g))
	}
}

func TestChainsCompressLine(t *testing.T) {
	g := line(50)
	r := Chains(g)
	// Head 0, interior 1..48, head 49 (in-degree-1/out-degree-1 interiors).
	if r.G.N() != 2 {
		t.Fatalf("line reduced to %d vertices, want 2", r.G.N())
	}
}

func TestChainsParallelRunsFromOneHead(t *testing.T) {
	// Head 0 starts two disjoint interior runs; positions must not mix.
	//   0 -> 1 -> 2 -> 5 (sink)
	//   0 -> 3 -> 4 -> 6 (sink)
	g := graph.FromEdges(7, [][2]graph.V{{0, 1}, {1, 2}, {2, 5}, {0, 3}, {3, 4}, {4, 6}})
	checkReduced(t, "parallel-runs", g, Chains(g))
	r := Chains(g)
	if r.Run[1] == r.Run[3] {
		t.Error("parallel runs share an id")
	}
}

func TestTransitiveReduce(t *testing.T) {
	// Triangle DAG: 0->1->2 plus shortcut 0->2; shortcut must go.
	g := graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}})
	tr := TransitiveReduce(g)
	if tr.M() != 2 {
		t.Fatalf("reduced M = %d, want 2", tr.M())
	}
	orig := tc.NewClosure(g)
	red := tc.NewClosure(tr)
	for s := graph.V(0); s < 3; s++ {
		for tt := graph.V(0); tt < 3; tt++ {
			if orig.Reach(s, tt) != red.Reach(s, tt) {
				t.Fatal("reduction changed reachability")
			}
		}
	}
}

func TestTransitiveReducePreservesClosure(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 80, M: 400, Seed: 4})
	tr := TransitiveReduce(g)
	if tr.M() >= g.M() {
		t.Errorf("no edges removed: %d >= %d", tr.M(), g.M())
	}
	orig := tc.NewClosure(g)
	red := tc.NewClosure(tr)
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if orig.Reach(s, tt) != red.Reach(s, tt) {
				t.Fatalf("closure changed at (%d,%d)", s, tt)
			}
		}
	}
}

func TestTransitiveReduceCyclicNoop(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 0}})
	if TransitiveReduce(g) != g {
		t.Error("cyclic input should be returned unchanged")
	}
}
