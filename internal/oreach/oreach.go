// Package oreach implements O'Reach [18] (§3.2): a partial 2-hop index
// built from k "supportive" vertices. Each supportive vertex v stores its
// full forward and backward reachable sets as bitsets, giving both
// positive observations (s reaches v and v reaches t) and negative ones
// (v reaches s but not t; t reaches-backward v but not s). Two independent
// topological rankings and topological levels supply further negative
// observations. Undecided queries fall back to guided search, as in the
// published system.
package oreach

import (
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/traversal"
)

// Options configures O'Reach.
type Options struct {
	// K is the number of supportive vertices. Default 16.
	K int
	// Workers caps the pool running the per-supportive-vertex forward/
	// backward BFS pairs (0 = GOMAXPROCS, 1 = serial). The traversals
	// are independent, so the index is identical at any worker count.
	Workers int
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 16
	}
}

// Index is the O'Reach partial index over a DAG.
type Index struct {
	g     *graph.Digraph
	sup   []graph.V
	fwd   []*bitset.Set // fwd[i] = vertices reachable from sup[i]
	bwd   []*bitset.Set // bwd[i] = vertices reaching sup[i]
	x, y  []uint32      // two topological rankings
	lev   []uint32
	stats core.Stats
}

// New builds O'Reach over a DAG.
func New(dag *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	n := dag.N()
	k := opts.K
	if k > n {
		k = n
	}
	ix := &Index{g: dag, x: make([]uint32, n)}

	// Supportive vertices: the O'Reach heuristic favours vertices covering
	// many (ancestor, descendant) pairs; in-degree × out-degree ranking is
	// the standard proxy.
	byCover := order.ByDegreeProductDesc(dag)
	ix.sup = append([]graph.V(nil), byCover[:k]...)
	sort.Slice(ix.sup, func(i, j int) bool { return ix.sup[i] < ix.sup[j] })
	ix.fwd = make([]*bitset.Set, k)
	ix.bwd = make([]*bitset.Set, k)
	par.Do(opts.Workers, k, func(i int) {
		ix.fwd[i] = traversal.ReachableFrom(dag, ix.sup[i])
		ix.bwd[i] = traversal.Reaching(dag, ix.sup[i])
	})
	topo, _ := order.Topological(dag)
	for i, v := range topo {
		ix.x[v] = uint32(i)
	}
	// Second ranking: LIFO Kahn, like FELINE's de-correlated order.
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, w := range dag.Succ(graph.V(v)) {
			indeg[w]++
		}
	}
	ix.y = make([]uint32, n)
	var stack []graph.V
	for v := n - 1; v >= 0; v-- {
		if indeg[v] == 0 {
			stack = append(stack, graph.V(v))
		}
	}
	next := uint32(0)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ix.y[v] = next
		next++
		for _, w := range dag.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				stack = append(stack, w)
			}
		}
	}
	ix.lev, _ = order.Levels(dag)
	bytes := 3 * n * 4
	for i := range ix.fwd {
		bytes += ix.fwd[i].Bytes() + ix.bwd[i].Bytes()
	}
	ix.stats = core.Stats{Entries: 2 * k, Bytes: bytes, BuildTime: time.Since(start)}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "O'Reach" }

// TryReach implements core.Partial: the supportive-vertex observations.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	if ix.x[s] >= ix.x[t] || ix.y[s] >= ix.y[t] || ix.lev[s] >= ix.lev[t] {
		return false, true
	}
	for i := range ix.sup {
		// Positive: s → sup → t.
		if ix.bwd[i].Test(int(s)) && ix.fwd[i].Test(int(t)) {
			return true, true
		}
		// Negative: sup reaches s but not t ⇒ s cannot reach t.
		if ix.fwd[i].Test(int(s)) && !ix.fwd[i].Test(int(t)) {
			return false, true
		}
		// Negative: t reaches-backward sup but s does not.
		if ix.bwd[i].Test(int(t)) && !ix.bwd[i].Test(int(s)) {
			return false, true
		}
	}
	return false, false
}

// Reach answers Qr(s, t) exactly via observation-guided DFS.
func (ix *Index) Reach(s, t graph.V) bool {
	return core.GuidedDFS(ix.g, s, t, ix.TryReach)
}

// ReachCounted implements core.ReachCounter: the same guided DFS as
// Reach, additionally reporting how many vertices it expanded and whether
// the index labels decided the query without any expansion.
func (ix *Index) ReachCounted(s, t graph.V) (bool, int, bool) {
	r, n := core.CountingGuidedDFS(ix.g, s, t, ix.TryReach)
	return r, n, n == 0
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }
