package oreach

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 8})
	})
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 4})
	})
}

func TestKLargerThanN(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 10, M: 20, Seed: 1})
	ix := New(g, Options{K: 100})
	if len(ix.sup) != 10 {
		t.Fatalf("supportive vertices = %d, want clamped to n", len(ix.sup))
	}
}

func TestSupportiveVertexDecidesItsPairs(t *testing.T) {
	// Queries whose endpoints straddle a supportive vertex are always
	// decided by observations.
	g := gen.LayeredDAG(8, 8, 2, 2)
	ix := New(g, Options{K: 8})
	decided := 0
	total := 0
	for s := graph.V(0); int(s) < g.N(); s += 2 {
		for tt := graph.V(0); int(tt) < g.N(); tt += 2 {
			total++
			if _, dec := ix.TryReach(s, tt); dec {
				decided++
			}
		}
	}
	if decided*2 < total {
		t.Errorf("observations decided only %d/%d", decided, total)
	}
	if ix.Name() != "O'Reach" {
		t.Error("name")
	}
}
