package regexpath

import (
	"testing"

	"repro/internal/graph"
)

// FuzzParse throws arbitrary strings at the α parser: no panics, and any
// accepted expression must compile to a DFA and survive a String()
// round trip with an equivalent automaton on a few probe words.
func FuzzParse(f *testing.F) {
	f.Add("(a|b)*")
	f.Add("a.b.c+")
	f.Add("((a))")
	f.Add("a**")
	f.Add("|")
	f.Add("a··b")
	f.Add("(a∪b)+")
	resolve := fixedResolver("a", "b", "c")
	probes := [][]graph.Label{
		{}, {0}, {1}, {2}, {0, 1}, {1, 0}, {0, 0, 0}, {2, 1, 0}, {0, 1, 2, 0},
	}
	f.Fuzz(func(t *testing.T, in string) {
		ast, err := Parse(in, resolve)
		if err != nil {
			return
		}
		dfa := CompileDFA(CompileNFA(ast), 3)
		re, err := Parse(ast.String(), resolve)
		if err != nil {
			t.Fatalf("String() %q of accepted input %q does not reparse: %v",
				ast.String(), in, err)
		}
		dfa2 := CompileDFA(CompileNFA(re), 3)
		for _, w := range probes {
			if dfa.Accepts(w) != dfa2.Accepts(w) {
				t.Fatalf("round trip of %q diverges on %v", in, w)
			}
		}
	})
}
