// Package regexpath implements the paper's §2.2 path-constraint language
//
//	α ::= l | α·α | α∪α | α+ | α*
//
// over a graph's edge-label universe: a recursive-descent parser producing
// an AST, Thompson construction to an NFA, subset construction to a DFA,
// and a classifier that recognizes the two indexable fragments of §4 —
// alternation constraints (l1 ∪ l2 ∪ ...)* answered by LCR indexes and
// concatenation constraints (l1 · l2 · ...)* answered by the RLC index.
// Constraints outside both fragments are evaluated by product-automaton
// search (traversal.ProductBFS), mirroring the paper's observation that no
// index covers the full RPQ fragment.
//
// Concrete syntax accepted by Parse: label names (letters, digits, '_'),
// '.' or juxtaposition-with-whitespace for concatenation, '|' or '∪' or
// '+' ... no: '+' is the Kleene plus postfix; alternation is '|' or '∪';
// grouping with parentheses; postfix '*' and '+'.
package regexpath

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Op is an AST node kind.
type Op int

// AST node kinds.
const (
	OpLabel Op = iota // leaf: one edge label
	OpConcat
	OpAltern
	OpStar
	OpPlus
)

// Node is an AST node of a path-constraint expression.
type Node struct {
	Op    Op
	Label graph.Label // for OpLabel
	Name  string      // original label text, for error messages / printing
	Kids  []*Node
}

// String renders the AST back to concrete syntax.
func (n *Node) String() string {
	switch n.Op {
	case OpLabel:
		return n.Name
	case OpConcat:
		parts := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			parts[i] = k.parenString(OpConcat)
		}
		return strings.Join(parts, ".")
	case OpAltern:
		parts := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			parts[i] = k.parenString(OpAltern)
		}
		return strings.Join(parts, "|")
	case OpStar:
		return n.Kids[0].parenString(OpStar) + "*"
	case OpPlus:
		return n.Kids[0].parenString(OpStar) + "+"
	}
	return "?"
}

func (n *Node) parenString(parent Op) string {
	s := n.String()
	need := false
	switch parent {
	case OpStar, OpPlus:
		need = n.Op != OpLabel
	case OpConcat:
		need = n.Op == OpAltern
	}
	if need {
		return "(" + s + ")"
	}
	return s
}

// LabelResolver maps label names to ids; satisfied by closures over
// graph.Builder or a fixed table.
type LabelResolver func(name string) (graph.Label, bool)

// GraphResolver builds a LabelResolver from a labeled graph's registered
// label names.
func GraphResolver(g *graph.Digraph) LabelResolver {
	byName := make(map[string]graph.Label, g.Labels())
	for l := 0; l < g.Labels(); l++ {
		byName[g.LabelName(graph.Label(l))] = graph.Label(l)
	}
	return func(name string) (graph.Label, bool) {
		l, ok := byName[name]
		return l, ok
	}
}

// AnyResolver accepts every label name, mapping it to label 0. It parses
// constraints against graphs that carry no labels: on an unlabeled graph
// every edge spells the same (implicit) label, so classification over this
// resolver decides whether a constraint is trivially plain-reachable
// (e.g. any alternation-star) or genuinely needs edge labels.
func AnyResolver() LabelResolver {
	return func(string) (graph.Label, bool) { return 0, true }
}

type parser struct {
	in      string
	pos     int
	resolve LabelResolver
}

// Parse parses a path-constraint expression, resolving label names through
// resolve.
func Parse(in string, resolve LabelResolver) (*Node, error) {
	p := &parser{in: in, resolve: resolve}
	n, err := p.parseAltern()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("regexpath: unexpected %q at offset %d", p.in[p.pos:], p.pos)
	}
	return n, nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

// parseAltern ::= concat ('|' concat)*
func (p *parser) parseAltern() (*Node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	kids := []*Node{first}
	for {
		c := p.peek()
		if c != '|' && !p.peekRune('∪') {
			break
		}
		p.consumeAltOp()
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &Node{Op: OpAltern, Kids: kids}, nil
}

func (p *parser) peekRune(r rune) bool {
	p.skipSpace()
	rest := p.in[p.pos:]
	return strings.HasPrefix(rest, string(r))
}

func (p *parser) consumeAltOp() {
	p.skipSpace()
	if p.in[p.pos] == '|' {
		p.pos++
		return
	}
	p.pos += len("∪")
}

// parseConcat ::= unary (('.' | juxtaposition) unary)*
func (p *parser) parseConcat() (*Node, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []*Node{first}
	for {
		c := p.peek()
		if c == '.' || p.peekRune('·') {
			if c == '.' {
				p.pos++
			} else {
				p.pos += len("·")
			}
		} else if !isLabelStart(c) && c != '(' {
			break
		}
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &Node{Op: OpConcat, Kids: kids}, nil
}

// parseUnary ::= atom ('*' | '+')*
func (p *parser) parseUnary() (*Node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			n = &Node{Op: OpStar, Kids: []*Node{n}}
		case '+':
			p.pos++
			n = &Node{Op: OpPlus, Kids: []*Node{n}}
		default:
			return n, nil
		}
	}
}

// parseAtom ::= label | '(' altern ')'
func (p *parser) parseAtom() (*Node, error) {
	c := p.peek()
	if c == '(' {
		p.pos++
		n, err := p.parseAltern()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("regexpath: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return n, nil
	}
	if !isLabelStart(c) {
		return nil, fmt.Errorf("regexpath: expected label or '(' at offset %d", p.pos)
	}
	start := p.pos
	for p.pos < len(p.in) && isLabelChar(p.in[p.pos]) {
		p.pos++
	}
	name := p.in[start:p.pos]
	l, ok := p.resolve(name)
	if !ok {
		return nil, fmt.Errorf("regexpath: unknown label %q", name)
	}
	return &Node{Op: OpLabel, Label: l, Name: name}, nil
}

func isLabelStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isLabelChar(c byte) bool {
	return isLabelStart(c) || (c >= '0' && c <= '9')
}
