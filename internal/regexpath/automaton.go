package regexpath

import (
	"sort"

	"repro/internal/graph"
)

// NFA is a Thompson-construction nondeterministic finite automaton over
// edge labels. State 0 is the start state.
type NFA struct {
	// trans[s] lists (label, target) transitions of state s.
	trans [][]nfaEdge
	// eps[s] lists ε-successors of state s.
	eps    [][]int
	start  int
	accept int
}

type nfaEdge struct {
	label graph.Label
	to    int
}

// CompileNFA builds an NFA from the AST via Thompson's construction.
func CompileNFA(ast *Node) *NFA {
	n := &NFA{}
	s, a := n.build(ast)
	n.start, n.accept = s, a
	return n
}

func (n *NFA) newState() int {
	n.trans = append(n.trans, nil)
	n.eps = append(n.eps, nil)
	return len(n.trans) - 1
}

func (n *NFA) addEps(from, to int) { n.eps[from] = append(n.eps[from], to) }

// build returns (start, accept) of the fragment for node.
func (n *NFA) build(node *Node) (int, int) {
	switch node.Op {
	case OpLabel:
		s, a := n.newState(), n.newState()
		n.trans[s] = append(n.trans[s], nfaEdge{label: node.Label, to: a})
		return s, a
	case OpConcat:
		s, a := n.build(node.Kids[0])
		for _, k := range node.Kids[1:] {
			ks, ka := n.build(k)
			n.addEps(a, ks)
			a = ka
		}
		return s, a
	case OpAltern:
		s, a := n.newState(), n.newState()
		for _, k := range node.Kids {
			ks, ka := n.build(k)
			n.addEps(s, ks)
			n.addEps(ka, a)
		}
		return s, a
	case OpStar:
		s, a := n.newState(), n.newState()
		ks, ka := n.build(node.Kids[0])
		n.addEps(s, ks)
		n.addEps(s, a)
		n.addEps(ka, ks)
		n.addEps(ka, a)
		return s, a
	case OpPlus:
		s, a := n.newState(), n.newState()
		ks, ka := n.build(node.Kids[0])
		n.addEps(s, ks)
		n.addEps(ka, ks)
		n.addEps(ka, a)
		return s, a
	}
	panic("regexpath: unknown AST op")
}

// DFA is a deterministic automaton over edge labels produced by subset
// construction. It satisfies traversal.DFAIface.
type DFA struct {
	// next[s*numLabels + l] = target state, or -1.
	next      []int32
	accepting []bool
	numLabels int
}

// CompileDFA parses nothing: it determinizes an NFA for a label universe of
// the given size.
func CompileDFA(nfa *NFA, numLabels int) *DFA {
	type key string
	closure := func(states []int) []int {
		seen := make(map[int]bool)
		var stack []int
		for _, s := range states {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range nfa.eps[s] {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
		out := make([]int, 0, len(seen))
		for s := range seen {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}
	keyOf := func(states []int) key {
		b := make([]byte, 0, len(states)*3)
		for _, s := range states {
			b = append(b, byte(s), byte(s>>8), byte(s>>16))
		}
		return key(b)
	}

	d := &DFA{numLabels: numLabels}
	ids := make(map[key]int32)
	var subsets [][]int

	add := func(states []int) int32 {
		k := keyOf(states)
		if id, ok := ids[k]; ok {
			return id
		}
		id := int32(len(subsets))
		ids[k] = id
		subsets = append(subsets, states)
		for l := 0; l < numLabels; l++ {
			d.next = append(d.next, -1)
		}
		acc := false
		for _, s := range states {
			if s == nfa.accept {
				acc = true
				break
			}
		}
		d.accepting = append(d.accepting, acc)
		return id
	}

	start := closure([]int{nfa.start})
	add(start)
	for work := 0; work < len(subsets); work++ {
		states := subsets[work]
		// Group moves by label.
		moves := make(map[graph.Label][]int)
		for _, s := range states {
			for _, e := range nfa.trans[s] {
				moves[e.label] = append(moves[e.label], e.to)
			}
		}
		for l, targets := range moves {
			if int(l) >= numLabels {
				continue
			}
			id := add(closure(targets))
			d.next[work*numLabels+int(l)] = id
		}
	}
	return d
}

// Compile parses expr against the labels of g and returns its DFA.
func Compile(expr string, g *graph.Digraph) (*DFA, error) {
	ast, err := Parse(expr, GraphResolver(g))
	if err != nil {
		return nil, err
	}
	return CompileDFA(CompileNFA(ast), g.Labels()), nil
}

// Start returns the DFA start state.
func (d *DFA) Start() int { return 0 }

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.accepting) }

// Step returns the successor of state on label l, or -1 if undefined.
func (d *DFA) Step(state int, l graph.Label) int {
	if int(l) >= d.numLabels {
		return -1
	}
	return int(d.next[state*d.numLabels+int(l)])
}

// Accepting reports whether state accepts.
func (d *DFA) Accepting(state int) bool { return d.accepting[state] }

// MatchesEmpty reports whether the empty word is in the language (s == t
// queries are then trivially true).
func (d *DFA) MatchesEmpty() bool { return d.accepting[0] }

// Accepts reports whether the word (sequence of labels) is in the language;
// used by tests.
func (d *DFA) Accepts(word []graph.Label) bool {
	s := 0
	for _, l := range word {
		s = d.Step(s, l)
		if s < 0 {
			return false
		}
	}
	return d.Accepting(s)
}
