package regexpath

import (
	"repro/internal/graph"
	"repro/internal/labelset"
)

// Class identifies which §4 index family can answer a path constraint.
type Class int

// Constraint classes.
const (
	// ClassGeneral: outside both indexable fragments; requires
	// product-automaton search.
	ClassGeneral Class = iota
	// ClassAlternation: α ≡ (l1 ∪ l2 ∪ ...)* or (...)+ — answerable by the
	// LCR indexes of §4.1.
	ClassAlternation
	// ClassConcatenation: α ≡ (l1 · l2 · ...)* or (...)+ — answerable by the
	// RLC index of §4.2.
	ClassConcatenation
)

func (c Class) String() string {
	switch c {
	case ClassAlternation:
		return "alternation"
	case ClassConcatenation:
		return "concatenation"
	default:
		return "general"
	}
}

// Classification is the result of Classify.
type Classification struct {
	Class Class
	// Allowed is the label set for ClassAlternation.
	Allowed labelset.Set
	// Sequence is the concatenated label sequence for ClassConcatenation.
	Sequence []graph.Label
	// PlusOnly is true when the Kleene operator was '+' rather than '*'
	// (the empty path does not satisfy the constraint).
	PlusOnly bool
}

// Classify decides whether the constraint falls into the alternation or
// concatenation fragment of §4. It is syntactic with light normalization:
// nested alternations of labels flatten, single labels under star count as
// one-element alternations (equivalently one-element concatenations; the
// alternation class is preferred as LCR indexes are the more general
// family here).
func Classify(ast *Node) Classification {
	if ast.Op != OpStar && ast.Op != OpPlus {
		// The fragments of §4 are exactly Kleene-closed expressions; a bare
		// alternation or concatenation without * or + is general (a fixed
		// 1-repetition pattern) — answered by the product search.
		return Classification{Class: ClassGeneral}
	}
	body := ast.Kids[0]
	plusOnly := ast.Op == OpPlus

	if mask, ok := alternationOfLabels(body); ok {
		return Classification{Class: ClassAlternation, Allowed: mask, PlusOnly: plusOnly}
	}
	if seq, ok := concatenationOfLabels(body); ok {
		return Classification{Class: ClassConcatenation, Sequence: seq, PlusOnly: plusOnly}
	}
	return Classification{Class: ClassGeneral}
}

// alternationOfLabels reports whether n is a label or an alternation of
// labels (arbitrarily nested alternations flatten).
func alternationOfLabels(n *Node) (labelset.Set, bool) {
	switch n.Op {
	case OpLabel:
		return labelset.Of(n.Label), true
	case OpAltern:
		var mask labelset.Set
		for _, k := range n.Kids {
			m, ok := alternationOfLabels(k)
			if !ok {
				return 0, false
			}
			mask = mask.Union(m)
		}
		return mask, true
	}
	return 0, false
}

// concatenationOfLabels reports whether n is a label or a concatenation of
// labels (nested concatenations flatten).
func concatenationOfLabels(n *Node) ([]graph.Label, bool) {
	switch n.Op {
	case OpLabel:
		return []graph.Label{n.Label}, true
	case OpConcat:
		var seq []graph.Label
		for _, k := range n.Kids {
			s, ok := concatenationOfLabels(k)
			if !ok {
				return nil, false
			}
			seq = append(seq, s...)
		}
		return seq, true
	}
	return nil, false
}
