package regexpath

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/labelset"
)

func fixedResolver(names ...string) LabelResolver {
	m := make(map[string]graph.Label)
	for i, n := range names {
		m[n] = graph.Label(i)
	}
	return func(name string) (graph.Label, bool) {
		l, ok := m[name]
		return l, ok
	}
}

var abc = fixedResolver("a", "b", "c")

func mustParse(t *testing.T, expr string) *Node {
	t.Helper()
	n, err := Parse(expr, abc)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	return n
}

func TestParseShapes(t *testing.T) {
	cases := map[string]string{
		"a":       "a",
		"a.b":     "a.b",
		"a b":     "a.b",
		"a|b":     "a|b",
		"(a|b)*":  "(a|b)*",
		"(a.b)+":  "(a.b)+",
		"a.b|c":   "a.b|c",
		"(a|b).c": "(a|b).c",
		"a**":     "(a*)*",
		"((a))":   "a",
		"(a∪b)*":  "(a|b)*",
		"(a·b)*":  "(a.b)*",
	}
	for in, want := range cases {
		n := mustParse(t, in)
		if got := n.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "(", "(a", "a)", "|a", "a|", "unknown", "a..b", "*", "a | | b"} {
		if _, err := Parse(in, abc); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestDFAAccepts(t *testing.T) {
	la, lb, lc := graph.Label(0), graph.Label(1), graph.Label(2)
	cases := []struct {
		expr string
		yes  [][]graph.Label
		no   [][]graph.Label
	}{
		{"a", [][]graph.Label{{la}}, [][]graph.Label{{}, {lb}, {la, la}}},
		{"a.b", [][]graph.Label{{la, lb}}, [][]graph.Label{{la}, {lb, la}, {la, lb, la}}},
		{"a|b", [][]graph.Label{{la}, {lb}}, [][]graph.Label{{lc}, {la, lb}}},
		{"(a|b)*", [][]graph.Label{{}, {la}, {lb, la, lb}}, [][]graph.Label{{lc}, {la, lc}}},
		{"(a.b)+", [][]graph.Label{{la, lb}, {la, lb, la, lb}}, [][]graph.Label{{}, {la}, {la, lb, la}}},
		{"(a.b)*", [][]graph.Label{{}, {la, lb}}, [][]graph.Label{{lb, la}}},
		{"a.(b|c)*", [][]graph.Label{{la}, {la, lb, lc}}, [][]graph.Label{{lb}}},
		{"a+", [][]graph.Label{{la}, {la, la, la}}, [][]graph.Label{{}}},
	}
	for _, c := range cases {
		ast := mustParse(t, c.expr)
		dfa := CompileDFA(CompileNFA(ast), 3)
		for _, w := range c.yes {
			if !dfa.Accepts(w) {
				t.Errorf("%q should accept %v", c.expr, w)
			}
		}
		for _, w := range c.no {
			if dfa.Accepts(w) {
				t.Errorf("%q should reject %v", c.expr, w)
			}
		}
	}
}

func TestDFAMatchesEmpty(t *testing.T) {
	star := CompileDFA(CompileNFA(mustParse(t, "(a|b)*")), 3)
	plus := CompileDFA(CompileNFA(mustParse(t, "(a|b)+")), 3)
	if !star.MatchesEmpty() {
		t.Error("star must match empty")
	}
	if plus.MatchesEmpty() {
		t.Error("plus must not match empty")
	}
}

func TestCompileAgainstGraph(t *testing.T) {
	g := graph.Fig1Labeled()
	dfa, err := Compile("(friendOf|follows)*", g)
	if err != nil {
		t.Fatal(err)
	}
	if !dfa.Accepts([]graph.Label{0, 1, 0}) {
		t.Error("friendOf follows friendOf should be accepted")
	}
	if dfa.Accepts([]graph.Label{2}) {
		t.Error("worksFor should be rejected")
	}
	if _, err := Compile("(friendOf|nosuch)*", g); err == nil ||
		!strings.Contains(err.Error(), "unknown label") {
		t.Errorf("unknown label should fail, got %v", err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		expr  string
		class Class
	}{
		{"(a|b)*", ClassAlternation},
		{"(a|b|c)+", ClassAlternation},
		{"a*", ClassAlternation},
		{"(a)*", ClassAlternation},
		{"((a|b)|c)*", ClassAlternation},
		{"(a.b)*", ClassConcatenation},
		{"(a.b.c)+", ClassConcatenation},
		{"(a.(b.c))*", ClassConcatenation},
		{"a.b", ClassGeneral},
		{"a|b", ClassGeneral},
		{"(a.b|c)*", ClassGeneral},
		{"(a*.b)*", ClassGeneral},
		{"a.(b|c)*", ClassGeneral},
	}
	for _, c := range cases {
		got := Classify(mustParse(t, c.expr))
		if got.Class != c.class {
			t.Errorf("Classify(%q) = %v, want %v", c.expr, got.Class, c.class)
		}
	}
}

func TestClassifyDetails(t *testing.T) {
	cl := Classify(mustParse(t, "(a|c)*"))
	if cl.Allowed != labelset.Of(0, 2) {
		t.Errorf("Allowed = %b", cl.Allowed)
	}
	if cl.PlusOnly {
		t.Error("star misreported as plus")
	}
	cl = Classify(mustParse(t, "(a.b)+"))
	if len(cl.Sequence) != 2 || cl.Sequence[0] != 0 || cl.Sequence[1] != 1 {
		t.Errorf("Sequence = %v", cl.Sequence)
	}
	if !cl.PlusOnly {
		t.Error("plus misreported as star")
	}
}

func TestGraphResolver(t *testing.T) {
	g := graph.Fig1Labeled()
	r := GraphResolver(g)
	if l, ok := r("worksFor"); !ok || l != 2 {
		t.Errorf("worksFor -> %d,%v", l, ok)
	}
	if _, ok := r("bogus"); ok {
		t.Error("bogus label resolved")
	}
}
