// Package qcache is the DB's sharded query-result cache: a fixed-capacity
// map from fully-deciding query keys (route, source, target, extra
// constraint word) to boolean answers, evicting with the CLOCK
// second-chance policy. Reachability answers over an immutable graph never
// go stale, so the cache needs no invalidation — only bounded memory and
// low contention, which sharding by key hash provides: concurrent queries
// for different keys almost always lock different shards.
//
// The cache stores only keys whose answer is a pure function of the key
// (the DB decides which routes qualify); it is a plain (key → bool) memo
// with no knowledge of query semantics.
package qcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Key identifies one cacheable query exactly. Route separates query
// classes that share vertex pairs (plain vs. label-constrained vs.
// concatenation); Extra carries the route's constraint — a label mask for
// alternation queries, a packed label sequence for concatenation queries,
// zero for plain reachability.
type Key struct {
	Route uint8
	S, T  graph.V
	Extra uint64
}

// shardCount is the fixed power-of-two shard fan-out. Sixteen mutexes is
// plenty for the worker counts this repository runs (contention is per
// colliding key hash, not per query), and keeps the per-shard CLOCK rings
// long enough that second-chance has history to work with.
const shardCount = 16

type entry struct {
	key Key
	val bool
	ref bool // CLOCK reference bit: set on hit, cleared by the sweeping hand
}

type shard struct {
	mu   sync.Mutex
	idx  map[Key]int // key → position in ring
	ring []entry     // CLOCK ring, grows to cap then recycles
	hand int
	cap  int
}

// Cache is a sharded CLOCK cache of query answers. The zero value is not
// usable; construct with New.
type Cache struct {
	shards    [shardCount]shard
	capacity  int
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// New returns a cache holding at most capacity entries across all shards
// (rounded up to a multiple of the shard count, minimum one entry per
// shard). Capacity <= 0 returns nil, which every method accepts as a
// disabled cache — callers need no nil checks of their own.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + shardCount - 1) / shardCount
	c := &Cache{capacity: per * shardCount}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].idx = make(map[Key]int, per)
	}
	return c
}

// hash mixes the key into a shard selector (splitmix64-style finalizer —
// the same mixer par.SubSeed uses). Route and the vertex pair land in one
// word; Extra is folded in with a distinct odd multiplier so a label mask
// cannot alias a vertex pair.
func hash(k Key) uint64 {
	x := uint64(k.S)<<33 ^ uint64(k.T)<<1 ^ uint64(k.Route)
	x ^= k.Extra * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Get reports the cached answer for k and whether one was present.
func (c *Cache) Get(k Key) (val, ok bool) {
	if c == nil {
		return false, false
	}
	sh := &c.shards[hash(k)&(shardCount-1)]
	sh.mu.Lock()
	if i, found := sh.idx[k]; found {
		sh.ring[i].ref = true
		val = sh.ring[i].val
		sh.mu.Unlock()
		c.hits.Add(1)
		return val, true
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return false, false
}

// Put records the answer for k, evicting a second-chance victim if the
// key's shard is full. Re-putting an existing key refreshes its value and
// reference bit.
func (c *Cache) Put(k Key, val bool) {
	if c == nil {
		return
	}
	sh := &c.shards[hash(k)&(shardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if i, found := sh.idx[k]; found {
		sh.ring[i].val = val
		sh.ring[i].ref = true
		return
	}
	// New entries enter unreferenced — only an actual Get sets the bit.
	// This is the scan-resistant CLOCK variant: a burst of one-shot keys
	// cannot saturate every reference bit and push a constantly-hit entry
	// out (with insert-referenced CLOCK a full shard of fresh entries
	// degenerates to FIFO and evicts the hottest key first).
	if len(sh.ring) < sh.cap {
		sh.idx[k] = len(sh.ring)
		sh.ring = append(sh.ring, entry{key: k, val: val})
		return
	}
	// CLOCK sweep: give referenced entries a second chance, evict the
	// first unreferenced one. Bounded: one full lap clears every ref bit,
	// so the second lap must stop at the first slot.
	for {
		e := &sh.ring[sh.hand]
		if e.ref {
			e.ref = false
			sh.hand = (sh.hand + 1) % sh.cap
			continue
		}
		delete(sh.idx, e.key)
		c.evictions.Add(1)
		*e = entry{key: k, val: val}
		sh.idx[k] = sh.hand
		sh.hand = (sh.hand + 1) % sh.cap
		return
	}
}

// Stats snapshots the cache counters. Entries walks the shards under
// their locks; the totals are mutually consistent only approximately
// under concurrent load, which is all a monitoring surface needs. A nil
// cache reports all zeros.
func (c *Cache) Stats() obs.CacheSnapshot {
	if c == nil {
		return obs.CacheSnapshot{}
	}
	s := obs.CacheSnapshot{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Capacity:  c.capacity,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.ring)
		sh.mu.Unlock()
	}
	return s
}
