package qcache

import (
	"sync"
	"testing"
)

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(Key{S: 1, T: 2}); ok {
		t.Fatal("nil cache must miss")
	}
	c.Put(Key{S: 1, T: 2}, true)
	if s := c.Stats(); s != (c.Stats()) || s.Capacity != 0 {
		t.Fatalf("nil cache stats = %+v, want zeros", s)
	}
	if New(0) != nil || New(-3) != nil {
		t.Fatal("non-positive capacity must return the nil (disabled) cache")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(128)
	keys := []Key{
		{Route: 1, S: 3, T: 9},
		{Route: 2, S: 3, T: 9, Extra: 0b101}, // same pair, different route/extra
		{Route: 1, S: 9, T: 3},
	}
	vals := []bool{true, false, true}
	for i, k := range keys {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %d present before Put", i)
		}
		c.Put(k, vals[i])
	}
	for i, k := range keys {
		got, ok := c.Get(k)
		if !ok || got != vals[i] {
			t.Fatalf("key %d: got (%v,%v), want (%v,true)", i, got, ok, vals[i])
		}
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 3 || s.Entries != 3 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want 3 hits / 3 misses / 3 entries / 0 evictions", s)
	}
	// Re-putting refreshes the value in place.
	c.Put(keys[0], false)
	if got, _ := c.Get(keys[0]); got != false {
		t.Fatal("re-Put did not refresh value")
	}
	if s := c.Stats(); s.Entries != 3 {
		t.Fatalf("re-Put grew the cache: %+v", s)
	}
}

func TestCapacityRounding(t *testing.T) {
	c := New(1) // rounds up to one entry per shard
	if got := c.Stats().Capacity; got != shardCount {
		t.Fatalf("capacity = %d, want %d", got, shardCount)
	}
	c = New(100)
	if got := c.Stats().Capacity; got%shardCount != 0 || got < 100 {
		t.Fatalf("capacity = %d, want multiple of %d covering 100", got, shardCount)
	}
}

func TestEvictionBounded(t *testing.T) {
	c := New(64)
	for i := 0; i < 10000; i++ {
		c.Put(Key{S: uint32(i), T: uint32(i >> 3)}, i%2 == 0)
	}
	s := c.Stats()
	if s.Entries > s.Capacity {
		t.Fatalf("entries %d exceed capacity %d", s.Entries, s.Capacity)
	}
	if s.Evictions == 0 {
		t.Fatal("10000 puts through 64 slots must evict")
	}
	// Stored answers must survive eviction pressure intact.
	hits := 0
	for i := 0; i < 10000; i++ {
		if v, ok := c.Get(Key{S: uint32(i), T: uint32(i >> 3)}); ok {
			hits++
			if v != (i%2 == 0) {
				t.Fatalf("key %d returned the wrong value after evictions", i)
			}
		}
	}
	if hits == 0 {
		t.Fatal("everything was evicted including the newest entries")
	}
}

// TestClockSecondChance pins the CLOCK property: a key that keeps getting
// hit survives a stream of one-shot keys through the same shard.
func TestClockSecondChance(t *testing.T) {
	c := New(shardCount * 4) // 4 slots per shard
	hot := Key{Route: 7, S: 42, T: 43}
	c.Put(hot, true)
	for i := 0; i < 1000; i++ {
		c.Put(Key{Route: 7, S: uint32(i), T: uint32(i + 1)}, false)
		if _, ok := c.Get(hot); ok {
			continue
		}
		// The hot key can be evicted only if its shard saw enough cold
		// traffic to sweep twice without an intervening hit — with a Get
		// after every Put that means it was never re-referenced, a bug.
		t.Fatalf("hot key evicted at i=%d despite constant hits", i)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{Route: uint8(w % 3), S: uint32(i % 97), T: uint32(i % 89)}
				if v, ok := c.Get(k); ok {
					want := (int(k.S)+int(k.T)+int(k.Route))%2 == 0
					if v != want {
						t.Errorf("corrupted value for %+v", k)
						return
					}
				} else {
					c.Put(k, (int(k.S)+int(k.T)+int(k.Route))%2 == 0)
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 8*2000 {
		t.Fatalf("hits+misses = %d, want %d", s.Hits+s.Misses, 8*2000)
	}
}
