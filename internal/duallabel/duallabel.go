// Package duallabel implements dual labeling [17] (§3.1): a complete
// index for DAGs whose number of non-tree edges t is small (the paper
// targets "tree-like" data such as XML: constant-time queries with a
// t × t link table).
//
// The DAG is covered by a DFS spanning forest with subtree intervals
// (the "tree labeling"). Every non-tree edge (u, v) becomes a link; the
// t × t transitive link table records which link chains into which
// (link i reaches link j iff v_i is a tree ancestor of u_j, transitively
// closed). Qr(s, t) then holds iff t is in s's subtree, or some link whose
// tail lies in s's subtree (directly or through the link table) has t in
// its head's subtree — the "dual" of tree labeling plus link labeling.
package duallabel

import (
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

// Index is the dual-labeling complete index over a DAG.
type Index struct {
	po    *order.PostOrder
	tails []graph.V // non-tree edge tails
	heads []graph.V // non-tree edge heads
	// link[i] = bitset of links reachable from link i (reflexive).
	link []*bitset.Set
	// tailLinks[v] = links whose tail is v (indices into tails/heads).
	tailLinks [][]int32
	stats     core.Stats
}

// New builds the dual-labeling index over a DAG.
func New(dag *graph.Digraph) *Index {
	start := time.Now()
	n := dag.N()
	po := order.DFSForest(dag, order.Sources(dag), nil)
	ix := &Index{po: po, tailLinks: make([][]int32, n)}

	// Non-tree edges: (u, v) where v's spanning-forest parent is not u or
	// v was reached first through another parent. An edge is a tree edge
	// iff Parent[v] == u and it is the unique such claim; detect by
	// checking parenthood.
	dag.Edges(func(e graph.Edge) bool {
		if po.Parent[e.To] == e.From && e.From != e.To {
			// Tree edge... but parallel/dup edges were deduplicated, and
			// exactly one edge matches the parent claim.
			return true
		}
		id := int32(len(ix.tails))
		ix.tails = append(ix.tails, e.From)
		ix.heads = append(ix.heads, e.To)
		ix.tailLinks[e.From] = append(ix.tailLinks[e.From], id)
		return true
	})

	// Roots are their own parents; edges into roots are always non-tree
	// (handled above since Parent[root] == root != e.From unless self loop).
	t := len(ix.tails)
	ix.link = make([]*bitset.Set, t)
	// Direct chaining: link i -> link j iff tail_j ∈ subtree(head_i).
	// Transitive closure by DFS over the link graph (t is small by the
	// index's design assumption).
	direct := make([][]int32, t)
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			if i != j && po.Contains(ix.heads[i], ix.tails[j]) {
				direct[i] = append(direct[i], int32(j))
			}
		}
	}
	for i := 0; i < t; i++ {
		ix.link[i] = bitset.New(t)
		ix.link[i].Set(i)
		stack := []int32{int32(i)}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range direct[x] {
				if !ix.link[i].Test(int(y)) {
					ix.link[i].Set(int(y))
					stack = append(stack, y)
				}
			}
		}
	}
	linkBytes := 0
	for _, l := range ix.link {
		linkBytes += l.Bytes()
	}
	ix.stats = core.Stats{
		Entries:   n + t*t,
		Bytes:     n*8 + linkBytes + t*8,
		BuildTime: time.Since(start),
	}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "Dual-Labeling" }

// Reach reports whether t is reachable from s by pure lookups over the
// tree intervals and the link table.
func (ix *Index) Reach(s, t graph.V) bool {
	if ix.po.Contains(s, t) {
		return true
	}
	// Try every link whose tail lies in s's subtree.
	for i := range ix.tails {
		if !ix.po.Contains(s, ix.tails[i]) {
			continue
		}
		found := false
		ix.link[i].ForEach(func(j int) bool {
			if ix.po.Contains(ix.heads[j], t) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// NonTreeEdges reports the number of links t — the parameter that governs
// this index's viability, per §3.1's discussion.
func (ix *Index) NonTreeEdges() int { return len(ix.tails) }
