package duallabel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestPureTreeHasNoLinks(t *testing.T) {
	g := gen.TreePlus(200, 0, 1)
	ix := New(g)
	if ix.NonTreeEdges() != 0 {
		t.Errorf("pure tree has %d links", ix.NonTreeEdges())
	}
	if !ix.Reach(0, 199) {
		t.Error("root must reach every tree vertex")
	}
}

func TestFewNonTreeEdges(t *testing.T) {
	g := gen.TreePlus(300, 10, 2)
	ix := New(g)
	if ix.NonTreeEdges() > 10 {
		t.Errorf("links = %d, want <= 10", ix.NonTreeEdges())
	}
	if ix.Name() != "Dual-Labeling" {
		t.Error("name")
	}
}

func TestLinkChaining(t *testing.T) {
	// Two disjoint tree branches connected only by chained non-tree edges:
	// 0->1, 0->2 tree; plus 1->3? Build explicit:
	//   tree: 0->{1,2}, 2->4
	//   non-tree: 1->2 would be tree if first... craft: 3 isolated-ish.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1) // tree
	b.AddEdge(2, 3) // tree (2 is a root)
	b.AddEdge(4, 5) // tree (4 is a root)
	b.AddEdge(1, 2) // non-tree? 2 reached first as root -> link
	b.AddEdge(3, 4) // link
	g := b.MustFreeze()
	ix := New(g)
	// 0 -> 1 -> 2 -> 3 -> 4 -> 5 must chain through two links.
	if !ix.Reach(0, 5) {
		t.Error("chained links must certify 0->5")
	}
	if ix.Reach(5, 0) {
		t.Error("reverse must be false")
	}
}
