// Package pathhop implements a tree-hop index in the spirit of Path-Hop
// [8] (§3.2): 2-hop labeling where the intermediate structures are
// spanning-tree subtrees — "trees in the path-hop index" — so one hop
// entry covers a whole subtree of targets.
//
// A spanning forest T of the DAG gives every vertex its subtree interval.
// Hubs are processed in degree order with pruned forward/backward BFS as
// in PLL, but the query joins through the tree: Qr(s, t) holds iff there
// are hubs a ∈ Lout(s) ∪ {s} and b ∈ Lin(t) ∪ {t} with b in the subtree
// of a (then s → a →tree→ b → t). Because a single Lout entry covers
// every Lin entry inside its subtree, pruning can drop labels a plain
// 2-hop must keep. (The published Path-Hop's exact label-selection rules
// differ; see DESIGN.md.)
package pathhop

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

// Index is the tree-hop complete index over a DAG.
type Index struct {
	po      *order.PostOrder
	rank    []uint32
	byRank  []graph.V
	in, out [][]uint32 // hub ranks, ascending
	stats   core.Stats
}

// New builds the tree-hop index over a DAG.
func New(dag *graph.Digraph) *Index {
	start := time.Now()
	n := dag.N()
	po := order.DFSForest(dag, order.Sources(dag), nil)
	vs := order.ByDegreeDesc(dag)
	ix := &Index{
		po: po, byRank: vs, rank: make([]uint32, n),
		in: make([][]uint32, n), out: make([][]uint32, n),
	}
	for i, v := range vs {
		ix.rank[v] = uint32(i)
	}
	stamp := make([]uint32, n)
	var queue []graph.V
	for i, v := range vs {
		r := uint32(i)
		// Forward: add v to Lin(u) for u reachable from v, unless the
		// tree-join already covers (v, u).
		fs := uint32(2*i + 1)
		queue = append(queue[:0], v)
		stamp[v] = fs
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			if u != v {
				// A join certificate through strictly higher-priority hubs
				// makes the whole branch redundant (canonical pruning); a
				// bare subtree containment only makes the label redundant
				// (the query's endpoint-join recovers it) but exploration
				// must continue.
				if ix.joinCoveredBelow(v, u, r) {
					continue
				}
				if !ix.po.Contains(v, u) {
					ix.in[u] = append(ix.in[u], r)
				}
			}
			for _, w := range dag.Succ(u) {
				if stamp[w] != fs && ix.rank[w] > r {
					stamp[w] = fs
					queue = append(queue, w)
				}
			}
		}
		bs := uint32(2*i + 2)
		queue = append(queue[:0], v)
		stamp[v] = bs
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			if u != v {
				if ix.joinCoveredBelow(u, v, r) {
					continue
				}
				if !ix.po.Contains(u, v) {
					ix.out[u] = append(ix.out[u], r)
				}
			}
			for _, w := range dag.Pred(u) {
				if stamp[w] != bs && ix.rank[w] > r {
					stamp[w] = bs
					queue = append(queue, w)
				}
			}
		}
	}
	entries := 0
	for v := 0; v < n; v++ {
		entries += len(ix.in[v]) + len(ix.out[v])
	}
	ix.stats = core.Stats{Entries: entries, Bytes: entries*4 + n*12, BuildTime: time.Since(start)}
	return ix
}

// joinCoveredBelow reports whether hubs of rank strictly below limit
// certify s → t through the tree join. Only such certificates may prune
// BFS exploration.
func (ix *Index) joinCoveredBelow(s, t graph.V, limit uint32) bool {
	for _, ar := range ix.out[s] {
		if ar >= limit {
			break
		}
		a := ix.byRank[ar]
		if ix.po.Contains(a, t) {
			return true
		}
		for _, br := range ix.in[t] {
			if br >= limit {
				break
			}
			if ix.po.Contains(a, ix.byRank[br]) {
				return true
			}
		}
	}
	for _, br := range ix.in[t] {
		if br >= limit {
			break
		}
		if ix.po.Contains(s, ix.byRank[br]) {
			return true
		}
	}
	return false
}

// treeCovered reports whether the labels + tree join certify s → t.
func (ix *Index) treeCovered(s, t graph.V) bool {
	if s == t || ix.po.Contains(s, t) {
		return true
	}
	// Hubs a ∈ Lout(s) ∪ {s}, b ∈ Lin(t) ∪ {t}: b in subtree(a).
	// |labels| is small; the quadratic join is the query cost model of the
	// hop family.
	for _, ar := range ix.out[s] {
		a := ix.byRank[ar]
		if ix.po.Contains(a, t) {
			return true
		}
		for _, br := range ix.in[t] {
			if ix.po.Contains(a, ix.byRank[br]) {
				return true
			}
		}
	}
	for _, br := range ix.in[t] {
		if ix.po.Contains(s, ix.byRank[br]) {
			return true
		}
	}
	return false
}

// Name implements core.Index.
func (ix *Index) Name() string { return "Path-Hop" }

// Reach reports whether t is reachable from s via the tree join.
func (ix *Index) Reach(s, t graph.V) bool { return ix.treeCovered(s, t) }

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }
