package pathhop

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/pll"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestTreeJoinSavesLabels(t *testing.T) {
	// On tree-like inputs, subtree hops should need no more entries than
	// plain PLL (usually far fewer).
	g := gen.TreePlus(400, 40, 4)
	th := New(g)
	p := pll.New(g, pll.Options{})
	if th.Stats().Entries > p.Stats().Entries {
		t.Errorf("tree-hop entries %d > PLL entries %d on tree-like input",
			th.Stats().Entries, p.Stats().Entries)
	}
}

func TestPureTreeNeedsNoLabels(t *testing.T) {
	g := gen.TreePlus(200, 0, 5)
	ix := New(g)
	if ix.Stats().Entries != 0 {
		t.Errorf("pure tree should need 0 hop entries, got %d", ix.Stats().Entries)
	}
	if !ix.Reach(0, 150) {
		t.Error("root must reach all")
	}
	if ix.Name() != "Path-Hop" {
		t.Error("name")
	}
}
