package feline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestDominanceNecessary(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 200, M: 600, Seed: 1})
	ix := New(g)
	oracle := tc.NewClosure(g)
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if s != tt && oracle.Reach(s, tt) {
				if ix.x[s] >= ix.x[tt] || ix.y[s] >= ix.y[tt] {
					t.Fatalf("reachable pair (%d,%d) violates dominance", s, tt)
				}
			}
		}
	}
}

func TestOrdersDiffer(t *testing.T) {
	// The two coordinates must not be identical permutations, or the
	// second adds nothing.
	g := gen.RandomDAG(gen.Config{N: 300, M: 600, Seed: 2})
	ix := New(g)
	same := 0
	for v := 0; v < g.N(); v++ {
		if ix.x[v] == ix.y[v] {
			same++
		}
	}
	if same == g.N() {
		t.Error("both coordinates are the same permutation")
	}
	if ix.Name() != "FELINE" {
		t.Error("name")
	}
}
