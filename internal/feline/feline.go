// Package feline implements FELINE [45] (§3.4): every DAG vertex gets a
// 2-D coordinate (two topological ranks computed with different tie
// breaking); reachability implies strict dominance in both coordinates, so
// a dominance miss is a definite negative. The published heuristic chooses
// the second permutation to maximize the discriminating power; here the
// first rank comes from a FIFO Kahn sort and the second from a LIFO Kahn
// sort seeded in reverse id order, which empirically de-correlates them.
// A topological-level filter is layered on, and undecided queries run the
// coordinate-guided DFS.
package feline

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

// Index is the FELINE partial index over a DAG.
type Index struct {
	g     *graph.Digraph
	x, y  []uint32
	level []uint32
	stats core.Stats
}

// New builds FELINE over a DAG.
func New(dag *graph.Digraph) *Index {
	start := time.Now()
	n := dag.N()
	ix := &Index{g: dag, x: make([]uint32, n), y: make([]uint32, n)}

	// First coordinate: FIFO topological order.
	topo, _ := order.Topological(dag)
	for i, v := range topo {
		ix.x[v] = uint32(i)
	}
	// Second coordinate: LIFO topological order over sources taken in
	// descending id, yielding a markedly different permutation.
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, w := range dag.Succ(graph.V(v)) {
			indeg[w]++
		}
	}
	var stack []graph.V
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			stack = append(stack, graph.V(v))
		}
	}
	next := uint32(0)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ix.y[v] = next
		next++
		for _, w := range dag.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				stack = append(stack, w)
			}
		}
	}
	ix.level, _ = order.Levels(dag)
	ix.stats = core.Stats{
		Entries:   2 * n,
		Bytes:     3 * n * 4,
		BuildTime: time.Since(start),
	}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "FELINE" }

// TryReach implements core.Partial: dominance and level violations are
// definite negatives.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	if ix.x[s] >= ix.x[t] || ix.y[s] >= ix.y[t] || ix.level[s] >= ix.level[t] {
		return false, true
	}
	return false, false
}

// Reach answers Qr(s, t) exactly via coordinate-guided DFS.
func (ix *Index) Reach(s, t graph.V) bool {
	return core.GuidedDFS(ix.g, s, t, ix.TryReach)
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }
