package mutate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/persist"
)

// WAL container identity. Each group commit is one "batch" section:
//
//	crc u32 | seq u64 | count u32 | count × (kind u32, from u32, to u32, label u32)
//
// crc is CRC-32C over the seq/count/op bytes, so a flipped bit anywhere
// in a batch — including its sequence number — fails verification. seq
// is the 1-based batch number; replay additionally requires the
// sequence to be contiguous, which rejects spliced or reordered tails
// that happen to checksum.
const (
	WALFormat    = "reach-wal"
	walVersion   = 1
	batchSection = "batch"
	opBytes      = 16
)

// walHeaderLen is the on-disk size of the container header: magic,
// length-prefixed format name, version.
var walHeaderLen = int64(4 + 2 + len(WALFormat) + 2)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FsyncMode selects the WAL durability policy.
type FsyncMode int

const (
	// FsyncAlways fsyncs once per group commit, before any caller is
	// acknowledged: an acknowledged write survives an immediate power
	// cut. Group commit amortizes the sync across the whole batch.
	FsyncAlways FsyncMode = iota
	// FsyncNever leaves flushing to the OS page cache: acknowledged
	// writes survive a process crash but not a power cut. Log.Sync (the
	// DB.Flush barrier) still forces an fsync on demand.
	FsyncNever
)

func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// Batch is one recovered group commit, in WAL order.
type Batch struct {
	Seq uint64
	Ops []Op
}

// Recovery reports what Replay found in a WAL image.
type Recovery struct {
	// Batches are the fully intact batches, in sequence order.
	Batches []Batch
	// Intact is the byte length of the longest intact prefix: the
	// container header plus every verified batch. Bytes past Intact are
	// a torn or corrupt tail.
	Intact int64
	// TailErr is non-nil when bytes beyond Intact were rejected; it
	// describes the first defect (truncated section, CRC mismatch,
	// sequence gap). A nil TailErr means the image was consumed exactly.
	TailErr error
}

// Ops returns the total op count across recovered batches.
func (r Recovery) Ops() int {
	n := 0
	for _, b := range r.Batches {
		n += len(b.Ops)
	}
	return n
}

// Replay scans data as a WAL image and recovers the longest intact
// prefix. Torn tails — a crash mid-append — come back inside Recovery
// with a non-nil TailErr and are safe to truncate. A non-nil error means
// data is not a (possibly torn) WAL of this format at all — wrong magic,
// wrong format name, unsupported version — and the caller must refuse to
// reuse the file rather than clobber something that was never a WAL.
// Replay never panics, whatever the input.
func Replay(data []byte) (Recovery, error) {
	var rec Recovery
	if len(data) == 0 {
		return rec, nil
	}
	pr, err := persist.NewReader(bytes.NewReader(data), WALFormat, walVersion)
	if err != nil {
		// A header cut off mid-write is the torn tail of a log created
		// and killed before its first sync; in-place header corruption
		// or a different file type is not ours to truncate.
		if errors.Is(err, io.ErrUnexpectedEOF) && prefixOfMagic(data) {
			rec.TailErr = err
			return rec, nil
		}
		return rec, err
	}
	rec.Intact = walHeaderLen
	for {
		name, dec, err := pr.Next()
		if err == io.EOF {
			return rec, nil
		}
		if err != nil {
			rec.TailErr = err
			return rec, nil
		}
		if name != batchSection {
			rec.TailErr = fmt.Errorf("mutate: wal section %q, want %q", name, batchSection)
			return rec, nil
		}
		crc := dec.U32()
		seq := dec.U64()
		count := dec.U32()
		// Grow the op slice as bytes are actually consumed: a corrupt
		// count cannot trigger a huge up-front allocation, the decoder's
		// section bound fails the read first.
		ops := make([]Op, 0, min(int(count), 4096))
		for i := uint32(0); i < count && dec.Err() == nil; i++ {
			kind := dec.U32()
			if kind > 1 {
				// The op encoding is canonical (kind is 0 or 1), which
				// keeps the CRC — computed over re-encoded ops — exactly
				// the bytes on disk: a flip in any op byte either fails
				// here or fails the checksum.
				rec.TailErr = fmt.Errorf("mutate: wal batch %d op %d: invalid kind %d", seq, i, kind)
				return rec, nil
			}
			ops = append(ops, Op{
				Remove: kind == 1,
				From:   dec.U32(),
				To:     dec.U32(),
				Label:  dec.U32(),
			})
		}
		if err := dec.Close(); err != nil {
			rec.TailErr = err
			return rec, nil
		}
		if got := crcBatch(seq, ops); got != crc {
			rec.TailErr = fmt.Errorf("mutate: wal batch %d crc mismatch (stored %08x, computed %08x)", seq, crc, got)
			return rec, nil
		}
		if want := uint64(len(rec.Batches)) + 1; seq != want {
			rec.TailErr = fmt.Errorf("mutate: wal batch sequence %d, want %d", seq, want)
			return rec, nil
		}
		rec.Batches = append(rec.Batches, Batch{Seq: seq, Ops: ops})
		rec.Intact += batchSectionLen(len(ops))
	}
}

// batchSectionLen is the on-disk size of one batch section: name prefix,
// payload length, payload.
func batchSectionLen(ops int) int64 {
	return int64(2 + len(batchSection) + 8 + 4 + 8 + 4 + opBytes*ops)
}

// prefixOfMagic reports whether data could be the torn beginning of a
// WAL (a strict prefix of the container magic counts; anything that
// diverges from the magic is some other file).
func prefixOfMagic(data []byte) bool {
	n := min(len(data), len(persist.Magic))
	return bytes.Equal(data[:n], persist.Magic[:n])
}

// crcBatch checksums one batch: seq, count, then every op, all
// little-endian — the same bytes the section carries after the crc word.
func crcBatch(seq uint64, ops []Op) uint32 {
	var b [opBytes]byte
	binary.LittleEndian.PutUint64(b[:8], seq)
	binary.LittleEndian.PutUint32(b[8:12], uint32(len(ops)))
	crc := crc32.Update(0, castagnoli, b[:12])
	for _, op := range ops {
		var kind uint32
		if op.Remove {
			kind = 1
		}
		binary.LittleEndian.PutUint32(b[0:4], kind)
		binary.LittleEndian.PutUint32(b[4:8], op.From)
		binary.LittleEndian.PutUint32(b[8:12], op.To)
		binary.LittleEndian.PutUint32(b[12:16], op.Label)
		crc = crc32.Update(crc, castagnoli, b[:])
	}
	return crc
}

// Log is an open write-ahead log positioned for appending. Appends are
// serialized internally; one Log is shared by the batcher's flusher and
// the Flush barrier.
type Log struct {
	mu    sync.Mutex
	f     *os.File
	pw    *persist.Writer
	fsync FsyncMode
	size  int64 // committed on-disk length (intact prefix)
	base  int64 // size minus bytes written through the current pw
	seq   uint64
	// broken is set when a failed append could not be rolled back: the
	// on-disk log no longer provably equals the acknowledged history, so
	// every further append refuses (reads and recovery remain valid —
	// replay re-derives the intact prefix).
	broken error
}

// Open opens (creating if absent) the WAL at path, replays it, truncates
// any torn tail, and returns the log positioned for appending plus what
// was recovered. A file that is not a WAL at all is a hard error — Open
// never overwrites foreign bytes.
func Open(path string, fsync FsyncMode) (*Log, Recovery, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, Recovery{}, err
	}
	rec, fatal := Replay(data)
	if fatal != nil {
		return nil, Recovery{}, fmt.Errorf("mutate: wal %s: %w", path, fatal)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovery{}, err
	}
	l := &Log{f: f, fsync: fsync}
	if len(rec.Batches) > 0 {
		l.seq = rec.Batches[len(rec.Batches)-1].Seq
	}
	if rec.Intact < walHeaderLen {
		// Fresh file, or one torn before its header finished: (re)write
		// the header so the next replay sees a well-formed container.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
		l.pw = persist.NewWriter(f, WALFormat, walVersion)
		if _, err := l.pw.Flush(); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
		l.size = walHeaderLen
		l.base = 0 // pw has already counted the header bytes
	} else {
		if rec.TailErr != nil {
			if err := f.Truncate(rec.Intact); err != nil {
				f.Close()
				return nil, Recovery{}, err
			}
		}
		if _, err := f.Seek(rec.Intact, io.SeekStart); err != nil {
			f.Close()
			return nil, Recovery{}, err
		}
		l.pw = persist.NewAppendWriter(f)
		l.size = rec.Intact
		l.base = rec.Intact
	}
	return l, rec, nil
}

// Append durably logs one batch and returns the bytes appended. The
// batch is either fully on disk (per the fsync policy) when Append
// returns nil, or — on any failure — rolled back so the file again ends
// at the last committed batch; a rollback that itself fails marks the
// log broken and every later Append returns that error.
func (l *Log) Append(ops []Op) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return 0, l.broken
	}
	if err := faultinject.HitErr(SiteWALAppend); err != nil {
		return 0, err
	}
	seq := l.seq + 1
	l.pw.Section(batchSection, func(e *persist.Encoder) {
		e.U32(crcBatch(seq, ops))
		e.U64(seq)
		e.U32(uint32(len(ops)))
		for _, op := range ops {
			var kind uint32
			if op.Remove {
				kind = 1
			}
			e.U32(kind)
			e.U32(op.From)
			e.U32(op.To)
			e.U32(op.Label)
		}
	})
	n, err := l.pw.Flush()
	if err == nil {
		err = faultinject.HitErr(SiteWALFsync)
	}
	if err == nil && l.fsync == FsyncAlways {
		err = l.f.Sync()
	}
	if err != nil {
		return 0, l.rollback(err)
	}
	appended := l.base + n - l.size
	l.size = l.base + n
	l.seq = seq
	return appended, nil
}

// rollback restores the on-disk file to the last committed length after
// a failed append, recreating the section writer (whose sticky error
// state is now unusable). Returns cause, or the broken-log error when
// the restore itself failed.
func (l *Log) rollback(cause error) error {
	if err := l.f.Truncate(l.size); err != nil {
		l.broken = fmt.Errorf("mutate: wal unrecoverable after failed append (%v; truncate: %v)", cause, err)
		return l.broken
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.broken = fmt.Errorf("mutate: wal unrecoverable after failed append (%v; seek: %v)", cause, err)
		return l.broken
	}
	l.pw = persist.NewAppendWriter(l.f)
	l.base = l.size
	return cause
}

// Sync forces an fsync regardless of the policy — the durability barrier
// behind DB.Flush.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if err := faultinject.HitErr(SiteWALFsync); err != nil {
		return err
	}
	return l.f.Sync()
}

// Seq returns the sequence number of the last committed batch.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Size returns the committed on-disk length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close syncs and closes the file. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken == nil {
		l.broken = ErrClosed
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}
