package mutate

import (
	"bytes"
	"os"
	"testing"
)

// FuzzWALReplay hammers the recovery path with arbitrary bytes. The
// invariants are the ones Open relies on to never lose an acknowledged
// write and never invent one:
//
//   - Replay never panics, whatever the input;
//   - Intact never exceeds the input length;
//   - a nil TailErr (with no fatal error) means the image was consumed
//     exactly: Intact == len(data);
//   - recovery is idempotent: replaying the reported intact prefix
//     yields the same batches, cleanly (this is precisely what a
//     post-truncation restart does);
//   - recovered sequence numbers are contiguous from 1.
func FuzzWALReplay(f *testing.F) {
	// Seed with an intact image plus systematic mutilations of it, so
	// coverage starts from the interesting region of the input space.
	img := fuzzSeedImage(f)
	f.Add([]byte{})
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:walHeaderLen])
	f.Add([]byte("RIX"))
	f.Add([]byte("not a wal at all"))
	corrupt := append([]byte(nil), img...)
	corrupt[len(corrupt)-3] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Replay(data)
		if err != nil {
			if rec.Intact != 0 || len(rec.Batches) != 0 {
				t.Fatalf("fatal error %v alongside recovered state %+v", err, rec)
			}
			return
		}
		if rec.Intact > int64(len(data)) {
			t.Fatalf("Intact %d > input %d", rec.Intact, len(data))
		}
		if rec.TailErr == nil && rec.Intact != int64(len(data)) {
			t.Fatalf("clean replay consumed %d of %d bytes", rec.Intact, len(data))
		}
		for i, b := range rec.Batches {
			if b.Seq != uint64(i+1) {
				t.Fatalf("batch %d has seq %d", i, b.Seq)
			}
		}
		// Replaying the intact prefix must be clean and identical.
		rec2, err := Replay(data[:rec.Intact])
		if err != nil || rec2.TailErr != nil {
			t.Fatalf("replay of intact prefix failed: %v / %v", err, rec2.TailErr)
		}
		if rec2.Intact != rec.Intact || len(rec2.Batches) != len(rec.Batches) {
			t.Fatalf("intact prefix replay diverged: %d/%d batches, %d/%d bytes",
				len(rec2.Batches), len(rec.Batches), rec2.Intact, rec.Intact)
		}
		for i := range rec.Batches {
			if rec2.Batches[i].Seq != rec.Batches[i].Seq || !sameOps(rec2.Batches[i].Ops, rec.Batches[i].Ops) {
				t.Fatalf("batch %d diverged across prefix replay", i)
			}
		}
	})
}

// fuzzSeedImage builds a small intact WAL in memory via the real writer.
func fuzzSeedImage(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	l, _, err := Open(dir+"/seed.wal", FsyncNever)
	if err != nil {
		f.Fatal(err)
	}
	for _, ops := range testBatches {
		if _, err := l.Append(ops); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/seed.wal")
	if err != nil {
		f.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("RIX1")) {
		f.Fatalf("seed image lacks magic: %q", data[:8])
	}
	return data
}
