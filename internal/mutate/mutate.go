// Package mutate is the live-mutation subsystem behind reach.DB's
// AddEdge/RemoveEdge/Flush API: the machinery that makes a frozen,
// immutable index writable without ever serving a wrong or unavailable
// answer. It has three cooperating layers (the fourth, the background
// reindexer, lives in the root package next to the index builders):
//
//   - Batcher: a group-commit accumulator. Callers submit small op
//     slices and block on a per-caller response channel; a single
//     flusher goroutine coalesces everything queued into one batch per
//     size-or-deadline window, commits it once, and answers every
//     caller individually. Context cancellation abandons the wait, not
//     the batch.
//   - Log: a write-ahead log on the internal/persist container codec.
//     One "batch" section per group commit, CRC-32C over the payload,
//     configurable fsync policy, and recovery that replays the longest
//     intact prefix and truncates a torn tail — corrupted or truncated
//     bytes are always an error, never a panic, and never silently
//     accepted.
//   - Overlay: the delta the frozen index does not know about, as net
//     added/removed edge sets. Queries traverse the small delta and
//     consult the frozen index for the rest, so answers stay exact
//     between background rebuilds. Overlays are persistent values:
//     writers publish a fresh Clone+Apply through an atomic pointer,
//     readers never lock.
//
// The package is deliberately unlabeled-only (uint32 vertex pairs): the
// root package gates DBConfig.Mutation to unlabeled graphs, where the
// plain transitive closure is the exactness oracle.
package mutate

import "errors"

// Fault-injection site names on the mutation path (see
// internal/faultinject). Error plans at the WAL sites simulate disk
// faults mid-commit; a Panic plan at the rebuild site simulates a
// broken index build during the background fold.
const (
	// SiteWALAppend fires before a batch's bytes are written.
	SiteWALAppend = "wal/append"
	// SiteWALFsync fires between the write and the fsync, so injected
	// failures leave written-but-unsynced bytes for rollback to clean up.
	SiteWALFsync = "wal/fsync"
	// SiteRebuild fires at the start of one background reindex attempt.
	SiteRebuild = "mutate/rebuild"
)

// ErrClosed reports a mutation submitted after Close began.
var ErrClosed = errors.New("mutate: mutation pipeline closed")

// Op is one edge mutation. From/To are graph vertex ids (validated
// against the vertex universe by the caller before submission); Label is
// carried for forward compatibility and is 0 on unlabeled graphs.
type Op struct {
	Remove   bool
	From, To uint32
	Label    uint32
}
