package mutate

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectCommits is a commit func that records every batch it was handed.
// When block is non-nil, every commit first receives from it — tests hold
// the flusher inside a commit by withholding tokens, and release it (or
// all future commits) by sending or closing.
type collectCommits struct {
	mu      sync.Mutex
	batches [][]Op
	syncs   []bool
	err     error         // returned from every commit when set
	entered chan struct{} // buffered; signalled on commit entry, before blocking
	block   chan struct{}
}

func (c *collectCommits) commit(ops []Op, sync bool) error {
	if c.entered != nil {
		c.entered <- struct{}{}
	}
	if c.block != nil {
		<-c.block
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batches = append(c.batches, append([]Op(nil), ops...))
	c.syncs = append(c.syncs, sync)
	return c.err
}

func (c *collectCommits) totalOps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, b := range c.batches {
		n += len(b)
	}
	return n
}

// TestBatcherCoalesces: with the deadline effectively off, the window
// closes exactly when maxOps ops have accumulated — so N concurrent
// single-op submissions must come out as ONE commit carrying all N.
func TestBatcherCoalesces(t *testing.T) {
	const writers = 8
	c := &collectCommits{}
	b := NewBatcher(writers, time.Hour, c.commit)
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Submit(context.Background(), []Op{{From: uint32(i), To: uint32(i + 1)}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.batches) != 1 {
		t.Fatalf("%d commits, want 1 (group commit did not coalesce)", len(c.batches))
	}
	if len(c.batches[0]) != writers {
		t.Fatalf("window carried %d ops, want %d", len(c.batches[0]), writers)
	}
}

func TestBatcherFlushesOnSize(t *testing.T) {
	c := &collectCommits{}
	b := NewBatcher(1, time.Hour, c.commit) // window closes after 1 op
	defer b.Close()
	if err := b.Submit(context.Background(), []Op{{From: 1, To: 2}}); err != nil {
		t.Fatal(err)
	}
	if got := c.totalOps(); got != 1 {
		t.Fatalf("ops committed = %d (size trigger did not fire; delay is 1h)", got)
	}
}

func TestBatcherFlushesOnDeadline(t *testing.T) {
	c := &collectCommits{}
	b := NewBatcher(1000, time.Millisecond, c.commit)
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- b.Submit(context.Background(), []Op{{From: 1, To: 2}}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline trigger never fired")
	}
}

// TestBatcherBarrier: a barrier coalescing into a window that also holds
// ops must (a) force the window out immediately — the deadline is an
// hour — and (b) flag the combined commit sync, so the WAL fsyncs it
// even under FsyncNever. This is the Flush durability contract.
func TestBatcherBarrier(t *testing.T) {
	c := &collectCommits{entered: make(chan struct{}, 16), block: make(chan struct{})}
	b := NewBatcher(1000, time.Hour, c.commit)
	defer b.Close()

	// A sacrificial barrier opens a window alone and flushes immediately,
	// parking the flusher inside commit #1. While it is parked, enqueue —
	// in order — an op and then a barrier: they become window #2.
	sacrificial := make(chan error, 1)
	go func() { sacrificial <- b.Submit(context.Background(), nil) }()
	<-c.entered // flusher is inside commit #1
	opDone := make(chan error, 1)
	go func() { opDone <- b.Submit(context.Background(), []Op{{From: 1, To: 2}}) }()
	for len(b.reqs) != 1 {
		time.Sleep(time.Millisecond)
	}
	barrierDone := make(chan error, 1)
	go func() { barrierDone <- b.Submit(context.Background(), nil) }()
	for len(b.reqs) != 2 {
		time.Sleep(time.Millisecond)
	}
	c.block <- struct{}{} // release commit #1
	<-c.entered           // flusher is inside commit #2
	c.block <- struct{}{} // release commit #2
	for _, ch := range []chan error{sacrificial, opDone, barrierDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("barrier did not force the window out")
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.batches) != 2 {
		t.Fatalf("%d commits, want 2: %v", len(c.batches), c.batches)
	}
	if len(c.batches[1]) != 1 || !c.syncs[1] {
		t.Fatalf("window #2 = %d ops, sync=%v — want the op with sync=true",
			len(c.batches[1]), c.syncs[1])
	}
	if !c.syncs[0] {
		t.Fatal("barrier-only window #1 not marked sync")
	}
}

func TestBatcherCommitErrorReachesAllCallers(t *testing.T) {
	want := errors.New("disk on fire")
	c := &collectCommits{err: want}
	b := NewBatcher(2, time.Hour, c.commit)
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Submit(context.Background(), []Op{{From: uint32(i), To: 9}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, want) {
			t.Fatalf("caller %d got %v, want the commit error", i, err)
		}
	}
}

func TestBatcherContextCancelAbandonsWaitNotBatch(t *testing.T) {
	c := &collectCommits{entered: make(chan struct{}, 16), block: make(chan struct{})}
	b := NewBatcher(1, time.Hour, c.commit)
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Submit(ctx, []Op{{From: 1, To: 2}}) }()
	<-c.entered // the op's batch is inside commit; cancel the waiting caller
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit = %v, want context.Canceled", err)
	}
	// The batch still commits — the caller abandoned the wait, not the write.
	c.block <- struct{}{}
	deadline := time.Now().Add(5 * time.Second)
	for c.totalOps() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned batch never committed (ops=%d)", c.totalOps())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherPreCancelledContext(t *testing.T) {
	c := &collectCommits{}
	b := NewBatcher(1, time.Hour, c.commit)
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Submit(ctx, []Op{{From: 1, To: 2}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit = %v, want context.Canceled", err)
	}
	if got := c.totalOps(); got != 0 {
		t.Fatalf("pre-cancelled submit committed %d ops", got)
	}
}

// TestBatcherCloseDrainsQueued: submissions that made it into the queue
// before Close must be committed and acknowledged, not abandoned.
func TestBatcherCloseDrainsQueued(t *testing.T) {
	c := &collectCommits{entered: make(chan struct{}, 16), block: make(chan struct{})}
	b := NewBatcher(1, time.Hour, c.commit)
	// The first submission flushes on size and parks inside commit #1.
	first := make(chan error, 1)
	go func() { first <- b.Submit(context.Background(), []Op{{From: 0, To: 1}}) }()
	<-c.entered
	// Queue more behind the parked flusher.
	const queued = 4
	var wg sync.WaitGroup
	var acked atomic.Int32
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Submit(context.Background(), []Op{{From: uint32(i + 10), To: 1}}); err == nil {
				acked.Add(1)
			}
		}(i)
	}
	for len(b.reqs) != queued {
		time.Sleep(time.Millisecond)
	}
	// Begin Close while everything is still queued, then release the
	// flusher for good: it must answer the parked caller, notice the
	// stop, and drain the queue.
	closed := make(chan struct{})
	go func() { b.Close(); close(closed) }()
	for {
		b.mu.RLock()
		done := b.closed
		b.mu.RUnlock()
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(c.block)
	wg.Wait()
	<-closed
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if int(acked.Load()) != queued {
		t.Fatalf("%d queued submissions acked across Close, want %d", acked.Load(), queued)
	}
	if got := c.totalOps(); got != queued+1 {
		t.Fatalf("ops committed = %d, want %d", got, queued+1)
	}
	// After Close, submissions refuse.
	if err := b.Submit(context.Background(), []Op{{From: 1, To: 2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestBatcherCloseIdempotent(t *testing.T) {
	b := NewBatcher(1, time.Millisecond, (&collectCommits{}).commit)
	b.Close()
	b.Close()
}
