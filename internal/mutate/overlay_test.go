package mutate

import (
	"sort"
	"testing"
)

// baseOf builds an inBase predicate from an edge list.
func baseOf(edges ...[2]uint32) func(from, to uint32) bool {
	set := make(map[uint64]struct{}, len(edges))
	for _, e := range edges {
		set[edgeKey(e[0], e[1])] = struct{}{}
	}
	return func(from, to uint32) bool {
		_, ok := set[edgeKey(from, to)]
		return ok
	}
}

func add(from, to uint32) Op    { return Op{From: from, To: to} }
func remove(from, to uint32) Op { return Op{Remove: true, From: from, To: to} }

// TestOverlayNetSemantics drives op sequences against bases and checks
// the overlay converges to the net difference — the property the exact
// query path and the reindexer both depend on.
func TestOverlayNetSemantics(t *testing.T) {
	tests := []struct {
		name        string
		base        func(from, to uint32) bool
		ops         []Op
		wantAdded   [][2]uint32
		wantRemoved [][2]uint32
	}{
		{
			name:      "add new edge",
			base:      baseOf(),
			ops:       []Op{add(1, 2)},
			wantAdded: [][2]uint32{{1, 2}},
		},
		{
			name: "add existing edge is a no-op",
			base: baseOf([2]uint32{1, 2}),
			ops:  []Op{add(1, 2)},
		},
		{
			name:        "remove base edge",
			base:        baseOf([2]uint32{1, 2}),
			ops:         []Op{remove(1, 2)},
			wantRemoved: [][2]uint32{{1, 2}},
		},
		{
			name: "remove absent edge is a no-op",
			base: baseOf(),
			ops:  []Op{remove(1, 2)},
		},
		{
			name: "add then remove cancels",
			base: baseOf(),
			ops:  []Op{add(1, 2), remove(1, 2)},
		},
		{
			name: "remove then add cancels",
			base: baseOf([2]uint32{1, 2}),
			ops:  []Op{remove(1, 2), add(1, 2)},
		},
		{
			// The regression ISSUE calls out: add/remove/add of the same
			// edge must converge to exactly one edge, not zero or two.
			name:      "add remove add converges (new edge)",
			base:      baseOf(),
			ops:       []Op{add(1, 2), remove(1, 2), add(1, 2)},
			wantAdded: [][2]uint32{{1, 2}},
		},
		{
			name: "remove add remove converges (base edge)",
			base: baseOf([2]uint32{1, 2}),
			ops: []Op{
				remove(1, 2), add(1, 2), remove(1, 2),
			},
			wantRemoved: [][2]uint32{{1, 2}},
		},
		{
			name:      "self-loop add remove add",
			base:      baseOf(),
			ops:       []Op{add(7, 7), remove(7, 7), add(7, 7)},
			wantAdded: [][2]uint32{{7, 7}},
		},
		{
			name:        "self-loop in base removed",
			base:        baseOf([2]uint32{7, 7}),
			ops:         []Op{remove(7, 7)},
			wantRemoved: [][2]uint32{{7, 7}},
		},
		{
			// Duplicate adds of the same new edge must not double-count
			// in addedSucc (a later unadd would leave a phantom).
			name:      "duplicate adds collapse",
			base:      baseOf(),
			ops:       []Op{add(1, 2), add(1, 2), add(1, 2)},
			wantAdded: [][2]uint32{{1, 2}},
		},
		{
			name: "duplicate adds then one remove clears",
			base: baseOf(),
			ops:  []Op{add(1, 2), add(1, 2), remove(1, 2)},
		},
		{
			name:        "mixed edges stay independent",
			base:        baseOf([2]uint32{1, 2}, [2]uint32{3, 4}),
			ops:         []Op{remove(1, 2), add(5, 6), remove(3, 4), add(3, 4)},
			wantAdded:   [][2]uint32{{5, 6}},
			wantRemoved: [][2]uint32{{1, 2}},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			o := NewOverlay()
			for _, op := range tc.ops {
				o.Apply(op, tc.base)
			}
			checkOverlay(t, o, tc.wantAdded, tc.wantRemoved)
		})
	}
}

func checkOverlay(t *testing.T, o *Overlay, wantAdded, wantRemoved [][2]uint32) {
	t.Helper()
	var gotAdded, gotRemoved [][2]uint32
	o.AddedEdges(func(from, to uint32) { gotAdded = append(gotAdded, [2]uint32{from, to}) })
	o.RemovedEdges(func(from, to uint32) { gotRemoved = append(gotRemoved, [2]uint32{from, to}) })
	sortEdges(gotAdded)
	sortEdges(gotRemoved)
	sortEdges(wantAdded)
	sortEdges(wantRemoved)
	if !sameEdges(gotAdded, wantAdded) {
		t.Errorf("added = %v, want %v", gotAdded, wantAdded)
	}
	if !sameEdges(gotRemoved, wantRemoved) {
		t.Errorf("removed = %v, want %v", gotRemoved, wantRemoved)
	}
	if o.AddedCount() != len(wantAdded) || o.RemovedCount() != len(wantRemoved) {
		t.Errorf("counts = %d/%d, want %d/%d",
			o.AddedCount(), o.RemovedCount(), len(wantAdded), len(wantRemoved))
	}
	if o.Size() != len(wantAdded)+len(wantRemoved) {
		t.Errorf("Size = %d", o.Size())
	}
	if o.Empty() != (len(wantAdded)+len(wantRemoved) == 0) {
		t.Errorf("Empty = %v", o.Empty())
	}
	// addedSucc must index exactly the added set.
	nsucc := 0
	for _, e := range wantAdded {
		found := false
		for _, v := range o.AddedSucc(e[0]) {
			if v == e[1] {
				found = true
			}
		}
		if !found {
			t.Errorf("AddedSucc(%d) misses %d", e[0], e[1])
		}
	}
	seen := map[uint32]bool{}
	for _, e := range wantAdded {
		if !seen[e[0]] {
			seen[e[0]] = true
			nsucc += len(o.AddedSucc(e[0]))
		}
	}
	if nsucc != len(wantAdded) {
		t.Errorf("addedSucc holds %d entries, want %d (phantom or dropped successor)",
			nsucc, len(wantAdded))
	}
}

func sortEdges(es [][2]uint32) {
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
}

func sameEdges(a, b [][2]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOverlayCloneIsolation(t *testing.T) {
	base := baseOf([2]uint32{1, 2})
	o := NewOverlay()
	o.Apply(add(3, 4), base)
	o.Apply(remove(1, 2), base)
	c := o.Clone()
	c.Apply(add(5, 6), base)
	c.Apply(add(1, 2), base) // cancels the removal in the clone only
	if !o.HasAdded(3, 4) || !o.HasRemoved(1, 2) || o.HasAdded(5, 6) {
		t.Fatalf("original mutated through clone: added=%d removed=%d",
			o.AddedCount(), o.RemovedCount())
	}
	if !c.HasAdded(5, 6) || c.HasRemoved(1, 2) {
		t.Fatalf("clone wrong: added=%d removed=%d", c.AddedCount(), c.RemovedCount())
	}
	// Deep copy extends to the successor index.
	if got := o.AddedSucc(5); len(got) != 0 {
		t.Fatalf("original AddedSucc(5) = %v", got)
	}
}

// TestOverlayRebase covers the reindexer hand-off, including the revert
// race it exists for: an op arriving during the rebuild that undoes a
// change the snapshot already folded into the new base.
func TestOverlayRebase(t *testing.T) {
	g0 := baseOf([2]uint32{1, 2}, [2]uint32{3, 4})

	// Snapshot taken: remove (1,2), add (5,6).
	snap := NewOverlay()
	snap.Apply(remove(1, 2), g0)
	snap.Apply(add(5, 6), g0)

	// The new base g1 = g0 minus (1,2) plus (5,6).
	g1 := baseOf([2]uint32{3, 4}, [2]uint32{5, 6})

	t.Run("no ops during rebuild", func(t *testing.T) {
		out := Rebase(snap.Clone(), snap, g0, g1)
		if !out.Empty() {
			t.Fatalf("rebase of unchanged overlay = %d added %d removed, want empty",
				out.AddedCount(), out.RemovedCount())
		}
	})

	t.Run("ops during rebuild carry forward", func(t *testing.T) {
		cur := snap.Clone()
		cur.Apply(add(7, 8), g0)
		cur.Apply(remove(3, 4), g0)
		out := Rebase(cur, snap, g0, g1)
		if !out.HasAdded(7, 8) || !out.HasRemoved(3, 4) {
			t.Fatalf("mid-rebuild ops lost: added=%d removed=%d",
				out.AddedCount(), out.RemovedCount())
		}
		if out.Size() != 2 {
			t.Fatalf("Size = %d, want 2", out.Size())
		}
	})

	t.Run("revert of folded removal", func(t *testing.T) {
		// (1,2) was removed in the snapshot — g1 lacks it — then re-added
		// while the rebuild ran. cur sees the pair in *neither* net set
		// (remove then add cancels), yet the live graph has the edge and
		// g1 does not: only the snapshot comparison can recover it.
		cur := snap.Clone()
		cur.Apply(add(1, 2), g0)
		out := Rebase(cur, snap, g0, g1)
		if !out.HasAdded(1, 2) {
			t.Fatal("re-added edge lost across rebase")
		}
		if out.Size() != 1 {
			t.Fatalf("Size = %d, want 1", out.Size())
		}
	})

	t.Run("revert of folded addition", func(t *testing.T) {
		// Dual case: (5,6) was added in the snapshot — g1 has it — then
		// removed while the rebuild ran.
		cur := snap.Clone()
		cur.Apply(remove(5, 6), g0)
		out := Rebase(cur, snap, g0, g1)
		if !out.HasRemoved(5, 6) {
			t.Fatal("re-removed edge resurrected across rebase")
		}
		if out.Size() != 1 {
			t.Fatalf("Size = %d, want 1", out.Size())
		}
	})
}
