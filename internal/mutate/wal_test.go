package mutate

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// testBatches is the fixture the recovery-matrix tests append: three
// batches of different sizes so every boundary class (header, small
// batch, larger batch, end of file) appears in the image.
var testBatches = [][]Op{
	{{From: 1, To: 2}},
	{{Remove: true, From: 3, To: 4}, {From: 5, To: 6}},
	{{From: 7, To: 8}, {From: 9, To: 10}, {Remove: true, From: 11, To: 12}},
}

// writeTestWAL creates a WAL containing testBatches and returns its path
// and raw bytes.
func writeTestWAL(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, rec, err := Open(path, FsyncAlways)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rec.Batches) != 0 || rec.Intact != 0 || rec.TailErr != nil {
		t.Fatalf("fresh recovery = %+v, want empty", rec)
	}
	for _, ops := range testBatches {
		if _, err := l.Append(ops); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return path, data
}

// boundaries returns the byte offsets at which the fixture image is
// intact: after the header and after each batch.
func boundaries() []int64 {
	bs := []int64{walHeaderLen}
	off := walHeaderLen
	for _, ops := range testBatches {
		off += batchSectionLen(len(ops))
		bs = append(bs, off)
	}
	return bs
}

func sameOps(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkPrefix asserts that rec's batches are exactly the first n fixture
// batches, byte-for-byte.
func checkPrefix(t *testing.T, rec Recovery, n int) {
	t.Helper()
	if len(rec.Batches) != n {
		t.Fatalf("recovered %d batches, want %d", len(rec.Batches), n)
	}
	for i, b := range rec.Batches {
		if b.Seq != uint64(i+1) {
			t.Fatalf("batch %d seq = %d, want %d", i, b.Seq, i+1)
		}
		if !sameOps(b.Ops, testBatches[i]) {
			t.Fatalf("batch %d ops = %v, want %v", i, b.Ops, testBatches[i])
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	_, data := writeTestWAL(t)
	want := boundaries()
	if int64(len(data)) != want[len(want)-1] {
		t.Fatalf("file is %d bytes, want %d (batchSectionLen drifted from the codec)",
			len(data), want[len(want)-1])
	}
	rec, err := Replay(data)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rec.TailErr != nil {
		t.Fatalf("TailErr = %v on an intact image", rec.TailErr)
	}
	if rec.Intact != int64(len(data)) {
		t.Fatalf("Intact = %d, want %d", rec.Intact, len(data))
	}
	checkPrefix(t, rec, len(testBatches))
	if rec.Ops() != 6 {
		t.Fatalf("Ops() = %d, want 6", rec.Ops())
	}
}

// TestWALTruncationMatrix truncates the image at every byte length and
// checks that Replay recovers exactly the batches that are wholly inside
// the kept prefix — never panicking, never inventing data, and flagging
// a torn tail via TailErr whenever the cut is off a boundary.
func TestWALTruncationMatrix(t *testing.T) {
	_, data := writeTestWAL(t)
	bs := boundaries()
	for cut := 0; cut <= len(data); cut++ {
		rec, err := Replay(data[:cut])
		if err != nil {
			// Pure truncation is always recoverable: the bytes are a
			// prefix of a genuine WAL, so nothing should look foreign.
			t.Fatalf("cut %d: fatal error %v, want recovery", cut, err)
		}
		// The longest boundary at or before the cut decides both the
		// intact length and the recovered batch count.
		wantIntact, wantBatches := int64(0), 0
		for i, b := range bs {
			if b <= int64(cut) {
				wantIntact = b
				wantBatches = i // bs[0] is the header: 0 batches
			}
		}
		if rec.Intact != wantIntact {
			t.Fatalf("cut %d: Intact = %d, want %d", cut, rec.Intact, wantIntact)
		}
		checkPrefix(t, rec, wantBatches)
		onBoundary := int64(cut) == wantIntact && (cut == 0 || wantIntact > 0)
		if onBoundary && rec.TailErr != nil {
			t.Fatalf("cut %d: TailErr = %v on a clean boundary", cut, rec.TailErr)
		}
		if !onBoundary && rec.TailErr == nil {
			t.Fatalf("cut %d: TailErr = nil with %d torn bytes", cut, int64(cut)-wantIntact)
		}
	}
}

// TestWALCorruptionMatrix flips one bit at every byte position and checks
// that Replay either refuses the file outright (header corruption — the
// file no longer looks like a WAL) or recovers only batches strictly
// before the corrupted byte, with content identical to what was written.
// It must never panic and never return a corrupted batch as intact.
func TestWALCorruptionMatrix(t *testing.T) {
	_, data := writeTestWAL(t)
	bs := boundaries()
	for pos := 0; pos < len(data); pos++ {
		img := append([]byte(nil), data...)
		img[pos] ^= 0x40
		rec, err := Replay(img)
		if err != nil {
			if int64(pos) >= bs[0] {
				t.Fatalf("pos %d: fatal error %v for corruption past the header", pos, err)
			}
			continue // header no longer ours: refusing is correct
		}
		if rec.TailErr == nil {
			t.Fatalf("pos %d: corruption not detected (Intact=%d, %d batches)",
				pos, rec.Intact, len(rec.Batches))
		}
		// Exactly the batches strictly before the corrupted byte must be
		// recovered: later ones are unsound, earlier ones were verified
		// before the scan reached the defect.
		want := 0
		for i, b := range bs[1:] {
			if b <= int64(pos) {
				want = i + 1
			}
		}
		if len(rec.Batches) != want {
			t.Fatalf("pos %d: recovered %d batches, want %d",
				pos, len(rec.Batches), want)
		}
		checkPrefix(t, rec, want)
	}
}

// TestWALOpenTruncatesTornTail checks the full crash-recovery cycle:
// Open on a torn image truncates the tail, reports the intact prefix,
// and leaves the log appendable with a contiguous sequence.
func TestWALOpenTruncatesTornTail(t *testing.T) {
	path, data := writeTestWAL(t)
	bs := boundaries()
	torn := bs[2] + 5 // header + 2 batches + 5 bytes of batch 3
	if err := os.WriteFile(path, data[:torn], 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(path, FsyncAlways)
	if err != nil {
		t.Fatalf("Open on torn image: %v", err)
	}
	if rec.TailErr == nil {
		t.Fatal("TailErr = nil, want torn-tail report")
	}
	checkPrefix(t, rec, 2)
	if fi, err := os.Stat(path); err != nil || fi.Size() != bs[2] {
		t.Fatalf("file size after Open = %v/%v, want %d", fi.Size(), err, bs[2])
	}
	if _, err := l.Append([]Op{{From: 100, To: 200}}); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := Replay(final)
	if err != nil || rec2.TailErr != nil {
		t.Fatalf("Replay after recovery+append: %v / %v", err, rec2.TailErr)
	}
	if len(rec2.Batches) != 3 || rec2.Batches[2].Seq != 3 {
		t.Fatalf("batches after recovery+append = %+v, want seqs 1..3", rec2.Batches)
	}
	if !sameOps(rec2.Batches[2].Ops, []Op{{From: 100, To: 200}}) {
		t.Fatalf("post-recovery batch = %v", rec2.Batches[2].Ops)
	}
}

// TestWALOpenRefusesForeignFile: a file that was never a WAL must not be
// truncated or overwritten.
func TestWALOpenRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notawal")
	content := []byte("precious bytes that are not a WAL")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, FsyncAlways); err == nil {
		t.Fatal("Open accepted a foreign file")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != string(content) {
		t.Fatalf("foreign file modified: %q / %v", got, err)
	}
}

// TestWALOpenTornHeader: a file killed before its header finished is the
// recoverable degenerate case — Open rewrites the header and starts over.
func TestWALOpenTornHeader(t *testing.T) {
	for cut := 0; cut < int(walHeaderLen); cut++ {
		path, data := writeTestWAL(t)
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(path, FsyncAlways)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(rec.Batches) != 0 {
			t.Fatalf("cut %d: recovered %d batches from a headerless file", cut, len(rec.Batches))
		}
		if _, err := l.Append([]Op{{From: 1, To: 2}}); err != nil {
			t.Fatalf("cut %d: Append: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		final, _ := os.ReadFile(path)
		rec2, err := Replay(final)
		if err != nil || rec2.TailErr != nil || len(rec2.Batches) != 1 {
			t.Fatalf("cut %d: fresh log replay = %+v / %v", cut, rec2, err)
		}
	}
}

// TestWALAppendRollback: an injected failure at either WAL site must
// leave the on-disk file exactly at the last committed batch, and the
// log must keep working once the fault clears.
func TestWALAppendRollback(t *testing.T) {
	for _, site := range []string{SiteWALAppend, SiteWALFsync} {
		t.Run(site, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "w.wal")
			l, _, err := Open(path, FsyncAlways)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			if _, err := l.Append([]Op{{From: 1, To: 2}}); err != nil {
				t.Fatal(err)
			}
			committed := l.Size()

			faultinject.Activate(&faultinject.Plan{Site: site, Kind: faultinject.Error})
			t.Cleanup(faultinject.Deactivate)
			_, err = l.Append([]Op{{From: 3, To: 4}})
			var inj *faultinject.Injected
			if !errors.As(err, &inj) {
				t.Fatalf("Append with armed %s = %v, want injected error", site, err)
			}
			if l.Size() != committed {
				t.Fatalf("Size after failed append = %d, want %d", l.Size(), committed)
			}
			if fi, _ := os.Stat(path); fi.Size() != committed {
				t.Fatalf("on-disk size after failed append = %d, want %d", fi.Size(), committed)
			}

			// The plan fires once; the retry must commit with seq 2 —
			// no gap from the failed attempt.
			if _, err := l.Append([]Op{{From: 3, To: 4}}); err != nil {
				t.Fatalf("Append after fault cleared: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			data, _ := os.ReadFile(path)
			rec, err := Replay(data)
			if err != nil || rec.TailErr != nil {
				t.Fatalf("Replay: %v / %v", err, rec.TailErr)
			}
			if len(rec.Batches) != 2 || rec.Batches[1].Seq != 2 {
				t.Fatalf("batches = %+v, want seqs 1,2", rec.Batches)
			}
		})
	}
}

// TestWALSyncInjectedError: the Flush barrier's fsync can fail too.
func TestWALSyncInjectedError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	faultinject.Activate(&faultinject.Plan{Site: SiteWALFsync, Kind: faultinject.Error})
	t.Cleanup(faultinject.Deactivate)
	if err := l.Sync(); err == nil {
		t.Fatal("Sync with armed fsync fault = nil")
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after fault cleared: %v", err)
	}
}

func TestWALClosedAppendFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Op{{From: 1, To: 2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
}

// TestWALKillMidCommit re-executes the test binary as a writer child
// that appends fsynced batches in a tight loop, reporting each
// acknowledged sequence number on stdout. The parent SIGKILLs it
// mid-stream — a real crash, not a simulated one — and then verifies the
// recovered WAL holds at least every acknowledged batch, with intact
// checksums and contiguous sequence.
func TestWALKillMidCommit(t *testing.T) {
	if path := os.Getenv("WAL_CRASH_CHILD"); path != "" {
		walCrashChild(path)
		return
	}
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	path := filepath.Join(t.TempDir(), "crash.wal")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestWALKillMidCommit$", "-test.v")
	cmd.Env = append(os.Environ(), "WAL_CRASH_CHILD="+path)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Read acked seqs until we have a few, then kill without warning.
	var lastAcked uint64
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		seq, err := strconv.ParseUint(strings.TrimPrefix(line, "acked "), 10, 64)
		if !strings.HasPrefix(line, "acked ") || err != nil {
			continue // test framework chatter
		}
		lastAcked = seq
		if seq >= 20 {
			break
		}
	}
	if lastAcked == 0 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child never acknowledged a batch")
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to be non-nil (killed)

	l, rec, err := Open(path, FsyncAlways)
	if err != nil {
		t.Fatalf("Open after kill: %v", err)
	}
	defer l.Close()
	if got := uint64(len(rec.Batches)); got < lastAcked {
		t.Fatalf("recovered %d batches, but %d were acknowledged before the kill", got, lastAcked)
	}
	for i, b := range rec.Batches {
		if b.Seq != uint64(i+1) {
			t.Fatalf("batch %d seq = %d, want %d", i, b.Seq, i+1)
		}
		if want := []Op{{From: uint32(b.Seq), To: uint32(b.Seq + 1)}}; !sameOps(b.Ops, want) {
			t.Fatalf("batch %d ops = %v, want %v", i, b.Ops, want)
		}
	}
}

// walCrashChild is the writer side of TestWALKillMidCommit: append
// fsynced one-op batches forever, printing "acked N" only after Append
// returns (i.e. after the fsync). It never exits on its own; the parent
// kills it.
func walCrashChild(path string) {
	l, _, err := Open(path, FsyncAlways)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	for seq := uint64(1); ; seq++ {
		if _, err := l.Append([]Op{{From: uint32(seq), To: uint32(seq + 1)}}); err != nil {
			fmt.Fprintln(os.Stderr, "child append:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "acked %d\n", seq)
		w.Flush()
		time.Sleep(time.Millisecond)
	}
}
