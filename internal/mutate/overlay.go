package mutate

// Overlay is the net difference between the live graph and the frozen
// graph the current index was built from: the edges added since the
// freeze and the edges removed from it. It is maintained as a persistent
// value — writers Clone then Apply then publish, readers use whatever
// snapshot they loaded — so query paths never lock.
//
// Both sets are *net*: re-adding a removed edge cancels the removal
// rather than recording both, and removing a never-present edge records
// nothing. That makes add/remove/add of the same edge (including
// self-loops and edges duplicated in the base graph, which the base
// stores deduplicated) converge to exactly one state per edge.
type Overlay struct {
	added   map[uint64]struct{}
	removed map[uint64]struct{}
	// addedSucc indexes added by source vertex for traversal.
	addedSucc map[uint32][]uint32
}

// NewOverlay returns an empty overlay.
func NewOverlay() *Overlay {
	return &Overlay{
		added:     make(map[uint64]struct{}),
		removed:   make(map[uint64]struct{}),
		addedSucc: make(map[uint32][]uint32),
	}
}

func edgeKey(from, to uint32) uint64 { return uint64(from)<<32 | uint64(to) }

// Clone returns an independent deep copy.
func (o *Overlay) Clone() *Overlay {
	c := &Overlay{
		added:     make(map[uint64]struct{}, len(o.added)),
		removed:   make(map[uint64]struct{}, len(o.removed)),
		addedSucc: make(map[uint32][]uint32, len(o.addedSucc)),
	}
	for k := range o.added {
		c.added[k] = struct{}{}
	}
	for k := range o.removed {
		c.removed[k] = struct{}{}
	}
	for u, succ := range o.addedSucc {
		c.addedSucc[u] = append([]uint32(nil), succ...)
	}
	return c
}

// Apply folds one op into the overlay. inBase reports whether the edge
// exists in the frozen base graph; it decides whether an add is a
// revert-of-remove, a no-op, or a genuine addition (and dually for
// removes), keeping both sets net.
func (o *Overlay) Apply(op Op, inBase func(from, to uint32) bool) {
	k := edgeKey(op.From, op.To)
	if op.Remove {
		if _, ok := o.added[k]; ok {
			o.unadd(k, op.From, op.To)
			return
		}
		if inBase(op.From, op.To) {
			o.removed[k] = struct{}{}
		}
		return
	}
	if _, ok := o.removed[k]; ok {
		delete(o.removed, k)
		return
	}
	if inBase(op.From, op.To) {
		return
	}
	if _, ok := o.added[k]; ok {
		return
	}
	o.added[k] = struct{}{}
	o.addedSucc[op.From] = append(o.addedSucc[op.From], op.To)
}

func (o *Overlay) unadd(k uint64, from, to uint32) {
	delete(o.added, k)
	succ := o.addedSucc[from]
	for i, v := range succ {
		if v == to {
			succ = append(succ[:i], succ[i+1:]...)
			break
		}
	}
	if len(succ) == 0 {
		delete(o.addedSucc, from)
	} else {
		o.addedSucc[from] = succ
	}
}

// Empty reports whether the overlay changes nothing.
func (o *Overlay) Empty() bool { return len(o.added) == 0 && len(o.removed) == 0 }

// AddedCount returns the number of net-added edges.
func (o *Overlay) AddedCount() int { return len(o.added) }

// RemovedCount returns the number of net-removed edges.
func (o *Overlay) RemovedCount() int { return len(o.removed) }

// Size returns the total number of overlaid edges.
func (o *Overlay) Size() int { return len(o.added) + len(o.removed) }

// HasAdded reports whether (from,to) is net-added.
func (o *Overlay) HasAdded(from, to uint32) bool {
	_, ok := o.added[edgeKey(from, to)]
	return ok
}

// HasRemoved reports whether (from,to) is net-removed.
func (o *Overlay) HasRemoved(from, to uint32) bool {
	_, ok := o.removed[edgeKey(from, to)]
	return ok
}

// AddedSucc returns the net-added successors of u. The slice is shared;
// callers must not mutate it.
func (o *Overlay) AddedSucc(u uint32) []uint32 { return o.addedSucc[u] }

// AddedEdges calls fn for every net-added edge.
func (o *Overlay) AddedEdges(fn func(from, to uint32)) {
	for k := range o.added {
		fn(uint32(k>>32), uint32(k))
	}
}

// RemovedEdges calls fn for every net-removed edge.
func (o *Overlay) RemovedEdges(fn func(from, to uint32)) {
	for k := range o.removed {
		fn(uint32(k>>32), uint32(k))
	}
}

// Rebase computes the overlay that carries cur's live graph forward over
// a new base. cur is the live overlay (over the old base g0); snap is
// the snapshot of cur that the reindexer folded into the new base g1.
// The result expresses the same live graph as cur, but relative to g1.
//
// It cannot be computed from cur alone: an op that arrived during the
// rebuild may have *reverted* a change that snap folded into g1 (remove
// e taken into the snapshot, then e re-added while rebuilding — e sits
// in neither of cur's net sets, yet g1 lacks it). So every edge touched
// by either overlay is re-derived from first principles: its live
// presence (cur's verdict, falling back to g0) against its presence in
// g1.
func Rebase(cur, snap *Overlay, g0Has, g1Has func(from, to uint32) bool) *Overlay {
	out := NewOverlay()
	seen := make(map[uint64]struct{}, cur.Size()+snap.Size())
	consider := func(k uint64) {
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		from, to := uint32(k>>32), uint32(k)
		var present bool
		switch {
		case cur.HasAdded(from, to):
			present = true
		case cur.HasRemoved(from, to):
			present = false
		default:
			present = g0Has(from, to)
		}
		switch {
		case present && !g1Has(from, to):
			out.added[k] = struct{}{}
			out.addedSucc[from] = append(out.addedSucc[from], to)
		case !present && g1Has(from, to):
			out.removed[k] = struct{}{}
		}
	}
	for k := range cur.added {
		consider(k)
	}
	for k := range cur.removed {
		consider(k)
	}
	for k := range snap.added {
		consider(k)
	}
	for k := range snap.removed {
		consider(k)
	}
	return out
}
