package mutate

import (
	"context"
	"sync"
	"time"
)

// Batcher implements group commit: callers submit small op slices and
// block; a single flusher goroutine coalesces everything queued within a
// size-or-deadline window into one batch, hands it to the commit
// function once, and then answers every waiting caller individually.
// This amortizes the per-commit cost (one WAL append + at most one
// fsync) across concurrent writers.
type Batcher struct {
	reqs   chan request
	stop   chan struct{}
	wg     sync.WaitGroup
	mu     sync.RWMutex // guards closed vs. in-flight Submit sends
	closed bool

	maxOps int
	delay  time.Duration
	commit func(ops []Op, sync bool) error
}

// request is one caller's submission. A request with no ops is a flush
// barrier: it forces the current window to commit immediately and is
// answered after that commit completes.
type request struct {
	ops  []Op
	resp chan error
}

const (
	defaultBatchOps   = 128
	defaultBatchDelay = 2 * time.Millisecond
)

// NewBatcher starts a batcher that flushes when maxOps ops have
// accumulated (<=0: 128) or delay has elapsed since the window opened
// (<=0: 2ms), whichever comes first. commit is called from a single
// goroutine, never concurrently; sync is true when the window contained
// a flush barrier and the commit must be forced durable regardless of
// the WAL's fsync policy.
func NewBatcher(maxOps int, delay time.Duration, commit func(ops []Op, sync bool) error) *Batcher {
	if maxOps <= 0 {
		maxOps = defaultBatchOps
	}
	if delay <= 0 {
		delay = defaultBatchDelay
	}
	b := &Batcher{
		reqs:   make(chan request, 64),
		stop:   make(chan struct{}),
		maxOps: maxOps,
		delay:  delay,
		commit: commit,
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// Submit queues ops for the next group commit and waits until that
// commit is durable (per the WAL's fsync policy) or ctx is done. A
// context abort abandons only this caller's wait: the batch itself still
// commits, so a caller that gave up may still find its ops applied —
// exactly the contract of any write that times out in flight.
//
// Submitting zero ops is a flush barrier: it forces any buffered window
// to commit now and returns once it has.
func (b *Batcher) Submit(ctx context.Context, ops []Op) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	req := request{ops: ops, resp: make(chan error, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return ErrClosed
	}
	select {
	case b.reqs <- req:
		b.mu.RUnlock()
	default:
		// Queue full: wait, but drop the read lock first so Close isn't
		// blocked behind a stalled queue.
		b.mu.RUnlock()
		select {
		case b.reqs <- req:
		case <-b.stop:
			return ErrClosed
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	select {
	case err := <-req.resp:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting submissions, commits anything still queued, and
// waits for the flusher to exit.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	b.wg.Wait()
}

func (b *Batcher) run() {
	defer b.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Wait for the first request of a window.
		var first request
		select {
		case first = <-b.reqs:
		case <-b.stop:
			b.drain()
			return
		}
		batch := []request{first}
		nops := len(first.ops)
		barrier := len(first.ops) == 0
		timer.Reset(b.delay)
		// Fill the window until size, deadline, a barrier, or shutdown.
		for nops < b.maxOps && !barrier {
			select {
			case req := <-b.reqs:
				batch = append(batch, req)
				nops += len(req.ops)
				if len(req.ops) == 0 {
					barrier = true
				}
			case <-timer.C:
				goto flush
			case <-b.stop:
				goto flush
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	flush:
		b.flush(batch, nops, barrier)
		select {
		case <-b.stop:
			b.drain()
			return
		default:
		}
	}
}

// flush commits one window and answers every caller in it.
func (b *Batcher) flush(batch []request, nops int, barrier bool) {
	ops := make([]Op, 0, nops)
	for _, req := range batch {
		ops = append(ops, req.ops...)
	}
	var err error
	if len(ops) > 0 || barrier {
		err = b.commit(ops, barrier)
	}
	for _, req := range batch {
		req.resp <- err
	}
}

// drain commits whatever is still queued at shutdown, so a caller that
// managed to enqueue before Close is answered rather than abandoned.
func (b *Batcher) drain() {
	for {
		var batch []request
		nops := 0
	gather:
		for {
			select {
			case req := <-b.reqs:
				batch = append(batch, req)
				nops += len(req.ops)
			default:
				break gather
			}
		}
		if len(batch) == 0 {
			return
		}
		b.flush(batch, nops, true)
	}
}
