package traversal

import (
	"math/bits"

	"repro/internal/graph"
	"repro/internal/scratch"
)

// This file implements the bit-parallel multi-source BFS kernel: one
// sweep over the CSR arrays advances up to 64 sources at once, each
// owning one bit of a per-vertex uint64 reach word. It is the
// word-parallel counterpart of the per-pair searches above — the
// constant-factor direction PReaCH-style pruned BFS and the FELINE/IP
// line identify as where traversal time goes once an index has pruned
// what it can — and it backs the index-free BatchReach path and the
// exact transitive closure (tc.NewClosureN).

// WordSources is the number of sources one kernel sweep advances: the
// width of the per-vertex frontier word.
const WordSources = 64

// MultiSourceReach computes the forward reachable set of up to
// WordSources sources in one shared sweep: on return words[v] has bit j
// set iff v is reachable from sources[j] (sources reach themselves).
// words must have length g.N() and be zeroed; callers running at steady
// state draw it from the scratch arena (T.Words) so the kernel allocates
// nothing beyond its pooled stacks.
//
// The kernel must not let the 64 bits trickle through the graph one at a
// time — a naive worklist does, re-expanding a vertex per arriving bit
// and degenerating to the cost of 64 separate BFSs. Instead one combined
// DFS over the subgraph reachable from any source records a post-order,
// and the words are then propagated in reverse post-order — a topological
// order whenever the reachable subgraph is acyclic — so each vertex
// forwards its *final* word in one visit. On cyclic graphs a reverse
// post-order pass can miss propagation along back edges, so passes repeat
// until a pass changes nothing: the classic round-robin dataflow
// iteration, converging in 1 + the depth of cyclic dependency chains
// (1 pass on DAGs, 2–3 on typical diluted cyclic graphs) rather than 64.
func MultiSourceReach(g *graph.Digraph, sources []graph.V, words []uint64) {
	if len(sources) > WordSources {
		panic("traversal: MultiSourceReach wants at most 64 sources")
	}
	n := g.N()
	sc := scratch.Get(n)
	defer scratch.Put(sc)
	visited := sc.Visited()
	onstack := sc.Visited2(n)
	stack := sc.Queue[:0]  // DFS stack of vertices
	child := sc.Aux[:0]    // per-frame next-successor index, parallel to stack
	order := sc.Queue2[:0] // post-order of the reachable subgraph
	cyclic := false
	for j, s := range sources {
		words[s] |= 1 << uint(j)
		if visited.Test(int(s)) {
			continue
		}
		visited.Set(int(s))
		onstack.Set(int(s))
		stack = append(stack, s)
		child = append(child, 0)
		for len(stack) > 0 {
			top := len(stack) - 1
			v := stack[top]
			succ := g.Succ(v)
			ci := int(child[top])
			for ci < len(succ) && visited.Test(int(succ[ci])) {
				// A back edge to a vertex still on the DFS stack is the
				// witness that the reachable subgraph has a cycle (and so
				// needs the fixpoint passes below).
				if !cyclic && onstack.Test(int(succ[ci])) {
					cyclic = true
				}
				ci++
			}
			if ci < len(succ) {
				w := succ[ci]
				child[top] = graph.V(ci + 1)
				visited.Set(int(w))
				onstack.Set(int(w))
				stack = append(stack, w)
				child = append(child, 0)
				continue
			}
			stack = stack[:top]
			child = child[:top]
			onstack.Clear(int(v))
			order = append(order, v)
		}
	}
	sc.Queue, sc.Aux, sc.Queue2 = stack, child, order
	for {
		changed := false
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			wv := words[v]
			for _, w := range g.Succ(v) {
				if words[w]|wv != words[w] {
					words[w] |= wv
					changed = true
				}
			}
		}
		// Acyclic reachable subgraph: reverse post-order is topological, so
		// the first pass is already the fixpoint — no verification needed.
		if !cyclic || !changed {
			return
		}
	}
}

// MultiSourceSweep is the DAG fast path of the kernel: it propagates the
// seeded words forward along edges in one pass over the given
// topological order (every vertex must appear before its successors).
// Callers seed words[s] |= 1<<j per source before the call; on return
// words[v] bit j is set iff some seeded vertex of bit j reaches v.
// Unlike MultiSourceReach it never revisits a vertex, so the cost is
// exactly one word-OR per edge whose tail carries any bit.
func MultiSourceSweep(g *graph.Digraph, order []graph.V, words []uint64) {
	for _, v := range order {
		wv := words[v]
		if wv == 0 {
			continue
		}
		for _, w := range g.Succ(v) {
			words[w] |= wv
		}
	}
}

// CountWords returns the total number of set bits across words — the
// number of (source, vertex) reachable pairs a kernel sweep certified;
// the closure builder and the E14 experiment report it.
func CountWords(words []uint64) int {
	c := 0
	for _, w := range words {
		c += bits.OnesCount64(w)
	}
	return c
}
