package traversal

import (
	"repro/internal/graph"
)

// WitnessPath returns a concrete s-t path (as a vertex sequence including
// both endpoints) when t is reachable from s, or nil otherwise. For s == t
// it returns the single-vertex path. BFS parents give a shortest witness.
func WitnessPath(g *graph.Digraph, s, t graph.V) []graph.V {
	if s == t {
		return []graph.V{s}
	}
	const none = ^graph.V(0)
	parent := make([]graph.V, g.N())
	for i := range parent {
		parent[i] = none
	}
	parent[s] = s
	queue := []graph.V{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Succ(v) {
			if parent[w] != none {
				continue
			}
			parent[w] = v
			if w == t {
				return unwind(parent, s, t)
			}
			queue = append(queue, w)
		}
	}
	return nil
}

func unwind(parent []graph.V, s, t graph.V) []graph.V {
	var rev []graph.V
	for v := t; ; v = parent[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ConstrainedWitness returns an s-t path satisfying the path constraint
// given as a DFA, as the sequence of traversed edges, or nil when no such
// path exists. The empty edge sequence is returned for s == t when the
// DFA accepts the empty word.
func ConstrainedWitness(g *graph.Digraph, s, t graph.V, dfa DFAIface) []graph.Edge {
	start := dfa.Start()
	if s == t && dfa.Accepting(start) {
		return []graph.Edge{}
	}
	type key struct {
		v graph.V
		q int
	}
	type from struct {
		prev key
		edge graph.Edge
		ok   bool
	}
	parent := make(map[key]from, 64)
	startKey := key{s, start}
	parent[startKey] = from{}
	queue := []key{startKey}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		succ := g.Succ(cur.v)
		labs := g.SuccLabels(cur.v)
		for i, w := range succ {
			nq := dfa.Step(cur.q, labs[i])
			if nq < 0 {
				continue
			}
			nk := key{w, nq}
			if _, seen := parent[nk]; seen {
				continue
			}
			e := graph.Edge{From: cur.v, To: w, Label: labs[i]}
			parent[nk] = from{prev: cur, edge: e, ok: true}
			if w == t && dfa.Accepting(nq) {
				// Unwind.
				var rev []graph.Edge
				for k := nk; ; {
					f := parent[k]
					if !f.ok {
						break
					}
					rev = append(rev, f.edge)
					k = f.prev
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, nk)
		}
	}
	return nil
}
