package traversal_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/regexpath"
	"repro/internal/traversal"
)

func TestWitnessPathValid(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 100, M: 300, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	found := 0
	for q := 0; q < 500; q++ {
		s := graph.V(rng.Intn(g.N()))
		tt := graph.V(rng.Intn(g.N()))
		p := traversal.WitnessPath(g, s, tt)
		want := traversal.BFS(g, s, tt)
		if (p != nil) != want {
			t.Fatalf("witness presence mismatch at (%d,%d)", s, tt)
		}
		if p == nil {
			continue
		}
		found++
		if p[0] != s || p[len(p)-1] != tt {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				t.Fatalf("witness uses non-edge %d->%d", p[i-1], p[i])
			}
		}
	}
	if found == 0 {
		t.Fatal("no positive witnesses exercised")
	}
}

func TestWitnessPathSelf(t *testing.T) {
	g := graph.Fig1Plain()
	p := traversal.WitnessPath(g, 3, 3)
	if len(p) != 1 || p[0] != 3 {
		t.Fatalf("self witness = %v", p)
	}
}

func TestConstrainedWitnessFig1(t *testing.T) {
	g := graph.Fig1Labeled()
	l, _ := g.VertexByName("L")
	b, _ := g.VertexByName("B")
	dfa, err := regexpath.Compile("(worksFor.friendOf)*", g)
	if err != nil {
		t.Fatal(err)
	}
	edges := traversal.ConstrainedWitness(g, l, b, dfa)
	if edges == nil {
		t.Fatal("no witness for the paper's §4.2 example")
	}
	// The path must be contiguous, start at L, end at B, and spell a word
	// of the language.
	if edges[0].From != l || edges[len(edges)-1].To != b {
		t.Fatalf("endpoints wrong: %v", edges)
	}
	var word []graph.Label
	for i, e := range edges {
		if i > 0 && edges[i-1].To != e.From {
			t.Fatalf("path not contiguous: %v", edges)
		}
		if !g.HasLabeledEdge(e.From, e.To, e.Label) {
			t.Fatalf("edge %v not in graph", e)
		}
		word = append(word, e.Label)
	}
	if !dfa.Accepts(word) {
		t.Fatalf("witness word %v not in L(α)", word)
	}
	// The paper's MR: the witness spells (worksFor, friendOf) repeats.
	if len(word)%2 != 0 || word[0] != 2 || word[1] != 0 {
		t.Fatalf("unexpected word %v", word)
	}
}

func TestConstrainedWitnessNegative(t *testing.T) {
	g := graph.Fig1Labeled()
	a, _ := g.VertexByName("A")
	gg, _ := g.VertexByName("G")
	dfa, _ := regexpath.Compile("(friendOf|follows)*", g)
	if traversal.ConstrainedWitness(g, a, gg, dfa) != nil {
		t.Fatal("witness for an impossible constraint")
	}
	// s == t with star: empty word accepted, empty edge list returned.
	w := traversal.ConstrainedWitness(g, a, a, dfa)
	if w == nil || len(w) != 0 {
		t.Fatalf("self star witness = %v", w)
	}
	// s == t with plus: needs a cycle; Fig1 is a DAG.
	plus, _ := regexpath.Compile("(friendOf|follows)+", g)
	if traversal.ConstrainedWitness(g, a, a, plus) != nil {
		t.Fatal("plus self witness on a DAG")
	}
}

func TestConstrainedWitnessRandomized(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 60, M: 240, Seed: 3}), 4, 0, 4)
	dfa, err := regexpath.Compile("(l0|l2)*", g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 400; q++ {
		s := graph.V(rng.Intn(g.N()))
		tt := graph.V(rng.Intn(g.N()))
		want := traversal.ProductBFS(g, s, tt, dfa)
		edges := traversal.ConstrainedWitness(g, s, tt, dfa)
		if (edges != nil) != want {
			t.Fatalf("witness presence mismatch at (%d,%d): %v vs %v", s, tt, edges != nil, want)
		}
		var word []graph.Label
		for _, e := range edges {
			word = append(word, e.Label)
		}
		if edges != nil && !dfa.Accepts(word) {
			t.Fatalf("invalid witness word %v", word)
		}
	}
}
