//go:build race

package traversal_test

// Under the race detector sync.Pool deliberately drops a fraction of Puts
// (to flush out retain-after-Put bugs), so the steady-state zero-alloc
// guarantee does not hold there by construction (same flag as
// internal/scratch).
const raceEnabled = true
