package traversal_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/scratch"
	"repro/internal/traversal"
)

// topoOrder computes a topological order of a DAG by Kahn's algorithm
// (test-local; the library derives orders from the condensation instead).
func topoOrder(t *testing.T, g *graph.Digraph) []graph.V {
	t.Helper()
	indeg := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succ(graph.V(v)) {
			indeg[w]++
		}
	}
	var order []graph.V
	for v := 0; v < g.N(); v++ {
		if indeg[v] == 0 {
			order = append(order, graph.V(v))
		}
	}
	for i := 0; i < len(order); i++ {
		for _, w := range g.Succ(order[i]) {
			if indeg[w]--; indeg[w] == 0 {
				order = append(order, w)
			}
		}
	}
	if len(order) != g.N() {
		t.Fatal("graph is not a DAG")
	}
	return order
}

// TestMultiSourceReachMatchesBFS proves the bit-parallel kernel answers
// identically to per-pair BFS, on cyclic graphs and DAGs, for source
// blocks of every size up to the word width.
func TestMultiSourceReachMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := []*graph.Digraph{
		gen.ErdosRenyi(gen.Config{N: 120, M: 400, Seed: 1}), // cyclic
		gen.RandomDAG(gen.Config{N: 150, M: 450, Seed: 2}),
		gen.ScaleFree(100, 3, 3),
		graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 0}, {2, 3}}), // small cycle
	}
	for gi, g := range graphs {
		for _, k := range []int{1, 2, 63, 64} {
			sources := make([]graph.V, k)
			for j := range sources {
				sources[j] = graph.V(rng.Intn(g.N()))
			}
			words := make([]uint64, g.N())
			traversal.MultiSourceReach(g, sources, words)
			for j, s := range sources {
				for v := 0; v < g.N(); v++ {
					got := words[v]&(1<<uint(j)) != 0
					want := traversal.BFS(g, s, graph.V(v))
					if got != want {
						t.Fatalf("graph %d, %d sources: kernel(%d→%d)=%v, BFS=%v",
							gi, k, s, v, got, want)
					}
				}
			}
		}
	}
}

// TestMultiSourceSweepMatchesReach proves the DAG single-pass variant
// agrees with the worklist kernel (and hence BFS) given a topological
// order, including duplicate sources sharing a seed vertex.
func TestMultiSourceSweepMatchesReach(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 200, M: 700, Seed: 5})
	ord := topoOrder(t, g)
	rng := rand.New(rand.NewSource(6))
	sources := make([]graph.V, 64)
	for j := range sources {
		sources[j] = graph.V(rng.Intn(g.N()))
	}
	sources[7] = sources[3] // duplicate source: two bits, one seed vertex
	sweep := make([]uint64, g.N())
	for j, s := range sources {
		sweep[s] |= 1 << uint(j)
	}
	traversal.MultiSourceSweep(g, ord, sweep)
	worklist := make([]uint64, g.N())
	traversal.MultiSourceReach(g, sources, worklist)
	for v := range sweep {
		if sweep[v] != worklist[v] {
			t.Fatalf("sweep and worklist kernels disagree at vertex %d: %#x vs %#x",
				v, sweep[v], worklist[v])
		}
	}
	if traversal.CountWords(sweep) != traversal.CountWords(worklist) {
		t.Fatal("CountWords disagrees between kernels")
	}
}

// TestMultiSourceReachDeterministic runs the kernel twice over the same
// inputs and demands bit-identical words: the worklist order is a pure
// function of the graph and sources.
func TestMultiSourceReachDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 300, M: 1200, Seed: 9})
	sources := make([]graph.V, 64)
	rng := rand.New(rand.NewSource(10))
	for j := range sources {
		sources[j] = graph.V(rng.Intn(g.N()))
	}
	a := make([]uint64, g.N())
	b := make([]uint64, g.N())
	traversal.MultiSourceReach(g, sources, a)
	traversal.MultiSourceReach(g, sources, b)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("non-deterministic words at vertex %d", v)
		}
	}
}

func TestMultiSourceReachTooManySources(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 70, M: 100, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for > 64 sources")
		}
	}()
	traversal.MultiSourceReach(g, make([]graph.V, 65), make([]uint64, g.N()))
}

// TestPooledTraversalsAllocFree pins the scratch-pool contract for the
// query-path entry points: at steady state (pool warmed) they perform zero
// heap allocations.
func TestPooledTraversalsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under -race; zero-alloc cannot hold")
	}
	g := gen.ErdosRenyi(gen.Config{N: 2000, M: 8000, Seed: 3})
	sources := []graph.V{1, 2, 3, 4, 5, 6, 7, 8}
	words := make([]uint64, g.N())
	// Warm the pool before measuring.
	traversal.CountVisitedBFS(g, 0)
	traversal.MultiSourceReach(g, sources, words)
	checks := map[string]func(){
		"CountVisitedBFS": func() { traversal.CountVisitedBFS(g, 0) },
		"ReachableFromInto": func() {
			sc := scratch.Get(g.N())
			traversal.ReachableFromInto(g, 0, sc.Visited())
			scratch.Put(sc)
		},
		"ReachingInto": func() {
			sc := scratch.Get(g.N())
			traversal.ReachingInto(g, 0, sc.Visited())
			scratch.Put(sc)
		},
		"MultiSourceReach": func() {
			clear(words)
			traversal.MultiSourceReach(g, sources, words)
		},
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op at steady state, want 0", name, allocs)
		}
	}
}

// BenchmarkPooledReachable reports the allocation profile of the pooled
// full-reachability traversals (0 allocs/op once the pool is warm).
func BenchmarkPooledReachable(b *testing.B) {
	g := gen.ErdosRenyi(gen.Config{N: 20000, M: 80000, Seed: 3})
	b.Run("ReachableFromInto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := scratch.Get(g.N())
			traversal.ReachableFromInto(g, graph.V(i%g.N()), sc.Visited())
			scratch.Put(sc)
		}
	})
	b.Run("ReachableFromRetained", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			traversal.ReachableFrom(g, graph.V(i%g.N()))
		}
	})
}

// BenchmarkMultiSourceReach compares one 64-source kernel sweep against 64
// sequential BFS traversals over the same sources — the work sharing the
// batch path builds on. The win scales with how much the per-source
// reachable sets overlap (their summed size over the union's): at 10
// edges/vertex the ratio is ~17 and the kernel wins ~6×; on very sparse
// DAGs (4 edges/vertex, ratio ~2) the shared sweep has nothing to share
// and roughly breaks even.
func BenchmarkMultiSourceReach(b *testing.B) {
	g := gen.RandomDAG(gen.Config{N: 50000, M: 500000, Seed: 8})
	rng := rand.New(rand.NewSource(12))
	sources := make([]graph.V, 64)
	for j := range sources {
		sources[j] = graph.V(rng.Intn(g.N()))
	}
	b.Run("kernel64", func(b *testing.B) {
		b.ReportAllocs()
		words := make([]uint64, g.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(words)
			traversal.MultiSourceReach(g, sources, words)
		}
	})
	b.Run("sequential64", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc := scratch.Get(g.N())
			for _, s := range sources {
				sc.Visited().EnsureClear(g.N())
				traversal.ReachableFromInto(g, s, sc.Visited())
			}
			scratch.Put(sc)
		}
	})
}
