// Package traversal implements the online query-processing baselines of the
// paper's §2.3: breadth-first search, depth-first search, bidirectional BFS
// for plain reachability, label-constrained BFS for alternation queries,
// and product-automaton BFS for general regular path constraints. Every
// index in this repository is benchmarked against these and the partial
// indexes fall back to (pruned versions of) them.
package traversal

import (
	"repro/internal/bitset"
	"repro/internal/graph"
)

// BFS answers Qr(s, t) by forward breadth-first search.
func BFS(g *graph.Digraph, s, t graph.V) bool {
	if s == t {
		return true
	}
	visited := bitset.New(g.N())
	visited.Set(int(s))
	queue := []graph.V{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Succ(v) {
			if w == t {
				return true
			}
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				queue = append(queue, w)
			}
		}
	}
	return false
}

// DFS answers Qr(s, t) by iterative forward depth-first search.
func DFS(g *graph.Digraph, s, t graph.V) bool {
	if s == t {
		return true
	}
	visited := bitset.New(g.N())
	visited.Set(int(s))
	stack := []graph.V{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succ(v) {
			if w == t {
				return true
			}
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				stack = append(stack, w)
			}
		}
	}
	return false
}

// BiBFS answers Qr(s, t) by bidirectional breadth-first search, expanding
// the smaller frontier first (the paper's BiBFS baseline).
func BiBFS(g *graph.Digraph, s, t graph.V) bool {
	if s == t {
		return true
	}
	n := g.N()
	fvis, bvis := bitset.New(n), bitset.New(n)
	fvis.Set(int(s))
	bvis.Set(int(t))
	ffront := []graph.V{s}
	bfront := []graph.V{t}
	for len(ffront) > 0 && len(bfront) > 0 {
		if len(ffront) <= len(bfront) {
			var next []graph.V
			for _, v := range ffront {
				for _, w := range g.Succ(v) {
					if bvis.Test(int(w)) {
						return true
					}
					if !fvis.Test(int(w)) {
						fvis.Set(int(w))
						next = append(next, w)
					}
				}
			}
			ffront = next
		} else {
			var next []graph.V
			for _, v := range bfront {
				for _, w := range g.Pred(v) {
					if fvis.Test(int(w)) {
						return true
					}
					if !bvis.Test(int(w)) {
						bvis.Set(int(w))
						next = append(next, w)
					}
				}
			}
			bfront = next
		}
	}
	return false
}

// ReachableFrom returns the set of vertices reachable from s (including s).
func ReachableFrom(g *graph.Digraph, s graph.V) *bitset.Set {
	visited := bitset.New(g.N())
	visited.Set(int(s))
	stack := []graph.V{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succ(v) {
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				stack = append(stack, w)
			}
		}
	}
	return visited
}

// Reaching returns the set of vertices that can reach t (including t).
func Reaching(g *graph.Digraph, t graph.V) *bitset.Set {
	visited := bitset.New(g.N())
	visited.Set(int(t))
	stack := []graph.V{t}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Pred(v) {
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				stack = append(stack, w)
			}
		}
	}
	return visited
}

// LabelConstrainedBFS answers the alternation (LCR) query Qr(s, t, A*) where
// the allowed label set is given as a bitmask: the traversal may only use
// edges whose label is in the mask. This is the online baseline for §4.1.
func LabelConstrainedBFS(g *graph.Digraph, s, t graph.V, allowed uint64) bool {
	if s == t {
		return true
	}
	visited := bitset.New(g.N())
	visited.Set(int(s))
	queue := []graph.V{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		succ := g.Succ(v)
		labs := g.SuccLabels(v)
		for i, w := range succ {
			if allowed&(1<<uint(labs[i])) == 0 {
				continue
			}
			if w == t {
				return true
			}
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				queue = append(queue, w)
			}
		}
	}
	return false
}

// DFAIface is the minimal deterministic-automaton interface the product
// search needs; satisfied by regexpath.DFA without importing it here.
type DFAIface interface {
	Start() int
	Step(state int, l graph.Label) int // -1 = dead
	Accepting(state int) bool
	NumStates() int
}

// ProductBFS answers the general path-constrained query Qr(s, t, α) by BFS
// over the product of g and the DFA of α (the "guided graph traversal" of
// §2.3). A query holds iff some s-t path spells a word of L(α).
func ProductBFS(g *graph.Digraph, s, t graph.V, dfa DFAIface) bool {
	start := dfa.Start()
	if s == t && dfa.Accepting(start) {
		return true
	}
	ns := dfa.NumStates()
	visited := bitset.New(g.N() * ns)
	id := func(v graph.V, q int) int { return int(v)*ns + q }
	visited.Set(id(s, start))
	type state struct {
		v graph.V
		q int
	}
	queue := []state{{s, start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		succ := g.Succ(cur.v)
		labs := g.SuccLabels(cur.v)
		for i, w := range succ {
			nq := dfa.Step(cur.q, labs[i])
			if nq < 0 {
				continue
			}
			if w == t && dfa.Accepting(nq) {
				return true
			}
			if !visited.Test(id(w, nq)) {
				visited.Set(id(w, nq))
				queue = append(queue, state{w, nq})
			}
		}
	}
	return false
}

// CountVisitedBFS runs a full BFS from s and returns how many vertices were
// visited; used by the benchmark harness to report traversal work.
func CountVisitedBFS(g *graph.Digraph, s graph.V) int {
	return ReachableFrom(g, s).Count()
}
