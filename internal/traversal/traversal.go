// Package traversal implements the online query-processing baselines of the
// paper's §2.3: breadth-first search, depth-first search, bidirectional BFS
// for plain reachability, label-constrained BFS for alternation queries,
// and product-automaton BFS for general regular path constraints. Every
// index in this repository is benchmarked against these and the partial
// indexes fall back to (pruned versions of) them.
//
// The searches draw their visited bitsets and frontier queues from the
// shared scratch pool (internal/scratch), so a steady-state query performs
// no heap allocation — see BenchmarkPooledBFS.
package traversal

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/scratch"
)

// BFS answers Qr(s, t) by forward breadth-first search.
func BFS(g *graph.Digraph, s, t graph.V) bool {
	if s == t {
		return true
	}
	sc := scratch.Get(g.N())
	defer scratch.Put(sc)
	visited := sc.Visited()
	visited.Set(int(s))
	sc.Queue = append(sc.Queue, s)
	for qi := 0; qi < len(sc.Queue); qi++ {
		v := sc.Queue[qi]
		for _, w := range g.Succ(v) {
			if w == t {
				return true
			}
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				sc.Queue = append(sc.Queue, w)
			}
		}
	}
	return false
}

// DFS answers Qr(s, t) by iterative forward depth-first search.
func DFS(g *graph.Digraph, s, t graph.V) bool {
	if s == t {
		return true
	}
	sc := scratch.Get(g.N())
	defer scratch.Put(sc)
	visited := sc.Visited()
	visited.Set(int(s))
	sc.Queue = append(sc.Queue, s)
	for len(sc.Queue) > 0 {
		v := sc.Queue[len(sc.Queue)-1]
		sc.Queue = sc.Queue[:len(sc.Queue)-1]
		for _, w := range g.Succ(v) {
			if w == t {
				return true
			}
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				sc.Queue = append(sc.Queue, w)
			}
		}
	}
	return false
}

// BiBFS answers Qr(s, t) by bidirectional breadth-first search, expanding
// the smaller frontier first (the paper's BiBFS baseline). The two
// frontiers and the next-level build buffer rotate through the scratch
// arena's three queue slots.
func BiBFS(g *graph.Digraph, s, t graph.V) bool {
	if s == t {
		return true
	}
	n := g.N()
	sc := scratch.Get(n)
	defer scratch.Put(sc)
	fvis, bvis := sc.Visited(), sc.Visited2(n)
	fvis.Set(int(s))
	bvis.Set(int(t))
	sc.Queue = append(sc.Queue, s)   // forward frontier
	sc.Queue2 = append(sc.Queue2, t) // backward frontier
	for len(sc.Queue) > 0 && len(sc.Queue2) > 0 {
		sc.Aux = sc.Aux[:0]
		if len(sc.Queue) <= len(sc.Queue2) {
			for _, v := range sc.Queue {
				for _, w := range g.Succ(v) {
					if bvis.Test(int(w)) {
						return true
					}
					if !fvis.Test(int(w)) {
						fvis.Set(int(w))
						sc.Aux = append(sc.Aux, w)
					}
				}
			}
			sc.Queue, sc.Aux = sc.Aux, sc.Queue
		} else {
			for _, v := range sc.Queue2 {
				for _, w := range g.Pred(v) {
					if fvis.Test(int(w)) {
						return true
					}
					if !bvis.Test(int(w)) {
						bvis.Set(int(w))
						sc.Aux = append(sc.Aux, w)
					}
				}
			}
			sc.Queue2, sc.Aux = sc.Aux, sc.Queue2
		}
	}
	return false
}

// ReachableFrom returns the set of vertices reachable from s (including s).
// The returned set is freshly allocated because callers (the O'Reach index)
// retain it; query paths that only inspect the set transiently should use
// ReachableFromInto with a pooled set instead.
func ReachableFrom(g *graph.Digraph, s graph.V) *bitset.Set {
	return ReachableFromInto(g, s, bitset.New(g.N()))
}

// ReachableFromInto computes the forward reachable set of s into visited,
// which must already be cleared with capacity for bits [0, g.N()) — pass a
// scratch arena's Visited() for an allocation-free traversal. It returns
// visited for convenience; the set belongs to the caller.
func ReachableFromInto(g *graph.Digraph, s graph.V, visited *bitset.Set) *bitset.Set {
	visited.Set(int(s))
	sc := scratch.Get(0)
	defer scratch.Put(sc)
	sc.Queue = append(sc.Queue, s)
	for len(sc.Queue) > 0 {
		v := sc.Queue[len(sc.Queue)-1]
		sc.Queue = sc.Queue[:len(sc.Queue)-1]
		for _, w := range g.Succ(v) {
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				sc.Queue = append(sc.Queue, w)
			}
		}
	}
	return visited
}

// Reaching returns the set of vertices that can reach t (including t). The
// returned set is freshly allocated (retained by the O'Reach index); use
// ReachingInto with a pooled set for transient lookups.
func Reaching(g *graph.Digraph, t graph.V) *bitset.Set {
	return ReachingInto(g, t, bitset.New(g.N()))
}

// ReachingInto computes the backward reachable set of t into visited, which
// must already be cleared with capacity for bits [0, g.N()). It returns
// visited for convenience; the set belongs to the caller.
func ReachingInto(g *graph.Digraph, t graph.V, visited *bitset.Set) *bitset.Set {
	visited.Set(int(t))
	sc := scratch.Get(0)
	defer scratch.Put(sc)
	sc.Queue = append(sc.Queue, t)
	for len(sc.Queue) > 0 {
		v := sc.Queue[len(sc.Queue)-1]
		sc.Queue = sc.Queue[:len(sc.Queue)-1]
		for _, w := range g.Pred(v) {
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				sc.Queue = append(sc.Queue, w)
			}
		}
	}
	return visited
}

// LabelConstrainedBFS answers the alternation (LCR) query Qr(s, t, A*) where
// the allowed label set is given as a bitmask: the traversal may only use
// edges whose label is in the mask. This is the online baseline for §4.1.
func LabelConstrainedBFS(g *graph.Digraph, s, t graph.V, allowed uint64) bool {
	if s == t {
		return true
	}
	sc := scratch.Get(g.N())
	defer scratch.Put(sc)
	visited := sc.Visited()
	visited.Set(int(s))
	sc.Queue = append(sc.Queue, s)
	for qi := 0; qi < len(sc.Queue); qi++ {
		v := sc.Queue[qi]
		succ := g.Succ(v)
		labs := g.SuccLabels(v)
		for i, w := range succ {
			if allowed&(1<<uint(labs[i])) == 0 {
				continue
			}
			if w == t {
				return true
			}
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				sc.Queue = append(sc.Queue, w)
			}
		}
	}
	return false
}

// DFAIface is the minimal deterministic-automaton interface the product
// search needs; satisfied by regexpath.DFA without importing it here.
type DFAIface interface {
	Start() int
	Step(state int, l graph.Label) int // -1 = dead
	Accepting(state int) bool
	NumStates() int
}

// ProductBFS answers the general path-constrained query Qr(s, t, α) by BFS
// over the product of g and the DFA of α (the "guided graph traversal" of
// §2.3). A query holds iff some s-t path spells a word of L(α). The
// product-space visited set is pooled; the (vertex, state) queue is local
// because its element type does not fit the shared arena.
func ProductBFS(g *graph.Digraph, s, t graph.V, dfa DFAIface) bool {
	start := dfa.Start()
	if s == t && dfa.Accepting(start) {
		return true
	}
	ns := dfa.NumStates()
	sc := scratch.Get(g.N() * ns)
	defer scratch.Put(sc)
	visited := sc.Visited()
	id := func(v graph.V, q int) int { return int(v)*ns + q }
	visited.Set(id(s, start))
	type state struct {
		v graph.V
		q int
	}
	queue := []state{{s, start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		succ := g.Succ(cur.v)
		labs := g.SuccLabels(cur.v)
		for i, w := range succ {
			nq := dfa.Step(cur.q, labs[i])
			if nq < 0 {
				continue
			}
			if w == t && dfa.Accepting(nq) {
				return true
			}
			if !visited.Test(id(w, nq)) {
				visited.Set(id(w, nq))
				queue = append(queue, state{w, nq})
			}
		}
	}
	return false
}

// productPollStride is how many product-state dequeues pass between
// context polls in ProductBFSCtx: coarse enough that the poll is free,
// fine enough that a canceled query over a huge product space (|V| × DFA
// states) stops within microseconds.
const productPollStride = 256

// ProductBFSCtx is ProductBFS under a context: the search polls
// ctx.Done() on a fixed stride of product-state expansions and aborts
// with ctx.Err() when the context is canceled or past its deadline. The
// product space is |V| × |DFA| — the one query route whose work is not
// bounded by an index — which is why the DB's query deadline threads to
// exactly this loop.
func ProductBFSCtx(ctx context.Context, g *graph.Digraph, s, t graph.V, dfa DFAIface) (bool, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if done == nil {
		return ProductBFS(g, s, t, dfa), nil
	}
	start := dfa.Start()
	if s == t && dfa.Accepting(start) {
		return true, nil
	}
	ns := dfa.NumStates()
	sc := scratch.Get(g.N() * ns)
	defer scratch.Put(sc)
	visited := sc.Visited()
	id := func(v graph.V, q int) int { return int(v)*ns + q }
	visited.Set(id(s, start))
	type state struct {
		v graph.V
		q int
	}
	queue := []state{{s, start}}
	for qi := 0; qi < len(queue); qi++ {
		if qi%productPollStride == 0 {
			select {
			case <-done:
				return false, ctx.Err()
			default:
			}
		}
		cur := queue[qi]
		succ := g.Succ(cur.v)
		labs := g.SuccLabels(cur.v)
		for i, w := range succ {
			nq := dfa.Step(cur.q, labs[i])
			if nq < 0 {
				continue
			}
			if w == t && dfa.Accepting(nq) {
				return true, nil
			}
			if !visited.Test(id(w, nq)) {
				visited.Set(id(w, nq))
				queue = append(queue, state{w, nq})
			}
		}
	}
	return false, nil
}

// CountVisitedBFS runs a full BFS from s and returns how many vertices were
// visited; used by the benchmark harness to report traversal work. The
// visited set is pooled (nothing is retained), so a steady-state call
// allocates nothing.
func CountVisitedBFS(g *graph.Digraph, s graph.V) int {
	sc := scratch.Get(g.N())
	defer scratch.Put(sc)
	return ReachableFromInto(g, s, sc.Visited()).Count()
}
