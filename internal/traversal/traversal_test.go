package traversal_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/traversal"
)

func lineGraph(n int) *graph.Digraph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	return b.MustFreeze()
}

func TestBFSDFSBiBFSAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 10; iter++ {
		g := gen.ErdosRenyi(gen.Config{N: 80, M: 200, Seed: int64(iter)})
		for q := 0; q < 200; q++ {
			s := graph.V(rng.Intn(g.N()))
			tt := graph.V(rng.Intn(g.N()))
			b, d, bi := traversal.BFS(g, s, tt), traversal.DFS(g, s, tt), traversal.BiBFS(g, s, tt)
			if b != d || d != bi {
				t.Fatalf("seed %d: disagreement on (%d,%d): BFS=%v DFS=%v BiBFS=%v",
					iter, s, tt, b, d, bi)
			}
		}
	}
}

func TestBFSLine(t *testing.T) {
	g := lineGraph(100)
	if !traversal.BFS(g, 0, 99) || traversal.BFS(g, 99, 0) {
		t.Fatal("line reachability wrong")
	}
	if !traversal.BFS(g, 42, 42) {
		t.Fatal("self reachability must be true")
	}
}

func TestReachableFromReaching(t *testing.T) {
	g := graph.FromEdges(5, [][2]graph.V{{0, 1}, {1, 2}, {3, 1}})
	out := traversal.ReachableFrom(g, 0)
	for _, v := range []int{0, 1, 2} {
		if !out.Test(v) {
			t.Errorf("traversal.ReachableFrom(0) missing %d", v)
		}
	}
	if out.Test(3) || out.Test(4) {
		t.Error("traversal.ReachableFrom(0) contains unreachable vertex")
	}
	in := traversal.Reaching(g, 2)
	for _, v := range []int{0, 1, 2, 3} {
		if !in.Test(v) {
			t.Errorf("traversal.Reaching(2) missing %d", v)
		}
	}
	if in.Test(4) {
		t.Error("traversal.Reaching(2) contains non-ancestor")
	}
}

func TestReachableMatchesBFS(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 120, M: 360, Seed: 4})
	for s := graph.V(0); int(s) < g.N(); s += 7 {
		set := traversal.ReachableFrom(g, s)
		for tt := graph.V(0); int(tt) < g.N(); tt += 5 {
			if set.Test(int(tt)) != traversal.BFS(g, s, tt) {
				t.Fatalf("traversal.ReachableFrom(%d) disagrees with BFS at %d", s, tt)
			}
		}
	}
}

func TestLabelConstrainedBFSFig1(t *testing.T) {
	g := graph.Fig1Labeled()
	id := func(name string) graph.V {
		for v := 0; v < g.N(); v++ {
			if g.VertexName(graph.V(v)) == name {
				return graph.V(v)
			}
		}
		t.Fatalf("vertex %q not found", name)
		return 0
	}
	friendOf, follows, worksFor := uint64(1)<<0, uint64(1)<<1, uint64(1)<<2
	// §2.2: Qr(A, G, (friendOf ∪ follows)*) = false.
	if traversal.LabelConstrainedBFS(g, id("A"), id("G"), friendOf|follows) {
		t.Error("Qr(A,G,(friendOf|follows)*) should be false")
	}
	// With worksFor allowed it becomes true.
	if !traversal.LabelConstrainedBFS(g, id("A"), id("G"), friendOf|follows|worksFor) {
		t.Error("Qr(A,G,all) should be true")
	}
	// L reaches M with worksFor alone (path p1).
	if !traversal.LabelConstrainedBFS(g, id("L"), id("M"), worksFor) {
		t.Error("Qr(L,M,worksFor*) should be true")
	}
	// A reaches L with follows alone.
	if !traversal.LabelConstrainedBFS(g, id("A"), id("L"), follows) {
		t.Error("Qr(A,L,follows*) should be true")
	}
	// A cannot reach M without follows (all A->M paths start follows(A,L)).
	if traversal.LabelConstrainedBFS(g, id("A"), id("M"), friendOf|worksFor) {
		t.Error("Qr(A,M,(friendOf|worksFor)*) should be false")
	}
}

type cyclicDFA struct {
	seq []graph.Label
}

func (d *cyclicDFA) Start() int     { return 0 }
func (d *cyclicDFA) NumStates() int { return len(d.seq) }
func (d *cyclicDFA) Accepting(q int) bool {
	return q == 0
}
func (d *cyclicDFA) Step(q int, l graph.Label) int {
	if d.seq[q] == l {
		return (q + 1) % len(d.seq)
	}
	return -1
}

func TestProductBFSFig1(t *testing.T) {
	g := graph.Fig1Labeled()
	id := func(name string) graph.V {
		for v := 0; v < g.N(); v++ {
			if g.VertexName(graph.V(v)) == name {
				return graph.V(v)
			}
		}
		t.Fatalf("vertex %q not found", name)
		return 0
	}
	worksFor := graph.Label(2)
	friendOf := graph.Label(0)
	// §4.2: Qr(L, B, (worksFor·friendOf)*) = true.
	dfa := &cyclicDFA{seq: []graph.Label{worksFor, friendOf}}
	if !traversal.ProductBFS(g, id("L"), id("B"), dfa) {
		t.Error("Qr(L,B,(worksFor.friendOf)*) should be true")
	}
	// Qr(A, B, (worksFor·friendOf)*) — A's first edges are friendOf/follows,
	// so no path starts with worksFor... except via L: A-follows-L is not
	// worksFor, so false.
	if traversal.ProductBFS(g, id("A"), id("B"), dfa) {
		t.Error("Qr(A,B,(worksFor.friendOf)*) should be false")
	}
}

func TestProductBFSEmptyWordSelfQuery(t *testing.T) {
	g := graph.Fig1Labeled()
	dfa := &cyclicDFA{seq: []graph.Label{0}}
	// Accepting start state means s==t holds.
	if !traversal.ProductBFS(g, 3, 3, dfa) {
		t.Error("s==t with accepting start should be true")
	}
}

func TestCountVisitedBFS(t *testing.T) {
	g := lineGraph(10)
	if got := traversal.CountVisitedBFS(g, 0); got != 10 {
		t.Fatalf("CountVisitedBFS = %d, want 10", got)
	}
	if got := traversal.CountVisitedBFS(g, 9); got != 1 {
		t.Fatalf("traversal.CountVisitedBFS(sink) = %d, want 1", got)
	}
}
