//go:build !race

package traversal_test

const raceEnabled = false
