package sspi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestSurplusListsOnlyNonTree(t *testing.T) {
	g := gen.TreePlus(100, 0, 3)
	ix := New(g)
	for v := 0; v < g.N(); v++ {
		if len(ix.surplus[v]) != 0 {
			t.Fatalf("pure tree has surplus predecessors at %d", v)
		}
	}
	if ix.Name() != "Tree+SSPI" {
		t.Error("name")
	}
}

func TestBackwardClimb(t *testing.T) {
	// s's subtree does not contain t, but a non-tree edge from inside
	// s's subtree reaches t's ancestor chain.
	//   tree: 0->1, 0->2, 2->3; non-tree: 1->3 handled... craft:
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(2, 3) // 3 reached first as root? ids: roots 0 and 3.
	g := b.MustFreeze()
	ix := New(g)
	if !ix.Reach(0, 4) {
		t.Error("0 must reach 4 through the non-tree hop")
	}
	if ix.Reach(4, 0) || ix.Reach(3, 2) {
		t.Error("false positive")
	}
}
