// Package sspi implements the Tree+SSPI scheme of Chen, Gupta and Kurul
// [9] (§3.1): spanning-tree interval labeling plus a surrogate &
// surplus-predecessor index (the per-vertex list of non-tree in-edges),
// answering queries by a backward climb that is pruned by the tree
// intervals. It is a partial index: positive answers come from interval
// lookups, negative answers require exhausting the predecessor closure.
//
// Query evaluation uses the suffix decomposition of any s-t path: the
// maximal trailing run of tree edges descends from some vertex w with
// t ∈ subtree(w); the edge entering w (if any) is a non-tree edge (u, w),
// and s must reach u. So a backward search from t through tree parents and
// non-tree predecessors, testing subtree(s) membership at every step, is
// exact.
package sspi

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/scratch"
)

// Index is the Tree+SSPI partial index over a DAG.
type Index struct {
	g  *graph.Digraph
	po *order.PostOrder
	// surplus[v] = non-tree predecessors of v (the SSPI).
	surplus [][]graph.V
	stats   core.Stats
}

// New builds Tree+SSPI over a DAG.
func New(dag *graph.Digraph) *Index {
	start := time.Now()
	n := dag.N()
	po := order.DFSForest(dag, order.Sources(dag), nil)
	ix := &Index{g: dag, po: po, surplus: make([][]graph.V, n)}
	entries := n
	dag.Edges(func(e graph.Edge) bool {
		if po.Parent[e.To] != e.From {
			ix.surplus[e.To] = append(ix.surplus[e.To], e.From)
			entries++
		}
		return true
	})
	ix.stats = core.Stats{
		Entries:   entries,
		Bytes:     entries * 8,
		BuildTime: time.Since(start),
	}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "Tree+SSPI" }

// TryReach implements core.Partial: interval containment is a definite
// positive; everything else is undecided (SSPI has no negative filter).
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t || ix.po.Contains(s, t) {
		return true, true
	}
	return false, false
}

// Reach answers Qr(s, t) by the backward predecessor-closure climb. The
// visited set and climb stack come from the pooled scratch arena.
func (ix *Index) Reach(s, t graph.V) bool {
	if s == t || ix.po.Contains(s, t) {
		return true
	}
	sc := scratch.Get(ix.g.N())
	defer scratch.Put(sc)
	visited := sc.Visited()
	visited.Set(int(t))
	sc.Queue = append(sc.Queue, t)
	for len(sc.Queue) > 0 {
		x := sc.Queue[len(sc.Queue)-1]
		sc.Queue = sc.Queue[:len(sc.Queue)-1]
		// Climb to the tree parent: s could be an ancestor owning x's
		// trailing tree run (already covered by the initial Contains), but
		// intermediate ancestors expose more surplus predecessors.
		if p := ix.po.Parent[x]; p != x && !visited.Test(int(p)) {
			visited.Set(int(p))
			if ix.po.Contains(s, p) {
				return true
			}
			sc.Queue = append(sc.Queue, p)
		}
		for _, u := range ix.surplus[x] {
			if visited.Test(int(u)) {
				continue
			}
			visited.Set(int(u))
			if u == s || ix.po.Contains(s, u) {
				return true
			}
			sc.Queue = append(sc.Queue, u)
		}
	}
	return false
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }
