// Package tol implements TOL [55] (§3.2): the total-order framework for
// pruned 2-hop labeling, with support for dynamic graphs.
//
// Construction is the generic total-order pruned labeling (the same
// algorithm instantiated by TFL/DL/PLL), default order in-degree ×
// out-degree as in the TOL paper. Updates:
//
//   - InsertEdge runs the incremental label-repair of the total-order
//     framework: every hub that reaches u resumes its forward pruned BFS
//     through the new edge from v, and every hub reached from v resumes
//     its backward BFS from u. This restores the canonical-cover invariant
//     (the highest-priority vertex on any path between a pair labels both
//     endpoints) without touching unaffected labels.
//   - DeleteEdge rebuilds the labeling. The TOL paper repairs deletions
//     incrementally by exploiting the total order; that machinery is out
//     of scope here (see DESIGN.md), and a rebuild keeps the index exact
//     while still exercising the delete path of the E8 experiment.
//
// Storage: the bulk of the labeling is frozen in internal/labelstore flat
// CSR arrays (optionally varint-compressed) — queries merge contiguous
// memory. Insert repair thaws only the touched rows into a small
// copy-on-write overlay; a rebuild (or delete) folds everything back into
// a fresh frozen store, so steady-state reads stay flat no matter how
// many inserts have happened since construction.
package tol

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelstore"
)

// Options configures the index.
type Options struct {
	// Enc selects the frozen label encoding: labelstore.Raw (default)
	// keeps flat uint32 arrays, labelstore.Varint delta-compresses them.
	Enc labelstore.Encoding
	// Check is an optional cancellation checkpoint ticked once per BFS
	// dequeue of the initial build; nil runs unchecked. Incremental
	// updates run unchecked (they are bounded by the repair frontier).
	Check *core.Check
}

// Index is the TOL dynamic 2-hop index over a general digraph.
type Index struct {
	g      *core.DynGraph
	rank   []uint32
	byRank []graph.V // byRank[r] = vertex with rank r
	enc    labelstore.Encoding
	// in/out are the frozen label stores; inOv/outOv hold rows thawed by
	// insert repair, superseding the frozen row for that vertex.
	in, out     *labelstore.Store
	inOv, outOv map[graph.V][]uint32
	bin, bout   *labelstore.Builder // non-nil only during rebuild
	entries     int
	stamp       []uint64
	stampID     uint64
	stats       core.Stats
	chk         *core.Check // only set during the initial build
}

// New builds TOL over g using the in-degree × out-degree total order.
func New(g *graph.Digraph) *Index { return NewOptions(g, Options{}) }

// NewChecked is New under a cancellation checkpoint.
func NewChecked(g *graph.Digraph, chk *core.Check) *Index {
	return NewOptions(g, Options{Check: chk})
}

// NewOptions builds TOL with full configuration.
func NewOptions(g *graph.Digraph, opts Options) *Index {
	start := time.Now()
	n := g.N()
	ix := &Index{g: core.NewDynGraph(g), enc: opts.Enc, stamp: make([]uint64, n), chk: opts.Check}
	defer func() { ix.chk = nil }()
	key := func(v graph.V) int { return (g.InDegree(v) + 1) * (g.OutDegree(v) + 1) }
	vs := make([]graph.V, n)
	for i := range vs {
		vs[i] = graph.V(i)
	}
	sort.Slice(vs, func(i, j int) bool {
		ki, kj := key(vs[i]), key(vs[j])
		if ki != kj {
			return ki > kj
		}
		return vs[i] < vs[j]
	})
	ix.byRank = vs
	ix.rank = make([]uint32, n)
	for i, v := range vs {
		ix.rank[v] = uint32(i)
	}
	ix.rebuild()
	ix.stats.BuildTime = time.Since(start)
	return ix
}

// rebuild recomputes all labels by pruned BFS in rank order, emitting
// into pooled builder arenas and freezing flat at the end. Any thawed
// overlay rows are folded away.
func (ix *Index) rebuild() {
	n := ix.g.N()
	ix.in, ix.out = nil, nil
	ix.inOv, ix.outOv = nil, nil
	ix.bin = labelstore.NewBuilder(n)
	ix.bout = labelstore.NewBuilder(n)
	for r := 0; r < n; r++ {
		v := ix.byRank[r]
		ix.prunedBFS(v, uint32(r), v, true)
		ix.prunedBFS(v, uint32(r), v, false)
	}
	ix.in = ix.bin.Freeze(ix.enc)
	ix.out = ix.bout.Freeze(ix.enc)
	ix.bin.Release()
	ix.bout.Release()
	ix.bin, ix.bout = nil, nil
	ix.inOv = make(map[graph.V][]uint32)
	ix.outOv = make(map[graph.V][]uint32)
	ix.entries = ix.in.Entries() + ix.out.Entries()
	ix.refreshStats()
}

func (ix *Index) refreshStats() {
	ix.stats.Entries = ix.entries
	if ix.in == nil {
		return
	}
	overlay := 0
	for _, row := range ix.inOv {
		overlay += len(row) * 4
	}
	for _, row := range ix.outOv {
		overlay += len(row) * 4
	}
	fin, fout := ix.in.Footprint(), ix.out.Footprint()
	ix.stats.Bytes = fin.Total() + fout.Total() + len(ix.rank)*4 + len(ix.byRank)*4 + overlay
}

// Sizes implements core.Sized.
func (ix *Index) Sizes() core.SizeBreakdown {
	fin, fout := ix.in.Footprint(), ix.out.Footprint()
	aux := len(ix.rank)*4 + len(ix.byRank)*4
	for _, row := range ix.inOv {
		aux += len(row) * 4
	}
	for _, row := range ix.outOv {
		aux += len(row) * 4
	}
	return core.SizeBreakdown{
		Offsets: fin.Offsets + fout.Offsets,
		Labels:  fin.Labels + fout.Labels,
		Aux:     aux,
	}
}

// inRow returns Lin(u) as a sorted slice when one is materialized —
// builder row during rebuild, overlay row after repair, or a raw frozen
// row. A varint frozen row reports ok == false (iterate via inCursor).
func (ix *Index) inRow(u graph.V) ([]uint32, bool) {
	if ix.bin != nil {
		return ix.bin.Row(int(u)), true
	}
	if len(ix.inOv) != 0 {
		if row, ok := ix.inOv[u]; ok {
			return row, true
		}
	}
	return ix.in.Row(int(u))
}

func (ix *Index) outRow(u graph.V) ([]uint32, bool) {
	if ix.bout != nil {
		return ix.bout.Row(int(u)), true
	}
	if len(ix.outOv) != 0 {
		if row, ok := ix.outOv[u]; ok {
			return row, true
		}
	}
	return ix.out.Row(int(u))
}

func (ix *Index) inCursor(u graph.V) labelstore.Cursor {
	if row, ok := ix.inRow(u); ok {
		return labelstore.SliceCursor(row)
	}
	return ix.in.Cursor(int(u))
}

func (ix *Index) outCursor(u graph.V) labelstore.Cursor {
	if row, ok := ix.outRow(u); ok {
		return labelstore.SliceCursor(row)
	}
	return ix.out.Cursor(int(u))
}

func (ix *Index) inContains(u graph.V, r uint32) bool {
	if row, ok := ix.inRow(u); ok {
		return containsRank(row, r)
	}
	return ix.in.Contains(int(u), r)
}

func (ix *Index) outContains(u graph.V, r uint32) bool {
	if row, ok := ix.outRow(u); ok {
		return containsRank(row, r)
	}
	return ix.out.Contains(int(u), r)
}

// insertIn adds rank r to Lin(u): into the builder during rebuild, else
// by thawing u's row into the overlay (copy-on-write).
func (ix *Index) insertIn(u graph.V, r uint32) {
	ix.entries++
	if ix.bin != nil {
		ix.bin.InsertSorted(int(u), r)
		return
	}
	row, ok := ix.inOv[u]
	if !ok {
		row = ix.in.AppendRow(make([]uint32, 0, 8), int(u))
	}
	ix.inOv[u] = insertSorted(row, r)
}

func (ix *Index) insertOut(u graph.V, r uint32) {
	ix.entries++
	if ix.bout != nil {
		ix.bout.InsertSorted(int(u), r)
		return
	}
	row, ok := ix.outOv[u]
	if !ok {
		row = ix.out.AppendRow(make([]uint32, 0, 8), int(u))
	}
	ix.outOv[u] = insertSorted(row, r)
}

// prunedBFS extends hub h's label coverage starting at vertex from: in the
// forward direction it adds h to Lin(w) of every newly covered w; backward
// it adds h to Lout(w). Used both at build time (from == h) and for
// incremental insert repair (from == the new edge endpoint).
func (ix *Index) prunedBFS(h graph.V, r uint32, from graph.V, forward bool) {
	ix.stampID++
	id := ix.stampID
	queue := []graph.V{from}
	ix.stamp[from] = id
	for qi := 0; qi < len(queue); qi++ {
		ix.chk.Tick()
		u := queue[qi]
		if u != h {
			// Pruning is only sound on certificates from strictly
			// higher-priority hubs (rank < r) — the canonical-cover
			// induction of the total-order framework — or when h already
			// labels u (an earlier run of h's BFS handled this frontier).
			if forward {
				if ix.inContains(u, r) || ix.coveredBelow(h, u, r) {
					continue
				}
				ix.insertIn(u, r)
			} else {
				if ix.outContains(u, r) || ix.coveredBelow(u, h, r) {
					continue
				}
				ix.insertOut(u, r)
			}
		}
		var next []graph.V
		if forward {
			next = ix.g.Succ(u)
		} else {
			next = ix.g.Pred(u)
		}
		for _, w := range next {
			if ix.stamp[w] != id && ix.rank[w] > r {
				ix.stamp[w] = id
				queue = append(queue, w)
			}
		}
	}
}

func insertSorted(s []uint32, x uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func containsRank(s []uint32, r uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= r })
	return i < len(s) && s[i] == r
}

// coveredBelow reports whether labels certify s → t using only hubs of
// rank strictly below limit (including the s/t-endpoint-as-hub cases).
func (ix *Index) coveredBelow(s, t graph.V, limit uint32) bool {
	if s == t {
		return true
	}
	rs, rt := ix.rank[s], ix.rank[t]
	if rt < limit && ix.outContains(s, rt) {
		return true
	}
	if rs < limit && ix.inContains(t, rs) {
		return true
	}
	cs, ct := ix.outCursor(s), ix.inCursor(t)
	a, aok := cs.Next()
	b, bok := ct.Next()
	for aok && bok && a < limit && b < limit {
		switch {
		case a == b:
			return true
		case a < b:
			a, aok = cs.Next()
		default:
			b, bok = ct.Next()
		}
	}
	return false
}

// covered reports whether current labels certify s → t (the three query
// cases of §3.2). The steady-state path — raw frozen rows, no thawed
// overlay — merges contiguous slices; thawed or varint rows merge
// through cursors. Both are 0 allocs.
func (ix *Index) covered(s, t graph.V) bool {
	if s == t {
		return true
	}
	rs, rt := ix.rank[s], ix.rank[t]
	ls, lok := ix.outRow(s)
	lt, tok := ix.inRow(t)
	if lok && tok {
		return labelstore.CoverRows(ls, lt, rs, rt)
	}
	return labelstore.CoverCursors(ix.outCursor(s), ix.inCursor(t), rs, rt)
}

// Name implements core.Index.
func (ix *Index) Name() string { return "TOL" }

// Reach answers Qr(s, t) from labels alone (complete index).
func (ix *Index) Reach(s, t graph.V) bool { return ix.covered(s, t) }

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// InsertEdge adds (u, v) and repairs labels incrementally.
func (ix *Index) InsertEdge(u, v graph.V) error {
	if !ix.g.Insert(u, v) {
		return nil // already present
	}
	// Hubs that reach u extend forward through v; note u itself is a hub
	// for its own pairs.
	fwd := make([]uint32, 0, 8)
	fwd = append(fwd, ix.rank[u])
	fwd = ix.appendIn(fwd, u)
	for _, r := range fwd {
		ix.prunedBFS(ix.byRank[r], r, v, true)
	}
	// Hubs reached from v extend backward through u.
	bwd := make([]uint32, 0, 8)
	bwd = append(bwd, ix.rank[v])
	bwd = ix.appendOut(bwd, v)
	for _, r := range bwd {
		ix.prunedBFS(ix.byRank[r], r, u, false)
	}
	ix.refreshStats()
	return nil
}

// appendIn appends the current Lin(u) to dst (overlay or frozen row).
func (ix *Index) appendIn(dst []uint32, u graph.V) []uint32 {
	if row, ok := ix.inRow(u); ok {
		return append(dst, row...)
	}
	return ix.in.AppendRow(dst, int(u))
}

func (ix *Index) appendOut(dst []uint32, u graph.V) []uint32 {
	if row, ok := ix.outRow(u); ok {
		return append(dst, row...)
	}
	return ix.out.AppendRow(dst, int(u))
}

// DeleteEdge removes (u, v) and rebuilds the labeling (see package doc).
func (ix *Index) DeleteEdge(u, v graph.V) error {
	if !ix.g.Delete(u, v) {
		return nil
	}
	ix.rebuild()
	return nil
}
