// Package tol implements TOL [55] (§3.2): the total-order framework for
// pruned 2-hop labeling, with support for dynamic graphs.
//
// Construction is the generic total-order pruned labeling (the same
// algorithm instantiated by TFL/DL/PLL), default order in-degree ×
// out-degree as in the TOL paper. Updates:
//
//   - InsertEdge runs the incremental label-repair of the total-order
//     framework: every hub that reaches u resumes its forward pruned BFS
//     through the new edge from v, and every hub reached from v resumes
//     its backward BFS from u. This restores the canonical-cover invariant
//     (the highest-priority vertex on any path between a pair labels both
//     endpoints) without touching unaffected labels.
//   - DeleteEdge rebuilds the labeling. The TOL paper repairs deletions
//     incrementally by exploiting the total order; that machinery is out
//     of scope here (see DESIGN.md), and a rebuild keeps the index exact
//     while still exercising the delete path of the E8 experiment.
package tol

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Index is the TOL dynamic 2-hop index over a general digraph.
type Index struct {
	g       *core.DynGraph
	rank    []uint32
	byRank  []graph.V // byRank[r] = vertex with rank r
	in, out [][]uint32
	stamp   []uint64
	stampID uint64
	stats   core.Stats
	chk     *core.Check // only set during the initial build
}

// New builds TOL over g using the in-degree × out-degree total order.
func New(g *graph.Digraph) *Index { return NewChecked(g, nil) }

// NewChecked is New under a cancellation checkpoint: one tick per BFS
// dequeue of the rank-ordered labeling. Incremental updates after the
// build run unchecked (they are bounded by the repair frontier).
func NewChecked(g *graph.Digraph, chk *core.Check) *Index {
	start := time.Now()
	n := g.N()
	ix := &Index{g: core.NewDynGraph(g), stamp: make([]uint64, n), chk: chk}
	defer func() { ix.chk = nil }()
	key := func(v graph.V) int { return (g.InDegree(v) + 1) * (g.OutDegree(v) + 1) }
	vs := make([]graph.V, n)
	for i := range vs {
		vs[i] = graph.V(i)
	}
	sort.Slice(vs, func(i, j int) bool {
		ki, kj := key(vs[i]), key(vs[j])
		if ki != kj {
			return ki > kj
		}
		return vs[i] < vs[j]
	})
	ix.byRank = vs
	ix.rank = make([]uint32, n)
	for i, v := range vs {
		ix.rank[v] = uint32(i)
	}
	ix.rebuild()
	ix.stats.BuildTime = time.Since(start)
	return ix
}

// rebuild recomputes all labels by pruned BFS in rank order.
func (ix *Index) rebuild() {
	n := ix.g.N()
	ix.in = make([][]uint32, n)
	ix.out = make([][]uint32, n)
	for r := 0; r < n; r++ {
		v := ix.byRank[r]
		ix.prunedBFS(v, uint32(r), v, true)
		ix.prunedBFS(v, uint32(r), v, false)
	}
	ix.refreshStats()
}

func (ix *Index) refreshStats() {
	entries := 0
	for v := range ix.in {
		entries += len(ix.in[v]) + len(ix.out[v])
	}
	ix.stats.Entries = entries
	ix.stats.Bytes = entries*4 + len(ix.rank)*4
}

// prunedBFS extends hub h's label coverage starting at vertex from: in the
// forward direction it adds h to Lin(w) of every newly covered w; backward
// it adds h to Lout(w). Used both at build time (from == h) and for
// incremental insert repair (from == the new edge endpoint).
func (ix *Index) prunedBFS(h graph.V, r uint32, from graph.V, forward bool) {
	ix.stampID++
	id := ix.stampID
	queue := []graph.V{from}
	ix.stamp[from] = id
	for qi := 0; qi < len(queue); qi++ {
		ix.chk.Tick()
		u := queue[qi]
		if u != h {
			// Pruning is only sound on certificates from strictly
			// higher-priority hubs (rank < r) — the canonical-cover
			// induction of the total-order framework — or when h already
			// labels u (an earlier run of h's BFS handled this frontier).
			if forward {
				if containsRank(ix.in[u], r) || ix.coveredBelow(h, u, r) {
					continue
				}
				ix.in[u] = insertSorted(ix.in[u], r)
			} else {
				if containsRank(ix.out[u], r) || ix.coveredBelow(u, h, r) {
					continue
				}
				ix.out[u] = insertSorted(ix.out[u], r)
			}
		}
		var next []graph.V
		if forward {
			next = ix.g.Succ(u)
		} else {
			next = ix.g.Pred(u)
		}
		for _, w := range next {
			if ix.stamp[w] != id && ix.rank[w] > r {
				ix.stamp[w] = id
				queue = append(queue, w)
			}
		}
	}
}

func insertSorted(s []uint32, x uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func containsRank(s []uint32, r uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= r })
	return i < len(s) && s[i] == r
}

// coveredBelow reports whether labels certify s → t using only hubs of
// rank strictly below limit (including the s/t-endpoint-as-hub cases).
func (ix *Index) coveredBelow(s, t graph.V, limit uint32) bool {
	if s == t {
		return true
	}
	rs, rt := ix.rank[s], ix.rank[t]
	if rt < limit && containsRank(ix.out[s], rt) {
		return true
	}
	if rs < limit && containsRank(ix.in[t], rs) {
		return true
	}
	ls, lt := ix.out[s], ix.in[t]
	i, j := 0, 0
	for i < len(ls) && j < len(lt) && ls[i] < limit && lt[j] < limit {
		switch {
		case ls[i] == lt[j]:
			return true
		case ls[i] < lt[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// covered reports whether current labels certify s → t (the three query
// cases of §3.2).
func (ix *Index) covered(s, t graph.V) bool {
	if s == t {
		return true
	}
	ls, lt := ix.out[s], ix.in[t]
	rs, rt := ix.rank[s], ix.rank[t]
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i] == lt[j]:
			return true
		case ls[i] < lt[j]:
			if ls[i] == rt {
				return true
			}
			i++
		default:
			if lt[j] == rs {
				return true
			}
			j++
		}
	}
	for ; i < len(ls); i++ {
		if ls[i] == rt {
			return true
		}
	}
	for ; j < len(lt); j++ {
		if lt[j] == rs {
			return true
		}
	}
	return false
}

// Name implements core.Index.
func (ix *Index) Name() string { return "TOL" }

// Reach answers Qr(s, t) from labels alone (complete index).
func (ix *Index) Reach(s, t graph.V) bool { return ix.covered(s, t) }

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// InsertEdge adds (u, v) and repairs labels incrementally.
func (ix *Index) InsertEdge(u, v graph.V) error {
	if !ix.g.Insert(u, v) {
		return nil // already present
	}
	// Hubs that reach u extend forward through v; note u itself is a hub
	// for its own pairs.
	fwd := append([]uint32{ix.rank[u]}, ix.in[u]...)
	for _, r := range fwd {
		ix.prunedBFS(ix.byRank[r], r, v, true)
	}
	// Hubs reached from v extend backward through u.
	bwd := append([]uint32{ix.rank[v]}, ix.out[v]...)
	for _, r := range bwd {
		ix.prunedBFS(ix.byRank[r], r, u, false)
	}
	ix.refreshStats()
	return nil
}

// DeleteEdge removes (u, v) and rebuilds the labeling (see package doc).
func (ix *Index) DeleteEdge(u, v graph.V) error {
	if !ix.g.Delete(u, v) {
		return nil
	}
	ix.rebuild()
	return nil
}
