package tol

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckGeneralIndex(t, func(g *graph.Digraph) core.Index { return New(g) })
}

func TestDynamicScript(t *testing.T) {
	indextest.CheckDynamic(t, func(g *graph.Digraph) core.Dynamic { return New(g) },
		false /* general graphs */, 60, 40)
}

func TestInsertIncremental(t *testing.T) {
	// Insert edges one by one into an initially empty graph; the labels
	// must track the oracle the whole way.
	full := gen.ErdosRenyi(gen.Config{N: 40, M: 140, Seed: 20})
	empty := graph.FromEdges(full.N(), nil)
	ix := New(empty)
	b := graph.NewBuilder(full.N())
	full.Edges(func(e graph.Edge) bool {
		if err := ix.InsertEdge(e.From, e.To); err != nil {
			t.Fatalf("insert: %v", err)
		}
		b.AddEdge(e.From, e.To)
		return true
	})
	oracle := tc.NewClosure(b.MustFreeze())
	for s := graph.V(0); int(s) < full.N(); s++ {
		for tt := graph.V(0); int(tt) < full.N(); tt++ {
			if got, want := ix.Reach(s, tt), oracle.Reach(s, tt); got != want {
				t.Fatalf("after all inserts: Reach(%d,%d) = %v, want %v", s, tt, got, want)
			}
		}
	}
}

func TestInsertExistingEdgeNoop(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 30, M: 80, Seed: 21})
	ix := New(g)
	before := ix.Stats().Entries
	var e graph.Edge
	g.Edges(func(x graph.Edge) bool { e = x; return false })
	if err := ix.InsertEdge(e.From, e.To); err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Entries != before {
		t.Error("re-inserting an existing edge changed the labels")
	}
}

func TestDeleteMissingEdgeNoop(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}})
	ix := New(g)
	if err := ix.DeleteEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if !ix.Reach(0, 1) {
		t.Error("unrelated delete broke reachability")
	}
}

func TestDeleteBreaksPath(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}})
	ix := New(g)
	if !ix.Reach(0, 2) {
		t.Fatal("precondition")
	}
	if err := ix.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if ix.Reach(0, 2) || ix.Reach(1, 2) {
		t.Error("stale reachability after delete")
	}
	if !ix.Reach(0, 1) {
		t.Error("surviving edge lost")
	}
}

func TestName(t *testing.T) {
	if New(graph.FromEdges(1, nil)).Name() != "TOL" {
		t.Error("name")
	}
}
