// Package bitset provides dense bit sets used throughout the reachability
// indexes: visited sets for traversals, rows of transitive-closure matrices,
// and Bloom-filter backing storage.
//
// The zero value of Set is an empty set with zero capacity; it grows on
// demand when bits are set.
package bitset

import (
	"math/bits"
)

const wordBits = 64

// Set is a growable dense bit set over non-negative integers.
type Set struct {
	words []uint64
}

// New returns a set pre-sized to hold bits [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// grow ensures the set can hold bit i, reusing spare capacity (zeroing
// the newly exposed words) before falling back to reallocation.
func (s *Set) grow(i int) {
	w := i/wordBits + 1
	if w <= len(s.words) {
		return
	}
	if w <= cap(s.words) {
		old := len(s.words)
		s.words = s.words[:w]
		for j := old; j < w; j++ {
			s.words[j] = 0
		}
		return
	}
	nw := make([]uint64, w)
	copy(nw, s.words)
	s.words = nw
}

// EnsureClear makes s an empty set with capacity for bits [0, n),
// reusing the backing storage when it is large enough. This is the
// pooled-scratch fast path: after the first few queries warm a pool
// entry up to the graph size, EnsureClear is a pure memclr — no
// allocation (see internal/scratch).
func (s *Set) EnsureClear(n int) {
	w := (n + wordBits - 1) / wordBits
	if cap(s.words) < w {
		s.words = make([]uint64, w)
		return
	}
	s.words = s.words[:w]
	for i := range s.words {
		s.words[i] = 0
	}
}

// Set sets bit i to 1, growing the set if needed.
func (s *Set) Set(i int) {
	s.grow(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (s *Set) Clear(i int) {
	if i/wordBits < len(s.words) {
		s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<(uint(i)%wordBits)) != 0
}

// Reset clears all bits while keeping the capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or sets s to the union of s and t.
func (s *Set) Or(t *Set) {
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// AndNotEmpty reports whether t contains any bit not present in s,
// i.e. whether t is NOT a subset of s.
func (s *Set) AndNotEmpty(t *Set) bool {
	for i, w := range t.words {
		var sw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if w&^sw != 0 {
			return true
		}
	}
	return false
}

// Contains reports whether t is a subset of s.
func (s *Set) Contains(t *Set) bool { return !s.AndNotEmpty(t) }

// Intersects reports whether s and t share at least one bit.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// ForEach calls f for each set bit in ascending order. If f returns false
// iteration stops early.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Words exposes the backing words (read-only by convention); used by
// size accounting.
func (s *Set) Words() []uint64 { return s.words }

// Bytes returns the memory footprint of the backing storage in bytes.
func (s *Set) Bytes() int { return len(s.words) * 8 }

// Matrix is a fixed-shape bit matrix with n rows and m columns, stored
// row-major in a single allocation. It backs exact transitive closures.
type Matrix struct {
	n, m     int
	rowWords int
	words    []uint64
}

// NewMatrix returns an n x m bit matrix with all bits zero.
func NewMatrix(n, m int) *Matrix {
	rw := (m + wordBits - 1) / wordBits
	return &Matrix{n: n, m: m, rowWords: rw, words: make([]uint64, n*rw)}
}

// Rows returns the number of rows n.
func (mt *Matrix) Rows() int { return mt.n }

// Cols returns the number of columns m.
func (mt *Matrix) Cols() int { return mt.m }

// Set sets bit (i, j).
func (mt *Matrix) Set(i, j int) {
	mt.words[i*mt.rowWords+j/wordBits] |= 1 << (uint(j) % wordBits)
}

// Test reports whether bit (i, j) is set.
func (mt *Matrix) Test(i, j int) bool {
	return mt.words[i*mt.rowWords+j/wordBits]&(1<<(uint(j)%wordBits)) != 0
}

// OrRow ors row src into row dst (dst |= src).
func (mt *Matrix) OrRow(dst, src int) {
	d := mt.words[dst*mt.rowWords : (dst+1)*mt.rowWords]
	s := mt.words[src*mt.rowWords : (src+1)*mt.rowWords]
	for i := range d {
		d[i] |= s[i]
	}
}

// RowCount returns the number of set bits in row i.
func (mt *Matrix) RowCount(i int) int {
	c := 0
	for _, w := range mt.words[i*mt.rowWords : (i+1)*mt.rowWords] {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountAll returns the total number of set bits in the matrix.
func (mt *Matrix) CountAll() int {
	c := 0
	for _, w := range mt.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Bytes returns the memory footprint of the backing storage in bytes.
func (mt *Matrix) Bytes() int { return len(mt.words) * 8 }
