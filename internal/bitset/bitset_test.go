package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasic(t *testing.T) {
	s := New(100)
	if s.Count() != 0 {
		t.Fatalf("new set not empty: %d", s.Count())
	}
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(99)
	for _, i := range []int{0, 63, 64, 99} {
		if !s.Test(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	for _, i := range []int{1, 62, 65, 98, 100, 1000} {
		if s.Test(i) {
			t.Errorf("bit %d should not be set", i)
		}
	}
	if s.Count() != 4 {
		t.Errorf("count = %d, want 4", s.Count())
	}
	s.Clear(63)
	if s.Test(63) {
		t.Error("bit 63 should be cleared")
	}
	if s.Count() != 3 {
		t.Errorf("count = %d, want 3", s.Count())
	}
}

func TestSetGrow(t *testing.T) {
	s := &Set{}
	s.Set(1000)
	if !s.Test(1000) {
		t.Fatal("grown bit not set")
	}
	if s.Test(999) || s.Test(1001) {
		t.Fatal("neighbouring bits set")
	}
	// Clearing beyond capacity must not panic.
	s.Clear(100000)
}

func TestSetReset(t *testing.T) {
	s := New(128)
	for i := 0; i < 128; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("reset left %d bits", s.Count())
	}
}

func TestSetOrSubset(t *testing.T) {
	a := New(200)
	b := New(100)
	a.Set(5)
	b.Set(5)
	b.Set(99)
	if a.Contains(b) {
		t.Error("a should not contain b")
	}
	a.Or(b)
	if !a.Contains(b) {
		t.Error("after Or, a must contain b")
	}
	if !a.Test(99) || !a.Test(5) {
		t.Error("union missing bits")
	}
	// Or with a larger set must grow.
	c := New(10)
	big := New(10)
	big.Set(500)
	c.Or(big)
	if !c.Test(500) {
		t.Error("Or did not grow receiver")
	}
}

func TestSetIntersects(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(10)
	b.Set(20)
	if a.Intersects(b) {
		t.Error("disjoint sets intersect")
	}
	b.Set(10)
	if !a.Intersects(b) {
		t.Error("overlapping sets do not intersect")
	}
}

func TestSetForEach(t *testing.T) {
	s := New(300)
	want := []int{3, 64, 65, 128, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	s.ForEach(func(int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestSetClone(t *testing.T) {
	a := New(64)
	a.Set(7)
	b := a.Clone()
	b.Set(8)
	if a.Test(8) {
		t.Error("clone aliases original")
	}
	if !b.Test(7) {
		t.Error("clone missing original bit")
	}
}

func TestSubsetProperty(t *testing.T) {
	// Property: after a.Or(b), b is always a subset of a, and any element
	// test on b implies the same on a.
	f := func(xs, ys []uint16) bool {
		a, b := New(1), New(1)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		a.Or(b)
		if !a.Contains(b) {
			return false
		}
		ok := true
		b.ForEach(func(i int) bool {
			if !a.Test(i) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsContrapositive(t *testing.T) {
	// Property used by the approximate-TC indexes: if t ⊆ s then
	// s.Contains(t); if not, AndNotEmpty must witness it.
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		s := New(256)
		for i := 0; i < 40; i++ {
			s.Set(rng.Intn(256))
		}
		sub := New(256)
		s.ForEach(func(i int) bool {
			if rng.Intn(2) == 0 {
				sub.Set(i)
			}
			return true
		})
		if !s.Contains(sub) {
			t.Fatal("subset not contained")
		}
		// Poison with one extra bit outside s.
		for {
			b := rng.Intn(256)
			if !s.Test(b) {
				sub.Set(b)
				break
			}
		}
		if s.Contains(sub) {
			t.Fatal("superset claim with poisoned bit")
		}
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(10, 130)
	if m.Rows() != 10 || m.Cols() != 130 {
		t.Fatal("bad shape")
	}
	m.Set(3, 0)
	m.Set(3, 129)
	m.Set(9, 64)
	if !m.Test(3, 0) || !m.Test(3, 129) || !m.Test(9, 64) {
		t.Error("set bits not found")
	}
	if m.Test(3, 1) || m.Test(4, 0) {
		t.Error("unset bits found")
	}
	if m.RowCount(3) != 2 {
		t.Errorf("RowCount = %d, want 2", m.RowCount(3))
	}
	if m.CountAll() != 3 {
		t.Errorf("CountAll = %d, want 3", m.CountAll())
	}
	m.OrRow(9, 3)
	if !m.Test(9, 0) || !m.Test(9, 129) || !m.Test(9, 64) {
		t.Error("OrRow missing bits")
	}
	if m.Bytes() == 0 {
		t.Error("Bytes should be positive")
	}
}

func BenchmarkSetOr(b *testing.B) {
	x, y := New(1<<16), New(1<<16)
	for i := 0; i < 1<<16; i += 7 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}
