package faultinject

import (
	"errors"
	"testing"
)

func TestDisarmedIsNoop(t *testing.T) {
	Deactivate()
	if Enabled() {
		t.Fatal("Enabled() with no plan")
	}
	Hit("anything")
	if err := HitErr("anything"); err != nil {
		t.Fatalf("HitErr disarmed: %v", err)
	}
}

func TestPanicFiresOnceAtOffset(t *testing.T) {
	p := &Plan{Site: "s", After: 2, Kind: Panic}
	Activate(p)
	defer Deactivate()

	Hit("other") // wrong site: no hit consumed
	Hit("s")
	Hit("s")
	func() {
		defer func() {
			r := recover()
			inj, ok := r.(*Injected)
			if !ok {
				t.Fatalf("recover() = %v, want *Injected", r)
			}
			if inj.Site != "s" || inj.Kind != Panic {
				t.Fatalf("bad payload %+v", inj)
			}
		}()
		Hit("s") // third hit of "s": fires
		t.Fatal("unreachable: Hit should have panicked")
	}()
	if !p.Fired() {
		t.Fatal("plan not marked fired")
	}
	Hit("s") // already fired: passes through
	if p.Hits() != 4 {
		t.Fatalf("hits = %d, want 4", p.Hits())
	}
}

func TestErrorKind(t *testing.T) {
	Activate(&Plan{Site: "io", Kind: Error})
	defer Deactivate()

	Hit("io") // Hit ignores Error plans entirely (and consumes no hit)
	err := HitErr("io")
	var inj *Injected
	if !errors.As(err, &inj) || inj.Site != "io" {
		t.Fatalf("HitErr = %v, want *Injected at io", err)
	}
	if err := HitErr("io"); err != nil {
		t.Fatalf("second HitErr = %v, want nil (fires once)", err)
	}
}

func TestCancelKind(t *testing.T) {
	called := 0
	Activate(&Plan{Site: "chk", After: 1, Kind: Cancel, Cancel: func() { called++ }})
	defer Deactivate()

	Hit("chk")
	Hit("chk")
	Hit("chk")
	if called != 1 {
		t.Fatalf("cancel called %d times, want 1", called)
	}
}

func TestDerivePlanDeterministic(t *testing.T) {
	sites := []string{"a", "b", "c"}
	kinds := []Kind{Panic, Cancel, Error}
	seen := map[string]bool{}
	for seed := int64(0); seed < 64; seed++ {
		p1 := DerivePlan(seed, sites, kinds, 100)
		p2 := DerivePlan(seed, sites, kinds, 100)
		if p1.Site != p2.Site || p1.Kind != p2.Kind || p1.After != p2.After {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed, p1, p2)
		}
		if p1.After < 0 || p1.After >= 100 {
			t.Fatalf("After out of range: %d", p1.After)
		}
		seen[p1.Site+"/"+p1.Kind.String()] = true
	}
	// 64 seeds over 9 (site, kind) combos should cover several distinct ones.
	if len(seen) < 4 {
		t.Fatalf("poor plan diversity: %v", seen)
	}
}
