// Package faultinject is a deterministic fault-injection harness for the
// robustness test suite. Builders, the worker pool, and graph I/O are
// instrumented with named sites (faultinject.Hit / faultinject.HitErr);
// with no plan activated every site is a single atomic pointer load, so
// production builds pay essentially nothing.
//
// A Plan arms exactly one site and fires after a fixed number of hits, so
// a failure found under a given (site, After) pair replays exactly. Plans
// are derived from an integer seed via DerivePlan so the stress suite can
// sweep a deterministic family of faults without hand-enumerating them.
//
// Three fault kinds cover the failure modes the hardening layer must
// contain:
//
//   - Panic: the site panics with an Injected value — exercises the
//     core.Recover boundary and the par pool's panic containment.
//   - Cancel: the site invokes a caller-supplied cancel function (e.g. a
//     context.CancelFunc) — exercises cooperative checkpoint cancellation
//     at a precise point in a build ("cancel at checkpoint N").
//   - Error: the site returns an *Injected error from HitErr — exercises
//     error-path plumbing in functions that already return errors
//     (graph.Read).
package faultinject

import (
	"fmt"
	"sync/atomic"
)

// Kind selects what an armed site does when it fires.
type Kind int

const (
	// Panic makes Hit panic with Injected{Site}.
	Panic Kind = iota
	// Cancel makes Hit invoke Plan.Cancel (once) and keep going; the
	// surrounding code is expected to notice via its own checkpoint.
	Cancel
	// Error makes HitErr return an *Injected error. Hit ignores Error
	// plans (a site that cannot return an error cannot inject one).
	Error
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Cancel:
		return "cancel"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injected is both the panic payload and the error value of a fired
// injection, so tests can assert a surfaced failure really came from the
// harness (errors.As / type assertion on recover()).
type Injected struct {
	Site string
	Kind Kind
}

func (e *Injected) Error() string {
	return "faultinject: injected " + e.Kind.String() + " at " + e.Site
}

// Plan arms one site. The zero value is inert (empty Site matches nothing).
type Plan struct {
	// Site names the injection point, e.g. "build/2hop" or "par/claim".
	Site string
	// After is how many hits of Site pass through before the fault fires;
	// 0 fires on the first hit. Exactly one hit fires (subsequent hits
	// pass through), so a fired plan cannot mask later behaviour.
	After int
	// Kind is what happens at the firing hit.
	Kind Kind
	// Cancel is invoked by a firing Cancel plan. Required for Kind ==
	// Cancel, ignored otherwise.
	Cancel func()

	hits  atomic.Int64
	fired atomic.Bool
}

// active is the armed plan; nil means injection is off (the fast path).
var active atomic.Pointer[Plan]

// Activate arms p globally. Only one plan is active at a time; activating
// replaces any previous plan. Tests must Deactivate (typically via
// t.Cleanup) so later tests run clean.
func Activate(p *Plan) { active.Store(p) }

// Deactivate disarms injection; every site reverts to a no-op.
func Deactivate() { active.Store(nil) }

// Enabled reports whether a plan is armed. Cheap: one atomic load.
// Checkpoint constructors use it to stay allocated (and therefore
// hittable) even when the caller passed no cancellable context.
func Enabled() bool { return active.Load() != nil }

// Hit marks one pass through the named site. It panics with *Injected if
// an armed Panic plan fires here, and invokes the plan's cancel function
// if a Cancel plan fires here. No-op (one atomic load) when disarmed.
func Hit(site string) {
	p := active.Load()
	if p == nil || p.Site != site {
		return
	}
	switch p.Kind {
	case Panic:
		if p.take() {
			panic(&Injected{Site: site, Kind: Panic})
		}
	case Cancel:
		if p.take() && p.Cancel != nil {
			p.Cancel()
		}
	}
}

// HitErr is Hit for sites that can surface an error instead of a panic:
// it returns an *Injected error when an armed Error plan fires here, and
// otherwise behaves exactly like Hit.
func HitErr(site string) error {
	p := active.Load()
	if p == nil || p.Site != site {
		return nil
	}
	if p.Kind == Error {
		if p.take() {
			return &Injected{Site: site, Kind: Error}
		}
		return nil
	}
	Hit(site)
	return nil
}

// take consumes one hit and reports whether this is the firing one.
func (p *Plan) take() bool {
	n := p.hits.Add(1) - 1
	return int(n) == p.After && p.fired.CompareAndSwap(false, true)
}

// Hits reports how many times the armed site has been passed. Useful for
// calibrating After in stress sweeps (run once to count, then inject).
func (p *Plan) Hits() int { return int(p.hits.Load()) }

// Fired reports whether the plan's fault has been delivered.
func (p *Plan) Fired() bool { return p.fired.Load() }

// DerivePlan maps an integer seed to a deterministic (site, After, kind)
// triple drawn from the given site list, splitmix64-style, so a stress
// sweep over seeds covers sites, offsets, and fault kinds without
// coordination. Cancel plans still need their Cancel func set by the
// caller. maxAfter bounds the hit offset (After in [0, maxAfter)).
func DerivePlan(seed int64, sites []string, kinds []Kind, maxAfter int) *Plan {
	if len(sites) == 0 || len(kinds) == 0 || maxAfter < 1 {
		return &Plan{}
	}
	x := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	next := func() uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		x += 0x9e3779b97f4a7c15
		return x
	}
	return &Plan{
		Site:  sites[next()%uint64(len(sites))],
		Kind:  kinds[next()%uint64(len(kinds))],
		After: int(next() % uint64(maxAfter)),
	}
}
