// Package threehop implements the 3-hop index of Jin et al. [26] (§3.2):
// 2-hop labeling where the intermediate structures are chains — "early
// works replace the intermediate vertices in the reachability path with
// graph structures, i.e., chains in the 3-hop index".
//
// The DAG is decomposed into vertex-disjoint chains (greedy along the
// topological order; the published scheme computes a minimum chain cover
// via min-flow, see DESIGN.md). Labels are (chain, position) pairs:
// Lout(s) records, per selected chain, the smallest position s can reach;
// Lin(t) the largest position that reaches t. Qr(s, t) holds iff some
// chain c has an Lout(s) entry (c, p) and an Lin(t) entry (c, q) with
// p ≤ q — a 3-hop path s → c[p] → c[q] → t. Labels are pruned 2-hop
// style: chains are processed in order, and a candidate entry is skipped
// when already-built labels cover the pair.
package threehop

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

type entry struct {
	chain uint32
	pos   uint32
}

// Index is the 3-hop complete index over a DAG.
type Index struct {
	chain []uint32
	pos   []uint32
	out   [][]entry // ascending by chain
	in    [][]entry
	stats core.Stats
}

// New builds the 3-hop index over a DAG.
func New(dag *graph.Digraph) *Index { return NewChecked(dag, nil) }

// NewChecked is New under a cancellation checkpoint: ticks per chain-head
// vertex of the decomposition and per BFS dequeue of the labeling passes.
func NewChecked(dag *graph.Digraph, chk *core.Check) *Index {
	start := time.Now()
	n := dag.N()
	topo, _ := order.Topological(dag)
	ix := &Index{
		chain: make([]uint32, n), pos: make([]uint32, n),
		out: make([][]entry, n), in: make([][]entry, n),
	}
	// Greedy chain decomposition along the topological order.
	var chains [][]graph.V
	assigned := make([]bool, n)
	for _, v := range topo {
		chk.Tick()
		if assigned[v] {
			continue
		}
		var ch []graph.V
		cur := v
		for {
			assigned[cur] = true
			ix.chain[cur] = uint32(len(chains))
			ix.pos[cur] = uint32(len(ch))
			ch = append(ch, cur)
			found := false
			for _, w := range dag.Succ(cur) {
				if !assigned[w] {
					cur = w
					found = true
					break
				}
			}
			if !found {
				break
			}
		}
		chains = append(chains, ch)
	}

	// Process chains in order; within a chain, label backward-reachability
	// from the smallest position first (a vertex reaching c[p] also
	// reaches every later position, so smaller p dominates) and forward
	// reachability from the largest position first.
	stamp := make([]uint32, n)
	var stampID uint32
	for ci, ch := range chains {
		c := uint32(ci)
		// Lout entries: backward BFS from positions in increasing order.
		stampID++
		var queue []graph.V
		for p := 0; p < len(ch); p++ {
			target := ch[p]
			if stamp[target] == stampID {
				continue // reaches an earlier (smaller) position already
			}
			stamp[target] = stampID
			queue = append(queue[:0], target)
			for qi := 0; qi < len(queue); qi++ {
				chk.Tick()
				u := queue[qi]
				// Skip the label when u sits on chain c itself at an
				// earlier position — the chain edges already certify it.
				if u != target && !(ix.chain[u] == c && ix.pos[u] <= uint32(p)) {
					ix.out[u] = append(ix.out[u], entry{chain: c, pos: uint32(p)})
				}
				for _, w := range dag.Pred(u) {
					if stamp[w] != stampID {
						stamp[w] = stampID
						queue = append(queue, w)
					}
				}
			}
		}
		// Lin entries: forward BFS from positions in decreasing order.
		stampID++
		for p := len(ch) - 1; p >= 0; p-- {
			src := ch[p]
			if stamp[src] == stampID {
				continue // reachable from a later (larger) position already
			}
			stamp[src] = stampID
			queue = append(queue[:0], src)
			for qi := 0; qi < len(queue); qi++ {
				chk.Tick()
				u := queue[qi]
				if u != src && !(ix.chain[u] == c && ix.pos[u] >= uint32(p)) {
					ix.in[u] = append(ix.in[u], entry{chain: c, pos: uint32(p)})
				}
				for _, w := range dag.Succ(u) {
					if stamp[w] != stampID {
						stamp[w] = stampID
						queue = append(queue, w)
					}
				}
			}
		}
	}
	entries := 0
	for v := 0; v < n; v++ {
		entries += len(ix.out[v]) + len(ix.in[v])
	}
	ix.stats = core.Stats{Entries: entries, Bytes: entries*8 + n*8, BuildTime: time.Since(start)}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "3-Hop" }

// Reach reports whether t is reachable from s by the chain join.
func (ix *Index) Reach(s, t graph.V) bool {
	if s == t {
		return true
	}
	// Virtual self entries: s is at (chain[s], pos[s]) and t likewise.
	outS := ix.out[s]
	inT := ix.in[t]
	check := func(oc, op, icc, ip uint32) bool { return oc == icc && op <= ip }
	if check(ix.chain[s], ix.pos[s], ix.chain[t], ix.pos[t]) {
		return true
	}
	for _, oe := range outS {
		if check(oe.chain, oe.pos, ix.chain[t], ix.pos[t]) {
			return true
		}
	}
	for _, ie := range inT {
		if check(ix.chain[s], ix.pos[s], ie.chain, ie.pos) {
			return true
		}
	}
	for _, oe := range outS {
		for _, ie := range inT {
			if check(oe.chain, oe.pos, ie.chain, ie.pos) {
				return true
			}
		}
	}
	return false
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// Chains returns the number of chains in the decomposition.
func (ix *Index) Chains() int {
	max := uint32(0)
	for _, c := range ix.chain {
		if c > max {
			max = c
		}
	}
	if len(ix.chain) == 0 {
		return 0
	}
	return int(max) + 1
}
