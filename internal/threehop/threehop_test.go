package threehop

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestChainCompression(t *testing.T) {
	// On a long line the whole index collapses to per-vertex chain
	// positions with no labels at all.
	n := 100
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	ix := New(b.MustFreeze())
	if ix.Chains() != 1 {
		t.Fatalf("chains = %d", ix.Chains())
	}
	if ix.Stats().Entries != 0 {
		t.Errorf("line graph should need 0 hop entries, got %d", ix.Stats().Entries)
	}
}

func TestCompressionBeatsTC(t *testing.T) {
	// Chains pay off on deep, narrow DAGs (the regime the 3-hop paper
	// targets); random DAGs with wide antichains favour other indexes.
	g := gen.LayeredDAG(50, 4, 2, 2)
	ix := New(g)
	oracle := tc.NewClosure(g)
	if ix.Stats().Entries >= oracle.Pairs() {
		t.Errorf("3-hop entries %d >= TC pairs %d", ix.Stats().Entries, oracle.Pairs())
	}
	if ix.Name() != "3-Hop" {
		t.Error("name")
	}
}

func TestLabelsSound(t *testing.T) {
	// Every out entry (c, p) of u must certify a real path u -> chain c
	// position p; validated indirectly: Reach must never contradict BFS —
	// covered by conformance — here check entry positions are minimal per
	// chain (no two out entries on one chain).
	g := gen.RandomDAG(gen.Config{N: 120, M: 360, Seed: 3})
	ix := New(g)
	for v := 0; v < g.N(); v++ {
		seen := map[uint32]bool{}
		for _, e := range ix.out[v] {
			if seen[e.chain] {
				t.Fatalf("vertex %d has duplicate out entries for chain %d", v, e.chain)
			}
			seen[e.chain] = true
		}
	}
}
