// Package labelset provides the sufficient-path-label-set (SPLS) machinery
// of the paper's §4.1: label sets as 64-bit masks, and antichain
// collections of minimal label sets.
//
// The two foundations from Jin et al. [21] are encoded here:
//
//  1. If two s-t paths have label sets S1 ⊆ S2, then S2 is redundant — only
//     minimal sets (SPLSs) need recording. A Collection maintains exactly
//     that antichain under insertion.
//  2. SPLSs compose transitively: the SPLSs of s-t paths through u are
//     pairwise unions of s-u SPLSs and u-t SPLSs (Collection.Product).
package labelset

import (
	"math/bits"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Set is a label set over a universe of at most 64 labels, as a bitmask.
type Set uint64

// Of builds a Set from individual labels.
func Of(labels ...graph.Label) Set {
	var s Set
	for _, l := range labels {
		s |= 1 << uint(l)
	}
	return s
}

// Has reports whether label l is in the set.
func (s Set) Has(l graph.Label) bool { return s&(1<<uint(l)) != 0 }

// With returns s ∪ {l}.
func (s Set) With(l graph.Label) Set { return s | 1<<uint(l) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Size returns |s|, the number of distinct labels — the "distance" used by
// the Dijkstra-like single-source GTC computation of Zou et al. (§4.1.2).
func (s Set) Size() int { return bits.OnesCount64(uint64(s)) }

// String formats the set with the graph's label names, e.g.
// "{follows,worksFor}".
func (s Set) String(g *graph.Digraph) string {
	var names []string
	for l := 0; l < 64; l++ {
		if s.Has(graph.Label(l)) {
			names = append(names, g.LabelName(graph.Label(l)))
		}
	}
	return "{" + strings.Join(names, ",") + "}"
}

// Collection is an antichain of minimal label sets (SPLSs): no member is a
// subset of another. The zero value is an empty collection. Collections are
// small in practice (bounded by the width of the subset lattice actually
// realized by paths), so linear scans beat fancier structures.
type Collection struct {
	sets []Set
}

// Len returns the number of minimal sets.
func (c *Collection) Len() int { return len(c.sets) }

// Sets returns the minimal sets; the slice aliases internal storage.
func (c *Collection) Sets() []Set { return c.sets }

// Add inserts s, dropping it if some existing member is a subset of s, and
// evicting existing members that are proper supersets of s. Reports whether
// s was actually inserted (i.e. s was not dominated).
func (c *Collection) Add(s Set) bool {
	if c.Dominates(s) {
		return false
	}
	keep := c.sets[:0]
	for _, t := range c.sets {
		if !s.SubsetOf(t) {
			keep = append(keep, t)
		}
	}
	c.sets = append(keep, s)
	return true
}

// Has reports whether s itself is currently a member of c. Worklist
// algorithms use it to detect entries evicted by smaller sets after being
// enqueued.
func (c *Collection) Has(s Set) bool {
	for _, t := range c.sets {
		if t == s {
			return true
		}
	}
	return false
}

// Dominates reports whether some member of c is a subset of s — i.e.
// whether an s-labeled path is redundant given c.
func (c *Collection) Dominates(s Set) bool {
	for _, t := range c.sets {
		if t.SubsetOf(s) {
			return true
		}
	}
	return false
}

// AnySubsetOf reports whether some member of c is a subset of allowed —
// the LCR query test "can s reach t using only labels in allowed".
func (c *Collection) AnySubsetOf(allowed Set) bool {
	for _, t := range c.sets {
		if t.SubsetOf(allowed) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (c *Collection) Clone() *Collection {
	s := make([]Set, len(c.sets))
	copy(s, c.sets)
	return &Collection{sets: s}
}

// Union inserts all members of other into c; reports whether c changed.
func (c *Collection) Union(other *Collection) bool {
	changed := false
	for _, s := range other.sets {
		if c.Add(s) {
			changed = true
		}
	}
	return changed
}

// Product inserts into c all pairwise unions a ∪ b for a in left and b in
// right — the SPLS transitivity rule. Reports whether c changed.
func (c *Collection) Product(left, right *Collection) bool {
	changed := false
	for _, a := range left.sets {
		for _, b := range right.sets {
			if c.Add(a.Union(b)) {
				changed = true
			}
		}
	}
	return changed
}

// Equal reports whether two collections contain the same sets.
func (c *Collection) Equal(other *Collection) bool {
	if len(c.sets) != len(other.sets) {
		return false
	}
	a := append([]Set(nil), c.sets...)
	b := append([]Set(nil), other.sets...)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsAntichain verifies the antichain invariant; used by property tests.
func (c *Collection) IsAntichain() bool {
	for i, a := range c.sets {
		for j, b := range c.sets {
			if i != j && a.SubsetOf(b) {
				return false
			}
		}
	}
	return true
}
