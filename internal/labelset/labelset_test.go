package labelset

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestSetOps(t *testing.T) {
	s := Of(0, 2)
	if !s.Has(0) || s.Has(1) || !s.Has(2) {
		t.Error("Of/Has wrong")
	}
	if s.Size() != 2 {
		t.Errorf("Size = %d", s.Size())
	}
	s2 := s.With(1)
	if !s2.Has(1) || s.Has(1) {
		t.Error("With must not mutate receiver")
	}
	if !s.SubsetOf(s2) || s2.SubsetOf(s) {
		t.Error("SubsetOf wrong")
	}
	if s.Union(Of(5)) != Of(0, 2, 5) {
		t.Error("Union wrong")
	}
}

func TestSetString(t *testing.T) {
	g := graph.Fig1Labeled()
	s := Of(1, 2) // follows, worksFor
	if got := s.String(g); got != "{follows,worksFor}" {
		t.Errorf("String = %q", got)
	}
}

func TestCollectionAddDominance(t *testing.T) {
	var c Collection
	if !c.Add(Of(0, 1)) {
		t.Fatal("first add failed")
	}
	// Superset is redundant (foundation 1 of Jin et al.).
	if c.Add(Of(0, 1, 2)) {
		t.Fatal("superset accepted")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	// Subset evicts the superset.
	if !c.Add(Of(0)) {
		t.Fatal("subset rejected")
	}
	if c.Len() != 1 || c.Sets()[0] != Of(0) {
		t.Fatalf("eviction failed: %v", c.Sets())
	}
	// Incomparable set coexists.
	if !c.Add(Of(1, 2)) {
		t.Fatal("incomparable rejected")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	// Equal set is dominated.
	if c.Add(Of(1, 2)) {
		t.Fatal("duplicate accepted")
	}
}

func TestCollectionHas(t *testing.T) {
	var c Collection
	c.Add(Of(0, 1))
	if !c.Has(Of(0, 1)) || c.Has(Of(0)) {
		t.Error("Has wrong")
	}
	c.Add(Of(0)) // evicts {0,1}
	if c.Has(Of(0, 1)) || !c.Has(Of(0)) {
		t.Error("Has after eviction wrong")
	}
}

func TestCollectionAnySubsetOf(t *testing.T) {
	var c Collection
	c.Add(Of(0, 2))
	c.Add(Of(1))
	if !c.AnySubsetOf(Of(1, 3)) {
		t.Error("member {1} subset of {1,3}")
	}
	if !c.AnySubsetOf(Of(0, 2)) {
		t.Error("member {0,2} subset of itself")
	}
	if c.AnySubsetOf(Of(0, 3)) {
		t.Error("no member inside {0,3}")
	}
	if c.AnySubsetOf(0) {
		t.Error("no member inside empty set")
	}
	var empty Collection
	if empty.AnySubsetOf(Of(0, 1, 2)) {
		t.Error("empty collection matches nothing")
	}
}

func TestCollectionProductTransitivity(t *testing.T) {
	// The paper's §4.1 example: SPLS(A→L) = {follows}, SPLS(L→M) =
	// {worksFor} compose to SPLS(A→M) = {follows, worksFor}.
	var aToL, lToM, aToM Collection
	aToL.Add(Of(1))
	lToM.Add(Of(2))
	aToM.Product(&aToL, &lToM)
	if aToM.Len() != 1 || aToM.Sets()[0] != Of(1, 2) {
		t.Fatalf("product = %v, want [{1,2}]", aToM.Sets())
	}
}

func TestCollectionUnionClone(t *testing.T) {
	var a, b Collection
	a.Add(Of(0))
	b.Add(Of(1))
	b.Add(Of(0, 1)) // dominated within b? {0,1} superset of {1} -> rejected
	if b.Len() != 1 {
		t.Fatalf("b.Len = %d", b.Len())
	}
	cl := a.Clone()
	if !a.Union(&b) {
		t.Fatal("union reported no change")
	}
	if a.Len() != 2 {
		t.Fatalf("a.Len = %d", a.Len())
	}
	if cl.Len() != 1 {
		t.Fatal("clone mutated")
	}
	if a.Union(&b) {
		t.Fatal("idempotent union reported change")
	}
}

func TestCollectionEqual(t *testing.T) {
	var a, b Collection
	a.Add(Of(0))
	a.Add(Of(1, 2))
	b.Add(Of(1, 2))
	b.Add(Of(0))
	if !a.Equal(&b) {
		t.Error("order must not matter")
	}
	b.Add(Of(3))
	if a.Equal(&b) {
		t.Error("different collections equal")
	}
}

func TestAntichainInvariantProperty(t *testing.T) {
	// Property: any sequence of Adds leaves an antichain that dominates
	// every added set.
	f := func(raw []uint16) bool {
		var c Collection
		for _, r := range raw {
			c.Add(Set(r & 0xFF))
		}
		if !c.IsAntichain() {
			return false
		}
		for _, r := range raw {
			if !c.Dominates(Set(r & 0xFF)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProductAntichainProperty(t *testing.T) {
	f := func(ls, rs []uint8) bool {
		var l, r, p Collection
		for _, x := range ls {
			l.Add(Set(x))
		}
		for _, x := range rs {
			r.Add(Set(x))
		}
		p.Product(&l, &r)
		if !p.IsAntichain() {
			return false
		}
		// Every pairwise union must be dominated by the product.
		for _, a := range l.Sets() {
			for _, b := range r.Sets() {
				if !p.Dominates(a.Union(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
