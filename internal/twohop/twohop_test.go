package twohop

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckGeneralIndex(t, func(g *graph.Digraph) core.Index { return New(g) })
}

func TestLabelQualityOnLine(t *testing.T) {
	// On a 2k-line, greedy 2-hop should pick middle hubs and undercut the
	// quadratic TC pair count by a wide margin.
	n := 64
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	g := b.MustFreeze()
	ix := New(g)
	oracle := tc.NewClosure(g)
	if ix.Stats().Entries*3 > oracle.Pairs() {
		t.Errorf("2-hop entries %d vs TC pairs %d: compression too weak",
			ix.Stats().Entries, oracle.Pairs())
	}
}

func TestSelfPairs(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 30, M: 60, Seed: 2})
	ix := New(g)
	for v := graph.V(0); int(v) < g.N(); v++ {
		if !ix.Reach(v, v) {
			t.Fatalf("Reach(%d,%d) = false", v, v)
		}
	}
	if ix.Name() != "2-Hop" {
		t.Error("name")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(5, nil)
	ix := New(g)
	if ix.Stats().Entries != 0 {
		t.Errorf("empty graph has %d entries", ix.Stats().Entries)
	}
	if ix.Reach(0, 1) || !ix.Reach(3, 3) {
		t.Error("reach on empty graph wrong")
	}
}
