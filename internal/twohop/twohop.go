// Package twohop implements the original 2-hop labeling of Cohen, Halperin,
// Kaplan and Zwick [14] (§3.2) via its greedy set-cover approximation:
// repeatedly pick the hop vertex w covering the most still-uncovered
// reachable pairs (u, v) with u→w→v, and add w to Lout(u) for the covered
// ancestors and to Lin(v) for the covered descendants.
//
// As the paper stresses, the approximation runs in roughly O(n⁴) time on
// the materialized transitive closure — infeasible for large graphs. It is
// included because it is the framework's origin and because its label
// sizes are the quality bar the later heuristics (TFL/DL/PLL/TOL) chase;
// the harness only runs it on small inputs.
package twohop

import (
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tc"
)

// Index is the original 2-hop index, built greedily from the TC.
type Index struct {
	in, out [][]uint32 // hub vertex ids, ascending
	stats   core.Stats
}

// New builds the greedy 2-hop labeling of g (general digraph).
func New(g *graph.Digraph) *Index { return NewChecked(g, nil) }

// NewChecked is New under a cancellation checkpoint. 2-hop is the
// catalogue's most expensive build (O(n⁴) greedy cover on the
// materialized TC), which makes prompt cancellation matter most here:
// ticks are placed per closure row, per vertex of the anc/desc
// materialization, and per candidate hop of every cover round.
func NewChecked(g *graph.Digraph, chk *core.Check) *Index {
	start := time.Now()
	n := g.N()
	closure := tc.NewClosureChecked(g, 1, chk)

	// anc[w] = vertices that reach w (incl. w); desc[w] = vertices w
	// reaches (incl. w). Materialized from the closure.
	anc := make([]*bitset.Set, n)
	desc := make([]*bitset.Set, n)
	for w := 0; w < n; w++ {
		chk.Tick()
		anc[w], desc[w] = bitset.New(n), bitset.New(n)
		for x := 0; x < n; x++ {
			if closure.Reach(graph.V(x), graph.V(w)) {
				anc[w].Set(x)
			}
			if closure.Reach(graph.V(w), graph.V(x)) {
				desc[w].Set(x)
			}
		}
	}

	// uncovered[u] = set of v != u with u→v not yet certified.
	uncovered := make([]*bitset.Set, n)
	remaining := 0
	for u := 0; u < n; u++ {
		chk.Tick()
		uncovered[u] = bitset.New(n)
		desc[u].ForEach(func(v int) bool {
			if v != u {
				uncovered[u].Set(v)
				remaining++
			}
			return true
		})
	}

	ix := &Index{in: make([][]uint32, n), out: make([][]uint32, n)}
	for remaining > 0 {
		// Pick the hop w covering the most uncovered pairs u→w→v.
		bestW, bestCover := -1, 0
		for w := 0; w < n; w++ {
			chk.Tick()
			cover := 0
			anc[w].ForEach(func(u int) bool {
				// Count uncovered[u] ∩ desc[w].
				uncovered[u].ForEach(func(v int) bool {
					if desc[w].Test(v) {
						cover++
					}
					return true
				})
				return true
			})
			if cover > bestCover {
				bestCover, bestW = cover, w
			}
		}
		if bestW < 0 {
			break // defensive: nothing coverable (cannot happen)
		}
		w := bestW
		anc[w].ForEach(func(u int) bool {
			hit := false
			uncovered[u].ForEach(func(v int) bool {
				if desc[w].Test(v) {
					hit = true
					uncovered[u].Clear(v)
					remaining--
					if !contains(ix.in[v], uint32(w)) {
						ix.in[v] = append(ix.in[v], uint32(w))
					}
				}
				return true
			})
			if hit && !contains(ix.out[u], uint32(w)) {
				ix.out[u] = append(ix.out[u], uint32(w))
			}
			return true
		})
	}
	entries := 0
	for v := 0; v < n; v++ {
		entries += len(ix.in[v]) + len(ix.out[v])
	}
	ix.stats = core.Stats{Entries: entries, Bytes: entries * 4, BuildTime: time.Since(start)}
	return ix
}

func contains(s []uint32, x uint32) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}

// Name implements core.Index.
func (ix *Index) Name() string { return "2-Hop" }

// Reach answers by hub intersection (unsorted lists; labels are tiny).
func (ix *Index) Reach(s, t graph.V) bool {
	if s == t {
		return true
	}
	for _, h := range ix.out[s] {
		if h == uint32(t) || contains(ix.in[t], h) {
			return true
		}
	}
	return contains(ix.in[t], uint32(s))
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }
