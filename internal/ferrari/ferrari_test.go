package ferrari

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 3})
	})
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 2})
	})
}

func TestTightBudget(t *testing.T) {
	// K=1 forces maximal approximation; exactness must survive via DFS.
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 1})
	})
}

func TestBudgetRespected(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 300, M: 1500, Seed: 3})
	for _, k := range []int{1, 2, 4, 8} {
		ix := New(g, Options{K: k})
		for v, list := range ix.lists {
			if len(list) > k {
				t.Fatalf("K=%d: vertex %d has %d intervals", k, v, len(list))
			}
		}
	}
}

func TestLargeBudgetIsComplete(t *testing.T) {
	// With an unbounded budget FERRARI degenerates to the exact tree cover:
	// every lookup should be decided.
	g := gen.RandomDAG(gen.Config{N: 100, M: 300, Seed: 4})
	ix := New(g, Options{K: 1 << 20})
	for s := graph.V(0); int(s) < g.N(); s++ {
		for tt := graph.V(0); int(tt) < g.N(); tt++ {
			if _, dec := ix.TryReach(s, tt); !dec {
				t.Fatalf("unbounded FERRARI undecided at (%d,%d)", s, tt)
			}
		}
	}
}

func TestStatsAndName(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 50, M: 100, Seed: 5})
	ix := New(g, Options{})
	if ix.Name() != "FERRARI" {
		t.Error("name")
	}
	if ix.Stats().Entries <= 0 {
		t.Error("entries")
	}
}
