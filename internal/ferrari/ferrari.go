// Package ferrari implements FERRARI [40] (§3.1): a partial tree-cover
// index recording at most k intervals per vertex. Exact interval lists are
// propagated in reverse topological order (as in the tree-cover index);
// whenever a list exceeds the budget k, nearest intervals are merged into
// approximate intervals that may cover unreachable post numbers.
//
// Query semantics per interval kind:
//   - hit in an exact interval   → definite positive,
//   - miss in every interval     → definite negative (no false negatives),
//   - hit only in an approximate interval → undecided → guided DFS.
package ferrari

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/par"
)

// Options configures FERRARI.
type Options struct {
	// K is the per-vertex interval budget (the paper's "at most k").
	// Default 4.
	K int
	// Workers caps the pool running the interval-assignment pass
	// (0 = GOMAXPROCS, 1 = serial) — the multi-threaded interval
	// assignment the FERRARI paper reports. The pass is a
	// level-synchronized sweep: a vertex's list depends only on its
	// successors' finished lists, so vertices of one topological level
	// merge concurrently and the result is identical at any worker count.
	Workers int
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 4
	}
}

// iv is an interval with an exactness flag.
type iv struct {
	lo, hi uint32
	exact  bool
}

// Index is the FERRARI partial index over a DAG.
type Index struct {
	g     *graph.Digraph
	post  []uint32
	lists [][]iv
	stats core.Stats
}

// New builds FERRARI over a DAG.
func New(dag *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	n := dag.N()
	po := order.DFSForest(dag, order.Sources(dag), nil)
	lists := make([][]iv, n)
	// Deepest level first: every successor's list is complete before a
	// vertex merges it, and vertices within a level are independent.
	par.Sweep(opts.Workers, order.Reversed(order.LevelBuckets(dag)), func(_ int, v graph.V) {
		list := []iv{{lo: po.Min[v], hi: po.Post[v], exact: true}}
		for _, w := range dag.Succ(v) {
			for _, x := range lists[w] {
				list = insert(list, x)
			}
		}
		lists[v] = coarsen(list, opts.K)
	})
	ix := &Index{g: dag, post: po.Post, lists: lists}
	entries := 0
	for _, l := range lists {
		entries += len(l)
	}
	ix.stats = core.Stats{
		Entries:   entries,
		Bytes:     entries*9 + n*4,
		BuildTime: time.Since(start),
	}
	return ix
}

// insert merges x into the sorted list. Overlapping or adjacent intervals
// merge; the result is exact only when both inputs are.
func insert(list []iv, x iv) []iv {
	start := sort.Search(len(list), func(i int) bool { return list[i].hi+1 >= x.lo })
	end := start
	for end < len(list) && list[end].lo <= x.hi+1 {
		if list[end].lo < x.lo {
			x.lo = list[end].lo
		}
		if list[end].hi > x.hi {
			x.hi = list[end].hi
		}
		x.exact = x.exact && list[end].exact
		end++
	}
	if start == end {
		list = append(list, iv{})
		copy(list[start+1:], list[start:])
		list[start] = x
		return list
	}
	list[start] = x
	return append(list[:start+1], list[end:]...)
}

// coarsen merges smallest-gap neighbours until at most k intervals remain;
// any gap-bridging merge produces an approximate interval.
func coarsen(list []iv, k int) []iv {
	for len(list) > k {
		best := 1
		bestGap := list[1].lo - list[0].hi
		for i := 2; i < len(list); i++ {
			if g := list[i].lo - list[i-1].hi; g < bestGap {
				bestGap = g
				best = i
			}
		}
		list[best-1].hi = list[best].hi
		list[best-1].exact = false
		list = append(list[:best], list[best+1:]...)
	}
	return list
}

// Name implements core.Index.
func (ix *Index) Name() string { return "FERRARI" }

// TryReach implements core.Partial.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	pt := ix.post[t]
	list := ix.lists[s]
	i := sort.Search(len(list), func(i int) bool { return list[i].hi >= pt })
	if i == len(list) || list[i].lo > pt {
		return false, true // outside every interval: definite negative
	}
	if list[i].exact {
		return true, true // inside an exact interval: definite positive
	}
	return false, false // inside an approximate interval: undecided
}

// Reach answers Qr(s, t) exactly.
func (ix *Index) Reach(s, t graph.V) bool {
	return core.GuidedDFS(ix.g, s, t, ix.TryReach)
}

// ReachCounted implements core.ReachCounter: the same guided DFS as
// Reach, additionally reporting how many vertices it expanded and whether
// the index labels decided the query without any expansion.
func (ix *Index) ReachCounted(s, t graph.V) (bool, int, bool) {
	r, n := core.CountingGuidedDFS(ix.g, s, t, ix.TryReach)
	return r, n, n == 0
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }
