package labelstore

// LEB128-style unsigned varints restricted to 32-bit values: at most 5
// bytes, and the 5th byte may only carry the top 4 bits (<= 0x0f).
// Decoding enforces canonical form — overlong encodings (a final byte of
// 0x00 that adds no bits, or a 5th byte overflowing 32 bits) are
// rejected — so every value has exactly one encoding and fuzzing can
// assert round-trip identity both ways.

// maxUvarint32Len is the maximum encoded length of a 32-bit varint.
const maxUvarint32Len = 5

// appendUvarint32 appends the canonical varint encoding of x to dst.
func appendUvarint32(dst []byte, x uint32) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// uvarint32 decodes a canonical varint from the front of buf. It returns
// the value and the number of bytes consumed, or n <= 0 on error:
// 0 means truncated input, negative means invalid (overlong or >32-bit)
// encoding at byte -n-1.
func uvarint32(buf []byte) (uint32, int) {
	var x uint32
	var s uint
	for i := 0; i < len(buf); i++ {
		b := buf[i]
		if i == maxUvarint32Len-1 {
			if b > 0x0f || b == 0 { // overflow past 32 bits, or overlong
				return 0, -(i + 1)
			}
			return x | uint32(b)<<s, i + 1
		}
		if b < 0x80 {
			if i > 0 && b == 0 { // overlong: trailing zero byte adds nothing
				return 0, -(i + 1)
			}
			return x | uint32(b)<<s, i + 1
		}
		x |= uint32(b&0x7f) << s
		s += 7
	}
	return 0, 0
}
