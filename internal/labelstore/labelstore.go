// Package labelstore is the flat storage substrate for label-based
// reachability indexes (PLL/TFL/DL/HL, TOL, BFL). The 2-hop family keeps
// one sorted hub-rank list per vertex and direction; storing those lists
// as per-vertex Go slices costs a pointer chase plus a likely cache miss
// per probed vertex and scatters the index across the heap. A Store packs
// every list of one direction into a single contiguous array behind a
// CSR-style offset table, so the hot query merge walks two contiguous
// runs of memory, and snapshots can carry the arrays verbatim.
//
// Two encodings share one iteration API:
//
//	Raw    — off[v] indexes a flat []uint32; Row(v) is a zero-copy
//	         subslice and queries merge plain slices.
//	Varint — off[v] indexes a byte stream of per-row delta-varints
//	         (rows are strictly ascending, so gaps encode in 1–2 bytes
//	         for the skew-heavy label distributions pruned labelings
//	         produce); queries merge through Cursors, still 0 allocs.
//
// Builders accumulate rows in pooled arenas (chunked backing arrays
// recycled across builds) and compact them once at Freeze.
package labelstore

import (
	"fmt"
	"sync"
)

// Encoding selects the physical layout of a frozen Store.
type Encoding uint8

// Encodings.
const (
	Raw Encoding = iota
	Varint
)

func (e Encoding) String() string {
	switch e {
	case Raw:
		return "raw"
	case Varint:
		return "varint"
	}
	return fmt.Sprintf("encoding(%d)", uint8(e))
}

// Footprint splits a Store's resident bytes by role, the accounting the
// obs layer exports so the compression win is observable.
type Footprint struct {
	// Offsets is the CSR offset table.
	Offsets int
	// Labels is the label payload (flat uint32s or the varint stream).
	Labels int
}

// Total is Offsets + Labels.
func (f Footprint) Total() int { return f.Offsets + f.Labels }

// Store is an immutable flat label store: one sorted uint32 list per
// vertex, packed contiguously. The zero value is an empty store.
type Store struct {
	enc     Encoding
	n       int
	entries int
	// off has n+1 entries. Raw: element offsets into lab. Varint: byte
	// offsets into data. uint32 offsets bound one direction of one index
	// at 4Gi entries (16 GiB raw), far beyond a single-box labeling.
	off  []uint32
	lab  []uint32
	data []byte
}

// N returns the number of rows (vertices).
func (s *Store) N() int { return s.n }

// Entries returns the total number of label entries across all rows.
func (s *Store) Entries() int { return s.entries }

// Encoding reports the physical layout.
func (s *Store) Encoding() Encoding { return s.enc }

// Footprint reports resident bytes split by role.
func (s *Store) Footprint() Footprint {
	return Footprint{Offsets: len(s.off) * 4, Labels: len(s.lab)*4 + len(s.data)}
}

// Row returns row v as a zero-copy subslice when the encoding supports it
// (Raw). Varint stores return (nil, false); iterate with Cursor or decode
// with AppendRow instead.
func (s *Store) Row(v int) ([]uint32, bool) {
	if s.enc != Raw {
		return nil, false
	}
	return s.lab[s.off[v]:s.off[v+1]], true
}

// Cursor returns an iterator over row v. The cursor is a value — no
// allocation — and yields the row's entries in ascending order.
func (s *Store) Cursor(v int) Cursor {
	if s.enc == Raw {
		return Cursor{lab: s.lab[s.off[v]:s.off[v+1]]}
	}
	return Cursor{data: s.data[s.off[v]:s.off[v+1]], varint: true, prev: ^uint32(0)}
}

// AppendRow decodes row v onto dst and returns the extended slice. Works
// for both encodings; the raw path is a bulk copy.
func (s *Store) AppendRow(dst []uint32, v int) []uint32 {
	if s.enc == Raw {
		return append(dst, s.lab[s.off[v]:s.off[v+1]]...)
	}
	c := s.Cursor(v)
	for x, ok := c.Next(); ok; x, ok = c.Next() {
		dst = append(dst, x)
	}
	return dst
}

// Contains reports whether row v contains x. Raw rows binary-search;
// varint rows scan (rows are short and contiguous, and the scan stops at
// the first entry > x).
func (s *Store) Contains(v int, x uint32) bool {
	if row, ok := s.Row(v); ok {
		lo, hi := 0, len(row)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if row[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(row) && row[lo] == x
	}
	c := s.Cursor(v)
	for y, ok := c.Next(); ok; y, ok = c.Next() {
		if y >= x {
			return y == x
		}
	}
	return false
}

// Parts exposes the raw arrays for persistence: the offset table and,
// depending on encoding, the flat label array (Raw) or the varint byte
// stream (Varint). Callers must not mutate them.
func (s *Store) Parts() (off []uint32, lab []uint32, data []byte) {
	return s.off, s.lab, s.data
}

// Cursor iterates one row of a Store in ascending order. The zero value
// is an exhausted cursor.
type Cursor struct {
	lab    []uint32 // raw: remaining entries
	data   []byte   // varint: remaining bytes
	prev   uint32
	varint bool
}

// Next returns the next entry, or ok == false at the end of the row.
func (c *Cursor) Next() (uint32, bool) {
	if !c.varint {
		if len(c.lab) == 0 {
			return 0, false
		}
		x := c.lab[0]
		c.lab = c.lab[1:]
		return x, true
	}
	if len(c.data) == 0 {
		return 0, false
	}
	d, n := uvarint32(c.data)
	if n <= 0 {
		// Corrupt tail; validated stores never get here, and stopping is
		// the only alloc-free recovery.
		c.data = nil
		return 0, false
	}
	c.data = c.data[n:]
	c.prev += d + 1 // first entry: prev starts at ^0, so ^0+d+1 == d
	return c.prev, true
}

// FromRows freezes per-vertex rows (each sorted ascending, strictly
// increasing) into a Store under the requested encoding. Rows may be nil.
func FromRows(rows [][]uint32, enc Encoding) *Store {
	b := NewBuilder(len(rows))
	defer b.Release()
	for v, row := range rows {
		for _, x := range row {
			b.Append(v, x)
		}
	}
	return b.Freeze(enc)
}

// FromParts reconstructs a Raw store over existing arrays (typically
// views into a snapshot). The offset table is validated — monotone,
// n+1 entries, bounded by len(lab) — so corrupt offsets surface as an
// error here instead of an out-of-range panic on the first query.
// Row contents are not re-validated; snapshot integrity is the codec's
// checksum's job.
func FromParts(n int, off []uint32, lab []uint32) (*Store, error) {
	if err := checkOffsets(n, off, len(lab)); err != nil {
		return nil, err
	}
	return &Store{enc: Raw, n: n, entries: len(lab), off: off, lab: lab}, nil
}

// FromEncoded reconstructs a Varint store over existing arrays. Offsets
// are validated as in FromParts. When validate is true the entire stream
// is decoded once — truncated rows, overlong varints, and non-monotone
// deltas all surface as errors — and the entry count is exact; with
// validate false (mapped loads already protected by a whole-file
// checksum) the stream is trusted and the entry count comes from the
// caller.
func FromEncoded(n int, off []uint32, data []byte, entries int, validate bool) (*Store, error) {
	if err := checkOffsets(n, off, len(data)); err != nil {
		return nil, err
	}
	s := &Store{enc: Varint, n: n, entries: entries, off: off, data: data}
	if !validate {
		return s, nil
	}
	count := 0
	for v := 0; v < n; v++ {
		row := data[off[v]:off[v+1]]
		prev := ^uint32(0)
		first := true
		for len(row) > 0 {
			d, k := uvarint32(row)
			if k <= 0 {
				return nil, fmt.Errorf("labelstore: row %d: invalid varint at byte %d", v, int(off[v+1]-off[v])-len(row))
			}
			row = row[k:]
			next := prev + d + 1
			if !first && next <= prev {
				return nil, fmt.Errorf("labelstore: row %d: non-ascending entry", v)
			}
			prev = next
			first = false
			count++
		}
	}
	s.entries = count
	return s, nil
}

func checkOffsets(n int, off []uint32, limit int) error {
	if len(off) != n+1 {
		return fmt.Errorf("labelstore: offset table has %d entries, want %d", len(off), n+1)
	}
	if n >= 0 && len(off) > 0 {
		if off[0] != 0 {
			return fmt.Errorf("labelstore: offset table starts at %d, want 0", off[0])
		}
		for i := 1; i < len(off); i++ {
			if off[i] < off[i-1] {
				return fmt.Errorf("labelstore: offset table not monotone at %d", i)
			}
		}
		if int(off[n]) != limit {
			return fmt.Errorf("labelstore: offset table ends at %d, payload has %d", off[n], limit)
		}
	}
	return nil
}

// Builder accumulates per-vertex rows before freezing them flat. Row
// backing storage comes from chunked arenas that are recycled across
// builds through a pool, so repeated builds (reloads, benchmarks) stop
// paying per-row allocations.
type Builder struct {
	rows [][]uint32
	// arena blocks; blocks[:bi] are full, blocks[bi][bpos:] is free.
	blocks [][]uint32
	bi     int
	bpos   int
}

const (
	arenaBlockLen = 1 << 15 // uint32s per arena block (128 KiB)
	// Rows larger than this get dedicated heap slices instead of arena
	// space: doubling them inside blocks would waste half a block each.
	arenaMaxRow = arenaBlockLen / 8
)

var builderPool sync.Pool

// NewBuilder returns a builder for n rows, drawing recycled arena blocks
// from the package pool when available.
func NewBuilder(n int) *Builder {
	b, _ := builderPool.Get().(*Builder)
	if b == nil {
		b = &Builder{}
	}
	b.reset(n)
	return b
}

// Release returns the builder's arena to the pool. The builder must not
// be used afterwards; rows handed out by Row are invalidated.
func (b *Builder) Release() {
	b.rows = nil
	builderPool.Put(b)
}

func (b *Builder) reset(n int) {
	if cap(b.rows) >= n {
		b.rows = b.rows[:n]
		for i := range b.rows {
			b.rows[i] = nil
		}
	} else {
		b.rows = make([][]uint32, n)
	}
	b.bi, b.bpos = 0, 0
}

// alloc returns a zero-length slice with capacity c backed by the arena
// (or the heap for oversized rows).
func (b *Builder) alloc(c int) []uint32 {
	if c > arenaMaxRow {
		return make([]uint32, 0, c)
	}
	for {
		if b.bi < len(b.blocks) {
			if arenaBlockLen-b.bpos >= c {
				s := b.blocks[b.bi][b.bpos : b.bpos : b.bpos+c]
				b.bpos += c
				return s
			}
			b.bi++
			b.bpos = 0
			continue
		}
		b.blocks = append(b.blocks, make([]uint32, arenaBlockLen))
	}
}

// Append appends x to row v. Entries must arrive in strictly ascending
// order per row (the natural order for rank-ordered pruned labelings).
func (b *Builder) Append(v int, x uint32) {
	row := b.rows[v]
	if len(row) == cap(row) {
		c := cap(row) * 2
		if c == 0 {
			c = 4
		}
		nr := b.alloc(c)
		nr = nr[:len(row)]
		copy(nr, row)
		row = nr
	}
	b.rows[v] = append(row, x)
}

// InsertSorted inserts x into row v keeping ascending order; a duplicate
// is a no-op. Appending at the tail (the build-time common case) is O(1).
func (b *Builder) InsertSorted(v int, x uint32) {
	row := b.rows[v]
	if len(row) == 0 || x > row[len(row)-1] {
		b.Append(v, x)
		return
	}
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if row[lo] == x {
		return
	}
	b.Append(v, 0) // grow by one (value overwritten below)
	row = b.rows[v]
	copy(row[lo+1:], row[lo:])
	row[lo] = x
}

// Row returns the current contents of row v. The slice aliases builder
// storage and is invalidated by further mutation of that row or Release.
func (b *Builder) Row(v int) []uint32 { return b.rows[v] }

// Entries returns the total number of entries across all rows.
func (b *Builder) Entries() int {
	total := 0
	for _, r := range b.rows {
		total += len(r)
	}
	return total
}

// Freeze compacts the accumulated rows into an immutable Store under the
// requested encoding. The builder remains usable (and re-freezable)
// afterwards; call Release to recycle its arena.
func (b *Builder) Freeze(enc Encoding) *Store {
	n := len(b.rows)
	off := make([]uint32, n+1)
	entries := b.Entries()
	s := &Store{enc: enc, n: n, entries: entries, off: off}
	if enc == Raw {
		lab := make([]uint32, 0, entries)
		for v, row := range b.rows {
			off[v] = uint32(len(lab))
			lab = append(lab, row...)
		}
		off[n] = uint32(len(lab))
		s.lab = lab
		return s
	}
	data := make([]byte, 0, entries) // lower bound; grows as needed
	for v, row := range b.rows {
		off[v] = uint32(len(data))
		prev := ^uint32(0)
		for _, x := range row {
			data = append(data, appendUvarint32(nil, x-prev-1)...)
			prev = x
		}
	}
	off[n] = uint32(len(data))
	s.data = data
	return s
}

// Words is a flat matrix of fixed-width uint64 rows — the storage shape
// of Bloom-filter labels (BFL) and other per-vertex bitsets. Row v is
// W[v*Stride : (v+1)*Stride].
type Words struct {
	Stride int
	W      []uint64
}

// Row returns row v; the subslice aliases the backing array.
func (m Words) Row(v int) []uint64 { return m.W[v*m.Stride : (v+1)*m.Stride] }

// Bytes is the resident size of the backing array.
func (m Words) Bytes() int { return len(m.W) * 8 }
