package labelstore

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomRows(t *testing.T, n, maxLen int, seed int64) [][]uint32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]uint32, n)
	for v := range rows {
		l := rng.Intn(maxLen + 1)
		seen := map[uint32]bool{}
		for len(rows[v]) < l {
			x := uint32(rng.Intn(1 << 20))
			if rng.Intn(50) == 0 {
				x = uint32(rng.Uint64()) // occasionally huge: exercise long varints
			}
			if !seen[x] {
				seen[x] = true
				rows[v] = append(rows[v], x)
			}
		}
		sortU32(rows[v])
	}
	return rows
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	rows := randomRows(t, 200, 30, 1)
	for _, enc := range []Encoding{Raw, Varint} {
		s := FromRows(rows, enc)
		if s.N() != len(rows) {
			t.Fatalf("%v: N=%d want %d", enc, s.N(), len(rows))
		}
		want := 0
		for v, row := range rows {
			want += len(row)
			got := s.AppendRow(nil, v)
			if len(got) == 0 && len(row) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, row) {
				t.Fatalf("%v: row %d = %v want %v", enc, v, got, row)
			}
			// Cursor agrees.
			c := s.Cursor(v)
			for i, x := range row {
				y, ok := c.Next()
				if !ok || y != x {
					t.Fatalf("%v: row %d cursor[%d] = %d,%v want %d", enc, v, i, y, ok, x)
				}
			}
			if _, ok := c.Next(); ok {
				t.Fatalf("%v: row %d cursor overruns", enc, v)
			}
		}
		if s.Entries() != want {
			t.Fatalf("%v: entries=%d want %d", enc, s.Entries(), want)
		}
	}
}

func TestStoreContains(t *testing.T) {
	rows := randomRows(t, 100, 20, 2)
	for _, enc := range []Encoding{Raw, Varint} {
		s := FromRows(rows, enc)
		for v, row := range rows {
			for _, x := range row {
				if !s.Contains(v, x) {
					t.Fatalf("%v: Contains(%d, %d) = false", enc, v, x)
				}
			}
			for _, x := range []uint32{0, 7, 1 << 21, ^uint32(0)} {
				want := false
				for _, y := range row {
					if y == x {
						want = true
					}
				}
				if s.Contains(v, x) != want {
					t.Fatalf("%v: Contains(%d, %d) = %v want %v", enc, v, x, !want, want)
				}
			}
		}
	}
}

func TestRowRawOnly(t *testing.T) {
	rows := [][]uint32{{1, 5, 9}, {}, {2}}
	raw := FromRows(rows, Raw)
	if r, ok := raw.Row(0); !ok || !reflect.DeepEqual(r, []uint32{1, 5, 9}) {
		t.Fatalf("raw Row(0) = %v,%v", r, ok)
	}
	vi := FromRows(rows, Varint)
	if _, ok := vi.Row(0); ok {
		t.Fatal("varint Row should report ok=false")
	}
}

func TestFromPartsValidation(t *testing.T) {
	lab := []uint32{1, 2, 3}
	cases := []struct {
		name string
		n    int
		off  []uint32
	}{
		{"short table", 2, []uint32{0, 3}},
		{"bad start", 2, []uint32{1, 2, 3}},
		{"non-monotone", 2, []uint32{0, 2, 1}},
		{"end mismatch", 2, []uint32{0, 1, 2}},
	}
	for _, tc := range cases {
		if _, err := FromParts(tc.n, tc.off, lab); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	s, err := FromParts(2, []uint32{0, 1, 3}, lab)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.AppendRow(nil, 1); !reflect.DeepEqual(got, []uint32{2, 3}) {
		t.Fatalf("row 1 = %v", got)
	}
}

func TestFromEncodedValidation(t *testing.T) {
	// Build a known-good stream, then corrupt it.
	rows := [][]uint32{{3, 10}, {0}}
	s := FromRows(rows, Varint)
	off, _, data := s.Parts()

	good, err := FromEncoded(2, off, data, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if good.Entries() != 3 {
		t.Fatalf("entries = %d want 3", good.Entries())
	}

	// Truncated varint: continuation bit set at end of row.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] |= 0x80
	if _, err := FromEncoded(2, off, bad, 0, true); err == nil {
		t.Fatal("truncated varint accepted")
	}

	// Overlong encoding: 0x80 0x00 decodes to 0 non-canonically.
	over := []byte{0x80, 0x00}
	if _, err := FromEncoded(1, []uint32{0, 2}, over, 0, true); err == nil {
		t.Fatal("overlong varint accepted")
	}

	// >32-bit value in 5th byte.
	big := []byte{0xff, 0xff, 0xff, 0xff, 0x10}
	if _, err := FromEncoded(1, []uint32{0, 5}, big, 0, true); err == nil {
		t.Fatal("33-bit varint accepted")
	}

	// Non-ascending rows can't be expressed (delta-1 always advances by
	// >= 1), but a wrap past ^uint32(0) is non-ascending: first entry
	// ^0 (delta ^0-1... ) — encode max then anything wraps.
	wrap := appendUvarint32(nil, ^uint32(0)-0) // first entry = ^0
	wrap = appendUvarint32(wrap, 0)            // next would wrap to 0
	if _, err := FromEncoded(1, []uint32{0, uint32(len(wrap))}, wrap, 0, true); err == nil {
		t.Fatal("wrapping row accepted")
	}
}

func TestBuilderInsertSorted(t *testing.T) {
	b := NewBuilder(1)
	defer b.Release()
	for _, x := range []uint32{5, 1, 9, 5, 3, 7, 0} {
		b.InsertSorted(0, x)
	}
	want := []uint32{0, 1, 3, 5, 7, 9}
	if got := b.Row(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("row = %v want %v", got, want)
	}
	s := b.Freeze(Raw)
	if got := s.AppendRow(nil, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("frozen = %v want %v", got, want)
	}
}

func TestBuilderPoolReuse(t *testing.T) {
	b := NewBuilder(10)
	for v := 0; v < 10; v++ {
		for x := uint32(0); x < 100; x++ {
			b.Append(v, x)
		}
	}
	b.Freeze(Raw)
	b.Release()
	// Reacquire: rows must be clean even if the arena is recycled.
	b2 := NewBuilder(10)
	defer b2.Release()
	for v := 0; v < 10; v++ {
		if len(b2.Row(v)) != 0 {
			t.Fatalf("recycled builder row %d not empty", v)
		}
	}
	b2.Append(3, 42)
	s := b2.Freeze(Varint)
	if got := s.AppendRow(nil, 3); !reflect.DeepEqual(got, []uint32{42}) {
		t.Fatalf("row 3 = %v", got)
	}
	if s.Entries() != 1 {
		t.Fatalf("entries = %d", s.Entries())
	}
}

func TestBuilderLargeRows(t *testing.T) {
	// Rows past arenaMaxRow fall back to dedicated slices; contents must
	// survive the growth path either way.
	b := NewBuilder(2)
	defer b.Release()
	n := arenaMaxRow*2 + 17
	for i := 0; i < n; i++ {
		b.Append(0, uint32(i*3))
		b.Append(1, uint32(i*5))
	}
	s := b.Freeze(Raw)
	r0, _ := s.Row(0)
	if len(r0) != n || r0[n-1] != uint32((n-1)*3) {
		t.Fatalf("row 0 len=%d last=%d", len(r0), r0[len(r0)-1])
	}
}

func TestVarintCanonical(t *testing.T) {
	vals := []uint32{0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 1 << 21, 1 << 28, ^uint32(0)}
	for _, v := range vals {
		enc := appendUvarint32(nil, v)
		if len(enc) > maxUvarint32Len {
			t.Fatalf("%d: %d bytes", v, len(enc))
		}
		got, n := uvarint32(enc)
		if n != len(enc) || got != v {
			t.Fatalf("%d: decoded %d (n=%d, len=%d)", v, got, n, len(enc))
		}
		// Trailing bytes must not be consumed.
		got2, n2 := uvarint32(append(enc, 0xde))
		if got2 != v || n2 != len(enc) {
			t.Fatalf("%d: with tail decoded %d n=%d", v, got2, n2)
		}
	}
	if _, n := uvarint32(nil); n != 0 {
		t.Fatalf("empty: n=%d", n)
	}
	if _, n := uvarint32([]byte{0x80}); n != 0 {
		t.Fatalf("truncated: n=%d", n)
	}
	if _, n := uvarint32([]byte{0x81, 0x00}); n >= 0 {
		t.Fatalf("overlong accepted: n=%d", n)
	}
	if _, n := uvarint32([]byte{0xff, 0xff, 0xff, 0xff, 0xff}); n >= 0 {
		t.Fatalf("overflow accepted: n=%d", n)
	}
}

func TestWords(t *testing.T) {
	m := Words{Stride: 2, W: make([]uint64, 8)}
	m.Row(3)[1] = 99
	if m.W[7] != 99 {
		t.Fatal("Row does not alias backing array")
	}
	if m.Bytes() != 64 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestFootprint(t *testing.T) {
	rows := randomRows(t, 500, 20, 3)
	raw := FromRows(rows, Raw)
	vi := FromRows(rows, Varint)
	fr, fv := raw.Footprint(), vi.Footprint()
	if fr.Offsets != 501*4 || fv.Offsets != 501*4 {
		t.Fatalf("offsets: %d / %d", fr.Offsets, fv.Offsets)
	}
	if fr.Labels != raw.Entries()*4 {
		t.Fatalf("raw labels = %d want %d", fr.Labels, raw.Entries()*4)
	}
	if fv.Labels <= 0 || fv.Total() <= 0 {
		t.Fatalf("varint footprint %+v", fv)
	}
}

func BenchmarkCursorVarint(b *testing.B) {
	rows := make([][]uint32, 1)
	for x := uint32(0); x < 64; x++ {
		rows[0] = append(rows[0], x*7)
	}
	s := FromRows(rows, Varint)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		c := s.Cursor(0)
		for x, ok := c.Next(); ok; x, ok = c.Next() {
			sink += x
		}
	}
	_ = sink
}
