package labelstore

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the varint label decoder through
// FromEncoded: the input is split into an offset table and a payload, and
// the decoder must either reject it with an error or produce rows that
// re-encode to the identical stream (canonical-form round trip). It must
// never panic, whatever the offsets or stream bytes claim.
func FuzzDecode(f *testing.F) {
	seed := func(n int, off []uint32, data []byte) {
		buf := []byte{byte(n)}
		for _, o := range off {
			buf = binary.LittleEndian.AppendUint32(buf, o)
		}
		f.Add(buf, data)
	}
	// Valid single-row stream: [3, 10] -> delta-1 varints {3, 6}.
	seed(1, []uint32{0, 2}, []byte{0x03, 0x06})
	// Empty store.
	seed(0, []uint32{0}, nil)
	// Two rows, second empty.
	seed(2, []uint32{0, 2, 2}, []byte{0x00, 0x00})
	// Truncated varint (continuation bit at end of row).
	seed(1, []uint32{0, 1}, []byte{0x80})
	// Overlong encoding of 0.
	seed(1, []uint32{0, 2}, []byte{0x80, 0x00})
	// 33-bit overflow in the 5th byte.
	seed(1, []uint32{0, 5}, []byte{0xff, 0xff, 0xff, 0xff, 0x10})
	// Non-monotone offsets.
	seed(2, []uint32{0, 2, 1}, []byte{0x01, 0x01})
	// Offset past payload end.
	seed(1, []uint32{0, 9}, []byte{0x01})
	// Wrapping row: first entry ^uint32(0), then any delta wraps.
	seed(1, []uint32{0, 6}, append(appendUvarint32(nil, ^uint32(0)), 0x00))
	// Multi-byte deltas.
	seed(1, []uint32{0, 7}, append(appendUvarint32(appendUvarint32(nil, 0x5000), 0x243F5), 0x01))

	f.Fuzz(func(t *testing.T, head, data []byte) {
		if len(head) < 1 {
			return
		}
		n := int(head[0] % 33)
		head = head[1:]
		if len(head) < (n+1)*4 {
			return
		}
		off := make([]uint32, n+1)
		for i := range off {
			off[i] = binary.LittleEndian.Uint32(head[i*4:])
		}
		s, err := FromEncoded(n, off, data, 0, true)
		if err != nil {
			return
		}
		// Accepted: every row must decode ascending and re-encode to the
		// exact input bytes (canonical form is unique).
		re := make([]byte, 0, len(data))
		entries := 0
		for v := 0; v < n; v++ {
			if int(off[v]) != len(re) {
				t.Fatalf("row %d starts at %d, re-encoded %d", v, off[v], len(re))
			}
			prev := ^uint32(0)
			first := true
			c := s.Cursor(v)
			for x, ok := c.Next(); ok; x, ok = c.Next() {
				if !first && x <= prev {
					t.Fatalf("row %d not ascending: %d after %d", v, x, prev)
				}
				re = appendUvarint32(re, x-prev-1)
				prev = x
				first = false
				entries++
			}
		}
		if len(re) != len(data) || string(re) != string(data) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data)
		}
		if entries != s.Entries() {
			t.Fatalf("entries %d vs %d", entries, s.Entries())
		}
	})
}

// FuzzVarint round-trips single values and checks the decoder rejects
// exactly the non-canonical forms.
func FuzzVarint(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x7f})
	f.Add([]byte{0x80, 0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x10})
	f.Add([]byte{0x80, 0x00})
	f.Fuzz(func(t *testing.T, buf []byte) {
		v, n := uvarint32(buf)
		if n <= 0 {
			return
		}
		if n > maxUvarint32Len || n > len(buf) {
			t.Fatalf("n=%d out of range", n)
		}
		enc := appendUvarint32(nil, v)
		if len(enc) != n || string(enc) != string(buf[:n]) {
			t.Fatalf("decode %x -> %d re-encodes %x", buf[:n], v, enc)
		}
	})
}
