package labelstore

// The 2-hop query kernel, shared by PLL (and its TFL/DL/HL orders) and
// TOL: Qr(s, t) holds iff Lout(s) ∩ Lin(t) ≠ ∅, rt ∈ Lout(s), or
// rs ∈ Lin(t), where rs/rt are the endpoints' own ranks. Two variants
// cover the two physical layouts — plain sorted slices (raw rows,
// builder rows, thawed dynamic rows) and Cursors (which also iterate
// varint rows without materializing them). Both are single forward
// merges: contiguous, branch-predictable, 0 allocs.

// CoverRows answers the 2-hop cover query over sorted slice rows.
func CoverRows(ls, lt []uint32, rs, rt uint32) bool {
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i] == lt[j]:
			return true
		case ls[i] < lt[j]:
			if ls[i] == rt {
				return true // t ∈ Lout(s)
			}
			i++
		default:
			if lt[j] == rs {
				return true // s ∈ Lin(t)
			}
			j++
		}
	}
	for ; i < len(ls); i++ {
		if ls[i] == rt {
			return true
		}
	}
	for ; j < len(lt); j++ {
		if lt[j] == rs {
			return true
		}
	}
	return false
}

// CoverCursors answers the same query over cursors.
func CoverCursors(cs, ct Cursor, rs, rt uint32) bool {
	a, aok := cs.Next()
	b, bok := ct.Next()
	for aok && bok {
		switch {
		case a == b:
			return true
		case a < b:
			if a == rt {
				return true
			}
			a, aok = cs.Next()
		default:
			if b == rs {
				return true
			}
			b, bok = ct.Next()
		}
	}
	for ; aok; a, aok = cs.Next() {
		if a == rt {
			return true
		}
	}
	for ; bok; b, bok = ct.Next() {
		if b == rs {
			return true
		}
	}
	return false
}

// SliceCursor adapts a sorted slice row to the Cursor iteration API, so
// mixed-layout merges (a thawed dynamic row against a frozen varint row)
// go through one code path.
func SliceCursor(row []uint32) Cursor { return Cursor{lab: row} }
