package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// IndexMetrics accumulates the per-index query signals of §3.3/§5: how
// often the index alone decided (TryReach), how often guided traversal had
// to run and how much of the graph it touched, and the latency and
// positive/negative split of every Reach call.
//
// The representation is chosen so a decided (index-only) query costs a
// single atomic add: the total query count is Positive+Negative, and the
// decided count is Queries-Fallback — only fallbacks, which already pay
// for a traversal, record extra counters. Latency may be sampled by the
// recorder (see core.Instrumented), so Latency.Count can be below Queries.
type IndexMetrics struct {
	Positive Counter // queries answered true
	Negative Counter // queries answered false
	Fallback Counter // required guided traversal
	Visited  Counter // total vertices expanded across all fallbacks

	Batches      Counter // BatchReach invocations routed through this index
	BatchQueries Counter // queries submitted via batches

	Latency Histogram

	// sampleStride is the recorder's latency sampling rate: 1 in every
	// sampleStride queries records into Latency (0 or 1 = every query).
	// Set once by the recorder (core.Instrument); exported via snapshots
	// so /metrics consumers can rescale sampled histogram counts back to
	// the exact query totals.
	sampleStride atomic.Int64

	// Resident footprint of the index, split by section (offset tables,
	// label payloads, auxiliary structures). Set once after build/load via
	// SetFootprint; gauges, not counters.
	fpOffsets, fpLabels, fpAux atomic.Int64
}

// SetFootprint records the index's resident footprint in bytes, split by
// section: CSR offset tables, label payloads, and auxiliary structures
// (ranks, DFS intervals, condensation maps, ...).
func (m *IndexMetrics) SetFootprint(offsets, labels, aux int64) {
	m.fpOffsets.Store(offsets)
	m.fpLabels.Store(labels)
	m.fpAux.Store(aux)
}

// SetLatencySampleStride records the recorder's latency sampling rate.
func (m *IndexMetrics) SetLatencySampleStride(stride int64) { m.sampleStride.Store(stride) }

// LatencySampleStride reports the sampling rate (0 when never set).
func (m *IndexMetrics) LatencySampleStride() int64 { return m.sampleStride.Load() }

// Observe records one completed query with its latency.
func (m *IndexMetrics) Observe(positive bool, d time.Duration) {
	m.ObserveOutcome(positive)
	m.Latency.Record(d)
}

// ObserveOutcome records one completed query without latency — the
// single-atomic-add path the instrumented wrapper uses on unsampled calls.
func (m *IndexMetrics) ObserveOutcome(positive bool) {
	if positive {
		m.Positive.Inc()
	} else {
		m.Negative.Inc()
	}
}

// Queries returns the total number of observed queries.
func (m *IndexMetrics) Queries() int64 { return m.Positive.Load() + m.Negative.Load() }

// ObserveProbe records the probe-level outcome of one query on a partial
// index: decided reports whether TryReach settled it, visited is the
// number of vertices the guided fallback expanded (0 when decided).
// Decided queries are free here — the decided count is derived as
// Queries-Fallback at snapshot time.
func (m *IndexMetrics) ObserveProbe(decided bool, visited int) {
	if decided {
		return
	}
	m.Fallback.Inc()
	m.Visited.Add(int64(visited))
}

// ObserveBatch records one batch submission of n queries.
func (m *IndexMetrics) ObserveBatch(n int) {
	m.Batches.Inc()
	m.BatchQueries.Add(int64(n))
}

// IndexSnapshot is a point-in-time view of IndexMetrics. Queries is
// always Positive+Negative and Decided is Queries-Fallback; Latency.Count
// may be lower than Queries when the recorder samples timing. Because
// Decided is derived from counters read at slightly different instants,
// it can transiently overestimate during concurrent load (it is exact at
// rest and never negative).
type IndexSnapshot struct {
	Queries  int64 `json:"queries"`
	Positive int64 `json:"positive"`
	Negative int64 `json:"negative"`
	Decided  int64 `json:"decided"`
	Fallback int64 `json:"fallback"`
	Visited  int64 `json:"visited"`

	Batches      int64 `json:"batches,omitempty"`
	BatchQueries int64 `json:"batch_queries,omitempty"`

	Latency HistSnapshot `json:"latency"`

	// LatencySampleStride is the recorder's sampling rate: 1 in every
	// this-many queries is timed, so Latency.Count ≈ Queries/stride and
	// scrapers multiply sampled counts by it to estimate totals. 0 or 1
	// means every query was timed.
	LatencySampleStride int64 `json:"latency_sample_stride,omitempty"`

	// Resident footprint in bytes, split by section (see SetFootprint).
	// Bytes is the total; all four are zero when the footprint was never
	// recorded.
	Bytes        int64 `json:"bytes,omitempty"`
	BytesOffsets int64 `json:"bytes_offsets,omitempty"`
	BytesLabels  int64 `json:"bytes_labels,omitempty"`
	BytesAux     int64 `json:"bytes_aux,omitempty"`
}

// DecidedRate is the fraction of queries the index settled without guided
// traversal — the paper's §3.3 measure of a partial index's pruning power
// (1.0 for complete indexes, which never fall back).
func (s IndexSnapshot) DecidedRate() float64 { return rate(s.Decided, s.Queries) }

// FallbackRate is 1 - DecidedRate.
func (s IndexSnapshot) FallbackRate() float64 { return rate(s.Fallback, s.Queries) }

func rate(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// Snapshot captures the current values. Fallback is read before Positive
// and Negative so that derived Decided never goes negative; the derived
// Queries is monotone across concurrent snapshots because each underlying
// counter only grows.
func (m *IndexMetrics) Snapshot() IndexSnapshot {
	fb := m.Fallback.Load()
	pos, neg := m.Positive.Load(), m.Negative.Load()
	decided := pos + neg - fb
	if decided < 0 {
		decided = 0
	}
	off, lab, aux := m.fpOffsets.Load(), m.fpLabels.Load(), m.fpAux.Load()
	return IndexSnapshot{
		Queries:             pos + neg,
		Positive:            pos,
		Negative:            neg,
		Decided:             decided,
		Fallback:            fb,
		Visited:             m.Visited.Load(),
		Batches:             m.Batches.Load(),
		BatchQueries:        m.BatchQueries.Load(),
		Latency:             m.Latency.Snapshot(),
		LatencySampleStride: m.sampleStride.Load(),
		Bytes:               off + lab + aux,
		BytesOffsets:        off,
		BytesLabels:         lab,
		BytesAux:            aux,
	}
}

// RouteKind enumerates DB.Query routing decisions (§2.2 constraint classes
// plus the plain-Reach path and registered constraint indexes).
type RouteKind int

// Routing classes.
const (
	RoutePlain       RouteKind = iota // plain reachability (Reach, trivially-plain constraints)
	RouteLCR                          // alternation constraints → LCR index (§4.1)
	RouteRLC                          // concatenation constraints → RLC index (§4.2)
	RouteRegistered                   // registered per-constraint index (§5)
	RouteProduct                      // general constraints → product-automaton search (§2.3)
	RouteDegradedLCR                  // alternation constraints served by online traversal (LCR index unavailable)
	RouteDegradedRLC                  // concatenation constraints served by online traversal (RLC index unavailable)
	NumRoutes
)

func (k RouteKind) String() string {
	switch k {
	case RoutePlain:
		return "plain"
	case RouteLCR:
		return "lcr"
	case RouteRLC:
		return "rlc"
	case RouteRegistered:
		return "registered"
	case RouteProduct:
		return "product"
	case RouteDegradedLCR:
		return "degraded-lcr"
	case RouteDegradedRLC:
		return "degraded-rlc"
	}
	return fmt.Sprintf("route(%d)", int(k))
}

// RouteMetrics accumulates per-class DB.Query statistics.
type RouteMetrics struct {
	Queries  Counter
	Positive Counter
	Negative Counter
	Latency  Histogram
}

// Observe records one routed query.
func (m *RouteMetrics) Observe(positive bool, d time.Duration) {
	m.Queries.Inc()
	if positive {
		m.Positive.Inc()
	} else {
		m.Negative.Inc()
	}
	m.Latency.Record(d)
}

// RouteSnapshot is a point-in-time view of RouteMetrics.
type RouteSnapshot struct {
	Queries  int64        `json:"queries"`
	Positive int64        `json:"positive"`
	Negative int64        `json:"negative"`
	Latency  HistSnapshot `json:"latency"`
}

// CacheSnapshot is a point-in-time view of the DB's query-result cache
// (see DBConfig.CacheSize): the cache/* counters of OBSERVABILITY.md.
type CacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// HitRate is the fraction of cache lookups answered without touching an
// index or traversal.
func (s CacheSnapshot) HitRate() float64 { return rate(s.Hits, s.Hits+s.Misses) }

// DBMetrics is the DB-level metrics root: build-phase spans, per-class
// routing counters, per-index query metrics, and error/fault counters.
type DBMetrics struct {
	Build    Spans
	Errors   Counter
	Panics   Counter // index panics contained at the query boundary (ErrIndexPanic)
	Canceled Counter // builds/queries abandoned via context cancellation

	routes [NumRoutes]RouteMetrics

	mu       sync.Mutex
	indexes  map[string]*IndexMetrics
	degraded []string
	cacheFn  func() CacheSnapshot
	mutation *MutationMetrics
	advisor  *AdvisorMetrics
}

// NewDBMetrics returns an empty metrics root.
func NewDBMetrics() *DBMetrics {
	return &DBMetrics{indexes: make(map[string]*IndexMetrics)}
}

// Route returns the metrics cell for one routing class.
func (m *DBMetrics) Route(k RouteKind) *RouteMetrics { return &m.routes[k] }

// SetDegraded records which serving routes run in degraded (index-free)
// mode; the list appears verbatim in every later Snapshot.
func (m *DBMetrics) SetDegraded(names []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.degraded = append([]string(nil), names...)
}

// SetCacheSource installs the query-result cache's stats provider; every
// later Snapshot carries its point-in-time CacheSnapshot. A nil source
// (the default) omits the cache section entirely.
func (m *DBMetrics) SetCacheSource(f func() CacheSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheFn = f
}

// Index returns (creating on first use) the metrics cell for the named
// index. The returned pointer is stable and safe for concurrent recording.
func (m *DBMetrics) Index(name string) *IndexMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	im := m.indexes[name]
	if im == nil {
		im = &IndexMetrics{}
		m.indexes[name] = im
	}
	return im
}

// Snapshot is a point-in-time view of everything a DBMetrics recorded.
type Snapshot struct {
	Indexes  map[string]IndexSnapshot `json:"indexes"`
	Routes   map[string]RouteSnapshot `json:"routes"`
	Build    []PhaseSpan              `json:"build,omitempty"`
	Cache    *CacheSnapshot           `json:"cache,omitempty"`
	Mutation *MutationSnapshot        `json:"mutation,omitempty"`
	Advisor  *AdvisorSnapshot         `json:"advisor,omitempty"`
	Errors   int64                    `json:"errors"`
	Panics   int64                    `json:"panics,omitempty"`
	Canceled int64                    `json:"canceled,omitempty"`
	Degraded []string                 `json:"degraded,omitempty"`
}

// Snapshot captures all metrics. It may run concurrently with recording;
// every counter it reads is individually monotone.
func (m *DBMetrics) Snapshot() Snapshot {
	s := Snapshot{
		Indexes:  make(map[string]IndexSnapshot),
		Routes:   make(map[string]RouteSnapshot),
		Build:    m.Build.Snapshot(),
		Errors:   m.Errors.Load(),
		Panics:   m.Panics.Load(),
		Canceled: m.Canceled.Load(),
	}
	m.mu.Lock()
	cells := make(map[string]*IndexMetrics, len(m.indexes))
	for name, im := range m.indexes {
		cells[name] = im
	}
	if len(m.degraded) > 0 {
		s.Degraded = append([]string(nil), m.degraded...)
	}
	cacheFn := m.cacheFn
	mutation := m.mutation
	advisor := m.advisor
	m.mu.Unlock()
	if cacheFn != nil {
		cs := cacheFn()
		s.Cache = &cs
	}
	if mutation != nil {
		ms := mutation.Snapshot()
		s.Mutation = &ms
	}
	if advisor != nil {
		as := advisor.Snapshot()
		s.Advisor = &as
	}
	for name, im := range cells {
		s.Indexes[name] = im.Snapshot()
	}
	for k := RouteKind(0); k < NumRoutes; k++ {
		rm := &m.routes[k]
		if rm.Queries.Load() == 0 {
			continue
		}
		s.Routes[k.String()] = RouteSnapshot{
			Queries:  rm.Queries.Load(),
			Positive: rm.Positive.Load(),
			Negative: rm.Negative.Load(),
			Latency:  rm.Latency.Snapshot(),
		}
	}
	return s
}

// Publish registers this metrics root under name in the process-wide
// expvar registry (visible on /debug/vars). Publishing the same name
// twice is a no-op rather than the expvar panic, so DBs can be rebuilt.
func (m *DBMetrics) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}

// WriteText renders the snapshot as the human-readable dump printed by
// `reachcli stats` and `reachbench -metrics`.
func (s Snapshot) WriteText(w io.Writer) {
	if len(s.Build) > 0 {
		fmt.Fprintln(w, "build phases:")
		for _, sp := range s.Build {
			fmt.Fprintf(w, "  %*s%-24s %v\n", 2*sp.Depth, "", sp.Name, sp.Dur)
		}
	}
	if len(s.Indexes) > 0 {
		fmt.Fprintln(w, "indexes:")
		for _, name := range sortedKeys(s.Indexes) {
			is := s.Indexes[name]
			fmt.Fprintf(w, "  %-14s queries=%d (+%d/-%d)", name, is.Queries, is.Positive, is.Negative)
			if is.Decided+is.Fallback > 0 {
				fmt.Fprintf(w, " decided=%.1f%% fallback=%d visited=%d",
					100*is.DecidedRate(), is.Fallback, is.Visited)
			}
			if is.Batches > 0 {
				fmt.Fprintf(w, " batches=%d batch_queries=%d", is.Batches, is.BatchQueries)
			}
			if is.Bytes > 0 {
				fmt.Fprintf(w, " bytes=%d (off=%d lab=%d aux=%d)",
					is.Bytes, is.BytesOffsets, is.BytesLabels, is.BytesAux)
			}
			fmt.Fprintf(w, " p50=%v p99=%v", is.Latency.P50, is.Latency.P99)
			if is.LatencySampleStride > 1 {
				fmt.Fprintf(w, " (latency sampled 1/%d)", is.LatencySampleStride)
			}
			fmt.Fprintln(w)
		}
	}
	if len(s.Routes) > 0 {
		fmt.Fprintln(w, "routes:")
		for _, name := range sortedKeys(s.Routes) {
			rs := s.Routes[name]
			fmt.Fprintf(w, "  %-14s queries=%d (+%d/-%d) p50=%v p99=%v\n",
				name, rs.Queries, rs.Positive, rs.Negative, rs.Latency.P50, rs.Latency.P99)
		}
	}
	if s.Cache != nil {
		fmt.Fprintf(w, "cache: hits=%d misses=%d hit-rate=%.1f%% evictions=%d entries=%d/%d\n",
			s.Cache.Hits, s.Cache.Misses, 100*s.Cache.HitRate(),
			s.Cache.Evictions, s.Cache.Entries, s.Cache.Capacity)
	}
	if s.Mutation != nil {
		s.Mutation.writeText(w)
	}
	if s.Advisor != nil {
		s.Advisor.writeText(w)
	}
	if len(s.Degraded) > 0 {
		fmt.Fprintf(w, "degraded routes: %s\n", strings.Join(s.Degraded, ", "))
	}
	if s.Errors > 0 {
		fmt.Fprintf(w, "errors: %d\n", s.Errors)
	}
	if s.Panics > 0 {
		fmt.Fprintf(w, "panics: %d\n", s.Panics)
	}
	if s.Canceled > 0 {
		fmt.Fprintf(w, "canceled: %d\n", s.Canceled)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
