package obs

import (
	"sync"
	"time"
)

// PhaseSpan is one named, timed build phase. Depth encodes the hierarchy:
// a span started while another is open is its child (depth parent+1), so
// e.g. the BFL filter passes nest under the SCC-lifted "index/build" span.
type PhaseSpan struct {
	Name  string        `json:"name"`
	Depth int           `json:"depth"`
	Dur   time.Duration `json:"dur_ns"`
	// Workers is the worker-pool size that executed the phase: 0 for
	// phases without a parallel fan-out, 1 for an explicitly serial run
	// of a parallelizable phase, n > 1 for a pool of n (see
	// reach.Options.Workers and OBSERVABILITY.md).
	Workers int `json:"workers,omitempty"`
	// Cached marks a phase answered from a shared preprocessing cache
	// (core.Prepared) instead of being recomputed: the span is emitted so
	// the build timeline stays complete, but its duration is the cache
	// lookup, not the phase's real cost.
	Cached bool `json:"cached,omitempty"`
}

// Spans records hierarchical build-phase spans. Start/end pairs must nest
// (LIFO) within one recorder; construction code is sequential at the
// phase granularity instrumented here. A nil *Spans is valid and records
// nothing, which is the disabled fast path every builder relies on.
type Spans struct {
	mu    sync.Mutex
	spans []PhaseSpan
	depth int
}

// Start opens a named phase and returns the closure that ends it:
//
//	end := spans.Start("scc/condense")
//	... phase work ...
//	end()
func (s *Spans) Start(name string) func() {
	return s.StartN(name, 0)
}

// StartN is Start for a phase executed by a parallel fan-out: the span
// additionally records the resolved worker-pool size (its `workers`
// attribute). Pass 1 when a parallelizable phase ran serially.
func (s *Spans) StartN(name string, workers int) func() {
	return s.start(PhaseSpan{Name: name, Workers: workers})
}

// StartCached is Start for a phase that may be served from a shared
// preprocessing cache: the span records whether the result was memoized
// (its `cached` attribute) so operators can tell a 50µs cache hit from a
// 50µs recomputation.
func (s *Spans) StartCached(name string, cached bool) func() {
	return s.start(PhaseSpan{Name: name, Cached: cached})
}

func (s *Spans) start(span PhaseSpan) func() {
	if s == nil {
		return func() {}
	}
	s.mu.Lock()
	idx := len(s.spans)
	span.Depth = s.depth
	s.spans = append(s.spans, span)
	s.depth++
	s.mu.Unlock()
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		s.mu.Lock()
		s.spans[idx].Dur = d
		s.depth--
		s.mu.Unlock()
	}
}

// Snapshot returns the recorded spans in start order.
func (s *Spans) Snapshot() []PhaseSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PhaseSpan, len(s.spans))
	copy(out, s.spans)
	return out
}

// Reset discards all recorded spans.
func (s *Spans) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.spans, s.depth = nil, 0
	s.mu.Unlock()
}
