package obs

import (
	"sync"
	"time"
)

// PhaseSpan is one named, timed build phase. Depth encodes the hierarchy:
// a span started while another is open is its child (depth parent+1), so
// e.g. the BFL filter passes nest under the SCC-lifted "index/build" span.
type PhaseSpan struct {
	Name  string        `json:"name"`
	Depth int           `json:"depth"`
	Dur   time.Duration `json:"dur_ns"`
}

// Spans records hierarchical build-phase spans. Start/end pairs must nest
// (LIFO) within one recorder; construction code is sequential at the
// phase granularity instrumented here. A nil *Spans is valid and records
// nothing, which is the disabled fast path every builder relies on.
type Spans struct {
	mu    sync.Mutex
	spans []PhaseSpan
	depth int
}

// Start opens a named phase and returns the closure that ends it:
//
//	end := spans.Start("scc/condense")
//	... phase work ...
//	end()
func (s *Spans) Start(name string) func() {
	if s == nil {
		return func() {}
	}
	s.mu.Lock()
	idx := len(s.spans)
	s.spans = append(s.spans, PhaseSpan{Name: name, Depth: s.depth})
	s.depth++
	s.mu.Unlock()
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		s.mu.Lock()
		s.spans[idx].Dur = d
		s.depth--
		s.mu.Unlock()
	}
}

// Snapshot returns the recorded spans in start order.
func (s *Spans) Snapshot() []PhaseSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PhaseSpan, len(s.spans))
	copy(out, s.spans)
	return out
}

// Reset discards all recorded spans.
func (s *Spans) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.spans, s.depth = nil, 0
	s.mu.Unlock()
}
