package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestHistogramBucketsAndPercentiles(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow: p50 must land near the fast cluster,
	// p99 near the slow one (buckets are power-of-two, answers within 2x).
	for i := 0; i < 90; i++ {
		h.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 < 50*time.Nanosecond || s.P50 > 200*time.Nanosecond {
		t.Errorf("p50 = %v, want ~100ns", s.P50)
	}
	if s.P99 < 50*time.Microsecond || s.P99 > 200*time.Microsecond {
		t.Errorf("p99 = %v, want ~100µs", s.P99)
	}
	if s.Max < 100*time.Microsecond {
		t.Errorf("max upper bound %v below the recorded 100µs", s.Max)
	}
	if want := 90*100*time.Nanosecond + 10*100*time.Microsecond; s.Sum != want {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-5) // clamped, never panics
	if s := h.Snapshot(); s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*100+i) * time.Nanosecond)
			}
		}(w)
	}
	// Snapshot concurrently with recording: counts must be monotone.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last int64
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			if s.Count < last {
				t.Errorf("snapshot count went backwards: %d -> %d", last, s.Count)
				return
			}
			last = s.Count
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestSpansNestingAndNil(t *testing.T) {
	var nilSpans *Spans
	nilSpans.Start("ignored")() // must not panic
	nilSpans.Reset()
	if got := nilSpans.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}

	s := &Spans{}
	endA := s.Start("a")
	endB := s.Start("a/child")
	time.Sleep(time.Millisecond)
	endB()
	endA()
	s.Start("b")()
	got := s.Snapshot()
	if len(got) != 3 {
		t.Fatalf("spans = %v", got)
	}
	if got[0].Name != "a" || got[0].Depth != 0 {
		t.Errorf("span 0 = %+v", got[0])
	}
	if got[1].Name != "a/child" || got[1].Depth != 1 {
		t.Errorf("span 1 = %+v", got[1])
	}
	if got[2].Name != "b" || got[2].Depth != 0 {
		t.Errorf("span 2 = %+v", got[2])
	}
	if got[1].Dur < time.Millisecond || got[0].Dur < got[1].Dur {
		t.Errorf("durations not nested: parent %v child %v", got[0].Dur, got[1].Dur)
	}
	s.Reset()
	if len(s.Snapshot()) != 0 {
		t.Error("reset did not clear spans")
	}
}

func TestIndexMetricsObserve(t *testing.T) {
	var m IndexMetrics
	m.Observe(true, time.Microsecond)
	m.Observe(false, time.Microsecond)
	m.Observe(false, time.Microsecond)
	m.ObserveProbe(true, 0)
	m.ObserveProbe(false, 42)
	m.ObserveOutcome(true) // outcome-only path: counted, no latency sample
	m.ObserveBatch(10)
	s := m.Snapshot()
	if s.Queries != 4 || s.Positive != 2 || s.Negative != 2 {
		t.Errorf("queries/pos/neg = %d/%d/%d", s.Queries, s.Positive, s.Negative)
	}
	if s.Latency.Count != 3 {
		t.Errorf("latency count = %d, want 3 (ObserveOutcome records none)", s.Latency.Count)
	}
	if got := m.Queries(); got != 4 {
		t.Errorf("Queries() = %d, want 4", got)
	}
	// Decided is derived: 4 queries, 1 fallback -> 3 decided.
	if s.Decided != 3 || s.Fallback != 1 || s.Visited != 42 {
		t.Errorf("decided/fallback/visited = %d/%d/%d", s.Decided, s.Fallback, s.Visited)
	}
	if s.Batches != 1 || s.BatchQueries != 10 {
		t.Errorf("batches = %d/%d", s.Batches, s.BatchQueries)
	}
	if r := s.DecidedRate(); r != 0.75 {
		t.Errorf("decided rate = %v", r)
	}
	if r := s.FallbackRate(); r != 0.25 {
		t.Errorf("fallback rate = %v", r)
	}
	if (IndexSnapshot{}).DecidedRate() != 0 {
		t.Error("empty decided rate should be 0")
	}
}

func TestDBMetricsConcurrentRecordAndSnapshot(t *testing.T) {
	m := NewDBMetrics()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			im := m.Index("BFL") // concurrent create/get on the same name
			for i := 0; i < per; i++ {
				im.Observe(i%2 == 0, time.Duration(i)*time.Nanosecond)
				m.Route(RouteKind(i%int(NumRoutes))).Observe(true, time.Nanosecond)
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var last int64
		for i := 0; i < 200; i++ {
			s := m.Snapshot()
			q := s.Indexes["BFL"].Queries
			if q < last {
				t.Errorf("index queries went backwards: %d -> %d", last, q)
				return
			}
			last = q
		}
	}()
	wg.Wait()
	snapWG.Wait()
	s := m.Snapshot()
	if got := s.Indexes["BFL"].Queries; got != workers*per {
		t.Fatalf("queries = %d, want %d", got, workers*per)
	}
	var routed int64
	for _, rs := range s.Routes {
		routed += rs.Queries
	}
	if routed != workers*per {
		t.Fatalf("routed = %d, want %d", routed, workers*per)
	}
}

func TestRouteKindStrings(t *testing.T) {
	want := map[RouteKind]string{
		RoutePlain: "plain", RouteLCR: "lcr", RouteRLC: "rlc",
		RouteRegistered: "registered", RouteProduct: "product",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
	if !strings.Contains(RouteKind(99).String(), "99") {
		t.Error("unknown route kind should include its number")
	}
}

func TestSnapshotWriteTextAndJSON(t *testing.T) {
	m := NewDBMetrics()
	end := m.Build.Start("scc/condense")
	end()
	m.Index("BFL").Observe(true, time.Microsecond)
	m.Index("BFL").ObserveProbe(false, 7)
	m.Route(RoutePlain).Observe(true, time.Microsecond)
	m.Errors.Inc()

	var sb strings.Builder
	s := m.Snapshot()
	s.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"scc/condense", "BFL", "plain", "errors: 1", "visited=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestPublishIdempotent(t *testing.T) {
	m := NewDBMetrics()
	m.Index("X").Observe(true, time.Nanosecond)
	m.Publish("obs_test_metrics")
	m.Publish("obs_test_metrics") // second publish must not panic
	v := expvar.Get("obs_test_metrics")
	if v == nil {
		t.Fatal("metrics not published")
	}
	if !strings.Contains(v.String(), "\"X\"") {
		t.Errorf("expvar value missing index: %s", v.String())
	}
}
