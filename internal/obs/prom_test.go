package obs

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// promSeriesRe matches one exposition sample line: name, optional label
// set, value. The value charset covers integers, floats and +Inf.
var promSeriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

// checkPromSyntax validates text-format discipline: every sample's
// family was declared with HELP and TYPE first, no malformed lines.
// Returns the sample lines keyed by series (name + labels).
func checkPromSyntax(t *testing.T, out string) map[string]string {
	t.Helper()
	declared := map[string]bool{}
	samples := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			declared[fields[2]] = true
			continue
		}
		m := promSeriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name := m[1]
		// Histogram sub-series share their family's declaration.
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !declared[name] && !declared[base] {
			t.Fatalf("series %q emitted before its HELP/TYPE declaration", name)
		}
		samples[m[1]+m[2]] = m[3]
	}
	return samples
}

func TestSnapshotWriteProm(t *testing.T) {
	m := NewDBMetrics()
	im := m.Index("BFL")
	for i := 0; i < 100; i++ {
		im.Observe(i%2 == 0, time.Duration(i)*time.Microsecond)
	}
	im.ObserveProbe(false, 42)
	im.ObserveBatch(10)
	im.SetLatencySampleStride(32)
	im.SetFootprint(404, 9000, 77)
	m.Route(RoutePlain).Observe(true, time.Millisecond)
	m.Errors.Inc()
	end := m.Build.Start("scc/condense")
	end()
	snap := m.Snapshot()
	cache := &CacheSnapshot{Hits: 5, Misses: 3, Entries: 2, Capacity: 8}
	snap.Cache = cache
	snap.Degraded = []string{`plain "quoted"`}

	var sb strings.Builder
	snap.WriteProm(&sb, "reach")
	out := sb.String()
	samples := checkPromSyntax(t, out)

	for series, want := range map[string]string{
		`reach_index_queries_total{index="BFL"}`:                    "100",
		`reach_index_fallback_visited_total{index="BFL"}`:           "42",
		`reach_index_batch_queries_total{index="BFL"}`:              "10",
		`reach_index_latency_sample_stride{index="BFL"}`:            "32",
		`reach_route_queries_total{route="plain"}`:                  "1",
		`reach_cache_hits_total`:                                    "5",
		`reach_errors_total`:                                        "1",
		`reach_degraded_route{route="plain \"quoted\""}`:            "1",
		`reach_index_results_total{index="BFL",outcome="positive"}`: "50",
		`reach_index_size_bytes{index="BFL",section="offsets"}`:     "404",
		`reach_index_size_bytes{index="BFL",section="labels"}`:      "9000",
		`reach_index_size_bytes{index="BFL",section="aux"}`:         "77",
	} {
		if got := samples[series]; got != want {
			t.Errorf("%s = %q, want %q", series, got, want)
		}
	}

	// Histogram invariants: cumulative buckets end at +Inf == _count,
	// and bucket counts are monotone nondecreasing in le order.
	var lastCum int64 = -1
	count := samples[`reach_index_latency_seconds_count{index="BFL"}`]
	inf := samples[`reach_index_latency_seconds_bucket{index="BFL",le="+Inf"}`]
	if count == "" || inf == "" || count != inf {
		t.Fatalf("histogram +Inf bucket %q != count %q", inf, count)
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	buckets := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `reach_index_latency_seconds_bucket{index="BFL"`) {
			continue
		}
		buckets++
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if v < lastCum {
			t.Fatalf("bucket counts not cumulative: %d after %d in %q", v, lastCum, line)
		}
		lastCum = v
	}
	if buckets < 2 {
		t.Fatalf("histogram emitted %d bucket lines, want at least lo..hi + +Inf", buckets)
	}
	if snap.Indexes["BFL"].Latency.Count != 100 {
		t.Fatalf("latency samples = %d, want 100", snap.Indexes["BFL"].Latency.Count)
	}
}

func TestServerAndTracerWriteProm(t *testing.T) {
	var m ServerMetrics
	m.Accepted.Inc()
	m.Rejected.Inc()
	m.InFlight.Add(3)
	m.Queued.Add(1)
	var sb strings.Builder
	m.Snapshot().WriteProm(&sb, "reach")

	tcr := NewTracer(4, 250*time.Millisecond)
	tcr.Finish(tcr.Start(""))
	tcr.Stats().WriteProm(&sb, "reach")

	samples := checkPromSyntax(t, sb.String())
	for series, want := range map[string]string{
		"reach_server_accepted_total":        "1",
		"reach_server_rejected_total":        "1",
		"reach_server_in_flight":             "3",
		"reach_server_queued":                "1",
		"reach_traces_started_total":         "1",
		"reach_traces_finished_total":        "1",
		"reach_trace_slow_threshold_seconds": "0.25",
	} {
		if got := samples[series]; got != want {
			t.Errorf("%s = %q, want %q", series, got, want)
		}
	}
}

func TestPromEscape(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := promEscape(in); got != want {
		t.Fatalf("promEscape = %q, want %q", got, want)
	}
	if got := promEscape("plain"); got != "plain" {
		t.Fatalf("promEscape(plain) = %q", got)
	}
}

// TestServerMetricsConcurrent exercises the gauges and reload counters
// under racing writers and scrapers; run with -race this is the
// regression net for the serving layer's shared counters.
func TestServerMetricsConcurrent(t *testing.T) {
	var m ServerMetrics
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Queued.Add(1)
				m.Queued.Add(-1)
				m.Accepted.Inc()
				m.InFlight.Add(1)
				if i%100 == 0 {
					m.Reloads.Inc()
					m.ReloadErrors.Inc()
				}
				m.InFlight.Add(-1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last ServerSnapshot
		for i := 0; i < 500; i++ {
			s := m.Snapshot()
			if s.Accepted < last.Accepted || s.Reloads < last.Reloads {
				t.Error("counters went backwards")
				return
			}
			last = s
		}
	}()
	wg.Wait()
	s := m.Snapshot()
	if s.Accepted != workers*per {
		t.Fatalf("accepted = %d, want %d", s.Accepted, workers*per)
	}
	if s.Reloads != workers*(per/100) || s.ReloadErrors != workers*(per/100) {
		t.Fatalf("reloads = %d/%d, want %d", s.Reloads, s.ReloadErrors, workers*(per/100))
	}
	if s.InFlight != 0 || s.Queued != 0 {
		t.Fatalf("gauges not balanced: in-flight=%d queued=%d", s.InFlight, s.Queued)
	}
}
