package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (format 0.0.4), stdlib-only. The snapshots
// this package already produces are rendered as metric families under a
// caller-chosen prefix; the power-of-two Histogram maps directly onto a
// Prometheus histogram whose le bounds are the bucket upper bounds in
// seconds. Empty leading/trailing buckets are elided — the text format
// allows any ascending le set per series, and a 64-bucket histogram
// would otherwise emit 64 lines of zeros per series.
//
// Latency histograms recorded through the sampling recorder carry their
// stride as a companion gauge ({prefix}_index_latency_sample_stride);
// consumers multiply sampled bucket counts by it to estimate totals.

// PromContentType is the Content-Type of text exposition format 0.0.4.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter renders one scrape. It enforces the family discipline —
// HELP and TYPE once, then every series of that family — that scrapers
// validate.
type promWriter struct {
	w      io.Writer
	prefix string
}

func (p *promWriter) family(name, help, typ string) string {
	full := p.prefix + "_" + name
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", full, help, full, typ)
	return full
}

// series emits one sample line. labels come as alternating key, value
// pairs; values are escaped per the exposition format.
func (p *promWriter) series(family string, value string, labels ...string) {
	if len(labels) == 0 {
		fmt.Fprintf(p.w, "%s %s\n", family, value)
		return
	}
	var sb strings.Builder
	sb.WriteString(family)
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(promEscape(labels[i+1]))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	fmt.Fprintf(p.w, "%s %s\n", sb.String(), value)
}

func (p *promWriter) int(family string, v int64, labels ...string) {
	p.series(family, strconv.FormatInt(v, 10), labels...)
}

func (p *promWriter) float(family string, v float64, labels ...string) {
	p.series(family, strconv.FormatFloat(v, 'g', -1, 64), labels...)
}

// promEscape escapes a label value: backslash, quote, newline.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }

// histogram emits one Prometheus histogram series set (_bucket lines
// with cumulative counts, _sum in seconds, _count) from a HistSnapshot.
// family is the base name (…_latency_seconds); labels identify the series.
func (p *promWriter) histogram(family string, h *HistSnapshot, labels ...string) {
	lo, hi := 0, -1
	for b := range h.buckets {
		if h.buckets[b] != 0 {
			if hi < 0 {
				lo = b
			}
			hi = b
		}
	}
	var cum int64
	for b := lo; b <= hi; b++ {
		cum += h.buckets[b]
		le := strconv.FormatFloat(seconds(bucketUpper(b)), 'g', -1, 64)
		p.int(family+"_bucket", cum, append(append([]string(nil), labels...), "le", le)...)
	}
	p.int(family+"_bucket", h.Count, append(append([]string(nil), labels...), "le", "+Inf")...)
	p.float(family+"_sum", seconds(h.Sum), labels...)
	p.int(family+"_count", h.Count, labels...)
}

// WriteProm renders the DB snapshot as Prometheus text exposition under
// the given metric prefix (conventionally "reach").
func (s Snapshot) WriteProm(w io.Writer, prefix string) {
	p := &promWriter{w: w, prefix: prefix}
	idx := sortedKeys(s.Indexes)

	f := p.family("index_queries_total", "Reachability queries observed per index.", "counter")
	for _, name := range idx {
		p.int(f, s.Indexes[name].Queries, "index", name)
	}
	f = p.family("index_results_total", "Query outcomes per index.", "counter")
	for _, name := range idx {
		is := s.Indexes[name]
		p.int(f, is.Positive, "index", name, "outcome", "positive")
		p.int(f, is.Negative, "index", name, "outcome", "negative")
	}
	f = p.family("index_decided_total", "Queries the index settled without guided traversal.", "counter")
	for _, name := range idx {
		p.int(f, s.Indexes[name].Decided, "index", name)
	}
	f = p.family("index_fallback_total", "Queries that required guided traversal.", "counter")
	for _, name := range idx {
		p.int(f, s.Indexes[name].Fallback, "index", name)
	}
	f = p.family("index_fallback_visited_total", "Vertices expanded across all guided fallbacks.", "counter")
	for _, name := range idx {
		p.int(f, s.Indexes[name].Visited, "index", name)
	}
	f = p.family("index_batches_total", "BatchReach invocations routed through the index.", "counter")
	for _, name := range idx {
		p.int(f, s.Indexes[name].Batches, "index", name)
	}
	f = p.family("index_batch_queries_total", "Queries submitted via batches.", "counter")
	for _, name := range idx {
		p.int(f, s.Indexes[name].BatchQueries, "index", name)
	}
	f = p.family("index_latency_seconds", "Per-index query latency (sampled; see index_latency_sample_stride).", "histogram")
	for _, name := range idx {
		is := s.Indexes[name]
		p.histogram(f, &is.Latency, "index", name)
	}
	f = p.family("index_latency_sample_stride", "1-in-N latency sampling stride; multiply sampled histogram counts by this to estimate totals.", "gauge")
	for _, name := range idx {
		stride := s.Indexes[name].LatencySampleStride
		if stride < 1 {
			stride = 1
		}
		p.int(f, stride, "index", name)
	}
	f = p.family("index_size_bytes", "Resident index footprint by section (offsets/labels/aux).", "gauge")
	for _, name := range idx {
		is := s.Indexes[name]
		if is.Bytes == 0 {
			continue
		}
		p.int(f, is.BytesOffsets, "index", name, "section", "offsets")
		p.int(f, is.BytesLabels, "index", name, "section", "labels")
		p.int(f, is.BytesAux, "index", name, "section", "aux")
	}

	routes := sortedKeys(s.Routes)
	f = p.family("route_queries_total", "DB.Query calls per routing class.", "counter")
	for _, name := range routes {
		p.int(f, s.Routes[name].Queries, "route", name)
	}
	f = p.family("route_results_total", "Routed query outcomes per class.", "counter")
	for _, name := range routes {
		rs := s.Routes[name]
		p.int(f, rs.Positive, "route", name, "outcome", "positive")
		p.int(f, rs.Negative, "route", name, "outcome", "negative")
	}
	f = p.family("route_latency_seconds", "Per-route query latency.", "histogram")
	for _, name := range routes {
		rs := s.Routes[name]
		p.histogram(f, &rs.Latency, "route", name)
	}

	if s.Cache != nil {
		f = p.family("cache_hits_total", "Query-result cache hits.", "counter")
		p.int(f, s.Cache.Hits)
		f = p.family("cache_misses_total", "Query-result cache misses.", "counter")
		p.int(f, s.Cache.Misses)
		f = p.family("cache_evictions_total", "Query-result cache evictions.", "counter")
		p.int(f, s.Cache.Evictions)
		f = p.family("cache_entries", "Query-result cache entries resident.", "gauge")
		p.int(f, int64(s.Cache.Entries))
		f = p.family("cache_capacity", "Query-result cache capacity.", "gauge")
		p.int(f, int64(s.Cache.Capacity))
	}

	if len(s.Build) > 0 {
		// Span names repeat (e.g. per-pass phases); aggregate total
		// seconds by name so each (phase) series appears once.
		totals := make(map[string]time.Duration)
		var names []string
		for _, sp := range s.Build {
			if _, seen := totals[sp.Name]; !seen {
				names = append(names, sp.Name)
			}
			totals[sp.Name] += sp.Dur
		}
		f = p.family("build_phase_seconds", "Total build time per named phase.", "gauge")
		for _, name := range names {
			p.float(f, seconds(totals[name]), "phase", name)
		}
	}

	if s.Mutation != nil {
		s.Mutation.writeProm(p)
	}

	if s.Advisor != nil {
		s.Advisor.writeProm(p)
	}

	f = p.family("errors_total", "Query and build errors.", "counter")
	p.int(f, s.Errors)
	f = p.family("panics_total", "Index panics contained at the query boundary.", "counter")
	p.int(f, s.Panics)
	f = p.family("canceled_total", "Builds and queries abandoned via context cancellation.", "counter")
	p.int(f, s.Canceled)
	if len(s.Degraded) > 0 {
		f = p.family("degraded_route", "1 for each serving route running index-free after a tolerated build failure.", "gauge")
		for _, name := range s.Degraded {
			p.int(f, 1, "route", name)
		}
	}
}

// WriteProm renders the server's admission/lifecycle counters.
func (s ServerSnapshot) WriteProm(w io.Writer, prefix string) {
	p := &promWriter{w: w, prefix: prefix}
	p.int(p.family("server_accepted_total", "Requests admitted past the admission controller.", "counter"), s.Accepted)
	p.int(p.family("server_rejected_total", "Requests rejected with 429.", "counter"), s.Rejected)
	p.int(p.family("server_drained_total", "Requests completed while draining.", "counter"), s.Drained)
	p.int(p.family("server_reloads_total", "Successful DB hot-swap reloads.", "counter"), s.Reloads)
	p.int(p.family("server_reload_errors_total", "Failed reloads (old DB kept serving).", "counter"), s.ReloadErrors)
	p.int(p.family("server_in_flight", "Admitted requests currently executing.", "gauge"), s.InFlight)
	p.int(p.family("server_queued", "Requests waiting for an admission slot.", "gauge"), s.Queued)
}

// WriteProm renders the tracer's counters.
func (s TracerStats) WriteProm(w io.Writer, prefix string) {
	p := &promWriter{w: w, prefix: prefix}
	p.int(p.family("traces_started_total", "Request traces started.", "counter"), s.Started)
	p.int(p.family("traces_finished_total", "Request traces finished and retained.", "counter"), s.Finished)
	p.int(p.family("traces_slow_total", "Traces at or above the slow-query threshold.", "counter"), s.Slow)
	p.float(p.family("trace_slow_threshold_seconds", "Configured slow-query threshold.", "gauge"), seconds(s.SlowThreshold))
}
