// Package obs is the engine's zero-dependency observability layer: atomic
// counters, lock-free power-of-two latency histograms, and hierarchical
// build-phase spans, composed into per-index query metrics and DB-level
// routing metrics with a Snapshot/expvar/text-dump export surface.
//
// The paper's quantitative claims (§3–§5) — partial indexes answer ≥10×
// faster than raw traversal, negative queries dominate real workloads and
// reward false-negative-free pruning, LCR construction dwarfs plain
// indexing — are only checkable at runtime through exactly the signals
// this package records: TryReach decided-rates, guided-traversal fallback
// volume, per-class routing latencies, and named per-phase build costs.
//
// Everything here is safe for concurrent use. Recording is a handful of
// atomic adds (no locks on the query path); the nil-metrics fast path in
// the callers costs one pointer comparison, so disabled instrumentation
// is free.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }
