package obs

import (
	"fmt"
	"io"
	"sync"
)

// AdvisorMetrics accumulates the auto-tuning advisor's signals: how
// often the background evaluation ran, what it built, and whether the
// serving plain index was hot-swapped (see OBSERVABILITY.md, "Advisor
// counters").
type AdvisorMetrics struct {
	Evaluations     Counter // background advisor evaluations completed
	CandidatesBuilt Counter // candidate indexes shadow-built across evaluations
	BuildFailures   Counter // candidate builds that failed or timed out
	Swaps           Counter // serving-index hot swaps published
	SwapsSkipped    Counter // evaluations whose pick missed the improvement margin
	Failures        Counter // evaluations aborted by error or contained panic

	TraceRecords Gauge // plain-query samples currently in the advisor's ring
	// LastImprovementPermille is the last evaluation's measured p99 delta
	// vs the serving index, in permille (positive = the pick was faster);
	// it updates whether or not the swap happened.
	LastImprovementPermille Gauge

	mu          sync.Mutex
	currentKind string
	initialKind string
}

// SetKinds records the serving kind (updated at every swap) and, first
// time around, the initial kind.
func (m *AdvisorMetrics) SetKinds(current, initial string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.currentKind = current
	if m.initialKind == "" {
		m.initialKind = initial
	}
}

// AdvisorSnapshot is a point-in-time view of AdvisorMetrics.
type AdvisorSnapshot struct {
	CurrentKind string `json:"current_kind"`
	InitialKind string `json:"initial_kind"`

	Evaluations     int64 `json:"evaluations"`
	CandidatesBuilt int64 `json:"candidates_built"`
	BuildFailures   int64 `json:"build_failures,omitempty"`
	Swaps           int64 `json:"swaps"`
	SwapsSkipped    int64 `json:"swaps_skipped"`
	Failures        int64 `json:"failures,omitempty"`

	TraceRecords            int64 `json:"trace_records"`
	LastImprovementPermille int64 `json:"last_improvement_permille"`
}

// Snapshot captures the current values.
func (m *AdvisorMetrics) Snapshot() AdvisorSnapshot {
	m.mu.Lock()
	current, initial := m.currentKind, m.initialKind
	m.mu.Unlock()
	return AdvisorSnapshot{
		CurrentKind:             current,
		InitialKind:             initial,
		Evaluations:             m.Evaluations.Load(),
		CandidatesBuilt:         m.CandidatesBuilt.Load(),
		BuildFailures:           m.BuildFailures.Load(),
		Swaps:                   m.Swaps.Load(),
		SwapsSkipped:            m.SwapsSkipped.Load(),
		Failures:                m.Failures.Load(),
		TraceRecords:            m.TraceRecords.Load(),
		LastImprovementPermille: m.LastImprovementPermille.Load(),
	}
}

// SetAdvisor installs the auto-tuner's metrics cell; every later
// Snapshot carries its point-in-time view. Nil (the default) omits the
// advisor section entirely.
func (m *DBMetrics) SetAdvisor(am *AdvisorMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advisor = am
}

// writeText renders the human-readable advisor block for WriteText.
func (s *AdvisorSnapshot) writeText(w io.Writer) {
	fmt.Fprintf(w, "advisor: serving=%s (initial=%s) evaluations=%d swaps=%d skipped=%d\n",
		s.CurrentKind, s.InitialKind, s.Evaluations, s.Swaps, s.SwapsSkipped)
	fmt.Fprintf(w, "  candidates: built=%d failed=%d trace=%d last-improvement=%.1f%%\n",
		s.CandidatesBuilt, s.BuildFailures, s.TraceRecords,
		float64(s.LastImprovementPermille)/10)
}

// writeProm renders the reach_advisor_* families for WriteProm.
func (s *AdvisorSnapshot) writeProm(p *promWriter) {
	p.int(p.family("advisor_evaluations_total", "Background advisor evaluations completed.", "counter"), s.Evaluations)
	p.int(p.family("advisor_candidates_built_total", "Candidate indexes shadow-built by the advisor.", "counter"), s.CandidatesBuilt)
	p.int(p.family("advisor_build_failures_total", "Advisor candidate builds that failed or timed out.", "counter"), s.BuildFailures)
	p.int(p.family("advisor_swaps_total", "Serving plain-index hot swaps published by the advisor.", "counter"), s.Swaps)
	p.int(p.family("advisor_swaps_skipped_total", "Advisor evaluations whose pick missed the improvement margin.", "counter"), s.SwapsSkipped)
	p.int(p.family("advisor_failures_total", "Advisor evaluations aborted by error or contained panic.", "counter"), s.Failures)
	p.int(p.family("advisor_trace_records", "Plain-query samples in the advisor's in-memory ring.", "gauge"), s.TraceRecords)
	p.int(p.family("advisor_last_improvement_permille", "Last evaluation's measured p99 improvement vs the serving index, in permille.", "gauge"), s.LastImprovementPermille)
	f := p.family("advisor_serving_kind", "1 for the currently serving plain index kind.", "gauge")
	if s.CurrentKind != "" {
		p.int(f, 1, "kind", s.CurrentKind)
	}
}
