package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two buckets: bucket b counts
// durations d with bits.Len64(d ns) == b, i.e. d in [2^(b-1), 2^b) ns.
// 64 buckets cover every representable duration.
const histBuckets = 64

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Record is two atomic adds (the observation count is derived by summing
// buckets); Snapshot reads are not atomic across buckets but every
// individual bucket and the sum are monotone, so concurrent snapshots are
// consistent enough for percentile reporting.
type Histogram struct {
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.sum.Add(ns)
	h.buckets[bits.Len64(uint64(ns))%histBuckets].Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	var n int64
	for b := range h.buckets {
		n += h.buckets[b].Load()
	}
	return n
}

// HistSnapshot is a point-in-time view of a Histogram.
type HistSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"` // upper bound of the top nonempty bucket

	// buckets holds the raw per-bucket counts for exporters that need
	// the full distribution (the Prometheus encoder in prom.go maps them
	// to cumulative le buckets). Unexported so the JSON/expvar surface
	// stays the compact percentile view.
	buckets [histBuckets]int64
}

// Buckets returns the raw power-of-two bucket counts: index b counts
// durations in [2^(b-1), 2^b) ns (see BucketUpper).
func (s *HistSnapshot) Buckets() []int64 { return s.buckets[:] }

// BucketUpper is the exclusive upper bound of bucket b, for mapping
// bucket counts to externally meaningful latency ranges.
func BucketUpper(b int) time.Duration { return bucketUpper(b) }

// Snapshot captures counts and computes approximate percentiles (each
// bucket is represented by its geometric midpoint, so values are within
// 2× of the true percentile — ample for the order-of-magnitude claims the
// harness reports).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for b := range s.buckets {
		s.buckets[b] = h.buckets[b].Load()
		s.Count += s.buckets[b]
	}
	counts := s.buckets
	s.Sum = time.Duration(h.sum.Load())
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / time.Duration(s.Count)
	s.P50 = quantile(&counts, s.Count, 0.50)
	s.P90 = quantile(&counts, s.Count, 0.90)
	s.P99 = quantile(&counts, s.Count, 0.99)
	for b := histBuckets - 1; b >= 0; b-- {
		if counts[b] > 0 {
			s.Max = bucketUpper(b)
			break
		}
	}
	return s
}

// quantile returns the representative duration of the bucket holding the
// q-th observation.
func quantile(counts *[histBuckets]int64, total int64, q float64) time.Duration {
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for b := range counts {
		cum += counts[b]
		if cum > rank {
			return bucketMid(b)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketMid is the geometric midpoint of bucket b's range [2^(b-1), 2^b).
func bucketMid(b int) time.Duration {
	if b <= 1 {
		return time.Duration(b) // 0 ns or 1 ns
	}
	return time.Duration(int64(3) << (b - 2)) // 1.5 * 2^(b-1)
}

func bucketUpper(b int) time.Duration {
	if b == 0 {
		return 0
	}
	if b >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(int64(1) << b)
}
