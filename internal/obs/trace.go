package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the observability layer: where
// metrics.go aggregates ("how does the plain route behave on average"),
// a Trace answers "why was THIS request slow" — a per-request ID plus a
// small fixed-size timeline of named phases (admission wait, parse,
// cache lookup, index probe, fallback traversal) threaded through
// context.Context from the HTTP edge down into DB.QueryCtx.
//
// The design budget mirrors the rest of the package: a disabled trace is
// a nil pointer, every method is nil-receiver-safe, and the enabled hot
// path appends into a fixed array inside the pooled Trace — no
// allocation per phase, two clock reads per phase. A Trace belongs to
// one request goroutine and is not safe for concurrent use; the Tracer
// that collects finished traces is.

// MaxTracePhases bounds the phases one trace records. Phases begun past
// the cap are dropped (counted in DroppedPhases) rather than grown: the
// point of the fixed array is that tracing never allocates mid-request.
const MaxTracePhases = 16

// TracePhase is one named, timed step of a request. Start is the offset
// from the trace's start; Depth encodes nesting exactly like
// PhaseSpan.Depth (a phase begun while another is open is its child).
type TracePhase struct {
	Name  string        `json:"name"`
	Depth int           `json:"depth"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Trace accumulates one request's timeline. Obtain from Tracer.Start,
// thread via WithTrace/TraceFrom, finish with Tracer.Finish. The exported
// metadata fields are set by the owner (the HTTP layer sets Method, Path
// and Status; the DB sets Route) between Start and Finish.
//
// A nil *Trace is the disabled state: every method no-ops after one
// pointer comparison, so instrumented code calls Begin/End unconditionally.
type Trace struct {
	ID     string
	Method string
	Path   string
	Route  string
	Status int
	Err    string

	start   time.Time
	n       int
	depth   int
	dropped int
	phases  [MaxTracePhases]TracePhase
}

// Begin opens a named phase and returns its token for End. On a nil
// trace (or a full phase array) it returns -1, which End ignores.
func (t *Trace) Begin(name string) int {
	if t == nil {
		return -1
	}
	if t.n >= MaxTracePhases {
		t.dropped++
		return -1
	}
	i := t.n
	t.n++
	t.phases[i] = TracePhase{Name: name, Depth: t.depth, Start: time.Since(t.start)}
	t.depth++
	return i
}

// End closes the phase opened by the Begin that returned tok.
func (t *Trace) End(tok int) {
	if t == nil || tok < 0 {
		return
	}
	t.phases[tok].Dur = time.Since(t.start) - t.phases[tok].Start
	t.depth--
}

// SetRoute records which DB routing class served the request.
func (t *Trace) SetRoute(route string) {
	if t != nil {
		t.Route = route
	}
}

// SetError records the request's failure; empty means success.
func (t *Trace) SetError(msg string) {
	if t != nil {
		t.Err = msg
	}
}

// Elapsed is the time since the trace started (0 on a nil trace).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Phases returns the recorded phases so far (nil on a nil trace). The
// returned slice aliases the trace's internal array; callers must not
// retain it past Finish.
func (t *Trace) Phases() []TracePhase {
	if t == nil {
		return nil
	}
	return t.phases[:t.n]
}

// TraceRecord is one finished trace as stored in the Tracer's rings and
// rendered on /debug/traces.
type TraceRecord struct {
	ID            string        `json:"id"`
	Time          time.Time     `json:"time"`
	Method        string        `json:"method,omitempty"`
	Path          string        `json:"path,omitempty"`
	Route         string        `json:"route,omitempty"`
	Status        int           `json:"status,omitempty"`
	Err           string        `json:"error,omitempty"`
	Total         time.Duration `json:"total_ns"`
	Slow          bool          `json:"slow,omitempty"`
	Phases        []TracePhase  `json:"phases,omitempty"`
	DroppedPhases int           `json:"dropped_phases,omitempty"`
}

// Tracer owns trace lifecycle and retention: a pool of Trace objects, a
// fixed-size ring of the most recent finished traces, and a second ring
// holding only traces at or above the slow threshold — the slow-query
// log. All methods are safe for concurrent use; a nil *Tracer disables
// everything (Start returns the nil Trace).
type Tracer struct {
	capacity      int
	slowThreshold time.Duration

	started  Counter
	finished Counter
	slowHits Counter

	idSeq  atomic.Uint64
	idBase string

	pool sync.Pool

	mu         sync.Mutex
	recent     []TraceRecord
	recentNext int
	recentLen  int
	slow       []TraceRecord
	slowNext   int
	slowLen    int
}

// NewTracer returns a Tracer retaining the last capacity finished traces
// (default 128 when capacity <= 0) and flagging traces that took at
// least slowThreshold as slow (slowThreshold <= 0 disables the slow log;
// the recent ring still fills).
func NewTracer(capacity int, slowThreshold time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = 128
	}
	var b [4]byte
	rand.Read(b[:]) // never errors per crypto/rand contract
	return &Tracer{
		capacity:      capacity,
		slowThreshold: slowThreshold,
		idBase:        hex.EncodeToString(b[:]),
		recent:        make([]TraceRecord, capacity),
		slow:          make([]TraceRecord, capacity),
	}
}

// SlowThreshold reports the configured slow-query cutoff.
func (tr *Tracer) SlowThreshold() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.slowThreshold
}

// newID synthesizes a request ID: a per-process random base plus a
// sequence number, unique within and across restarts for log joining.
func (tr *Tracer) newID() string {
	return tr.idBase + "-" + itoa(tr.idSeq.Add(1))
}

// itoa is strconv.FormatUint without the import weight in the hot path's
// inlining budget (IDs are generated once per request).
func itoa(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(buf[i:])
}

// Start begins a trace. id is the caller-propagated request ID
// (X-Request-Id); empty generates one. On a nil Tracer it returns nil —
// the disabled Trace every downstream Begin/End no-ops on.
func (tr *Tracer) Start(id string) *Trace {
	if tr == nil {
		return nil
	}
	tr.started.Inc()
	t, _ := tr.pool.Get().(*Trace)
	if t == nil {
		t = new(Trace)
	}
	if id == "" {
		id = tr.newID()
	}
	t.ID = id
	t.start = time.Now()
	return t
}

// Finish closes t: snapshots it into the recent ring (and the slow ring
// when total latency reaches the threshold), then recycles t. The trace
// must not be used after Finish. Returns the stored record and whether
// it crossed the slow threshold.
func (tr *Tracer) Finish(t *Trace) (rec TraceRecord, slow bool) {
	if tr == nil || t == nil {
		return TraceRecord{}, false
	}
	total := time.Since(t.start)
	slow = tr.slowThreshold > 0 && total >= tr.slowThreshold
	rec = TraceRecord{
		ID:            t.ID,
		Time:          t.start,
		Method:        t.Method,
		Path:          t.Path,
		Route:         t.Route,
		Status:        t.Status,
		Err:           t.Err,
		Total:         total,
		Slow:          slow,
		Phases:        append([]TracePhase(nil), t.phases[:t.n]...),
		DroppedPhases: t.dropped,
	}
	tr.finished.Inc()
	if slow {
		tr.slowHits.Inc()
	}
	tr.mu.Lock()
	tr.recent[tr.recentNext] = rec
	tr.recentNext = (tr.recentNext + 1) % tr.capacity
	if tr.recentLen < tr.capacity {
		tr.recentLen++
	}
	if slow {
		tr.slow[tr.slowNext] = rec
		tr.slowNext = (tr.slowNext + 1) % tr.capacity
		if tr.slowLen < tr.capacity {
			tr.slowLen++
		}
	}
	tr.mu.Unlock()
	*t = Trace{}
	tr.pool.Put(t)
	return rec, slow
}

// TracerStats is the Tracer's counter view, cheap enough for every
// metrics scrape (no ring copying).
type TracerStats struct {
	Started       int64         `json:"started"`
	Finished      int64         `json:"finished"`
	Slow          int64         `json:"slow"`
	SlowThreshold time.Duration `json:"slow_threshold_ns"`
	Capacity      int           `json:"capacity"`
}

// Stats returns the counters.
func (tr *Tracer) Stats() TracerStats {
	if tr == nil {
		return TracerStats{}
	}
	return TracerStats{
		Started:       tr.started.Load(),
		Finished:      tr.finished.Load(),
		Slow:          tr.slowHits.Load(),
		SlowThreshold: tr.slowThreshold,
		Capacity:      tr.capacity,
	}
}

// TracerSnapshot is the /debug/traces document: counters plus both
// rings, most recent first.
type TracerSnapshot struct {
	TracerStats
	Recent []TraceRecord `json:"recent"`
	Slow   []TraceRecord `json:"slow"`
}

// Snapshot copies both rings, most recent first.
func (tr *Tracer) Snapshot() TracerSnapshot {
	if tr == nil {
		return TracerSnapshot{}
	}
	s := TracerSnapshot{TracerStats: tr.Stats()}
	tr.mu.Lock()
	s.Recent = ringCopy(tr.recent, tr.recentNext, tr.recentLen)
	s.Slow = ringCopy(tr.slow, tr.slowNext, tr.slowLen)
	tr.mu.Unlock()
	return s
}

// ringCopy extracts a ring's live entries newest-first. next is the slot
// the NEXT record would land in, so next-1 is the newest.
func ringCopy(ring []TraceRecord, next, n int) []TraceRecord {
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ring[((next-1-i)+2*len(ring))%len(ring)])
	}
	return out
}

// traceCtxKey keys the Trace in a context.Context.
type traceCtxKey struct{}

// WithTrace returns ctx carrying t. A nil t returns ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom extracts the request's Trace, nil when ctx carries none (or
// is nil). Callers gate the lookup behind their own enabled flag so the
// disabled path stays at a pointer comparison rather than a ctx walk.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
