package obs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Gauge is a current-value metric (e.g. requests in flight): unlike
// Counter it moves both ways.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// ServerMetrics counts the serving layer's admission and lifecycle
// decisions (see internal/server and OBSERVABILITY.md, "Server
// counters"). Like every recorder in this package it is a handful of
// atomics, safe for concurrent use on the request path.
type ServerMetrics struct {
	Accepted     Counter // requests admitted past the admission controller
	Rejected     Counter // requests turned away with 429 (queue full or wait expired)
	Drained      Counter // requests that completed while the server was draining
	Reloads      Counter // successful /admin/reload DB swaps
	ReloadErrors Counter // reloads that failed (old DB kept serving)
	InFlight     Gauge   // admitted requests currently executing
	Queued       Gauge   // requests currently waiting for an admission slot
}

// ServerSnapshot is a point-in-time view of ServerMetrics.
type ServerSnapshot struct {
	Accepted     int64 `json:"accepted"`
	Rejected     int64 `json:"rejected"`
	Drained      int64 `json:"drained"`
	Reloads      int64 `json:"reloads"`
	ReloadErrors int64 `json:"reload_errors,omitempty"`
	InFlight     int64 `json:"in_flight"`
	Queued       int64 `json:"queued"`
}

// Snapshot captures the current values. Gauges are instantaneous;
// counters are monotone.
func (m *ServerMetrics) Snapshot() ServerSnapshot {
	return ServerSnapshot{
		Accepted:     m.Accepted.Load(),
		Rejected:     m.Rejected.Load(),
		Drained:      m.Drained.Load(),
		Reloads:      m.Reloads.Load(),
		ReloadErrors: m.ReloadErrors.Load(),
		InFlight:     m.InFlight.Load(),
		Queued:       m.Queued.Load(),
	}
}

// WriteText renders the snapshot in the same human-readable style as
// Snapshot.WriteText, for the server's /metrics endpoint.
func (s ServerSnapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "server: accepted=%d rejected=%d in-flight=%d queued=%d drained=%d reloads=%d",
		s.Accepted, s.Rejected, s.InFlight, s.Queued, s.Drained, s.Reloads)
	if s.ReloadErrors > 0 {
		fmt.Fprintf(w, " reload-errors=%d", s.ReloadErrors)
	}
	fmt.Fprintln(w)
}
