package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tok := tr.Begin("phase")
	if tok != -1 {
		t.Fatalf("nil Begin = %d, want -1", tok)
	}
	tr.End(tok)
	tr.SetRoute("plain/bfl")
	tr.SetError("boom")
	if tr.Elapsed() != 0 {
		t.Fatalf("nil Elapsed = %v, want 0", tr.Elapsed())
	}
	if tr.Phases() != nil {
		t.Fatalf("nil Phases = %v, want nil", tr.Phases())
	}

	var tcr *Tracer
	if got := tcr.Start("id"); got != nil {
		t.Fatalf("nil Tracer.Start = %v, want nil", got)
	}
	if rec, slow := tcr.Finish(nil); slow || rec.ID != "" {
		t.Fatalf("nil Tracer.Finish = %+v/%v", rec, slow)
	}
	if s := tcr.Stats(); s.Started != 0 {
		t.Fatalf("nil Tracer.Stats = %+v", s)
	}
	if s := tcr.Snapshot(); s.Recent != nil || s.Slow != nil {
		t.Fatalf("nil Tracer.Snapshot = %+v", s)
	}
}

func TestTracePhaseNestingAndOverflow(t *testing.T) {
	tcr := NewTracer(8, 0)
	tr := tcr.Start("")
	outer := tr.Begin("outer")
	inner := tr.Begin("inner")
	tr.End(inner)
	tr.End(outer)
	ph := tr.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %d, want 2", len(ph))
	}
	if ph[0].Name != "outer" || ph[0].Depth != 0 {
		t.Fatalf("outer phase = %+v", ph[0])
	}
	if ph[1].Name != "inner" || ph[1].Depth != 1 {
		t.Fatalf("inner phase = %+v", ph[1])
	}
	if ph[0].Dur <= 0 || ph[1].Dur < 0 {
		t.Fatalf("durations = %v, %v", ph[0].Dur, ph[1].Dur)
	}

	// Past the cap every Begin is dropped and counted, never grown.
	for i := len(ph); i < MaxTracePhases; i++ {
		tr.End(tr.Begin("fill"))
	}
	for i := 0; i < 5; i++ {
		tok := tr.Begin("overflow")
		if tok != -1 {
			t.Fatalf("overflow Begin = %d, want -1", tok)
		}
		tr.End(tok)
	}
	rec, _ := tcr.Finish(tr)
	if rec.DroppedPhases != 5 {
		t.Fatalf("DroppedPhases = %d, want 5", rec.DroppedPhases)
	}
	if len(rec.Phases) != MaxTracePhases {
		t.Fatalf("retained phases = %d, want %d", len(rec.Phases), MaxTracePhases)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	const capacity = 4
	tcr := NewTracer(capacity, 0)
	for i := 0; i < 10; i++ {
		tr := tcr.Start(fmt.Sprintf("req-%d", i))
		tcr.Finish(tr)
	}
	snap := tcr.Snapshot()
	if snap.Started != 10 || snap.Finished != 10 {
		t.Fatalf("counters = %d/%d, want 10/10", snap.Started, snap.Finished)
	}
	if len(snap.Recent) != capacity {
		t.Fatalf("recent = %d records, want %d", len(snap.Recent), capacity)
	}
	// Newest first: 9, 8, 7, 6.
	for i, rec := range snap.Recent {
		want := fmt.Sprintf("req-%d", 9-i)
		if rec.ID != want {
			t.Fatalf("recent[%d].ID = %q, want %q", i, rec.ID, want)
		}
	}
	if len(snap.Slow) != 0 {
		t.Fatalf("slow log = %d records with threshold disabled", len(snap.Slow))
	}
}

func TestTracerSlowThresholdEdges(t *testing.T) {
	const threshold = 10 * time.Millisecond
	tcr := NewTracer(4, threshold)

	// Exactly at the threshold counts as slow (>=, not >).
	at := tcr.Start("at")
	at.start = time.Now().Add(-threshold)
	if _, slow := tcr.Finish(at); !slow {
		t.Fatal("trace exactly at threshold not flagged slow")
	}
	// Well under stays fast.
	under := tcr.Start("under")
	if _, slow := tcr.Finish(under); slow {
		t.Fatal("fast trace flagged slow")
	}
	// Far over is slow.
	over := tcr.Start("over")
	over.start = time.Now().Add(-10 * threshold)
	if _, slow := tcr.Finish(over); !slow {
		t.Fatal("trace over threshold not flagged slow")
	}

	snap := tcr.Snapshot()
	if snap.TracerStats.Slow != 2 {
		t.Fatalf("slow counter = %d, want 2", snap.TracerStats.Slow)
	}
	if len(snap.Slow) != 2 {
		t.Fatalf("slow ring = %d records, want 2", len(snap.Slow))
	}
	if snap.Slow[0].ID != "over" || snap.Slow[1].ID != "at" {
		t.Fatalf("slow ring order = %q, %q (want over, at)", snap.Slow[0].ID, snap.Slow[1].ID)
	}

	// Threshold <= 0 disables the slow log entirely.
	off := NewTracer(4, 0)
	tr := off.Start("x")
	tr.start = time.Now().Add(-time.Hour)
	if _, slow := off.Finish(tr); slow {
		t.Fatal("slow flag set with threshold disabled")
	}
}

func TestTracerIDs(t *testing.T) {
	tcr := NewTracer(4, 0)
	// A propagated ID is kept verbatim.
	tr := tcr.Start("caller-supplied")
	if tr.ID != "caller-supplied" {
		t.Fatalf("ID = %q, want caller-supplied", tr.ID)
	}
	tcr.Finish(tr)
	// Generated IDs are non-empty and unique.
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tr := tcr.Start("")
		if tr.ID == "" || seen[tr.ID] {
			t.Fatalf("generated ID %q empty or repeated", tr.ID)
		}
		seen[tr.ID] = true
		tcr.Finish(tr)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tcr := NewTracer(16, time.Nanosecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := tcr.Start("")
				tok := tr.Begin("work")
				tr.SetRoute("plain/bfl")
				tr.End(tok)
				tcr.Finish(tr)
			}
		}()
	}
	// Concurrent scrapes must not race the rings.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tcr.Snapshot()
			tcr.Stats()
		}
	}()
	wg.Wait()
	s := tcr.Stats()
	if s.Started != 1600 || s.Finished != 1600 {
		t.Fatalf("counters = %d/%d, want 1600/1600", s.Started, s.Finished)
	}
}

func TestWithTraceContext(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on empty ctx != nil")
	}
	tcr := NewTracer(1, 0)
	tr := tcr.Start("ctx")
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %p, want %p", got, tr)
	}
	// Nil trace leaves the context untouched.
	base := context.Background()
	if WithTrace(base, nil) != base {
		t.Fatal("WithTrace(nil) allocated a new context")
	}
	tcr.Finish(tr)
}
