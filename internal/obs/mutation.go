package obs

import (
	"fmt"
	"io"
)

// MutationMetrics accumulates the live-mutation pipeline's signals: WAL
// traffic, group-commit flush latency, the size of the delta overlay the
// query path carries, and background-reindex outcomes (see
// OBSERVABILITY.md, "Mutation counters").
type MutationMetrics struct {
	WALAppends  Counter // batches appended to the WAL
	WALBytes    Counter // bytes appended to the WAL
	WALFsyncs   Counter // fsyncs issued (group commits + Flush barriers)
	WALErrors   Counter // failed WAL appends/syncs (batch rejected, rolled back)
	WALReplayed Counter // ops recovered from the WAL at startup

	Applied  Counter // ops applied to the live overlay
	Rejected Counter // ops refused (validation or WAL failure)

	// FlushLatency is the group-commit latency: submit-to-durable for
	// each batch, recorded once per flush.
	FlushLatency Histogram

	OverlayAdded   Gauge // net-added edges the frozen index does not know
	OverlayRemoved Gauge // net-removed edges the frozen index still contains

	Rebuilds        Counter // background reindexes published
	RebuildFailures Counter // reindex attempts that failed (any cause)
	RebuildPanics   Counter // reindex attempts that panicked (subset of failures)
	// RebuildDegraded is 1 while retries are exhausted and the overlay
	// can only grow until a later commit re-triggers a rebuild.
	RebuildDegraded Gauge
}

// MutationSnapshot is a point-in-time view of MutationMetrics.
type MutationSnapshot struct {
	WALAppends  int64 `json:"wal_appends"`
	WALBytes    int64 `json:"wal_bytes"`
	WALFsyncs   int64 `json:"wal_fsyncs"`
	WALErrors   int64 `json:"wal_errors,omitempty"`
	WALReplayed int64 `json:"wal_replayed,omitempty"`

	Applied  int64 `json:"applied"`
	Rejected int64 `json:"rejected,omitempty"`

	FlushLatency HistSnapshot `json:"flush_latency"`

	OverlayAdded   int64 `json:"overlay_added"`
	OverlayRemoved int64 `json:"overlay_removed"`

	Rebuilds        int64 `json:"rebuilds"`
	RebuildFailures int64 `json:"rebuild_failures,omitempty"`
	RebuildPanics   int64 `json:"rebuild_panics,omitempty"`
	RebuildDegraded bool  `json:"rebuild_degraded,omitempty"`
}

// Snapshot captures the current values.
func (m *MutationMetrics) Snapshot() MutationSnapshot {
	return MutationSnapshot{
		WALAppends:      m.WALAppends.Load(),
		WALBytes:        m.WALBytes.Load(),
		WALFsyncs:       m.WALFsyncs.Load(),
		WALErrors:       m.WALErrors.Load(),
		WALReplayed:     m.WALReplayed.Load(),
		Applied:         m.Applied.Load(),
		Rejected:        m.Rejected.Load(),
		FlushLatency:    m.FlushLatency.Snapshot(),
		OverlayAdded:    m.OverlayAdded.Load(),
		OverlayRemoved:  m.OverlayRemoved.Load(),
		Rebuilds:        m.Rebuilds.Load(),
		RebuildFailures: m.RebuildFailures.Load(),
		RebuildPanics:   m.RebuildPanics.Load(),
		RebuildDegraded: m.RebuildDegraded.Load() != 0,
	}
}

// SetMutation installs the mutation pipeline's metrics cell; every later
// Snapshot carries its point-in-time view. Nil (the default) omits the
// mutation section entirely.
func (m *DBMetrics) SetMutation(mm *MutationMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mutation = mm
}

// writeText renders the human-readable mutation block for WriteText.
func (s *MutationSnapshot) writeText(w io.Writer) {
	fmt.Fprintf(w, "mutation: applied=%d rejected=%d overlay=+%d/-%d flush p50=%v p99=%v\n",
		s.Applied, s.Rejected, s.OverlayAdded, s.OverlayRemoved,
		s.FlushLatency.P50, s.FlushLatency.P99)
	fmt.Fprintf(w, "  wal: appends=%d bytes=%d fsyncs=%d errors=%d replayed=%d\n",
		s.WALAppends, s.WALBytes, s.WALFsyncs, s.WALErrors, s.WALReplayed)
	fmt.Fprintf(w, "  rebuilds: ok=%d failed=%d panics=%d degraded=%v\n",
		s.Rebuilds, s.RebuildFailures, s.RebuildPanics, s.RebuildDegraded)
}

// writeProm renders the mutation families for WriteProm.
func (s *MutationSnapshot) writeProm(p *promWriter) {
	p.int(p.family("wal_appends_total", "Group-commit batches appended to the write-ahead log.", "counter"), s.WALAppends)
	p.int(p.family("wal_bytes_total", "Bytes appended to the write-ahead log.", "counter"), s.WALBytes)
	p.int(p.family("wal_fsyncs_total", "WAL fsyncs issued (group commits plus Flush barriers).", "counter"), s.WALFsyncs)
	p.int(p.family("wal_errors_total", "Failed WAL appends or syncs; the batch was rejected and rolled back.", "counter"), s.WALErrors)
	p.int(p.family("wal_replayed_total", "Mutation ops recovered from the WAL at startup.", "counter"), s.WALReplayed)
	p.int(p.family("mutations_applied_total", "Edge mutations applied to the live overlay.", "counter"), s.Applied)
	p.int(p.family("mutations_rejected_total", "Edge mutations refused (validation or WAL failure).", "counter"), s.Rejected)
	f := p.family("mutation_flush_latency_seconds", "Group-commit flush latency, submit to durable.", "histogram")
	p.histogram(f, &s.FlushLatency)
	f = p.family("overlay_edges", "Delta-overlay size by kind: edges the frozen index does not reflect yet.", "gauge")
	p.int(f, s.OverlayAdded, "kind", "added")
	p.int(f, s.OverlayRemoved, "kind", "removed")
	p.int(p.family("rebuilds_total", "Background reindexes published via hot swap.", "counter"), s.Rebuilds)
	p.int(p.family("rebuild_failures_total", "Background reindex attempts that failed.", "counter"), s.RebuildFailures)
	p.int(p.family("rebuild_panics_total", "Background reindex attempts that panicked (contained).", "counter"), s.RebuildPanics)
	degraded := int64(0)
	if s.RebuildDegraded {
		degraded = 1
	}
	p.int(p.family("rebuild_degraded", "1 while reindex retries are exhausted and the overlay grows unmerged.", "gauge"), degraded)
}
