package server

import (
	"bufio"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	reach "repro"
	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe log sink for the access-log tests.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// tracedServer builds a server with tracing, access logging and a traced
// DB, returning the log sink alongside.
func tracedServer(t *testing.T, slowThreshold time.Duration) (*Server, *httptest.Server, *syncBuffer) {
	t.Helper()
	buf := &syncBuffer{}
	cfg := Config{
		DB:        fig1DB(t, reach.DBConfig{Metrics: true, Tracing: true}),
		Tracer:    obs.NewTracer(8, slowThreshold),
		AccessLog: slog.New(slog.NewJSONHandler(buf, nil)),
	}
	s, ts := newTestServer(t, cfg)
	return s, ts, buf
}

func TestTraceMiddleware(t *testing.T) {
	_, ts, logbuf := tracedServer(t, 0)

	// A caller-supplied request ID is propagated and echoed back.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/reach?s=A&t=G", nil)
	req.Header.Set("X-Request-Id", "caller-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-id-1" {
		t.Fatalf("echoed request ID = %q, want caller-id-1", got)
	}

	// Without one, the server generates an ID and still echoes it.
	resp2, err := http.Get(ts.URL + "/v1/reach?s=A&t=B")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	generated := resp2.Header.Get("X-Request-Id")
	if generated == "" {
		t.Fatal("no generated X-Request-Id on response")
	}

	// /debug/traces serves both, newest first, with phase timelines that
	// include the admission wait and the DB's index probe.
	snap := getJSON(t, ts.URL+"/debug/traces", 200)
	recent, _ := snap["recent"].([]any)
	if len(recent) != 2 {
		t.Fatalf("recent = %d traces, want 2 (snapshot %v)", len(recent), snap)
	}
	newest := recent[0].(map[string]any)
	if newest["id"] != generated {
		t.Fatalf("recent[0].id = %v, want %q", newest["id"], generated)
	}
	oldest := recent[1].(map[string]any)
	if oldest["id"] != "caller-id-1" {
		t.Fatalf("recent[1].id = %v, want caller-id-1", oldest["id"])
	}
	if oldest["method"] != "GET" || oldest["path"] != "/v1/reach" || oldest["status"] != float64(200) {
		t.Fatalf("trace metadata = %v", oldest)
	}
	if oldest["route"] != "plain" {
		t.Fatalf("trace route = %v, want plain", oldest["route"])
	}
	var names []string
	for _, p := range oldest["phases"].([]any) {
		names = append(names, p.(map[string]any)["name"].(string))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"admission/wait", "index/probe"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("phases %v missing %q", names, want)
		}
	}

	// Ops endpoints are not traced.
	http.Get(ts.URL + "/healthz")
	snap = getJSON(t, ts.URL+"/debug/traces", 200)
	if got := len(snap["recent"].([]any)); got != 2 {
		t.Fatalf("healthz added a trace: recent = %d", got)
	}

	// The access log carries one structured line per request with the
	// trace ID joined in.
	var sawTraced bool
	sc := bufio.NewScanner(strings.NewReader(logbuf.String()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("access log line %q not JSON: %v", sc.Text(), err)
		}
		if line["msg"] != "request" && line["msg"] != "slow request" {
			continue
		}
		if line["id"] == "caller-id-1" {
			sawTraced = true
			if line["method"] != "GET" || line["path"] != "/v1/reach" || line["status"] != float64(200) {
				t.Fatalf("access log line = %v", line)
			}
		}
	}
	if !sawTraced {
		t.Fatalf("no access-log line for caller-id-1 in:\n%s", logbuf.String())
	}
}

func TestSlowQueryLog(t *testing.T) {
	// A 1ns threshold makes every request slow: the slow ring fills and
	// the access log escalates to "slow request" at Warn.
	_, ts, logbuf := tracedServer(t, time.Nanosecond)
	resp, err := http.Get(ts.URL + "/v1/reach?s=A&t=G")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	snap := getJSON(t, ts.URL+"/debug/traces", 200)
	slowRing, _ := snap["slow"].([]any)
	if len(slowRing) != 1 {
		t.Fatalf("slow ring = %d, want 1 (snapshot %v)", len(slowRing), snap)
	}
	if slowRing[0].(map[string]any)["slow"] != true {
		t.Fatalf("slow record not flagged: %v", slowRing[0])
	}
	if !strings.Contains(logbuf.String(), `"msg":"slow request"`) ||
		!strings.Contains(logbuf.String(), `"level":"WARN"`) {
		t.Fatalf("no WARN slow-request line in:\n%s", logbuf.String())
	}
}

func TestTracesDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces without a tracer = %d, want 404", resp.StatusCode)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{
		DB:     fig1DB(t, reach.DBConfig{Metrics: true}),
		Tracer: obs.NewTracer(8, 250*time.Millisecond),
	})
	get := func(accept, query string) (string, string) {
		req, _ := http.NewRequest("GET", ts.URL+"/metrics"+query, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET /metrics: status %d (%s)", resp.StatusCode, body)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}

	// Warm the counters so families carry nonzero series.
	http.Get(ts.URL + "/v1/reach?s=A&t=G")

	// Default stays the legacy human-readable dump.
	ct, body := get("", "")
	if strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("default /metrics Content-Type = %q, want legacy text", ct)
	}
	if !strings.Contains(body, "server: accepted=") {
		t.Fatalf("legacy dump missing server line:\n%s", body)
	}

	// A Prometheus scraper's Accept header selects exposition format.
	for _, sel := range []struct{ accept, query string }{
		{"text/plain; version=0.0.4", ""},
		{"application/openmetrics-text; version=1.0.0", ""},
		{"", "?format=prometheus"},
	} {
		ct, body = get(sel.accept, sel.query)
		if ct != obs.PromContentType {
			t.Fatalf("prom Content-Type = %q (accept %q)", ct, sel.accept)
		}
		for _, want := range []string{
			"# TYPE reach_server_accepted_total counter",
			"# TYPE reach_traces_started_total counter",
			"# TYPE reach_index_queries_total counter",
			`reach_route_queries_total{route="plain"} 1`,
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("prom exposition missing %q (accept %q):\n%s", want, sel.accept, body)
			}
		}
	}
}

func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof enabled = %d (%d bytes), want a 200 index", resp.StatusCode, len(body))
	}
}
