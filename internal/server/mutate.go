package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	reach "repro"
)

// maxMutateBody bounds the /v1/mutate request body, mirroring the batch
// endpoint's discipline.
const maxMutateBody = 16 << 20

// mutateRequest is the /v1/mutate body:
//
//	{"ops":[{"op":"add","s":3,"t":"G"},{"op":"remove","s":1,"t":2}]}
//
// op is "add" or "remove"; vertices are JSON numbers (ids) or strings
// (ids or names), like everywhere else in the API.
type mutateRequest struct {
	Ops []struct {
		Op string    `json:"op"`
		S  vertexRef `json:"s"`
		T  vertexRef `json:"t"`
	} `json:"ops"`
}

type mutateResponse struct {
	Applied        int `json:"applied"`
	OverlayAdded   int `json:"overlay_added"`
	OverlayRemoved int `json:"overlay_removed"`
}

// handleMutate applies a slice of edge mutations as one atomic,
// durably-logged unit. The request blocks until its group commit is on
// disk (per the server's WAL fsync policy); the response reports the
// overlay size so clients can observe rebuild progress. A server whose
// DB was started without a WAL answers 501.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	db := s.DB()
	g := db.Graph()
	var req mutateRequest
	body := http.MaxBytesReader(w, r.Body, maxMutateBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad mutate body: "+err.Error())
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, "empty ops")
		return
	}
	if len(req.Ops) > s.cfg.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("mutation has %d ops, limit is %d", len(req.Ops), s.cfg.MaxBatch))
		return
	}
	ops := make([]reach.EdgeOp, len(req.Ops))
	for i, o := range req.Ops {
		var remove bool
		switch o.Op {
		case "add":
		case "remove":
			remove = true
		default:
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("op %d: unknown op %q (want add or remove)", i, o.Op))
			return
		}
		sv, err := o.S.resolve(g)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("op %d: s: %v", i, err))
			return
		}
		tv, err := o.T.resolve(g)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("op %d: t: %v", i, err))
			return
		}
		ops[i] = reach.EdgeOp{Remove: remove, From: sv, To: tv}
	}
	if err := db.Mutate(r.Context(), ops); err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	resp := mutateResponse{Applied: len(ops)}
	if ms, ok := db.MutationStats(); ok {
		resp.OverlayAdded = ms.OverlayAdded
		resp.OverlayRemoved = ms.OverlayRemoved
	}
	writeJSON(w, http.StatusOK, resp)
}
