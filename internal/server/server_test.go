package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	reach "repro"
	"repro/internal/faultinject"
)

// fig1DB builds a DB over the paper's Figure 1(b) labeled graph.
func fig1DB(t *testing.T, cfg reach.DBConfig) *reach.DB {
	t.Helper()
	db, err := reach.NewDB(reach.Fig1Labeled(), cfg)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	return db
}

// newTestServer stands up a Server over Fig1(b) plus an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = fig1DB(t, reach.DBConfig{})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	var m map[string]any
	if len(body) > 0 {
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return m
}

// TestEndpoints drives every query endpoint over HTTP and checks the
// paper's published Figure 1 answers come back with the right statuses.
func TestEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4})

	for _, tc := range []struct {
		name, url string
		status    int
		reachable any // nil to skip the field check
	}{
		{"reach-pos", "/v1/reach?s=A&t=G", 200, true},
		{"reach-neg", "/v1/reach?s=G&t=A", 200, false},
		{"reach-by-id", "/v1/reach?s=0&t=4", 200, true},
		{"reach-bad-vertex", "/v1/reach?s=A&t=ZZZ", 400, nil},
		{"reach-out-of-range", "/v1/reach?s=0&t=99", 400, nil},
		{"query-constrained", "/v1/query?s=A&t=G&alpha=(friendOf|follows)*", 200, false},
		{"query-missing-alpha", "/v1/query?s=A&t=G", 400, nil},
		{"query-bad-alpha", "/v1/query?s=A&t=G&alpha=((", 400, nil},
		{"allowed-pos", "/v1/allowed?s=L&t=M&labels=worksFor,follows", 200, true},
		{"allowed-neg", "/v1/allowed?s=A&t=G&labels=friendOf,follows", 200, false},
		{"allowed-bad-label", "/v1/allowed?s=A&t=G&labels=nosuch", 400, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := getJSON(t, ts.URL+tc.url, tc.status)
			if tc.reachable != nil && m["reachable"] != tc.reachable {
				t.Errorf("reachable = %v, want %v", m["reachable"], tc.reachable)
			}
			if tc.status != 200 && m["error"] == "" {
				t.Errorf("error body missing: %v", m)
			}
		})
	}

	t.Run("path-plain", func(t *testing.T) {
		m := getJSON(t, ts.URL+"/v1/path?s=A&t=G", 200)
		if m["found"] != true || len(m["path"].([]any)) < 2 {
			t.Errorf("path = %v", m)
		}
	})
	t.Run("path-constrained", func(t *testing.T) {
		m := getJSON(t, ts.URL+"/v1/path?s=L&t=B&alpha=(worksFor.friendOf)*", 200)
		if m["found"] != true || len(m["edges"].([]any)) != 4 {
			t.Errorf("constrained path = %v", m)
		}
	})

	t.Run("batch", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
			strings.NewReader(`{"pairs":[{"s":"A","t":"G"},{"s":"G","t":"A"},{"s":0,"t":1}]}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil || resp.StatusCode != 200 {
			t.Fatalf("batch: status %d err %v", resp.StatusCode, err)
		}
		// A→G holds, G→A does not, and 0→1 is A→B via (A,D,H,G,B).
		want := []bool{true, false, true}
		for i, w := range want {
			if m.Results[i] != w {
				t.Errorf("batch[%d] = %v, want %v", i, m.Results[i], w)
			}
		}
	})
	t.Run("batch-too-big", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
			strings.NewReader(`{"pairs":[{"s":0,"t":1},{"s":0,"t":1},{"s":0,"t":1},{"s":0,"t":1},{"s":0,"t":1}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
		}
	})
	t.Run("batch-method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/batch")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/batch: status %d, want 405", resp.StatusCode)
		}
	})

	t.Run("ops", func(t *testing.T) {
		for _, url := range []string{"/healthz", "/readyz"} {
			resp, err := http.Get(ts.URL + url)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("%s: status %d", url, resp.StatusCode)
			}
		}
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "server: accepted=") {
			t.Errorf("/metrics missing server line: %s", body)
		}
		stats := getJSON(t, ts.URL+"/admin/stats", 200)
		if g := stats["graph"].(map[string]any); g["vertices"] != float64(9) {
			t.Errorf("stats graph = %v", g)
		}
		if _, ok := stats["indexes"].(map[string]any)["BFL"]; !ok {
			t.Errorf("stats missing BFL index: %v", stats["indexes"])
		}
	})
}

// TestClientCancelMidRequest cancels a request while the handler is
// mid-flight and verifies the server releases the slot and keeps serving.
func TestClientCancelMidRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	entered := make(chan struct{}, 1)
	s.testHookAdmitted = func(r *http.Request) {
		entered <- struct{}{}
		<-r.Context().Done() // hold the request until the client hangs up
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/reach?s=A&t=G", nil)
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-entered
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned a response")
	}

	// The slot must come back and later requests must succeed.
	s.testHookAdmitted = nil
	deadline := time.Now().Add(2 * time.Second)
	for s.metrics.InFlight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight stuck at %d after cancel", s.metrics.InFlight.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if m := getJSON(t, ts.URL+"/v1/reach?s=A&t=G", 200); m["reachable"] != true {
		t.Errorf("post-cancel request: %v", m)
	}
}

// TestAdmissionOverload saturates a 2-slot server and checks the
// acceptance criterion: overflow is rejected with 429 + Retry-After while
// observed in-flight never exceeds the bound, and the stalled requests
// still complete once released.
func TestAdmissionOverload(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlight: 2,
		MaxQueue:    2,
		QueueWait:   50 * time.Millisecond,
	})
	gate := make(chan struct{})
	s.testHookAdmitted = func(*http.Request) { <-gate }

	const clients = 10
	statuses := make(chan int, clients)
	retryAfter := make(chan string, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/reach?s=A&t=G")
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				retryAfter <- resp.Header.Get("Retry-After")
			}
			statuses <- resp.StatusCode
		}()
	}

	// All but the two admitted must be rejected: the queue never exceeds
	// 2 and queued requests give up after QueueWait.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.Rejected.Load() < clients-2 {
		if inflight := s.metrics.InFlight.Load(); inflight > 2 {
			t.Fatalf("in-flight %d exceeds MaxInFlight 2", inflight)
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejected = %d, want %d", s.metrics.Rejected.Load(), clients-2)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	counts := map[int]int{}
	for i := 0; i < clients; i++ {
		counts[<-statuses]++
	}
	if counts[200] != 2 || counts[429] != clients-2 {
		t.Fatalf("status counts = %v, want 2×200 and %d×429", counts, clients-2)
	}
	for i := 0; i < clients-2; i++ {
		if ra := <-retryAfter; ra == "" {
			t.Fatal("429 without Retry-After header")
		}
	}
	if got := s.metrics.Accepted.Load(); got != 2 {
		t.Errorf("accepted = %d, want 2", got)
	}
}

// TestDegradedServing injects a panic into the LCR build, brings the DB
// up in degraded mode, and verifies constrained queries still answer 200
// (via online traversal) while /admin/stats reports the degradation.
func TestDegradedServing(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{Site: "build/lcr/p2h", Kind: faultinject.Panic, After: 3})
	db, err := reach.NewDB(reach.Fig1Labeled(), reach.DBConfig{Degraded: true, Metrics: true})
	faultinject.Deactivate()
	if err != nil {
		t.Fatalf("degraded NewDB: %v", err)
	}
	if dr := db.DegradedRoutes(); dr["lcr"] == nil {
		t.Fatalf("DegradedRoutes = %v, want lcr entry", dr)
	}
	_, ts := newTestServer(t, Config{DB: db})

	// The alternation queries route index-free but stay correct: the
	// paper's Qr(A,G,(friendOf ∪ follows)*) = false, Qr(L,M,worksFor*) = true.
	if m := getJSON(t, ts.URL+"/v1/query?s=A&t=G&alpha=(friendOf|follows)*", 200); m["reachable"] != false {
		t.Errorf("degraded query = %v, want false", m)
	}
	if m := getJSON(t, ts.URL+"/v1/allowed?s=L&t=M&labels=worksFor", 200); m["reachable"] != true {
		t.Errorf("degraded allowed = %v, want true", m)
	}
	stats := getJSON(t, ts.URL+"/admin/stats", 200)
	deg, ok := stats["degraded"].(map[string]any)
	if !ok || deg["lcr"] == nil {
		t.Errorf("stats degraded = %v, want lcr entry", stats["degraded"])
	}
}

// TestReloadDuringTraffic hammers the query path while hot-swapping the
// DB underneath it; the acceptance criterion is zero failed requests
// across the swaps.
func TestReloadDuringTraffic(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Rebuild: func(ctx context.Context) (*reach.DB, error) {
			return reach.NewDBCtx(ctx, reach.Fig1Labeled(), reach.DBConfig{})
		},
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	type failure struct {
		status int
		body   string
	}
	failures := make(chan failure, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			urls := []string{
				ts.URL + "/v1/reach?s=A&t=G",
				ts.URL + "/v1/query?s=L&t=M&alpha=(worksFor)*",
			}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(urls[n%len(urls)])
				if err != nil {
					failures <- failure{-1, err.Error()}
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					failures <- failure{resp.StatusCode, string(body)}
					return
				}
			}
		}(i)
	}

	const reloads = 5
	for i := 0; i < reloads; i++ {
		resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("reload %d: status %d body %s", i, resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Errorf("request failed during reload: status %d body %s", f.status, f.body)
	}
	if got := s.metrics.Reloads.Load(); got != reloads {
		t.Errorf("reloads = %d, want %d", got, reloads)
	}
}

// TestReloadConflict verifies concurrent reloads serialize: the second
// gets ErrReloadInProgress while the first is still rebuilding.
func TestReloadConflict(t *testing.T) {
	block := make(chan struct{})
	s, _ := newTestServer(t, Config{
		Rebuild: func(ctx context.Context) (*reach.DB, error) {
			<-block
			return reach.NewDBCtx(ctx, reach.Fig1Labeled(), reach.DBConfig{})
		},
	})
	first := make(chan error, 1)
	go func() { first <- s.Reload(context.Background()) }()
	deadline := time.Now().Add(2 * time.Second)
	for !s.reloading.Load() {
		if time.Now().After(deadline) {
			t.Fatal("first reload never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Reload(context.Background()); err != ErrReloadInProgress {
		t.Fatalf("concurrent reload: err = %v, want ErrReloadInProgress", err)
	}
	close(block)
	if err := <-first; err != nil {
		t.Fatalf("first reload: %v", err)
	}
}

// TestGracefulDrain runs the full lifecycle on a real listener: stall
// in-flight requests, begin Shutdown, observe /readyz flip to 503, then
// release and verify every stalled request completed — zero dropped.
func TestGracefulDrain(t *testing.T) {
	db := fig1DB(t, reach.DBConfig{})
	s, err := New(Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.testHookAdmitted = func(*http.Request) { <-gate }

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	const inflight = 4
	statuses := make(chan int, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			resp, err := http.Get(base + "/v1/reach?s=A&t=G")
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.InFlight.Load() != inflight {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight = %d, want %d", s.metrics.InFlight.Load(), inflight)
		}
		time.Sleep(time.Millisecond)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	// The readiness probe must report draining so load balancers stop
	// routing here; probe through the handler (the listener is closing).
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: status %d, want 503", rec.Code)
	}

	close(gate)
	for i := 0; i < inflight; i++ {
		if st := <-statuses; st != 200 {
			t.Errorf("request dropped during drain: status %d", st)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	if got := s.metrics.Drained.Load(); got != inflight {
		t.Errorf("drained = %d, want %d", got, inflight)
	}
}

// TestRequestTimeout gives the server a tiny per-request deadline and
// stalls the handler past it: the response must be 504, not a hang.
func TestRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 20 * time.Millisecond})
	s.testHookAdmitted = func(r *http.Request) { <-r.Context().Done() }
	resp, err := http.Get(ts.URL + "/v1/reach?s=A&t=G")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stalled request: status %d body %s, want 504", resp.StatusCode, body)
	}
}

// TestBadQueryStatus covers the reach.StatusCode mapping end to end for
// the 400 family (vertex range and malformed constraint expressions).
func TestBadQueryStatus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, url := range []string{
		"/v1/reach?s=0&t=9999",
		"/v1/query?s=A&t=G&alpha=)(",
		"/v1/path?s=A&t=G&alpha=)(",
	} {
		m := getJSON(t, ts.URL+url, 400)
		if m["error"] == "" {
			t.Errorf("%s: missing error body", url)
		}
	}
}
