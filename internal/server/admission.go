package server

import (
	"context"
	"time"

	"repro/internal/obs"
)

// admission is the query-path admission controller: a counting semaphore
// (slots) bounds requests executing concurrently, and a second semaphore
// (waiters) bounds requests parked waiting for a slot. Everything beyond
// MaxInFlight+MaxQueue — or anything queued longer than QueueWait — is
// rejected immediately, so one burst cannot pile unbounded goroutines
// onto the scratch pools; the 429 the caller sends is the backpressure
// signal. Channel semaphores keep this allocation-free per request.
type admission struct {
	slots   chan struct{} // capacity MaxInFlight: held while executing
	waiters chan struct{} // capacity MaxQueue: held while queued
	wait    time.Duration
	metrics *obs.ServerMetrics
}

// admitResult is the outcome of one admission attempt.
type admitResult int

const (
	admitOK       admitResult = iota // slot held; caller must release()
	admitRejected                    // over capacity → 429 + Retry-After
	admitGone                        // caller's context ended while queued
)

// acquire tries to claim an execution slot, queueing for at most wait
// when all slots are busy.
func (a *admission) acquire(ctx context.Context) admitResult {
	select {
	case a.slots <- struct{}{}:
		return admitOK
	default:
	}
	// All slots busy: take a queue ticket or reject on a full queue.
	select {
	case a.waiters <- struct{}{}:
	default:
		return admitRejected
	}
	a.metrics.Queued.Add(1)
	defer func() {
		a.metrics.Queued.Add(-1)
		<-a.waiters
	}()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return admitOK
	case <-timer.C:
		return admitRejected
	case <-ctx.Done():
		return admitGone
	}
}

// release returns an execution slot claimed by acquire.
func (a *admission) release() { <-a.slots }
