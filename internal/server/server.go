// Package server is the network serving subsystem over *reach.DB: an
// HTTP/JSON API (cmd/reachserve is the binary) that composes the
// library's serving-layer pieces into something an operator can run —
//
//   - query endpoints /v1/reach, /v1/query, /v1/allowed, /v1/batch and
//     /v1/path, threaded through the DB's context-aware entry points so
//     per-request deadlines and client disconnects cancel work;
//   - a mutation endpoint POST /v1/mutate (DBs started with a WAL —
//     see DBConfig.Mutation and reachserve's -wal): edge add/remove
//     batches group-commit durably before acknowledging, and queries
//     answer exactly from the frozen index plus the live delta overlay;
//   - typed errors mapped to status codes via reach.StatusCode (caller
//     errors → 400, deadline → 504, contained index panics → 500 —
//     degraded-mode DBs keep answering 200, index-free);
//   - a semaphore admission controller with a bounded wait queue, so a
//     burst beyond MaxInFlight+MaxQueue is turned away with 429 and
//     Retry-After instead of blowing the scratch pools;
//   - graceful drain: Shutdown flips /readyz to 503, stops accepting,
//     and finishes every in-flight request under the caller's deadline;
//   - atomic hot-swap reload: /admin/reload rebuilds a DB in the
//     background (Config.Rebuild, typically NewDBCtx over a re-read
//     graph file) and swaps it behind an atomic pointer — requests
//     pin the DB once at admission, so traffic never observes a
//     half-swapped state and zero requests fail across a swap;
//   - ops surfaces /healthz, /readyz, /metrics (text snapshot),
//     /debug/vars (expvar) and /admin/stats.
//
// See DESIGN.md ("Serving") for the architecture and OBSERVABILITY.md
// for the server counters.
package server

import (
	"context"
	"errors"
	"expvar"
	"log"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	reach "repro"
	"repro/internal/obs"
)

// Config configures a Server. The zero value of every field except DB is
// usable; New applies the documented defaults.
type Config struct {
	// DB is the database the server fronts. Required.
	DB *reach.DB
	// Rebuild constructs a replacement DB for /admin/reload (typically
	// reach.NewDBCtx over a re-read graph file). Nil disables reload.
	Rebuild func(ctx context.Context) (*reach.DB, error)
	// MaxInFlight bounds concurrently executing query requests; excess
	// requests wait in the bounded queue. Default 256.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; a request
	// arriving with the queue full is rejected immediately with 429.
	// Default MaxInFlight. Negative means no queue (reject when busy).
	MaxQueue int
	// QueueWait is how long a queued request waits for a slot before
	// giving up with 429. Default 100ms.
	QueueWait time.Duration
	// RetryAfter is the Retry-After hint attached to 429 responses.
	// Default 1s (rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// RequestTimeout is the per-request deadline threaded through the
	// DB's *Ctx entry points. Default 10s; negative disables.
	RequestTimeout time.Duration
	// ReloadTimeout bounds one /admin/reload rebuild. Default 0: no
	// limit. The rebuild runs detached from the admin request's context,
	// so a dropped admin connection never aborts a rebuild midway.
	ReloadTimeout time.Duration
	// MaxBatch caps the pairs accepted by one /v1/batch request
	// (oversized requests get 413). Default 16384.
	MaxBatch int
	// ExpvarName, when non-empty, publishes the current DB's metrics
	// snapshot under this name in the process-wide expvar registry
	// (visible on /debug/vars). Swap-aware: after a reload the published
	// function reads the new DB. Publishing an already-taken name is a
	// no-op, mirroring DB.PublishExpvar.
	ExpvarName string
	// Log receives serving-lifecycle lines (reloads, drain). Default
	// log.Default().
	Log *log.Logger
	// Tracer, when non-nil, turns on per-request tracing for the /v1/*
	// query endpoints: each request gets an obs.Trace threaded through
	// its context (pair it with reach.DBConfig.Tracing so the DB appends
	// phase timings), finished traces feed the Tracer's ring buffers, and
	// GET /debug/traces serves the recent/slow rings as JSON.
	Tracer *obs.Tracer
	// AccessLog, when non-nil, receives one structured line per request
	// (method, path, status, latency, bytes, trace ID, admission wait).
	// Requests over the Tracer's slow threshold log at Warn.
	AccessLog *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints can stall the process (e.g. a 30s CPU
	// profile) and belong behind an operator's explicit opt-in.
	EnablePprof bool
}

func (cfg *Config) defaults() {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = cfg.MaxInFlight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 100 * time.Millisecond
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	switch {
	case cfg.RequestTimeout == 0:
		cfg.RequestTimeout = 10 * time.Second
	case cfg.RequestTimeout < 0:
		cfg.RequestTimeout = 0
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16384
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
}

// ErrReloadInProgress reports a /admin/reload that found another reload
// still rebuilding; the caller should retry after the current one lands.
var ErrReloadInProgress = errors.New("server: reload already in progress")

// Server serves reachability queries over HTTP. Create with New, serve
// with Serve (or mount Handler), stop with Shutdown.
type Server struct {
	cfg     Config
	db      atomic.Pointer[reach.DB]
	adm     *admission
	metrics *obs.ServerMetrics
	handler http.Handler
	httpSrv *http.Server

	draining  atomic.Bool
	reloading atomic.Bool

	// testHookAdmitted, when non-nil, runs after a query request clears
	// admission and before it executes — the test suite's seam for
	// holding requests in flight deterministically.
	testHookAdmitted func(*http.Request)
}

// New builds a Server over cfg.DB.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	cfg.defaults()
	s := &Server{
		cfg:     cfg,
		metrics: &obs.ServerMetrics{},
		adm: &admission{
			slots:   make(chan struct{}, cfg.MaxInFlight),
			waiters: make(chan struct{}, cfg.MaxQueue),
			wait:    cfg.QueueWait,
		},
	}
	s.db.Store(cfg.DB)
	s.adm.metrics = s.metrics
	s.handler = s.routes()
	// The observe middleware costs a context allocation per request, so
	// it is only installed when something consumes what it produces.
	if cfg.Tracer != nil || cfg.AccessLog != nil {
		s.handler = s.observe(s.handler)
	}
	s.httpSrv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if cfg.ExpvarName != "" {
		s.publishExpvar(cfg.ExpvarName)
	}
	return s, nil
}

// DB returns the currently serving database. Handlers pin it once per
// request, so a concurrent reload never swaps a DB out from under a
// running query (the old DB is immutable and stays valid until its last
// request returns).
func (s *Server) DB() *reach.DB { return s.db.Load() }

// Metrics returns the server's admission/lifecycle counters.
func (s *Server) Metrics() *obs.ServerMetrics { return s.metrics }

// Handler returns the server's HTTP handler, for mounting under a
// caller-owned http.Server or test harness.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on l until Shutdown. Like net/http, it
// returns http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(l net.Listener) error { return s.httpSrv.Serve(l) }

// Shutdown drains the server: /readyz flips to 503 (so load balancers
// stop sending), listeners close, and every in-flight request runs to
// completion — zero in-flight requests are dropped — unless ctx expires
// first, in which case Shutdown returns ctx.Err with requests still
// outstanding.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cfg.Log.Printf("draining (in-flight=%d queued=%d)",
		s.metrics.InFlight.Load(), s.metrics.Queued.Load())
	return s.httpSrv.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Reload rebuilds the DB via Config.Rebuild and atomically swaps it in.
// Requests running against the old DB finish there; requests admitted
// after the swap see the new DB. At most one reload runs at a time
// (ErrReloadInProgress otherwise); a failed rebuild leaves the old DB
// serving and counts server/reload_errors.
func (s *Server) Reload(ctx context.Context) error {
	if s.cfg.Rebuild == nil {
		return errors.New("server: no rebuild source configured")
	}
	if !s.reloading.CompareAndSwap(false, true) {
		return ErrReloadInProgress
	}
	defer s.reloading.Store(false)
	start := time.Now()
	db, err := s.cfg.Rebuild(ctx)
	if err == nil && db == nil {
		err = errors.New("server: rebuild returned a nil DB")
	}
	if err != nil {
		s.metrics.ReloadErrors.Inc()
		s.cfg.Log.Printf("reload failed after %v: %v", time.Since(start).Round(time.Millisecond), err)
		return err
	}
	s.db.Store(db)
	s.metrics.Reloads.Inc()
	s.cfg.Log.Printf("reload complete in %v (%d vertices, %d edges)",
		time.Since(start).Round(time.Millisecond), db.Graph().N(), db.Graph().M())
	return nil
}

// publishExpvar exposes the *current* DB's metrics snapshot under name:
// the closure re-reads the atomic pointer on every scrape, so the expvar
// surface follows hot swaps instead of pinning the boot-time DB.
func (s *Server) publishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		if snap, ok := s.DB().MetricsSnapshot(); ok {
			return snap
		}
		return nil
	}))
}

// reloadCtx derives the context one reload runs under: detached from the
// admin request (a dropped connection must not abort a build midway),
// bounded by ReloadTimeout when configured.
func (s *Server) reloadCtx() (context.Context, context.CancelFunc) {
	if s.cfg.ReloadTimeout > 0 {
		return context.WithTimeout(context.Background(), s.cfg.ReloadTimeout)
	}
	return context.Background(), func() {}
}
