package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	reach "repro"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/mutate"
)

// mutableServer stands up a server over an unlabeled random DAG with a
// WAL in a temp dir, returning the server pieces and the graph size.
func mutableServer(t *testing.T, mc reach.MutationConfig) (*Server, string, int) {
	t.Helper()
	g := gen.RandomDAG(gen.Config{N: 20, M: 40, Seed: 99})
	if mc.WALPath == "" {
		mc.WALPath = filepath.Join(t.TempDir(), "srv.wal")
	}
	db, err := reach.NewDB(g, reach.DBConfig{Metrics: true, Mutation: &mc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s, ts := newTestServer(t, Config{DB: db, MaxBatch: 8})
	return s, ts.URL, g.N()
}

func postMutate(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/mutate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("bad JSON %q: %v", raw, err)
		}
	}
	return resp.StatusCode, m
}

func reachAnswer(t *testing.T, url string, s, tt int) bool {
	t.Helper()
	m := getJSON(t, fmt.Sprintf("%s/v1/reach?s=%d&t=%d", url, s, tt), 200)
	return m["reachable"] == true
}

// TestMutateEndpoint drives the add/remove/re-add cycle over HTTP and
// watches the query endpoints flip — the end-to-end exactness loop.
func TestMutateEndpoint(t *testing.T) {
	_, url, n := mutableServer(t, reach.MutationConfig{RebuildThreshold: -1, Fsync: reach.FsyncNever})
	s, tt := n-1, 0 // DAG edges go low→high, so n-1 cannot reach 0

	if reachAnswer(t, url, s, tt) {
		t.Fatalf("%d→%d reachable before mutation", s, tt)
	}
	code, m := postMutate(t, url, fmt.Sprintf(`{"ops":[{"op":"add","s":%d,"t":%d}]}`, s, tt))
	if code != 200 || m["applied"] != float64(1) {
		t.Fatalf("add: status %d, body %v", code, m)
	}
	if m["overlay_added"] != float64(1) {
		t.Fatalf("overlay_added = %v, want 1", m["overlay_added"])
	}
	if !reachAnswer(t, url, s, tt) {
		t.Fatal("added edge invisible to /v1/reach")
	}
	if code, _ := postMutate(t, url, fmt.Sprintf(`{"ops":[{"op":"remove","s":%d,"t":%d}]}`, s, tt)); code != 200 {
		t.Fatalf("remove: status %d", code)
	}
	if reachAnswer(t, url, s, tt) {
		t.Fatal("removed edge still reachable")
	}
	if code, _ := postMutate(t, url, fmt.Sprintf(`{"ops":[{"op":"add","s":%d,"t":%d}]}`, s, tt)); code != 200 {
		t.Fatalf("re-add: status %d", code)
	}
	if !reachAnswer(t, url, s, tt) {
		t.Fatal("re-added edge invisible (add/remove/add did not converge)")
	}

	// Batch queries see the same overlay.
	body := fmt.Sprintf(`{"pairs":[{"s":%d,"t":%d},{"s":%d,"t":%d}]}`, s, tt, tt, s)
	resp, err := http.Post(url+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br struct {
		Results []bool `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 || !br.Results[0] || br.Results[1] {
		t.Fatalf("batch results = %v, want [true false]", br.Results)
	}
}

// TestMutateEndpointErrors: malformed requests get typed 4xx answers and
// a WAL-less server answers 501 without touching anything.
func TestMutateEndpointErrors(t *testing.T) {
	_, url, n := mutableServer(t, reach.MutationConfig{RebuildThreshold: -1, Fsync: reach.FsyncNever})
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty ops", `{"ops":[]}`, 400},
		{"bad json", `{"ops":`, 400},
		{"unknown op", `{"ops":[{"op":"upsert","s":0,"t":1}]}`, 400},
		{"bad vertex", `{"ops":[{"op":"add","s":"nope","t":1}]}`, 400},
		{"out of range", fmt.Sprintf(`{"ops":[{"op":"add","s":0,"t":%d}]}`, n), 400},
		{"over batch limit", func() string {
			var b bytes.Buffer
			b.WriteString(`{"ops":[`)
			for i := 0; i < 9; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `{"op":"add","s":0,"t":1}`)
			}
			b.WriteString(`]}`)
			return b.String()
		}(), 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code, _ := postMutate(t, url, tc.body); code != tc.status {
				t.Fatalf("status = %d, want %d", code, tc.status)
			}
		})
	}

	// A server without a WAL refuses mutations as unimplemented.
	_, ts := newTestServer(t, Config{})
	code, m := postMutate(t, ts.URL, `{"ops":[{"op":"add","s":"A","t":"G"}]}`)
	if code != 501 {
		t.Fatalf("mutate on immutable DB: status %d (%v), want 501", code, m)
	}
}

// TestMutateStatsExposed: /admin/stats grows a mutation block and the
// Prometheus exposition carries the new families.
func TestMutateStatsExposed(t *testing.T) {
	_, url, n := mutableServer(t, reach.MutationConfig{RebuildThreshold: -1, Fsync: reach.FsyncNever})
	if code, _ := postMutate(t, url, fmt.Sprintf(`{"ops":[{"op":"add","s":%d,"t":0}]}`, n-1)); code != 200 {
		t.Fatal("seed mutation failed")
	}
	stats := getJSON(t, url+"/admin/stats", 200)
	mut, ok := stats["mutation"].(map[string]any)
	if !ok {
		t.Fatalf("no mutation block in stats: %v", stats)
	}
	if mut["wal_seq"] != float64(1) || mut["overlay_added"] != float64(1) {
		t.Fatalf("mutation stats = %v", mut)
	}

	resp, err := http.Get(url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prom, _ := io.ReadAll(resp.Body)
	for _, family := range []string{
		"reach_mutations_applied_total 1",
		"reach_wal_appends_total 1",
		"reach_overlay_edges{kind=\"added\"} 1",
	} {
		if !strings.Contains(string(prom), family) {
			t.Fatalf("prometheus exposition missing %q:\n%s", family, prom)
		}
	}
}

// TestMutateRebuildPanicAvailability is the acceptance scenario end to
// end over HTTP: a rebuild that panics must leave the server answering
// 200s (old index + overlay), with the failure visible in /metrics.
func TestMutateRebuildPanicAvailability(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{Site: mutate.SiteRebuild, Kind: faultinject.Panic})
	t.Cleanup(faultinject.Deactivate)

	s, url, n := mutableServer(t, reach.MutationConfig{
		RebuildThreshold: 2,
		RebuildRetries:   -1,
		Fsync:            reach.FsyncNever,
	})
	// Two adds cross the threshold; the triggered rebuild panics.
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"ops":[{"op":"add","s":%d,"t":%d}]}`, n-1-i, i)
		if code, _ := postMutate(t, url, body); code != 200 {
			t.Fatalf("mutation %d: status %d", i, code)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ms, ok := s.DB().MutationStats()
		if ok && ms.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebuild panic never degraded the engine: %+v", ms)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Availability: the mutated answers still come back 200 and correct.
	if !reachAnswer(t, url, n-1, 0) || !reachAnswer(t, url, n-2, 1) {
		t.Fatal("mutated edges lost while degraded")
	}
	resp, err := http.Get(url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prom, _ := io.ReadAll(resp.Body)
	for _, family := range []string{"reach_rebuild_panics_total 1", "reach_rebuild_degraded 1"} {
		if !strings.Contains(string(prom), family) {
			t.Fatalf("prometheus exposition missing %q", family)
		}
	}
}
