package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	reach "repro"
	"repro/internal/obs"
)

// statusClientGone is the nginx-convention status for "client closed the
// request before the response was written". Nobody reads it off the
// wire; it exists so access logs and route counters classify these apart
// from real failures.
const statusClientGone = 499

// maxBatchBody bounds the /v1/batch request body; combined with
// Config.MaxBatch it keeps one request from ballooning server memory.
const maxBatchBody = 16 << 20

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	// Query endpoints go through the admission controller; ops surfaces
	// bypass it — health checks and metric scrapes must answer even (and
	// especially) when the query path is saturated.
	mux.Handle("/v1/reach", s.admit(s.handleReach))
	mux.Handle("/v1/query", s.admit(s.handleQuery))
	mux.Handle("/v1/allowed", s.admit(s.handleAllowed))
	mux.Handle("POST /v1/batch", s.admit(s.handleBatch))
	mux.Handle("/v1/path", s.admit(s.handlePath))
	mux.Handle("POST /v1/mutate", s.admit(s.handleMutate))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /admin/stats", s.handleStats)
	mux.HandleFunc("GET /admin/shards", s.handleShards)
	mux.HandleFunc("GET /admin/advise", s.handleAdvise)
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// admit wraps a query handler in the admission controller, the in-flight
// accounting, and the per-request deadline.
func (s *Server) admit(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := stateFrom(r.Context())
		var tok int
		if st != nil && st.trace != nil {
			tok = st.trace.Begin("admission/wait")
		}
		waitStart := time.Now()
		verdict := s.adm.acquire(r.Context())
		if st != nil {
			st.admissionWait = time.Since(waitStart)
			if st.trace != nil {
				st.trace.End(tok)
			}
		}
		switch verdict {
		case admitRejected:
			s.metrics.Rejected.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(s.cfg.RetryAfter)))
			writeErr(w, http.StatusTooManyRequests, "server overloaded; retry later")
			return
		case admitGone:
			writeErr(w, statusClientGone, "client closed request while queued")
			return
		}
		s.metrics.Accepted.Inc()
		s.metrics.InFlight.Add(1)
		defer func() {
			s.metrics.InFlight.Add(-1)
			if s.draining.Load() {
				s.metrics.Drained.Inc()
			}
			s.adm.release()
		}()
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if hook := s.testHookAdmitted; hook != nil {
			hook(r)
		}
		h(w, r)
	})
}

func retrySeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// --- query endpoints ---------------------------------------------------

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	db := s.DB()
	sv, tv, ok := s.pair(w, r, db.Graph())
	if !ok {
		return
	}
	res, err := db.ReachCtx(r.Context(), sv, tv)
	if err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, reachResponse{Reachable: res})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	db := s.DB()
	sv, tv, ok := s.pair(w, r, db.Graph())
	if !ok {
		return
	}
	alpha := r.FormValue("alpha")
	if alpha == "" {
		writeErr(w, http.StatusBadRequest, "missing alpha (the path-constraint expression)")
		return
	}
	res, err := db.QueryCtx(r.Context(), sv, tv, alpha)
	if err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, reachResponse{Reachable: res})
}

func (s *Server) handleAllowed(w http.ResponseWriter, r *http.Request) {
	db := s.DB()
	g := db.Graph()
	sv, tv, ok := s.pair(w, r, g)
	if !ok {
		return
	}
	raw := r.FormValue("labels")
	if raw == "" {
		writeErr(w, http.StatusBadRequest, "missing labels (comma-separated label names or ids)")
		return
	}
	var labels []reach.Label
	for _, tok := range strings.Split(raw, ",") {
		l, err := labelOf(g, strings.TrimSpace(tok))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		labels = append(labels, l)
	}
	res, err := db.QueryAllowed(sv, tv, labels...)
	if err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, reachResponse{Reachable: res})
}

// batchRequest is the /v1/batch body: {"pairs":[{"s":0,"t":"G"},...]}.
// Vertices are JSON numbers (ids) or strings (ids or names).
type batchRequest struct {
	Pairs []struct {
		S vertexRef `json:"s"`
		T vertexRef `json:"t"`
	} `json:"pairs"`
}

type batchResponse struct {
	Results []bool `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	db := s.DB()
	g := db.Graph()
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, maxBatchBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(req.Pairs) > s.cfg.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch has %d pairs, limit is %d", len(req.Pairs), s.cfg.MaxBatch))
		return
	}
	pairs := make([]reach.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		sv, err := p.S.resolve(g)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("pair %d: %v", i, err))
			return
		}
		tv, err := p.T.resolve(g)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("pair %d: %v", i, err))
			return
		}
		pairs[i] = reach.Pair{S: sv, T: tv}
	}
	// The DB picks the batch path: the 64-way bit-parallel kernel when
	// the graph is frozen (or the mutation overlay is empty), exact
	// per-pair overlay evaluation when live mutations are pending.
	out, err := db.BatchReachCtx(r.Context(), pairs)
	if err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: out})
}

type pathResponse struct {
	Found bool       `json:"found"`
	Path  []reach.V  `json:"path,omitempty"`
	Edges []pathEdge `json:"edges,omitempty"`
}

type pathEdge struct {
	From  reach.V `json:"from"`
	To    reach.V `json:"to"`
	Label string  `json:"label,omitempty"`
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	db := s.DB()
	g := db.Graph()
	sv, tv, ok := s.pair(w, r, g)
	if !ok {
		return
	}
	if alpha := r.FormValue("alpha"); alpha != "" {
		edges, err := db.QueryPath(sv, tv, alpha)
		if err != nil {
			s.writeQueryErr(w, r, err)
			return
		}
		resp := pathResponse{Found: edges != nil}
		for _, e := range edges {
			resp.Edges = append(resp.Edges, pathEdge{From: e.From, To: e.To, Label: g.LabelName(e.Label)})
		}
		// QueryPath returns empty-but-non-nil edges for the s == t empty
		// path; a nil slice means no satisfying path exists.
		writeJSON(w, http.StatusOK, resp)
		return
	}
	path, err := db.ReachPath(sv, tv)
	if err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, pathResponse{Found: path != nil, Path: path})
}

// --- ops surfaces ------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		s.writePromMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.Snapshot().WriteText(w)
	db := s.DB()
	if snap, ok := db.MetricsSnapshot(); ok {
		snap.WriteText(w)
	} else {
		fmt.Fprintln(w, "db metrics disabled (start with -metrics)")
	}
}

// wantsProm decides the /metrics representation. The human-oriented text
// dump stays the default; Prometheus exposition is selected explicitly
// with ?format=prometheus or by the version= Accept header a Prometheus
// scraper sends ("text/plain; version=0.0.4" or an openmetrics type).
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom":
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "version=0.0.4") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// writePromMetrics renders every metrics surface the server has —
// admission/lifecycle gauges, tracer counters, and the current DB's
// index/route/cache/build cells — as one Prometheus text document under
// the "reach" namespace.
func (s *Server) writePromMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", obs.PromContentType)
	s.metrics.Snapshot().WriteProm(w, "reach")
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Stats().WriteProm(w, "reach")
	}
	if snap, ok := s.DB().MetricsSnapshot(); ok {
		snap.WriteProm(w, "reach")
	}
}

// handleTraces serves the tracer's ring buffers: recent traces and the
// slow-query log, newest first, with per-phase timings.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Tracer == nil {
		writeErr(w, http.StatusNotFound, "tracing disabled (start with -trace-buffer > 0)")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Tracer.Snapshot())
}

// statsResponse is the /admin/stats JSON document.
type statsResponse struct {
	Graph struct {
		Vertices int `json:"vertices"`
		Edges    int `json:"edges"`
		Labels   int `json:"labels"`
	} `json:"graph"`
	Indexes   map[string]reach.Stats `json:"indexes"`
	Degraded  map[string]string      `json:"degraded,omitempty"`
	Cache     *reach.CacheSnapshot   `json:"cache,omitempty"`
	Mutation  *reach.MutationStats   `json:"mutation,omitempty"`
	Advisor   *reach.AdvisorStatus   `json:"advisor,omitempty"`
	Shards    *shardsResponse        `json:"shards,omitempty"`
	Server    obs.ServerSnapshot     `json:"server"`
	Draining  bool                   `json:"draining,omitempty"`
	Reloading bool                   `json:"reloading,omitempty"`
}

// shardsResponse is the /admin/shards JSON document (also embedded in
// /admin/stats when the DB's plain engine is sharded).
type shardsResponse struct {
	K       int                     `json:"k"`
	Shards  []reach.ShardStats      `json:"shards"`
	Summary reach.ShardSummaryStats `json:"summary"`
}

func shardsOf(db *reach.DB) *shardsResponse {
	shards, summary, ok := db.ShardInfo()
	if !ok {
		return nil
	}
	return &shardsResponse{K: len(shards), Shards: shards, Summary: summary}
}

// handleShards serves the per-shard census of a sharded DB: sub-DAG
// sizes, boundary/exit/entry counts, per-shard index footprints and probe
// counters, plus the boundary summary graph. 404 on an unsharded DB.
func (s *Server) handleShards(w http.ResponseWriter, _ *http.Request) {
	resp := shardsOf(s.DB())
	if resp == nil {
		writeErr(w, http.StatusNotFound, "db is not sharded (start with -shards > 1)")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdvise serves the auto-tuner's state: serving/initial kind, the
// reach_advisor_* counters, and the last evaluation's full report. 404
// when the DB runs without DBConfig.AutoTune.
func (s *Server) handleAdvise(w http.ResponseWriter, _ *http.Request) {
	status, ok := s.DB().AdvisorStatus()
	if !ok {
		writeErr(w, http.StatusNotFound, "auto-tune disabled (start with -autotune > 0)")
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	db := s.DB()
	g := db.Graph()
	resp := statsResponse{
		Indexes:   db.Stats(),
		Server:    s.metrics.Snapshot(),
		Draining:  s.draining.Load(),
		Reloading: s.reloading.Load(),
	}
	resp.Graph.Vertices = g.N()
	resp.Graph.Edges = g.M()
	resp.Graph.Labels = g.Labels()
	if dr := db.DegradedRoutes(); len(dr) > 0 {
		resp.Degraded = make(map[string]string, len(dr))
		for route, err := range dr {
			resp.Degraded[route] = firstLine(err)
		}
	}
	if cs, ok := db.CacheStats(); ok {
		resp.Cache = &cs
	}
	if ms, ok := db.MutationStats(); ok {
		resp.Mutation = &ms
	}
	if as, ok := db.AdvisorStatus(); ok {
		resp.Advisor = &as
	}
	resp.Shards = shardsOf(db)
	writeJSON(w, http.StatusOK, resp)
}

type reloadResponse struct {
	Reloaded   bool   `json:"reloaded"`
	DurationMS int64  `json:"duration_ms"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	Error      string `json:"error,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	ctx, cancel := s.reloadCtx()
	defer cancel()
	start := time.Now()
	err := s.Reload(ctx)
	switch {
	case errors.Is(err, ErrReloadInProgress):
		writeJSON(w, http.StatusConflict, reloadResponse{Error: err.Error()})
		return
	case err != nil:
		status := reach.StatusCode(err)
		if status == http.StatusBadRequest {
			// A rebuild failing on its own configuration is a server-side
			// fault from the client's point of view.
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, reloadResponse{Error: firstLine(err)})
		return
	}
	db := s.DB()
	writeJSON(w, http.StatusOK, reloadResponse{
		Reloaded:   true,
		DurationMS: time.Since(start).Milliseconds(),
		Vertices:   db.Graph().N(),
		Edges:      db.Graph().M(),
	})
}

// --- request plumbing --------------------------------------------------

type reachResponse struct {
	Reachable bool `json:"reachable"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) // nothing sensible to do with a write error: client owns the conn
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// writeQueryErr maps a DB error to its status. The request context is
// consulted first: once it is done, the interesting classification is
// why (client gone → 499, deadline → 504) rather than which checkpoint
// or index surfaced the cancellation.
func (s *Server) writeQueryErr(w http.ResponseWriter, r *http.Request, err error) {
	status := reach.StatusCode(err)
	if ctxErr := r.Context().Err(); ctxErr != nil && status != http.StatusBadRequest {
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		} else {
			status = statusClientGone
		}
	}
	writeErr(w, status, firstLine(err))
}

// pair parses the s and t request parameters against g, writing the 400
// itself when either is missing or unresolvable.
func (s *Server) pair(w http.ResponseWriter, r *http.Request, g *reach.Graph) (sv, tv reach.V, ok bool) {
	var err error
	if sv, err = vertexOf(g, r.FormValue("s")); err != nil {
		writeErr(w, http.StatusBadRequest, "s: "+err.Error())
		return 0, 0, false
	}
	if tv, err = vertexOf(g, r.FormValue("t")); err != nil {
		writeErr(w, http.StatusBadRequest, "t: "+err.Error())
		return 0, 0, false
	}
	return sv, tv, true
}

// vertexOf resolves a request token to a vertex: a decimal id, or a
// vertex name from the graph file.
func vertexOf(g *reach.Graph, tok string) (reach.V, error) {
	if tok == "" {
		return 0, errors.New("missing vertex")
	}
	if n, err := strconv.ParseUint(tok, 10, 32); err == nil {
		if int(n) >= g.N() {
			return 0, fmt.Errorf("vertex %d out of range (graph has %d vertices)", n, g.N())
		}
		return reach.V(n), nil
	}
	if v, ok := g.VertexByName(tok); ok {
		return v, nil
	}
	return 0, fmt.Errorf("unknown vertex %q", tok)
}

// labelOf resolves a label token: a decimal label id, or a label name.
func labelOf(g *reach.Graph, tok string) (reach.Label, error) {
	if tok == "" {
		return 0, errors.New("empty label")
	}
	if n, err := strconv.ParseUint(tok, 10, 16); err == nil && int(n) < g.Labels() {
		return reach.Label(n), nil
	}
	for l := 0; l < g.Labels(); l++ {
		if g.LabelName(reach.Label(l)) == tok {
			return reach.Label(l), nil
		}
	}
	return 0, fmt.Errorf("unknown label %q", tok)
}

// vertexRef is a JSON vertex reference: a number (id) or a string (id or
// name).
type vertexRef struct {
	raw string
}

func (v *vertexRef) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v.raw = s
		return nil
	}
	var n json.Number
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	v.raw = n.String()
	return nil
}

func (v vertexRef) resolve(g *reach.Graph) (reach.V, error) {
	return vertexOf(g, v.raw)
}

// firstLine trims an error to its first line: contained-panic errors
// carry the originating goroutine stack in their message, which belongs
// in server logs, not on the wire.
func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " ..."
	}
	return s
}
