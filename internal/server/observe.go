package server

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// Request-scoped observability: the observe middleware wraps the whole
// route table once (only installed when tracing or access logging is
// configured, so the plain server pays nothing) and owns the per-request
// lifecycle —
//
//   - tracing: query requests (/v1/*) get an obs.Trace carrying the
//     caller's X-Request-Id (generated when absent, always echoed back
//     on the response), threaded through the request context so the
//     admission controller and the DB's query paths append phase
//     timings; finished traces land in the Tracer's ring buffers,
//     served at /debug/traces;
//   - access logging: one structured line per request — method, path,
//     status, latency, response bytes, trace ID, admission wait — at
//     Info, escalated to Warn with msg "slow request" when the trace
//     crossed the Tracer's slow threshold.
//
// The admission wait is measured inside admit (the only place that
// knows it) and handed back through the per-request reqState.

// reqState is the middleware's per-request scratch, reachable from inner
// handlers via the request context.
type reqState struct {
	trace *obs.Trace
	// admissionWait is how long the request spent acquiring an admission
	// slot (set by admit; ~0 when a slot was free).
	admissionWait time.Duration
}

type reqStateKey struct{}

// stateFrom returns the request's reqState, nil when the observe
// middleware is not installed.
func stateFrom(ctx context.Context) *reqState {
	st, _ := ctx.Value(reqStateKey{}).(*reqState)
	return st
}

// requestIDHeader carries the request ID in both directions: accepted
// from the client for cross-service propagation, echoed on the response
// so callers can quote it when reporting a slow or failed request.
const requestIDHeader = "X-Request-Id"

// observe wraps next with per-request tracing and access logging.
func (s *Server) observe(next http.Handler) http.Handler {
	tracer := s.cfg.Tracer
	accessLog := s.cfg.AccessLog
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		st := &reqState{}
		ctx := context.WithValue(r.Context(), reqStateKey{}, st)
		// Traces cover the query surface; ops scrapes (/metrics,
		// /healthz, ...) would only churn the ring.
		if tracer != nil && strings.HasPrefix(r.URL.Path, "/v1/") {
			st.trace = tracer.Start(r.Header.Get(requestIDHeader))
			st.trace.Method = r.Method
			st.trace.Path = r.URL.Path
			w.Header().Set(requestIDHeader, st.trace.ID)
			ctx = obs.WithTrace(ctx, st.trace)
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		dur := time.Since(t0)
		status := sw.Status()
		var traceID string
		slow := false
		if st.trace != nil {
			st.trace.Status = status
			traceID = st.trace.ID
			_, slow = tracer.Finish(st.trace)
			st.trace = nil
		}
		if accessLog == nil {
			return
		}
		attrs := make([]slog.Attr, 0, 8)
		attrs = append(attrs,
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Duration("dur", dur),
			slog.Int64("bytes", sw.bytes),
		)
		if q := r.URL.RawQuery; q != "" {
			attrs = append(attrs, slog.String("query", q))
		}
		if traceID != "" {
			attrs = append(attrs, slog.String("id", traceID))
		}
		if st.admissionWait > 0 {
			attrs = append(attrs, slog.Duration("admission_wait", st.admissionWait))
		}
		msg, level := "request", slog.LevelInfo
		if slow {
			msg, level = "slow request", slog.LevelWarn
		}
		accessLog.LogAttrs(r.Context(), level, msg, attrs...)
	})
}

// statusWriter records the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

// Status is the response code sent (200 when the handler wrote a body
// without an explicit WriteHeader, 0 when nothing was written at all).
func (w *statusWriter) Status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers
// (pprof's trace endpoint, expvar under a proxy) keep working wrapped.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
