package scc

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/traversal"
)

func TestTarjanSimpleCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 is one SCC; 3 alone.
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	c := Tarjan(g)
	if c.Count != 2 {
		t.Fatalf("Count = %d, want 2", c.Count)
	}
	if c.Comp[0] != c.Comp[1] || c.Comp[1] != c.Comp[2] {
		t.Error("cycle vertices in different components")
	}
	if c.Comp[3] == c.Comp[0] {
		t.Error("vertex 3 merged into cycle")
	}
}

func TestTarjanDAG(t *testing.T) {
	g := graph.FromEdges(5, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}})
	c := Tarjan(g)
	if c.Count != 5 {
		t.Fatalf("Count = %d, want 5 (DAG: every vertex its own SCC)", c.Count)
	}
}

func TestTarjanReverseTopoIDs(t *testing.T) {
	// Component ids must be in reverse topological order of the
	// condensation: if comp a reaches comp b then id(a) > id(b).
	g := gen.RandomDAG(gen.Config{N: 200, M: 600, Seed: 7})
	c := Tarjan(g)
	g.Edges(func(e graph.Edge) bool {
		ca, cb := c.Comp[e.From], c.Comp[e.To]
		if ca != cb && ca <= cb {
			t.Fatalf("edge %d->%d: comp ids %d <= %d violate reverse topo order",
				e.From, e.To, ca, cb)
		}
		return true
	})
}

func TestCondenseIsDAG(t *testing.T) {
	g := gen.ErdosRenyi(gen.Config{N: 300, M: 1200, Seed: 3})
	cond := Condense(g)
	if !order.IsDAG(cond.DAG) {
		t.Fatal("condensation has a cycle")
	}
	total := 0
	for _, s := range cond.Size {
		total += s
	}
	if total != g.N() {
		t.Fatalf("component sizes sum to %d, want %d", total, g.N())
	}
}

func TestCondensePreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 5; iter++ {
		g := gen.ErdosRenyi(gen.Config{N: 60, M: 150, Seed: int64(iter)})
		cond := Condense(g)
		for q := 0; q < 200; q++ {
			s := graph.V(rng.Intn(g.N()))
			tt := graph.V(rng.Intn(g.N()))
			want := traversal.BFS(g, s, tt)
			var got bool
			if cond.SameComponent(s, tt) {
				got = true
			} else {
				got = traversal.BFS(cond.DAG, cond.Comp[s], cond.Comp[tt])
			}
			if got != want {
				t.Fatalf("seed %d: reach(%d,%d) via condensation = %v, want %v",
					iter, s, tt, got, want)
			}
		}
	}
}

func TestCondenseLabeled(t *testing.T) {
	b := graph.NewLabeledBuilder(4)
	b.AddLabeledEdge(0, 1, 0)
	b.AddLabeledEdge(1, 0, 1)
	b.AddLabeledEdge(1, 2, 2)
	b.AddLabeledEdge(2, 3, 0)
	g := b.MustFreeze()
	cond := Condense(g)
	if cond.DAG.Labels() != g.Labels() {
		t.Fatalf("label universe shrank: %d vs %d", cond.DAG.Labels(), g.Labels())
	}
	if !cond.DAG.Labeled() {
		t.Fatal("condensation lost labels")
	}
	if cond.DAG.N() != 3 {
		t.Fatalf("DAG has %d vertices, want 3", cond.DAG.N())
	}
}

func TestTarjanFig1(t *testing.T) {
	// The Figure 1 reconstruction is a DAG: every vertex its own SCC.
	g := graph.Fig1Plain()
	c := Tarjan(g)
	if c.Count != g.N() {
		t.Fatalf("Fig1 components = %d, want %d", c.Count, g.N())
	}
}

func TestTarjanLargeIterative(t *testing.T) {
	// A long path would overflow a recursive implementation's stack.
	n := 200000
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	// Close the loop to make one giant SCC.
	b.AddEdge(graph.V(n-1), 0)
	g := b.MustFreeze()
	c := Tarjan(g)
	if c.Count != 1 {
		t.Fatalf("giant cycle: Count = %d, want 1", c.Count)
	}
}
