// Package scc implements Tarjan's strongly-connected-components algorithm
// (iteratively, so million-vertex graphs do not overflow the goroutine
// stack) and the condensation of a general digraph into a DAG.
//
// Per the paper's §3.1 ("From cyclic graphs to DAGs"), most reachability
// indexes assume a DAG: a general graph is reduced by coalescing every SCC
// into a representative vertex, and Qr(s,t) is answered by first checking
// whether s and t share an SCC, then consulting the DAG index.
package scc

import (
	"repro/internal/graph"
)

// Components computes the strongly connected components of g. The result
// assigns every vertex a component id in [0, Count); component ids are in
// reverse topological order of the condensation (i.e. if component a can
// reach component b in the condensation, then id(a) > id(b)), which is the
// order Tarjan's algorithm emits them in.
type Components struct {
	Comp  []uint32 // Comp[v] = component id of v
	Count int      // number of components
}

// Tarjan runs the iterative Tarjan SCC algorithm on g.
func Tarjan(g *graph.Digraph) *Components {
	n := g.N()
	const unvisited = ^uint32(0)
	index := make([]uint32, n)
	low := make([]uint32, n)
	comp := make([]uint32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []uint32
	var next uint32
	var count uint32

	// Explicit DFS frames: vertex and position within its successor list.
	type frame struct {
		v  uint32
		ei int
	}
	var frames []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: uint32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, uint32(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			succ := g.Succ(v)
			advanced := false
			for f.ei < len(succ) {
				w := succ[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return &Components{Comp: comp, Count: int(count)}
}

// Condensation is the DAG obtained by coalescing each SCC of a general
// graph into one vertex, together with the vertex↔component maps needed to
// translate queries.
type Condensation struct {
	// DAG is the condensed graph; its vertex v corresponds to component v.
	DAG *graph.Digraph
	// Comp maps an original vertex to its DAG vertex.
	Comp []uint32
	// Size[c] is the number of original vertices in component c.
	Size []int
}

// Condense computes the condensation of g. Edge labels are preserved:
// a labeled edge (u, l, v) between distinct components becomes the labeled
// edge (comp(u), l, comp(v)) in the DAG (deduplicated).
func Condense(g *graph.Digraph) *Condensation {
	c := Tarjan(g)
	var b *graph.Builder
	if g.Labeled() {
		b = graph.NewLabeledBuilder(c.Count)
		// Preserve the label universe size even if some labels only occur
		// inside SCCs.
		b.ReserveLabels(g.Labels())
	} else {
		b = graph.NewBuilder(c.Count)
	}
	g.Edges(func(e graph.Edge) bool {
		cu, cv := c.Comp[e.From], c.Comp[e.To]
		if cu != cv {
			if g.Labeled() {
				b.AddLabeledEdge(cu, cv, e.Label)
			} else {
				b.AddEdge(cu, cv)
			}
		}
		return true
	})
	dag := b.MustFreeze()
	size := make([]int, c.Count)
	for _, cc := range c.Comp {
		size[cc]++
	}
	return &Condensation{DAG: dag, Comp: c.Comp, Size: size}
}

// SameComponent reports whether u and v are in the same SCC.
func (c *Condensation) SameComponent(u, v graph.V) bool {
	return c.Comp[u] == c.Comp[v]
}
