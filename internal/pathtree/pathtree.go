// Package pathtree implements a path-decomposition reachability cover in
// the lineage of path-tree [24, 27] and Jagadish's chain-cover TC
// compression [20] (both §3.1/§3.4 citations): the DAG is decomposed into
// vertex-disjoint chains (paths), and every vertex stores, per chain, the
// smallest chain position it can reach. Qr(s, t) is then a single lookup:
// minpos(s, chain(t)) ≤ pos(t).
//
// This is the core mechanism of the published path-tree scheme (complete
// index, O(k) per vertex for k chains); the auxiliary minimal-equivalent-
// edge machinery of the full paper is omitted (see DESIGN.md). The chain
// decomposition is the greedy topological one: repeatedly extend a chain
// from the earliest unassigned vertex through unassigned successors.
package pathtree

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

const noPos = ^uint32(0)

// Index is the path-decomposition complete index over a DAG.
type Index struct {
	chain  []uint32 // chain id of each vertex
	pos    []uint32 // position of each vertex within its chain
	k      int      // number of chains
	minpos []uint32 // minpos[v*k + c] = min position on chain c reachable from v
	stats  core.Stats
}

// New builds the index over a DAG.
func New(dag *graph.Digraph) *Index {
	start := time.Now()
	n := dag.N()
	topo, _ := order.Topological(dag)
	ix := &Index{chain: make([]uint32, n), pos: make([]uint32, n)}
	assigned := make([]bool, n)
	// Greedy chain decomposition along the topological order.
	for _, v := range topo {
		if assigned[v] {
			continue
		}
		c := uint32(ix.k)
		ix.k++
		p := uint32(0)
		cur := v
		for {
			assigned[cur] = true
			ix.chain[cur] = c
			ix.pos[cur] = p
			p++
			next := graph.V(0)
			found := false
			for _, w := range dag.Succ(cur) {
				if !assigned[w] {
					next = w
					found = true
					break
				}
			}
			if !found {
				break
			}
			cur = next
		}
	}
	k := ix.k
	ix.minpos = make([]uint32, n*k)
	for i := range ix.minpos {
		ix.minpos[i] = noPos
	}
	// Reverse topological propagation: minpos(v, c) = min over own chain
	// position and successors' rows.
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		row := ix.minpos[int(v)*k : (int(v)+1)*k]
		if p := ix.pos[v]; p < row[ix.chain[v]] {
			row[ix.chain[v]] = p
		}
		for _, w := range dag.Succ(v) {
			src := ix.minpos[int(w)*k : (int(w)+1)*k]
			for c := 0; c < k; c++ {
				if src[c] < row[c] {
					row[c] = src[c]
				}
			}
		}
	}
	ix.stats = core.Stats{
		Entries:   n * k,
		Bytes:     n*k*4 + n*8,
		BuildTime: time.Since(start),
	}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "Path-Tree" }

// Reach reports whether t is reachable from s in O(1).
func (ix *Index) Reach(s, t graph.V) bool {
	return ix.minpos[int(s)*ix.k+int(ix.chain[t])] <= ix.pos[t]
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// Chains returns the number of chains k (the width of the decomposition).
func (ix *Index) Chains() int { return ix.k }
