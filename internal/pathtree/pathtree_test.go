package pathtree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestSingleChainOnLine(t *testing.T) {
	n := 50
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	ix := New(b.MustFreeze())
	if ix.Chains() != 1 {
		t.Fatalf("line decomposed into %d chains, want 1", ix.Chains())
	}
	if ix.Stats().Entries != n {
		t.Errorf("entries = %d, want n", ix.Stats().Entries)
	}
}

func TestChainsBoundedByWidth(t *testing.T) {
	// A layered DAG of width w decomposes into at least w chains but the
	// greedy should stay within a small factor.
	g := gen.LayeredDAG(20, 10, 2, 3)
	ix := New(g)
	if ix.Chains() < 10 {
		t.Errorf("chains = %d, want >= width 10", ix.Chains())
	}
	if ix.Chains() > g.N()/2 {
		t.Errorf("chains = %d: greedy degenerated", ix.Chains())
	}
	if ix.Name() != "Path-Tree" {
		t.Error("name")
	}
}

func TestAntichainsWorstCase(t *testing.T) {
	// A graph with no edges is all 1-vertex chains: k = n, storage n*k.
	g := graph.FromEdges(8, nil)
	ix := New(g)
	if ix.Chains() != 8 {
		t.Fatalf("chains = %d", ix.Chains())
	}
	for s := graph.V(0); s < 8; s++ {
		for tt := graph.V(0); tt < 8; tt++ {
			if ix.Reach(s, tt) != (s == tt) {
				t.Fatalf("Reach(%d,%d) wrong on edgeless graph", s, tt)
			}
		}
	}
}
