package interval

import (
	"math/rand"
	"testing"
)

func TestAddMergeAdjacent(t *testing.T) {
	// The paper's example: [1,6] and [7,8] merge to [1,8].
	var l List
	l.Add(1, 6)
	l.Add(7, 8)
	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1 after adjacent merge", l.Len())
	}
	if iv := l.Intervals()[0]; iv.Lo != 1 || iv.Hi != 8 {
		t.Fatalf("merged = %+v", iv)
	}
}

func TestAddDisjoint(t *testing.T) {
	var l List
	l.Add(10, 12)
	l.Add(0, 2)
	l.Add(5, 6)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	ivs := l.Intervals()
	if ivs[0].Lo != 0 || ivs[1].Lo != 5 || ivs[2].Lo != 10 {
		t.Fatalf("not sorted: %+v", ivs)
	}
}

func TestAddOverlapSpanning(t *testing.T) {
	var l List
	l.Add(0, 2)
	l.Add(5, 7)
	l.Add(10, 12)
	l.Add(1, 11) // swallows everything
	if l.Len() != 1 {
		t.Fatalf("len = %d: %+v", l.Len(), l.Intervals())
	}
	if iv := l.Intervals()[0]; iv.Lo != 0 || iv.Hi != 12 {
		t.Fatalf("merged = %+v", iv)
	}
}

func TestContains(t *testing.T) {
	var l List
	l.Add(2, 4)
	l.Add(8, 9)
	for _, x := range []uint32{2, 3, 4, 8, 9} {
		if !l.Contains(x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []uint32{0, 1, 5, 7, 10} {
		if l.Contains(x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
}

func TestAddListClone(t *testing.T) {
	var a, b List
	a.Add(0, 1)
	b.Add(3, 4)
	c := a.Clone()
	c.AddList(&b)
	if a.Len() != 1 || c.Len() != 2 {
		t.Fatalf("a=%d c=%d", a.Len(), c.Len())
	}
}

func TestCoarsenTo(t *testing.T) {
	var l List
	l.Add(0, 1)
	l.Add(10, 11)
	l.Add(13, 14) // closest gap to [10,11]
	l.Add(30, 31)
	l.CoarsenTo(3)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	// The smallest gap (11→13) must have been bridged.
	if !l.Contains(12) {
		t.Error("coarsening should bridge the smallest gap")
	}
	l.CoarsenTo(1)
	if l.Len() != 1 || !l.Contains(20) {
		t.Error("CoarsenTo(1) must cover the whole span")
	}
}

func TestCovered(t *testing.T) {
	var l List
	l.Add(0, 4)
	l.Add(10, 10)
	if l.Covered() != 6 {
		t.Fatalf("Covered = %d, want 6", l.Covered())
	}
}

func TestRandomizedAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		var l List
		naive := make(map[uint32]bool)
		for op := 0; op < 40; op++ {
			lo := uint32(rng.Intn(200))
			hi := lo + uint32(rng.Intn(20))
			l.Add(lo, hi)
			for x := lo; x <= hi; x++ {
				naive[x] = true
			}
		}
		for x := uint32(0); x < 230; x++ {
			if l.Contains(x) != naive[x] {
				t.Fatalf("iter %d: Contains(%d) = %v, naive %v", iter, x, l.Contains(x), naive[x])
			}
		}
		// Invariant: sorted, disjoint, non-touching.
		ivs := l.Intervals()
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Lo <= ivs[i-1].Hi+1 {
				t.Fatalf("intervals touch: %+v", ivs)
			}
		}
	}
}
