// Package interval provides the sorted interval lists at the heart of the
// tree-cover index family (§3.1): per-vertex lists of [lo, hi] post-order
// ranges, with insertion that merges touching ranges ("in case intervals
// happen to be adjacent, they can be merged for efficient storage").
package interval

import "sort"

// I is a closed interval [Lo, Hi] of post-order numbers.
type I struct {
	Lo, Hi uint32
}

// Contains reports whether x lies in the interval.
func (iv I) Contains(x uint32) bool { return iv.Lo <= x && x <= iv.Hi }

// List is a sorted list of disjoint, non-touching intervals.
// The zero value is an empty list.
type List struct {
	ivs []I
}

// Len returns the number of intervals.
func (l *List) Len() int { return len(l.ivs) }

// Intervals returns the intervals in ascending order; aliases storage.
func (l *List) Intervals() []I { return l.ivs }

// Contains reports whether x lies in some interval, by binary search.
func (l *List) Contains(x uint32) bool {
	i := sort.Search(len(l.ivs), func(i int) bool { return l.ivs[i].Hi >= x })
	return i < len(l.ivs) && l.ivs[i].Lo <= x
}

// Add inserts [lo, hi], merging with any overlapping or adjacent intervals
// (adjacent means hi+1 == next.Lo).
func (l *List) Add(lo, hi uint32) {
	// Find the first interval that could interact: Hi >= lo-1.
	start := sort.Search(len(l.ivs), func(i int) bool {
		return l.ivs[i].Hi+1 >= lo // safe: Hi+1 overflow impossible for post orders < 2^32-1
	})
	end := start
	for end < len(l.ivs) && l.ivs[end].Lo <= hi+1 {
		if l.ivs[end].Lo < lo {
			lo = l.ivs[end].Lo
		}
		if l.ivs[end].Hi > hi {
			hi = l.ivs[end].Hi
		}
		end++
	}
	if start == end {
		// No interaction: insert at start.
		l.ivs = append(l.ivs, I{})
		copy(l.ivs[start+1:], l.ivs[start:])
		l.ivs[start] = I{lo, hi}
		return
	}
	l.ivs[start] = I{lo, hi}
	l.ivs = append(l.ivs[:start+1], l.ivs[end:]...)
}

// AddList inserts every interval of other.
func (l *List) AddList(other *List) {
	for _, iv := range other.ivs {
		l.Add(iv.Lo, iv.Hi)
	}
}

// Clone returns a deep copy.
func (l *List) Clone() *List {
	ivs := make([]I, len(l.ivs))
	copy(ivs, l.ivs)
	return &List{ivs: ivs}
}

// CoarsenTo merges intervals (choosing smallest gaps first) until at most k
// remain. Merging across a gap admits false positives — Ferrari's
// "approximate intervals" — so the caller must track exactness separately.
func (l *List) CoarsenTo(k int) {
	if k < 1 {
		k = 1
	}
	for len(l.ivs) > k {
		// Find the smallest gap between neighbours.
		best := 1
		bestGap := l.ivs[1].Lo - l.ivs[0].Hi
		for i := 2; i < len(l.ivs); i++ {
			if g := l.ivs[i].Lo - l.ivs[i-1].Hi; g < bestGap {
				bestGap = g
				best = i
			}
		}
		l.ivs[best-1].Hi = l.ivs[best].Hi
		l.ivs = append(l.ivs[:best], l.ivs[best+1:]...)
	}
}

// Covered returns the total number of integers covered by the list.
func (l *List) Covered() int {
	c := 0
	for _, iv := range l.ivs {
		c += int(iv.Hi-iv.Lo) + 1
	}
	return c
}
