// Package lcrdecomp implements a decomposition-based LCR index after Chen
// and Singh [12] (§4.1.1): a spanning forest turns the graph into a
// tree-like structure T whose reachability and SPLSs are answered by
// interval labeling plus root-path label histograms, and the residual
// reachability (the published work's graph summary Gc with chained back
// edges) is evaluated by an online search over the non-tree edges guided
// by the tree labels.
//
// Compared to the full published scheme this keeps one decomposition
// level and replaces the recursive series (T, T¹, ...) with the online
// link search — the fixpoint on our graph families is reached within 1–2
// levels anyway (see DESIGN.md). The index is an order of magnitude
// smaller than the precomputed-closure approach (internal/lcrtree) at the
// cost of query-time traversal over the links.
package lcrdecomp

import (
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelset"
	"repro/internal/order"
)

// Index is the decomposition-based LCR index.
type Index struct {
	po      *order.PostOrder
	counts  [][]uint16
	labels  int
	tails   []graph.V
	heads   []graph.V
	linkLab []graph.Label
	stats   core.Stats
}

// New builds the index over a labeled digraph.
func New(g *graph.Digraph) *Index {
	start := time.Now()
	n := g.N()
	L := g.Labels()
	po := order.DFSForest(g, order.Sources(g), nil)
	ix := &Index{po: po, labels: L, counts: make([][]uint16, n)}

	treeLab := make([]graph.Label, n)
	hasTree := make([]bool, n)
	g.Edges(func(e graph.Edge) bool {
		if po.Parent[e.To] == e.From && e.From != e.To && !hasTree[e.To] {
			hasTree[e.To] = true
			treeLab[e.To] = e.Label
		}
		return true
	})
	g.Edges(func(e graph.Edge) bool {
		if po.Parent[e.To] == e.From && hasTree[e.To] && treeLab[e.To] == e.Label {
			return true
		}
		ix.tails = append(ix.tails, e.From)
		ix.heads = append(ix.heads, e.To)
		ix.linkLab = append(ix.linkLab, e.Label)
		return true
	})

	var fill func(v graph.V)
	fill = func(v graph.V) {
		if ix.counts[v] != nil {
			return
		}
		p := po.Parent[v]
		if p == v {
			ix.counts[v] = make([]uint16, L)
			return
		}
		fill(p)
		row := make([]uint16, L)
		copy(row, ix.counts[p])
		if hasTree[v] {
			row[treeLab[v]]++
		}
		ix.counts[v] = row
	}
	for v := 0; v < n; v++ {
		fill(graph.V(v))
	}
	ix.stats = core.Stats{
		Entries:   n + len(ix.tails),
		Bytes:     n*8 + n*L*2 + len(ix.tails)*10,
		BuildTime: time.Since(start),
	}
	return ix
}

func (ix *Index) treeSPLS(s, t graph.V) labelset.Set {
	var set labelset.Set
	cs, ct := ix.counts[s], ix.counts[t]
	for l := 0; l < ix.labels; l++ {
		if ct[l] > cs[l] {
			set = set.With(graph.Label(l))
		}
	}
	return set
}

// Name implements core.LCRIndex.
func (ix *Index) Name() string { return "Chen-Decomp" }

// ReachLC answers the alternation query: tree case by labels, residual
// case by a search over the links whose every step stays within `allowed`.
func (ix *Index) ReachLC(s, t graph.V, allowed labelset.Set) bool {
	if s == t {
		return true
	}
	if ix.po.Contains(s, t) && ix.treeSPLS(s, t).SubsetOf(allowed) {
		return true
	}
	nLinks := len(ix.tails)
	if nLinks == 0 {
		return false
	}
	visited := bitset.New(nLinks)
	var queue []int32
	// Seed: links reachable from s by an allowed downward tree run.
	for i := 0; i < nLinks; i++ {
		if ix.po.Contains(s, ix.tails[i]) &&
			ix.treeSPLS(s, ix.tails[i]).With(ix.linkLab[i]).SubsetOf(allowed) {
			visited.Set(i)
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		h := ix.heads[i]
		// Accept: allowed tree run from the link head to t.
		if ix.po.Contains(h, t) && ix.treeSPLS(h, t).SubsetOf(allowed) {
			return true
		}
		// Chain to further links below the head.
		for j := 0; j < nLinks; j++ {
			if visited.Test(j) {
				continue
			}
			if ix.po.Contains(h, ix.tails[j]) &&
				ix.treeSPLS(h, ix.tails[j]).With(ix.linkLab[j]).SubsetOf(allowed) {
				visited.Set(j)
				queue = append(queue, int32(j))
			}
		}
	}
	return false
}

// Stats implements core.LCRIndex.
func (ix *Index) Stats() core.Stats { return ix.stats }
