package lcrdecomp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/lcrtree"
)

func TestConformance(t *testing.T) {
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex { return New(g) })
}

func TestLighterThanClosure(t *testing.T) {
	// The decomposition index defers link chaining to query time; its
	// footprint must undercut the precomputed link closure.
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 60, M: 240, Seed: 1}), 4, 0.7, 2)
	d := New(g)
	full := lcrtree.New(g)
	if d.Stats().Bytes >= full.Stats().Bytes {
		t.Errorf("decomp bytes %d >= closure bytes %d", d.Stats().Bytes, full.Stats().Bytes)
	}
	if d.Name() != "Chen-Decomp" {
		t.Error("name")
	}
}

func TestEdgelessGraph(t *testing.T) {
	b := graph.NewLabeledBuilder(4)
	b.ReserveLabels(2)
	g := b.MustFreeze()
	ix := New(g)
	if ix.ReachLC(0, 1, 3) || !ix.ReachLC(2, 2, 0) {
		t.Error("edgeless reachability wrong")
	}
}
