package p2h

// This file implements DLCR [10] (§4.1.3): the dynamic extension of P2H+.
// It lives in this package because it reuses the whole P2H+ label
// machinery: DLCR "extends P2H+ to support graph updates".
//
//   - InsertEdge(u, l, v): every hub entry (h, S1) ∈ Lin(u) ∪ {(u, ∅)}
//     resumes its forward label-set BFS from v with the set S1 ∪ {l}; the
//     symmetric backward resumes run from u for Lout(v) ∪ {(v, ∅)}. This
//     only traverses paths containing the updated edge — the paper's key
//     property — and the rank-restricted pruning keeps the canonical-cover
//     invariant. Entries made redundant by the insertion are evicted by
//     the per-(vertex, hub) antichain maintenance (the paper's RIE
//     removal).
//   - DeleteEdge rebuilds the index. The published deletion algorithm
//     reinstates previously-redundant entries (the RIE set) instead; that
//     bookkeeping is out of scope here (see DESIGN.md), and the rebuild
//     keeps the index exact for the E8 experiment.

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Dynamic is the DLCR dynamic LCR index.
type Dynamic struct {
	*Index
	g *labeledDyn
}

// NewDynamic builds DLCR over a labeled digraph.
func NewDynamic(g *graph.Digraph) *Dynamic { return NewDynamicChecked(g, nil) }

// NewDynamicChecked is NewDynamic under a cancellation checkpoint (the
// initial labeling only; update repairs run unchecked).
func NewDynamicChecked(g *graph.Digraph, chk *core.Check) *Dynamic {
	ix := build(g, "DLCR", chk)
	return &Dynamic{Index: ix, g: newLabeledDyn(g)}
}

// InsertEdge adds the labeled edge (u, l, v) and repairs the labels.
func (d *Dynamic) InsertEdge(u, v graph.V, l graph.Label) error {
	start := time.Now()
	if !d.g.insert(u, v, l) {
		return nil
	}
	// Snapshot the relevant entries before repairs mutate the lists.
	fwd := append([]Entry{{Rank: d.rank[u], Set: 0}}, d.in[u]...)
	bwd := append([]Entry{{Rank: d.rank[v], Set: 0}}, d.out[v]...)
	for _, e := range fwd {
		d.labelBFSFrom(d.g, d.byRank[e.Rank], e.Rank, true, v, e.Set.With(l))
	}
	for _, e := range bwd {
		d.labelBFSFrom(d.g, d.byRank[e.Rank], e.Rank, false, u, e.Set.With(l))
	}
	d.refreshStats()
	d.stats.BuildTime += time.Since(start)
	return nil
}

// DeleteEdge removes the labeled edge (u, l, v) and rebuilds (see file doc).
func (d *Dynamic) DeleteEdge(u, v graph.V, l graph.Label) error {
	if !d.g.remove(u, v, l) {
		return nil
	}
	n := d.g.N()
	d.in = make([][]Entry, n)
	d.out = make([][]Entry, n)
	start := time.Now()
	for i, h := range d.byRank {
		d.labelBFS(d.g, h, uint32(i), true)
		d.labelBFS(d.g, h, uint32(i), false)
	}
	d.refreshStats()
	d.stats.BuildTime += time.Since(start)
	return nil
}

// labeledDyn is a mutable labeled adjacency satisfying graphLike.
type labeledDyn struct {
	succ, pred [][]arc
}

type arc struct {
	to graph.V
	l  graph.Label
}

func newLabeledDyn(g *graph.Digraph) *labeledDyn {
	n := g.N()
	d := &labeledDyn{succ: make([][]arc, n), pred: make([][]arc, n)}
	g.Edges(func(e graph.Edge) bool {
		d.succ[e.From] = append(d.succ[e.From], arc{e.To, e.Label})
		d.pred[e.To] = append(d.pred[e.To], arc{e.From, e.Label})
		return true
	})
	return d
}

func (d *labeledDyn) N() int { return len(d.succ) }

func (d *labeledDyn) SuccL(v graph.V, f func(w graph.V, l graph.Label)) {
	for _, a := range d.succ[v] {
		f(a.to, a.l)
	}
}

func (d *labeledDyn) PredL(v graph.V, f func(w graph.V, l graph.Label)) {
	for _, a := range d.pred[v] {
		f(a.to, a.l)
	}
}

func (d *labeledDyn) insert(u, v graph.V, l graph.Label) bool {
	for _, a := range d.succ[u] {
		if a.to == v && a.l == l {
			return false
		}
	}
	d.succ[u] = append(d.succ[u], arc{v, l})
	d.pred[v] = append(d.pred[v], arc{u, l})
	return true
}

func (d *labeledDyn) remove(u, v graph.V, l graph.Label) bool {
	if !removeArc(&d.succ[u], arc{v, l}) {
		return false
	}
	removeArc(&d.pred[v], arc{u, l})
	return true
}

func removeArc(list *[]arc, a arc) bool {
	s := *list
	for j := range s {
		if s[j] == a {
			s[j] = s[len(s)-1]
			*list = s[:len(s)-1]
			return true
		}
	}
	return false
}

var _ core.DynamicLCR = (*Dynamic)(nil)
