// Package p2h implements P2H+ [33] (§4.1.3): a pruned 2-hop index for
// alternation (LCR) queries. Every vertex carries Lin/Lout entries of the
// form (hub, SPLS); Qr(s, t, A) holds iff some hub h has entries
// (h, S1) ∈ Lout(s) and (h, S2) ∈ Lin(t) with S1 ∪ S2 ⊆ A (endpoint-hub
// cases included).
//
// Construction performs forward and backward label-set BFSs from vertices
// in degree order. Two pruning rules keep the index minimal and the
// construction fast, mirroring the published algorithm:
//
//  1. rank pruning — the BFS never expands into higher-priority vertices
//     (their own BFSs own those pairs), and
//  2. redundancy pruning — a candidate entry (h, S) at u is skipped when
//     hubs of strictly higher priority already certify an s-t connection
//     with a label set ⊆ S (so the entry could never be the unique
//     witness of a query).
//
// Per-vertex-per-hub entries form SPLS antichains, realizing the paper's
// "the indexing algorithm can guarantee that the built index does not
// contain any redundancy".
package p2h

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelset"
	"repro/internal/order"
)

// Entry is one hop-label entry: a hub (identified by rank) and an SPLS.
type Entry struct {
	Rank uint32
	Set  labelset.Set
}

// Index is the P2H+ complete LCR index.
type Index struct {
	name   string
	rank   []uint32
	byRank []graph.V
	// in[v], out[v]: entries sorted by rank (multiple entries per rank
	// form an antichain of sets).
	in, out [][]Entry
	stats   core.Stats
	chk     *core.Check // only set during the initial build
}

// New builds P2H+ over a labeled general digraph.
func New(g *graph.Digraph) *Index {
	return build(g, "P2H+", nil)
}

// NewChecked is New under a cancellation checkpoint: ticks per hub and
// per label-set BFS dequeue. DLCR's incremental resumes run unchecked.
func NewChecked(g *graph.Digraph, chk *core.Check) *Index {
	return build(g, "P2H+", chk)
}

func build(g *graph.Digraph, name string, chk *core.Check) *Index {
	start := time.Now()
	n := g.N()
	vs := order.ByDegreeDesc(g)
	ix := &Index{
		name: name, byRank: vs, rank: make([]uint32, n),
		in: make([][]Entry, n), out: make([][]Entry, n),
		chk: chk,
	}
	defer func() { ix.chk = nil }()
	for i, v := range vs {
		ix.rank[v] = uint32(i)
	}
	ag := immutable{g}
	for i, v := range vs {
		ix.chk.Tick()
		ix.labelBFS(ag, v, uint32(i), true)
		ix.labelBFS(ag, v, uint32(i), false)
	}
	ix.refreshStats()
	ix.stats.BuildTime = time.Since(start)
	return ix
}

func (ix *Index) refreshStats() {
	entries := 0
	for v := range ix.in {
		entries += len(ix.in[v]) + len(ix.out[v])
	}
	ix.stats.Entries = entries
	ix.stats.Bytes = entries*12 + len(ix.rank)*4
}

// labelBFS runs hub h's (rank r) label-set BFS in the given direction,
// starting from h itself with the empty set. Exposed on the index so DLCR
// can resume it from an inserted edge's endpoint.
func (ix *Index) labelBFS(g graphLike, h graph.V, r uint32, forward bool) {
	ix.labelBFSFrom(g, h, r, forward, h, 0)
}

// graphLike is the adjacency the BFS walks; satisfied by the immutable
// wrapper and by DLCR's mutable overlay graph.
type graphLike interface {
	N() int
	SuccL(v graph.V, f func(w graph.V, l graph.Label))
	PredL(v graph.V, f func(w graph.V, l graph.Label))
}

// immutable adapts *graph.Digraph to graphLike.
type immutable struct{ g *graph.Digraph }

func (i immutable) N() int { return i.g.N() }

func (i immutable) SuccL(v graph.V, f func(w graph.V, l graph.Label)) {
	succ := i.g.Succ(v)
	labs := i.g.SuccLabels(v)
	for k, w := range succ {
		f(w, labs[k])
	}
}

func (i immutable) PredL(v graph.V, f func(w graph.V, l graph.Label)) {
	pred := i.g.Pred(v)
	labs := i.g.PredLabels(v)
	for k, w := range pred {
		f(w, labs[k])
	}
}

// labelBFSFrom resumes hub h's label-set BFS from vertex `from` with the
// initial label set `init` (the already-accumulated path labels between h
// and from).
func (ix *Index) labelBFSFrom(g graphLike, h graph.V, r uint32, forward bool, from graph.V, init labelset.Set) {
	// Per-run antichain frontier at each vertex.
	at := make(map[graph.V]*labelset.Collection)
	type item struct {
		v   graph.V
		set labelset.Set
	}
	start := &labelset.Collection{}
	start.Add(init)
	at[from] = start
	queue := []item{{from, init}}
	for len(queue) > 0 {
		ix.chk.Tick()
		it := queue[0]
		queue = queue[1:]
		if !at[it.v].Has(it.set) {
			continue // superseded within this run
		}
		if it.v != h {
			if forward {
				if ix.coveredBelow(h, it.v, it.set, r) {
					continue
				}
				ix.addEntry(&ix.in[it.v], r, it.set)
			} else {
				if ix.coveredBelow(it.v, h, it.set, r) {
					continue
				}
				ix.addEntry(&ix.out[it.v], r, it.set)
			}
		}
		expand := func(w graph.V, l graph.Label) {
			if ix.rank[w] <= r {
				return
			}
			ns := it.set.With(l)
			c := at[w]
			if c == nil {
				c = &labelset.Collection{}
				at[w] = c
			}
			if c.Add(ns) {
				queue = append(queue, item{w, ns})
			}
		}
		if forward {
			g.SuccL(it.v, expand)
		} else {
			g.PredL(it.v, expand)
		}
	}
}

// addEntry inserts (r, set) into a rank-sorted entry list, keeping the
// per-rank antichain (drop if dominated; evict dominated).
func (ix *Index) addEntry(list *[]Entry, r uint32, set labelset.Set) {
	s := *list
	lo := sort.Search(len(s), func(i int) bool { return s[i].Rank >= r })
	hi := lo
	for hi < len(s) && s[hi].Rank == r {
		hi++
	}
	// Antichain within [lo, hi).
	for i := lo; i < hi; i++ {
		if s[i].Set.SubsetOf(set) {
			return // dominated
		}
	}
	// Rebuild into a fresh slice: filtering in place would alias the tail
	// and corrupt it when the new entry lands on s[hi].
	out := make([]Entry, 0, len(s)+1)
	out = append(out, s[:lo]...)
	for i := lo; i < hi; i++ {
		if !set.SubsetOf(s[i].Set) {
			out = append(out, s[i])
		}
	}
	out = append(out, Entry{Rank: r, Set: set})
	out = append(out, s[hi:]...)
	*list = out
}

// coveredBelow reports whether hubs of rank < limit certify an s→t
// connection with a combined label set ⊆ set.
func (ix *Index) coveredBelow(s, t graph.V, set labelset.Set, limit uint32) bool {
	if s == t {
		return true
	}
	rs, rt := ix.rank[s], ix.rank[t]
	// Endpoint hubs: t ∈ Lout(s) / s ∈ Lin(t) with a subset SPLS.
	if rt < limit {
		for _, e := range ix.out[s] {
			if e.Rank == rt && e.Set.SubsetOf(set) {
				return true
			}
			if e.Rank > rt {
				break
			}
		}
	}
	if rs < limit {
		for _, e := range ix.in[t] {
			if e.Rank == rs && e.Set.SubsetOf(set) {
				return true
			}
			if e.Rank > rs {
				break
			}
		}
	}
	// Common hubs below the limit.
	ls, lt := ix.out[s], ix.in[t]
	i, j := 0, 0
	for i < len(ls) && j < len(lt) && ls[i].Rank < limit && lt[j].Rank < limit {
		switch {
		case ls[i].Rank == lt[j].Rank:
			r := ls[i].Rank
			for a := i; a < len(ls) && ls[a].Rank == r; a++ {
				for b := j; b < len(lt) && lt[b].Rank == r; b++ {
					if ls[a].Set.Union(lt[b].Set).SubsetOf(set) {
						return true
					}
				}
			}
			for i < len(ls) && ls[i].Rank == r {
				i++
			}
			for j < len(lt) && lt[j].Rank == r {
				j++
			}
		case ls[i].Rank < lt[j].Rank:
			i++
		default:
			j++
		}
	}
	return false
}

// Name implements core.LCRIndex.
func (ix *Index) Name() string { return ix.name }

// ReachLC answers the alternation query by hub-label joins.
func (ix *Index) ReachLC(s, t graph.V, allowed labelset.Set) bool {
	if s == t {
		return true
	}
	rs, rt := ix.rank[s], ix.rank[t]
	for _, e := range ix.out[s] {
		if e.Rank == rt && e.Set.SubsetOf(allowed) {
			return true
		}
	}
	for _, e := range ix.in[t] {
		if e.Rank == rs && e.Set.SubsetOf(allowed) {
			return true
		}
	}
	ls, lt := ix.out[s], ix.in[t]
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i].Rank == lt[j].Rank:
			r := ls[i].Rank
			for a := i; a < len(ls) && ls[a].Rank == r; a++ {
				if !ls[a].Set.SubsetOf(allowed) {
					continue
				}
				for b := j; b < len(lt) && lt[b].Rank == r; b++ {
					if lt[b].Set.SubsetOf(allowed) {
						return true
					}
				}
			}
			for i < len(ls) && ls[i].Rank == r {
				i++
			}
			for j < len(lt) && lt[j].Rank == r {
				j++
			}
		case ls[i].Rank < lt[j].Rank:
			i++
		default:
			j++
		}
	}
	return false
}

// Stats implements core.LCRIndex.
func (ix *Index) Stats() core.Stats { return ix.stats }
