package p2h

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/labelset"
	"repro/internal/tc"
	"repro/internal/traversal"
)

func TestConformance(t *testing.T) {
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex { return New(g) })
}

func TestEntriesAreAntichains(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 60, M: 240, Seed: 1}), 5, 0.6, 2)
	ix := New(g)
	checkList := func(list []Entry, who string, v int) {
		for i := range list {
			for j := range list {
				if i != j && list[i].Rank == list[j].Rank && list[i].Set.SubsetOf(list[j].Set) {
					t.Fatalf("%s[%d]: redundant entry (rank %d): %b ⊆ %b",
						who, v, list[i].Rank, list[i].Set, list[j].Set)
				}
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		checkList(ix.in[v], "in", v)
		checkList(ix.out[v], "out", v)
	}
}

func TestIndexSmallerThanGTC(t *testing.T) {
	g := gen.Zipf(gen.ScaleFree(200, 3, 3), 4, 0.8, 4)
	ix := New(g)
	oracle := tc.NewGTC(g)
	if ix.Stats().Entries >= oracle.Entries() {
		t.Errorf("P2H+ entries %d >= full GTC entries %d", ix.Stats().Entries, oracle.Entries())
	}
	if ix.Name() != "P2H+" {
		t.Error("name")
	}
}

func TestDLCRConformanceStatic(t *testing.T) {
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex { return NewDynamic(g) })
}

func TestDLCRInsertions(t *testing.T) {
	full := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 40, M: 160, Seed: 5}), 4, 0, 6)
	edges := full.EdgeList()
	half := len(edges) / 2
	b := graph.NewLabeledBuilder(full.N())
	b.ReserveLabels(full.Labels())
	for _, e := range edges[:half] {
		b.AddLabeledEdge(e.From, e.To, e.Label)
	}
	start := b.MustFreeze()
	ix := NewDynamic(start)
	cur := graph.Mutate(start)
	rng := rand.New(rand.NewSource(7))
	for i, e := range edges[half:] {
		cur.AddLabeledEdge(e.From, e.To, e.Label)
		if err := ix.InsertEdge(e.From, e.To, e.Label); err != nil {
			t.Fatal(err)
		}
		snapshot := cur.MustFreeze()
		for q := 0; q < 40; q++ {
			s := graph.V(rng.Intn(full.N()))
			tt := graph.V(rng.Intn(full.N()))
			mask := uint64(rng.Int63n(1 << uint(full.Labels())))
			want := traversal.LabelConstrainedBFS(snapshot, s, tt, mask)
			if got := ix.ReachLC(s, tt, labelset.Set(mask)); got != want {
				t.Fatalf("after insert %d (%v): ReachLC(%d,%d,%b) = %v, want %v",
					i, e, s, tt, mask, got, want)
			}
		}
		cur = graph.Mutate(snapshot)
	}
}

func TestDLCRDeletions(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 30, M: 120, Seed: 8}), 4, 0, 9)
	ix := NewDynamic(g)
	cur := graph.Mutate(g)
	rng := rand.New(rand.NewSource(10))
	edges := g.EdgeList()
	for i := 0; i < 8; i++ {
		e := edges[rng.Intn(len(edges))]
		cur.RemoveEdge(e)
		if err := ix.DeleteEdge(e.From, e.To, e.Label); err != nil {
			t.Fatal(err)
		}
		snapshot := cur.MustFreeze()
		for q := 0; q < 40; q++ {
			s := graph.V(rng.Intn(g.N()))
			tt := graph.V(rng.Intn(g.N()))
			mask := uint64(rng.Int63n(1 << uint(g.Labels())))
			want := traversal.LabelConstrainedBFS(snapshot, s, tt, mask)
			if got := ix.ReachLC(s, tt, labelset.Set(mask)); got != want {
				t.Fatalf("after delete %d (%v): ReachLC(%d,%d,%b) = %v, want %v",
					i, e, s, tt, mask, got, want)
			}
		}
		cur = graph.Mutate(snapshot)
	}
	if ix.Name() != "DLCR" {
		t.Error("name")
	}
}

func TestDLCRInsertDuplicateNoop(t *testing.T) {
	g := graph.Fig1Labeled()
	ix := NewDynamic(g)
	before := ix.Stats().Entries
	var e graph.Edge
	g.Edges(func(x graph.Edge) bool { e = x; return false })
	if err := ix.InsertEdge(e.From, e.To, e.Label); err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Entries != before {
		t.Error("duplicate insert changed labels")
	}
}
