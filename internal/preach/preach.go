// Package preach implements PReaCH [31] (§3.4): pruned reachability
// contracts over DFS numbering. Each vertex carries, in both directions:
//
//   - its DFS post number and subtree interval (definite positive when the
//     target sits in the source's subtree),
//   - the minimum post number over its full reachable set (definite
//     negative when the target's post falls outside [rmin, post] — on a
//     DAG every reachable vertex finishes before its ancestors),
//   - its topological level (definite negative on level inversion).
//
// The published system adds contraction-hierarchy-style vertex pruning on
// top of a bidirectional pruned BFS; this implementation keeps the
// numbering contracts (which carry the pruning power) and runs the shared
// guided DFS (see DESIGN.md).
package preach

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
)

// Index is the PReaCH partial index over a DAG.
type Index struct {
	g *graph.Digraph
	// Forward direction: fpost/ftmin are the DFS numbers, frmin the
	// min-post over the reachable set.
	fpost, ftmin, frmin []uint32
	// Backward direction (numbers on the reversed DAG).
	bpost, btmin, brmin []uint32
	flev, blev          []uint32
	stats               core.Stats
}

// New builds PReaCH over a DAG.
func New(dag *graph.Digraph) *Index {
	start := time.Now()
	n := dag.N()
	ix := &Index{g: dag}

	build := func(g *graph.Digraph) (post, tmin, rmin []uint32) {
		po := order.DFSForest(g, order.Sources(g), nil)
		post, tmin = po.Post, po.Min
		rmin = make([]uint32, n)
		copy(rmin, post)
		// rmin in reverse topological order of g.
		tp, _ := order.Topological(g)
		for i := len(tp) - 1; i >= 0; i-- {
			v := tp[i]
			for _, w := range g.Succ(v) {
				if rmin[w] < rmin[v] {
					rmin[v] = rmin[w]
				}
			}
		}
		return
	}
	ix.fpost, ix.ftmin, ix.frmin = build(dag)
	rev := dag.Reverse()
	ix.bpost, ix.btmin, ix.brmin = build(rev)
	ix.flev, _ = order.Levels(dag)
	ix.blev, _ = order.Levels(rev)
	ix.stats = core.Stats{
		Entries:   8 * n,
		Bytes:     8 * n * 4,
		BuildTime: time.Since(start),
	}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "PReaCH" }

// TryReach implements core.Partial.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	// Positive contracts: subtree containment in either direction.
	if ix.ftmin[s] <= ix.fpost[t] && ix.fpost[t] <= ix.fpost[s] {
		return true, true
	}
	if ix.btmin[t] <= ix.bpost[s] && ix.bpost[s] <= ix.bpost[t] {
		return true, true
	}
	// Negative contracts: post-order and reach-min bounds, both
	// directions, plus topological levels.
	if ix.fpost[t] >= ix.fpost[s] || ix.fpost[t] < ix.frmin[s] {
		return false, true
	}
	if ix.bpost[s] >= ix.bpost[t] || ix.bpost[s] < ix.brmin[t] {
		return false, true
	}
	if ix.flev[s] >= ix.flev[t] || ix.blev[t] >= ix.blev[s] {
		return false, true
	}
	return false, false
}

// Reach answers Qr(s, t) exactly via contract-guided DFS.
func (ix *Index) Reach(s, t graph.V) bool {
	return core.GuidedDFS(ix.g, s, t, ix.TryReach)
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }
