package preach

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestContractsOnLine(t *testing.T) {
	// On a line every query should be decided by the contracts alone.
	n := 60
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	ix := New(b.MustFreeze())
	for s := graph.V(0); int(s) < n; s++ {
		for tt := graph.V(0); int(tt) < n; tt++ {
			r, dec := ix.TryReach(s, tt)
			if !dec {
				t.Fatalf("line query (%d,%d) undecided", s, tt)
			}
			if r != (s <= tt) {
				t.Fatalf("line query (%d,%d) = %v", s, tt, r)
			}
		}
	}
}

func TestReachMinBound(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 150, M: 450, Seed: 3})
	ix := New(g)
	oracle := tc.NewClosure(g)
	// frmin must lower-bound the posts of the reachable set exactly.
	for v := graph.V(0); int(v) < g.N(); v++ {
		min := ix.fpost[v]
		for w := graph.V(0); int(w) < g.N(); w++ {
			if oracle.Reach(v, w) && ix.fpost[w] < min {
				min = ix.fpost[w]
			}
		}
		if ix.frmin[v] != min {
			t.Fatalf("frmin[%d] = %d, want %d", v, ix.frmin[v], min)
		}
	}
	if ix.Name() != "PReaCH" {
		t.Error("name")
	}
}
