// Package gripp implements GRIPP [43] (§3.1): the GRaph Indexing based on
// Pre- and Postorder numbering of Trißl and Leser. Unlike the other
// tree-cover indexes it works on general graphs directly.
//
// The index is an instance tree built by one DFS: the first encounter of a
// vertex creates its tree instance (with the full pre/post range of its
// exploration); later encounters create non-tree instances — leaves that
// mark "the traversal re-entered v here". Qr(s, t) is evaluated by the
// reachability instance query RIQ: does any instance of t fall inside the
// pre/post range of s's tree instance? If not, hop: every non-tree
// instance inside the range names a vertex whose tree instance is explored
// recursively (each vertex hopped at most once). Positive answers can stop
// early; negative answers exhaust the hops, which is why GRIPP is a
// partial index "without false positives" (§5).
package gripp

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/scratch"
)

// instance is one occurrence of a vertex in the instance tree.
type instance struct {
	v         graph.V
	pre, post uint32
	tree      bool
}

// Index is the GRIPP partial index over a general digraph.
type Index struct {
	g *graph.Digraph
	// inst sorted by pre number.
	inst []instance
	// treeOf[v] = index into inst of v's tree instance.
	treeOf []int32
	// instOf[v] = pre numbers of all instances of v, ascending.
	instOf [][]uint32
	stats  core.Stats
}

// New builds the GRIPP instance tree of g.
func New(g *graph.Digraph) *Index {
	start := time.Now()
	n := g.N()
	ix := &Index{g: g, treeOf: make([]int32, n), instOf: make([][]uint32, n)}
	for i := range ix.treeOf {
		ix.treeOf[i] = -1
	}
	var counter uint32
	visited := make([]bool, n)

	type frame struct {
		v    graph.V
		inst int32
		ei   int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		id := int32(len(ix.inst))
		ix.inst = append(ix.inst, instance{v: graph.V(root), pre: counter, tree: true})
		counter++
		ix.treeOf[root] = id
		stack = append(stack[:0], frame{v: graph.V(root), inst: id})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succ := ix.g.Succ(f.v)
			if f.ei < len(succ) {
				w := succ[f.ei]
				f.ei++
				if !visited[w] {
					visited[w] = true
					wid := int32(len(ix.inst))
					ix.inst = append(ix.inst, instance{v: w, pre: counter, tree: true})
					counter++
					ix.treeOf[w] = wid
					stack = append(stack, frame{v: w, inst: wid})
				} else {
					// Non-tree instance: a leaf [pre, pre].
					ix.inst = append(ix.inst, instance{v: w, pre: counter, post: counter, tree: false})
					counter++
				}
				continue
			}
			ix.inst[f.inst].post = counter
			counter++
			stack = stack[:len(stack)-1]
		}
	}
	// inst is already sorted by pre (DFS order). Build per-vertex lists.
	for i := range ix.inst {
		in := &ix.inst[i]
		ix.instOf[in.v] = append(ix.instOf[in.v], in.pre)
	}
	ix.stats = core.Stats{
		Entries:   len(ix.inst),
		Bytes:     len(ix.inst)*13 + n*4,
		BuildTime: time.Since(start),
	}
	return ix
}

// Name implements core.Index.
func (ix *Index) Name() string { return "GRIPP" }

// anyInstanceIn reports whether v has an instance with pre in (lo, hi).
func (ix *Index) anyInstanceIn(v graph.V, lo, hi uint32) bool {
	pres := ix.instOf[v]
	i := sort.Search(len(pres), func(i int) bool { return pres[i] > lo })
	return i < len(pres) && pres[i] < hi
}

// TryReach implements core.Partial: a hit inside the tree-instance range of
// s is a definite positive (no hop needed); misses are undecided.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	ti := ix.inst[ix.treeOf[s]]
	if ix.anyInstanceIn(t, ti.pre, ti.post) {
		return true, true
	}
	return false, false
}

// Reach answers Qr(s, t) by the hop traversal over the instance tree. The
// hopped set and hop stack come from the pooled scratch arena.
func (ix *Index) Reach(s, t graph.V) bool {
	if s == t {
		return true
	}
	sc := scratch.Get(ix.g.N())
	defer scratch.Put(sc)
	hopped := sc.Visited()
	hopped.Set(int(s))
	sc.Queue = append(sc.Queue, s)
	for len(sc.Queue) > 0 {
		v := sc.Queue[len(sc.Queue)-1]
		sc.Queue = sc.Queue[:len(sc.Queue)-1]
		ti := ix.inst[ix.treeOf[v]]
		if ix.anyInstanceIn(t, ti.pre, ti.post) {
			return true
		}
		// Hop: every non-tree instance inside the range re-enters a vertex
		// whose own exploration lives elsewhere in the instance tree. Also
		// hop the vertices whose tree instances are inside this range but
		// were entered from outside (for robustness; cheap because each
		// vertex hops once).
		lo := sort.Search(len(ix.inst), func(i int) bool { return ix.inst[i].pre > ti.pre })
		for i := lo; i < len(ix.inst) && ix.inst[i].pre < ti.post; i++ {
			w := ix.inst[i].v
			if !ix.inst[i].tree && !hopped.Test(int(w)) {
				hopped.Set(int(w))
				sc.Queue = append(sc.Queue, w)
			}
		}
	}
	return false
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }

// Instances returns the instance-tree size (n tree + m-ish non-tree).
func (ix *Index) Instances() int { return len(ix.inst) }
