package gripp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
)

func TestConformanceOnDAGs(t *testing.T) {
	// GRIPP accepts general graphs directly; run it raw on both suites.
	indextest.CheckGeneralIndex(t, func(g *graph.Digraph) core.Index { return New(g) })
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index { return New(dag) })
}

func TestInstanceCount(t *testing.T) {
	// Exactly one tree instance per vertex; every edge produces exactly
	// one instance of its head (tree on first visit, non-tree leaf
	// otherwise), except tree edges whose head instance IS the tree
	// instance. So: tree instances = n, and n <= total <= n + m.
	g := gen.RandomDAG(gen.Config{N: 200, M: 600, Seed: 1})
	ix := New(g)
	tree := 0
	for _, in := range ix.inst {
		if in.tree {
			tree++
		}
	}
	if tree != g.N() {
		t.Errorf("tree instances = %d, want n = %d", tree, g.N())
	}
	nonTree := ix.Instances() - tree
	// Non-tree instances = m - (tree edges); tree edges <= n-1.
	if nonTree < g.M()-g.N() || nonTree > g.M() {
		t.Errorf("non-tree instances = %d out of range [%d,%d]",
			nonTree, g.M()-g.N(), g.M())
	}
}

func TestCycleHandling(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 cycle plus tail 2 -> 3.
	g := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	ix := New(g)
	for s := graph.V(0); s < 3; s++ {
		for tt := graph.V(0); tt < 4; tt++ {
			if !ix.Reach(s, tt) {
				t.Errorf("Reach(%d,%d) should be true in the cycle", s, tt)
			}
		}
	}
	if ix.Reach(3, 0) {
		t.Error("tail cannot reach back")
	}
	if ix.Name() != "GRIPP" {
		t.Error("name")
	}
}
