package ip

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
	"repro/internal/tc"
)

func TestConformance(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 4, Seed: 1})
	})
}

func TestPartialSoundness(t *testing.T) {
	indextest.CheckPartialSoundness(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 2, Seed: 2})
	})
}

func TestKOne(t *testing.T) {
	indextest.CheckDAGIndex(t, func(dag *graph.Digraph) core.Index {
		return New(dag, Options{K: 1, Seed: 3})
	})
}

func TestKMin(t *testing.T) {
	dst := make([]uint32, 3)
	m := kMin([]uint32{9, 1, 5, 1, 3, 9, 2}, dst)
	if m != 3 || dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("kMin = %v (m=%d)", dst[:m], m)
	}
	m = kMin([]uint32{7, 7}, dst)
	if m != 1 || dst[0] != 7 {
		t.Fatalf("dedup failed: %v (m=%d)", dst[:m], m)
	}
	m = kMin(nil, dst)
	if m != 0 {
		t.Fatalf("empty kMin m=%d", m)
	}
}

func TestKMinRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(30)
		buf := make([]uint32, n)
		for i := range buf {
			buf[i] = uint32(rng.Intn(15))
		}
		k := 1 + rng.Intn(6)
		dst := make([]uint32, k)
		m := kMin(buf, dst)
		// Naive: sort unique, take first k.
		uniq := map[uint32]bool{}
		for _, x := range buf {
			uniq[x] = true
		}
		var want []uint32
		for x := range uniq {
			want = append(want, x)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) > k {
			want = want[:k]
		}
		if m != len(want) {
			t.Fatalf("m=%d want %d (buf=%v k=%d)", m, len(want), buf, k)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("dst=%v want %v", dst[:m], want)
			}
		}
	}
}

func TestSketchesAreKMinOfReachSets(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 80, M: 240, Seed: 5})
	ix := New(g, Options{K: 5, Seed: 6})
	oracle := tc.NewClosure(g)
	for v := graph.V(0); int(v) < g.N(); v++ {
		// Collect π values of the true reachable set.
		var vals []uint32
		for w := graph.V(0); int(w) < g.N(); w++ {
			if oracle.Reach(v, w) {
				vals = append(vals, ix.perm[w])
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if len(vals) > ix.k {
			vals = vals[:ix.k]
		}
		got := ix.out[int(v)*ix.k : int(v)*ix.k+int(ix.outLen[v])]
		if len(got) != len(vals) {
			t.Fatalf("v=%d sketch len %d want %d", v, len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("v=%d sketch %v want %v", v, got, vals)
			}
		}
	}
}

func TestNoFalseNegatives(t *testing.T) {
	g := gen.ScaleFree(300, 3, 7)
	ix := New(g, Options{K: 6, Seed: 8})
	oracle := tc.NewClosure(g)
	for s := graph.V(0); int(s) < g.N(); s += 2 {
		for tt := graph.V(0); int(tt) < g.N(); tt += 3 {
			if oracle.Reach(s, tt) {
				if r, dec := ix.TryReach(s, tt); dec && !r {
					t.Fatalf("false negative at (%d,%d)", s, tt)
				}
			}
		}
	}
}

func TestName(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 10, M: 15, Seed: 1})
	if New(g, Options{}).Name() != "IP" {
		t.Error("name")
	}
}
