// Package ip implements the IP label [46, 47] (§3.3): approximate
// transitive closure via k-min-wise independent-permutation sketches.
//
// A random permutation π assigns every vertex a distinct value. Each
// vertex stores the k smallest π-values of its reachable set (forward) and
// of its reaching set (backward), both computed in one topological pass by
// merging successor sketches. Two cuts follow:
//
//   - definite positive: π(t) appears in s's forward sketch — π is
//     injective, so t really is reachable from s (likewise s in t's
//     backward sketch);
//   - definite negative (the §3.3 contra-positive): an element of t's
//     sketch smaller than s's k-th minimum but absent from s's sketch
//     witnesses Out(t) ⊄ Out(s).
//
// A topological-level filter adds a second cheap negative cut. Undecided
// queries run the filter-guided DFS.
package ip

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/par"
)

// Options configures IP.
type Options struct {
	// K is the sketch size (the paper's k). Default 8.
	K int
	// Seed drives the random permutation.
	Seed int64
	// Workers caps the pool running the sketch-merge passes
	// (0 = GOMAXPROCS, 1 = serial). Each pass is a level-synchronized
	// sweep — a vertex's sketch is a pure merge of its neighbours'
	// finished sketches — so the index is identical at any worker count.
	Workers int
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 8
	}
}

// Index is the IP partial index over a DAG.
type Index struct {
	g    *graph.Digraph
	k    int
	perm []uint32 // π(v)
	// out[v*k : v*k+outLen[v]] ascending k-min sketch of the reachable set.
	out    []uint32
	outLen []uint8
	in     []uint32
	inLen  []uint8
	level  []uint32 // forward topological level
	rlevel []uint32 // backward topological level
	stats  core.Stats
}

// New builds IP over a DAG.
func New(dag *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	n := dag.N()
	k := opts.K
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := make([]uint32, n)
	for i, p := range rng.Perm(n) {
		perm[i] = uint32(p)
	}
	ix := &Index{
		g: dag, k: k, perm: perm,
		out: make([]uint32, n*k), outLen: make([]uint8, n),
		in: make([]uint32, n*k), inLen: make([]uint8, n),
	}
	buckets := order.LevelBuckets(dag)
	bufs := make([][]uint32, par.Resolve(opts.Workers))
	for i := range bufs {
		bufs[i] = make([]uint32, 0, 4*k)
	}
	// Forward sketches, deepest level first: successors' sketches are
	// complete before a vertex merges them.
	par.Sweep(opts.Workers, order.Reversed(buckets), func(w int, v graph.V) {
		buf := bufs[w][:0]
		buf = append(buf, perm[v])
		for _, u := range dag.Succ(v) {
			buf = append(buf, ix.out[int(u)*k:int(u)*k+int(ix.outLen[u])]...)
		}
		ix.outLen[v] = uint8(kMin(buf, ix.out[int(v)*k:int(v)*k+k]))
		bufs[w] = buf
	})
	// Backward sketches, shallowest level first.
	par.Sweep(opts.Workers, buckets, func(w int, v graph.V) {
		buf := bufs[w][:0]
		buf = append(buf, perm[v])
		for _, u := range dag.Pred(v) {
			buf = append(buf, ix.in[int(u)*k:int(u)*k+int(ix.inLen[u])]...)
		}
		ix.inLen[v] = uint8(kMin(buf, ix.in[int(v)*k:int(v)*k+k]))
		bufs[w] = buf
	})
	ix.level, _ = order.Levels(dag)
	ix.rlevel, _ = order.Levels(dag.Reverse())
	ix.stats = core.Stats{
		Entries:   2 * n,
		Bytes:     2*n*k*4 + 2*n + n*4 + 2*n*4,
		BuildTime: time.Since(start),
	}
	return ix
}

// kMin writes the smallest min(k, distinct) values of buf into dst
// (ascending, deduplicated) and returns how many were written.
func kMin(buf []uint32, dst []uint32) int {
	k := len(dst)
	m := 0
	for _, x := range buf {
		// Insertion into the running ascending top-k.
		if m == k && x >= dst[m-1] {
			continue
		}
		pos := m
		for pos > 0 && dst[pos-1] > x {
			pos--
		}
		if pos > 0 && dst[pos-1] == x {
			continue // duplicate
		}
		if m < k {
			m++
		}
		copy(dst[pos+1:m], dst[pos:m-1])
		dst[pos] = x
	}
	return m
}

// Name implements core.Index.
func (ix *Index) Name() string { return "IP" }

// sketchContains reports whether ascending sketch s contains x.
func sketchContains(s []uint32, x uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// TryReach implements core.Partial.
func (ix *Index) TryReach(s, t graph.V) (bool, bool) {
	if s == t {
		return true, true
	}
	// Topological-level cuts.
	if ix.level[s] >= ix.level[t] || ix.rlevel[t] >= ix.rlevel[s] {
		return false, true
	}
	k := ix.k
	so := ix.out[int(s)*k : int(s)*k+int(ix.outLen[s])]
	to := ix.out[int(t)*k : int(t)*k+int(ix.outLen[t])]
	// Definite positive: π(t) in s's forward sketch (π injective).
	if sketchContains(so, ix.perm[t]) {
		return true, true
	}
	// Negative cut: an element of t's sketch below s's horizon missing
	// from s's sketch. When s's sketch holds fewer than k values it is the
	// exact reachable set, so the horizon is infinite.
	horizon := uint32(^uint32(0))
	if int(ix.outLen[s]) == k {
		horizon = so[len(so)-1]
	}
	for _, x := range to {
		if x > horizon {
			break
		}
		if !sketchContains(so, x) {
			return false, true
		}
	}
	// Dual direction.
	si := ix.in[int(s)*k : int(s)*k+int(ix.inLen[s])]
	ti := ix.in[int(t)*k : int(t)*k+int(ix.inLen[t])]
	if sketchContains(ti, ix.perm[s]) {
		return true, true
	}
	horizon = ^uint32(0)
	if int(ix.inLen[t]) == k {
		horizon = ti[len(ti)-1]
	}
	for _, x := range si {
		if x > horizon {
			break
		}
		if !sketchContains(ti, x) {
			return false, true
		}
	}
	return false, false
}

// Reach answers Qr(s, t) exactly via filter-guided DFS.
func (ix *Index) Reach(s, t graph.V) bool {
	return core.GuidedDFS(ix.g, s, t, ix.TryReach)
}

// ReachCounted implements core.ReachCounter: the same guided DFS as
// Reach, additionally reporting how many vertices it expanded and whether
// the index labels decided the query without any expansion.
func (ix *Index) ReachCounted(s, t graph.V) (bool, int, bool) {
	r, n := core.CountingGuidedDFS(ix.g, s, t, ix.TryReach)
	return r, n, n == 0
}

// Stats implements core.Index.
func (ix *Index) Stats() core.Stats { return ix.stats }
