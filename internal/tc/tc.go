// Package tc implements the naive closures of the paper's §2.3, used here
// exactly as the paper positions them: as the semantics every index is
// validated against, feasible only at small-to-medium scale.
//
//   - Closure: the transitive closure (TC) of a plain graph as a bit matrix,
//     O(n·m/64) via reverse-topological bitset propagation on the
//     condensation.
//   - GTC: the generalized transitive closure for alternation constraints —
//     for every (s, t), the antichain of minimal path-label sets (SPLSs).
//   - RLCReach: ground truth for concatenation constraints via product BFS.
package tc

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelset"
	"repro/internal/par"
	"repro/internal/scc"
	"repro/internal/scratch"
	"repro/internal/traversal"
)

// Closure is the full transitive closure of a digraph. Reach(s, t) answers
// in O(1). Reflexive: every vertex reaches itself.
type Closure struct {
	comp []uint32
	mat  *bitset.Matrix // component-level closure
}

// NewClosure computes the transitive closure of g (general digraph; SCCs
// are condensed first). Serial; see NewClosureN for the parallel variant.
func NewClosure(g *graph.Digraph) *Closure { return NewClosureN(g, 1) }

// NewClosureN is NewClosure with the row computation fanned out over a
// worker pool (0 = GOMAXPROCS, 1 = serial): the component sources are cut
// into blocks of 64 and each block is closed by one bit-parallel sweep of
// the condensation (traversal.MultiSourceSweep) — 64 rows per pass over
// the DAG's edges instead of one OR per edge endpoint per row. Blocks own
// disjoint row ranges of the closure matrix and the topological order is
// shared read-only, so the closure is exact and identical at any worker
// count.
func NewClosureN(g *graph.Digraph, workers int) *Closure {
	return NewClosureChecked(g, workers, nil)
}

// NewClosureChecked is NewClosureN under a cancellation checkpoint: one
// tick per closure row, so a canceled closure build over a large
// condensation aborts after a bounded number of block sweeps. A nil check
// is free.
func NewClosureChecked(g *graph.Digraph, workers int, chk *core.Check) *Closure {
	cond := scc.Condense(g)
	dag := cond.DAG
	nc := dag.N()
	mat := bitset.NewMatrix(nc, nc)
	// Tarjan assigns component ids in reverse topological order (if a
	// reaches b then id(a) > id(b)), so descending ids ARE a topological
	// order of the condensation — no level bucketing needed.
	ord := make([]graph.V, nc)
	for i := range ord {
		ord[i] = graph.V(nc - 1 - i)
	}
	blocks := (nc + traversal.WordSources - 1) / traversal.WordSources
	par.Do(workers, blocks, func(b int) {
		base := b * traversal.WordSources
		hi := base + traversal.WordSources
		if hi > nc {
			hi = nc
		}
		sc := scratch.Get(0)
		defer scratch.Put(sc)
		words := sc.Words(nc)
		for s := base; s < hi; s++ {
			chk.Tick()
			words[s] |= 1 << uint(s-base) // source reaches itself
		}
		traversal.MultiSourceSweep(dag, ord, words)
		for v, wv := range words {
			for wv != 0 {
				j := bits.TrailingZeros64(wv)
				mat.Set(base+j, v)
				wv &= wv - 1
			}
		}
	})
	return &Closure{comp: cond.Comp, mat: mat}
}

// Reach reports whether t is reachable from s (true when s == t).
func (c *Closure) Reach(s, t graph.V) bool {
	return c.mat.Test(int(c.comp[s]), int(c.comp[t]))
}

// Pairs returns the number of reachable component pairs; Bytes the storage.
func (c *Closure) Pairs() int { return c.mat.CountAll() }

// Bytes returns the storage footprint of the closure matrix.
func (c *Closure) Bytes() int { return c.mat.Bytes() }

// GTC is the generalized transitive closure for alternation (LCR) queries:
// gtc[s][t] is the antichain of minimal label sets over all s-t paths.
// Quadratic storage — small graphs only, used as the LCR oracle.
type GTC struct {
	n    int
	cols []*labelset.Collection // indexed s*n + t; nil = unreachable
}

// NewGTC computes the exact GTC of a labeled digraph by per-source
// label-set BFS with antichain frontiers.
func NewGTC(g *graph.Digraph) *GTC { return NewGTCChecked(g, nil) }

// NewGTCChecked is NewGTC under a cancellation checkpoint: ticks per
// source and per worklist expansion, so a build blowing up on label-set
// combinatorics (the survey's GTC infeasibility warning) stays cancelable
// mid-source.
func NewGTCChecked(g *graph.Digraph, chk *core.Check) *GTC {
	n := g.N()
	t := &GTC{n: n, cols: make([]*labelset.Collection, n*n)}
	for s := 0; s < n; s++ {
		chk.Tick()
		t.singleSource(g, graph.V(s), chk)
	}
	return t
}

// singleSource computes minimal label sets from s to every vertex by a
// label-set Dijkstra/BFS hybrid: a worklist of (vertex, set) pairs, where a
// pair is expanded only if its set is not dominated at that vertex.
func (t *GTC) singleSource(g *graph.Digraph, s graph.V, chk *core.Check) {
	n := g.N()
	at := make([]*labelset.Collection, n)
	type item struct {
		v   graph.V
		set labelset.Set
	}
	var queue []item
	at[s] = &labelset.Collection{}
	at[s].Add(0) // empty set reaches s
	queue = append(queue, item{s, 0})
	for len(queue) > 0 {
		chk.Tick()
		it := queue[0]
		queue = queue[1:]
		// Skip entries evicted by a smaller set discovered after they were
		// enqueued; the smaller set's own expansion covers them.
		if !at[it.v].Has(it.set) {
			continue
		}
		succ := g.Succ(it.v)
		labs := g.SuccLabels(it.v)
		for i, w := range succ {
			ns := it.set.With(labs[i])
			if at[w] == nil {
				at[w] = &labelset.Collection{}
			}
			if at[w].Add(ns) {
				queue = append(queue, item{w, ns})
			}
		}
	}
	for v := 0; v < n; v++ {
		if at[v] != nil && at[v].Len() > 0 {
			t.cols[int(s)*n+v] = at[v]
		}
	}
}

// SPLS returns the antichain of minimal label sets from s to t, or nil if t
// is unreachable from s. For s == t the collection contains the empty set.
func (t *GTC) SPLS(s, tgt graph.V) *labelset.Collection {
	return t.cols[int(s)*t.n+int(tgt)]
}

// ReachLC answers the alternation query: can s reach t using only labels in
// allowed? (true for s == t).
func (t *GTC) ReachLC(s, tgt graph.V, allowed labelset.Set) bool {
	c := t.cols[int(s)*t.n+int(tgt)]
	return c != nil && c.AnySubsetOf(allowed)
}

// Entries returns the total number of stored label sets (the GTC size the
// paper calls infeasible to materialize at scale).
func (t *GTC) Entries() int {
	e := 0
	for _, c := range t.cols {
		if c != nil {
			e += c.Len()
		}
	}
	return e
}

// RLCReach is the concatenation-constraint ground truth: does some s-t path
// spell (seq)^k for k >= 1 (or k >= 0 when star, making s == t true)? It
// runs a BFS over the product of g with the |seq|-state cyclic automaton.
func RLCReach(g *graph.Digraph, s, tgt graph.V, seq []graph.Label, star bool) bool {
	if s == tgt && star {
		return true
	}
	k := len(seq)
	if k == 0 {
		return s == tgt && star
	}
	n := g.N()
	visited := bitset.New(n * k)
	type state struct {
		v graph.V
		q int // next expected position in seq
	}
	visited.Set(int(s) * k)
	queue := []state{{s, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		succ := g.Succ(cur.v)
		labs := g.SuccLabels(cur.v)
		for i, w := range succ {
			if labs[i] != seq[cur.q] {
				continue
			}
			nq := (cur.q + 1) % k
			if w == tgt && nq == 0 {
				return true
			}
			id := int(w)*k + nq
			if !visited.Test(id) {
				visited.Set(id)
				queue = append(queue, state{w, nq})
			}
		}
	}
	return false
}

// Oracle bundles the exact answers for all three query classes on one
// graph; the cross-validation tests of every index build one of these.
type Oracle struct {
	G       *graph.Digraph
	Plain   *Closure
	Labeled *GTC // nil for unlabeled graphs
}

// NewOracle builds the oracle for g (GTC only when labeled).
func NewOracle(g *graph.Digraph) *Oracle {
	o := &Oracle{G: g, Plain: NewClosure(g)}
	if g.Labeled() {
		o.Labeled = NewGTC(g)
	}
	return o
}

// Reach is the plain ground truth.
func (o *Oracle) Reach(s, t graph.V) bool { return o.Plain.Reach(s, t) }

// ReachLC is the alternation ground truth.
func (o *Oracle) ReachLC(s, t graph.V, allowed labelset.Set) bool {
	if s == t {
		return true
	}
	return o.Labeled.ReachLC(s, t, allowed)
}

// ReachRLC is the concatenation ground truth.
func (o *Oracle) ReachRLC(s, t graph.V, seq []graph.Label, star bool) bool {
	return RLCReach(o.G, s, t, seq, star)
}
