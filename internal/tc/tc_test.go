package tc

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labelset"
	"repro/internal/traversal"
)

func TestClosureMatchesBFS(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.ErdosRenyi(gen.Config{N: 70, M: 200, Seed: seed})
		c := NewClosure(g)
		for s := graph.V(0); int(s) < g.N(); s++ {
			set := traversal.ReachableFrom(g, s)
			for tt := graph.V(0); int(tt) < g.N(); tt++ {
				if c.Reach(s, tt) != set.Test(int(tt)) {
					t.Fatalf("seed %d: Reach(%d,%d) = %v, BFS = %v",
						seed, s, tt, c.Reach(s, tt), set.Test(int(tt)))
				}
			}
		}
	}
}

func TestClosureReflexive(t *testing.T) {
	g := gen.RandomDAG(gen.Config{N: 50, M: 100, Seed: 1})
	c := NewClosure(g)
	for v := graph.V(0); int(v) < g.N(); v++ {
		if !c.Reach(v, v) {
			t.Fatalf("Reach(%d,%d) false", v, v)
		}
	}
}

func TestClosureStats(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}})
	c := NewClosure(g)
	// Pairs: (0,0),(1,1),(2,2),(0,1),(1,2),(0,2) = 6.
	if c.Pairs() != 6 {
		t.Fatalf("Pairs = %d, want 6", c.Pairs())
	}
	if c.Bytes() <= 0 {
		t.Error("Bytes must be positive")
	}
}

func TestGTCFig1WorkedExamples(t *testing.T) {
	g := graph.Fig1Labeled()
	id := func(name string) graph.V {
		for v := 0; v < g.N(); v++ {
			if g.VertexName(graph.V(v)) == name {
				return graph.V(v)
			}
		}
		t.Fatalf("no vertex %q", name)
		return 0
	}
	gtc := NewGTC(g)
	friendOf, follows, worksFor := graph.Label(0), graph.Label(1), graph.Label(2)

	// §4.1: SPLS(L→M) = {worksFor} (p1 dominates p2).
	lm := gtc.SPLS(id("L"), id("M"))
	if lm == nil || lm.Len() != 1 || lm.Sets()[0] != labelset.Of(worksFor) {
		t.Errorf("SPLS(L,M) = %+v, want exactly {worksFor}", lm)
	}
	// SPLS(A→L) = {follows}.
	al := gtc.SPLS(id("A"), id("L"))
	if al == nil || al.Len() != 1 || al.Sets()[0] != labelset.Of(follows) {
		t.Errorf("SPLS(A,L) wrong: %+v", al)
	}
	// SPLS(A→M) = {follows, worksFor}.
	am := gtc.SPLS(id("A"), id("M"))
	if am == nil || am.Len() != 1 || am.Sets()[0] != labelset.Of(follows, worksFor) {
		t.Errorf("SPLS(A,M) wrong: %+v", am)
	}
	// §2.2: Qr(A,G,(friendOf ∪ follows)*) = false.
	if gtc.ReachLC(id("A"), id("G"), labelset.Of(friendOf, follows)) {
		t.Error("Qr(A,G,(friendOf|follows)*) should be false")
	}
	// §4.1.2: L→H has minimal sets {worksFor} (p3); p4's {worksFor,friendOf}
	// is dominated.
	lh := gtc.SPLS(id("L"), id("H"))
	if lh == nil || !lh.Dominates(labelset.Of(worksFor, friendOf)) {
		t.Error("SPLS(L,H) must dominate p4's label set")
	}
	if !lh.Has(labelset.Of(worksFor)) {
		t.Errorf("SPLS(L,H) must contain {worksFor} via p3: %+v", lh.Sets())
	}
}

func TestGTCMatchesLCRBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for seed := int64(0); seed < 3; seed++ {
		g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 50, M: 200, Seed: seed}), 5, 0.7, seed+100)
		gtc := NewGTC(g)
		for q := 0; q < 400; q++ {
			s := graph.V(rng.Intn(g.N()))
			tt := graph.V(rng.Intn(g.N()))
			mask := uint64(rng.Intn(32))
			want := traversal.LabelConstrainedBFS(g, s, tt, mask)
			got := gtc.ReachLC(s, tt, labelset.Set(mask))
			if s == tt {
				// GTC stores the empty set for self-pairs; LCR-BFS treats
				// s==t as trivially true.
				got = true
			}
			if got != want {
				t.Fatalf("seed %d: ReachLC(%d,%d,%b) = %v, want %v",
					seed, s, tt, mask, got, want)
			}
		}
	}
}

func TestGTCAntichains(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 40, M: 160, Seed: 5}), 4, 0, 6)
	gtc := NewGTC(g)
	for s := 0; s < g.N(); s++ {
		for tt := 0; tt < g.N(); tt++ {
			if c := gtc.SPLS(graph.V(s), graph.V(tt)); c != nil && !c.IsAntichain() {
				t.Fatalf("SPLS(%d,%d) not an antichain: %v", s, tt, c.Sets())
			}
		}
	}
	if gtc.Entries() == 0 {
		t.Error("GTC has no entries")
	}
}

func TestRLCReachFig1(t *testing.T) {
	g := graph.Fig1Labeled()
	id := func(name string) graph.V {
		for v := 0; v < g.N(); v++ {
			if g.VertexName(graph.V(v)) == name {
				return graph.V(v)
			}
		}
		t.Fatalf("no vertex %q", name)
		return 0
	}
	worksFor, friendOf := graph.Label(2), graph.Label(0)
	// §4.2: Qr(L,B,(worksFor·friendOf)*) = true.
	if !RLCReach(g, id("L"), id("B"), []graph.Label{worksFor, friendOf}, true) {
		t.Error("Qr(L,B,(worksFor.friendOf)*) should be true")
	}
	if !RLCReach(g, id("L"), id("B"), []graph.Label{worksFor, friendOf}, false) {
		t.Error("plus variant should also be true (2 repeats)")
	}
	// A cannot start a worksFor-first path.
	if RLCReach(g, id("A"), id("B"), []graph.Label{worksFor, friendOf}, false) {
		t.Error("Qr(A,B,(worksFor.friendOf)+) should be false")
	}
	// Star makes s==t true, plus does not (no cycle spelled by (wf·fo)^k at A).
	if !RLCReach(g, id("A"), id("A"), []graph.Label{worksFor, friendOf}, true) {
		t.Error("star self query should be true")
	}
	if RLCReach(g, id("A"), id("A"), []graph.Label{worksFor, friendOf}, false) {
		t.Error("plus self query should be false here")
	}
}

func TestOracle(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 30, M: 90, Seed: 3}), 3, 0, 4)
	o := NewOracle(g)
	if o.Labeled == nil {
		t.Fatal("labeled oracle missing")
	}
	if !o.Reach(0, 0) || !o.ReachLC(5, 5, 0) {
		t.Error("self reachability should hold")
	}
	plainOnly := NewOracle(gen.RandomDAG(gen.Config{N: 20, M: 40, Seed: 1}))
	if plainOnly.Labeled != nil {
		t.Error("unlabeled graph should have no GTC")
	}
}
