// Package lcrlandmark implements the landmark index of Valstar, Fletcher
// and Yoshida [44] (§4.1.2): a partial index for alternation (LCR)
// queries. The top-k vertices by degree become landmarks; each landmark
// stores its single-source GTC (minimal SPLSs to every reachable vertex).
//
// Qr(s, t, A) runs a label-constrained BFS from s. When the traversal hits
// a landmark v, the landmark's GTC is consulted: an SPLS(v → t) inside A
// answers true immediately; otherwise everything reachable from v under A
// is already covered by the landmark (its GTC is complete), so v is not
// expanded — the paper's pruning rule. As §5 notes, this partial index has
// no false positives, so a negative lookup cannot stop early; the BFS must
// exhaust.
package lcrlandmark

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelset"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/scratch"
)

// Options configures the landmark index.
type Options struct {
	// K is the number of landmark vertices. Default 16.
	K int
	// Workers caps the pool computing the per-landmark single-source
	// GTCs (0 = GOMAXPROCS, 1 = serial) — they are independent, the §5
	// "parallel computation of indexes" direction where it is
	// embarrassingly easy. The index is identical at any worker count.
	Workers int
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 16
	}
}

// Index is the landmark partial LCR index.
type Index struct {
	g *graph.Digraph
	// landmark[v] = index into gtc, or -1.
	landmark []int32
	// gtc[i] = single-source GTC of landmark i: spls[t] (nil if
	// unreachable).
	gtc   [][]*labelset.Collection
	stats core.Stats
}

// New builds the landmark index over a labeled digraph.
func New(g *graph.Digraph, opts Options) *Index {
	opts.defaults()
	start := time.Now()
	n := g.N()
	k := opts.K
	if k > n {
		k = n
	}
	ix := &Index{g: g, landmark: make([]int32, n)}
	for i := range ix.landmark {
		ix.landmark[i] = -1
	}
	lms := order.ByDegreeDesc(g)[:k]
	ix.gtc = make([][]*labelset.Collection, k)
	for i, lm := range lms {
		ix.landmark[lm] = int32(i)
	}
	par.Do(opts.Workers, k, func(i int) {
		ix.gtc[i] = singleSourceGTC(g, lms[i])
	})
	entries := 0
	for i := range ix.gtc {
		for _, c := range ix.gtc[i] {
			if c != nil {
				entries += c.Len()
			}
		}
	}
	ix.stats = core.Stats{Entries: entries, Bytes: entries*8 + n*4, BuildTime: time.Since(start)}
	return ix
}

// singleSourceGTC computes the minimal SPLSs from s to every vertex.
func singleSourceGTC(g *graph.Digraph, s graph.V) []*labelset.Collection {
	n := g.N()
	at := make([]*labelset.Collection, n)
	at[s] = &labelset.Collection{}
	at[s].Add(0)
	type item struct {
		v   graph.V
		set labelset.Set
	}
	queue := []item{{s, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if !at[it.v].Has(it.set) {
			continue
		}
		succ := g.Succ(it.v)
		labs := g.SuccLabels(it.v)
		for i, w := range succ {
			ns := it.set.With(labs[i])
			if at[w] == nil {
				at[w] = &labelset.Collection{}
			}
			if at[w].Add(ns) {
				queue = append(queue, item{w, ns})
			}
		}
	}
	at[s] = nil // self handled by the query's s == t check
	return at
}

// Name implements core.LCRIndex.
func (ix *Index) Name() string { return "Landmark" }

// ReachLC answers the alternation query by landmark-accelerated BFS.
func (ix *Index) ReachLC(s, t graph.V, allowed labelset.Set) bool {
	if s == t {
		return true
	}
	sc := scratch.Get(ix.g.N())
	defer scratch.Put(sc)
	visited := sc.Visited()
	visited.Set(int(s))
	sc.Queue = append(sc.Queue, s)
	for qi := 0; qi < len(sc.Queue); qi++ {
		v := sc.Queue[qi]
		if li := ix.landmark[v]; li >= 0 {
			// Landmark hit: its GTC decides everything reachable from v.
			if c := ix.gtc[li][t]; c != nil {
				// The SPLS from s to v is within `allowed` by construction
				// of the traversal; combine with the landmark's SPLSs.
				for _, set := range c.Sets() {
					if set.SubsetOf(allowed) {
						return true
					}
				}
			}
			// The landmark's GTC is exhaustive: any allowed v→t path would
			// have produced an SPLS inside `allowed`. Prune v entirely —
			// and when v is the source itself, the whole query is decided.
			if v == s {
				return false
			}
			continue
		}
		succ := ix.g.Succ(v)
		labs := ix.g.SuccLabels(v)
		for i, w := range succ {
			if !allowed.Has(labs[i]) {
				continue
			}
			if w == t {
				return true
			}
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				sc.Queue = append(sc.Queue, w)
			}
		}
	}
	return false
}

// Stats implements core.LCRIndex.
func (ix *Index) Stats() core.Stats { return ix.stats }
