package lcrlandmark

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex {
		return New(g, Options{K: 8})
	})
}

func TestAllVerticesLandmarks(t *testing.T) {
	// k >= n degenerates into the full GTC: still exact.
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex {
		return New(g, Options{K: 1 << 20})
	})
}

func TestSingleLandmark(t *testing.T) {
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex {
		return New(g, Options{K: 1})
	})
}

func TestParallelBuildEquivalent(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 100, M: 400, Seed: 4}), 5, 0.6, 5)
	seq := New(g, Options{K: 16, Workers: 1})
	for _, workers := range []int{0, 2, 8} {
		par := New(g, Options{K: 16, Workers: workers})
		if seq.Stats().Entries != par.Stats().Entries {
			t.Fatalf("workers=%d build diverged: %d vs %d entries",
				workers, seq.Stats().Entries, par.Stats().Entries)
		}
	}
	// And it stays exact.
	indextest.CheckLCRIndex(t, func(g *graph.Digraph) core.LCRIndex {
		return New(g, Options{K: 8, Workers: 4})
	})
}

func TestMoreLandmarksBiggerIndex(t *testing.T) {
	g := gen.Zipf(gen.ErdosRenyi(gen.Config{N: 80, M: 320, Seed: 1}), 4, 0.7, 2)
	small := New(g, Options{K: 2})
	big := New(g, Options{K: 32})
	if big.Stats().Entries < small.Stats().Entries {
		t.Errorf("k=32 entries %d < k=2 entries %d", big.Stats().Entries, small.Stats().Entries)
	}
	if small.Name() != "Landmark" {
		t.Error("name")
	}
}
