package graph

// This file encodes the paper's Figure 1 running example: a 9-vertex plain
// digraph (a) and its edge-labeled counterpart (b) over the label universe
// {friendOf, follows, worksFor}. Every worked example in the tutorial text
// is phrased on these two graphs, and the quickstart example plus the
// TestFigure1* integration tests assert the published answers on them.
//
// The labeled edge set below is reconstructed from the textual claims of the
// paper (the figure itself is a drawing) and satisfies every one of them:
//
//	Qr(A,G) = true via the s-t path (A, D, H, G)                        [§2.1]
//	Qr(A,G,(friendOf ∪ follows)*) = false: every A→G path uses worksFor [§2.2]
//	L→M via p1 = (L,worksFor,C,worksFor,M) and p2 = (L,follows,K,worksFor,M);
//	  SPLS(L→M) = {worksFor}                                            [§4.1]
//	SPLS(A→L) = {follows}; SPLS(A→M) = {follows, worksFor}              [§4.1]
//	L→H via p3 = (L,worksFor,C,worksFor,H) and p4 = (L,worksFor,D,friendOf,H);
//	  p3 is "shorter" (1 distinct label vs 2)                           [§4.1.2]
//	the path (L,worksFor,D,friendOf,H,worksFor,G,friendOf,B) has
//	  MR = (worksFor, friendOf), so Qr(L,B,(worksFor·friendOf)*) = true [§4.2]
//
// The reconstruction is acyclic (the published figure's precise arrow set
// is not recoverable from the text; cyclic inputs are exercised by the
// generated graphs instead). The plain graph (a) has the same vertex set;
// its edge set is the labeled edge set with labels dropped.

// Fig1Vertices lists the vertex names of Figure 1 in a stable order.
var Fig1Vertices = []string{"A", "B", "C", "D", "G", "H", "K", "L", "M"}

// fig1Edges is the labeled edge list of Figure 1(b).
var fig1Edges = [][3]string{
	// source, label, target
	{"A", "friendOf", "D"},
	{"A", "follows", "L"},
	{"D", "friendOf", "H"},
	{"H", "worksFor", "G"},
	{"G", "friendOf", "B"},
	{"L", "worksFor", "C"},
	{"L", "worksFor", "D"},
	{"L", "follows", "K"},
	{"C", "worksFor", "M"},
	{"C", "worksFor", "H"},
	{"K", "worksFor", "M"},
	{"M", "worksFor", "G"},
}

// Fig1Labeled builds the edge-labeled graph of Figure 1(b).
func Fig1Labeled() *Digraph {
	b := NewLabeledBuilder(0)
	for _, name := range Fig1Vertices {
		b.NamedVertex(name)
	}
	// Register labels in the paper's order.
	b.LabelID("friendOf")
	b.LabelID("follows")
	b.LabelID("worksFor")
	for _, e := range fig1Edges {
		b.AddNamedEdge(e[0], e[1], e[2])
	}
	return b.MustFreeze()
}

// Fig1Plain builds the plain graph of Figure 1(a): the same topology with
// labels dropped.
func Fig1Plain() *Digraph {
	b := NewBuilder(0)
	ids := make(map[string]V)
	for _, name := range Fig1Vertices {
		ids[name] = b.NamedVertex(name)
	}
	for _, e := range fig1Edges {
		b.AddEdge(ids[e[0]], ids[e[2]])
	}
	return b.MustFreeze()
}
