package graph

import (
	"fmt"
	"io"

	"repro/internal/persist"
)

// Graph snapshots persist the CSR arrays themselves — succOff/succ,
// predOff/pred, and (for labeled graphs) the parallel label arrays — in
// the shared persist container (format "graph") using the aligned mapped
// layout, so a serving process warm start page-maps the adjacency instead
// of re-parsing the edge-list text and re-running Freeze's sort:
//
//	meta       — n, m, numLabels, flags
//	vertnames  — optional vertex-name registry
//	labelnames — optional label-name registry
//	succoff/succ, predoff/pred — CSR arrays, 4-byte aligned
//	succlab/predlab            — label arrays (labeled only), 2-byte aligned
//	crc32      — CRC-32C of everything above
//
// One layout serves both load paths: LoadSnapshot page-maps the file and
// hands the Digraph zero-copy views (falling back to a streaming read
// where mmap is unavailable), and ReadSnapshot decodes the same sections
// from any io.Reader. Because the mapped views drive slice indexing all
// over the query path, both readers validate the CSR structure (offset
// monotonicity, vertex and label bounds) before the graph is trusted —
// the checksum guards against corruption, the validation against a
// well-checksummed file holding an impossible graph.
const (
	persistFormat  = "graph"
	persistVersion = 1
)

const flagLabeled = 1 << 0

// WriteSnapshot serializes g in the mapped snapshot layout. The writer
// must be positioned at the start of the file (section alignment is
// computed from the file origin). Returns the number of bytes written.
func (g *Digraph) WriteSnapshot(w io.Writer) (int64, error) {
	pw := persist.NewWriter(w, persistFormat, persistVersion)
	pw.Section("meta", func(e *persist.Encoder) {
		e.U32(uint32(g.n))
		e.U64(uint64(g.m))
		e.U32(uint32(g.numLabels))
		var flags uint32
		if g.Labeled() {
			flags |= flagLabeled
		}
		e.U32(flags)
	})
	writeNames := func(name string, names []string) {
		pw.Section(name, func(e *persist.Encoder) {
			e.U32(uint32(len(names)))
			for _, s := range names {
				e.String(s)
			}
		})
	}
	writeNames("vertnames", g.vertName)
	writeNames("labelnames", g.labelName)
	pw.AlignedU32s("succoff", g.succOff)
	pw.AlignedU32s("succ", g.succ)
	pw.AlignedU32s("predoff", g.predOff)
	pw.AlignedU32s("pred", g.pred)
	if g.Labeled() {
		pw.AlignedU16s("succlab", g.succLab)
		pw.AlignedU16s("predlab", g.predLab)
	}
	pw.Checksum()
	return pw.Close()
}

// snapMeta carries the meta-section fields shared by both readers.
type snapMeta struct {
	n         int
	m         uint64
	numLabels int
	labeled   bool
}

func readSnapMeta(meta *persist.Decoder) (snapMeta, error) {
	var sm snapMeta
	n := meta.U32()
	m := meta.U64()
	numLabels := meta.U32()
	flags := meta.U32()
	if err := meta.Close(); err != nil {
		return sm, err
	}
	if n > 1<<30 {
		return sm, fmt.Errorf("graph: snapshot has implausible vertex count %d", n)
	}
	if m > uint64(n)*uint64(n)*2 {
		return sm, fmt.Errorf("graph: snapshot has implausible edge count %d", m)
	}
	if numLabels > MaxLabels {
		return sm, fmt.Errorf("graph: snapshot declares %d labels (max %d)", numLabels, MaxLabels)
	}
	sm.n, sm.m = int(n), m
	sm.numLabels = int(numLabels)
	sm.labeled = flags&flagLabeled != 0
	return sm, nil
}

// assemble validates the decoded arrays against the meta fields and
// produces the Digraph. All structural invariants the query path indexes
// by are checked here, so a hostile snapshot fails with an error instead
// of an out-of-range panic mid-query.
func assemble(sm snapMeta, vertName, labelName []string,
	succOff, succ, predOff, pred []uint32, succLab, predLab []uint16) (*Digraph, error) {
	m := int(sm.m)
	checkCSR := func(side string, off, adj []uint32) error {
		if len(off) != sm.n+1 {
			return fmt.Errorf("graph: snapshot %s offsets have %d entries, want %d", side, len(off), sm.n+1)
		}
		if len(adj) != m {
			return fmt.Errorf("graph: snapshot %s adjacency has %d entries, want %d", side, len(adj), m)
		}
		if off[0] != 0 || int(off[sm.n]) != m {
			return fmt.Errorf("graph: snapshot %s offsets do not span [0, %d]", side, m)
		}
		for v := 0; v < sm.n; v++ {
			if off[v] > off[v+1] {
				return fmt.Errorf("graph: snapshot %s offsets decrease at vertex %d", side, v)
			}
		}
		for _, w := range adj {
			if int(w) >= sm.n {
				return fmt.Errorf("graph: snapshot %s adjacency references vertex %d of %d", side, w, sm.n)
			}
		}
		return nil
	}
	if err := checkCSR("succ", succOff, succ); err != nil {
		return nil, err
	}
	if err := checkCSR("pred", predOff, pred); err != nil {
		return nil, err
	}
	if sm.labeled {
		if len(succLab) != m || len(predLab) != m {
			return nil, fmt.Errorf("graph: snapshot label arrays have %d/%d entries, want %d", len(succLab), len(predLab), m)
		}
		for _, l := range succLab {
			if int(l) >= sm.numLabels {
				return nil, fmt.Errorf("graph: snapshot label %d out of universe %d", l, sm.numLabels)
			}
		}
		for _, l := range predLab {
			if int(l) >= sm.numLabels {
				return nil, fmt.Errorf("graph: snapshot label %d out of universe %d", l, sm.numLabels)
			}
		}
	} else {
		succLab, predLab = nil, nil
	}
	if len(vertName) > sm.n {
		return nil, fmt.Errorf("graph: snapshot has %d vertex names for %d vertices", len(vertName), sm.n)
	}
	if len(labelName) > sm.numLabels {
		return nil, fmt.Errorf("graph: snapshot has %d label names for %d labels", len(labelName), sm.numLabels)
	}
	return &Digraph{
		n: sm.n, m: m,
		succOff: succOff, succ: succ, succLab: succLab,
		predOff: predOff, pred: pred, predLab: predLab,
		numLabels: sm.numLabels,
		labelName: labelName, vertName: vertName,
		names: &nameIndex{},
	}, nil
}

func readNames(d *persist.Decoder, limit int) ([]string, error) {
	count := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if int(count) > limit {
		return nil, fmt.Errorf("graph: snapshot name table has %d entries (limit %d)", count, limit)
	}
	var names []string
	if count > 0 {
		names = make([]string, count)
		for i := range names {
			names[i] = d.String()
		}
	}
	return names, d.Close()
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot from a stream.
// For page-mapped loading use LoadSnapshot (or persist.OpenMapped +
// FromMapped).
func ReadSnapshot(r io.Reader) (*Digraph, error) {
	pr, err := persist.NewReader(r, persistFormat, persistVersion)
	if err != nil {
		return nil, err
	}
	meta, err := pr.Section("meta")
	if err != nil {
		return nil, err
	}
	sm, err := readSnapMeta(meta)
	if err != nil {
		return nil, err
	}
	names := func(section string, limit int) ([]string, error) {
		d, err := pr.Section(section)
		if err != nil {
			return nil, err
		}
		return readNames(d, limit)
	}
	vertName, err := names("vertnames", sm.n)
	if err != nil {
		return nil, err
	}
	labelName, err := names("labelnames", sm.numLabels)
	if err != nil {
		return nil, err
	}
	readU32s := func(section string) ([]uint32, error) {
		d, err := pr.Section(section)
		if err != nil {
			return nil, err
		}
		vs := d.AlignedU32s()
		return vs, d.Close()
	}
	succOff, err := readU32s("succoff")
	if err != nil {
		return nil, err
	}
	succ, err := readU32s("succ")
	if err != nil {
		return nil, err
	}
	predOff, err := readU32s("predoff")
	if err != nil {
		return nil, err
	}
	pred, err := readU32s("pred")
	if err != nil {
		return nil, err
	}
	var succLab, predLab []uint16
	if sm.labeled {
		readU16s := func(section string) ([]uint16, error) {
			d, err := pr.Section(section)
			if err != nil {
				return nil, err
			}
			vs := d.AlignedU16s()
			return vs, d.Close()
		}
		if succLab, err = readU16s("succlab"); err != nil {
			return nil, err
		}
		if predLab, err = readU16s("predlab"); err != nil {
			return nil, err
		}
	}
	return assemble(sm, vertName, labelName, succOff, succ, predOff, pred, succLab, predLab)
}

// FromMapped binds a snapshot opened with persist.OpenMapped as a
// zero-copy Digraph: the CSR arrays are views into the mapping (pages
// fault in as traversals touch them). The graph pins the mapping for its
// lifetime.
func FromMapped(m *persist.Mapped) (*Digraph, error) {
	if m.Format() != persistFormat {
		return nil, fmt.Errorf("graph: mapped snapshot has format %q, want %q", m.Format(), persistFormat)
	}
	if m.Version() != persistVersion {
		return nil, fmt.Errorf("graph: mapped snapshot version %d not supported (want %d)", m.Version(), persistVersion)
	}
	meta, err := m.Section("meta")
	if err != nil {
		return nil, err
	}
	sm, err := readSnapMeta(meta)
	if err != nil {
		return nil, err
	}
	names := func(section string, limit int) ([]string, error) {
		d, err := m.Section(section)
		if err != nil {
			return nil, err
		}
		return readNames(d, limit)
	}
	vertName, err := names("vertnames", sm.n)
	if err != nil {
		return nil, err
	}
	labelName, err := names("labelnames", sm.numLabels)
	if err != nil {
		return nil, err
	}
	succOff, err := m.U32s("succoff")
	if err != nil {
		return nil, err
	}
	succ, err := m.U32s("succ")
	if err != nil {
		return nil, err
	}
	predOff, err := m.U32s("predoff")
	if err != nil {
		return nil, err
	}
	pred, err := m.U32s("pred")
	if err != nil {
		return nil, err
	}
	var succLab, predLab []uint16
	if sm.labeled {
		if succLab, err = m.U16s("succlab"); err != nil {
			return nil, err
		}
		if predLab, err = m.U16s("predlab"); err != nil {
			return nil, err
		}
	}
	g, err := assemble(sm, vertName, labelName, succOff, succ, predOff, pred, succLab, predLab)
	if err != nil {
		return nil, err
	}
	g.backing = m
	return g, nil
}

// LoadSnapshot opens the snapshot file at path as a zero-copy Digraph:
// the file is mmap'd (read-only, shared — page cache shared across shard
// processes) and the CSR arrays are views into the mapping. The file's
// whole-body CRC-32C is verified before any view is trusted; corruption
// or truncation yields an error, never a panic. On platforms without
// mmap the file is read into memory instead.
func LoadSnapshot(path string) (*Digraph, error) {
	m, err := persist.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	g, err := FromMapped(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	return g, nil
}
