package graph

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.MustFreeze()
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 3,3", g.N(), g.M())
	}
	if got := g.Succ(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Succ(0) = %v", got)
	}
	if got := g.Pred(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Pred(2) = %v", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 || g.Degree(1) != 2 {
		t.Error("degree mismatch")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(2, 2) {
		t.Error("HasEdge mismatch")
	}
}

func TestBuilderImplicitVertices(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.MustFreeze()
	if g.N() != 10 {
		t.Fatalf("N = %d, want 10", g.N())
	}
	if g.OutDegree(0) != 0 || g.OutDegree(5) != 1 {
		t.Error("degrees wrong")
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.MustFreeze()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 after dedup", g.M())
	}
	// Parallel edges with distinct labels are kept.
	lb := NewLabeledBuilder(2)
	lb.AddLabeledEdge(0, 1, 0)
	lb.AddLabeledEdge(0, 1, 1)
	lb.AddLabeledEdge(0, 1, 1)
	lg := lb.MustFreeze()
	if lg.M() != 2 {
		t.Fatalf("labeled M = %d, want 2", lg.M())
	}
	if !lg.HasLabeledEdge(0, 1, 0) || !lg.HasLabeledEdge(0, 1, 1) || lg.HasLabeledEdge(0, 1, 2) {
		t.Error("HasLabeledEdge mismatch")
	}
}

func TestNamedVerticesAndLabels(t *testing.T) {
	b := NewLabeledBuilder(0)
	b.AddNamedEdge("x", "knows", "y")
	b.AddNamedEdge("y", "knows", "x")
	b.AddNamedEdge("x", "likes", "z")
	g := b.MustFreeze()
	if g.N() != 3 || g.M() != 3 || g.Labels() != 2 {
		t.Fatalf("N=%d M=%d L=%d", g.N(), g.M(), g.Labels())
	}
	if g.VertexName(0) != "x" || g.LabelName(0) != "knows" {
		t.Errorf("names: %q %q", g.VertexName(0), g.LabelName(0))
	}
}

func TestReverse(t *testing.T) {
	g := FromEdges(3, [][2]V{{0, 1}, {1, 2}})
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Error("reverse edges wrong")
	}
	// Original unchanged.
	if !g.HasEdge(0, 1) {
		t.Error("original mutated")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := FromEdges(4, [][2]V{{2, 3}, {0, 1}, {0, 2}})
	var got [][2]V
	g.Edges(func(e Edge) bool { got = append(got, [2]V{e.From, e.To}); return true })
	want := [][2]V{{0, 1}, {0, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	g.Edges(func(Edge) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRoundTripIO(t *testing.T) {
	b := NewLabeledBuilder(0)
	b.AddNamedEdge("a", "r", "b")
	b.AddNamedEdge("b", "s", "c")
	g := b.MustFreeze()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() || g2.Labels() != g.Labels() {
		t.Fatalf("round trip mismatch: N=%d M=%d L=%d", g2.N(), g2.M(), g2.Labels())
	}
}

func TestReadPlain(t *testing.T) {
	in := "# comment\n0 1\n1 2\n\n2 0\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 || g.Labeled() {
		t.Fatalf("N=%d M=%d labeled=%v", g.N(), g.M(), g.Labeled())
	}
}

func TestReadNamed(t *testing.T) {
	in := "alice knows bob\nbob knows carol\n"
	// Named vertices with labels.
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || !g.Labeled() {
		t.Fatalf("N=%d M=%d labeled=%v", g.N(), g.M(), g.Labeled())
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"0\n", "0 1 x y\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
}

func TestMutateRemove(t *testing.T) {
	g := FromEdges(3, [][2]V{{0, 1}, {1, 2}})
	b := Mutate(g)
	if !b.RemoveEdge(Edge{From: 0, To: 1}) {
		t.Fatal("edge not found")
	}
	if b.RemoveEdge(Edge{From: 0, To: 1}) {
		t.Fatal("edge removed twice")
	}
	b.AddEdge(2, 0)
	g2 := b.MustFreeze()
	if g2.HasEdge(0, 1) || !g2.HasEdge(2, 0) || !g2.HasEdge(1, 2) {
		t.Error("mutation wrong")
	}
}

func TestFig1Shapes(t *testing.T) {
	p, l := Fig1Plain(), Fig1Labeled()
	if p.N() != 9 || l.N() != 9 {
		t.Fatalf("Fig1 must have 9 vertices, got %d/%d", p.N(), l.N())
	}
	if l.Labels() != 3 {
		t.Fatalf("Fig1 labels = %d, want 3", l.Labels())
	}
	if p.M() != l.M() {
		t.Fatalf("plain and labeled edge counts differ: %d vs %d", p.M(), l.M())
	}
	// Labels in the paper's order.
	for i, want := range []string{"friendOf", "follows", "worksFor"} {
		if l.LabelName(Label(i)) != want {
			t.Errorf("label %d = %q, want %q", i, l.LabelName(Label(i)), want)
		}
	}
}

func TestFreezeSortedAdjacency(t *testing.T) {
	// Property: Succ and Pred lists are always sorted, for any edge set.
	f := func(raw [][2]uint8) bool {
		b := NewBuilder(0)
		for _, e := range raw {
			b.AddEdge(V(e[0]), V(e[1]))
		}
		g := b.MustFreeze()
		for v := V(0); int(v) < g.N(); v++ {
			if !sort.SliceIsSorted(g.Succ(v), func(i, j int) bool { return g.Succ(v)[i] < g.Succ(v)[j] }) {
				return false
			}
			if !sort.SliceIsSorted(g.Pred(v), func(i, j int) bool { return g.Pred(v)[i] < g.Pred(v)[j] }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredMatchesSucc(t *testing.T) {
	// Property: (u,v,l) appears in forward adjacency iff it appears in
	// reverse adjacency.
	f := func(raw [][2]uint8, labs []uint8) bool {
		b := NewLabeledBuilder(0)
		for i, e := range raw {
			l := Label(0)
			if i < len(labs) {
				l = Label(labs[i] % 8)
			}
			b.AddLabeledEdge(V(e[0]), V(e[1]), l)
		}
		g := b.MustFreeze()
		fwd := map[Edge]bool{}
		g.Edges(func(e Edge) bool { fwd[e] = true; return true })
		count := 0
		for v := V(0); int(v) < g.N(); v++ {
			ps := g.Pred(v)
			ls := g.PredLabels(v)
			for i, u := range ps {
				count++
				if !fwd[Edge{From: u, To: v, Label: ls[i]}] {
					return false
				}
			}
		}
		return count == g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
