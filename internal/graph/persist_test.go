package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func namedTestGraph() *Digraph {
	b := NewBuilder(0)
	b.AddNamedEdge("A", "knows", "B")
	b.AddNamedEdge("B", "knows", "C")
	b.AddNamedEdge("A", "likes", "C")
	b.AddNamedEdge("C", "knows", "D")
	return b.MustFreeze()
}

func plainTestGraph() *Digraph {
	b := NewBuilder(6)
	for _, e := range [][2]V{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {1, 5}} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustFreeze()
}

func sameGraph(t *testing.T, got, want *Digraph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("got %d vertices / %d edges, want %d / %d", got.N(), got.M(), want.N(), want.M())
	}
	if got.Labeled() != want.Labeled() || got.Labels() != want.Labels() {
		t.Fatalf("label universe mismatch: %v/%d vs %v/%d",
			got.Labeled(), got.Labels(), want.Labeled(), want.Labels())
	}
	ge, we := got.EdgeList(), want.EdgeList()
	for i := range we {
		if ge[i] != we[i] {
			t.Fatalf("edge %d = %v, want %v", i, ge[i], we[i])
		}
	}
	for v := 0; v < want.N(); v++ {
		if got.VertexName(V(v)) != want.VertexName(V(v)) {
			t.Fatalf("vertex %d named %q, want %q", v, got.VertexName(V(v)), want.VertexName(V(v)))
		}
	}
}

func TestSnapshotRoundTripStream(t *testing.T) {
	for name, g := range map[string]*Digraph{"plain": plainTestGraph(), "labeled": namedTestGraph()} {
		var buf bytes.Buffer
		n, err := g.WriteSnapshot(&buf)
		if err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("%s: WriteSnapshot reported %d bytes, wrote %d", name, n, buf.Len())
		}
		back, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		sameGraph(t, back, g)
	}
}

func TestSnapshotRoundTripMapped(t *testing.T) {
	g := namedTestGraph()
	path := filepath.Join(t.TempDir(), "g.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, back, g)
	// The mapped graph must serve the full named query surface.
	for _, name := range []string{"A", "B", "C", "D"} {
		if _, ok := back.VertexByName(name); !ok {
			t.Fatalf("VertexByName(%q) missed on mapped graph", name)
		}
	}
	if _, ok := back.VertexByName("nope"); ok {
		t.Fatal("unknown name resolved on mapped graph")
	}
}

func TestSnapshotCorruptionRejected(t *testing.T) {
	g := namedTestGraph()
	var buf bytes.Buffer
	if _, err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	load := func(b []byte) error {
		path := filepath.Join(dir, "snap")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadSnapshot(path)
		return err
	}
	// Flip one byte at every offset: each variant must be rejected (the
	// checksum catches it), never panic or load silently.
	for off := 0; off < len(good); off++ {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		if err := load(bad); err == nil {
			t.Fatalf("corruption at offset %d loaded silently", off)
		}
	}
	// Truncations at every length short of the full file.
	for cut := 0; cut < len(good); cut += 7 {
		if err := load(good[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes loaded silently", cut)
		}
	}
	if err := load(good); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// TestVertexByNameMemo covers the memoized name→vertex map: O(1) repeat
// lookups, sharing with Reverse views, and the zero-holder fallback.
func TestVertexByNameMemo(t *testing.T) {
	g := namedTestGraph()
	for i := 0; i < 3; i++ { // repeated lookups hit the memo
		for want := 0; want < 4; want++ {
			name := []string{"A", "B", "C", "D"}[want]
			v, ok := g.VertexByName(name)
			if !ok || int(v) != want {
				t.Fatalf("VertexByName(%q) = %d, %v; want %d", name, v, ok, want)
			}
		}
	}
	if _, ok := g.VertexByName("Z"); ok {
		t.Fatal("unknown name resolved")
	}
	// Reverse shares the holder: same memo, same answers.
	r := g.Reverse()
	if r.names != g.names {
		t.Fatal("Reverse view does not share the name index")
	}
	if v, ok := r.VertexByName("D"); !ok || v != 3 {
		t.Fatalf("reverse VertexByName(D) = %d, %v", v, ok)
	}
	// Zero-holder graphs fall back to the linear scan.
	bare := &Digraph{vertName: []string{"x", "y"}}
	if v, ok := bare.VertexByName("y"); !ok || v != 1 {
		t.Fatalf("fallback VertexByName(y) = %d, %v", v, ok)
	}
}
