package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// BenchmarkFreeze measures the builder's freeze path — dominated by the
// edge sort — on a shuffled edge list (full sort) and on an already-sorted
// one (the IsSortedFunc fast path that Mutate + order-preserving
// RemoveEdge workflows hit).
func BenchmarkFreeze(b *testing.B) {
	const n, m = 20000, 100000
	rng := rand.New(rand.NewSource(7))
	shuffled := make([]Edge, m)
	for i := range shuffled {
		shuffled[i] = Edge{From: V(rng.Intn(n)), To: V(rng.Intn(n))}
	}
	sorted := slices.Clone(shuffled)
	slices.SortFunc(sorted, cmpEdge)
	run := func(b *testing.B, edges []Edge) {
		scratch := make([]Edge, m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(scratch, edges) // Freeze sorts in place; restore per iteration
			bu := NewBuilder(n)
			bu.edges = scratch
			if _, err := bu.Freeze(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("shuffled", func(b *testing.B) { run(b, shuffled) })
	b.Run("presorted", func(b *testing.B) { run(b, sorted) })
}

// TestRemoveEdgePreservesOrder pins the order-preserving removal contract:
// deleting from a sorted edge list must leave it sorted, so Freeze's
// sorted-input fast path stays valid across Mutate/RemoveEdge cycles.
func TestRemoveEdgePreservesOrder(t *testing.T) {
	g := FromEdges(5, [][2]V{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	bu := Mutate(g)
	if !bu.RemoveEdge(Edge{From: 1, To: 3}) {
		t.Fatal("edge (1,3) should be present")
	}
	if !slices.IsSortedFunc(bu.edges, cmpEdge) {
		t.Fatalf("edge list unsorted after RemoveEdge: %v", bu.edges)
	}
	if bu.RemoveEdge(Edge{From: 1, To: 3}) {
		t.Fatal("edge (1,3) was already removed")
	}
	g2 := bu.MustFreeze()
	if g2.M() != g.M()-1 {
		t.Fatalf("edge count after removal = %d, want %d", g2.M(), g.M()-1)
	}
	if r := (&adj{g2}).has(1, 3); r {
		t.Fatal("removed edge still present in frozen graph")
	}
}

// adj is a tiny helper for edge membership in tests.
type adj struct{ g *Digraph }

func (a *adj) has(u, v V) bool {
	for _, w := range a.g.Succ(u) {
		if w == v {
			return true
		}
	}
	return false
}
