package graph

import (
	"errors"
	"fmt"
	"slices"
)

// Builder accumulates vertices and edges and produces an immutable Digraph.
// It deduplicates parallel edges with identical labels and sorts adjacency,
// which the CSR binary searches rely on.
type Builder struct {
	n         int
	edges     []Edge
	labeled   bool
	numLabels int
	labelIDs  map[string]Label
	labelName []string
	vertIDs   map[string]V
	vertName  []string
}

// NewBuilder returns a Builder for a graph with n pre-declared vertices
// (0..n-1). More vertices may be added implicitly by AddEdge or explicitly
// by AddVertex.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NewLabeledBuilder returns a Builder for an edge-labeled graph.
func NewLabeledBuilder(n int) *Builder {
	return &Builder{n: n, labeled: true}
}

// N returns the current number of vertices.
func (b *Builder) N() int { return b.n }

// AddVertex allocates and returns a fresh vertex id.
func (b *Builder) AddVertex() V {
	v := V(b.n)
	b.n++
	return v
}

// NamedVertex returns the vertex with the given name, allocating it on first
// use. Mixing NamedVertex with AddVertex is allowed.
func (b *Builder) NamedVertex(name string) V {
	if b.vertIDs == nil {
		b.vertIDs = make(map[string]V)
	}
	if v, ok := b.vertIDs[name]; ok {
		return v
	}
	v := b.AddVertex()
	b.vertIDs[name] = v
	for len(b.vertName) <= int(v) {
		b.vertName = append(b.vertName, "")
	}
	b.vertName[v] = name
	return v
}

// LabelID returns the label id for the given name, allocating it on first
// use. Panics if the label universe would exceed MaxLabels.
func (b *Builder) LabelID(name string) Label {
	if b.labelIDs == nil {
		b.labelIDs = make(map[string]Label)
	}
	if l, ok := b.labelIDs[name]; ok {
		return l
	}
	if b.numLabels >= MaxLabels {
		panic(fmt.Sprintf("graph: label universe exceeds %d labels", MaxLabels))
	}
	l := Label(b.numLabels)
	b.numLabels++
	b.labelIDs[name] = l
	b.labelName = append(b.labelName, name)
	b.labeled = true
	return l
}

// TryLabelID is LabelID for untrusted input: instead of panicking when the
// label universe would exceed MaxLabels it returns ErrTooManyLabels, so
// parsers (graph.Read) can reject a hostile edge list with an error.
func (b *Builder) TryLabelID(name string) (Label, error) {
	if b.labelIDs != nil {
		if l, ok := b.labelIDs[name]; ok {
			return l, nil
		}
	}
	if b.numLabels >= MaxLabels {
		return 0, ErrTooManyLabels
	}
	return b.LabelID(name), nil
}

// ReserveLabels declares the label universe to contain at least k labels,
// even if some never occur on edges (e.g. after condensing a labeled graph
// whose rare labels only appeared inside SCCs).
func (b *Builder) ReserveLabels(k int) {
	if k > b.numLabels {
		b.numLabels = k
	}
	if k > 0 {
		b.labeled = true
	}
}

// AddEdge adds the directed edge (u, v). Vertices are allocated implicitly
// if u or v exceed the current vertex count.
func (b *Builder) AddEdge(u, v V) {
	b.ensure(u)
	b.ensure(v)
	b.edges = append(b.edges, Edge{From: u, To: v})
}

// AddLabeledEdge adds the directed edge (u, v) with label l.
func (b *Builder) AddLabeledEdge(u, v V, l Label) {
	b.ensure(u)
	b.ensure(v)
	b.labeled = true
	if int(l) >= b.numLabels {
		b.numLabels = int(l) + 1
	}
	b.edges = append(b.edges, Edge{From: u, To: v, Label: l})
}

// AddNamedEdge adds an edge between named vertices with a named label.
func (b *Builder) AddNamedEdge(from, label, to string) {
	u, v := b.NamedVertex(from), b.NamedVertex(to)
	b.AddLabeledEdge(u, v, b.LabelID(label))
}

func (b *Builder) ensure(v V) {
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
}

// ErrTooManyLabels is returned by Freeze when a labeled graph declares more
// than MaxLabels labels.
var ErrTooManyLabels = errors.New("graph: label universe exceeds 64 labels")

// cmpEdge orders edges by (From, To, Label) — the CSR layout order.
func cmpEdge(a, b Edge) int {
	switch {
	case a.From != b.From:
		if a.From < b.From {
			return -1
		}
		return 1
	case a.To != b.To:
		if a.To < b.To {
			return -1
		}
		return 1
	case a.Label != b.Label:
		if a.Label < b.Label {
			return -1
		}
		return 1
	}
	return 0
}

// Freeze sorts, deduplicates and lays out the accumulated edges as an
// immutable CSR Digraph.
func (b *Builder) Freeze() (*Digraph, error) {
	if b.labeled && b.numLabels > MaxLabels {
		return nil, ErrTooManyLabels
	}
	es := b.edges
	// SortFunc works on the concrete []Edge — no per-comparison interface
	// dispatch the reflect-based sort.Slice paid — and the IsSortedFunc
	// pre-check makes re-freezing an already-ordered edge list (Mutate of a
	// frozen graph, order-preserving RemoveEdge) a linear scan.
	if !slices.IsSortedFunc(es, cmpEdge) {
		slices.SortFunc(es, cmpEdge)
	}
	// Deduplicate identical (from, to, label) triples.
	dedup := es[:0]
	for i, e := range es {
		if i > 0 && e == es[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	es = dedup

	g := &Digraph{n: b.n, m: len(es), numLabels: b.numLabels,
		labelName: b.labelName, vertName: b.vertName, names: &nameIndex{}}
	g.succOff = make([]uint32, b.n+1)
	g.predOff = make([]uint32, b.n+1)
	g.succ = make([]V, len(es))
	g.pred = make([]V, len(es))
	if b.labeled {
		g.succLab = make([]Label, len(es))
		g.predLab = make([]Label, len(es))
	}
	for _, e := range es {
		g.succOff[e.From+1]++
		g.predOff[e.To+1]++
	}
	for v := 0; v < b.n; v++ {
		g.succOff[v+1] += g.succOff[v]
		g.predOff[v+1] += g.predOff[v]
	}
	fill := make([]uint32, b.n)
	for _, e := range es {
		i := g.succOff[e.From] + fill[e.From]
		fill[e.From]++
		g.succ[i] = e.To
		if b.labeled {
			g.succLab[i] = e.Label
		}
	}
	for i := range fill {
		fill[i] = 0
	}
	// Edges are sorted by From, so filling pred in this order yields
	// pred lists sorted by predecessor id.
	for _, e := range es {
		i := g.predOff[e.To] + fill[e.To]
		fill[e.To]++
		g.pred[i] = e.From
		if b.labeled {
			g.predLab[i] = e.Label
		}
	}
	return g, nil
}

// MustFreeze is Freeze that panics on error; for tests and generators whose
// inputs are valid by construction.
func (b *Builder) MustFreeze() *Digraph {
	g, err := b.Freeze()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds an unlabeled digraph with n vertices from an edge list.
func FromEdges(n int, edges [][2]V) *Digraph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.MustFreeze()
}

// Mutate returns a Builder pre-loaded with g's vertices and edges, for
// producing a modified copy (used by dynamic-index tests to rebuild
// oracles after updates).
func Mutate(g *Digraph) *Builder {
	b := NewBuilder(g.N())
	b.labeled = g.Labeled()
	b.numLabels = g.Labels()
	b.labelName = g.labelName
	b.vertName = g.vertName
	if g.vertName != nil {
		b.vertIDs = make(map[string]V)
		for v, name := range g.vertName {
			if name != "" {
				b.vertIDs[name] = V(v)
			}
		}
	}
	if g.labelName != nil {
		b.labelIDs = make(map[string]Label)
		for l, name := range g.labelName {
			if name != "" {
				b.labelIDs[name] = Label(l)
			}
		}
	}
	b.edges = g.EdgeList()
	return b
}

// RemoveEdge deletes every occurrence of the exact edge e from the
// builder and reports whether at least one was present. Removing all
// occurrences (not just the first) is what makes remove mean "the edge
// is gone": a builder fed duplicate AddEdge calls — or a self-loop added
// twice — would otherwise still freeze into a graph containing e, and an
// add/remove/add sequence driven through the mutation overlay would
// diverge from the graph it claims to describe. The removal preserves
// edge order (no swap-with-last), so a builder loaded from a frozen
// graph (Mutate) keeps its sorted edge list and the next Freeze skips
// sorting entirely instead of re-sorting to repair displaced elements.
func (b *Builder) RemoveEdge(e Edge) bool {
	kept := b.edges[:0]
	for _, x := range b.edges {
		if x != e {
			kept = append(kept, x)
		}
	}
	removed := len(kept) < len(b.edges)
	b.edges = kept
	return removed
}
