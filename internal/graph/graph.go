// Package graph provides the directed-graph substrate shared by every
// reachability index in this repository: an immutable CSR (compressed sparse
// row) digraph with both forward and reverse adjacency, an optional edge
// labeling for path-constrained reachability, a mutable builder, and a plain
// text edge-list exchange format.
//
// Vertices are dense identifiers 0..N-1 of type V (uint32). Once Freeze is
// called the graph never changes; dynamic indexes maintain their own overlay
// structures on top.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// V is a vertex identifier. Vertices of a graph with N vertices are exactly
// 0..N-1.
type V = uint32

// Label identifies an edge label within a graph's label universe. Label
// universes are small (at most MaxLabels), matching the path-constrained
// reachability literature where |L| is typically well under 64.
type Label = uint16

// MaxLabels is the largest supported label-universe size. Label sets are
// stored as 64-bit masks throughout the LCR indexes.
const MaxLabels = 64

// Edge is a directed edge with an optional label (ignored for plain graphs).
type Edge struct {
	From, To V
	Label    Label
}

// Digraph is an immutable directed graph in CSR form with both forward and
// reverse adjacency. If labeled, Labels() reports the number of distinct
// labels and per-edge labels parallel the forward adjacency arrays.
type Digraph struct {
	n int
	m int

	// Forward CSR: successors of v are succ[succOff[v]:succOff[v+1]].
	succOff []uint32
	succ    []V
	// succLab[i] is the label of the edge whose head is succ[i]; nil when
	// the graph is unlabeled.
	succLab []Label

	// Reverse CSR: predecessors of v are pred[predOff[v]:predOff[v+1]].
	predOff []uint32
	pred    []V
	predLab []Label

	numLabels int
	labelName []string // optional human-readable names, index = Label
	vertName  []string // optional human-readable names, index = V

	// names memoizes the name→vertex map VertexByName answers from. It is
	// a pointer (not an inline sync.Once) so Reverse's struct copy shares
	// the holder instead of copying a lock — the reverse view has the same
	// vertex names, so sharing is also the correct semantics. Nil on
	// zero-value graphs, where VertexByName falls back to a linear scan.
	names *nameIndex

	// backing pins the snapshot mapping of a zero-copy loaded graph (see
	// persist.go) so the views in the CSR arrays stay valid for the
	// graph's lifetime.
	backing interface{ Close() error }
}

// nameIndex lazily builds the name→vertex map shared by a graph and all
// of its Reverse views.
type nameIndex struct {
	once sync.Once
	m    map[string]V
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// M returns the number of edges.
func (g *Digraph) M() int { return g.m }

// Labeled reports whether the graph carries edge labels.
func (g *Digraph) Labeled() bool { return g.succLab != nil }

// Labels returns the size of the label universe (0 for unlabeled graphs).
func (g *Digraph) Labels() int { return g.numLabels }

// Succ returns the successors of v. The returned slice aliases internal
// storage and must not be modified.
func (g *Digraph) Succ(v V) []V { return g.succ[g.succOff[v]:g.succOff[v+1]] }

// Pred returns the predecessors of v. The returned slice aliases internal
// storage and must not be modified.
func (g *Digraph) Pred(v V) []V { return g.pred[g.predOff[v]:g.predOff[v+1]] }

// SuccLabels returns the labels parallel to Succ(v). Only valid for labeled
// graphs.
func (g *Digraph) SuccLabels(v V) []Label {
	return g.succLab[g.succOff[v]:g.succOff[v+1]]
}

// PredLabels returns the labels parallel to Pred(v). Only valid for labeled
// graphs.
func (g *Digraph) PredLabels(v V) []Label {
	return g.predLab[g.predOff[v]:g.predOff[v+1]]
}

// OutDegree returns the number of outgoing edges of v.
func (g *Digraph) OutDegree(v V) int { return int(g.succOff[v+1] - g.succOff[v]) }

// InDegree returns the number of incoming edges of v.
func (g *Digraph) InDegree(v V) int { return int(g.predOff[v+1] - g.predOff[v]) }

// Degree returns in-degree + out-degree of v, the ranking key used by
// degree-ordered labelings (DL, PLL, P2H+, landmark selection).
func (g *Digraph) Degree(v V) int { return g.OutDegree(v) + g.InDegree(v) }

// HasEdge reports whether the edge (u, v) exists (any label). Runs in
// O(log outdeg(u)) thanks to sorted adjacency.
func (g *Digraph) HasEdge(u, v V) bool {
	s := g.Succ(u)
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// HasLabeledEdge reports whether edge (u, v) with label l exists.
func (g *Digraph) HasLabeledEdge(u, v V, l Label) bool {
	s := g.Succ(u)
	labs := g.SuccLabels(u)
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	for ; i < len(s) && s[i] == v; i++ {
		if labs[i] == l {
			return true
		}
	}
	return false
}

// Edges calls f for every edge in the graph (in vertex order). If f returns
// false the iteration stops.
func (g *Digraph) Edges(f func(e Edge) bool) {
	for u := 0; u < g.n; u++ {
		lo, hi := g.succOff[u], g.succOff[u+1]
		for i := lo; i < hi; i++ {
			e := Edge{From: V(u), To: g.succ[i]}
			if g.succLab != nil {
				e.Label = g.succLab[i]
			}
			if !f(e) {
				return
			}
		}
	}
}

// EdgeList returns all edges as a fresh slice.
func (g *Digraph) EdgeList() []Edge {
	es := make([]Edge, 0, g.m)
	g.Edges(func(e Edge) bool { es = append(es, e); return true })
	return es
}

// LabelName returns the human-readable name for label l, or a synthesized
// "l<ID>" when none was registered.
func (g *Digraph) LabelName(l Label) string {
	if int(l) < len(g.labelName) && g.labelName[l] != "" {
		return g.labelName[l]
	}
	return fmt.Sprintf("l%d", l)
}

// VertexName returns the human-readable name for vertex v, or a synthesized
// "v<ID>" when none was registered.
func (g *Digraph) VertexName(v V) string {
	if int(v) < len(g.vertName) && g.vertName[v] != "" {
		return g.vertName[v]
	}
	return fmt.Sprintf("v%d", v)
}

// VertexByName returns the vertex registered under the given name. The
// lookup map is built once on first use (and shared with Reverse views);
// subsequent lookups are O(1) — the named-vertex HTTP path resolves every
// request through here.
func (g *Digraph) VertexByName(name string) (V, bool) {
	if g.names == nil {
		// Zero-value or hand-rolled graph without a holder: linear scan.
		for v, n := range g.vertName {
			if n == name {
				return V(v), true
			}
		}
		return 0, false
	}
	g.names.once.Do(func() {
		m := make(map[string]V, len(g.vertName))
		for v, n := range g.vertName {
			if n != "" {
				m[n] = V(v)
			}
		}
		g.names.m = m
	})
	v, ok := g.names.m[name]
	return v, ok
}

// Bytes estimates the memory footprint of the CSR arrays in bytes.
func (g *Digraph) Bytes() int {
	b := (len(g.succOff) + len(g.predOff) + len(g.succ) + len(g.pred)) * 4
	b += (len(g.succLab) + len(g.predLab)) * 2
	return b
}

// Reverse returns a view-copy of g with every edge direction flipped.
// Forward and reverse CSR arrays are swapped; storage is shared.
func (g *Digraph) Reverse() *Digraph {
	r := *g
	r.succOff, r.predOff = g.predOff, g.succOff
	r.succ, r.pred = g.pred, g.succ
	r.succLab, r.predLab = g.predLab, g.succLab
	return &r
}
