package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the edge-list parser: it must never
// panic, and anything it accepts must round-trip through Write/Read into
// a graph with identical shape.
func FuzzRead(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("a knows b\nb knows c\n")
	f.Add("# comment\n\n3 4 lbl\n")
	f.Add("0 0\n")
	f.Add("999999 2\n")
	f.Add("x y z w\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("reparse of our own output: %v", err)
		}
		if g2.M() != g.M() || g2.Labels() != g.Labels() {
			t.Fatalf("round trip changed shape: m %d->%d labels %d->%d",
				g.M(), g2.M(), g.Labels(), g2.Labels())
		}
	})
}
